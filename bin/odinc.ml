(* odinc — command-line driver for the Odin reproduction toolchain.

     odinc compile file.c [--optimize] [--emit ir|asm]
     odinc run file.c [--entry main] [--args 1,2,...] [--optimize]
     odinc partition file.c [--mode one|odin|max]
     odinc fuzz file.c [--execs N] [--no-prune] [--jobs N]
                       [--metrics-csv FILE] [--span-limit N]
                       [--workers N --journal FILE]
     odinc mutate file.c [--ops aor,ror,const,sdl,brs] [--workers N]
                         [--farm-mode domains|procs] [--tests N]
                         [--max-steps N] [--deadline SECS]
                         [--checkpoint FILE [--resume]] [--journal FILE]
     odinc bench-diff BASELINE CURRENT [--ignore CLASS]
     odinc report JOURNAL [--top N]
     odinc workload NAME          (print a generated benchmark program)

   compile/run/fuzz accept --time-report (per-stage text report on
   stderr-free stdout) and --trace-out FILE (Chrome trace_event JSON for
   chrome://tracing / Perfetto). Telemetry observes only: results are
   identical with and without the flags. fuzz additionally accepts
   --jobs N (fragment-compile parallelism; default ODIN_JOBS or the
   machine), --metrics-csv FILE (campaign series/histograms/recompile
   events as CSV) and --span-limit N (span retention bound for long
   campaigns; counters stay exact).

   bench-diff compares BENCH_*.json perf snapshots (see bench/main.exe
   --out-dir) with per-class tolerances and exits 1 on regression;
   report renders a farm's flight-recorder journal (--journal) as an
   AFL-style status screen plus a per-probe cost-attribution heatmap.
*)

open Cmdliner

module Snap = Telemetry.Snapshot

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_source path = Minic.Lower.compile ~name:(Filename.basename path) (read_file path)

(* ---------------- fault injection ---------------- *)

let fault_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault-injection plan, e.g. \
           $(b,seed=7;opt.pipeline:transient:p=0.3;link:raise:nth=2). Kinds: \
           raise|transient|torn|delay=SECS; triggers: always|nth=N|p=P. \
           Overrides \\$(b,ODIN_FAULTS).")

(* ODIN_FAULTS first, --fault-plan wins when both are given *)
let install_faults plan =
  (match Support.Fault.init_from_env () with
  | Result.Ok _ -> ()
  | Result.Error msg ->
    Printf.eprintf "odinc: bad ODIN_FAULTS: %s\n" msg;
    exit 2);
  match plan with
  | None -> ()
  | Some s -> (
    match Support.Fault.parse_plan s with
    | Result.Ok p -> Support.Fault.install p
    | Result.Error msg ->
      Printf.eprintf "odinc: bad --fault-plan: %s\n" msg;
      exit 2)

(* Run [f], rendering structured build/link/fault errors as readable
   diagnostics instead of raw backtraces. *)
let with_diagnostics f =
  try f () with
  | Odin.Session.Build_error e ->
    Printf.eprintf "odinc: %s\n" (Odin.Session.build_error_to_string e);
    exit 1
  | (Link.Linker.Link_error _ | Link.Linker.Duplicate_symbol _
    | Link.Linker.Undefined_symbol _) as exn_ ->
    let msg =
      match Link.Linker.link_error_message exn_ with
      | Some m -> m
      | None -> Printexc.to_string exn_
    in
    Printf.eprintf "odinc: link failed: %s\n" msg;
    exit 1
  | Support.Fault.Injected site ->
    Printf.eprintf "odinc: injected fault at site %s was not recovered\n" site;
    exit 1

(* ---------------- shared telemetry flags ---------------- *)

let time_report_arg =
  Arg.(
    value & flag
    & info [ "time-report" ]
        ~doc:"Print an LLVM -ftime-report-style per-stage breakdown.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON trace (chrome://tracing).")

(* sum of every counter named [name] (labels collapsed) on the recorder *)
let counter_total (r : Telemetry.Recorder.t) name =
  List.fold_left
    (fun acc c ->
      if Telemetry.Metrics.counter_name c = name then
        acc + Telemetry.Metrics.value c
      else acc)
    0
    (Telemetry.Metrics.counters r.Telemetry.Recorder.metrics)

(* export the recorder according to the flags; no flags, no output *)
let export ~time_report ~trace_out ~title (r : Telemetry.Recorder.t) =
  if time_report then Telemetry.Report.print ~title r;
  match trace_out with
  | Some path -> (
    try
      Telemetry.Trace.write ~process_name:title r path;
      Printf.printf "trace written to %s\n" path
    with Sys_error msg ->
      Printf.eprintf "odinc: cannot write trace: %s\n" msg;
      exit 1)
  | None -> ()

(* ---------------- compile ---------------- *)

let emit_conv = Arg.enum [ ("ir", `Ir); ("asm", `Asm) ]

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let optimize =
    Arg.(value & flag & info [ "optimize"; "O" ] ~doc:"Run the O2 pipeline first.")
  in
  let emit =
    Arg.(value & opt emit_conv `Ir & info [ "emit" ] ~doc:"Output: ir or asm.")
  in
  let run file optimize emit time_report trace_out =
    let r = Telemetry.Recorder.create () in
    let span name f = Telemetry.Recorder.with_span r ~cat:"compile" name f in
    let m = span "frontend" (fun () -> compile_source file) in
    if optimize then ignore (Opt.Pipeline.run ~recorder:r m);
    span "verify" (fun () -> Ir.Verify.run_exn m);
    (match emit with
    | `Ir -> print_string (Ir.Print.module_to_string m)
    | `Asm ->
      let compiled =
        span "codegen" (fun () ->
            List.filter_map
              (fun f ->
                if Ir.Func.is_declaration f then None
                else Some (Codegen.Emit.compile_func f))
              (Ir.Modul.functions m))
      in
      List.iter (fun mf -> print_string (Codegen.Emit.func_to_string mf)) compiled);
    export ~time_report ~trace_out ~title:"odinc compile" r
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a mini-C file and print IR or machine code.")
    Term.(const run $ file $ optimize $ emit $ time_report_arg $ trace_out_arg)

(* ---------------- run ---------------- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let entry =
    Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry function.")
  in
  let args =
    Arg.(value & opt string "" & info [ "args" ] ~doc:"Comma-separated integers.")
  in
  let optimize = Arg.(value & flag & info [ "optimize"; "O" ] ~doc:"O2 first.") in
  let run file entry args optimize fault_plan time_report trace_out =
    install_faults fault_plan;
    with_diagnostics @@ fun () ->
    let r = Telemetry.Recorder.create () in
    let span name f = Telemetry.Recorder.with_span r ~cat:"run" name f in
    let m = span "frontend" (fun () -> compile_source file) in
    if optimize then ignore (Opt.Pipeline.run ~recorder:r ~keep:[ entry ] m);
    span "verify" (fun () -> Ir.Verify.run_exn m);
    let obj = span "codegen" (fun () -> Link.Objfile.of_module m) in
    let exe =
      span "link" (fun () -> Link.Linker.link ~host:[ "printf"; "puts" ] [ obj ])
    in
    let vm = Vm.create exe in
    let prof = Vm.enable_profile vm in
    List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) [ "printf"; "puts" ];
    let int_args =
      if args = "" then []
      else List.map Int64.of_string (String.split_on_char ',' args)
    in
    let ret = span "execute" (fun () -> Vm.call vm entry int_args) in
    Printf.printf "%s(%s) = %Ld   [%d cycles, %d instructions]\n" entry args ret
      vm.Vm.cycles vm.Vm.steps;
    if time_report then begin
      (* VM profile: where did the cycles go? *)
      Support.Tab.print ~title:"VM cycle profile"
        ~header:[ "function"; "cycles"; "blocks entered" ]
        (List.map
           (fun (fn, cycles) ->
             let blocks =
               Option.value ~default:0
                 (List.assoc_opt fn (Vm.profile_blocks prof))
             in
             [ fn; string_of_int cycles; string_of_int blocks ])
           (Vm.profile_top prof));
      Printf.printf
        "block entries: %d  probe hits: %d  calls: %d  host calls: %d\n"
        prof.Vm.pr_block_hits prof.Vm.pr_probe_hits prof.Vm.pr_calls
        prof.Vm.pr_host_calls
    end;
    export ~time_report ~trace_out ~title:"odinc run" r
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, link and execute a mini-C file on the VM.")
    Term.(
      const run $ file $ entry $ args $ optimize $ fault_plan_arg
      $ time_report_arg $ trace_out_arg)

(* ---------------- partition ---------------- *)

let mode_conv =
  Arg.enum
    [ ("one", Odin.Partition.One); ("odin", Odin.Partition.Auto);
      ("max", Odin.Partition.Max) ]

let partition_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let mode =
    Arg.(value & opt mode_conv Odin.Partition.Auto & info [ "mode" ] ~doc:"one|odin|max")
  in
  let keep =
    Arg.(value & opt string "main" & info [ "keep" ] ~doc:"Exported entry point.")
  in
  let run file mode keep =
    let m = compile_source file in
    let cls = Odin.Classify.classify ~keep:[ keep ] m in
    let plan = Odin.Partition.plan ~mode ~keep:[ keep ] m cls in
    Printf.printf "partition mode: %s\n" (Odin.Partition.mode_to_string mode);
    Printf.printf "symbol classification:\n";
    List.iter
      (fun gv ->
        if Ir.Modul.is_definition gv then begin
          let name = Ir.Modul.gvalue_name gv in
          let cat =
            match Odin.Classify.category_of cls name with
            | Odin.Classify.Bond -> "bond"
            | Odin.Classify.Copy_on_use -> "copy-on-use"
            | Odin.Classify.Fixed -> "fixed"
          in
          Printf.printf "  %-24s %s\n" name cat
        end)
      (Ir.Modul.globals m);
    Printf.printf "\n%d fragments:\n" (Odin.Partition.fragment_count plan);
    Array.iter
      (fun (f : Odin.Partition.fragment) ->
        Printf.printf "  #%d  exports/defines: %s\n" f.Odin.Partition.fid
          (String.concat ", " (Odin.Partition.SSet.elements f.Odin.Partition.members));
        if not (Odin.Partition.SSet.is_empty f.Odin.Partition.clones) then
          Printf.printf "      local clones: %s\n"
            (String.concat ", " (Odin.Partition.SSet.elements f.Odin.Partition.clones)))
      plan.Odin.Partition.fragments
  in
  Cmd.v
    (Cmd.info "partition" ~doc:"Show Odin's symbol classification and fragments.")
    Term.(const run $ file $ mode $ keep)

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let entry =
    Arg.(value & opt string "target_main" & info [ "entry" ]
           ~doc:"Entry: int f(char *buf, int len).")
  in
  let execs = Arg.(value & opt int 500 & info [ "execs" ] ~doc:"Executions.") in
  let no_prune =
    Arg.(value & flag & info [ "no-prune" ] ~doc:"Disable probe pruning.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fragment-compile parallelism (default: \\$(b,ODIN_JOBS) or the \
             machine's recommended domain count). Output is bit-identical \
             for any value.")
  in
  let metrics_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-csv" ] ~docv:"FILE"
          ~doc:
            "Write campaign metrics (coverage-over-time series, exec-cycle \
             histogram buckets, per-recompile events) as CSV.")
  in
  let span_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "span-limit" ] ~docv:"N"
          ~doc:
            "Retain at most N child spans per parent (oldest dropped, \
             drop counts kept); bounds trace memory on long campaigns. \
             Counters stay exact.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persistent content-addressed object store: compiled fragment \
             objects survive process restarts, so re-running the same \
             campaign recompiles 0 unchanged fragments. Corrupt or torn \
             entries are detected, quarantined and silently recompiled.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Run a fuzzing farm of N concurrent campaign workers instead of \
             a single campaign. Workers share the content-addressed object \
             cache and rendezvous at sync barriers (corpus exchange, global \
             coverage merge, globally-voted probe pruning). Results are \
             deterministic and identical for any N.")
  in
  let sync_interval =
    Arg.(
      value & opt int 100
      & info [ "sync-interval" ] ~docv:"K"
          ~doc:"Farm-wide executions between sync barriers (with --workers).")
  in
  let prune_quorum =
    Arg.(
      value & opt int 1
      & info [ "prune-quorum" ] ~docv:"V"
          ~doc:
            "Fired-execution votes required to prune a probe globally (with \
             --workers); 1 = Untracer policy.")
  in
  let cache_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-limit" ] ~docv:"BYTES"
          ~doc:
            "Garbage-collect the persistent object store down to BYTES at \
             every sync barrier (with --workers and --cache-dir): coldest \
             entries evicted first.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Campaign flight recorder (with --workers): a bounded JSONL \
             event journal fed at every sync barrier (sync stats, \
             farm/session/link counter snapshots, per-probe cost \
             attribution) and republished atomically each time — a killed \
             farm leaves the last barrier's journal, never a torn file. \
             Render it with $(b,odinc report).")
  in
  let incremental_link =
    Arg.(
      value
      & opt (some bool) None
      & info [ "incremental-link" ] ~docv:"BOOL"
          ~doc:
            "Serve rebuilds through the incremental linker (address slabs + \
             reverse relocation index): a refresh patches only the fragments \
             that changed instead of relinking the whole image. Default on; \
             ODIN_INCR_LINK=0 disables process-wide. Purely a performance \
             switch — coverage, corpus and cycle counts are bit-identical \
             either way.")
  in
  let farm_mode =
    Arg.(
      value
      & opt (enum [ ("domains", `Domains); ("procs", `Procs) ]) `Domains
      & info [ "farm-mode" ] ~docv:"MODE"
          ~doc:
            "Farm execution substrate (with --workers): $(b,domains) runs \
             workers on the OCaml domain pool in one process; $(b,procs) \
             runs each worker as a supervised child process (odinc \
             fuzz-worker) speaking the binary wire protocol over pipes, with \
             a preemptive heartbeat watchdog, kill/restart recovery and \
             retirement. Coverage, corpus and cycles are bit-identical \
             across modes.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Publish a campaign checkpoint atomically at every sync barrier \
             (with --workers); the previous checkpoint is rotated to \
             FILE.prev, so a crash mid-publish always leaves a complete one. \
             Resume with $(b,--resume).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"CKPT"
          ~doc:
            "Resume a campaign from a checkpoint written by \
             $(b,--checkpoint) (falling back to CKPT.prev when the primary \
             is torn). The resumed campaign replays to the same final \
             coverage, corpus and journal tail as an uninterrupted run.")
  in
  let worker_timeout =
    Arg.(
      value & opt float 30.
      & info [ "worker-timeout" ] ~docv:"SECS"
          ~doc:
            "Preemptive watchdog deadline (with --farm-mode procs): a worker \
             process that sends no heartbeat for SECS seconds is SIGKILLed \
             and restarted on the same assignment.")
  in
  let adaptive_sync =
    Arg.(
      value & flag
      & info [ "adaptive-sync" ]
          ~doc:
            "Scale the sync interval adaptively (with --workers): after 3 \
             consecutive barriers that accept no input the interval doubles \
             (capped at 8x), and any new coverage resets it to the base. \
             The current interval is reported in the time report and \
             journal.")
  in
  let vote_decay =
    Arg.(
      value & opt float 1.0
      & info [ "vote-decay" ] ~docv:"F"
          ~doc:
            "Multiply a worker's prune-vote weight by F each time its \
             process is killed and restarted (with --farm-mode procs): \
             evidence from a crash-looping worker counts for less toward \
             the prune quorum. 1.0 (default) keeps exact integer quorums.")
  in
  let promote_share =
    Arg.(
      value & opt float 0.0
      & info [ "promote-share" ] ~docv:"F"
          ~doc:
            "Tiered compilation for the farm (with --workers): worker \
             sessions compile fresh fragments through the single-pass \
             tier-0 baseline backend, and at each barrier every fragment \
             whose share of the barrier-merged cycle profile reaches F is \
             promoted to the optimizing tier. Promotion decisions are a \
             pure function of the merged profile, so results stay \
             bit-identical across worker counts and farm modes. 0 \
             (default) keeps the farm untiered.")
  in
  (* ------------- farm mode (--workers N) ------------- *)
  let run_farm ~r ~pool ~m ~entry ~execs ~no_prune ~workers ~sync_interval
      ~prune_quorum ~cache_limit ~cache_dir ~incremental_link ~journal
      ~farm_mode ~checkpoint ~resume ~worker_timeout ~adaptive_sync
      ~vote_decay ~promote_share =
    let cfg =
      {
        Farm.default_config with
        Farm.fc_workers = workers;
        fc_execs = execs;
        fc_sync_interval = sync_interval;
        fc_prune_quorum = (if no_prune then 0 else prune_quorum);
        fc_cache_limit = cache_limit;
        fc_vote_decay = vote_decay;
        fc_adaptive_sync = adaptive_sync;
        fc_promote_share = promote_share;
      }
    in
    let resume =
      match resume with
      | None -> None
      | Some path -> (
        match Farm.Wire.load_checkpoint path with
        | Ok (ck, fallback) ->
          if fallback then
            Printf.eprintf
              "odinc: warning: checkpoint %s torn or missing; resuming from \
               %s.prev\n"
              path path;
          Some ck
        | Error msg ->
          Printf.eprintf "odinc: %s\n" msg;
          exit 1)
    in
    let seeds = [ String.init 48 (fun i -> Char.chr ((i * 37) land 255)) ] in
    let st =
      match farm_mode with
      | `Domains ->
        Farm.run ~telemetry:r ~pool ?cache_dir ?incremental_link
          ?journal_path:journal ?checkpoint_path:checkpoint ?resume
          ~host:[ "printf"; "puts" ] ~entry ~seeds cfg m
      | `Procs ->
        Farm.Proc.run ~telemetry:r ?cache_dir ?incremental_link
          ?journal_path:journal ?checkpoint_path:checkpoint ?resume
          ~worker_timeout ~host:[ "printf"; "puts" ] ~entry ~seeds cfg m
    in
    Printf.printf "farm       : %d workers (%s), %d sync rounds (interval \
                   %d%s)\n"
      st.Farm.fs_workers
      (match farm_mode with `Domains -> "domains" | `Procs -> "procs")
      st.Farm.fs_sync_rounds sync_interval
      (if adaptive_sync then
         Printf.sprintf ", current %d"
           (counter_total r "farm.sync_interval_current")
       else "");
    Printf.printf "executions : %d merged (%d cycles)\n" st.Farm.fs_execs
      st.Farm.fs_total_cycles;
    Printf.printf "coverage   : %d / %d blocks (global bitmap)\n"
      (List.length st.Farm.fs_coverage)
      st.Farm.fs_total_probes;
    Printf.printf "corpus     : %d inputs (global)\n"
      (List.length st.Farm.fs_corpus);
    Printf.printf "pruned     : %d probes (global votes, quorum %d)\n"
      (List.length st.Farm.fs_pruned)
      cfg.Farm.fc_prune_quorum;
    Printf.printf "exchanged  : %d inputs (%d offered, %d duplicates, %d \
                   stale; dedup %.1f%%)\n"
      st.Farm.fs_exchanged st.Farm.fs_offered st.Farm.fs_duplicates
      st.Farm.fs_stale (Farm.dedup_rate st);
    Printf.printf "cache      : %d cross-worker object hits\n"
      st.Farm.fs_cross_hits;
    Printf.printf "recompiles : %d barrier refreshes\n" st.Farm.fs_recompiles;
    (if promote_share > 0. then
       match farm_mode with
       | `Domains ->
         Printf.printf
           "tier       : %d promotions landed (threshold %.2f), %d tier-0 \
            compiles\n"
           (counter_total r "farm.tier_promotions")
           promote_share
           (counter_total r "session.tier0_compiles")
       | `Procs ->
         (* worker sessions live in their own processes; their tier
            counters land in the per-worker journals, not here *)
         Printf.printf "tier       : tiered workers (threshold %.2f)\n"
           promote_share);
    Printf.printf
      "relinks    : %d incremental, %d full (%d symbols patched, %d shard \
       waits)\n"
      (counter_total r "link.relinks_incremental")
      (counter_total r "link.relinks_full")
      (counter_total r "link.symbols_patched")
      (counter_total r "session.cache_shard_waits");
    (match journal with
    | Some path -> Printf.printf "journal    : %s\n" path
    | None -> ());
    (match checkpoint with
    | Some path ->
      Printf.printf "checkpoint : %s (%d published%s)\n" path
        (counter_total r "farm.checkpoints")
        (if resume <> None then ", resumed" else "")
    | None -> ());
    (let restarts = counter_total r "farm.worker_restarts" in
     if restarts > 0 then
       Printf.printf "restarts   : %d worker kill/restarts\n" restarts);
    if st.Farm.fs_skipped > 0 || st.Farm.fs_crashes > 0 then
      Printf.printf "skipped    : %d executions (%d guest crashes)\n"
        st.Farm.fs_skipped st.Farm.fs_crashes;
    List.iter
      (fun (id, why) -> Printf.printf "dead       : worker %d — %s\n" id why)
      st.Farm.fs_dead;
    if st.Farm.fs_gc_evicted > 0 then
      Printf.printf "store gc   : %d entries evicted\n" st.Farm.fs_gc_evicted;
    (match Support.Fault.installed () with
    | Some plan ->
      Printf.printf "faults     : %d injected (plan %s)\n"
        (Support.Fault.total_fired ())
        (Support.Fault.to_string plan)
    | None -> ());
    match st.Farm.fs_store with
    | Some s ->
      Printf.printf
        "store      : %d hits, %d misses, %d writes, %d quarantined, %d \
         gc-evicted\n"
        s.Support.Objstore.st_hits s.Support.Objstore.st_misses
        s.Support.Objstore.st_writes s.Support.Objstore.st_quarantined
        s.Support.Objstore.st_gc_evicted
    | None -> ()
  in
  let run file entry execs no_prune jobs metrics_csv span_limit cache_dir
      workers sync_interval prune_quorum cache_limit journal incremental_link
      farm_mode checkpoint resume worker_timeout adaptive_sync vote_decay
      promote_share fault_plan time_report trace_out =
    install_faults fault_plan;
    with_diagnostics @@ fun () ->
    let r = Telemetry.Recorder.create ?span_limit () in
    let pool =
      match jobs with
      | Some n -> Support.Pool.create ~size:n ()
      | None -> Support.Pool.default ()
    in
    let metrics = r.Telemetry.Recorder.metrics in
    let m =
      Telemetry.Recorder.with_span r ~cat:"campaign" "frontend" (fun () ->
          compile_source file)
    in
    (if journal <> None && workers = None then
       Printf.eprintf
         "odinc: warning: --journal needs --workers (farm mode); ignored\n");
    match workers with
    | Some n ->
      run_farm ~r ~pool ~m ~entry ~execs ~no_prune ~workers:n ~sync_interval
        ~prune_quorum ~cache_limit ~cache_dir ~incremental_link ~journal
        ~farm_mode ~checkpoint ~resume ~worker_timeout ~adaptive_sync
        ~vote_decay ~promote_share;
      (match metrics_csv with
      | Some path -> (
        try
          Telemetry.Csv.write r path;
          Printf.printf "metrics csv written to %s\n" path
        with Sys_error msg ->
          Printf.eprintf "odinc: cannot write metrics csv: %s\n" msg;
          exit 1)
      | None -> ());
      export ~time_report ~trace_out ~title:"odinc fuzz" r
    | None ->
    let session =
      Odin.Session.create ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:[ "printf"; "puts" ] ~pool ?cache_dir
        ?incremental_link:incremental_link ~telemetry:r m
    in
    let cov = Odin.Cov.setup session in
    ignore (Odin.Session.build session);
    let recompiles = ref 0 in
    let rollbacks = ref 0 in
    let exec_counter = Telemetry.Metrics.counter metrics "campaign.execs" in
    let cov_counter =
      Telemetry.Metrics.counter metrics ~series:true "campaign.coverage"
    in
    let target =
      {
        Fuzzer.Fuzz.run =
          (fun input ->
            let vm =
              Telemetry.Recorder.with_span r ~cat:"campaign" "execute"
                (fun () ->
                  let vm = Vm.create (Odin.Session.executable session) in
                  List.iter
                    (fun n -> Vm.register_host vm n (fun _ -> 0L))
                    [ "printf"; "puts" ];
                  let addr = Vm.write_buffer vm input in
                  ignore
                    (Vm.call vm entry [ addr; Int64.of_int (String.length input) ]);
                  vm)
            in
            Telemetry.Metrics.incr exec_counter;
            Telemetry.Metrics.observe metrics "campaign.exec_cycles"
              (float_of_int vm.Vm.cycles);
            let fresh = Odin.Cov.harvest cov vm in
            if fresh <> [] then
              Telemetry.Metrics.incr ~by:(List.length fresh) cov_counter;
            if not no_prune then begin
              let pruned = Odin.Cov.prune_fired cov in
              (* refresh when probes were pruned, and also when a prior
                 rebuild left fragments degraded (re-heal attempt).
                 Transactional: a degraded refresh still produced a
                 consistent executable; a rollback keeps the previous
                 one — the campaign continues either way *)
              if pruned > 0 || Odin.Session.degraded_fragments session <> []
              then
                match Odin.Session.try_refresh session with
                | Some (Odin.Session.Ok | Odin.Session.Degraded _) ->
                  incr recompiles
                | Some (Odin.Session.Rolled_back _) -> incr rollbacks
                | None -> ()
            end;
            { Fuzzer.Fuzz.ex_cycles = vm.Vm.cycles; ex_new_blocks = List.length fresh });
      }
    in
    let rng = Support.Rng.create 42 in
    let seeds = [ String.init 48 (fun i -> Char.chr ((i * 37) land 255)) ] in
    let corpus, stats =
      Telemetry.Recorder.with_span r ~cat:"campaign" "fuzz" (fun () ->
          Fuzzer.Fuzz.collect_corpus ~rng ~seeds ~execs target)
    in
    Printf.printf "executions : %d\n" stats.Fuzzer.Fuzz.executions;
    Printf.printf "corpus     : %d inputs\n" (Fuzzer.Corpus.size corpus);
    Printf.printf "coverage   : %d / %d blocks\n" (Odin.Cov.covered cov)
      cov.Odin.Cov.total_probes;
    Printf.printf "recompiles : %d\n" !recompiles;
    (if Odin.Session.tiered session then
       let ts = Odin.Session.tier_stats session in
       Printf.printf
         "tier       : %d tier-0 compiles (cost %d), %d tier-1 (cost %d), \
          %d promotions, %d OSR migrations\n"
         ts.Odin.Session.ts_tier0_compiles ts.Odin.Session.ts_tier0_cost
         ts.Odin.Session.ts_tier1_compiles ts.Odin.Session.ts_tier1_cost
         ts.Odin.Session.ts_promotions ts.Odin.Session.ts_osr_migrations);
    Printf.printf
      "relinks    : %d incremental, %d full (%d symbols patched, %d shard \
       waits)\n"
      (counter_total r "link.relinks_incremental")
      (counter_total r "link.relinks_full")
      (counter_total r "link.symbols_patched")
      (counter_total r "session.cache_shard_waits");
    (* robustness summary: only printed when something interesting can
       happen (faults installed, a store attached, or an actual event) *)
    let degraded_now = Odin.Session.degraded_fragments session in
    if
      Support.Fault.installed () <> None
      || !rollbacks > 0
      || Odin.Session.degrade_total session > 0
    then begin
      Printf.printf "degraded   : %d fragments now (%d degradations total)\n"
        (List.length degraded_now)
        (Odin.Session.degrade_total session);
      Printf.printf "rollbacks  : %d\n" (Odin.Session.rollbacks session);
      match Support.Fault.installed () with
      | Some plan ->
        Printf.printf "faults     : %d injected (plan %s)\n"
          (Support.Fault.total_fired ())
          (Support.Fault.to_string plan)
      | None -> ()
    end;
    (match Odin.Session.store_stats session with
    | Some st ->
      Printf.printf
        "store      : %d hits, %d misses, %d writes, %d quarantined\n"
        st.Support.Objstore.st_hits st.Support.Objstore.st_misses
        st.Support.Objstore.st_writes st.Support.Objstore.st_quarantined
    | None -> ());
    if time_report then begin
      (* the recompile events are a view over the same span tree the
         report renders, so these sums equal the report's stage totals *)
      let events = Odin.Session.events session in
      let sum f = List.fold_left (fun a e -> a +. f e) 0. events in
      let isum f = List.fold_left (fun a e -> a + f e) 0 events in
      Printf.printf
        "recompile events: %d  compile total %.3f ms  link total %.3f ms  \
         cache hits %d/%d fragments\n"
        (List.length events)
        (1000. *. sum (fun e -> e.Odin.Session.ev_compile_time))
        (1000. *. sum (fun e -> e.Odin.Session.ev_link_time))
        (isum (fun e -> e.Odin.Session.ev_cache_hits))
        (isum (fun e -> List.length e.Odin.Session.ev_fragments))
    end;
    (match metrics_csv with
    | Some path -> (
      (* one row group per recompile event, alongside the campaign
         series/histograms — everything a coverage/latency plot needs *)
      let extra_rows =
        List.concat
          (List.mapi
             (fun i (e : Odin.Session.recompile_event) ->
               let row name v = Telemetry.Csv.row [ "recompile"; name; string_of_int i; v ] in
               [
                 row "fragments"
                   (string_of_int (List.length e.Odin.Session.ev_fragments));
                 row "cache_hits" (string_of_int e.Odin.Session.ev_cache_hits);
                 row "compile_ms"
                   (Printf.sprintf "%.6f" (1000. *. e.Odin.Session.ev_compile_time));
                 row "link_ms"
                   (Printf.sprintf "%.6f" (1000. *. e.Odin.Session.ev_link_time));
                 row "link_incremental"
                   (if e.Odin.Session.ev_link_incremental then "1" else "0");
                 row "symbols_patched"
                   (string_of_int e.Odin.Session.ev_symbols_patched);
               ])
             (Odin.Session.events session))
      in
      try
        Telemetry.Csv.write ~extra_rows r path;
        Printf.printf "metrics csv written to %s\n" path
      with Sys_error msg ->
        Printf.eprintf "odinc: cannot write metrics csv: %s\n" msg;
        exit 1)
    | None -> ());
    export ~time_report ~trace_out ~title:"odinc fuzz" r
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a mini-C target with OdinCov (live pruning).")
    Term.(
      const run $ file $ entry $ execs $ no_prune $ jobs $ metrics_csv
      $ span_limit $ cache_dir $ workers $ sync_interval $ prune_quorum
      $ cache_limit $ journal $ incremental_link $ farm_mode $ checkpoint
      $ resume $ worker_timeout $ adaptive_sync $ vote_decay $ promote_share
      $ fault_plan_arg $ time_report_arg $ trace_out_arg)

(* ---------------- bench-diff ---------------- *)

let list_snapshots dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

let verdict_str = function
  | Snap.Pass -> "pass"
  | Snap.Warn -> "WARN"
  | Snap.Fail -> "FAIL"

let bench_diff_cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE"
          ~doc:"Baseline BENCH_*.json snapshot, or a directory of them.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CURRENT"
          ~doc:"Current snapshot file or directory to gate.")
  in
  let cls_conv =
    Arg.enum [ ("exact", Snap.Exact); ("cost", Snap.Cost); ("wall", Snap.Wall) ]
  in
  let ignore_cls =
    Arg.(
      value & opt_all cls_conv []
      & info [ "ignore" ] ~docv:"CLASS"
          ~doc:
            "Exempt a whole tolerance class (exact|cost|wall) from gating; \
             repeatable. CI gates committed baselines across machines with \
             $(b,--ignore wall) — wall-clock only gates on a fixed host.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print every metric comparison, not only drifting ones.")
  in
  let require_baseline =
    Arg.(
      value & flag
      & info [ "require-baseline" ]
          ~doc:
            "Fail when CURRENT contains a snapshot absent from BASELINE. By \
             default such a section passes with a note, so a new bench \
             section can land before its committed baseline.")
  in
  let run baseline current ignore_cls verbose require_baseline =
    (* directory mode pairs the *union* of both sides' snapshot names:
       baseline-only -> the current run lost a section (always a
       failure); current-only -> a new section with no baseline yet
       (pass with a note unless --require-baseline) *)
    let pairs =
      if Sys.file_exists baseline && Sys.is_directory baseline then begin
        if not (Sys.file_exists current && Sys.is_directory current) then begin
          Printf.eprintf "odinc: %s is a directory but %s is not\n" baseline
            current;
          exit 2
        end;
        let names =
          List.sort_uniq compare
            (list_snapshots baseline @ list_snapshots current)
        in
        if names = [] then begin
          Printf.eprintf "odinc: no BENCH_*.json snapshots under %s or %s\n"
            baseline current;
          exit 2
        end;
        List.map
          (fun f ->
            let b = Filename.concat baseline f in
            ( (if Sys.file_exists b then Some b else None),
              Filename.concat current f,
              f ))
          names
      end
      else [ (Some baseline, current, Filename.basename baseline) ]
    in
    let ign =
      match ignore_cls with
      | [] -> ""
      | l ->
        Printf.sprintf " (ignoring: %s)"
          (String.concat ", " (List.map Snap.cls_to_string l))
    in
    Printf.printf "== bench-diff: %s vs %s%s ==\n" baseline current ign;
    let n_warn = ref 0 and n_fail = ref 0 and n_metrics = ref 0 in
    List.iter
      (fun (bpath, cpath, name) ->
        match bpath with
        | None -> (
          match Snap.read cpath with
          | Error msg ->
            Printf.eprintf "odinc: %s: %s\n" cpath msg;
            exit 2
          | Ok cur ->
            n_metrics := !n_metrics + List.length cur.Snap.s_metrics;
            if require_baseline then begin
              Printf.printf "%-24s FAIL  new section %s has no baseline\n" name
                cur.Snap.s_section;
              incr n_fail
            end
            else
              Printf.printf
                "%-24s pass  new section %s — no baseline to gate against \
                 (--require-baseline to fail)\n"
                name cur.Snap.s_section)
        | Some bpath -> (
        match Snap.read bpath with
        | Error msg ->
          Printf.eprintf "odinc: %s: %s\n" bpath msg;
          exit 2
        | Ok base ->
          if not (Sys.file_exists cpath) then begin
            Printf.printf "%-24s FAIL  current snapshot missing (%s)\n" name
              cpath;
            incr n_fail
          end
          else (
            match Snap.read cpath with
            | Error msg ->
              Printf.eprintf "odinc: %s: %s\n" cpath msg;
              exit 2
            | Ok cur ->
              let entries =
                Snap.diff ~ignore_classes:ignore_cls ~baseline:base
                  ~current:cur ()
              in
              n_metrics := !n_metrics + List.length entries;
              Printf.printf "%-24s %s  (%d metrics, section %s)\n" name
                (verdict_str (Snap.worst entries))
                (List.length entries) base.Snap.s_section;
              List.iter
                (fun (e : Snap.entry) ->
                  let interesting =
                    e.Snap.d_verdict <> Snap.Pass || e.Snap.d_note <> ""
                  in
                  if verbose || interesting then begin
                    (match e.Snap.d_verdict with
                    | Snap.Warn -> incr n_warn
                    | Snap.Fail -> incr n_fail
                    | Snap.Pass -> ());
                    let num = function
                      | Some v -> Printf.sprintf "%.6g" v
                      | None -> "-"
                    in
                    Printf.printf "  [%s] %-32s %-5s %12s -> %-12s %+7.2f%%  %s\n"
                      (verdict_str e.Snap.d_verdict)
                      e.Snap.d_name
                      (Snap.cls_to_string e.Snap.d_class)
                      (num e.Snap.d_base) (num e.Snap.d_cur)
                      (100.
                      *. (if Float.is_finite e.Snap.d_delta then e.Snap.d_delta
                          else if e.Snap.d_delta > 0. then 99.99
                          else -99.99))
                      e.Snap.d_note
                  end)
                entries)))
      pairs;
    Printf.printf "summary: %d snapshots, %d metrics, %d warnings, %d failures\n"
      (List.length pairs) !n_metrics !n_warn !n_fail;
    if !n_fail > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare benchmark snapshots with per-class tolerances; exit 1 on \
          regression.")
    Term.(
      const run $ baseline $ current $ ignore_cls $ verbose $ require_baseline)

(* ---------------- report (flight-recorder journal) ---------------- *)

let report_cmd =
  let journal =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"Flight-recorder journal (odinc fuzz --journal).")
  in
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the probe-cost heatmap.")
  in
  let run path top =
    let module J = Telemetry.Journal in
    let l = J.load path in
    let last kind =
      List.fold_left
        (fun acc (e : J.event) -> if e.J.e_kind = kind then Some e else acc)
        None l.J.l_events
    in
    let fi ev name = Option.value ~default:0 (J.field_int ev name) in
    Printf.printf "== campaign flight recorder: %s ==\n" path;
    Printf.printf "journal    : %d events retained, %d dropped, %d unparseable\n"
      (List.length l.J.l_events) l.J.l_dropped l.J.l_skipped;
    (match last "farm.done" with
    | Some ev ->
      Printf.printf "status     : campaign complete — %d workers\n"
        (fi ev "workers");
      Printf.printf "executions : %d merged (%d cycles)\n" (fi ev "execs")
        (fi ev "cycles");
      Printf.printf "coverage   : %d / %d blocks\n" (fi ev "coverage")
        (fi ev "total_probes");
      Printf.printf "pruned     : %d probes\n" (fi ev "pruned");
      Printf.printf "exchanged  : %d inputs\n" (fi ev "exchanged");
      if fi ev "crashes" > 0 then
        Printf.printf "crashes    : %d guest crashes\n" (fi ev "crashes")
    | None -> (
      match last "farm.sync" with
      | Some ev ->
        Printf.printf
          "status     : in flight — last barrier round %d (%d execs, %d/%s \
           blocks)\n"
          (fi ev "round") (fi ev "execs") (fi ev "coverage") "?"
      | None ->
        if last "mutate.done" = None && last "mutant" = None then
          Printf.printf "status     : no farm events in journal\n"));
    (match last "farm.sync" with
    | Some ev -> (
      match J.field_int ev "interval" with
      | Some n -> Printf.printf "sync intvl : %d executions (at last barrier)\n" n
      | None -> ())
    | None -> ());
    (match last "counters" with
    | Some ev -> (
      match J.field_int ev "store.quarantined" with
      | Some q ->
        Printf.printf "quarantine : %d corrupt store entries quarantined\n" q
      | None -> ())
    | None -> ());
    (match last "counters" with
    | Some ev ->
      print_endline "counters   : (at last barrier)";
      List.iter
        (fun (k, v) ->
          match v with
          | Telemetry.Json.Int n when k <> "round" ->
            Printf.printf "  %-32s %d\n" k n
          | _ -> ())
        ev.J.e_fields
    | None -> ());
    (* mutation campaign: per-mutant verdict events + the summary *)
    (match last "mutate.done" with
    | Some ev ->
      Printf.printf
        "mutation   : %d mutants — %d killed, %d survived, %d timeout \
         (score %.1f%%)\n"
        (fi ev "generated") (fi ev "killed") (fi ev "survived")
        (fi ev "timeout")
        (Option.value ~default:0. (J.field_float ev "score"));
      Printf.printf
        "amortized  : %d full links, %d incremental mutant toggles\n"
        (fi ev "full_links") (fi ev "incr_links")
    | None -> ());
    let mutants =
      List.filter (fun (e : J.event) -> e.J.e_kind = "mutant") l.J.l_events
    in
    (let survivors =
       List.filter
         (fun e -> J.field_str e "verdict" = Some "survived")
         mutants
     in
     if survivors <> [] then begin
       let fs ev name = Option.value ~default:"?" (J.field_str ev name) in
       Support.Tab.print
         ~title:
           (Printf.sprintf "surviving mutants (%d of %d)"
              (List.length survivors) (List.length mutants))
         ~header:[ "id"; "operator"; "target"; "mutation" ]
         (List.map
            (fun ev ->
              [
                string_of_int (fi ev "id"); fs ev "op"; fs ev "target";
                fs ev "desc";
              ])
            survivors)
     end
     else if mutants <> [] then
       print_endline "mutation   : no surviving mutants — suite kills all");
    (* probe-cost heatmap: latest probe.cost event per pid *)
    let costs : (int, int * int * int * int) Hashtbl.t = Hashtbl.create 97 in
    List.iter
      (fun (e : J.event) ->
        if e.J.e_kind = "probe.cost" then
          Hashtbl.replace costs (fi e "pid")
            (fi e "toggles", fi e "execs_armed", fi e "hits", fi e "cycles"))
      l.J.l_events;
    if Hashtbl.length costs > 0 then begin
      let all =
        Hashtbl.fold (fun pid v acc -> (pid, v) :: acc) costs []
        |> List.sort (fun (p1, (_, _, _, c1)) (p2, (_, _, _, c2)) ->
               match compare c2 c1 with 0 -> compare p1 p2 | n -> n)
      in
      let covered =
        List.length (List.filter (fun (_, (_, _, h, _)) -> h > 0) all)
      in
      let total_cycles =
        List.fold_left (fun a (_, (_, _, _, c)) -> a + c) 0 all
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      Support.Tab.print
        ~title:
          (Printf.sprintf "probe cost attribution (top %d of %d by cycles)"
             (min top (List.length all))
             (List.length all))
        ~header:
          [ "pid"; "toggles"; "execs armed"; "hits"; "cycles"; "cyc/exec" ]
        (List.map
           (fun (pid, (tg, ea, h, c)) ->
             [
               string_of_int pid;
               string_of_int tg;
               string_of_int ea;
               string_of_int h;
               string_of_int c;
               (if ea = 0 then "-"
                else Printf.sprintf "%.3f" (float_of_int c /. float_of_int ea));
             ])
           (take top all));
      Printf.printf
        "coverage yield: %d covered blocks / %d probe cycles = %.4f per \
         kcycle\n"
        covered total_cycles
        (if total_cycles = 0 then 0.
         else 1000. *. float_of_int covered /. float_of_int total_cycles)
    end
    else print_endline "probe cost : no probe.cost events in journal"
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a campaign flight-recorder journal: status summary + \
          per-probe cost heatmap.")
    Term.(const run $ journal $ top)

(* ---------------- mutate ---------------- *)

let mutate_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let entry =
    Arg.(value & opt string "target_main" & info [ "entry" ]
           ~doc:"Entry: int f(char *buf, int len).")
  in
  let ops =
    Arg.(
      value & opt string "all"
      & info [ "ops" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated operator families to plant: \
             $(b,aor) (arithmetic swap), $(b,ror) (relational swap), \
             $(b,const) (literal +1), $(b,sdl) (store deletion), \
             $(b,brs) (branch swap). $(b,all) selects every family.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Keep only the first N mutants.")
  in
  let tests =
    Arg.(
      value & opt int 4
      & info [ "tests" ] ~docv:"N"
          ~doc:
            "Size of the deterministic generated test suite (inputs of \
             increasing length; the same N always yields the same suite, \
             so matrices are comparable across runs).")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Distribute the campaign over N workers. The merged kill \
             matrix is bit-identical for any N and either farm mode.")
  in
  let farm_mode =
    Arg.(
      value
      & opt (enum [ ("domains", Mutate.Analysis.Domains);
                    ("procs", Mutate.Analysis.Procs) ])
          Mutate.Analysis.Domains
      & info [ "farm-mode" ] ~docv:"MODE"
          ~doc:
            "Distribution substrate: $(b,domains) shares one process and \
             one object cache; $(b,procs) supervises child processes \
             (odinc mutate-worker) with heartbeat watchdog and \
             kill/restart recovery.")
  in
  let max_steps =
    Arg.(
      value & opt int Mutate.Analysis.default_config.Mutate.Analysis.mc_max_steps
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-test VM step budget: a mutant that exhausts it gets the \
             $(b,timeout) verdict instead of hanging the campaign.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-test wall-clock backstop on top of the step budget.")
  in
  let chunk =
    Arg.(
      value & opt int 16
      & info [ "chunk" ] ~docv:"K" ~doc:"Mutants dealt per worker per round.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Publish the kill matrix so far atomically after every round \
             (previous checkpoint rotated to FILE.prev). Resume with \
             $(b,--resume).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the $(b,--checkpoint) file: finished rows are \
             loaded, only the remaining mutants run, and the final matrix \
             equals an uninterrupted run's.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder journal: one event per mutant verdict plus \
             the campaign summary. Render with $(b,odinc report).")
  in
  let worker_timeout =
    Arg.(
      value & opt float 30.
      & info [ "worker-timeout" ] ~docv:"SECS"
          ~doc:
            "Preemptive watchdog deadline (with --farm-mode procs): a \
             silent worker is SIGKILLed and its mutants re-dealt.")
  in
  let run file entry ops limit tests workers farm_mode max_steps deadline
      chunk checkpoint resume journal worker_timeout fault_plan time_report
      trace_out =
    install_faults fault_plan;
    with_diagnostics @@ fun () ->
    let families =
      try Mutate.Gen.families_of_spec ops
      with Invalid_argument msg ->
        Printf.eprintf "odinc: %s\n" msg;
        exit 2
    in
    if resume && checkpoint = None then begin
      Printf.eprintf "odinc: --resume needs --checkpoint FILE\n";
      exit 2
    end;
    let r = Telemetry.Recorder.create () in
    let m =
      Telemetry.Recorder.with_span r ~cat:"mutate" "frontend" (fun () ->
          compile_source file)
    in
    (* deterministic suite: same --tests N, same inputs, same matrix *)
    let suite =
      List.init tests (fun t ->
          String.init (8 + (8 * t)) (fun i ->
              Char.chr (((i * 37) + (t * 11) + 5) land 255)))
    in
    let cfg =
      {
        Mutate.Analysis.default_config with
        Mutate.Analysis.mc_workers = workers;
        mc_mode = farm_mode;
        mc_families = families;
        mc_limit = limit;
        mc_max_steps = max_steps;
        mc_deadline = deadline;
        mc_chunk = chunk;
        mc_checkpoint = checkpoint;
        mc_resume = resume;
        mc_worker_timeout = worker_timeout;
      }
    in
    let matrix, stats =
      Mutate.Analysis.run ~telemetry:r ?journal_path:journal
        ~host:[ "printf"; "puts" ] ~entry ~suite cfg m
    in
    print_string (Mutate.Analysis.render matrix);
    Printf.printf "workers    : %d (%s)\n" workers
      (match farm_mode with
      | Mutate.Analysis.Domains -> "domains"
      | Mutate.Analysis.Procs -> "procs");
    Printf.printf "compiles   : %d full build%s (one per worker session)\n"
      stats.Mutate.Analysis.s_initial_links
      (if stats.Mutate.Analysis.s_initial_links = 1 then "" else "s");
    Printf.printf
      "relinks    : %d incremental (mutant toggles), %d full (%d symbols \
       patched)\n"
      stats.Mutate.Analysis.s_incr_links stats.Mutate.Analysis.s_full_links
      stats.Mutate.Analysis.s_symbols_patched;
    if stats.Mutate.Analysis.s_resumed_rows > 0 then
      Printf.printf "resumed    : %d rows loaded from checkpoint\n"
        stats.Mutate.Analysis.s_resumed_rows;
    if stats.Mutate.Analysis.s_restarts > 0 then
      Printf.printf "restarts   : %d worker kill/restarts\n"
        stats.Mutate.Analysis.s_restarts;
    List.iter
      (fun (id, why) -> Printf.printf "retired    : worker %d — %s\n" id why)
      stats.Mutate.Analysis.s_retired;
    (match journal with
    | Some path -> Printf.printf "journal    : %s\n" path
    | None -> ());
    (match checkpoint with
    | Some path -> Printf.printf "checkpoint : %s\n" path
    | None -> ());
    export ~time_report ~trace_out ~title:"odinc mutate" r
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:
         "Mutation-test a mini-C target: one compile, one incremental \
          relink per mutant, kill matrix out.")
    Term.(
      const run $ file $ entry $ ops $ limit $ tests $ workers $ farm_mode
      $ max_steps $ deadline $ chunk $ checkpoint $ resume $ journal
      $ worker_timeout $ fault_plan_arg $ time_report_arg $ trace_out_arg)

(* ---------------- workload ---------------- *)

let workload_cmd =
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let run name =
    match Workloads.Profile.find name with
    | Some p -> print_string (Workloads.Generate.source p)
    | None ->
      Printf.eprintf "unknown workload %S; available: %s\n" name
        (String.concat ", "
           (List.map (fun (p : Workloads.Profile.t) -> p.Workloads.Profile.name)
              Workloads.Profile.all));
      exit 1
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Print the generated source of a benchmark workload.")
    Term.(const run $ wname)

let () =
  (* hidden re-exec entry for the process farm: the supervisor spawns
     `odinc fuzz-worker` and immediately speaks wire frames on
     stdin/stdout, so this must not go through cmdliner *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fuzz-worker" then begin
    Farm.Proc.worker_main ();
    exit 0
  end;
  (* same trick for the mutation farm's supervised children *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "mutate-worker" then
    Mutate.Analysis.worker_main ();
  let doc = "Odin on-demand instrumentation toolchain (PLDI 2022 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "odinc" ~doc)
          [
            compile_cmd; run_cmd; partition_cmd; fuzz_cmd; mutate_cmd;
            bench_diff_cmd; report_cmd; workload_cmd;
          ]))
