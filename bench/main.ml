(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the Figure 3 motivation breakdown.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig8    -- one experiment
     dune exec bench/main.exe -- quick   -- reduced workload set

   Execution durations are deterministic VM cycle counts; recompilation
   and link durations are wall-clock measurements of this host (absolute
   values are smaller than the paper's LLVM-based numbers — our compiler
   and programs are smaller — but the relative shape is the experiment).
   A Bechamel micro-benchmark suite at the end measures the core Odin
   operations (partition, schedule, fragment recompile, link). *)

let entry = "target_main"

module Snap = Telemetry.Snapshot

(* where BENCH_<section>.json snapshots land; --out-dir overrides *)
let out_dir = ref "."
let quick_mode = ref false

(* Publish one section's metrics as BENCH_<section>.json (atomic write;
   a killed run never leaves a truncated snapshot). *)
let emit ~section metrics =
  let meta =
    Snap.default_meta
      ~jobs:(Support.Pool.default_size ())
      ~extra:[ ("mode", (if !quick_mode then "quick" else "full")) ]
      ()
  in
  let path = Snap.write ~dir:!out_dir (Snap.create ~section ~meta metrics) in
  Printf.printf "  snapshot -> %s\n" path

type config = { fuzz_execs : int; rounds : int; programs : Workloads.Profile.t list }

let full_config =
  { fuzz_execs = 300; rounds = 2; programs = Workloads.Profile.all }

let quick_config =
  {
    fuzz_execs = 80;
    rounds = 2;
    programs =
      List.filter
        (fun (p : Workloads.Profile.t) ->
          List.mem p.Workloads.Profile.name [ "libpng"; "json"; "sqlite" ])
        Workloads.Profile.all;
  }

(* ------------------------------------------------------------------ *)
(* Shared preparation (compile + fuzz once per program)                *)
(* ------------------------------------------------------------------ *)

let prepared : (string, Fuzzer.Campaign.prepared) Hashtbl.t = Hashtbl.create 16

let prepare cfg (p : Workloads.Profile.t) =
  match Hashtbl.find_opt prepared p.Workloads.Profile.name with
  | Some prep -> prep
  | None ->
    let prep =
      Fuzzer.Campaign.prepare ~fuzz_execs:cfg.fuzz_execs ~rounds:cfg.rounds p
    in
    Hashtbl.replace prepared p.Workloads.Profile.name prep;
    prep

(* ------------------------------------------------------------------ *)
(* Figure 3: compilation cost breakdown                                *)
(* ------------------------------------------------------------------ *)

let fig3 _cfg =
  let rates = Buildsim.calibrate () in
  let rows =
    List.map
      (fun (p : Workloads.Profile.t) ->
        let source = Workloads.Generate.source p in
        let m = Minic.Lower.compile source in
        let b = Buildsim.model rates (Buildsim.stats_of_module source m) in
        (p.Workloads.Profile.name, b, Buildsim.savings_from_caching b))
      [ Workloads.Profile.find_exn "libxml2" ]
  in
  Support.Tab.print ~title:"Figure 3: compilation cost breakdown (modelled, seconds)"
    ~header:
      [ "program"; "autogen"; "configure"; "frontend"; "opt+instr"; "codegen";
        "link"; "total"; "cacheable" ]
    (List.map
       (fun (name, b, savings) ->
         [
           name;
           Printf.sprintf "%.2f" b.Buildsim.autogen;
           Printf.sprintf "%.2f" b.Buildsim.configure;
           Printf.sprintf "%.2f" b.Buildsim.frontend;
           Printf.sprintf "%.2f" b.Buildsim.optimize;
           Printf.sprintf "%.2f" b.Buildsim.codegen;
           Printf.sprintf "%.3f" b.Buildsim.link;
           Printf.sprintf "%.2f" (Buildsim.total b);
           Support.Tab.pct savings;
         ])
       rows);
  print_endline
    "  (paper, libxml2: autogen 10.83  configure 4.56  frontend 6.22  opt 15.28\n\
    \   codegen 2.75  link 0.06; Odin eliminates build system + frontend = ~45%)"


(* ------------------------------------------------------------------ *)
(* Figure 2: instrumentation-correctness experiment                    *)
(* ------------------------------------------------------------------ *)

let fig2 _cfg =
  print_endline
    "\n== Figure 2: does CmpLog survive optimization? (input-to-state solving) ==";
  print_endline
    "  Target: range-check roadblocks (the islower pattern) + byte-equality\n\
    \  roadblocks; the same solver drives both CmpLog strategies.";
  let rows =
    List.concat_map
      (fun seed ->
        let spec = Fuzzer.Fig2.make_spec seed in
        [ (spec, Fuzzer.Fig2.run_odin spec); (spec, Fuzzer.Fig2.run_static spec) ])
      [ 11; 23; 37 ]
  in
  Support.Tab.print
    ~title:"Roadblocks solved by input-to-state correspondence"
    ~header:[ "strategy"; "range checks"; "equality checks" ]
    (List.map
       (fun ((spec : Fuzzer.Fig2.spec), (r : Fuzzer.Fig2.result)) ->
         [
           r.Fuzzer.Fig2.strategy;
           Printf.sprintf "%d/%d" r.Fuzzer.Fig2.passed_range spec.Fuzzer.Fig2.n_range;
           Printf.sprintf "%d/%d" r.Fuzzer.Fig2.passed_magic spec.Fuzzer.Fig2.n_magic;
         ])
       rows);
  print_endline
    "  (paper Section 2.2: after the range fold the logged operand is x-L, not\n\
    \   a copy of the input — \"the solver algorithm cannot work anymore\";\n\
    \   instrument-first Odin logs the original bytes and solves everything)"

(* ------------------------------------------------------------------ *)
(* Figures 8 & 9: instrumented execution duration                      *)
(* ------------------------------------------------------------------ *)

type toolrow = {
  t_program : string;
  t_odincov : float;
  t_sancov : float;
  t_noprune : float;
  t_drcov : float;
  t_libinst : float;
  t_recompile_ms : float;  (** mean OdinCov recompilation during replay *)
  t_recompiles : int;
}

let tool_table : (string, toolrow) Hashtbl.t = Hashtbl.create 16

let measure_tools cfg (p : Workloads.Profile.t) =
  match Hashtbl.find_opt tool_table p.Workloads.Profile.name with
  | Some row -> row
  | None ->
    let prep = prepare cfg p in
    let base =
      float_of_int (Fuzzer.Campaign.replay_plain prep).Fuzzer.Campaign.r_total_cycles
    in
    let norm (r : Fuzzer.Campaign.replay) =
      float_of_int r.Fuzzer.Campaign.r_total_cycles /. base
    in
    let sancov = norm (Fuzzer.Campaign.replay_sancov prep) in
    let drcov = norm (Fuzzer.Campaign.replay_dbi Baselines.Dbi.Drcov prep) in
    let libinst = norm (Fuzzer.Campaign.replay_dbi Baselines.Dbi.Libinst prep) in
    let noprune =
      norm (Fuzzer.Campaign.replay_odincov ~prune:false prep).Fuzzer.Campaign.o_replay
    in
    let odin = Fuzzer.Campaign.replay_odincov ~prune:true prep in
    let odincov = norm odin.Fuzzer.Campaign.o_replay in
    let events = Odin.Session.events odin.Fuzzer.Campaign.o_session in
    (* skip the initial whole-build event: the paper's 82 ms average is
       over *re*compilations during the campaign *)
    let recompile_events = match events with _initial :: rest -> rest | [] -> [] in
    let recompile_ms =
      match recompile_events with
      | [] -> 0.
      | evs ->
        1000.
        *. Support.Stats.mean
             (List.map
                (fun (e : Odin.Session.recompile_event) ->
                  e.Odin.Session.ev_compile_time +. e.Odin.Session.ev_link_time)
                evs)
    in
    let row =
      {
        t_program = p.Workloads.Profile.name;
        t_odincov = odincov;
        t_sancov = sancov;
        t_noprune = noprune;
        t_drcov = drcov;
        t_libinst = libinst;
        t_recompile_ms = recompile_ms;
        t_recompiles = odin.Fuzzer.Campaign.o_recompiles;
      }
    in
    Hashtbl.replace tool_table p.Workloads.Profile.name row;
    row

let fig8 cfg =
  print_endline "\n== Section 5 tool table ==";
  print_endline
    "  OdinCov            Odin       dynamic  compiler\n\
    \  SanitizerCoverage  LLVM       static   compiler\n\
    \  DrCov              DynamoRIO  dynamic  binary\n\
    \  libInst            DynInst    static   binary";
  let rows = List.map (measure_tools cfg) cfg.programs in
  Support.Tab.print
    ~title:
      "Figure 8: normalized execution duration per program (1.00 = uninstrumented)"
    ~header:[ "program"; "OdinCov"; "SanCov"; "Odin-NoPrune"; "DrCov"; "libInst" ]
    (List.map
       (fun r ->
         [
           r.t_program;
           Printf.sprintf "%.3f" r.t_odincov;
           Printf.sprintf "%.3f" r.t_sancov;
           Printf.sprintf "%.3f" r.t_noprune;
           Printf.sprintf "%.3f" r.t_drcov;
           Printf.sprintf "%.2f" r.t_libinst;
         ])
       rows);
  Support.Tab.print_bars
    ~title:"Figure 8 (bars): OdinCov vs SanCov vs DrCov (normalized duration)"
    (List.concat_map
       (fun r ->
         [
           (r.t_program ^ "/odin", r.t_odincov);
           (r.t_program ^ "/sancov", r.t_sancov);
           (r.t_program ^ "/drcov", r.t_drcov);
         ])
       rows)

let fig9 cfg =
  let rows = List.map (measure_tools cfg) cfg.programs in
  let dist f = List.map f rows in
  let summary name xs =
    let s = Support.Stats.summarize xs in
    [
      name;
      Printf.sprintf "%.3f" s.Support.Stats.median;
      Printf.sprintf "%.3f" s.Support.Stats.mean;
      Printf.sprintf "%.3f" s.Support.Stats.p25;
      Printf.sprintf "%.3f" s.Support.Stats.p75;
      Printf.sprintf "%.3f" s.Support.Stats.min;
      Printf.sprintf "%.3f" s.Support.Stats.max;
    ]
  in
  Support.Tab.print
    ~title:"Figure 9: distribution of normalized execution durations (all programs)"
    ~header:[ "tool"; "median"; "mean"; "p25"; "p75"; "min"; "max" ]
    [
      summary "OdinCov" (dist (fun r -> r.t_odincov));
      summary "SanCov" (dist (fun r -> r.t_sancov));
      summary "OdinCov-NoPrune" (dist (fun r -> r.t_noprune));
      summary "DrCov" (dist (fun r -> r.t_drcov));
      summary "libInst" (dist (fun r -> r.t_libinst));
    ];
  let med f = Support.Stats.median (dist f) in
  let ov x = x -. 1. in
  let odin = med (fun r -> r.t_odincov) in
  let sancov = med (fun r -> r.t_sancov) in
  let drcov = med (fun r -> r.t_drcov) in
  let libinst = med (fun r -> r.t_libinst) in
  let noprune_mean = Support.Stats.mean (dist (fun r -> r.t_noprune)) in
  let sancov_mean = Support.Stats.mean (dist (fun r -> r.t_sancov)) in
  Printf.printf
    "\n\
     Headline (paper Section 5.1 | measured):\n\
    \  OdinCov median overhead     : paper  3.48%%   | measured %6.2f%%\n\
    \  SanCov median overhead      : paper 15%%      | measured %6.2f%%\n\
    \  DrCov median overhead       : paper 63%%      | measured %6.2f%%\n\
    \  libInst median overhead     : paper 1920%%    | measured %6.0f%%\n\
    \  SanCov/OdinCov overhead     : paper 3x       | measured %5.1fx\n\
    \  DrCov/OdinCov overhead      : paper 17x      | measured %5.1fx\n\
    \  libInst/OdinCov overhead    : paper 551x     | measured %5.0fx\n\
    \  NoPrune vs SanCov (mean)    : paper +23%%     | measured %+5.1f%%\n"
    (100. *. ov odin) (100. *. ov sancov) (100. *. ov drcov)
    (100. *. ov libinst)
    (ov sancov /. ov odin)
    (ov drcov /. ov odin)
    (ov libinst /. ov odin)
    (100. *. ((noprune_mean -. sancov_mean) /. sancov_mean));
  let recompiles =
    List.filter (fun r -> r.t_recompiles > 0) rows
    |> List.map (fun r -> r.t_recompile_ms)
  in
  if recompiles <> [] then
    Printf.printf
      "  Mean recompilation latency  : paper 82 ms   | measured %.2f ms (compiler & programs are smaller)\n"
      (Support.Stats.mean recompiles)

(* ------------------------------------------------------------------ *)
(* Table 1 + Figure 10: partition variants, uninstrumented             *)
(* ------------------------------------------------------------------ *)

type variant_row = {
  v_program : string;
  v_one : float;
  v_auto : float;
  v_max : float;
  v_frag_counts : int * int * int;
  v_build : (Odin.Partition.mode * Odin.Session.recompile_event) list;
}

let variant_table : (string, variant_row) Hashtbl.t = Hashtbl.create 16

let measure_variants cfg (p : Workloads.Profile.t) =
  match Hashtbl.find_opt variant_table p.Workloads.Profile.name with
  | Some row -> row
  | None ->
    let prep = prepare cfg p in
    let base =
      float_of_int (Fuzzer.Campaign.replay_plain prep).Fuzzer.Campaign.r_total_cycles
    in
    let run mode =
      let m = Ir.Clone.clone_module prep.Fuzzer.Campaign.modul in
      let session =
        Odin.Session.create ~mode ~keep:[ entry ]
          ~host:Workloads.Generate.host_functions m
      in
      let event = Odin.Session.build session in
      let exe = Odin.Session.executable session in
      let cycles =
        List.fold_left
          (fun acc input -> acc + (Fuzzer.Campaign.run_once exe input).Vm.cycles)
          0 prep.Fuzzer.Campaign.corpus
      in
      ( float_of_int cycles /. base,
        Odin.Partition.fragment_count session.Odin.Session.plan,
        event )
    in
    let one, _, ev_one = run Odin.Partition.One in
    let auto, nf_auto, ev_auto = run Odin.Partition.Auto in
    let max_, nf_max, ev_max = run Odin.Partition.Max in
    let row =
      {
        v_program = p.Workloads.Profile.name;
        v_one = one;
        v_auto = auto;
        v_max = max_;
        v_frag_counts = (1, nf_auto, nf_max);
        v_build =
          [
            (Odin.Partition.One, ev_one);
            (Odin.Partition.Auto, ev_auto);
            (Odin.Partition.Max, ev_max);
          ];
      }
    in
    Hashtbl.replace variant_table p.Workloads.Profile.name row;
    row

let fig10 cfg =
  print_endline "\n== Table 1: partition-scheme variants ==";
  print_endline
    "  Odin-OnePartition : 1 fragment     (better optimization)\n\
    \  Odin              : survey-driven  (the paper's scheme)\n\
    \  Odin-MaxPartition : max possible   (faster recompilation)";
  let rows = List.map (measure_variants cfg) cfg.programs in
  Support.Tab.print
    ~title:
      "Figure 10: normalized execution duration of NON-instrumented partition variants"
    ~header:
      [ "program"; "OnePartition"; "Odin"; "MaxPartition"; "frags(one/odin/max)" ]
    (List.map
       (fun r ->
         let a, b, c = r.v_frag_counts in
         [
           r.v_program;
           Printf.sprintf "%.3f" r.v_one;
           Printf.sprintf "%.3f" r.v_auto;
           Printf.sprintf "%.3f" r.v_max;
           Printf.sprintf "%d/%d/%d" a b c;
         ])
       rows);
  let mean f = Support.Stats.mean (List.map f rows) in
  Printf.printf
    "\n\
     Average overhead vs baseline (paper | measured):\n\
    \  Odin-OnePartition : paper  1.12%% | measured %6.2f%%\n\
    \  Odin              : paper  1.43%% | measured %6.2f%%\n\
    \  Odin-MaxPartition : paper 55.77%% | measured %6.2f%%\n\
    \  Odin vs One       : paper  0.31%% | measured %6.2f%%\n"
    (100. *. (mean (fun r -> r.v_one) -. 1.))
    (100. *. (mean (fun r -> r.v_auto) -. 1.))
    (100. *. (mean (fun r -> r.v_max) -. 1.))
    (100. *. (mean (fun r -> r.v_auto) -. mean (fun r -> r.v_one)))

(* ------------------------------------------------------------------ *)
(* Figures 11 & 12: recompilation cost                                 *)
(* ------------------------------------------------------------------ *)

let per_fragment_times (ev : Odin.Session.recompile_event) =
  List.map snd ev.Odin.Session.ev_per_fragment

let fig11 cfg =
  let rows = List.map (measure_variants cfg) cfg.programs in
  Support.Tab.print
    ~title:
      "Figure 11: average fragment recompilation time, normalized to recompiling\n\
       the whole program (Odin-OnePartition)"
    ~header:[ "program"; "OnePartition"; "Odin"; "MaxPartition" ]
    (List.map
       (fun r ->
         let time_of mode =
           let ev = List.assoc mode r.v_build in
           Support.Stats.mean (per_fragment_times ev)
         in
         let whole =
           let ev = List.assoc Odin.Partition.One r.v_build in
           max 1e-9 ev.Odin.Session.ev_compile_time
         in
         [
           r.v_program;
           "100.00%";
           Support.Tab.pct (time_of Odin.Partition.Auto /. whole);
           Support.Tab.pct (time_of Odin.Partition.Max /. whole);
         ])
       rows);
  let avg mode =
    Support.Stats.mean
      (List.map
         (fun r ->
           let ev = List.assoc mode r.v_build in
           let whole =
             max 1e-9
               (List.assoc Odin.Partition.One r.v_build).Odin.Session.ev_compile_time
           in
           Support.Stats.mean (per_fragment_times ev) /. whole)
         rows)
  in
  let abs_avg mode =
    Support.Stats.mean
      (List.concat_map
         (fun r -> per_fragment_times (List.assoc mode r.v_build))
         rows)
  in
  Printf.printf
    "\n\
     Average per-fragment recompilation vs whole-program (paper | measured):\n\
    \  Odin saves                 : paper 97.91%% | measured %5.2f%%\n\
    \  Odin/Max normalized ratio  : paper ~6.5x  | measured %5.1fx\n\
    \  Odin/Max absolute ms ratio : paper ~15.1x | measured %5.1fx (30.67 ms vs 2.03 ms)\n"
    (100. *. (1. -. avg Odin.Partition.Auto))
    (avg Odin.Partition.Auto /. avg Odin.Partition.Max)
    (abs_avg Odin.Partition.Auto /. abs_avg Odin.Partition.Max)

let fig12 cfg =
  let rows = List.map (measure_variants cfg) cfg.programs in
  Support.Tab.print
    ~title:
      "Figure 12: worst-case fragment recompilation + link, absolute (milliseconds)"
    ~header:[ "program"; "One compile"; "Odin compile"; "Max compile"; "link" ]
    (List.map
       (fun r ->
         let worst mode =
           let ev = List.assoc mode r.v_build in
           1000. *. List.fold_left max 0. (per_fragment_times ev)
         in
         let link =
           let ev = List.assoc Odin.Partition.Auto r.v_build in
           1000. *. ev.Odin.Session.ev_link_time
         in
         [
           r.v_program;
           Printf.sprintf "%.1f" (worst Odin.Partition.One);
           Printf.sprintf "%.1f" (worst Odin.Partition.Auto);
           Printf.sprintf "%.1f" (worst Odin.Partition.Max);
           Printf.sprintf "%.2f" link;
         ])
       rows);
  print_endline
    "  (paper: median worst-case 542 ms, sqlite worst ~2 s, link avg 49 ms —\n\
    \   absolute values here scale down with compiler/program size; the shape\n\
    \   One >= Odin >= Max and sqlite-as-worst-case is the experiment)"


(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let ablation cfg =
  print_endline "\n== Ablations ==";
  (* 1. back-propagation of Algorithm 2: coverage survival after rebuild *)
  let p = List.hd cfg.programs in
  let prep = prepare cfg p in
  let survival ~backprop =
    let m = Ir.Clone.clone_module prep.Fuzzer.Campaign.modul in
    let session =
      Odin.Session.create ~mode:Odin.Partition.One ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:Workloads.Generate.host_functions m
    in
    let cov = Odin.Cov.setup session in
    ignore (Odin.Session.build session);
    (match prep.Fuzzer.Campaign.corpus with
    | first :: _ ->
      let vm = Fuzzer.Campaign.run_once (Odin.Session.executable session) first in
      ignore (Odin.Cov.harvest cov vm);
      ignore (Odin.Cov.prune_fired cov);
      ignore (Odin.Session.refresh ~backprop session)
    | [] -> ());
    (* how many of the remaining (not yet covered) probes still produce
       coverage when new paths execute? *)
    let alive = ref 0 in
    List.iter
      (fun input ->
        let vm = Fuzzer.Campaign.run_once (Odin.Session.executable session) input in
        alive := !alive + List.length (Odin.Cov.harvest cov vm))
      prep.Fuzzer.Campaign.corpus;
    (!alive, Instr.Manager.count session.Odin.Session.manager)
  in
  let alive_bp, remaining_bp = survival ~backprop:true in
  let alive_nobp, remaining_nobp = survival ~backprop:false in
  Printf.printf
    "Back-propagation (Algorithm 2 lines 13-17), program %s:\n\
    \  with back-propagation    : %d remaining probes, %d fired on new paths\n\
    \  without back-propagation : %d remaining probes, %d fired (coverage lost)\n"
    p.Workloads.Profile.name remaining_bp alive_bp remaining_nobp alive_nobp;
  (* 2. copy-on-use cloning vs plain import *)
  let variant ~copy_on_use =
    let m = Ir.Clone.clone_module prep.Fuzzer.Campaign.modul in
    let session =
      Odin.Session.create ~copy_on_use ~keep:[ entry ]
        ~host:Workloads.Generate.host_functions m
    in
    ignore (Odin.Session.build session);
    let exe = Odin.Session.executable session in
    ( List.fold_left
        (fun acc input -> acc + (Fuzzer.Campaign.run_once exe input).Vm.cycles)
        0 prep.Fuzzer.Campaign.corpus,
      Odin.Partition.fragment_count session.Odin.Session.plan )
  in
  let cycles_cou, frags_cou = variant ~copy_on_use:true in
  let cycles_nocou, frags_nocou = variant ~copy_on_use:false in
  Printf.printf
    "Copy-on-use cloning, program %s:\n\
    \  with cloning    : %d cycles, %d fragments\n\
    \  import instead  : %d cycles, %d fragments (%+.2f%% duration)\n"
    p.Workloads.Profile.name cycles_cou frags_cou cycles_nocou frags_nocou
    (100. *. (float_of_int cycles_nocou /. float_of_int cycles_cou -. 1.))

(* ------------------------------------------------------------------ *)
(* Telemetry: per-stage breakdown of a full campaign                   *)
(* ------------------------------------------------------------------ *)

(** Where does the wall-clock of one campaign go? Runs prepare + an
    OdinCov replay for one workload with a telemetry recorder attached
    and prints the per-stage aggregation (the -ftime-report analogue of
    the figures above, which only show per-event sums). *)
let timereport cfg =
  print_endline "\n== Telemetry: per-stage time breakdown (one campaign) ==";
  let p = List.hd cfg.programs in
  let r = Telemetry.Recorder.create () in
  let prep =
    Fuzzer.Campaign.prepare ~telemetry:r ~fuzz_execs:cfg.fuzz_execs
      ~rounds:cfg.rounds p
  in
  let odin = Fuzzer.Campaign.replay_odincov ~telemetry:r prep in
  Telemetry.Report.print
    ~title:(Printf.sprintf "campaign %s" p.Workloads.Profile.name)
    r;
  (* cross-check: the report's compile/link stage totals are the same
     numbers the Session exposes as recompile events (one timing source) *)
  let events = Odin.Session.events odin.Fuzzer.Campaign.o_session in
  let sum f = List.fold_left (fun a e -> a +. f e) 0. events in
  Printf.printf
    "  cross-check vs Session events: %d events, compile %.3f ms, link %.3f ms\n"
    (List.length events)
    (1000. *. sum (fun e -> e.Odin.Session.ev_compile_time))
    (1000. *. sum (fun e -> e.Odin.Session.ev_link_time));
  (* snapshot: the deterministic session/link/campaign counters gate as
     Exact; shard waits are contention-dependent; the O(changed)-refresh
     counters gate as Cost — they measure scheduler/memo work, which is
     expected to drift as those paths evolve, within tolerance *)
  let agg : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let name = Telemetry.Metrics.counter_name c in
      if
        String.starts_with ~prefix:"session." name
        || String.starts_with ~prefix:"link." name
        || String.starts_with ~prefix:"campaign." name
      then
        Hashtbl.replace agg name
          (Telemetry.Metrics.value c
          + Option.value ~default:0 (Hashtbl.find_opt agg name)))
    (Telemetry.Metrics.counters r.Telemetry.Recorder.metrics);
  let counter_metrics =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []
    |> List.sort compare
    |> List.map (fun (name, v) ->
           let cls =
             if name = "session.cache_shard_waits" then Snap.Info
             else if
               List.mem name
                 [
                   "session.schedule_visited";
                   "session.opt_memo_hits";
                   "link.slab_compactions";
                 ]
             then Snap.Cost
             else Snap.Exact
           in
           Snap.metric ~cls ("counter." ^ name) (float_of_int v))
  in
  emit ~section:"timereport"
    (Snap.metric ~cls:Snap.Exact "recompile_events"
       (float_of_int (List.length events))
    :: Snap.metric ~unit_:"ms" ~cls:Snap.Wall "compile_ms"
         (1000. *. sum (fun e -> e.Odin.Session.ev_compile_time))
    :: Snap.metric ~unit_:"ms" ~cls:Snap.Wall "link_ms"
         (1000. *. sum (fun e -> e.Odin.Session.ev_link_time))
    :: counter_metrics)

(* ------------------------------------------------------------------ *)
(* Parallel recompilation: domain pool + content-addressed cache       *)
(* ------------------------------------------------------------------ *)

(** Serial vs parallel vs cache-warm cost of a full multi-fragment
    refresh. Max partition on the last (largest) workload gives one
    fragment per function; toggling every coverage probe off schedules
    all of them (a cold recompile), toggling back on reproduces the
    initial build's instrumented IR byte-for-byte, so every fragment is
    an object-cache hit and the refresh is relink-only. *)
let parallel cfg =
  print_endline "\n== Parallel recompilation (domain pool + object cache) ==";
  let p = List.nth cfg.programs (List.length cfg.programs - 1) in
  let observe size =
    let pool =
      if size = 1 then Support.Pool.serial else Support.Pool.create ~size ()
    in
    Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool) @@ fun () ->
    let m = Workloads.Generate.compile p in
    let session =
      Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:Workloads.Generate.host_functions ~pool m
    in
    ignore (Odin.Cov.setup session);
    ignore (Odin.Session.build session);
    let toggle enabled =
      Instr.Manager.iter
        (fun pr ->
          Instr.Manager.set_enabled session.Odin.Session.manager pr enabled)
        session.Odin.Session.manager
    in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, 1000. *. (Unix.gettimeofday () -. t0))
    in
    toggle false;
    let ev_cold, ms_cold =
      time (fun () -> Option.get (Odin.Session.refresh session))
    in
    toggle true;
    let ev_warm, ms_warm =
      time (fun () -> Option.get (Odin.Session.refresh session))
    in
    let fingerprint =
      Hashtbl.fold
        (fun fid obj acc ->
          (fid, Digest.string (Marshal.to_string obj [])) :: acc)
        session.Odin.Session.cache []
      |> List.sort compare
    in
    (ev_cold, ms_cold, ev_warm, ms_warm, fingerprint)
  in
  let sizes =
    List.sort_uniq compare [ 1; 2; Support.Pool.default_size () ]
  in
  let results = List.map (fun s -> (s, observe s)) sizes in
  Support.Tab.print
    ~title:(Printf.sprintf "full refresh, program %s (Max partition)"
              p.Workloads.Profile.name)
    ~header:
      [ "jobs"; "cold ms"; "compiled"; "warm ms"; "hits"; "recompiled" ]
    (List.map
       (fun (size, (ev_cold, ms_cold, ev_warm, ms_warm, _)) ->
         let n_cold = List.length ev_cold.Odin.Session.ev_fragments in
         let n_warm = List.length ev_warm.Odin.Session.ev_fragments in
         [
           string_of_int size;
           Printf.sprintf "%.2f" ms_cold;
           string_of_int (n_cold - ev_cold.Odin.Session.ev_cache_hits);
           Printf.sprintf "%.2f" ms_warm;
           Printf.sprintf "%d/%d" ev_warm.Odin.Session.ev_cache_hits n_warm;
           string_of_int (n_warm - ev_warm.Odin.Session.ev_cache_hits);
         ])
       results);
  (* the correctness bar, checked live: every pool size produced
     bit-identical fragment objects *)
  let fps =
    List.map (fun (_, (_, _, _, _, fp)) -> fp) results
  in
  let identical = List.for_all (fun fp -> fp = List.hd fps) fps in
  Printf.printf "  bit-identical objects across pool sizes: %s\n"
    (if identical then "yes" else "NO — BUG");
  let _, (_, serial_cold, _, serial_warm, _) = List.hd results in
  let best_cold =
    match List.tl results with
    | [] -> serial_cold
    | tl ->
      List.fold_left (fun acc (_, (_, ms, _, _, _)) -> min acc ms) infinity tl
  in
  Printf.printf
    "  cold refresh: serial %.2f ms, best parallel %.2f ms (%.2fx, %d cores); \
     cache-warm refresh %.2f ms recompiles 0 fragments\n"
    serial_cold best_cold
    (serial_cold /. max 1e-9 best_cold)
    (Domain.recommended_domain_count ())
    serial_warm;
  (* snapshot: only the fixed pool sizes (1, 2) — jobsN metric names must
     not depend on this host's core count or cross-machine diffs would
     report missing metrics *)
  emit ~section:"parallel"
    (List.concat_map
       (fun (size, (ev_cold, ms_cold, ev_warm, ms_warm, _)) ->
         if size > 2 then []
         else
           let n_cold = List.length ev_cold.Odin.Session.ev_fragments in
           let n_warm = List.length ev_warm.Odin.Session.ev_fragments in
           let pre = Printf.sprintf "jobs%d." size in
           [
             Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "cold_ms") ms_cold;
             Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "warm_ms") ms_warm;
             Snap.metric ~cls:Snap.Exact (pre ^ "compiled_cold")
               (float_of_int (n_cold - ev_cold.Odin.Session.ev_cache_hits));
             Snap.metric ~cls:Snap.Exact (pre ^ "warm_cache_hits")
               (float_of_int ev_warm.Odin.Session.ev_cache_hits);
             Snap.metric ~cls:Snap.Exact (pre ^ "warm_recompiled")
               (float_of_int (n_warm - ev_warm.Odin.Session.ev_cache_hits));
           ])
       results
    @ [
        Snap.metric ~cls:Snap.Exact "objects_bit_identical"
          (if identical then 1. else 0.);
        Snap.metric ~unit_:"ratio" ~cls:Snap.Info "speedup_cold"
          (serial_cold /. max 1e-9 best_cold);
        Snap.metric ~cls:Snap.Info "default_pool_size"
          (float_of_int (Support.Pool.default_size ()));
      ])

(* ------------------------------------------------------------------ *)
(* Incremental relinking: persistent link state + patching             *)
(* ------------------------------------------------------------------ *)

(** Full vs incremental link cost of the steady-state edit loop: one
    probe toggled per refresh, so exactly one fragment changes and the
    incremental linker re-places one slab and patches its relocations
    instead of re-linking every object. Two sessions run the same
    toggle sequence — one with [incremental_link:false], one with
    [true] — and the executable images are compared after every refresh
    (the bit-identity bar, checked live). *)
let relink _cfg =
  print_endline "\n== Incremental relinking (persistent link state) ==";
  (* small/medium real profiles plus a scaled-up synthetic one where the
     full link dominates refresh time, as it would for a real target
     with thousands of symbols *)
  let xlarge =
    {
      (Workloads.Profile.find_exn "sqlite") with
      Workloads.Profile.name = "sqlite-xl";
      n_helpers = 400;
      n_tiny = 200;
      n_parsers = 24;
    }
  in
  let programs =
    [ Workloads.Profile.find_exn "json";
      Workloads.Profile.find_exn "sqlite";
      xlarge ]
  in
  let iters = 100 in
  let observe (p : Workloads.Profile.t) incremental =
    let m = Workloads.Generate.compile p in
    let session =
      Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:Workloads.Generate.host_functions ~incremental_link:incremental m
    in
    ignore (Odin.Cov.setup session);
    ignore (Odin.Session.build session);
    let probe =
      let found = ref None in
      Instr.Manager.iter
        (fun pr -> if !found = None then found := Some pr)
        session.Odin.Session.manager;
      Option.get !found
    in
    (* warm both objects (probe on / probe off) into the cache so the
       steady-state refresh is link-dominated, like a long session *)
    Instr.Manager.set_enabled session.Odin.Session.manager probe false;
    ignore (Odin.Session.refresh session);
    Instr.Manager.set_enabled session.Odin.Session.manager probe true;
    ignore (Odin.Session.refresh session);
    (* identity pass: digest the image after each toggle (not timed) *)
    let images = ref [] in
    for i = 1 to iters do
      Instr.Manager.set_enabled session.Odin.Session.manager probe (i mod 2 = 0);
      ignore (Option.get (Odin.Session.refresh session));
      let exe = Odin.Session.executable session in
      let img =
        List.sort compare
          (List.map (fun (b, by) -> (b, Bytes.to_string by)) exe.Link.Linker.image)
      in
      images := Digest.string (Marshal.to_string img []) :: !images
    done;
    (* timing pass: same toggle loop, nothing else in the timed region *)
    Gc.major ();
    let cost0 = ref 0 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to iters do
      Instr.Manager.set_enabled session.Odin.Session.manager probe (i mod 2 = 0);
      ignore (Odin.Session.refresh session);
      cost0 := !cost0 + (Link.Incremental.last session.Odin.Session.linker).Link.Incremental.ls_cost
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let st = Link.Incremental.stats session.Odin.Session.linker in
    ( 1000. *. wall /. float_of_int iters,
      !cost0 / iters,
      st,
      Array.length session.Odin.Session.plan.Odin.Partition.fragments,
      List.rev !images )
  in
  let rows =
    List.map
      (fun (p : Workloads.Profile.t) ->
        let ms_full, cost_full, _, frags, images_full = observe p false in
        let ms_inc, cost_inc, st, _, images_inc = observe p true in
        let identical = images_full = images_inc in
        (p.Workloads.Profile.name, frags, ms_full, cost_full, ms_inc, cost_inc,
         st, identical))
      programs
  in
  Support.Tab.print
    ~title:
      (Printf.sprintf
         "single-probe toggle refresh, %d iterations (Max partition)" iters)
    ~header:
      [ "program"; "frags"; "full ms"; "full cost"; "incr ms"; "incr cost";
        "cost x"; "wall x"; "patched s/r"; "fallbacks"; "identical" ]
    (List.map
       (fun (name, frags, ms_full, cost_full, ms_inc, cost_inc,
             (st : Link.Incremental.stats), identical) ->
         [
           name;
           string_of_int frags;
           Printf.sprintf "%.2f" ms_full;
           string_of_int cost_full;
           Printf.sprintf "%.2f" ms_inc;
           string_of_int cost_inc;
           Printf.sprintf "%.1f" (float_of_int cost_full /. float_of_int (max 1 cost_inc));
           Printf.sprintf "%.1f" (ms_full /. max 1e-9 ms_inc);
           Printf.sprintf "%d/%d"
             (st.Link.Incremental.st_symbols_patched / max 1 st.Link.Incremental.st_incremental)
             (st.Link.Incremental.st_relocs_patched / max 1 st.Link.Incremental.st_incremental);
           string_of_int st.Link.Incremental.st_fallbacks;
           (if identical then "yes" else "NO — BUG");
         ])
       rows);
  (match List.rev rows with
  | (name, _, ms_full, cost_full, ms_inc, cost_inc, _, _) :: _ ->
    Printf.printf
      "  largest workload (%s): modelled link cost %.1fx lower, refresh wall \
       time %.1fx lower with incremental linking\n"
      name
      (float_of_int cost_full /. float_of_int (max 1 cost_inc))
      (ms_full /. max 1e-9 ms_inc)
  | [] -> ());
  emit ~section:"relink"
    (List.concat_map
       (fun (name, frags, ms_full, cost_full, ms_inc, cost_inc,
             (st : Link.Incremental.stats), identical) ->
         let pre = name ^ "." in
         [
           Snap.metric ~cls:Snap.Info (pre ^ "fragments") (float_of_int frags);
           Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "full_ms") ms_full;
           Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "incr_ms") ms_inc;
           Snap.metric ~unit_:"cost" ~cls:Snap.Cost (pre ^ "full_cost")
             (float_of_int cost_full);
           Snap.metric ~unit_:"cost" ~cls:Snap.Cost (pre ^ "incr_cost")
             (float_of_int cost_inc);
           Snap.metric ~cls:Snap.Exact (pre ^ "symbols_patched")
             (float_of_int st.Link.Incremental.st_symbols_patched);
           Snap.metric ~cls:Snap.Exact (pre ^ "relocs_patched")
             (float_of_int st.Link.Incremental.st_relocs_patched);
           Snap.metric ~cls:Snap.Exact (pre ^ "fallbacks")
             (float_of_int st.Link.Incremental.st_fallbacks);
           Snap.metric ~cls:Snap.Exact (pre ^ "images_identical")
             (if identical then 1. else 0.);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Two-tier compilation: baseline backend vs optimizing pipeline       *)
(* ------------------------------------------------------------------ *)

(** Tier-0 exists to make fresh fragments cheap: the single-pass
    baseline backend must produce a fragment for a small fraction of
    the optimizing pipeline's modelled cost while staying semantically
    equivalent, and a fully promoted tiered session must converge on
    the untiered session's objects and traces exactly. Both bars are
    asserted live — the bench fails loudly rather than snapshot a
    broken tier. sqlite-xl runs with a skewed hot/cold cycle
    distribution ([hot_skew]) so a realistic minority of fragments
    dominates the profile promotions are decided from. *)
let tier _cfg =
  print_endline "\n== Tiered compilation (tier-0 baseline vs optimizing tier) ==";
  let xlarge =
    {
      (Workloads.Profile.find_exn "sqlite") with
      Workloads.Profile.name = "sqlite-xl";
      n_helpers = 400;
      n_tiny = 200;
      n_parsers = 24;
      hot_skew = 8;
    }
  in
  let m_src = Workloads.Generate.source xlarge in
  let mk tiered =
    let m = Minic.Lower.compile m_src in
    let session =
      Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:Workloads.Generate.host_functions ~tiered m
    in
    ignore (Odin.Cov.setup session);
    session
  in
  let timed f =
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, 1000. *. (Unix.gettimeofday () -. t0))
  in
  let inputs = Workloads.Generate.seed_inputs ~count:4 xlarge in
  let run_target ?profile session input =
    let vm = Vm.create (Odin.Session.executable session) in
    let prof = if profile = Some true then Some (Vm.enable_profile vm) else None in
    List.iter
      (fun n -> Vm.register_host vm n (fun _ -> 0L))
      Workloads.Generate.host_functions;
    let addr = Vm.write_buffer vm input in
    let ret = Vm.call vm entry [ addr; Int64.of_int (String.length input) ] in
    ((ret, vm.Vm.cycles), prof)
  in
  let trace session = List.map (fun i -> fst (run_target session i)) inputs in
  let fingerprint session =
    Hashtbl.fold
      (fun fid obj acc -> (fid, Digest.string (Marshal.to_string obj [])) :: acc)
      session.Odin.Session.cache []
    |> List.sort compare
  in
  (* initial build, both tiers *)
  let u_sess, u_ms = timed (fun () -> let s = mk false in ignore (Odin.Session.build s); s) in
  let t_sess, t_ms = timed (fun () -> let s = mk true in ignore (Odin.Session.build s); s) in
  let u_st = Odin.Session.tier_stats u_sess in
  let t_st = Odin.Session.tier_stats t_sess in
  let per0 =
    float_of_int t_st.Odin.Session.ts_tier0_cost
    /. float_of_int (max 1 t_st.Odin.Session.ts_tier0_compiles)
  in
  let per1 =
    float_of_int u_st.Odin.Session.ts_tier1_cost
    /. float_of_int (max 1 u_st.Odin.Session.ts_tier1_compiles)
  in
  let cost_ratio = per1 /. max 1. per0 in
  (* returns must agree while the whole program is still at tier 0 *)
  let tier0_returns_ok =
    List.map fst (trace t_sess) = List.map fst (trace u_sess)
  in
  (* profile a live run on the tier-0 image and promote the hot set *)
  let (_, prof) = run_target ~profile:true t_sess (List.hd inputs) in
  let fn_cycles = Vm.profile_top (Option.get prof) in
  let hot = Odin.Session.promote_hot ~threshold:0.02 t_sess fn_cycles in
  let osr_vm = Vm.create (Odin.Session.executable t_sess) in
  List.iter
    (fun n -> Vm.register_host osr_vm n (fun _ -> 0L))
    Workloads.Generate.host_functions;
  let (), promo_ms = timed (fun () -> ignore (Odin.Session.refresh t_sess)) in
  (* OSR: migrate a VM created on the pre-promotion image, measuring
     the size of the transferred byte delta and the queue+apply cost *)
  let osr_slots = List.length (Link.Incremental.last_slots t_sess.Odin.Session.linker) in
  let migrated, osr_ms =
    timed (fun () ->
        if not (Odin.Session.osr_into t_sess osr_vm) then false
        else begin
          let addr = Vm.write_buffer osr_vm (List.hd inputs) in
          ignore
            (Vm.call osr_vm entry
               [ addr; Int64.of_int (String.length (List.hd inputs)) ]);
          Vm.osr_migrations osr_vm = 1
        end)
  in
  (* promote everything that remains and demand exact convergence *)
  let all_fids =
    List.map fst (Odin.Session.fragment_sizes t_sess) |> List.sort compare
  in
  Odin.Session.promote t_sess all_fids;
  ignore (Odin.Session.refresh t_sess);
  let objects_identical = fingerprint t_sess = fingerprint u_sess in
  let traces_identical = trace t_sess = trace u_sess in
  let final = Odin.Session.tier_stats t_sess in
  Support.Tab.print
    ~title:"tier-0 baseline vs optimizing tier (sqlite-xl, Max partition)"
    ~header:
      [ "metric"; "tier 0"; "tier 1" ]
    [
      [ "fresh compiles (initial build)";
        string_of_int t_st.Odin.Session.ts_tier0_compiles;
        string_of_int u_st.Odin.Session.ts_tier1_compiles ];
      [ "modelled cost / fragment";
        Printf.sprintf "%.0f" per0;
        Printf.sprintf "%.0f" per1 ];
      [ "initial build wall ms";
        Printf.sprintf "%.1f" t_ms;
        Printf.sprintf "%.1f" u_ms ];
    ];
  Printf.printf
    "  cost separation: optimizing tier %.1fx the baseline per fragment\n"
    cost_ratio;
  Printf.printf
    "  hot set: %d fragments promoted from a live profile (threshold 2%%), \
     relink %.1f ms\n"
    (List.length hot) promo_ms;
  Printf.printf
    "  OSR: migrated=%b, %d data slots replayed, queue+first-call %.2f ms\n"
    migrated osr_slots osr_ms;
  Printf.printf "  fully promoted: objects %s, traces %s\n"
    (if objects_identical then "identical" else "DIVERGED — BUG")
    (if traces_identical then "identical" else "DIVERGED — BUG");
  (* the acceptance bars, asserted live *)
  if cost_ratio < 5.0 then
    failwith
      (Printf.sprintf
         "tier bench: tier-0 cost separation %.1fx is below the 5x bar"
         cost_ratio);
  if not (tier0_returns_ok && objects_identical && traces_identical) then
    failwith "tier bench: tiered session diverged from the untiered oracle";
  if not migrated then failwith "tier bench: OSR migration did not land";
  emit ~section:"tier"
    [
      Snap.metric ~cls:Snap.Exact "tier0_compiles"
        (float_of_int t_st.Odin.Session.ts_tier0_compiles);
      Snap.metric ~cls:Snap.Exact "tier1_compiles"
        (float_of_int u_st.Odin.Session.ts_tier1_compiles);
      Snap.metric ~unit_:"cost" ~cls:Snap.Cost "tier0_cost_per_fragment" per0;
      Snap.metric ~unit_:"cost" ~cls:Snap.Cost "tier1_cost_per_fragment" per1;
      Snap.metric ~unit_:"ratio" ~cls:Snap.Info "cost_ratio" cost_ratio;
      Snap.metric ~unit_:"ms" ~cls:Snap.Wall "tier0_build_ms" t_ms;
      Snap.metric ~unit_:"ms" ~cls:Snap.Wall "tier1_build_ms" u_ms;
      Snap.metric ~cls:Snap.Exact "hot_promoted" (float_of_int (List.length hot));
      Snap.metric ~unit_:"ms" ~cls:Snap.Wall "promotion_relink_ms" promo_ms;
      Snap.metric ~cls:Snap.Exact "osr_slots_replayed" (float_of_int osr_slots);
      Snap.metric ~unit_:"ms" ~cls:Snap.Wall "osr_migrate_ms" osr_ms;
      Snap.metric ~cls:Snap.Exact "promotions_total"
        (float_of_int final.Odin.Session.ts_promotions);
      Snap.metric ~cls:Snap.Exact "objects_identical"
        (if objects_identical then 1. else 0.);
      Snap.metric ~cls:Snap.Exact "traces_identical"
        (if traces_identical then 1. else 0.);
    ]

(* ------------------------------------------------------------------ *)
(* O(changed) refresh scheduling: dirty-set indexes + opt memo         *)
(* ------------------------------------------------------------------ *)

(** Cost of *deciding* what to recompile, isolated from the work of
    recompiling it: one probe toggled per refresh on a 42-fragment and a
    ~10k-fragment program. The incremental scheduler answers from the
    dirty-set and the persistent symbol->fragment indexes (O(changed));
    the full walk re-examines every fragment and filters every probe
    (O(program)). One session per program runs the same toggle sequence
    in both modes (the scheduler is a runtime switch) and the executable
    images are compared after every refresh — the bit-identity bar,
    checked live. The modelled refresh cost combines the deterministic
    schedule, recompile and link costs:
    2*visited + 5*scheduled + 1000*recompiled + link cost. *)
let schedule_bench _cfg =
  print_endline
    "\n== O(changed) refresh scheduling (incremental scheduler + opt memo) ==";
  let programs =
    [ Workloads.Profile.find_exn "sqlite"; Workloads.Profile.sqlite_xxl ]
  in
  (* the identity pass digests the whole image per toggle — O(program)
     measurement overhead on the ~10k-fragment program, so quick (CI)
     mode runs fewer toggles; the refresh path under test is unaffected *)
  let iters = if !quick_mode then 40 else 100 in
  let counter session name =
    Telemetry.Metrics.value
      (Telemetry.Metrics.counter
         session.Odin.Session.telemetry.Telemetry.Recorder.metrics name)
  in
  let observe (p : Workloads.Profile.t) =
    let m = Workloads.Generate.compile p in
    let session =
      Odin.Session.create ~mode:Odin.Partition.Max ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host:Workloads.Generate.host_functions m
    in
    ignore (Odin.Cov.setup session);
    ignore (Odin.Session.build session);
    let probe =
      let found = ref None in
      Instr.Manager.iter
        (fun pr -> if !found = None then found := Some pr)
        session.Odin.Session.manager;
      Option.get !found
    in
    (* warm both objects (probe on / probe off): the steady state of a
       long session, where the toggled fragment is already in the cache
       (full walk) or the memo (incremental) *)
    Instr.Manager.set_enabled session.Odin.Session.manager probe false;
    ignore (Odin.Session.refresh session);
    Instr.Manager.set_enabled session.Odin.Session.manager probe true;
    ignore (Odin.Session.refresh session);
    let run_mode incremental =
      Odin.Session.set_incremental_sched session incremental;
      (* identity + accounting pass (not timed): per-toggle image digest
         and the deterministic cost inputs *)
      let images = ref [] in
      let visited0 = counter session "session.schedule_visited" in
      let memo0 = counter session "session.opt_memo_hits" in
      let scheduled = ref 0 and recompiled = ref 0 and link_cost = ref 0 in
      for i = 1 to iters do
        Instr.Manager.set_enabled session.Odin.Session.manager probe
          (i mod 2 = 0);
        let ev = Option.get (Odin.Session.refresh session) in
        scheduled := !scheduled + List.length ev.Odin.Session.ev_fragments;
        recompiled :=
          !recompiled
          + List.length ev.Odin.Session.ev_fragments
          - ev.Odin.Session.ev_cache_hits;
        link_cost :=
          !link_cost
          + (Link.Incremental.last session.Odin.Session.linker)
              .Link.Incremental.ls_cost;
        let exe = Odin.Session.executable session in
        let img =
          List.sort compare
            (List.map
               (fun (b, by) -> (b, Bytes.to_string by))
               exe.Link.Linker.image)
        in
        images := Digest.string (Marshal.to_string img []) :: !images
      done;
      let visited = counter session "session.schedule_visited" - visited0 in
      let memo_hits = counter session "session.opt_memo_hits" - memo0 in
      let modelled =
        ((2 * visited) + (5 * !scheduled) + (1000 * !recompiled) + !link_cost)
        / iters
      in
      (* timing pass: same toggle loop, nothing else in the timed region *)
      Gc.major ();
      let t0 = Unix.gettimeofday () in
      for i = 1 to iters do
        Instr.Manager.set_enabled session.Odin.Session.manager probe
          (i mod 2 = 0);
        ignore (Odin.Session.refresh session)
      done;
      let ms = 1000. *. (Unix.gettimeofday () -. t0) /. float_of_int iters in
      (ms, visited / iters, memo_hits, !recompiled, modelled, List.rev !images)
    in
    let inc = run_mode true in
    let full = run_mode false in
    ( p.Workloads.Profile.name,
      Array.length session.Odin.Session.plan.Odin.Partition.fragments,
      inc,
      full )
  in
  let rows = List.map observe programs in
  Support.Tab.print
    ~title:
      (Printf.sprintf
         "single-probe toggle refresh, %d iterations (Max partition)" iters)
    ~header:
      [ "program"; "frags"; "full ms"; "incr ms"; "visited full"; "visited incr";
        "memo hits"; "cost full"; "cost incr"; "identical" ]
    (List.map
       (fun (name, frags,
             (ms_i, visited_i, memo_i, _, cost_i, images_i),
             (ms_f, visited_f, _, _, cost_f, images_f)) ->
         [
           name;
           string_of_int frags;
           Printf.sprintf "%.2f" ms_f;
           Printf.sprintf "%.2f" ms_i;
           string_of_int visited_f;
           string_of_int visited_i;
           string_of_int memo_i;
           string_of_int cost_f;
           string_of_int cost_i;
           (if images_i = images_f then "yes" else "NO — BUG");
         ])
       rows);
  (* the acceptance bar: the modelled one-toggle refresh cost must not
     grow with program size — ~10k fragments within 2x of 42 *)
  (match rows with
  | [ (_, frags_s, (_, _, _, _, cost_s, _), _);
      (_, frags_x, (_, _, _, _, cost_x, _), _) ] ->
    Printf.printf
      "  modelled refresh cost, %d vs %d fragments (incremental): %d vs %d \
       (%.2fx)\n"
      frags_x frags_s cost_x cost_s
      (float_of_int cost_x /. float_of_int (max 1 cost_s))
  | _ -> ());
  emit ~section:"schedule"
    (List.concat_map
       (fun (name, frags,
             (ms_i, visited_i, memo_i, recompiled_i, cost_i, images_i),
             (ms_f, visited_f, _, recompiled_f, cost_f, images_f)) ->
         let pre = name ^ "." in
         [
           Snap.metric ~cls:Snap.Info (pre ^ "fragments") (float_of_int frags);
           Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "full_ms") ms_f;
           Snap.metric ~unit_:"ms" ~cls:Snap.Wall (pre ^ "incr_ms") ms_i;
           Snap.metric ~cls:Snap.Exact (pre ^ "visited_full")
             (float_of_int visited_f);
           Snap.metric ~cls:Snap.Exact (pre ^ "visited_incr")
             (float_of_int visited_i);
           Snap.metric ~cls:Snap.Exact (pre ^ "memo_hits")
             (float_of_int memo_i);
           Snap.metric ~cls:Snap.Exact (pre ^ "recompiled_full")
             (float_of_int recompiled_f);
           Snap.metric ~cls:Snap.Exact (pre ^ "recompiled_incr")
             (float_of_int recompiled_i);
           Snap.metric ~unit_:"cost" ~cls:Snap.Cost (pre ^ "modelled_full")
             (float_of_int cost_f);
           Snap.metric ~unit_:"cost" ~cls:Snap.Cost (pre ^ "modelled_incr")
             (float_of_int cost_i);
           Snap.metric ~cls:Snap.Exact (pre ^ "images_identical")
             (if images_i = images_f then 1. else 0.);
         ])
       rows
    @
    match rows with
    | [ (_, _, (_, _, _, _, cost_s, _), _); (_, _, (_, _, _, _, cost_x, _), _) ]
      ->
      [
        Snap.metric ~unit_:"ratio" ~cls:Snap.Info "xxl_vs_small_cost_ratio"
          (float_of_int cost_x /. float_of_int (max 1 cost_s));
      ]
    | _ -> [])

(* ------------------------------------------------------------------ *)
(* Fuzzing farm: multi-worker scaling + invariance                     *)
(* ------------------------------------------------------------------ *)

let farm cfg =
  print_endline "\n== Fuzzing farm (multi-worker campaign orchestrator) ==";
  let p = Workloads.Profile.find_exn "libpng" in
  let seeds = Workloads.Generate.seed_inputs ~count:2 p in
  let execs = cfg.fuzz_execs * 2 in
  let observe workers =
    let pool = Support.Pool.create ~size:(max 2 workers) () in
    Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool) @@ fun () ->
    let m = Workloads.Generate.compile p in
    let fcfg =
      {
        Farm.default_config with
        Farm.fc_workers = workers;
        fc_execs = execs;
        fc_sync_interval = 50;
      }
    in
    let t0 = Unix.gettimeofday () in
    let st = Farm.run ~pool ~entry ~seeds fcfg m in
    (st, Unix.gettimeofday () -. t0)
  in
  let results = List.map (fun w -> (w, observe w)) [ 1; 2; 4 ] in
  Support.Tab.print
    ~title:
      (Printf.sprintf "farm scaling, program %s (%d execs, sync every 50)"
         p.Workloads.Profile.name execs)
    ~header:
      [ "workers"; "wall s"; "execs/s"; "coverage"; "pruned"; "exchanged";
        "dedup %"; "cross hits"; "recompiles" ]
    (List.map
       (fun (w, (st, secs)) ->
         [
           string_of_int w;
           Printf.sprintf "%.2f" secs;
           Printf.sprintf "%.0f" (float_of_int st.Farm.fs_execs /. max 1e-9 secs);
           Printf.sprintf "%d/%d"
             (List.length st.Farm.fs_coverage)
             st.Farm.fs_total_probes;
           string_of_int (List.length st.Farm.fs_pruned);
           string_of_int st.Farm.fs_exchanged;
           Printf.sprintf "%.0f" (Farm.dedup_rate st);
           string_of_int st.Farm.fs_cross_hits;
           string_of_int st.Farm.fs_recompiles;
         ])
       results);
  (* the correctness bar, checked live: worker count must not change the
     logical outcome *)
  let sigs =
    List.map
      (fun (_, (st, _)) ->
        (st.Farm.fs_coverage, st.Farm.fs_pruned, st.Farm.fs_corpus))
      results
  in
  let identical = List.for_all (fun s -> s = List.hd sigs) sigs in
  Printf.printf
    "  identical (coverage, pruned, corpus) across worker counts: %s\n"
    (if identical then "yes" else "NO — BUG");
  emit ~section:"farm"
    (List.concat_map
       (fun (w, (st, secs)) ->
         let pre = Printf.sprintf "w%d." w in
         [
           Snap.metric ~unit_:"s" ~cls:Snap.Wall (pre ^ "wall_s") secs;
           Snap.metric ~cls:Snap.Exact (pre ^ "execs")
             (float_of_int st.Farm.fs_execs);
           Snap.metric ~unit_:"cycles" ~cls:Snap.Exact (pre ^ "total_cycles")
             (float_of_int st.Farm.fs_total_cycles);
           Snap.metric ~cls:Snap.Exact (pre ^ "coverage")
             (float_of_int (List.length st.Farm.fs_coverage));
           Snap.metric ~cls:Snap.Exact (pre ^ "pruned")
             (float_of_int (List.length st.Farm.fs_pruned));
           Snap.metric ~cls:Snap.Exact (pre ^ "exchanged")
             (float_of_int st.Farm.fs_exchanged);
           Snap.metric ~cls:Snap.Cost (pre ^ "cross_hits")
             (float_of_int st.Farm.fs_cross_hits);
           Snap.metric ~cls:Snap.Exact (pre ^ "recompiles")
             (float_of_int st.Farm.fs_recompiles);
           Snap.metric ~unit_:"cycles" ~cls:Snap.Exact (pre ^ "probe_cycles")
             (float_of_int
                (List.fold_left
                   (fun a pc -> a + pc.Farm.pc_cycles)
                   0 st.Farm.fs_probe_cost));
         ])
       results
    @ [
        Snap.metric ~cls:Snap.Exact "invariant_across_workers"
          (if identical then 1. else 0.);
      ])

(* ------------------------------------------------------------------ *)
(* Process farm: supervised workers, kill/restart, checkpoint/resume   *)
(* ------------------------------------------------------------------ *)

let farm_proc cfg =
  print_endline "\n== Process farm (supervised workers, checkpoint/resume) ==";
  let p = Workloads.Profile.find_exn "libpng" in
  let seeds = Workloads.Generate.seed_inputs ~count:2 p in
  let execs = cfg.fuzz_execs * 2 in
  let fcfg workers =
    {
      Farm.default_config with
      Farm.fc_workers = workers;
      fc_execs = execs;
      fc_sync_interval = 50;
    }
  in
  (* this binary doubles as the worker executable (see the dispatch at
     the entry point) *)
  let worker_argv = [| Sys.executable_name; "fuzz-worker" |] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* the in-process reference: domains farm at the same config *)
  let dom, dom_s =
    time (fun () ->
        let pool = Support.Pool.create ~size:2 () in
        Fun.protect ~finally:(fun () -> Support.Pool.shutdown pool)
        @@ fun () ->
        Farm.run ~pool ~entry ~seeds (fcfg 2) (Workloads.Generate.compile p))
  in
  let observe workers =
    time (fun () ->
        Farm.Proc.run ~worker_argv ~entry ~seeds (fcfg workers)
          (Workloads.Generate.compile p))
  in
  let results = List.map (fun w -> (w, observe w)) [ 1; 2; 4 ] in
  (* checkpointed run, then resume the tail from a mid-campaign
     checkpoint (the interrupted budget stops on a barrier so the
     resumed run shares the uninterrupted barrier schedule) *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "odin-bench-proc"
  in
  Support.Objstore.rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> Support.Objstore.rm_rf dir) @@ fun () ->
  let ck_path = Filename.concat dir "ck" in
  let r = Telemetry.Recorder.create () in
  let ckpt_st, ckpt_s =
    time (fun () ->
        Farm.Proc.run ~telemetry:r ~worker_argv ~checkpoint_path:ck_path
          ~entry ~seeds (fcfg 2)
          (Workloads.Generate.compile p))
  in
  let checkpoints =
    List.fold_left
      (fun acc c ->
        if Telemetry.Metrics.counter_name c = "farm.checkpoints" then
          acc + Telemetry.Metrics.value c
        else acc)
      0
      (Telemetry.Metrics.counters r.Telemetry.Recorder.metrics)
  in
  let partial = execs - (let rem = execs mod 50 in if rem = 0 then 50 else rem) in
  let partial_ck = Filename.concat dir "ck-partial" in
  let _ =
    Farm.Proc.run ~worker_argv ~checkpoint_path:partial_ck ~entry ~seeds
      { (fcfg 2) with Farm.fc_execs = partial }
      (Workloads.Generate.compile p)
  in
  let ck = Farm.Wire.read_checkpoint partial_ck in
  let resumed, resume_s =
    time (fun () ->
        Farm.Proc.run ~worker_argv ~resume:ck ~entry ~seeds (fcfg 2)
          (Workloads.Generate.compile p))
  in
  let rows =
    ("domains", 2, dom, dom_s)
    :: List.map (fun (w, (st, s)) -> ("procs", w, st, s)) results
    @ [
        ("procs+ckpt", 2, ckpt_st, ckpt_s);
        ("resume tail", 2, resumed, resume_s);
      ]
  in
  Support.Tab.print
    ~title:
      (Printf.sprintf
         "process farm, program %s (%d execs, sync every 50, resume from %d)"
         p.Workloads.Profile.name execs ck.Farm.Orch.ck_next)
    ~header:
      [ "mode"; "workers"; "wall s"; "execs/s"; "coverage"; "pruned"; "corpus" ]
    (List.map
       (fun (mode, w, st, secs) ->
         [
           mode;
           string_of_int w;
           Printf.sprintf "%.2f" secs;
           Printf.sprintf "%.0f" (float_of_int st.Farm.fs_execs /. max 1e-9 secs);
           Printf.sprintf "%d/%d"
             (List.length st.Farm.fs_coverage)
             st.Farm.fs_total_probes;
           string_of_int (List.length st.Farm.fs_pruned);
           string_of_int (List.length st.Farm.fs_corpus);
         ])
       rows);
  (* the correctness bar: every run above — either substrate, any
     worker count, checkpointed or resumed — must report the same
     logical outcome *)
  let signature st =
    ( st.Farm.fs_coverage,
      st.Farm.fs_pruned,
      st.Farm.fs_corpus,
      st.Farm.fs_execs,
      st.Farm.fs_total_cycles )
  in
  let base = signature dom in
  let identical =
    List.for_all (fun (_, _, st, _) -> signature st = base) rows
  in
  Printf.printf
    "  identical (coverage, pruned, corpus, execs, cycles) across \
     substrates, worker counts and resume: %s\n"
    (if identical then "yes" else "NO — BUG");
  Printf.printf "  checkpoints published: %d; resume re-ran %d of %d execs\n"
    checkpoints (execs - ck.Farm.Orch.ck_next) execs;
  let proc2_s =
    match List.assoc_opt 2 results with
    | Some (_, s) -> s
    | None -> nan
  in
  emit ~section:"farm_proc"
    (List.concat_map
       (fun (w, (st, secs)) ->
         let pre = Printf.sprintf "w%d." w in
         [
           Snap.metric ~unit_:"s" ~cls:Snap.Wall (pre ^ "wall_s") secs;
           Snap.metric ~cls:Snap.Exact (pre ^ "execs")
             (float_of_int st.Farm.fs_execs);
           Snap.metric ~unit_:"cycles" ~cls:Snap.Exact (pre ^ "total_cycles")
             (float_of_int st.Farm.fs_total_cycles);
           Snap.metric ~cls:Snap.Exact (pre ^ "coverage")
             (float_of_int (List.length st.Farm.fs_coverage));
           Snap.metric ~cls:Snap.Exact (pre ^ "pruned")
             (float_of_int (List.length st.Farm.fs_pruned));
           Snap.metric ~cls:Snap.Exact (pre ^ "exchanged")
             (float_of_int st.Farm.fs_exchanged);
         ])
       results
    @ [
        Snap.metric ~unit_:"s" ~cls:Snap.Wall "domains_w2.wall_s" dom_s;
        Snap.metric ~unit_:"s" ~cls:Snap.Wall "ckpt_w2.wall_s" ckpt_s;
        Snap.metric ~unit_:"s" ~cls:Snap.Wall "resume_tail.wall_s" resume_s;
        Snap.metric ~unit_:"%" ~cls:Snap.Wall "supervision_overhead_pct"
          ((proc2_s -. dom_s) /. max 1e-9 dom_s *. 100.);
        Snap.metric ~cls:Snap.Exact "checkpoints_published"
          (float_of_int checkpoints);
        Snap.metric ~cls:Snap.Exact "resume_from_exec"
          (float_of_int ck.Farm.Orch.ck_next);
        Snap.metric ~cls:Snap.Exact "invariant_all_runs"
          (if identical then 1. else 0.);
      ])

(* ------------------------------------------------------------------ *)
(* Mutation testing: kill-matrix campaigns by probe toggling           *)
(* ------------------------------------------------------------------ *)

(** The amortization headline (the reason mutation testing rides on
    Odin's machinery at all): a campaign of hundreds of mutants over
    the scaled-up sqlite workload performs exactly one full
    compile+link; arming each mutant afterwards is a probe toggle
    served by an O(changed) schedule pass and an incremental relink.
    Checked live: [full_links = initial_links] and
    [incr_links >= mutants]. The naive alternative — one full build per
    mutant — is priced with the measured full-build time of the same
    target. A smaller campaign then re-runs with 1/2/4 workers on both
    farm substrates and the merged kill matrices are compared
    bit-for-bit. *)
let mutate_bench _cfg =
  print_endline "\n== Mutation testing (kill matrix by probe toggling) ==";
  let xlarge =
    {
      (Workloads.Profile.find_exn "sqlite") with
      Workloads.Profile.name = "sqlite-xl";
      n_helpers = 400;
      n_tiny = 200;
      n_parsers = 24;
    }
  in
  let n_mutants = if !quick_mode then 100 else 500 in
  let suite = Workloads.Generate.seed_inputs ~count:3 xlarge in
  (* price the strawman: one full build of the same target *)
  let t_build =
    let m = Workloads.Generate.compile xlarge in
    let session =
      Odin.Session.create ~keep:[ entry ]
        ~host:Workloads.Generate.host_functions m
    in
    let t0 = Unix.gettimeofday () in
    ignore (Odin.Session.build session);
    Unix.gettimeofday () -. t0
  in
  let mcfg =
    {
      Mutate.Analysis.default_config with
      Mutate.Analysis.mc_limit = Some n_mutants;
      mc_chunk = 32;
    }
  in
  let t0 = Unix.gettimeofday () in
  let matrix, stats =
    Mutate.Analysis.run ~entry ~suite mcfg (Workloads.Generate.compile xlarge)
  in
  let wall = Unix.gettimeofday () -. t0 in
  Support.Tab.print
    ~title:
      (Printf.sprintf "mutation campaign, program %s (%d mutants x %d tests)"
         xlarge.Workloads.Profile.name matrix.Mutate.Analysis.m_generated
         matrix.Mutate.Analysis.m_tests)
    ~header:
      [ "mutants"; "killed"; "survived"; "timeout"; "score %"; "full links";
        "incr relinks"; "wall s" ]
    [
      [
        string_of_int matrix.Mutate.Analysis.m_generated;
        string_of_int matrix.Mutate.Analysis.m_killed;
        string_of_int matrix.Mutate.Analysis.m_survived;
        string_of_int matrix.Mutate.Analysis.m_timeout;
        Printf.sprintf "%.1f" matrix.Mutate.Analysis.m_score;
        string_of_int stats.Mutate.Analysis.s_full_links;
        string_of_int stats.Mutate.Analysis.s_incr_links;
        Printf.sprintf "%.2f" wall;
      ];
    ];
  (* the amortization bar, checked live: the campaign's only full link
     is the initial build, and every mutant was served incrementally *)
  let amortized =
    stats.Mutate.Analysis.s_full_links = stats.Mutate.Analysis.s_initial_links
    && stats.Mutate.Analysis.s_incr_links >= matrix.Mutate.Analysis.m_generated
  in
  Printf.printf
    "  one compile, rest toggles (full %d = initial %d; incr %d >= %d \
     mutants): %s\n"
    stats.Mutate.Analysis.s_full_links stats.Mutate.Analysis.s_initial_links
    stats.Mutate.Analysis.s_incr_links matrix.Mutate.Analysis.m_generated
    (if amortized then "yes" else "NO — BUG");
  let modelled_full = float_of_int matrix.Mutate.Analysis.m_generated *. t_build in
  Printf.printf
    "  modelled naive cost (one %.2f s full build per mutant): %.1f s; \
     measured campaign: %.1f s (%.1fx)\n"
    t_build modelled_full wall
    (modelled_full /. max 1e-9 wall);
  (* worker-count / substrate invariance on a smaller campaign: the
     merged kill matrix must be bit-identical for 1/2/4 domain workers
     and for supervised child processes *)
  let small = Workloads.Profile.find_exn "sqlite" in
  let ssuite = Workloads.Generate.seed_inputs ~count:3 small in
  let run_small workers mode =
    let scfg =
      {
        Mutate.Analysis.default_config with
        Mutate.Analysis.mc_workers = workers;
        mc_mode = mode;
        mc_limit = Some 60;
        mc_chunk = 7;
        mc_worker_argv = Some [| Sys.executable_name; "mutate-worker" |];
      }
    in
    let t0 = Unix.gettimeofday () in
    let mx, st =
      Mutate.Analysis.run ~entry ~suite:ssuite scfg
        (Workloads.Generate.compile small)
    in
    (mx, st, Unix.gettimeofday () -. t0)
  in
  let variants =
    [
      ("domains", 1, Mutate.Analysis.Domains);
      ("domains", 2, Mutate.Analysis.Domains);
      ("domains", 4, Mutate.Analysis.Domains);
      ("procs", 2, Mutate.Analysis.Procs);
    ]
  in
  let outs =
    List.map (fun (nm, w, md) -> (nm, w, run_small w md)) variants
  in
  Support.Tab.print
    ~title:
      (Printf.sprintf "substrate/worker invariance, program %s (60 mutants)"
         small.Workloads.Profile.name)
    ~header:[ "mode"; "workers"; "wall s"; "score %"; "incr relinks" ]
    (List.map
       (fun (nm, w, (mx, st, secs)) ->
         [
           nm;
           string_of_int w;
           Printf.sprintf "%.2f" secs;
           Printf.sprintf "%.1f" mx.Mutate.Analysis.m_score;
           string_of_int st.Mutate.Analysis.s_incr_links;
         ])
       outs);
  let matrices = List.map (fun (_, _, (mx, _, _)) -> mx) outs in
  let identical = List.for_all (fun mx -> mx = List.hd matrices) matrices in
  Printf.printf
    "  identical kill matrix across worker counts and substrates: %s\n"
    (if identical then "yes" else "NO — BUG");
  emit ~section:"mutate"
    [
      Snap.metric ~cls:Snap.Exact "mutants"
        (float_of_int matrix.Mutate.Analysis.m_generated);
      Snap.metric ~cls:Snap.Exact "tests"
        (float_of_int matrix.Mutate.Analysis.m_tests);
      Snap.metric ~cls:Snap.Exact "killed"
        (float_of_int matrix.Mutate.Analysis.m_killed);
      Snap.metric ~cls:Snap.Exact "survived"
        (float_of_int matrix.Mutate.Analysis.m_survived);
      Snap.metric ~cls:Snap.Exact "timeout"
        (float_of_int matrix.Mutate.Analysis.m_timeout);
      Snap.metric ~unit_:"%" ~cls:Snap.Exact "score"
        matrix.Mutate.Analysis.m_score;
      Snap.metric ~cls:Snap.Exact "full_links"
        (float_of_int stats.Mutate.Analysis.s_full_links);
      Snap.metric ~cls:Snap.Exact "incr_links"
        (float_of_int stats.Mutate.Analysis.s_incr_links);
      Snap.metric ~unit_:"s" ~cls:Snap.Wall "campaign_wall_s" wall;
      Snap.metric ~unit_:"s" ~cls:Snap.Wall "full_build_s" t_build;
      Snap.metric ~unit_:"s" ~cls:Snap.Wall "modelled_naive_s" modelled_full;
      Snap.metric ~unit_:"ratio" ~cls:Snap.Info "amortization_speedup"
        (modelled_full /. max 1e-9 wall);
      Snap.metric ~cls:Snap.Exact "amortized"
        (if amortized then 1. else 0.);
      Snap.metric ~cls:Snap.Exact "invariant_across_workers"
        (if identical then 1. else 0.);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core operations                    *)
(* ------------------------------------------------------------------ *)

let micro _cfg =
  print_endline "\n== Bechamel micro-benchmarks (core Odin operations) ==";
  let p = Workloads.Profile.find_exn "libpng" in
  let m = Workloads.Generate.compile p in
  let cls = Odin.Classify.classify ~keep:[ entry ] m in
  let plan = Odin.Partition.plan ~keep:[ entry ] m cls in
  let frag = plan.Odin.Partition.fragments.(0) in
  let session =
    Odin.Session.create ~keep:[ entry ] ~host:Workloads.Generate.host_functions
      (Ir.Clone.clone_module m)
  in
  ignore (Odin.Session.build session);
  let objs = Hashtbl.fold (fun _ o acc -> o :: acc) session.Odin.Session.cache [] in
  let tests =
    Bechamel.Test.make_grouped ~name:"odin"
      [
        Bechamel.Test.make ~name:"classify+partition (survey)"
          (Bechamel.Staged.stage (fun () ->
               let cls = Odin.Classify.classify ~keep:[ entry ] m in
               ignore (Odin.Partition.plan ~keep:[ entry ] m cls)));
        Bechamel.Test.make ~name:"schedule (Algorithm 2)"
          (Bechamel.Staged.stage (fun () ->
               ignore (Odin.Session.schedule ~initial:true session)));
        Bechamel.Test.make ~name:"fragment recompile (materialize+opt+codegen)"
          (Bechamel.Staged.stage (fun () ->
               let fm =
                 Odin.Partition.materialize plan frag ~source:(fun _ -> None)
                   ~base:m
               in
               ignore (Opt.Pipeline.run_fragment fm);
               ignore (Link.Objfile.of_module fm)));
        Bechamel.Test.make ~name:"link all fragments"
          (Bechamel.Staged.stage (fun () ->
               ignore
                 (Link.Linker.link ~host:Workloads.Generate.host_functions objs)));
      ]
  in
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg_b = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg_b instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-48s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-48s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  (* the bench binary doubles as the process-farm worker executable:
     the supervisor re-execs us with the hidden subcommand *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "fuzz-worker" then begin
    Farm.Proc.worker_main ();
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "mutate-worker" then
    Mutate.Analysis.worker_main ();
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip_out_dir = function
    | [] -> []
    | "--out-dir" :: dir :: rest ->
      out_dir := dir;
      strip_out_dir rest
    | a :: rest when String.starts_with ~prefix:"--out-dir=" a ->
      out_dir := String.sub a 10 (String.length a - 10);
      strip_out_dir rest
    | a :: rest -> a :: strip_out_dir rest
  in
  let args = strip_out_dir args in
  let quick = List.mem "quick" args in
  quick_mode := quick;
  let cfg = if quick then quick_config else full_config in
  let selectors = List.filter (fun a -> a <> "quick") args in
  let wants x = selectors = [] || List.mem x selectors in
  let t0 = Unix.gettimeofday () in
  Printf.printf "Odin reproduction benchmark harness (%s mode, %d programs)\n"
    (if quick then "quick" else "full")
    (List.length cfg.programs);
  if wants "fig3" then fig3 cfg;
  if wants "fig2" then fig2 cfg;
  if wants "fig8" then fig8 cfg;
  if wants "fig9" then fig9 cfg;
  if wants "fig10" then fig10 cfg;
  if wants "fig11" then fig11 cfg;
  if wants "fig12" then fig12 cfg;
  if wants "ablation" then ablation cfg;
  if wants "timereport" then timereport cfg;
  if wants "parallel" then parallel cfg;
  if wants "relink" then relink cfg;
  if wants "tier" then tier cfg;
  if wants "schedule" then schedule_bench cfg;
  if wants "farm" then farm cfg;
  if wants "farm_proc" then farm_proc cfg;
  if wants "mutate" then mutate_bench cfg;
  if wants "micro" then micro cfg;
  Printf.printf "\nTotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
