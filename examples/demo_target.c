/* Small mini-C fuzz target for the odinc CLI demos:

     odinc fuzz examples/demo_target.c --execs 200 --time-report \
         --trace-out /tmp/odin-trace.json
     odinc run examples/demo_target.c --entry target_main --time-report

   Shape mirrors the generated workloads: a magic-byte roadblock, a
   byte-consuming switch parser, and a couple of helpers so the
   partitioner has symbols to split. */

extern int printf(char *fmt);

int g_state;

static int mix(int a, int b) {
  int r = 0;
  do {
    r = r + ((a ^ b) & 255);
    a = a * 3 + 1;
    b = b >> 1;
  } while (r < 96);
  return r + (a & 15);
}

static int score(int x) { return (x << 1) ^ (x >> 3); }

static int parse(char *buf, int len, int pos) {
  int acc = 17;
  int guard = 0;
  while (pos + 2 < len && guard < 48) {
    int tag = (buf[pos] & 255) % 4;
    guard++;
    switch (tag) {
      case 0: acc += mix(buf[pos + 1] & 255, acc); pos += 2; break;
      case 1: acc ^= score(buf[pos + 1] & 255) + 41; pos += 1; break;
      case 2:
        if ((buf[pos + 1] & 255) > 96) { acc += score(acc); } else { acc -= 13; }
        pos += 2;
        break;
      default: acc = acc * 31 + (buf[pos] & 255); pos += 3; break;
    }
    g_state = g_state + (acc & 7);
  }
  return acc + g_state;
}

int target_main(char *buf, int len) {
  if (len < 8) return -1;
  int acc = 0;
  if (buf[0] == 79) {
    if (buf[1] == 68) {
      acc += 7777;
      printf("magic found\n");
    }
  }
  acc += parse(buf, len, 2);
  return acc;
}
