(** Plain-text table and bar-chart rendering for the benchmark harness.
    The bench binary prints each paper table/figure as an aligned text
    table plus, for the figures, an ASCII bar chart so the *shape* of the
    result (who wins, by what factor) is visible at a glance. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(** Render rows with a header; first column left-aligned, rest right-aligned. *)
let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    List.mapi
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        if c = 0 then pad w cell else pad_left w cell)
      widths
    |> String.concat "  "
  in
  let sep =
    List.map (fun w -> String.make w '-') widths |> String.concat "  "
  in
  let body = List.map render_row rows in
  String.concat "\n" (render_row header :: sep :: body)

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header rows)

(** Horizontal ASCII bar chart; values scaled so the max fills [width]. *)
let bar_chart ?(width = 50) items =
  let vmax = List.fold_left (fun m (_, v) -> max m v) 0. items in
  let vmax = if vmax <= 0. then 1. else vmax in
  let label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 items
  in
  let line (label, v) =
    let n = int_of_float (v /. vmax *. float_of_int width +. 0.5) in
    Printf.sprintf "%s |%s %.4g" (pad label_w label) (String.make n '#') v
  in
  String.concat "\n" (List.map line items)

let print_bars ~title items =
  Printf.printf "\n-- %s --\n%s\n" title (bar_chart items)

let pct x = Printf.sprintf "%.2f%%" (x *. 100.)
let ms x = Printf.sprintf "%.1f ms" x
let f2 x = Printf.sprintf "%.2f" x
