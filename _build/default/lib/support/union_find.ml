(** Union-find over string keys, used by Odin's fragment-creation step
    (Algorithm 1 of the paper) to cluster symbols that must be recompiled
    together. Path compression + union by rank. *)

type t = {
  parent : (string, string) Hashtbl.t;
  rank : (string, int) Hashtbl.t;
}

let create () = { parent = Hashtbl.create 64; rank = Hashtbl.create 64 }

let add t x = if not (Hashtbl.mem t.parent x) then Hashtbl.replace t.parent x x

let rec find t x =
  add t x;
  let p = Hashtbl.find t.parent x in
  if String.equal p x then x
  else begin
    let root = find t p in
    Hashtbl.replace t.parent x root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if not (String.equal rx ry) then begin
    let kx = Option.value ~default:0 (Hashtbl.find_opt t.rank rx) in
    let ky = Option.value ~default:0 (Hashtbl.find_opt t.rank ry) in
    if kx < ky then Hashtbl.replace t.parent rx ry
    else if kx > ky then Hashtbl.replace t.parent ry rx
    else begin
      Hashtbl.replace t.parent ry rx;
      Hashtbl.replace t.rank rx (kx + 1)
    end
  end

let same t x y = String.equal (find t x) (find t y)

let members t = Hashtbl.fold (fun k _ acc -> k :: acc) t.parent []

(** All clusters, as lists of members; deterministic order (sorted). *)
let clusters t =
  let groups = Hashtbl.create 16 in
  let keys = List.sort String.compare (members t) in
  let add_member k =
    let r = find t k in
    let old = Option.value ~default:[] (Hashtbl.find_opt groups r) in
    Hashtbl.replace groups r (k :: old)
  in
  List.iter add_member keys;
  Hashtbl.fold (fun _ ms acc -> List.rev ms :: acc) groups []
  |> List.sort (fun a b -> compare a b)
