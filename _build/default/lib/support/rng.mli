(** Deterministic pseudo-random number generator (splitmix64). Every
    stochastic component of the reproduction draws from an explicit [t],
    so experiments are bit-for-bit reproducible. *)

type t

val create : int -> t
val copy : t -> t
val next_int64 : t -> int64

(** Uniform in [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool

(** True with probability num/den. *)
val chance : t -> int -> int -> bool

(** @raise Invalid_argument on empty input. *)
val choose : t -> 'a list -> 'a

val choose_arr : t -> 'a array -> 'a

(** Fisher-Yates shuffle into a fresh array. *)
val shuffle : t -> 'a array -> 'a array

(** Derive an independent stream. *)
val split : t -> t
