(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (workload generation,
    fuzzing mutations, seed scheduling) draws from an explicit [t] so that
    all experiments are bit-for-bit reproducible across runs. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: state += golden gamma; output = mixed state. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [chance t num den] is true with probability num/den. *)
let chance t num den = int t den < num

(** Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_arr t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose_arr: empty array";
  xs.(int t (Array.length xs))

(** Fisher-Yates shuffle (returns a fresh array). *)
let shuffle t xs =
  let a = Array.copy xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** Derive an independent stream; used to give each workload function its own
    generator so that adding functions does not perturb earlier ones. *)
let split t =
  let s = next_int64 t in
  { state = s }
