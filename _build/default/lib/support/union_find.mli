(** Union-find over string keys (path compression + union by rank), used
    by Odin's fragment creation (Algorithm 1) to cluster symbols that
    must be recompiled together. *)

type t

val create : unit -> t

(** Ensure a key exists as a singleton. *)
val add : t -> string -> unit

val find : t -> string -> string
val union : t -> string -> string -> unit
val same : t -> string -> string -> bool
val members : t -> string list

(** All clusters as member lists, deterministically ordered. *)
val clusters : t -> string list list
