(** Plain-text table and bar-chart rendering for the benchmark harness. *)

val pad : int -> string -> string
val pad_left : int -> string -> string

(** Aligned table: first column left-aligned, the rest right-aligned;
    a dash separator follows the header. *)
val render : header:string list -> string list list -> string

(** [render] preceded by a "== title ==" line, to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Horizontal ASCII bars, scaled so the maximum fills [width]. *)
val bar_chart : ?width:int -> (string * float) list -> string

val print_bars : title:string -> (string * float) list -> unit

(** Format 0.125 as "12.50%". *)
val pct : float -> string

val ms : float -> string
val f2 : float -> string
