lib/support/rng.mli:
