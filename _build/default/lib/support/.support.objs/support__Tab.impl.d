lib/support/tab.ml: List Option Printf String
