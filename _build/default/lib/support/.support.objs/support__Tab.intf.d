lib/support/tab.mli:
