lib/support/stats.ml: Array List
