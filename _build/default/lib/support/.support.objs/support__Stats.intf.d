lib/support/stats.mli:
