lib/support/union_find.ml: Hashtbl List Option String
