(** The uninstrumented reference build: whole-program O2 compile of a
    clone of the pristine IR. All figures normalize against it. *)

val build : ?keep:string list -> ?host:string list -> Ir.Modul.t -> Link.Linker.exe

(** Run [entry] on an input buffer in a fresh VM; (result, cycles). *)
val run_input :
  ?hosts:(string * (Vm.t -> int64)) list ->
  Link.Linker.exe ->
  string ->
  string ->
  int64 * int
