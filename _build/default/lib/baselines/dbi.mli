(** Dynamic-binary-instrumentation baselines over the VM's block-entry
    hook on the *uninstrumented* binary:

    - DrCov (DynamoRIO): JIT translation (per-block, first execution) +
      code-cache dispatch + inline counter on every block entry; the
      translation cache persists across executions (fork-server model);
    - libInst (DynInst): a trampoline with full context save/restore plus
      the instrumentation snippet on every block entry. *)

type costs = {
  c_translate_per_inst : int;
  c_translate_fixed : int;
  c_dispatch : int;
  c_counter : int;
  c_trampoline : int;
}

val default_costs : costs

type kind = Drcov | Libinst

type t = {
  kind : kind;
  costs : costs;
  translated : (string * int, unit) Hashtbl.t;  (** DrCov code cache *)
  coverage : (string * int, int) Hashtbl.t;  (** (function, block) -> hits *)
}

val create : ?costs:costs -> kind -> t

(** Length (instructions) of one basic block of a compiled function. *)
val block_length : Codegen.Mach.mfunc -> int -> int

(** Install the engine's block hook on a (fresh) VM; the engine state
    persists across VMs. *)
val attach : t -> Vm.t -> unit

val covered_blocks : t -> int
val translated_blocks : t -> int
