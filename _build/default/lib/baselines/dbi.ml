(** Dynamic-binary-instrumentation baselines, built on the VM's
    block-entry hook over the *uninstrumented* binary — exactly the
    situation of a DBI tool attached to a stock executable.

    DrCov (DynamoRIO): just-in-time binary translation. The first
    execution of each basic block pays a translation cost proportional to
    the block's size; every entry pays code-cache dispatch plus the
    inline coverage counter the tool plants in the translated block. The
    translation cache persists across executions (the fork-server model),
    so steady-state overhead is dispatch + counter.

    libInst (DynInst static rewriting): every instrumented block detours
    through a trampoline that saves and restores machine context around
    the instrumentation snippet — the paper measures a median 19.2x
    slowdown for this design; the per-entry cost constant reflects the
    full context save/restore and instrumentation call. *)

type costs = {
  c_translate_per_inst : int;  (** JIT translation, per instruction *)
  c_translate_fixed : int;  (** per-block translation overhead *)
  c_dispatch : int;  (** per block entry: code-cache dispatch/linking *)
  c_counter : int;  (** per block entry: coverage counter update *)
  c_trampoline : int;  (** libInst: per entry context save/restore *)
}

let default_costs =
  {
    c_translate_per_inst = 6;
    c_translate_fixed = 60;
    c_dispatch = 5;
    c_counter = 5;
    c_trampoline = 330;
  }

type kind = Drcov | Libinst

type t = {
  kind : kind;
  costs : costs;
  translated : (string * int, unit) Hashtbl.t;  (** DrCov code cache *)
  coverage : (string * int, int) Hashtbl.t;  (** (function, block) -> hits *)
}

let create ?(costs = default_costs) kind =
  { kind; costs; translated = Hashtbl.create 256; coverage = Hashtbl.create 256 }

let block_length (mf : Codegen.Mach.mfunc) idx =
  let start, _ = mf.Codegen.Mach.mf_blocks.(idx) in
  let stop =
    if idx + 1 < Array.length mf.Codegen.Mach.mf_blocks then
      fst mf.Codegen.Mach.mf_blocks.(idx + 1)
    else Array.length mf.Codegen.Mach.mf_code
  in
  stop - start

(** Attach the engine to a (fresh) VM; state persists across VMs. *)
let attach t vm =
  let costs = t.costs in
  Vm.set_block_hook vm (fun vm fname bidx ->
      let key = (fname, bidx) in
      (match t.kind with
      | Drcov ->
        if not (Hashtbl.mem t.translated key) then begin
          Hashtbl.replace t.translated key ();
          let len =
            match Link.Linker.find_func vm.Vm.exe fname with
            | Some mf -> block_length mf bidx
            | None -> 4
          in
          Vm.add_cycles vm (costs.c_translate_fixed + (costs.c_translate_per_inst * len))
        end;
        Vm.add_cycles vm (costs.c_dispatch + costs.c_counter)
      | Libinst -> Vm.add_cycles vm (costs.c_trampoline + costs.c_counter));
      Hashtbl.replace t.coverage key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.coverage key)))

let covered_blocks t = Hashtbl.length t.coverage
let translated_blocks t = Hashtbl.length t.translated
