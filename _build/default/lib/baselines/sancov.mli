(** SanitizerCoverage baseline: 8-bit counter per basic block, inserted at
    the very end of the optimization pipeline — fast, always-on, and
    observing the optimizer's CFG rather than the program's (the design
    the paper critiques in Section 2). *)

val counters_sym : string

type t = {
  exe : Link.Linker.exe;
  n_counters : int;
  block_of_counter : (int * string * string) array;
      (** counter id -> (id, function, block label) *)
}

(** Optimize a clone of the module, then instrument every block. *)
val build : ?keep:string list -> ?host:string list -> Ir.Modul.t -> t

val read_counter : Vm.t -> t -> int -> int

(** Indices of counters that fired. *)
val covered_counters : Vm.t -> t -> int list

val clear_counters : Vm.t -> t -> unit
