lib/baselines/cmplog_static.mli: Ir Link Odin Queue Vm
