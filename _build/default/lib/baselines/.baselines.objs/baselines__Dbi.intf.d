lib/baselines/dbi.mli: Codegen Hashtbl Vm
