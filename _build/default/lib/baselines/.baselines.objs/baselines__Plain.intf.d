lib/baselines/plain.mli: Ir Link Vm
