lib/baselines/sancov.mli: Ir Link Vm
