lib/baselines/cmplog_static.ml: Array Int64 Ir Link List Odin Opt Printf Queue Vm
