lib/baselines/sancov.ml: Array Int64 Ir Link List Opt Vm
