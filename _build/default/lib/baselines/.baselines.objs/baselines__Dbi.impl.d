lib/baselines/dbi.ml: Array Codegen Hashtbl Link Option Vm
