lib/baselines/plain.ml: Int64 Ir Link List Opt String Vm
