(** The uninstrumented reference build: whole-program O2 compile of the
    pristine IR. Every figure normalizes execution durations against this
    binary (the red bar in Figures 8-10). *)

let build ?(keep = [ "target_main" ]) ?(host = []) (m : Ir.Modul.t) =
  let copy = Ir.Clone.clone_module m in
  ignore (Opt.Pipeline.run ~keep copy);
  Ir.Verify.run_exn copy;
  let obj = Link.Objfile.of_module copy in
  Link.Linker.link ~host [ obj ]

(** Run [entry] on input [bytes] in a fresh VM; returns (result, cycles). *)
let run_input ?(hosts = []) exe entry bytes =
  let vm = Vm.create exe in
  List.iter (fun (n, f) -> Vm.register_host vm n f) hosts;
  let addr = Vm.write_buffer vm bytes in
  let r = Vm.call vm entry [ addr; Int64.of_int (String.length bytes) ] in
  (r, vm.Vm.cycles)
