(** AFL++-style CmpLog binary: comparison-operand logging instrumented
    *after* optimization (the industry pipeline of paper Figure 1). The
    operands it logs are whatever the optimizer left behind — after the
    Figure 2 range fold that is [x - L], which breaks input-to-state
    correspondence; `bench/main.exe fig2` quantifies the contrast with
    Odin's instrument-first CmpLog. *)

val runtime_fn : string

type record = { sr_pid : int; sr_lhs : int64; sr_rhs : int64 }

type t = {
  exe : Link.Linker.exe;
  n_probes : int;
  log : record Queue.t;
}

(** Optimize a clone of the module, then instrument every remaining
    comparison with a logging call. *)
val build : ?keep:string list -> ?host:string list -> Ir.Modul.t -> t

(** The host hook to register with the VM under {!runtime_fn}. *)
val host_hook : t -> Vm.t -> int64

(** Drain records collected since the last call, converted to the common
    CmpLog record type so the same solver consumes both strategies. *)
val drain : t -> Odin.Cmplog.record list
