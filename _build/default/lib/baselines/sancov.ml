(** SanitizerCoverage baseline: compiler-based static instrumentation,
    8-bit counter per basic block, inserted *at the very end of the
    optimization pipeline* — the industry design the paper critiques:
    fast, but the probes observe the optimizer's CFG, not the program's
    (Figure 2), and every probe stays for the whole campaign. *)

let counters_sym = "__sancov_counters"

type t = {
  exe : Link.Linker.exe;
  n_counters : int;
  block_of_counter : (int * string * string) array;
      (** counter id -> (id, function, block label), for coverage maps *)
}

(* Same counter sequence OdinCov uses; fairness demands the identical
   scheme (paper Section 5: "all evaluated coverage tools use the same
   scheme"). *)
let insert_counter (fn : Ir.Func.t) (blk : Ir.Func.block) idx =
  let ptr = Ir.Func.fresh_name fn "scovp" in
  let old = Ir.Func.fresh_name fn "scovv" in
  let incremented = Ir.Func.fresh_name fn "scovi" in
  let seq =
    [
      Ir.Ins.mk ~volatile:true ~id:ptr ~ty:Ir.Types.Ptr
        (Ir.Ins.Gep (Ir.Ins.Global counters_sym, Ir.Builder.i64 idx, 1));
      Ir.Ins.mk ~volatile:true ~id:old ~ty:Ir.Types.I8
        (Ir.Ins.Load (Ir.Ins.Reg (Ir.Types.Ptr, ptr)));
      Ir.Ins.mk ~volatile:true ~id:incremented ~ty:Ir.Types.I8
        (Ir.Ins.Binop (Ir.Ins.Add, Ir.Ins.Reg (Ir.Types.I8, old), Ir.Builder.i8 1));
      Ir.Ins.mk ~volatile:true ~id:"" ~ty:Ir.Types.Void
        (Ir.Ins.Store
           (Ir.Ins.Reg (Ir.Types.I8, incremented), Ir.Ins.Reg (Ir.Types.Ptr, ptr)));
    ]
  in
  let phis, rest =
    List.partition
      (fun (i : Ir.Ins.ins) ->
        match i.Ir.Ins.kind with Ir.Ins.Phi _ -> true | _ -> false)
      blk.Ir.Func.insns
  in
  blk.Ir.Func.insns <- phis @ seq @ rest

let build ?(keep = [ "target_main" ]) ?(host = []) (m : Ir.Modul.t) =
  let copy = Ir.Clone.clone_module m in
  (* optimize first... *)
  ignore (Opt.Pipeline.run ~keep copy);
  (* ...then instrument the optimized CFG *)
  let mapping = ref [] in
  let idx = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          insert_counter f b !idx;
          mapping := (!idx, f.Ir.Func.name, b.Ir.Func.label) :: !mapping;
          incr idx)
        f)
    (Ir.Modul.defined_functions copy);
  let n = max 1 !idx in
  ignore
    (Ir.Modul.add_var copy ~linkage:Ir.Func.External ~name:counters_sym
       (Ir.Modul.Zero n));
  Ir.Verify.run_exn copy;
  let obj = Link.Objfile.of_module copy in
  let exe = Link.Linker.link ~host [ obj ] in
  { exe; n_counters = !idx; block_of_counter = Array.of_list (List.rev !mapping) }

let read_counter vm t i =
  let base = Vm.addr_of vm counters_sym in
  ignore t;
  Int64.to_int
    (Ir.Types.zext_value Ir.Types.I8
       (Vm.load_mem vm Ir.Types.I8 (Int64.add base (Int64.of_int i))))

(** Indices of the counters that fired. *)
let covered_counters vm t =
  let out = ref [] in
  for i = t.n_counters - 1 downto 0 do
    if read_counter vm t i > 0 then out := i :: !out
  done;
  !out

let clear_counters vm t =
  let base = Vm.addr_of vm counters_sym in
  for i = 0 to t.n_counters - 1 do
    Vm.store_mem vm Ir.Types.I8 (Int64.add base (Int64.of_int i)) 0L
  done
