(** Function inlining (bottom-up along the call graph). Inlining is the
    paper's canonical example of an interprocedural optimization that
    clones basic blocks across functions (Section 2.2, item 4) and that
    bonds a callee to its caller for partitioning purposes: redoing the
    inline at fragment-recompilation time requires both symbols in the
    same fragment. *)

open Ir

let default_threshold = 30

let is_recursive (f : Func.t) =
  let rec_ = ref false in
  Func.iter_insns
    (fun i ->
      match i.Ins.kind with
      | Ins.Call (Ins.Direct n, _) when String.equal n f.Func.name -> rec_ := true
      | _ -> ())
    f;
  !rec_

let has_blockaddr_of (m : Modul.t) (f : Func.t) =
  let found = ref false in
  let scan = function
    | Ins.Blockaddr (g, _) when String.equal g f.Func.name -> found := true
    | _ -> ()
  in
  List.iter
    (function
      | Modul.Fun g ->
        Func.iter_blocks
          (fun b ->
            List.iter (fun i -> List.iter scan (Ins.operands i)) b.Func.insns;
            List.iter scan (Ins.term_operands b.Func.term))
          g
      | _ -> ())
    (Modul.globals m);
  !found

(* Cost model: probes are volatile and count double, so instrumented
   callees inline less readily — this is precisely how instrument-first
   "leaves less room for optimization" (Section 2.2). *)
let inline_cost (f : Func.t) =
  Func.fold_insns
    (fun acc (i : Ins.ins) ->
      acc + (if i.Ins.volatile then 2 else 1)
      + (match i.Ins.kind with Ins.Call _ -> 2 | _ -> 0))
    (List.length f.Func.blocks)
    f

let should_inline (m : Modul.t) (caller : Func.t) (callee : Func.t) ~threshold =
  (not (Func.is_declaration callee))
  && (not (String.equal caller.Func.name callee.Func.name))
  && (not (is_recursive callee))
  && inline_cost callee <= threshold
  && not (has_blockaddr_of m callee)

(* Inline one call site. [call_ins] must be a direct call belonging to
   [caller]. Returns true on success. *)
let inline_site (caller : Func.t) (callee : Func.t) (call_ins : Ins.ins) =
  (* locate the block and split it at the call *)
  let host =
    List.find_opt
      (fun (b : Func.block) -> List.memq call_ins b.Func.insns)
      caller.Func.blocks
  in
  match (host, call_ins.Ins.kind) with
  | Some host, Ins.Call (Ins.Direct _, args) ->
    (* Pick a prefix such that no existing label or register starts with
       it — repeated inlining of the same callee must not collide. *)
    let prefix =
      let taken = Hashtbl.create 64 in
      Func.iter_blocks (fun b -> Hashtbl.replace taken b.Func.label ()) caller;
      Func.iter_insns
        (fun i -> if i.Ins.id <> "" then Hashtbl.replace taken i.Ins.id ())
        caller;
      let starts_with p =
        Hashtbl.fold
          (fun name () acc ->
            acc
            || String.length name > String.length p
               && String.sub name 0 (String.length p) = p)
          taken false
      in
      let rec pick n =
        let candidate = Printf.sprintf "inl.%s.%d" callee.Func.name n in
        if starts_with (candidate ^ ".") || Hashtbl.mem taken candidate then
          pick (n + 1)
        else candidate
      in
      pick 0
    in
    let rename_label l = prefix ^ "." ^ l in
    let rename_reg r = prefix ^ "." ^ r in
    (* clone callee body with renamed registers and labels *)
    let param_map = Hashtbl.create 8 in
    List.iteri
      (fun idx (_, p) ->
        match List.nth_opt args idx with
        | Some a -> Hashtbl.replace param_map p a
        | None -> Hashtbl.replace param_map p (Ins.Undef Types.I64))
      callee.Func.params;
    let map_value = function
      | Ins.Reg (ty, n) -> (
        match Hashtbl.find_opt param_map n with
        | Some a -> a
        | None -> Ins.Reg (ty, rename_reg n))
      | v -> v
    in
    let clone_ins (i : Ins.ins) =
      let copy = { i with Ins.id = (if i.Ins.id = "" then "" else rename_reg i.Ins.id) } in
      Ins.map_operands map_value copy;
      (match copy.Ins.kind with
      | Ins.Phi incoming ->
        copy.Ins.kind <- Ins.Phi (List.map (fun (l, v) -> (rename_label l, v)) incoming)
      | _ -> ());
      copy
    in
    let cont_label = Func.fresh_label caller (host.Func.label ^ ".cont") in
    let rets = ref [] in
    let clone_block (b : Func.block) =
      let insns = List.map clone_ins b.Func.insns in
      let term =
        match b.Func.term with
        | Ins.Ret v ->
          let v = Option.map map_value v in
          rets := (rename_label b.Func.label, v) :: !rets;
          Ins.Br cont_label
        | Ins.Br l -> Ins.Br (rename_label l)
        | Ins.Cbr (c, a, b2) -> Ins.Cbr (map_value c, rename_label a, rename_label b2)
        | Ins.Switch (v, d, cases) ->
          Ins.Switch
            (map_value v, rename_label d, List.map (fun (k, l) -> (k, rename_label l)) cases)
        | Ins.Unreachable -> Ins.Unreachable
      in
      { Func.label = rename_label b.Func.label; insns; term }
    in
    let body = List.map clone_block callee.Func.blocks in
    (* split the host block *)
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | i :: rest when i == call_ins -> (List.rev acc, rest)
      | i :: rest -> split (i :: acc) rest
    in
    let before, after = split [] host.Func.insns in
    let cont = { Func.label = cont_label; insns = after; term = host.Func.term } in
    (* successors' phis must now name cont instead of host *)
    List.iter
      (fun succ ->
        match Func.find_block caller succ with
        | None -> ()
        | Some sb ->
          List.iter
            (fun (i : Ins.ins) ->
              match i.Ins.kind with
              | Ins.Phi incoming ->
                i.Ins.kind <-
                  Ins.Phi
                    (List.map
                       (fun (l, v) ->
                         if String.equal l host.Func.label then (cont_label, v) else (l, v))
                       incoming)
              | _ -> ())
            sb.Func.insns)
      (Ins.successors host.Func.term);
    let entry_label =
      match body with
      | [] -> cont_label
      | b :: _ -> b.Func.label
    in
    host.Func.insns <- before;
    host.Func.term <- Ins.Br entry_label;
    (* splice first: replace_uses below must see the continuation block *)
    let rec insert_after = function
      | [] -> []
      | b :: rest when b == host -> (b :: body) @ (cont :: rest)
      | b :: rest -> b :: insert_after rest
    in
    caller.Func.blocks <- insert_after caller.Func.blocks;
    (* return value: single ret -> direct substitution; else a phi *)
    (if call_ins.Ins.id <> "" then
       match !rets with
       | [] -> Func.replace_uses caller call_ins.Ins.id (Ins.Undef call_ins.Ins.ty)
       | [ (_, Some v) ] -> Func.replace_uses caller call_ins.Ins.id v
       | [ (_, None) ] ->
         Func.replace_uses caller call_ins.Ins.id (Ins.Undef call_ins.Ins.ty)
       | many ->
         let phi =
           Ins.mk
             ~id:(Func.fresh_name caller (call_ins.Ins.id ^ ".ret"))
             ~ty:call_ins.Ins.ty
             (Ins.Phi
                (List.rev_map
                   (fun (l, v) ->
                     (l, Option.value ~default:(Ins.Undef call_ins.Ins.ty) v))
                   many))
         in
         cont.Func.insns <- phi :: cont.Func.insns;
         Func.replace_uses caller call_ins.Ins.id (Ins.Reg (phi.Ins.ty, phi.Ins.id)));
    true
  | _ -> false

let run ?(threshold = default_threshold) (ctx : Pass.ctx) =
  let m = ctx.Pass.modul in
  let changed = ref false in
  let budget = ref 5000 in
  (* bottom-up-ish: repeat until no more profitable sites *)
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := false;
    let site =
      List.find_map
        (fun (caller : Func.t) ->
          let found = ref None in
          Func.iter_insns
            (fun i ->
              if !found = None then
                match i.Ins.kind with
                | Ins.Call (Ins.Direct callee_name, _) -> (
                  match Modul.find_func m callee_name with
                  | Some callee
                    when (not i.Ins.volatile)
                         && should_inline m caller callee ~threshold ->
                    found := Some (caller, callee, i)
                  | _ -> ())
                | _ -> ())
            caller;
          !found)
        (Modul.defined_functions m)
    in
    match site with
    | None -> ()
    | Some (caller, callee, call_ins) ->
      if inline_site caller callee call_ins then begin
        Pass.log_bond ctx caller.Func.name callee.Func.name "inline";
        changed := true;
        continue_ := true;
        decr budget
      end
  done;
  !changed

let pass = Pass.mk "inline" (fun ctx -> run ctx)
