(** Value numbering: common-subexpression elimination over pure
    instructions, scoped by the dominator tree (an expression available in
    a dominator is available here). Loads are only CSE'd within a block,
    with volatile probes, stores and calls acting as barriers (any of them
    may alias or reorder against memory). *)

open Ir

(* A structural key for a pure instruction. *)
let key_of_value = function
  | Ins.Const (ty, v) -> Printf.sprintf "c%s:%Ld" (Types.to_string ty) v
  | Ins.Reg (_, n) -> "r" ^ n
  | Ins.Global g -> "g" ^ g
  | Ins.Blockaddr (f, l) -> Printf.sprintf "b%s:%s" f l
  | Ins.Undef _ -> "u"

let key_of_ins (i : Ins.ins) =
  let vs vals = String.concat "," (List.map key_of_value vals) in
  match i.Ins.kind with
  | Ins.Binop (op, a, b) ->
    (* normalize commutative operand order *)
    let ka = key_of_value a and kb = key_of_value b in
    let ka, kb =
      match op with
      | Ins.Add | Ins.Mul | Ins.And | Ins.Or | Ins.Xor ->
        if String.compare ka kb <= 0 then (ka, kb) else (kb, ka)
      | _ -> (ka, kb)
    in
    Some
      (Printf.sprintf "bin:%s:%s:%s:%s" (Ins.binop_to_string op)
         (Types.to_string i.Ins.ty) ka kb)
  | Ins.Icmp (p, a, b) ->
    Some
      (Printf.sprintf "icmp:%s:%s:%s" (Ins.icmp_to_string p) (key_of_value a)
         (key_of_value b))
  | Ins.Select (c, a, b) -> Some ("sel:" ^ vs [ c; a; b ])
  | Ins.Cast (c, a) ->
    Some
      (Printf.sprintf "cast:%s:%s:%s" (Ins.cast_to_string c)
         (Types.to_string i.Ins.ty) (key_of_value a))
  | Ins.Gep (a, b, sz) -> Some (Printf.sprintf "gep:%s:%d" (vs [ a; b ]) sz)
  | Ins.Load _ | Ins.Store _ | Ins.Call _ | Ins.Phi _ | Ins.Alloca _ -> None

(* loads get separate, block-local numbering *)
let load_key (i : Ins.ins) =
  match i.Ins.kind with
  | Ins.Load p ->
    Some (Printf.sprintf "load:%s:%s" (Types.to_string i.Ins.ty) (key_of_value p))
  | _ -> None

let is_memory_barrier (i : Ins.ins) =
  i.Ins.volatile
  || match i.Ins.kind with Ins.Store _ | Ins.Call _ -> true | _ -> false

module SMap = Map.Make (String)

let run_function _ctx (fn : Func.t) =
  if fn.Func.blocks = [] then false
  else begin
    let changed = ref false in
    let dom = Dom.compute fn in
    (* dominator-tree children by label *)
    let children = Hashtbl.create 16 in
    Array.iteri
      (fun i _ ->
        if i > 0 then begin
          let parent = dom.Dom.order.(dom.Dom.idom.(i)).Func.label in
          let old = Option.value ~default:[] (Hashtbl.find_opt children parent) in
          Hashtbl.replace children parent (old @ [ dom.Dom.order.(i).Func.label ])
        end)
      dom.Dom.order;
    let block_of = Hashtbl.create 16 in
    Func.iter_blocks (fun b -> Hashtbl.replace block_of b.Func.label b) fn;
    let rec walk label (avail : Ins.value SMap.t) =
      match Hashtbl.find_opt block_of label with
      | None -> ()
      | Some b ->
        let avail = ref avail in
        let loads = ref SMap.empty in
        let kept = ref [] in
        List.iter
          (fun (i : Ins.ins) ->
            if is_memory_barrier i then begin
              loads := SMap.empty;
              kept := i :: !kept
            end
            else
              match key_of_ins i with
              | Some key -> (
                match SMap.find_opt key !avail with
                | Some v when i.Ins.id <> "" ->
                  Func.replace_uses fn i.Ins.id v;
                  changed := true
                | _ ->
                  if i.Ins.id <> "" then
                    avail := SMap.add key (Ins.Reg (i.Ins.ty, i.Ins.id)) !avail;
                  kept := i :: !kept)
              | None -> (
                match load_key i with
                | Some key -> (
                  match SMap.find_opt key !loads with
                  | Some v when i.Ins.id <> "" ->
                    Func.replace_uses fn i.Ins.id v;
                    changed := true
                  | _ ->
                    if i.Ins.id <> "" then
                      loads := SMap.add key (Ins.Reg (i.Ins.ty, i.Ins.id)) !loads;
                    kept := i :: !kept)
                | None -> kept := i :: !kept))
          b.Func.insns;
        b.Func.insns <- List.rev !kept;
        List.iter
          (fun child -> walk child !avail)
          (Option.value ~default:[] (Hashtbl.find_opt children label))
    in
    walk (List.hd fn.Func.blocks).Func.label SMap.empty;
    !changed
  end

let pass = Pass.function_pass "gvn" run_function
