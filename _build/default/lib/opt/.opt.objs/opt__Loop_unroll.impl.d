lib/opt/loop_unroll.ml: Cfg Eval Func Ins Ir List Map Pass Printf String Types
