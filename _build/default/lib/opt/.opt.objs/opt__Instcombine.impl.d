lib/opt/instcombine.ml: Cfg Char Func Hashtbl Ins Int64 Ir List Modul Option Pass Printf String Types
