lib/opt/mem2reg.ml: Array Cfg Dom Func Hashtbl Ins Ir List Map Option Pass Printf Set String
