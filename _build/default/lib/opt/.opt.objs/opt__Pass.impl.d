lib/opt/pass.ml: Ir List String
