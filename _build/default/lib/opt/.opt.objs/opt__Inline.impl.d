lib/opt/inline.ml: Func Hashtbl Ins Ir List Modul Option Pass Printf String Types
