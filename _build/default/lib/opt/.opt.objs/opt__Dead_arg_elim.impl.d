lib/opt/dead_arg_elim.ml: Func Hashtbl Ins Ir List Modul Pass String Uses
