lib/opt/constfold.ml: Cfg Eval Func Ins Int64 Ir List Option Pass String Types
