lib/opt/dce.ml: Func Hashtbl Ins Ir List Modul Option Pass Uses
