lib/opt/simplifycfg.ml: Cfg Func Ins Ir List Option Pass String
