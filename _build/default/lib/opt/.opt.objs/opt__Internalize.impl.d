lib/opt/internalize.ml: Func Ir List Modul Pass
