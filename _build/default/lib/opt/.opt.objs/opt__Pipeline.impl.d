lib/opt/pipeline.ml: Constfold Dce Dead_arg_elim Gvn Inline Instcombine Internalize Jump_threading List Loop_unroll Mem2reg Pass Simplifycfg
