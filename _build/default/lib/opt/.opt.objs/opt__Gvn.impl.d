lib/opt/gvn.ml: Array Dom Func Hashtbl Ins Ir List Map Option Pass Printf String Types
