lib/opt/jump_threading.ml: Cfg Eval Func Hashtbl Ins Ir List Option Pass String Types
