(** Instruction combining: the classic peephole pass, including the two
    case studies the paper builds its correctness argument on:

    - the [islower]-style range-check fold (Figure 2): two comparisons and
      a branch diamond collapse into one [add]+[icmp ult], destroying both
      coverage feedback and CmpLog operands;
    - the [printf -> puts] library-call rewrite (Figure 4), which needs
      read access to the referenced string constant — in a trial run this
      logs a Copy-on-use requirement for the constant.

    Plus the usual algebraic identities, strength reduction, and constant
    loads from immutable globals (another Copy-on-use source). *)

open Ir

let is_const = function Ins.Const _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Algebraic simplifications on a single instruction.                  *)
(* Returns [Some v] to replace the result with v, or [None].           *)
(* ------------------------------------------------------------------ *)

let rec log2_opt v =
  if v <= 0L then None
  else if Int64.equal v 1L then Some 0
  else if Int64.rem v 2L <> 0L then None
  else Option.map (fun k -> k + 1) (log2_opt (Int64.div v 2L))

let simplify_value (i : Ins.ins) =
  match i.Ins.kind with
  | Ins.Binop (Ins.Add, x, Ins.Const (_, 0L)) -> Some x
  | Ins.Binop (Ins.Add, Ins.Const (_, 0L), x) -> Some x
  | Ins.Binop (Ins.Sub, x, Ins.Const (_, 0L)) -> Some x
  | Ins.Binop (Ins.Sub, Ins.Reg (_, a), Ins.Reg (_, b)) when String.equal a b ->
    Some (Ins.Const (i.Ins.ty, 0L))
  | Ins.Binop (Ins.Mul, x, Ins.Const (_, 1L)) -> Some x
  | Ins.Binop (Ins.Mul, Ins.Const (_, 1L), x) -> Some x
  | Ins.Binop (Ins.Mul, _, (Ins.Const (_, 0L) as z)) -> Some z
  | Ins.Binop (Ins.Mul, (Ins.Const (_, 0L) as z), _) -> Some z
  | Ins.Binop ((Ins.Sdiv | Ins.Udiv), x, Ins.Const (_, 1L)) -> Some x
  | Ins.Binop (Ins.And, Ins.Reg (t, a), Ins.Reg (_, b)) when String.equal a b ->
    Some (Ins.Reg (t, a))
  | Ins.Binop (Ins.And, _, (Ins.Const (_, 0L) as z)) -> Some z
  | Ins.Binop (Ins.And, x, Ins.Const (ty, v))
    when Int64.equal (Types.zext_value ty v) (Types.zext_value ty (-1L)) ->
    Some x
  | Ins.Binop (Ins.Or, Ins.Reg (t, a), Ins.Reg (_, b)) when String.equal a b ->
    Some (Ins.Reg (t, a))
  | Ins.Binop (Ins.Or, x, Ins.Const (_, 0L)) -> Some x
  | Ins.Binop (Ins.Or, Ins.Const (_, 0L), x) -> Some x
  | Ins.Binop (Ins.Xor, Ins.Reg (_, a), Ins.Reg (_, b)) when String.equal a b ->
    Some (Ins.Const (i.Ins.ty, 0L))
  | Ins.Binop (Ins.Xor, x, Ins.Const (_, 0L)) -> Some x
  | Ins.Binop ((Ins.Shl | Ins.Lshr | Ins.Ashr), x, Ins.Const (_, 0L)) -> Some x
  | Ins.Select (_, a, b)
    when (match (a, b) with
         | Ins.Const (t1, v1), Ins.Const (t2, v2) -> t1 = t2 && Int64.equal v1 v2
         | _ -> false) ->
    Some a
  | Ins.Select (Ins.Reg (Types.I1, c), Ins.Const (Types.I1, 1L), Ins.Const (Types.I1, 0L))
    ->
    Some (Ins.Reg (Types.I1, c))
  | _ -> None

(* Rewrite the instruction in place (strength reduction). *)
let strength_reduce (i : Ins.ins) =
  match i.Ins.kind with
  | Ins.Binop (Ins.Mul, x, Ins.Const (ty, v)) when not (is_const x) -> (
    match log2_opt v with
    | Some k when k > 0 ->
      i.Ins.kind <- Ins.Binop (Ins.Shl, x, Ins.Const (ty, Int64.of_int k));
      true
    | _ -> false)
  | Ins.Binop (Ins.Udiv, x, Ins.Const (ty, v)) -> (
    match log2_opt v with
    | Some k when k > 0 ->
      i.Ins.kind <- Ins.Binop (Ins.Lshr, x, Ins.Const (ty, Int64.of_int k));
      true
    | _ -> false)
  | Ins.Binop (Ins.Urem, x, Ins.Const (ty, v)) -> (
    match log2_opt v with
    | Some k when k > 0 ->
      i.Ins.kind <- Ins.Binop (Ins.And, x, Ins.Const (ty, Int64.sub v 1L));
      true
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Constant loads from immutable globals (needs module context).       *)
(* ------------------------------------------------------------------ *)

let const_global_byte (m : Modul.t) g offset =
  match Modul.find_var m g with
  | Some v when v.Modul.gconst -> (
    match v.Modul.ginit with
    | Modul.Bytes s when offset >= 0 && offset < String.length s ->
      Some (Int64.of_int (Char.code s.[offset]))
    | _ -> None)
  | _ -> None

let const_global_word (m : Modul.t) g ty index =
  match Modul.find_var m g with
  | Some v when v.Modul.gconst -> (
    match v.Modul.ginit with
    | Modul.Words (wty, ws) when wty = ty && index >= 0 && index < List.length ws ->
      Some (List.nth ws index)
    | _ -> None)
  | _ -> None

(* Boolean-test simplification: the frontend materializes i1 comparisons
   through zext-to-i32 and re-tests them with [icmp ne x, 0]; folding the
   test back to the original i1 re-exposes the two-comparison diamond the
   range fold (Figure 2) looks for. *)
let fold_bool_test defs (i : Ins.ins) =
  if i.Ins.volatile then None
  else
    match i.Ins.kind with
    | Ins.Icmp (pred, Ins.Reg (_, y), Ins.Const (_, 0L)) -> (
      match Hashtbl.find_opt defs y with
      | Some ({ Ins.kind = Ins.Cast (Ins.Zext, src); volatile = false; _ } : Ins.ins)
        when Ins.value_ty src = Types.I1 -> (
        match pred with
        | Ins.Ne -> Some (`Value src)
        | Ins.Eq -> Some (`Negate src)
        | _ -> None)
      | _ -> None)
    | _ -> None

(* Fold [load (gep @g, K)] when @g is a constant global. Needs a def map to
   see through the gep. Logs Copy-on-use on success. *)
let fold_const_load ctx (fn : Func.t) defs (i : Ins.ins) =
  if i.Ins.volatile then None
  else
    match i.Ins.kind with
    | Ins.Load (Ins.Global g) -> (
      match i.Ins.ty with
      | Types.I8 ->
        Option.map (fun b -> Ins.Const (Types.I8, Types.normalize Types.I8 b))
          (const_global_byte ctx.Pass.modul g 0)
      | ty -> (
        match const_global_word ctx.Pass.modul g ty 0 with
        | Some w ->
          Pass.log_copy ctx fn.Func.name g "const-load";
          Some (Ins.Const (ty, Types.normalize ty w))
        | None -> None))
    | Ins.Load (Ins.Reg (_, p)) -> (
      match Hashtbl.find_opt defs p with
      | Some ({ Ins.kind = Ins.Gep (Ins.Global g, Ins.Const (_, idx), sz); _ } : Ins.ins)
        -> (
        let fold =
          match i.Ins.ty with
          | Types.I8 when sz = 1 -> const_global_byte ctx.Pass.modul g (Int64.to_int idx)
          | ty when Types.size_of ty = sz ->
            const_global_word ctx.Pass.modul g ty (Int64.to_int idx)
          | _ -> None
        in
        match fold with
        | Some w ->
          Pass.log_copy ctx fn.Func.name g "const-load";
          Some (Ins.Const (i.Ins.ty, Types.normalize i.Ins.ty w))
        | None -> None)
      | _ -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* printf -> puts (Figure 4).                                          *)
(* ------------------------------------------------------------------ *)

let printf_to_puts ctx (fn : Func.t) =
  let m = ctx.Pass.modul in
  let changed = ref false in
  Func.iter_insns
    (fun (i : Ins.ins) ->
      match i.Ins.kind with
      | Ins.Call (Ins.Direct "printf", [ Ins.Global str ]) when not i.Ins.volatile -> (
        match Modul.find_var m str with
        | Some v when v.Modul.gconst -> (
          match v.Modul.ginit with
          | Modul.Bytes s
            when String.length s >= 2
                 && s.[String.length s - 1] = '\x00'
                 && s.[String.length s - 2] = '\n'
                 && not (String.contains s '%') ->
            (* "text\n\0" -> puts("text\0"); puts appends the newline *)
            let trimmed = String.sub s 0 (String.length s - 2) ^ "\x00" in
            let new_name =
              let rec pick n =
                let candidate = Printf.sprintf "%s.str%d" str n in
                if Modul.mem m candidate then pick (n + 1) else candidate
              in
              pick 0
            in
            ignore
              (Modul.add_var m ~linkage:Func.Internal ~const:true ~name:new_name
                 (Modul.Bytes trimmed));
            ignore
              (Modul.declare_function m ~name:"puts"
                 ~params:[ (Types.Ptr, "s") ]
                 ~ret:Types.I32);
            i.Ins.kind <- Ins.Call (Ins.Direct "puts", [ Ins.Global new_name ]);
            Pass.log_copy ctx fn.Func.name str "printf-to-puts";
            Pass.log_copy ctx fn.Func.name new_name "printf-to-puts";
            changed := true
          | _ -> ())
        | _ -> ())
      | _ -> ())
    fn;
  !changed

(* ------------------------------------------------------------------ *)
(* Range-check fold (Figure 2).                                        *)
(*                                                                     *)
(*   bb1:  %c1 = icmp sge T %x, L        bb1:  %off = add T %x, -L     *)
(*         br %c1, bb2, end        ==>         %r = icmp ult T %off, N *)
(*   bb2:  %c2 = icmp sle T %x, U              br end                  *)
(*         br end                                                      *)
(*   end:  %r = phi i1 [false,bb1],[%c2,bb2]                           *)
(* ------------------------------------------------------------------ *)

let range_fold (fn : Func.t) =
  let changed = ref false in
  let preds = Cfg.predecessors fn in
  let use_counts = Func.use_counts fn in
  let uses n = Option.value ~default:0 (Hashtbl.find_opt use_counts n) in
  let find_block l = Func.find_block fn l in
  List.iter
    (fun (bb1 : Func.block) ->
      match bb1.Func.term with
      | Ins.Cbr (Ins.Reg (Types.I1, c1), mid_l, end_l) -> (
        match (find_block mid_l, find_block end_l) with
        | Some mid, Some end_b
          when (not (String.equal mid_l end_l))
               && Option.value ~default:[] (Cfg.SMap.find_opt mid_l preds) = [ bb1.Func.label ]
          -> (
          (* bb1 ends with %c1 = icmp sge/sgt x, L as its last insn *)
          let last_is_c1 =
            match List.rev bb1.Func.insns with
            | ({ Ins.id; kind = Ins.Icmp ((Ins.Sge | Ins.Sgt) as lowp, x, Ins.Const (ty, l)); volatile = false; _ } : Ins.ins)
              :: _
              when String.equal id c1 && uses c1 = 1 ->
              Some (x, ty, l, lowp)
            | _ -> None
          in
          match last_is_c1 with
          | None -> ()
          | Some (x, ty, lo_c, lowp) -> (
            let lo = match lowp with Ins.Sgt -> Int64.add lo_c 1L | _ -> lo_c in
            (* mid contains exactly one insn: %c2 = icmp sle/slt x, U; br end *)
            match (mid.Func.insns, mid.Func.term) with
            | ( [ ({ Ins.id = c2; kind = Ins.Icmp ((Ins.Sle | Ins.Slt) as up, x2, Ins.Const (_, hi_c)); volatile = false; _ } : Ins.ins) ],
                Ins.Br end_l2 )
              when String.equal end_l2 end_l
                   && (match (x, x2) with
                      | Ins.Reg (_, a), Ins.Reg (_, b) -> String.equal a b
                      | _ -> false)
                   && uses c2 = 1 -> (
              let hi = match up with Ins.Slt -> Int64.sub hi_c 1L | _ -> hi_c in
              (* end has the diamond phi *)
              let phi_ins =
                List.filter
                  (fun (i : Ins.ins) ->
                    match i.Ins.kind with Ins.Phi _ -> true | _ -> false)
                  end_b.Func.insns
              in
              match phi_ins with
              | [ ({ Ins.kind = Ins.Phi incoming; ty = Types.I1; _ } as phi) ]
                when List.length incoming = 2 -> (
                let arm l = List.assoc_opt l incoming in
                match (arm bb1.Func.label, arm mid_l) with
                | Some (Ins.Const (Types.I1, 0L)), Some (Ins.Reg (Types.I1, c2'))
                  when String.equal c2' c2 && Int64.compare hi lo >= 0 ->
                  (* Perform the rewrite inside bb1. *)
                  let off_name = Func.fresh_name fn "offset" in
                  let res_name = Func.fresh_name fn "inrange" in
                  let add_ins =
                    Ins.mk ~id:off_name ~ty
                      (Ins.Binop (Ins.Add, x, Ins.Const (ty, Types.normalize ty (Int64.neg lo))))
                  in
                  let width = Int64.add (Int64.sub hi lo) 1L in
                  let cmp_ins =
                    Ins.mk ~id:res_name ~ty:Types.I1
                      (Ins.Icmp (Ins.Ult, Ins.Reg (ty, off_name), Ins.Const (ty, Types.normalize ty width)))
                  in
                  (* drop %c1 from bb1, append the new pair *)
                  bb1.Func.insns <-
                    List.filter (fun (i : Ins.ins) -> not (String.equal i.Ins.id c1)) bb1.Func.insns
                    @ [ add_ins; cmp_ins ];
                  bb1.Func.term <- Ins.Br end_l;
                  (* mid becomes dead; phi is replaced by the new icmp *)
                  Func.replace_uses fn phi.Ins.id (Ins.Reg (Types.I1, res_name));
                  end_b.Func.insns <-
                    List.filter (fun (i : Ins.ins) -> i != phi) end_b.Func.insns;
                  changed := true
                | _ -> ())
              | _ -> ())
            | _ -> ()))
        | _ -> ())
      | _ -> ())
    fn.Func.blocks;
  if !changed then ignore (Cfg.remove_unreachable fn);
  !changed

(* The branch form of the same fold (what SimplifyCFG + InstCombine do to
   an [if (x >= L && x <= U)] after the boolean diamond is threaded):

     bb1:  %c1 = icmp sge T %x, L      bb1:  %off = add T %x, -L
           br %c1, mid, F        ==>         %r = icmp ult T %off, N
     mid:  %c2 = icmp sle T %x, U            br %r, T, F
           br %c2, T, F

   Requires: mid's only predecessor is bb1, the same false target, single
   uses of both comparisons, and no phis that would need merging in the
   targets (T gains the edge from bb1 instead of mid; F loses one of its
   two edges). *)
let range_fold_branches (fn : Func.t) =
  let changed = ref false in
  let preds = Cfg.predecessors fn in
  let use_counts = Func.use_counts fn in
  let uses n = Option.value ~default:0 (Hashtbl.find_opt use_counts n) in
  let has_phis label =
    match Func.find_block fn label with
    | Some b ->
      List.exists
        (fun (i : Ins.ins) ->
          match i.Ins.kind with Ins.Phi _ -> true | _ -> false)
        b.Func.insns
    | None -> true
  in
  List.iter
    (fun (bb1 : Func.block) ->
      match bb1.Func.term with
      | Ins.Cbr (Ins.Reg (Types.I1, c1), mid_l, f_l) -> (
        match Func.find_block fn mid_l with
        | Some mid
          when (not (String.equal mid_l f_l))
               && Option.value ~default:[] (Cfg.SMap.find_opt mid_l preds)
                  = [ bb1.Func.label ] -> (
          let lower =
            match List.rev bb1.Func.insns with
            | ({ Ins.id;
                 kind = Ins.Icmp ((Ins.Sge | Ins.Sgt) as p, x, Ins.Const (ty, l));
                 volatile = false;
                 _
               } : Ins.ins)
              :: _
              when String.equal id c1 && uses c1 = 1 ->
              Some (x, ty, (match p with Ins.Sgt -> Int64.add l 1L | _ -> l))
            | _ -> None
          in
          match (lower, mid.Func.insns, mid.Func.term) with
          | ( Some (x, ty, lo),
              [ ({ Ins.id = c2;
                   kind = Ins.Icmp ((Ins.Sle | Ins.Slt) as up, x2, Ins.Const (_, hi_c));
                   volatile = false;
                   _
                 } : Ins.ins) ],
              Ins.Cbr (Ins.Reg (Types.I1, c2'), t_l, f2_l) )
            when String.equal c2 c2' && String.equal f2_l f_l
                 && (match (x, x2) with
                    | Ins.Reg (_, a), Ins.Reg (_, b) -> String.equal a b
                    | _ -> false)
                 && uses c2 = 1
                 && (not (has_phis t_l))
                 && (not (has_phis f_l))
                 && not (String.equal t_l mid_l) ->
            let hi = match up with Ins.Slt -> Int64.sub hi_c 1L | _ -> hi_c in
            if Int64.compare hi lo >= 0 then begin
              let off_name = Func.fresh_name fn "offset" in
              let res_name = Func.fresh_name fn "inrange" in
              let add_ins =
                Ins.mk ~id:off_name ~ty
                  (Ins.Binop
                     (Ins.Add, x, Ins.Const (ty, Types.normalize ty (Int64.neg lo))))
              in
              let width = Int64.add (Int64.sub hi lo) 1L in
              let cmp_ins =
                Ins.mk ~id:res_name ~ty:Types.I1
                  (Ins.Icmp
                     ( Ins.Ult,
                       Ins.Reg (ty, off_name),
                       Ins.Const (ty, Types.normalize ty width) ))
              in
              bb1.Func.insns <-
                List.filter
                  (fun (i : Ins.ins) -> not (String.equal i.Ins.id c1))
                  bb1.Func.insns
                @ [ add_ins; cmp_ins ];
              bb1.Func.term <- Ins.Cbr (Ins.Reg (Types.I1, res_name), t_l, f_l);
              changed := true
            end
          | _ -> ())
        | _ -> ())
      | _ -> ())
    fn.Func.blocks;
  if !changed then ignore (Cfg.remove_unreachable fn);
  !changed

let run_function ctx (fn : Func.t) =
  let changed = ref false in
  let defs = Func.def_map fn in
  List.iter
    (fun (b : Func.block) ->
      let kept = ref [] in
      List.iter
        (fun (i : Ins.ins) ->
          match if i.Ins.volatile then None else simplify_value i with
          | Some v ->
            Func.replace_uses fn i.Ins.id v;
            changed := true
          | None -> (
            match fold_bool_test defs i with
            | Some (`Value v) ->
              Func.replace_uses fn i.Ins.id v;
              changed := true
            | Some (`Negate v) ->
              (* (zext x) == 0  ~~>  x xor 1 *)
              i.Ins.kind <- Ins.Binop (Ins.Xor, v, Ins.Const (Types.I1, 1L));
              i.Ins.ty <- Types.I1;
              changed := true;
              kept := i :: !kept
            | None -> (
              match fold_const_load ctx fn defs i with
              | Some v ->
                Func.replace_uses fn i.Ins.id v;
                changed := true
              | None ->
                if strength_reduce i then changed := true;
                kept := i :: !kept)))
        b.Func.insns;
      b.Func.insns <- List.rev !kept)
    fn.Func.blocks;
  if printf_to_puts ctx fn then changed := true;
  if range_fold fn then changed := true;
  if range_fold_branches fn then changed := true;
  !changed

let pass = Pass.function_pass "instcombine" run_function
