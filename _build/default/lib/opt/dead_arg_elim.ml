(** Dead Argument Elimination — the paper's example interprocedural pass
    (Figure 4 and Figure 6). For an internal function whose parameter is
    never used, the parameter is removed *and every call site is updated
    in the same transaction*: performing only one half changes the ABI
    and crashes (Section 2.3). In trial mode this logs a Bond requirement
    between the function and each of its callers. *)

open Ir

let used_params (f : Func.t) =
  let used = Hashtbl.create 8 in
  let mark = function
    | Ins.Reg (_, n) -> Hashtbl.replace used n ()
    | _ -> ()
  in
  Func.iter_blocks
    (fun b ->
      List.iter (fun i -> List.iter mark (Ins.operands i)) b.Func.insns;
      List.iter mark (Ins.term_operands b.Func.term))
    f;
  used

let run (ctx : Pass.ctx) =
  let m = ctx.Pass.modul in
  let changed = ref false in
  let candidates =
    List.filter
      (fun (f : Func.t) ->
        f.Func.linkage = Func.Internal
        && (not (Func.is_declaration f))
        && f.Func.params <> []
        && not (Uses.address_taken m f.Func.name))
      (Modul.defined_functions m)
  in
  List.iter
    (fun (f : Func.t) ->
      let used = used_params f in
      let dead_idx =
        List.filteri (fun _ (_, p) -> not (Hashtbl.mem used p)) f.Func.params
        |> List.map (fun (_, p) -> p)
      in
      if dead_idx <> [] then begin
        let keep_positions =
          List.mapi (fun i (_, p) -> (i, Hashtbl.mem used p)) f.Func.params
        in
        let sites = Uses.call_sites m f.Func.name in
        (* All callers must be in the module (internal linkage guarantees
           it) — rewrite function signature and every call site. *)
        f.Func.params <- List.filter (fun (_, p) -> Hashtbl.mem used p) f.Func.params;
        List.iter
          (fun ((caller : Func.t), (call : Ins.ins)) ->
            (match call.Ins.kind with
            | Ins.Call (Ins.Direct name, args) when String.equal name f.Func.name ->
              let kept_args =
                List.filteri
                  (fun i _ ->
                    match List.assoc_opt i keep_positions with
                    | Some keep -> keep
                    | None -> true)
                  args
              in
              call.Ins.kind <- Ins.Call (Ins.Direct name, kept_args)
            | _ -> ());
            Pass.log_bond ctx f.Func.name caller.Func.name "dead-arg-elim")
          sites;
        changed := true
      end)
    candidates;
  !changed

let pass = Pass.mk "dead-arg-elim" run
