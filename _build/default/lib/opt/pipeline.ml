(** The standard optimization pipeline ("O2") and the trial run used by
    Odin's pre-fuzzing survey.

    Pipeline shape follows the classic middle-end recipe: put the program
    into SSA form, simplify locally, then alternate interprocedural and
    local passes to a fixpoint (bounded). *)

let standard_passes ?(keep = [ "main" ]) () =
  [
    Internalize.pass ~keep;
    Mem2reg.pass;
    Constfold.pass;
    Instcombine.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
    Inline.pass;
    Dead_arg_elim.pass;
    Constfold.pass;
    Instcombine.pass;
    Jump_threading.pass;
    Loop_unroll.pass;
    Simplifycfg.pass;
    Gvn.pass;
    Dce.pass;
  ]

(** Run a list of passes to a bounded fixpoint. Returns the pass context
    (which carries the requirement log when [trial] is set). *)
let run ?(trial = false) ?(max_rounds = 5) ?(keep = [ "main" ]) modul =
  let ctx = Pass.make_ctx ~trial modul in
  let passes = standard_passes ~keep () in
  let rec go round =
    if round >= max_rounds then ()
    else begin
      ctx.Pass.rounds <- round + 1;
      let changed =
        List.fold_left (fun acc p -> p.Pass.run ctx || acc) false passes
      in
      if changed then go (round + 1)
    end
  in
  go 0;
  ctx

(** Optimize a single fragment module during recompilation. Internalize is
    *not* run here: fragment symbol visibility was already decided by the
    partitioner, and demoting an exported symbol would break cross-fragment
    links. *)
let run_fragment ?(max_rounds = 2) modul =
  let ctx = Pass.make_ctx ~trial:false modul in
  let passes =
    [
      Mem2reg.pass;
      Constfold.pass;
      Instcombine.pass;
      Simplifycfg.pass;
      Gvn.pass;
      Dce.pass;
      Inline.pass;
      Dead_arg_elim.pass;
      Constfold.pass;
      Instcombine.pass;
      Jump_threading.pass;
      Loop_unroll.pass;
      Simplifycfg.pass;
      Gvn.pass;
      Dce.pass;
    ]
  in
  let rec go round =
    if round >= max_rounds then ()
    else begin
      let changed =
        List.fold_left (fun acc p -> p.Pass.run ctx || acc) false passes
      in
      if changed then go (round + 1)
    end
  in
  go 0;
  ctx
