(** Dead code elimination: removes side-effect-free instructions whose
    results are unused (volatile probes are never touched), and dead
    internal globals that nothing references. *)

open Ir

let run_function _ctx (fn : Func.t) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let uses = Func.use_counts fn in
    let used n = Option.value ~default:0 (Hashtbl.find_opt uses n) > 0 in
    List.iter
      (fun (b : Func.block) ->
        let kept =
          List.filter
            (fun (i : Ins.ins) ->
              let dead =
                (not (Ins.has_side_effect i)) && (i.Ins.id = "" || not (used i.Ins.id))
              in
              if dead then begin
                changed := true;
                continue_ := true
              end;
              not dead)
            b.Func.insns
        in
        b.Func.insns <- kept)
      fn.Func.blocks
  done;
  !changed

let function_pass = Pass.function_pass "dce" run_function

(** Remove internal globals that are completely unreferenced (dead
    functions after inlining, dead constants after folding). *)
let global_dce (ctx : Pass.ctx) =
  let m = ctx.Pass.modul in
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let refs = Uses.referencers m in
    let dead =
      List.filter
        (fun gv ->
          Modul.gvalue_linkage gv = Func.Internal
          && Uses.SSet.is_empty (Uses.referencers_of refs (Modul.gvalue_name gv)))
        (Modul.globals m)
    in
    List.iter
      (fun gv ->
        Modul.remove m (Modul.gvalue_name gv);
        changed := true;
        continue_ := true)
      dead
  done;
  !changed

let pass =
  Pass.mk "dce" (fun ctx ->
      let c1 = function_pass.Pass.run ctx in
      let c2 = global_dce ctx in
      c1 || c2)
