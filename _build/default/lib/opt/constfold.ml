(** Constant folding and propagation (a light SCCP): folds instructions
    with constant operands, propagates the results, and folds conditional
    branches/switches on constants into unconditional ones. *)

open Ir

let const_of = function Ins.Const (ty, v) -> Some (ty, v) | _ -> None

(* Try to fold one instruction to a constant value. *)
let fold_ins (i : Ins.ins) =
  if i.Ins.volatile then None
  else
    match i.Ins.kind with
    | Ins.Binop (op, a, b) -> (
      match (const_of a, const_of b) with
      | Some (_, va), Some (_, vb) ->
        Option.map (fun r -> Ins.Const (i.Ins.ty, r)) (Eval.binop i.Ins.ty op va vb)
      | _ -> None)
    | Ins.Icmp (p, a, b) -> (
      match (const_of a, const_of b) with
      | Some (ta, va), Some (_, vb) ->
        Some (Ins.Const (Types.I1, Eval.icmp ta p va vb))
      | _ -> None)
    | Ins.Select (Ins.Const (_, c), a, b) -> Some (if c <> 0L then a else b)
    | Ins.Cast (c, a) -> (
      match const_of a with
      | Some (from, v) -> Some (Ins.Const (i.Ins.ty, Eval.cast c ~from ~into:i.Ins.ty v))
      | None -> None)
    | Ins.Phi [] -> None
    | Ins.Phi ((_, first) :: rest) ->
      (* all arms identical (and not self-referential) *)
      let same v =
        match (v, first) with
        | Ins.Const (t1, v1), Ins.Const (t2, v2) -> t1 = t2 && Int64.equal v1 v2
        | Ins.Reg (_, n1), Ins.Reg (_, n2) -> String.equal n1 n2
        | Ins.Global g1, Ins.Global g2 -> String.equal g1 g2
        | _ -> false
      in
      let not_self v =
        match v with Ins.Reg (_, n) -> not (String.equal n i.Ins.id) | _ -> true
      in
      if rest <> [] && List.for_all (fun (_, v) -> same v) rest && not_self first then
        Some first
      else None
    | _ -> None

(* When a fold deletes the CFG edge pred->succ, the phis in succ must drop
   the corresponding arm, otherwise codegen would insert a copy on a
   nonexistent edge. *)
let remove_phi_edge (fn : Func.t) ~pred ~succ =
  match Func.find_block fn succ with
  | None -> ()
  | Some b ->
    List.iter
      (fun (i : Ins.ins) ->
        match i.Ins.kind with
        | Ins.Phi incoming ->
          i.Ins.kind <-
            Ins.Phi (List.filter (fun (l, _) -> not (String.equal l pred)) incoming)
        | _ -> ())
      b.Func.insns

let run_function _ctx (fn : Func.t) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun (b : Func.block) ->
        let kept = ref [] in
        List.iter
          (fun (i : Ins.ins) ->
            match fold_ins i with
            | Some v ->
              Func.replace_uses fn i.Ins.id v;
              changed := true;
              continue_ := true
            | None -> kept := i :: !kept)
          b.Func.insns;
        b.Func.insns <- List.rev !kept;
        (* Fold constant terminators. *)
        (match b.Func.term with
        | Ins.Cbr (Ins.Const (_, c), t, f) ->
          let taken, dropped = if c <> 0L then (t, f) else (f, t) in
          b.Func.term <- Ins.Br taken;
          if not (String.equal taken dropped) then
            remove_phi_edge fn ~pred:b.Func.label ~succ:dropped;
          changed := true;
          continue_ := true
        | Ins.Cbr (_, t, f) when String.equal t f ->
          b.Func.term <- Ins.Br t;
          changed := true
        | Ins.Switch (Ins.Const (_, v), d, cases) ->
          let target =
            match List.assoc_opt v cases with Some l -> l | None -> d
          in
          let all_targets =
            List.sort_uniq String.compare (d :: List.map snd cases)
          in
          List.iter
            (fun l ->
              if not (String.equal l target) then
                remove_phi_edge fn ~pred:b.Func.label ~succ:l)
            all_targets;
          b.Func.term <- Ins.Br target;
          changed := true;
          continue_ := true
        | _ -> ()))
      fn.Func.blocks;
    if !continue_ then begin
      (* branch folding may strand blocks; drop them so phis stay sane *)
      ignore (Cfg.remove_unreachable fn)
    end
  done;
  !changed

let pass = Pass.function_pass "constfold" run_function
