(** Jump threading — the paper's example of a pass that *clones* basic
    blocks (Section 2.2, item 4): when a block branches on a phi whose
    value is a constant along some incoming edge, that predecessor can
    jump straight through a specialized clone of the block, duplicating
    its code (and any coverage probes in it).

    Implementation: for a block B ending in [br (cond), T, F] where the
    branch condition reduces to a constant when entered from predecessor
    P (because it is, or is computed from, a phi with a constant arm for
    P), create a clone B_P with the phi arms resolved to P's values,
    retarget P to B_P, and let constant folding collapse the clone's
    branch. Successor phis gain an arm for the clone.

    Safety guard: the clone's successor-phi arm values must be constants,
    globals, or values defined inside B itself — anything else might not
    dominate the new edge. *)

open Ir

let max_clones_per_run = 16

(* Does the branch condition of [blk] become constant when the phis take
   their arms for predecessor [pred]? Returns the chosen successor. *)
let constant_target (blk : Func.block) pred =
  match blk.Func.term with
  | Ins.Cbr (cond, t, f) -> (
    let phi_value name =
      List.find_map
        (fun (i : Ins.ins) ->
          match i.Ins.kind with
          | Ins.Phi incoming when String.equal i.Ins.id name ->
            List.assoc_opt pred incoming
          | _ -> None)
        blk.Func.insns
    in
    let resolve = function
      | Ins.Const (ty, v) -> Some (ty, v)
      | Ins.Reg (_, n) -> (
        match phi_value n with
        | Some (Ins.Const (ty, v)) -> Some (ty, v)
        | _ ->
          (* one level of computation: icmp/binop over a phi + consts *)
          List.find_map
            (fun (i : Ins.ins) ->
              if not (String.equal i.Ins.id n) || i.Ins.volatile then None
              else
                match i.Ins.kind with
                | Ins.Icmp (p, Ins.Reg (_, a), Ins.Const (tb, vb)) -> (
                  match phi_value a with
                  | Some (Ins.Const (_, va)) -> Some (Types.I1, Eval.icmp tb p va vb)
                  | _ -> None)
                | Ins.Binop (op, Ins.Reg (_, a), Ins.Const (_, vb)) -> (
                  match phi_value a with
                  | Some (Ins.Const (_, va)) ->
                    Option.map (fun r -> (i.Ins.ty, r)) (Eval.binop i.Ins.ty op va vb)
                  | _ -> None)
                | _ -> None)
            blk.Func.insns)
      | _ -> None
    in
    match resolve cond with
    | Some (_, v) -> Some (if v <> 0L then t else f)
    | None -> None)
  | _ -> None

(* Can we safely clone [blk] for one predecessor? All successor-phi arm
   values for blk must be substitutable (constants/globals/blk-defined). *)
let clone_safe (fn : Func.t) (blk : Func.block) =
  let defined_in_blk = Hashtbl.create 8 in
  List.iter
    (fun (i : Ins.ins) ->
      if i.Ins.id <> "" then Hashtbl.replace defined_in_blk i.Ins.id ())
    blk.Func.insns;
  (* values defined in blk may escape only through successor-phi arms for
     blk's edge (where the clone contributes its own arm); any direct use
     in another block would be unreachable from the clone *)
  let escapes_directly =
    List.exists
      (fun (b : Func.block) ->
        (not (b == blk))
        && (List.exists
              (fun (i : Ins.ins) ->
                match i.Ins.kind with
                | Ins.Phi incoming ->
                  (* arms for other predecessors must not name blk defs *)
                  List.exists
                    (fun (l, v) ->
                      (not (String.equal l blk.Func.label))
                      &&
                      match v with
                      | Ins.Reg (_, n) -> Hashtbl.mem defined_in_blk n
                      | _ -> false)
                    incoming
                | _ ->
                  List.exists
                    (function
                      | Ins.Reg (_, n) -> Hashtbl.mem defined_in_blk n
                      | _ -> false)
                    (Ins.operands i))
              b.Func.insns
           || List.exists
                (function
                  | Ins.Reg (_, n) -> Hashtbl.mem defined_in_blk n
                  | _ -> false)
                (Ins.term_operands b.Func.term)))
      fn.Func.blocks
  in
  (not escapes_directly)
  && List.for_all
    (fun succ_l ->
      match Func.find_block fn succ_l with
      | None -> false
      | Some succ ->
        List.for_all
          (fun (i : Ins.ins) ->
            match i.Ins.kind with
            | Ins.Phi incoming -> (
              match List.assoc_opt blk.Func.label incoming with
              | None -> true
              | Some (Ins.Reg (_, n)) -> Hashtbl.mem defined_in_blk n
              | Some (Ins.Const _ | Ins.Global _ | Ins.Undef _ | Ins.Blockaddr _) ->
                true)
            | _ -> true)
          succ.Func.insns)
    (Ins.successors blk.Func.term)

(* Clone [blk] specialized for predecessor [pred]. *)
let specialize (fn : Func.t) (blk : Func.block) pred =
  let clone_label = Func.fresh_label fn (blk.Func.label ^ ".thread") in
  (* phi names resolve to the pred's arm value; other blk-defined names
     get fresh clones *)
  let subst : (string, Ins.value) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (i : Ins.ins) ->
      match i.Ins.kind with
      | Ins.Phi incoming ->
        let v =
          Option.value ~default:(Ins.Undef i.Ins.ty) (List.assoc_opt pred incoming)
        in
        Hashtbl.replace subst i.Ins.id v
      | _ -> ())
    blk.Func.insns;
  let map_value v =
    match v with
    | Ins.Reg (_, n) -> (
      match Hashtbl.find_opt subst n with Some v' -> v' | None -> v)
    | v -> v
  in
  let cloned =
    List.filter_map
      (fun (i : Ins.ins) ->
        match i.Ins.kind with
        | Ins.Phi _ -> None
        | _ ->
          let new_id =
            if i.Ins.id = "" then ""
            else begin
              let n = Func.fresh_name fn (i.Ins.id ^ ".th") in
              Hashtbl.replace subst i.Ins.id (Ins.Reg (i.Ins.ty, n));
              n
            end
          in
          let copy = { i with Ins.id = new_id } in
          Ins.map_operands map_value copy;
          Some copy)
      blk.Func.insns
  in
  let term = Ins.map_term_operands map_value blk.Func.term in
  let clone = { Func.label = clone_label; insns = cloned; term } in
  fn.Func.blocks <- fn.Func.blocks @ [ clone ];
  (* successors gain an arm for the clone (the blk arm, substituted) *)
  List.iter
    (fun succ_l ->
      match Func.find_block fn succ_l with
      | None -> ()
      | Some succ ->
        List.iter
          (fun (i : Ins.ins) ->
            match i.Ins.kind with
            | Ins.Phi incoming -> (
              match List.assoc_opt blk.Func.label incoming with
              | None -> ()
              | Some v ->
                i.Ins.kind <- Ins.Phi (incoming @ [ (clone_label, map_value v) ]))
            | _ -> ())
          succ.Func.insns)
    (Ins.successors blk.Func.term);
  (* retarget the predecessor and drop its arm from blk's phis *)
  (match Func.find_block fn pred with
  | None -> ()
  | Some pb ->
    let fix l = if String.equal l blk.Func.label then clone_label else l in
    pb.Func.term <-
      (match pb.Func.term with
      | Ins.Br l -> Ins.Br (fix l)
      | Ins.Cbr (c, a, b) -> Ins.Cbr (c, fix a, fix b)
      | Ins.Switch (v, d, cases) ->
        Ins.Switch (v, fix d, List.map (fun (k, l) -> (k, fix l)) cases)
      | t -> t));
  List.iter
    (fun (i : Ins.ins) ->
      match i.Ins.kind with
      | Ins.Phi incoming ->
        i.Ins.kind <-
          Ins.Phi (List.filter (fun (l, _) -> not (String.equal l pred)) incoming)
      | _ -> ())
    blk.Func.insns;
  clone

let run_function _ctx (fn : Func.t) =
  let changed = ref false in
  let budget = ref max_clones_per_run in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    continue_ := false;
    let preds = Cfg.predecessors fn in
    let entry_label =
      match fn.Func.blocks with [] -> "" | e :: _ -> e.Func.label
    in
    let candidate =
      List.find_map
        (fun (blk : Func.block) ->
          if String.equal blk.Func.label entry_label then None
          else if List.mem blk.Func.label (Ins.successors blk.Func.term) then None
          else if not (clone_safe fn blk) then None
          else
            let ps =
              Option.value ~default:[] (Cfg.SMap.find_opt blk.Func.label preds)
            in
            if List.length ps < 2 then None
            else
              List.find_map
                (fun p ->
                  match constant_target blk p with
                  | Some _ -> Some (blk, p)
                  | None -> None)
                ps)
        fn.Func.blocks
    in
    match candidate with
    | Some (blk, pred) ->
      ignore (specialize fn blk pred);
      decr budget;
      changed := true;
      continue_ := true;
      ignore (Cfg.remove_unreachable fn)
    | None -> ()
  done;
  !changed

let pass = Pass.function_pass "jump-threading" run_function
