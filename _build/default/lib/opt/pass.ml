(** Pass infrastructure.

    The pass context carries the *requirement log*: when run in trial mode
    (Odin's pre-fuzzing survey, paper Section 3.2), passes record which
    symbols an optimization needed together ([Bond]) and which constants a
    local optimization needed to inspect ([Copy_on_use]). Odin's symbol
    classification is built from this log. *)

type requirement =
  | Bond of { a : string; b : string; why : string }
      (** interprocedural optimization modified/needed [a] and [b] in
          tandem; separating them would miss or miscompile (Figure 4) *)
  | Copy_on_use of { user : string; sym : string; why : string }
      (** local optimization in [user] needed to *read* [sym]'s contents;
          cloning [sym] into [user]'s fragment preserves the rewrite *)

type ctx = {
  modul : Ir.Modul.t;
  trial : bool;  (** requirement-logging survey run *)
  mutable reqs : requirement list;
  mutable rounds : int;
}

let make_ctx ?(trial = false) modul = { modul; trial; reqs = []; rounds = 0 }

let log_bond ctx a b why =
  if ctx.trial && not (String.equal a b) then ctx.reqs <- Bond { a; b; why } :: ctx.reqs

let log_copy ctx user sym why =
  if ctx.trial then ctx.reqs <- Copy_on_use { user; sym; why } :: ctx.reqs

type t = {
  name : string;
  run : ctx -> bool;  (** returns true when the IR changed *)
}

let mk name run = { name; run }

(** Lift a per-function transform to a module pass. *)
let function_pass name run_fn =
  let run ctx =
    List.fold_left
      (fun changed fn -> run_fn ctx fn || changed)
      false
      (Ir.Modul.defined_functions ctx.modul)
  in
  mk name run
