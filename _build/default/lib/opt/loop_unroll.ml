(** Loop unrolling — one of the paper's CFG-distorting passes (Section
    2.2, item 3). We fully unroll single-block self-loops whose trip count
    is a small compile-time constant, duplicating the body (including any
    probes — duplicated side effects are exactly what the loop would have
    executed).

    The trip count is established by abstract interpretation of the loop
    block over its phi state; anything not reducible to a constant makes
    the loop ineligible. Instrumented bodies exceed the size budget more
    easily, so instrument-first inhibits unrolling — contributing to the
    OdinCov-NoPrune vs SanitizerCoverage gap the paper reports. *)

open Ir

let max_trip = 8
let max_body = 34

module SMap = Map.Make (String)

let eval_value env = function
  | Ins.Const (ty, v) -> Some (ty, v)
  | Ins.Reg (ty, n) -> (
    match SMap.find_opt n env with Some v -> Some (ty, v) | None -> None)
  | _ -> None

(* Simulate one execution of the block body given phi values; returns
   (env after body, branch cond value) or None if not analyzable. *)
let simulate_body (blk : Func.block) phi_env =
  let env = ref phi_env in
  let ok = ref true in
  List.iter
    (fun (i : Ins.ins) ->
      if !ok then
        match i.Ins.kind with
        | Ins.Phi _ -> ()
        | Ins.Binop (op, a, b) -> (
          match (eval_value !env a, eval_value !env b) with
          | Some (_, va), Some (_, vb) -> (
            match Eval.binop i.Ins.ty op va vb with
            | Some r -> env := SMap.add i.Ins.id r !env
            | None -> ())
          | _ -> ())
        | Ins.Icmp (p, a, b) -> (
          match (eval_value !env a, eval_value !env b) with
          | Some (ta, va), Some (_, vb) ->
            env := SMap.add i.Ins.id (Eval.icmp ta p va vb) !env
          | _ -> ())
        | Ins.Cast (c, a) -> (
          match eval_value !env a with
          | Some (from, v) ->
            env := SMap.add i.Ins.id (Eval.cast c ~from ~into:i.Ins.ty v) !env
          | None -> ())
        | Ins.Store _ | Ins.Call _ | Ins.Load _ | Ins.Gep _ | Ins.Select _
        | Ins.Alloca _ ->
          (* unknown result; side effects are irrelevant to trip count *)
          ())
    blk.Func.insns;
  !env

(* Compute the trip count of a self-loop block, or None. *)
let trip_count (blk : Func.block) preheader =
  let self = blk.Func.label in
  let cond_reg, on_true_self =
    match blk.Func.term with
    | Ins.Cbr (Ins.Reg (Types.I1, c), t, f) when String.equal t self && not (String.equal f self) ->
      (Some c, true)
    | Ins.Cbr (Ins.Reg (Types.I1, c), t, f) when String.equal f self && not (String.equal t self) ->
      (Some c, false)
    | _ -> (None, true)
  in
  match cond_reg with
  | None -> None
  | Some cond ->
    let phis =
      List.filter_map
        (fun (i : Ins.ins) ->
          match i.Ins.kind with Ins.Phi incoming -> Some (i, incoming) | _ -> None)
        blk.Func.insns
    in
    (* Initial env from the preheader arms. Phis with non-constant inits
       (e.g. reduction accumulators) are simply untracked — the branch
       condition must still evaluate to a constant every iteration, which
       restricts the analysis to genuine induction variables. *)
    let env0 =
      List.fold_left
        (fun env (i, incoming) ->
          match List.assoc_opt preheader incoming with
          | Some (Ins.Const (_, v)) -> SMap.add i.Ins.id v env
          | _ -> env)
        SMap.empty phis
    in
    let rec iterate env count =
      if count > max_trip then None
      else begin
        let env' = simulate_body blk env in
        match SMap.find_opt cond env' with
        | None -> None
        | Some c ->
          let continue_ = if on_true_self then c <> 0L else c = 0L in
          if not continue_ then Some (count + 1)
          else begin
            (* next-iteration phi values from the self arms; unknown
               arms just stay untracked *)
            let env_next =
              List.fold_left
                (fun e (i, incoming) ->
                  match List.assoc_opt self incoming with
                  | Some v -> (
                    match eval_value env' v with
                    | Some (_, value) -> SMap.add i.Ins.id value e
                    | None -> e)
                  | None -> e)
                SMap.empty phis
            in
            iterate env_next (count + 1)
          end
      end
    in
    iterate env0 0

let body_size (blk : Func.block) =
  List.fold_left
    (fun acc (i : Ins.ins) -> acc + if i.Ins.volatile then 2 else 1)
    0 blk.Func.insns

(* Fully unroll [blk] (a self-loop) [t] times. *)
let unroll (fn : Func.t) (blk : Func.block) preheader t =
  let self = blk.Func.label in
  let exit_label =
    match blk.Func.term with
    | Ins.Cbr (_, a, b) -> if String.equal a self then b else a
    | _ -> assert false
  in
  let defined =
    List.filter_map
      (fun (i : Ins.ins) -> if i.Ins.id = "" then None else Some i.Ins.id)
      blk.Func.insns
  in
  let iter_name k r = Printf.sprintf "%s.u%d.%s" self k r in
  let iter_label k = Printf.sprintf "%s.u%d" self k in
  (* env maps original reg -> value available in iteration k *)
  let make_iteration k (prev_env : Ins.value SMap.t) =
    let env = ref prev_env in
    let map_value v =
      match v with
      | Ins.Reg (ty, n) -> (
        match SMap.find_opt n !env with
        | Some mapped -> mapped
        | None -> Ins.Reg (ty, n) (* defined before the loop *))
      | v -> v
    in
    (* Phis assign in parallel: resolve every arm against the previous
       iteration's environment before any of this iteration's bindings
       become visible. *)
    let phi_updates =
      List.filter_map
        (fun (i : Ins.ins) ->
          match i.Ins.kind with
          | Ins.Phi incoming ->
            let arm_label = if k = 0 then preheader else self in
            let v =
              match List.assoc_opt arm_label incoming with
              | Some v -> if k = 0 then v else map_value v
              | None -> Ins.Undef i.Ins.ty
            in
            Some (i.Ins.id, v)
          | _ -> None)
        blk.Func.insns
    in
    List.iter (fun (n, v) -> env := SMap.add n v !env) phi_updates;
    let insns =
      List.filter_map
        (fun (i : Ins.ins) ->
          match i.Ins.kind with
          | Ins.Phi _ -> None
          | _ ->
            let copy =
              { i with Ins.id = (if i.Ins.id = "" then "" else iter_name k i.Ins.id) }
            in
            Ins.map_operands map_value copy;
            if i.Ins.id <> "" then
              env := SMap.add i.Ins.id (Ins.Reg (i.Ins.ty, copy.Ins.id)) !env;
            Some copy)
        blk.Func.insns
    in
    (insns, !env)
  in
  (* phi self-arm values must be remapped *after* the body of the same
     iteration; make_iteration handles this because phis are listed first
     in the block and we resolve them against prev_env, while non-phi
     instructions update env as we go. *)
  let blocks = ref [] in
  let env = ref SMap.empty in
  for k = 0 to t - 1 do
    let insns, env' = make_iteration k !env in
    let term = if k = t - 1 then Ins.Br exit_label else Ins.Br (iter_label (k + 1)) in
    blocks := { Func.label = iter_label k; insns; term } :: !blocks;
    env := env'
  done;
  let unrolled = List.rev !blocks in
  (* splice in place of the original loop block *)
  let rec replace = function
    | [] -> []
    | b :: rest when b == blk -> unrolled @ rest
    | b :: rest -> b :: replace rest
  in
  fn.Func.blocks <- replace fn.Func.blocks;
  (* preheader branch retarget *)
  (match Func.find_block fn preheader with
  | Some pb ->
    let fix l = if String.equal l self then iter_label 0 else l in
    pb.Func.term <-
      (match pb.Func.term with
      | Ins.Br l -> Ins.Br (fix l)
      | Ins.Cbr (c, a, b) -> Ins.Cbr (c, fix a, fix b)
      | Ins.Switch (v, d, cases) ->
        Ins.Switch (v, fix d, List.map (fun (key, l) -> (key, fix l)) cases)
      | term -> term)
  | None -> ());
  (* uses of loop-defined values outside the loop refer to the final
     iteration; exit-block phi arms from the loop are relabelled *)
  let final_env = !env in
  List.iter
    (fun r ->
      match SMap.find_opt r final_env with
      | Some v -> Func.replace_uses fn r v
      | None -> ())
    defined;
  (match Func.find_block fn exit_label with
  | Some eb ->
    List.iter
      (fun (i : Ins.ins) ->
        match i.Ins.kind with
        | Ins.Phi incoming ->
          i.Ins.kind <-
            Ins.Phi
              (List.map
                 (fun (l, v) -> if String.equal l self then (iter_label (t - 1), v) else (l, v))
                 incoming)
        | _ -> ())
      eb.Func.insns
  | None -> ())

let run_function _ctx (fn : Func.t) =
  let changed = ref false in
  let preds = Cfg.predecessors fn in
  let candidates =
    List.filter_map
      (fun (blk : Func.block) ->
        let self = blk.Func.label in
        match Cfg.SMap.find_opt self preds with
        | Some ps -> (
          let outside = List.filter (fun p -> not (String.equal p self)) ps in
          match outside with
          | [ preheader ] when List.mem self ps && body_size blk <= max_body ->
            Some (blk, preheader)
          | _ -> None)
        | None -> None)
      fn.Func.blocks
  in
  List.iter
    (fun (blk, preheader) ->
      (* the block may already have been removed by a previous unroll *)
      if List.memq blk fn.Func.blocks then
        match trip_count blk preheader with
        | Some t when t >= 1 && t <= max_trip ->
          unroll fn blk preheader t;
          changed := true
        | _ -> ())
    candidates;
  !changed

let pass = Pass.function_pass "loop-unroll" run_function
