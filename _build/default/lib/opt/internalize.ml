(** Internalize: mark every global as [Internal] except an explicit keep
    list (program entry points, exported API). Whole-program builds run
    this first so interprocedural passes see the full set of callers. *)

open Ir

let run ~keep (ctx : Pass.ctx) =
  let m = ctx.Pass.modul in
  let changed = ref false in
  List.iter
    (fun gv ->
      let name = Modul.gvalue_name gv in
      if
        Modul.is_definition gv
        && Modul.gvalue_linkage gv = Func.External
        && not (List.mem name keep)
      then begin
        Modul.set_linkage gv Func.Internal;
        changed := true
      end)
    (Modul.globals m);
  !changed

let pass ~keep = Pass.mk "internalize" (run ~keep)
