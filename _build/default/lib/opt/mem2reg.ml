(** Promote memory to registers: allocas whose address never escapes and
    which are only read/written by direct loads and stores become SSA
    values, with phi nodes placed on iterated dominance frontiers. The
    frontend lowers every local variable through an alloca, so this pass
    is what actually puts the program into SSA form. *)

open Ir

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* An alloca is promotable when its only uses are Load (ptr) and
   Store (_, ptr) where ptr is the alloca result directly. *)
let promotable_allocas (fn : Func.t) =
  let allocas = Hashtbl.create 16 in
  Func.iter_insns
    (fun i ->
      match i.Ins.kind with
      | Ins.Alloca (ty, 1) -> Hashtbl.replace allocas i.Ins.id ty
      | _ -> ())
    fn;
  let disqualify name = Hashtbl.remove allocas name in
  Func.iter_blocks
    (fun b ->
      List.iter
        (fun (i : Ins.ins) ->
          match i.Ins.kind with
          | Ins.Load (Ins.Reg (_, _)) -> ()
          | Ins.Store (v, Ins.Reg (_, _)) -> (
            (* storing the alloca's own address escapes it *)
            match v with
            | Ins.Reg (_, n) when Hashtbl.mem allocas n -> disqualify n
            | _ -> ())
          | _ ->
            List.iter
              (function
                | Ins.Reg (_, n) when Hashtbl.mem allocas n -> disqualify n
                | _ -> ())
              (Ins.operands i))
        b.Func.insns;
      List.iter
        (function
          | Ins.Reg (_, n) when Hashtbl.mem allocas n -> disqualify n
          | _ -> ())
        (Ins.term_operands b.Func.term))
    fn;
  allocas

let run_function _ctx (fn : Func.t) =
  if fn.Func.blocks = [] then false
  else begin
    let allocas = promotable_allocas fn in
    if Hashtbl.length allocas = 0 then false
    else begin
      let dom = Dom.compute fn in
      let frontiers = Dom.frontiers fn dom in
      (* Blocks that store to each alloca. *)
      let store_blocks = Hashtbl.create 16 in
      Func.iter_blocks
        (fun b ->
          List.iter
            (fun (i : Ins.ins) ->
              match i.Ins.kind with
              | Ins.Store (_, Ins.Reg (_, a)) when Hashtbl.mem allocas a ->
                let old =
                  Option.value ~default:SSet.empty (Hashtbl.find_opt store_blocks a)
                in
                Hashtbl.replace store_blocks a (SSet.add b.Func.label old)
              | _ -> ())
            b.Func.insns)
        fn;
      (* Phi placement on iterated dominance frontiers. *)
      let phis : (string, (string, Ins.ins) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 16 (* block label -> (alloca -> phi ins) *)
      in
      let phi_for label alloca ty =
        let per_block =
          match Hashtbl.find_opt phis label with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 4 in
            Hashtbl.replace phis label h;
            h
        in
        match Hashtbl.find_opt per_block alloca with
        | Some p -> (p, false)
        | None ->
          (* include the block label: phis for the same alloca in
             different blocks need distinct names, and the pending ones
             are not yet visible to [fresh_name] *)
          let p =
            Ins.mk
              ~id:(Func.fresh_name fn (Printf.sprintf "%s.phi.%s" alloca label))
              ~ty (Ins.Phi [])
          in
          Hashtbl.replace per_block alloca p;
          (p, true)
      in
      Hashtbl.iter
        (fun alloca ty ->
          let work = ref (SSet.elements
            (Option.value ~default:SSet.empty (Hashtbl.find_opt store_blocks alloca)))
          in
          let placed = ref SSet.empty in
          while !work <> [] do
            match !work with
            | [] -> ()
            | label :: rest ->
              work := rest;
              let fr = Option.value ~default:[] (SMap.find_opt label frontiers) in
              List.iter
                (fun f ->
                  if not (SSet.mem f !placed) then begin
                    placed := SSet.add f !placed;
                    let _, fresh = phi_for f alloca ty in
                    if fresh then work := f :: !work
                  end)
                fr
          done)
        allocas;
      (* Renaming walk over the dominator tree. *)
      let preds = Cfg.predecessors fn in
      let children = Hashtbl.create 16 in
      Array.iteri
        (fun i _ ->
          if i > 0 then begin
            let parent = dom.Dom.order.(dom.Dom.idom.(i)).Func.label in
            let old = Option.value ~default:[] (Hashtbl.find_opt children parent) in
            Hashtbl.replace children parent (old @ [ dom.Dom.order.(i).Func.label ])
          end)
        dom.Dom.order;
      let block_of = Hashtbl.create 16 in
      Func.iter_blocks (fun b -> Hashtbl.replace block_of b.Func.label b) fn;
      let rec rename label (env : Ins.value SMap.t) =
        let b = Hashtbl.find block_of label in
        let env = ref env in
        (* incoming phis define new values *)
        (match Hashtbl.find_opt phis label with
        | None -> ()
        | Some per_block ->
          Hashtbl.iter
            (fun alloca (p : Ins.ins) -> env := SMap.add alloca (Ins.Reg (p.Ins.ty, p.Ins.id)) !env)
            per_block);
        let subst = function
          | Ins.Reg (_, _) as v -> v
          | v -> v
        in
        ignore subst;
        let kept = ref [] in
        List.iter
          (fun (i : Ins.ins) ->
            match i.Ins.kind with
            | Ins.Alloca _ when Hashtbl.mem allocas i.Ins.id -> ()
            | Ins.Store (v, Ins.Reg (_, a)) when Hashtbl.mem allocas a ->
              let v =
                match v with
                | Ins.Reg (ty, n) -> (
                  match SMap.find_opt n !env with
                  | Some _ when Hashtbl.mem allocas n -> Ins.Reg (ty, n)
                  | _ -> v)
                | _ -> v
              in
              env := SMap.add a v !env
            | Ins.Load (Ins.Reg (_, a)) when Hashtbl.mem allocas a ->
              let current =
                match SMap.find_opt a !env with
                | Some v -> v
                | None -> Ins.Undef i.Ins.ty
              in
              Func.replace_uses fn i.Ins.id current;
              (* Also update the environment values already captured. *)
              env :=
                SMap.map
                  (fun v ->
                    match v with
                    | Ins.Reg (_, n) when String.equal n i.Ins.id -> current
                    | v -> v)
                  !env
            | _ -> kept := i :: !kept)
          b.Func.insns;
        b.Func.insns <- List.rev !kept;
        (* Fill successor phis with the value live at this edge. *)
        List.iter
          (fun succ ->
            match Hashtbl.find_opt phis succ with
            | None -> ()
            | Some per_block ->
              Hashtbl.iter
                (fun alloca (p : Ins.ins) ->
                  let v =
                    match SMap.find_opt alloca !env with
                    | Some v -> v
                    | None -> Ins.Undef p.Ins.ty
                  in
                  match p.Ins.kind with
                  | Ins.Phi incoming ->
                    if not (List.exists (fun (l, _) -> String.equal l label) incoming)
                    then p.Ins.kind <- Ins.Phi (incoming @ [ (label, v) ])
                  | _ -> ())
                per_block)
          (Cfg.successors b);
        List.iter
          (fun child -> rename child !env)
          (Option.value ~default:[] (Hashtbl.find_opt children label))
      in
      (match fn.Func.blocks with
      | [] -> ()
      | entry :: _ -> rename entry.Func.label SMap.empty);
      (* Materialize the placed phis at block heads. *)
      Hashtbl.iter
        (fun label per_block ->
          match Hashtbl.find_opt block_of label with
          | None -> ()
          | Some b ->
            let new_phis =
              Hashtbl.fold (fun _ p acc -> p :: acc) per_block []
              |> List.sort (fun (a : Ins.ins) b -> String.compare a.Ins.id b.Ins.id)
            in
            (* Guarantee every predecessor has an arm (undef if the walk
               never reached that edge, e.g. from unreachable code). *)
            let pred_labels = Option.value ~default:[] (SMap.find_opt label preds) in
            List.iter
              (fun (p : Ins.ins) ->
                match p.Ins.kind with
                | Ins.Phi incoming ->
                  let missing =
                    List.filter
                      (fun pl -> not (List.exists (fun (l, _) -> String.equal l pl) incoming))
                      pred_labels
                  in
                  p.Ins.kind <-
                    Ins.Phi (incoming @ List.map (fun l -> (l, Ins.Undef p.Ins.ty)) missing)
                | _ -> ())
              new_phis;
            b.Func.insns <- new_phis @ b.Func.insns)
        phis;
      true
    end
  end

let pass = Pass.function_pass "mem2reg" run_function
