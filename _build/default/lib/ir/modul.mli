(** Global variables, aliases and modules. A module is the minimal
    translation unit (paper Section 2.3): it compiles to one object file,
    one global value per symbol. Iteration order is deterministic
    (insertion order). *)

type init =
  | Bytes of string  (** raw bytes, e.g. C string constants *)
  | Words of Types.ty * int64 list  (** homogeneous integer array *)
  | Symbols of string list  (** array of pointers to other globals *)
  | Zero of int  (** zero-initialized region of n bytes *)
  | Extern  (** declaration only *)

type gvar = {
  gname : string;
  mutable glinkage : Func.linkage;
  mutable gconst : bool;
  mutable ginit : init;
  mutable gcomdat : string option;
}

(** A second name for a definition; the base must be *defined* in the
    same object (innate partition constraint, Section 2.3). *)
type alias = {
  aname : string;
  mutable alinkage : Func.linkage;
  mutable atarget : string;
}

type gvalue = Fun of Func.t | Var of gvar | Alias of alias

val gvalue_name : gvalue -> string
val gvalue_linkage : gvalue -> Func.linkage
val set_linkage : gvalue -> Func.linkage -> unit
val is_definition : gvalue -> bool

type t = {
  mutable mname : string;
  table : (string, gvalue) Hashtbl.t;
  mutable order : string list;
}

val create : ?name:string -> unit -> t
val mem : t -> string -> bool

(** Insert or replace; preserves first-insertion order. *)
val add : t -> gvalue -> unit

val remove : t -> string -> unit
val find : t -> string -> gvalue option

(** @raise Invalid_argument when absent. *)
val find_exn : t -> string -> gvalue

val find_func : t -> string -> Func.t option
val find_var : t -> string -> gvar option
val globals : t -> gvalue list
val functions : t -> Func.t list
val defined_functions : t -> Func.t list
val vars : t -> gvar list
val aliases : t -> alias list
val iter : (gvalue -> unit) -> t -> unit

(** Follow alias chains to the underlying definition name. *)
val resolve_alias : t -> string -> string

val add_function :
  t ->
  ?linkage:Func.linkage ->
  ?comdat:string ->
  name:string ->
  params:(Types.ty * string) list ->
  ret:Types.ty ->
  Func.block list ->
  Func.t

(** Idempotent declaration; @raise Invalid_argument if the name is bound
    to a non-function. *)
val declare_function :
  t -> name:string -> params:(Types.ty * string) list -> ret:Types.ty -> Func.t

val add_var :
  t -> ?linkage:Func.linkage -> ?const:bool -> ?comdat:string -> name:string -> init -> gvar

val add_alias : t -> ?linkage:Func.linkage -> name:string -> target:string -> unit -> alias

(** Byte size of an initializer. *)
val init_size : init -> int
