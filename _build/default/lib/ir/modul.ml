(** Global variables, aliases and modules.

    A module is the minimal translation unit (paper Section 2.3): it is
    lowered to one object file, and one global value generally maps to one
    symbol in that object file. *)

type init =
  | Bytes of string  (** raw bytes, e.g. C string constants (NUL included) *)
  | Words of Types.ty * int64 list  (** homogeneous array of integers *)
  | Symbols of string list  (** array of pointers to other globals *)
  | Zero of int  (** zero-initialized region of n bytes *)
  | Extern  (** declaration only; defined in another module *)

type gvar = {
  gname : string;
  mutable glinkage : Func.linkage;
  mutable gconst : bool;  (** immutable after initialization *)
  mutable ginit : init;
  mutable gcomdat : string option;
}

(** Alias symbol: a second name for an existing definition. Relocation
    cannot be applied to the alias alone, so the base symbol must be
    *defined* (not declared) in the same object — one of the innate
    partition constraints of Section 2.3. *)
type alias = {
  aname : string;
  mutable alinkage : Func.linkage;
  mutable atarget : string;
}

type gvalue = Fun of Func.t | Var of gvar | Alias of alias

let gvalue_name = function
  | Fun f -> f.Func.name
  | Var v -> v.gname
  | Alias a -> a.aname

let gvalue_linkage = function
  | Fun f -> f.Func.linkage
  | Var v -> v.glinkage
  | Alias a -> a.alinkage

let set_linkage gv linkage =
  match gv with
  | Fun f -> f.Func.linkage <- linkage
  | Var v -> v.glinkage <- linkage
  | Alias a -> a.alinkage <- linkage

let is_definition = function
  | Fun f -> not (Func.is_declaration f)
  | Var v -> v.ginit <> Extern
  | Alias _ -> true

type t = {
  mutable mname : string;
  table : (string, gvalue) Hashtbl.t;
  mutable order : string list;  (** insertion order, for determinism *)
}

let create ?(name = "module") () =
  { mname = name; table = Hashtbl.create 64; order = [] }

let mem m name = Hashtbl.mem m.table name

let add m gv =
  let name = gvalue_name gv in
  if not (Hashtbl.mem m.table name) then m.order <- m.order @ [ name ];
  Hashtbl.replace m.table name gv

let remove m name =
  if Hashtbl.mem m.table name then begin
    Hashtbl.remove m.table name;
    m.order <- List.filter (fun n -> not (String.equal n name)) m.order
  end

let find m name = Hashtbl.find_opt m.table name

let find_exn m name =
  match find m name with
  | Some gv -> gv
  | None -> invalid_arg ("Modul.find_exn: no global " ^ name)

let find_func m name =
  match find m name with Some (Fun f) -> Some f | _ -> None

let find_var m name =
  match find m name with Some (Var v) -> Some v | _ -> None

(** Globals in deterministic (insertion) order. *)
let globals m = List.filter_map (find m) m.order

let functions m =
  List.filter_map (fun n -> match find m n with Some (Fun f) -> Some f | _ -> None) m.order

let defined_functions m =
  List.filter (fun f -> not (Func.is_declaration f)) (functions m)

let vars m =
  List.filter_map (fun n -> match find m n with Some (Var v) -> Some v | _ -> None) m.order

let aliases m =
  List.filter_map (fun n -> match find m n with Some (Alias a) -> Some a | _ -> None) m.order

let iter f m = List.iter f (globals m)

(** Follow alias chains to the underlying definition name. *)
let rec resolve_alias m name =
  match find m name with
  | Some (Alias a) -> resolve_alias m a.atarget
  | _ -> name

let add_function m ?(linkage = Func.External) ?comdat ~name ~params ~ret blocks =
  let f = Func.mk ~linkage ?comdat ~name ~params ~ret blocks in
  add m (Fun f);
  f

let declare_function m ~name ~params ~ret =
  match find m name with
  | Some (Fun f) -> f
  | Some _ -> invalid_arg ("Modul.declare_function: " ^ name ^ " is not a function")
  | None -> add_function m ~name ~params ~ret []

let add_var m ?(linkage = Func.External) ?(const = false) ?comdat ~name init =
  let v = { gname = name; glinkage = linkage; gconst = const; ginit = init; gcomdat = comdat } in
  add m (Var v);
  v

let add_alias m ?(linkage = Func.External) ~name ~target () =
  let a = { aname = name; alinkage = linkage; atarget = target } in
  add m (Alias a);
  a

(** Byte size of a global's initialized data. *)
let init_size = function
  | Bytes s -> String.length s
  | Words (ty, ws) -> Types.size_of ty * List.length ws
  | Symbols ss -> 8 * List.length ss
  | Zero n -> n
  | Extern -> 0
