(** Basic blocks and functions. Blocks and functions are mutable — passes
    transform them in place; cloning (see {!Clone}) produces independent
    copies. *)

type block = {
  mutable label : string;
  mutable insns : Ins.ins list;
  mutable term : Ins.term;
}

type linkage =
  | External  (** exported; visible to other fragments/objects *)
  | Internal  (** local to its module/fragment *)

type t = {
  name : string;
  mutable linkage : linkage;
  mutable params : (Types.ty * string) list;
  mutable ret : Types.ty;
  mutable blocks : block list;  (** empty means declaration *)
  mutable comdat : string option;  (** COMDAT group key (innate constraint) *)
  mutable attrs : string list;
}

val mk :
  ?linkage:linkage ->
  ?comdat:string ->
  ?attrs:string list ->
  name:string ->
  params:(Types.ty * string) list ->
  ret:Types.ty ->
  block list ->
  t

val is_declaration : t -> bool

(** @raise Invalid_argument on declarations. *)
val entry : t -> block

val find_block : t -> string -> block option

(** @raise Invalid_argument when absent. *)
val find_block_exn : t -> string -> block

val iter_blocks : (block -> unit) -> t -> unit
val iter_insns : (Ins.ins -> unit) -> t -> unit
val fold_insns : ('a -> Ins.ins -> 'a) -> 'a -> t -> 'a
val block_count : t -> int
val insn_count : t -> int

(** Apply [f] to every operand of every instruction and terminator. *)
val map_values : (Ins.value -> Ins.value) -> t -> unit

(** Replace all uses of SSA register [name] with a value. *)
val replace_uses : t -> string -> Ins.value -> unit

(** Fresh SSA name / block label unique within this function. *)
val fresh_name : t -> string -> string

val fresh_label : t -> string -> string

(** Map from SSA name to its defining instruction. *)
val def_map : t -> (string, Ins.ins) Hashtbl.t

(** Use counts of SSA names within the function. *)
val use_counts : t -> (string, int) Hashtbl.t
