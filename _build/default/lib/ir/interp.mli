(** Reference interpreter for IR modules — the semantic oracle the test
    suite compares compiled machine code against. Not used for
    measurements (that is the cycle-accounting VM). *)

exception Trap of string

type state = {
  modul : Modul.t;
  mem : Bytes.t;
  sym_addr : (string, int64) Hashtbl.t;
  fn_addr : (int64, string) Hashtbl.t;
  host : (string, state -> int64 list -> int64) Hashtbl.t;
  mutable stack_top : int;
  mutable steps : int;
  max_steps : int;
}

(** Lay out globals and build an execution state. *)
val create : ?max_steps:int -> Modul.t -> state

(** Host functions receive the evaluated call arguments. *)
val register_host : state -> string -> (state -> int64 list -> int64) -> unit

val addr_of : state -> string -> int64

(** Typed little-endian memory access. @raise Trap out of bounds. *)
val load : state -> Types.ty -> int64 -> int64

val store : state -> Types.ty -> int64 -> int64 -> unit

(** Run a function with integer arguments. @raise Trap on faults. *)
val run : state -> string -> int64 list -> int64

(** Copy an input buffer into fresh memory; returns its address. *)
val alloc_input : state -> string -> int64
