(** Reference interpreter for IR modules.

    This is *not* the execution engine the experiments run on (that is the
    machine-code VM in [lib/vm], whose cycle accounting produces the
    figures); it is the semantic oracle: the test suite executes programs
    both here and on compiled machine code and demands identical results. *)

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type state = {
  modul : Modul.t;
  mem : Bytes.t;
  sym_addr : (string, int64) Hashtbl.t;
  fn_addr : (int64, string) Hashtbl.t;  (** code addresses back to functions *)
  host : (string, state -> int64 list -> int64) Hashtbl.t;
  mutable stack_top : int;  (** bump allocator for allocas *)
  mutable steps : int;
  max_steps : int;
}

let mem_size = 1 lsl 22 (* 4 MiB *)
let code_base = 0x10000L (* fake addresses for functions *)
let data_base = 0x100000

let register_host state name fn = Hashtbl.replace state.host name fn

let addr_of state name =
  match Hashtbl.find_opt state.sym_addr name with
  | Some a -> a
  | None -> trap "unknown symbol @%s" name

(* ------------------------------------------------------------------ *)
(* Memory access (little-endian)                                       *)
(* ------------------------------------------------------------------ *)

let check_addr state addr width =
  let a = Int64.to_int addr in
  if a < 0 || a + width > Bytes.length state.mem then
    trap "memory access out of bounds: 0x%Lx (+%d)" addr width;
  a

let load state ty addr =
  let width = Types.size_of ty in
  let a = check_addr state addr width in
  let raw =
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get state.mem a))
    | 2 -> Int64.of_int (Bytes.get_uint16_le state.mem a)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le state.mem a)
    | 8 -> Bytes.get_int64_le state.mem a
    | _ -> trap "load of width %d" width
  in
  (* loads sign-extend to the value's type width, then normalize *)
  Types.normalize ty raw

let store state ty addr v =
  let width = Types.size_of ty in
  let a = check_addr state addr width in
  match width with
  | 1 -> Bytes.set state.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le state.mem a (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le state.mem a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le state.mem a v
  | _ -> trap "store of width %d" width

(* ------------------------------------------------------------------ *)
(* State construction: lay out globals                                 *)
(* ------------------------------------------------------------------ *)

let create ?(max_steps = 50_000_000) modul =
  let state =
    {
      modul;
      mem = Bytes.make mem_size '\x00';
      sym_addr = Hashtbl.create 64;
      fn_addr = Hashtbl.create 64;
      host = Hashtbl.create 8;
      stack_top = mem_size - 8;
      steps = 0;
      max_steps;
    }
  in
  (* functions get fake, unique code addresses *)
  let next_code = ref code_base in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace state.sym_addr f.Func.name !next_code;
      Hashtbl.replace state.fn_addr !next_code f.Func.name;
      next_code := Int64.add !next_code 16L)
    (Modul.functions modul);
  (* data: sequential layout *)
  let cursor = ref data_base in
  let align n = cursor := (!cursor + (n - 1)) / n * n in
  List.iter
    (fun (v : Modul.gvar) ->
      align 8;
      Hashtbl.replace state.sym_addr v.Modul.gname (Int64.of_int !cursor);
      cursor := !cursor + max 1 (Modul.init_size v.Modul.ginit))
    (Modul.vars modul);
  (* initialize data now that all symbols have addresses *)
  List.iter
    (fun (v : Modul.gvar) ->
      let base = Int64.to_int (Hashtbl.find state.sym_addr v.Modul.gname) in
      match v.Modul.ginit with
      | Modul.Bytes s -> Bytes.blit_string s 0 state.mem base (String.length s)
      | Modul.Words (ty, ws) ->
        let w = Types.size_of ty in
        List.iteri
          (fun i value -> store state ty (Int64.of_int (base + (i * w))) value)
          ws
      | Modul.Symbols ss ->
        List.iteri
          (fun i s ->
            let a =
              match Hashtbl.find_opt state.sym_addr s with
              | Some a -> a
              | None -> trap "initializer references unknown @%s" s
            in
            store state Types.I64 (Int64.of_int (base + (i * 8))) a)
          ss
      | Modul.Zero _ | Modul.Extern -> ())
    (Modul.vars modul);
  (* aliases share their target's address *)
  List.iter
    (fun (a : Modul.alias) ->
      let target = Modul.resolve_alias modul a.Modul.aname in
      match Hashtbl.find_opt state.sym_addr target with
      | Some addr -> Hashtbl.replace state.sym_addr a.Modul.aname addr
      | None -> ())
    (Modul.aliases modul);
  state

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

module SMap = Map.Make (String)

let rec eval_value state env = function
  | Ins.Const (ty, v) -> Types.normalize ty v
  | Ins.Reg (_, n) -> (
    match SMap.find_opt n env with
    | Some v -> v
    | None -> trap "read of unset register %%%s" n)
  | Ins.Global g -> addr_of state g
  | Ins.Blockaddr (f, l) ->
    (* encode as function address + hash of label; only used as an opaque
       token for indirect branches, which we do not support in IR (the
       C frontend never emits them) *)
    Int64.add (addr_of state f) (Int64.of_int (Hashtbl.hash l mod 15))
  | Ins.Undef _ -> 0L

and call_function state fname args =
  match Modul.find_func state.modul fname with
  | Some f when not (Func.is_declaration f) -> run_function state f args
  | _ -> (
    match Hashtbl.find_opt state.host fname with
    | Some h -> h state args
    | None -> trap "call to undefined function @%s" fname)

and run_function state (f : Func.t) args =
  if List.length args <> List.length f.Func.params then
    trap "arity mismatch calling @%s" f.Func.name;
  let env0 =
    List.fold_left2
      (fun env (ty, p) v -> SMap.add p (Types.normalize ty v) env)
      SMap.empty f.Func.params args
  in
  let saved_stack = state.stack_top in
  let block_index = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace block_index b.Func.label b) f.Func.blocks;
  let entry = Func.entry f in
  let rec exec_block (b : Func.block) prev_label env =
    state.steps <- state.steps + 1;
    if state.steps > state.max_steps then trap "step budget exhausted";
    (* phis evaluate in parallel against the incoming environment *)
    let phi_values =
      List.filter_map
        (fun (i : Ins.ins) ->
          match i.Ins.kind with
          | Ins.Phi incoming -> (
            match prev_label with
            | None -> trap "phi in entry block"
            | Some prev -> (
              match List.assoc_opt prev incoming with
              | Some v -> Some (i.Ins.id, Types.normalize i.Ins.ty (eval_value state env v))
              | None -> trap "phi %%%s has no arm for %%%s" i.Ins.id prev))
          | _ -> None)
        b.Func.insns
    in
    let env = List.fold_left (fun e (n, v) -> SMap.add n v e) env phi_values in
    let env = ref env in
    List.iter
      (fun (i : Ins.ins) ->
        state.steps <- state.steps + 1;
        if state.steps > state.max_steps then trap "step budget exhausted";
        let set v = if i.Ins.id <> "" then env := SMap.add i.Ins.id (Types.normalize i.Ins.ty v) !env in
        match i.Ins.kind with
        | Ins.Phi _ -> ()
        | Ins.Binop (op, a, bv) -> (
          let va = eval_value state !env a and vb = eval_value state !env bv in
          match Eval.binop i.Ins.ty op va vb with
          | Some r -> set r
          | None -> trap "division by zero in @%s" f.Func.name)
        | Ins.Icmp (p, a, bv) ->
          let ta = Ins.value_ty a in
          set (Eval.icmp ta p (eval_value state !env a) (eval_value state !env bv))
        | Ins.Select (c, a, bv) ->
          set
            (if eval_value state !env c <> 0L then eval_value state !env a
             else eval_value state !env bv)
        | Ins.Cast (c, a) ->
          set (Eval.cast c ~from:(Ins.value_ty a) ~into:i.Ins.ty (eval_value state !env a))
        | Ins.Load p -> set (load state i.Ins.ty (eval_value state !env p))
        | Ins.Store (v, p) ->
          store state (Ins.value_ty v) (eval_value state !env p) (eval_value state !env v)
        | Ins.Gep (base, idx, sz) ->
          let b64 = eval_value state !env base in
          let i64 = eval_value state !env idx in
          set (Int64.add b64 (Int64.mul i64 (Int64.of_int sz)))
        | Ins.Call (callee, cargs) ->
          let vals = List.map (eval_value state !env) cargs in
          let result =
            match callee with
            | Ins.Direct name -> call_function state name vals
            | Ins.Indirect fv -> (
              let addr = eval_value state !env fv in
              match Hashtbl.find_opt state.fn_addr addr with
              | Some name -> call_function state name vals
              | None -> trap "indirect call to non-function address 0x%Lx" addr)
          in
          set result
        | Ins.Alloca (ty, count) ->
          let size = max 8 (Types.size_of ty * count) in
          state.stack_top <- state.stack_top - ((size + 7) / 8 * 8);
          if state.stack_top < mem_size / 2 then trap "interpreter stack overflow";
          set (Int64.of_int state.stack_top))
      b.Func.insns;
    match b.Func.term with
    | Ins.Ret v ->
      let result = match v with None -> 0L | Some v -> eval_value state !env v in
      state.stack_top <- saved_stack;
      result
    | Ins.Br l -> goto l b.Func.label !env
    | Ins.Cbr (c, t, fl) ->
      goto (if eval_value state !env c <> 0L then t else fl) b.Func.label !env
    | Ins.Switch (v, d, cases) ->
      let key = eval_value state !env v in
      let target =
        match List.find_opt (fun (k, _) -> Int64.equal k key) cases with
        | Some (_, l) -> l
        | None -> d
      in
      goto target b.Func.label !env
    | Ins.Unreachable -> trap "reached unreachable in @%s" f.Func.name
  and goto label prev env =
    match Hashtbl.find_opt block_index label with
    | Some b -> exec_block b (Some prev) env
    | None -> trap "branch to unknown label %%%s" label
  in
  exec_block entry None env0

(** Run [fname] with integer arguments. *)
let run state fname args = call_function state fname args

(** Copy [bytes] into the interpreter's memory at a fresh region and
    return its address (for passing buffers to the program under test). *)
let alloc_input state bytes =
  let size = max 1 (String.length bytes) in
  state.stack_top <- state.stack_top - ((size + 15) / 8 * 8);
  Bytes.blit_string bytes 0 state.mem state.stack_top (String.length bytes);
  Int64.of_int state.stack_top
