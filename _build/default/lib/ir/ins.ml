(** Instructions, operands and terminators.

    Representation notes:
    - SSA values are referenced by name ([Reg (ty, name)]); a function's
      instruction results and parameters define names. This keeps passes
      simple (no intrusive use-lists) at the cost of name-keyed lookups,
      which is fine at the program sizes we compile.
    - Globals are referenced by symbol name; their type is always [Ptr].
    - [Blockaddr] exists to model the GNU labels-as-values extension, one of
      the paper's "innate partition constraints" (Section 2.3). *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type cast = Zext | Sext | Trunc | Bitcast | Ptrtoint | Inttoptr

type value =
  | Const of Types.ty * int64
  | Reg of Types.ty * string
  | Global of string  (** address of a global symbol; type Ptr *)
  | Blockaddr of string * string  (** function, label; type Ptr *)
  | Undef of Types.ty

type callee = Direct of string | Indirect of value

type kind =
  | Binop of binop * value * value
  | Icmp of icmp * value * value
  | Select of value * value * value
  | Cast of cast * value
  | Load of value  (** pointer; loaded type is [ins.ty] *)
  | Store of value * value  (** stored value, pointer *)
  | Gep of value * value * int  (** base ptr, index, element size in bytes *)
  | Call of callee * value list
  | Phi of (string * value) list  (** (incoming block label, value) *)
  | Alloca of Types.ty * int  (** element type, element count *)

type ins = {
  mutable id : string;  (** SSA result name; "" when the result is void *)
  mutable ty : Types.ty;  (** result type; Void when no result *)
  mutable kind : kind;
  mutable volatile : bool;
      (** set on instrumentation probes so optimization passes must not
          remove or reorder them across each other (paper Section 3.1:
          instrumenting first must not let the optimizer delete probes) *)
}

type term =
  | Ret of value option
  | Br of string
  | Cbr of value * string * string  (** cond, if-true, if-false *)
  | Switch of value * string * (int64 * string) list  (** scrutinee, default, cases *)
  | Unreachable

let value_ty = function
  | Const (ty, _) -> ty
  | Reg (ty, _) -> ty
  | Global _ -> Types.Ptr
  | Blockaddr _ -> Types.Ptr
  | Undef ty -> ty

let mk ?(volatile = false) ~id ~ty kind = { id; ty; kind; volatile }

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let binop_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv
  | "udiv" -> Some Udiv
  | "srem" -> Some Srem
  | "urem" -> Some Urem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "lshr" -> Some Lshr
  | "ashr" -> Some Ashr
  | _ -> None

let icmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let icmp_of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | "ult" -> Some Ult
  | "ule" -> Some Ule
  | "ugt" -> Some Ugt
  | "uge" -> Some Uge
  | _ -> None

let cast_to_string = function
  | Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | Bitcast -> "bitcast"
  | Ptrtoint -> "ptrtoint"
  | Inttoptr -> "inttoptr"

let cast_of_string = function
  | "zext" -> Some Zext
  | "sext" -> Some Sext
  | "trunc" -> Some Trunc
  | "bitcast" -> Some Bitcast
  | "ptrtoint" -> Some Ptrtoint
  | "inttoptr" -> Some Inttoptr
  | _ -> None

(** Does evaluating this instruction have an observable effect besides its
    result? Stores, calls and volatile-marked probes do. *)
let has_side_effect ins =
  ins.volatile
  ||
  match ins.kind with
  | Store _ | Call _ -> true
  | Alloca _ -> true (* keep allocas; mem2reg removes them explicitly *)
  | Binop _ | Icmp _ | Select _ | Cast _ | Load _ | Gep _ | Phi _ -> false

(** All value operands of an instruction, in evaluation order. *)
let operands ins =
  match ins.kind with
  | Binop (_, a, b) | Icmp (_, a, b) | Store (a, b) -> [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Cast (_, a) | Load a -> [ a ]
  | Gep (a, b, _) -> [ a; b ]
  | Call (Direct _, args) -> args
  | Call (Indirect f, args) -> f :: args
  | Phi incoming -> List.map snd incoming
  | Alloca _ -> []

(** Rebuild the instruction kind with operands mapped through [f]. *)
let map_operands f ins =
  let kind =
    match ins.kind with
    | Binop (op, a, b) -> Binop (op, f a, f b)
    | Icmp (p, a, b) -> Icmp (p, f a, f b)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Cast (c, a) -> Cast (c, f a)
    | Load a -> Load (f a)
    | Store (a, b) -> Store (f a, f b)
    | Gep (a, b, sz) -> Gep (f a, f b, sz)
    | Call (Direct name, args) -> Call (Direct name, List.map f args)
    | Call (Indirect fn, args) -> Call (Indirect (f fn), List.map f args)
    | Phi incoming -> Phi (List.map (fun (l, v) -> (l, f v)) incoming)
    | Alloca _ as k -> k
  in
  ins.kind <- kind

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Unreachable | Br _ -> []
  | Cbr (c, _, _) -> [ c ]
  | Switch (v, _, _) -> [ v ]

let map_term_operands f = function
  | Ret (Some v) -> Ret (Some (f v))
  | (Ret None | Unreachable | Br _) as t -> t
  | Cbr (c, a, b) -> Cbr (f c, a, b)
  | Switch (v, d, cases) -> Switch (f v, d, cases)

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cbr (_, a, b) -> if String.equal a b then [ a ] else [ a; b ]
  | Switch (_, d, cases) ->
    let targets = d :: List.map snd cases in
    List.sort_uniq String.compare targets
