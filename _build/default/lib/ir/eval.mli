(** Constant evaluation of IR operations, shared by the folding passes,
    the reference interpreter and the VM — one semantics, three users. *)

val bool_to_i1 : bool -> int64

(** Wrapping arithmetic at the type's width; [None] on division by zero. *)
val binop : Types.ty -> Ins.binop -> int64 -> int64 -> int64 option

(** Comparison at the operand type's width; returns 0 or 1. *)
val icmp : Types.ty -> Ins.icmp -> int64 -> int64 -> int64

val cast : Ins.cast -> from:Types.ty -> into:Types.ty -> int64 -> int64
