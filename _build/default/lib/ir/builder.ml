(** Convenience API for constructing functions instruction by instruction,
    in the style of LLVM's [IRBuilder]. Used by the frontend lowering, by
    instrumentation patch logic (paper Section 4) and by tests. *)

type t = {
  fn : Func.t;
  mutable cur : Func.block option;
  mutable counter : int;
  names : (string, unit) Hashtbl.t;
}

let create fn =
  let b = { fn; cur = None; counter = 0; names = Hashtbl.create 64 } in
  List.iter (fun (_, p) -> Hashtbl.replace b.names p ()) fn.Func.params;
  Func.iter_insns
    (fun i -> if i.Ins.id <> "" then Hashtbl.replace b.names i.Ins.id ())
    fn;
  b

let fresh b hint =
  let rec pick () =
    b.counter <- b.counter + 1;
    let candidate = Printf.sprintf "%s%d" hint b.counter in
    if Hashtbl.mem b.names candidate then pick () else candidate
  in
  let name = if hint = "" then pick () else if Hashtbl.mem b.names hint then pick () else hint in
  Hashtbl.replace b.names name ();
  name

(** Create (and position at) a new block with a unique label based on [hint]. *)
let new_block b hint =
  let label = Func.fresh_label b.fn hint in
  let blk = { Func.label; insns = []; term = Ins.Unreachable } in
  b.fn.Func.blocks <- b.fn.Func.blocks @ [ blk ];
  b.cur <- Some blk;
  blk

let position b blk = b.cur <- Some blk

(** Reserve a block now (so its label is taken) without moving the
    insertion point; fill it later with {!enter}. *)
let declare_block b hint =
  let label = Func.fresh_label b.fn hint in
  let blk = { Func.label; insns = []; term = Ins.Unreachable } in
  b.fn.Func.blocks <- b.fn.Func.blocks @ [ blk ];
  label

(** Move the insertion point to a previously declared block. *)
let enter b label = b.cur <- Some (Func.find_block_exn b.fn label)

let current b =
  match b.cur with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no current block"

let insert b ins =
  let blk = current b in
  blk.Func.insns <- blk.Func.insns @ [ ins ]

let emit ?(volatile = false) ?(hint = "t") b ty kind =
  let id = if ty = Types.Void then "" else fresh b hint in
  let ins = Ins.mk ~volatile ~id ~ty kind in
  insert b ins;
  if ty = Types.Void then Ins.Undef Types.Void else Ins.Reg (ty, id)

let binop b op ty x y = emit b ty (Ins.Binop (op, x, y))
let icmp b pred x y = emit b Types.I1 (Ins.Icmp (pred, x, y))
let select b ty c x y = emit b ty (Ins.Select (c, x, y))
let cast b c ty v = emit b ty (Ins.Cast (c, v))
let load b ty ptr = emit b ty (Ins.Load ptr)

let store ?(volatile = false) b v ptr =
  ignore (emit ~volatile b Types.Void (Ins.Store (v, ptr)))

let gep b base index elem_size = emit b Types.Ptr (Ins.Gep (base, index, elem_size))

let call ?(volatile = false) b ty callee args =
  emit ~volatile b ty (Ins.Call (callee, args))

let phi b ty incoming = emit ~hint:"phi" b ty (Ins.Phi incoming)
let alloca b ty count = emit ~hint:"a" b Types.Ptr (Ins.Alloca (ty, count))

let set_term b term = (current b).Func.term <- term
let ret b v = set_term b (Ins.Ret v)
let br b label = set_term b (Ins.Br label)
let cbr b cond iftrue iffalse = set_term b (Ins.Cbr (cond, iftrue, iffalse))
let switch b v default cases = set_term b (Ins.Switch (v, default, cases))

let const ty v = Ins.Const (ty, Types.normalize ty v)
let i32 v = const Types.I32 (Int64.of_int v)
let i64 v = const Types.I64 (Int64.of_int v)
let i8 v = const Types.I8 (Int64.of_int v)
let i1 v = const Types.I1 (if v then 1L else 0L)
let glob name = Ins.Global name
