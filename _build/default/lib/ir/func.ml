(** Basic blocks and functions. *)

type block = {
  mutable label : string;
  mutable insns : Ins.ins list;
  mutable term : Ins.term;
}

type linkage =
  | External  (** exported; visible to other fragments/objects *)
  | Internal  (** local to its module/fragment *)

type t = {
  name : string;
  mutable linkage : linkage;
  mutable params : (Types.ty * string) list;
  mutable ret : Types.ty;
  mutable blocks : block list;  (** empty means declaration *)
  mutable comdat : string option;
      (** COMDAT group key; symbols of a group must be emitted together
          (innate partition constraint, paper Section 2.3) *)
  mutable attrs : string list;
}

let mk ?(linkage = External) ?comdat ?(attrs = []) ~name ~params ~ret blocks =
  { name; linkage; params; ret; blocks; comdat; attrs }

let is_declaration fn = fn.blocks = []

let entry fn =
  match fn.blocks with
  | [] -> invalid_arg ("Func.entry: declaration " ^ fn.name)
  | b :: _ -> b

let find_block fn label =
  List.find_opt (fun b -> String.equal b.label label) fn.blocks

let find_block_exn fn label =
  match find_block fn label with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Func.find_block: %s has no %%%s" fn.name label)

let iter_blocks f fn = List.iter f fn.blocks

let iter_insns f fn =
  List.iter (fun b -> List.iter f b.insns) fn.blocks

(** Fold over all instructions, block order then instruction order. *)
let fold_insns f acc fn =
  List.fold_left (fun acc b -> List.fold_left f acc b.insns) acc fn.blocks

let block_count fn = List.length fn.blocks

let insn_count fn =
  List.fold_left (fun n b -> n + List.length b.insns) 0 fn.blocks

(** Apply [f] to every operand of every instruction and terminator. *)
let map_values f fn =
  let map_block b =
    List.iter (Ins.map_operands f) b.insns;
    b.term <- Ins.map_term_operands f b.term
  in
  List.iter map_block fn.blocks

(** Replace all uses of SSA register [name] with [v]. *)
let replace_uses fn name v =
  let subst value =
    match value with
    | Ins.Reg (_, n) when String.equal n name -> v
    | other -> other
  in
  map_values subst fn

(** Fresh SSA name unique within this function, based on [hint]. *)
let fresh_name fn hint =
  let used = Hashtbl.create 64 in
  List.iter (fun (_, p) -> Hashtbl.replace used p ()) fn.params;
  iter_insns (fun i -> if i.Ins.id <> "" then Hashtbl.replace used i.Ins.id ()) fn;
  if not (Hashtbl.mem used hint) then hint
  else begin
    let rec try_n n =
      let candidate = Printf.sprintf "%s.%d" hint n in
      if Hashtbl.mem used candidate then try_n (n + 1) else candidate
    in
    try_n 1
  end

let fresh_label fn hint =
  let used = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace used b.label ()) fn.blocks;
  if not (Hashtbl.mem used hint) then hint
  else begin
    let rec try_n n =
      let candidate = Printf.sprintf "%s.%d" hint n in
      if Hashtbl.mem used candidate then try_n (n + 1) else candidate
    in
    try_n 1
  end

(** Map from SSA name to its defining instruction. *)
let def_map fn =
  let defs = Hashtbl.create 64 in
  iter_insns
    (fun i -> if i.Ins.id <> "" then Hashtbl.replace defs i.Ins.id i)
    fn;
  defs

(** Number of uses of each SSA name within [fn]. *)
let use_counts fn =
  let counts = Hashtbl.create 64 in
  let bump = function
    | Ins.Reg (_, n) ->
      Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
    | _ -> ()
  in
  iter_blocks
    (fun b ->
      List.iter (fun i -> List.iter bump (Ins.operands i)) b.insns;
      List.iter bump (Ins.term_operands b.term))
    fn;
  counts
