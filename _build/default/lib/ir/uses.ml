(** Symbol reference analysis: which global symbols does a global value
    mention? This drives Odin's partitioning (imports, copy-on-use cloning)
    and the linker's reachability. *)

module SSet = Set.Make (String)

let of_value acc = function
  | Ins.Global g -> SSet.add g acc
  | Ins.Blockaddr (f, _) -> SSet.add f acc
  | Ins.Const _ | Ins.Reg _ | Ins.Undef _ -> acc

let of_ins acc (i : Ins.ins) =
  let acc =
    match i.kind with
    | Ins.Call (Ins.Direct f, _) -> SSet.add f acc
    | _ -> acc
  in
  List.fold_left of_value acc (Ins.operands i)

let of_func (f : Func.t) =
  let acc = ref SSet.empty in
  Func.iter_blocks
    (fun b ->
      List.iter (fun i -> acc := of_ins !acc i) b.Func.insns;
      acc := List.fold_left of_value !acc (Ins.term_operands b.Func.term))
    f;
  !acc

let of_gvar (v : Modul.gvar) =
  match v.Modul.ginit with
  | Modul.Symbols ss -> SSet.of_list ss
  | Modul.Bytes _ | Modul.Words _ | Modul.Zero _ | Modul.Extern -> SSet.empty

let of_gvalue = function
  | Modul.Fun f -> of_func f
  | Modul.Var v -> of_gvar v
  | Modul.Alias a -> SSet.singleton a.Modul.atarget

(** Map symbol -> set of symbols that reference it (reverse references). *)
let referencers (m : Modul.t) =
  let table = Hashtbl.create 64 in
  let record user target =
    let old = Option.value ~default:SSet.empty (Hashtbl.find_opt table target) in
    Hashtbl.replace table target (SSet.add user old)
  in
  List.iter
    (fun gv ->
      let user = Modul.gvalue_name gv in
      SSet.iter (record user) (of_gvalue gv))
    (Modul.globals m);
  table

let referencers_of table name =
  Option.value ~default:SSet.empty (Hashtbl.find_opt table name)

(** Call sites of function [callee] across the module: (caller, ins) list. *)
let call_sites (m : Modul.t) callee =
  let sites = ref [] in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_insns
        (fun i ->
          match i.Ins.kind with
          | Ins.Call (Ins.Direct name, _) when String.equal name callee ->
            sites := (f, i) :: !sites
          | _ -> ())
        f)
    (Modul.defined_functions m);
  List.rev !sites

(** Is the symbol's address taken other than via direct calls? Functions
    whose address escapes cannot have their signature rewritten by
    dead-argument elimination. *)
let address_taken (m : Modul.t) name =
  let taken = ref false in
  let check_value = function
    | Ins.Global g when String.equal g name -> taken := true
    | _ -> ()
  in
  List.iter
    (fun gv ->
      match gv with
      | Modul.Fun f ->
        Func.iter_blocks
          (fun b ->
            List.iter
              (fun (i : Ins.ins) ->
                match i.kind with
                | Ins.Call (Ins.Direct _, args) -> List.iter check_value args
                | _ -> List.iter check_value (Ins.operands i))
              b.Func.insns;
            List.iter check_value (Ins.term_operands b.Func.term))
          f
      | Modul.Var v ->
        (match v.Modul.ginit with
        | Modul.Symbols ss -> if List.mem name ss then taken := true
        | _ -> ())
      | Modul.Alias a -> if String.equal a.Modul.atarget name then taken := true)
    (Modul.globals m);
  !taken
