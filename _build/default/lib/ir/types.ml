(** First-class types of the IR. Mirrors the LLVM scalar/pointer subset the
    paper's mechanisms need; vectors are deliberately out of scope (no
    vectorizer in our pipeline, see DESIGN.md). *)

type ty =
  | I1
  | I8
  | I16
  | I32
  | I64
  | Ptr  (** opaque pointer, 64-bit *)
  | Void

let equal (a : ty) (b : ty) = a = b

(** Size of a value of this type in bytes, as laid out in memory. *)
let size_of = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | Ptr -> 8
  | Void -> 0

(** Width in bits for arithmetic wrapping/sign purposes. *)
let bits = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | Ptr -> 64
  | Void -> 0

let to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Ptr -> "ptr"
  | Void -> "void"

let of_string = function
  | "i1" -> Some I1
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "ptr" -> Some Ptr
  | "void" -> Some Void
  | _ -> None

let is_integer = function I1 | I8 | I16 | I32 | I64 -> true | Ptr | Void -> false

(** Truncate [v] to the bit width of [ty], interpreting the result as a
    signed two's-complement number of that width (the canonical form in
    which all constant folding operates). *)
let normalize ty v =
  match ty with
  | I64 | Ptr -> v
  | Void -> 0L
  | I1 -> if Int64.logand v 1L = 1L then 1L else 0L
  | _ ->
    let b = bits ty in
    let shift = 64 - b in
    Int64.shift_right (Int64.shift_left v shift) shift

(** Zero-extend interpretation of [v] at width [ty]. *)
let zext_value ty v =
  match ty with
  | I64 | Ptr -> v
  | Void -> 0L
  | _ ->
    let b = bits ty in
    Int64.logand v (Int64.sub (Int64.shift_left 1L b) 1L)
