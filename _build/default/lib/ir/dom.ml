(** Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy), used by
    mem2reg for phi placement. Operates on the reachable subgraph. *)

module SMap = Map.Make (String)

type t = {
  order : Func.block array;  (** reverse post-order *)
  index : int SMap.t;  (** label -> position in [order] *)
  idom : int array;  (** immediate dominator by position; entry points at itself *)
}

let compute (fn : Func.t) =
  let order = Array.of_list (List.filter (fun b ->
      Cfg.SSet.mem b.Func.label (Cfg.reachable fn)) (Cfg.rpo fn))
  in
  let n = Array.length order in
  let index =
    Array.to_list order
    |> List.mapi (fun i b -> (b.Func.label, i))
    |> List.fold_left (fun m (l, i) -> SMap.add l i m) SMap.empty
  in
  let preds = Cfg.predecessors fn in
  let preds_of i =
    let label = order.(i).Func.label in
    Option.value ~default:[] (SMap.find_opt label preds)
    |> List.filter_map (fun l -> SMap.find_opt l index)
  in
  let idom = Array.make (max n 1) (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let rec intersect a b =
      if a = b then a
      else if a > b then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        let ps = List.filter (fun p -> idom.(p) >= 0) (preds_of i) in
        match ps with
        | [] -> ()
        | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idom.(i) <> new_idom then begin
            idom.(i) <- new_idom;
            changed := true
          end
      done
    done
  end;
  { order; index; idom }

let dominates t ~by ~target =
  match (SMap.find_opt by t.index, SMap.find_opt target t.index) with
  | Some bi, Some ti ->
    let rec climb i = if i = bi then true else if i = 0 then bi = 0 else climb t.idom.(i) in
    climb ti
  | _ -> false

(** Dominance frontier: label -> list of frontier labels. *)
let frontiers (fn : Func.t) t =
  let n = Array.length t.order in
  let df = Array.make (max n 1) [] in
  let preds = Cfg.predecessors fn in
  for i = 0 to n - 1 do
    let label = t.order.(i).Func.label in
    let ps =
      Option.value ~default:[] (SMap.find_opt label preds)
      |> List.filter_map (fun l -> SMap.find_opt l t.index)
    in
    if List.length ps >= 2 then
      List.iter
        (fun p ->
          let runner = ref p in
          while !runner <> t.idom.(i) do
            if not (List.mem i df.(!runner)) then df.(!runner) <- i :: df.(!runner);
            runner := t.idom.(!runner)
          done)
        ps
  done;
  let map = ref SMap.empty in
  for i = 0 to n - 1 do
    let frontier = List.map (fun j -> t.order.(j).Func.label) df.(i) in
    map := SMap.add t.order.(i).Func.label frontier !map
  done;
  !map
