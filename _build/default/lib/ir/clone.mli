(** Deep cloning of functions and modules, with instruction maps.

    Odin's scheduler builds its *temporary IR* by cloning the changed
    symbols out of the pristine program (paper Section 3.3/4); the
    returned {!map} lets patch logic translate pristine instructions to
    their clones (the paper's [Sched.map]). *)

type map = {
  ins_map : (Ins.ins, Ins.ins) Hashtbl.t;
  funcs : (string, Func.t) Hashtbl.t;
}

val empty_map : unit -> map

(** Clone of a pristine instruction (physical identity lookup). *)
val map_ins : map -> Ins.ins -> Ins.ins option

val clone_func : ?map:map -> Func.t -> Func.t
val clone_gvar : Modul.gvar -> Modul.gvar
val clone_alias : Modul.alias -> Modul.alias
val clone_gvalue : ?map:map -> Modul.gvalue -> Modul.gvalue
val clone_module : ?map:map -> Modul.t -> Modul.t

(** Clone the named symbols into a fresh, well-formed module (referenced
    absentees become declarations); returns the module and the map. *)
val extract : Modul.t -> string list -> Modul.t * map
