(** Constant evaluation of IR operations, shared by the constant-folding
    passes and (for cross-checking) the interpreter tests. All arithmetic
    wraps at the type's bit width; division by zero yields [None]. *)

let bool_to_i1 b = if b then 1L else 0L

let binop ty (op : Ins.binop) a b =
  let open Int64 in
  let norm v = Types.normalize ty v in
  let za = Types.zext_value ty a and zb = Types.zext_value ty b in
  let sa = norm a and sb = norm b in
  let result =
    match op with
    | Ins.Add -> Some (add sa sb)
    | Ins.Sub -> Some (sub sa sb)
    | Ins.Mul -> Some (mul sa sb)
    | Ins.Sdiv -> if sb = 0L then None else Some (div sa sb)
    | Ins.Udiv -> if zb = 0L then None else Some (unsigned_div za zb)
    | Ins.Srem -> if sb = 0L then None else Some (rem sa sb)
    | Ins.Urem -> if zb = 0L then None else Some (unsigned_rem za zb)
    | Ins.And -> Some (logand sa sb)
    | Ins.Or -> Some (logor sa sb)
    | Ins.Xor -> Some (logxor sa sb)
    | Ins.Shl ->
      let sh = to_int (logand zb 63L) in
      Some (shift_left sa sh)
    | Ins.Lshr ->
      let sh = to_int (logand zb 63L) in
      Some (shift_right_logical za sh)
    | Ins.Ashr ->
      let sh = to_int (logand zb 63L) in
      Some (shift_right sa sh)
  in
  Option.map norm result

let icmp ty (pred : Ins.icmp) a b =
  let sa = Types.normalize ty a and sb = Types.normalize ty b in
  let za = Types.zext_value ty a and zb = Types.zext_value ty b in
  let r =
    match pred with
    | Ins.Eq -> sa = sb
    | Ins.Ne -> sa <> sb
    | Ins.Slt -> sa < sb
    | Ins.Sle -> sa <= sb
    | Ins.Sgt -> sa > sb
    | Ins.Sge -> sa >= sb
    | Ins.Ult -> Int64.unsigned_compare za zb < 0
    | Ins.Ule -> Int64.unsigned_compare za zb <= 0
    | Ins.Ugt -> Int64.unsigned_compare za zb > 0
    | Ins.Uge -> Int64.unsigned_compare za zb >= 0
  in
  bool_to_i1 r

let cast (c : Ins.cast) ~from ~into v =
  match c with
  | Ins.Zext -> Types.normalize into (Types.zext_value from v)
  | Ins.Sext -> Types.normalize into (Types.normalize from v)
  | Ins.Trunc -> Types.normalize into v
  | Ins.Bitcast | Ins.Ptrtoint | Ins.Inttoptr -> Types.normalize into v
