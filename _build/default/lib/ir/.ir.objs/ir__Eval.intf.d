lib/ir/eval.mli: Ins Types
