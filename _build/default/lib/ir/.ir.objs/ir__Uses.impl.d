lib/ir/uses.ml: Func Hashtbl Ins List Modul Option Set String
