lib/ir/ins.ml: List String Types
