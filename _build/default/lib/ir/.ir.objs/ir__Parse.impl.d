lib/ir/parse.ml: Buffer Char Func Ins Int64 List Modul Option Printf String Types
