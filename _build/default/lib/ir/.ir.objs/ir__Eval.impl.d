lib/ir/eval.ml: Ins Int64 Option Types
