lib/ir/clone.ml: Func Hashtbl Ins List Modul Uses
