lib/ir/verify.ml: Func Hashtbl Ins List Modul Printf String Types
