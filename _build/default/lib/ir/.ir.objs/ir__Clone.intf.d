lib/ir/clone.mli: Func Hashtbl Ins Modul
