lib/ir/print.ml: Buffer Char Func Ins Int64 List Modul Printf String Types
