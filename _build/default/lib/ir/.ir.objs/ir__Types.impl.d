lib/ir/types.ml: Int64
