lib/ir/verify.mli: Func Modul
