lib/ir/dom.ml: Array Cfg Func List Map Option String
