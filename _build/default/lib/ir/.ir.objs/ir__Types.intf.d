lib/ir/types.mli:
