lib/ir/modul.ml: Func Hashtbl List String Types
