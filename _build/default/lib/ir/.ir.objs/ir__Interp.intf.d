lib/ir/interp.mli: Bytes Hashtbl Modul Types
