lib/ir/func.mli: Hashtbl Ins Types
