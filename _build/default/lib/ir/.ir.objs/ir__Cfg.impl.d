lib/ir/cfg.ml: Func Hashtbl Ins List Map Modul Option Set String
