lib/ir/func.ml: Hashtbl Ins List Option Printf String Types
