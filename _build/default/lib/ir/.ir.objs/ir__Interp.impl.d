lib/ir/interp.ml: Bytes Char Eval Func Hashtbl Ins Int64 List Map Modul Printf String Types
