lib/ir/modul.mli: Func Hashtbl Types
