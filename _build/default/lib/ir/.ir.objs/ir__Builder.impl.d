lib/ir/builder.ml: Func Hashtbl Ins Int64 List Printf Types
