(** IR well-formedness verifier. Run after the frontend, after every pass in
    paranoid test builds, and on every fragment before code generation —
    a malformed fragment (e.g. a reference to an undefined symbol after
    partitioning) must be caught before it reaches the backend. *)

type error = { where : string; what : string }

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_func (m : Modul.t) (f : Func.t) =
  let errors = ref [] in
  let report e = errors := e :: !errors in
  let where label = Printf.sprintf "@%s/%%%s" f.Func.name label in
  let labels = Hashtbl.create 32 in
  List.iter
    (fun (b : Func.block) ->
      if Hashtbl.mem labels b.Func.label then
        report (err f.Func.name "duplicate block label %%%s" b.Func.label);
      Hashtbl.replace labels b.Func.label ())
    f.Func.blocks;
  (* SSA names: defined once, by a param or an instruction. *)
  let defs = Hashtbl.create 64 in
  List.iter (fun (ty, p) -> Hashtbl.replace defs p ty) f.Func.params;
  Func.iter_insns
    (fun i ->
      if i.Ins.id <> "" then begin
        if Hashtbl.mem defs i.Ins.id then
          report (err f.Func.name "SSA name %%%s defined twice" i.Ins.id);
        Hashtbl.replace defs i.Ins.id i.Ins.ty
      end)
    f;
  let check_value w = function
    | Ins.Reg (ty, n) -> (
      match Hashtbl.find_opt defs n with
      | None -> report (err w "use of undefined SSA name %%%s" n)
      | Some dty ->
        if not (Types.equal dty ty) then
          report
            (err w "SSA name %%%s used at type %s but defined at %s" n
               (Types.to_string ty) (Types.to_string dty)))
    | Ins.Global g ->
      if not (Modul.mem m g) then report (err w "reference to undefined symbol @%s" g)
    | Ins.Blockaddr (fname, l) -> (
      match Modul.find_func m fname with
      | None -> report (err w "blockaddress of unknown function @%s" fname)
      | Some g ->
        if Func.find_block g l = None && not (Func.is_declaration g) then
          report (err w "blockaddress of unknown label %%%s in @%s" l fname))
    | Ins.Const _ | Ins.Undef _ -> ()
  in
  let check_label w l =
    if not (Hashtbl.mem labels l) then
      report (err w "branch to undefined label %%%s" l)
  in
  List.iter
    (fun (b : Func.block) ->
      let w = where b.Func.label in
      List.iter
        (fun (i : Ins.ins) ->
          List.iter (check_value w) (Ins.operands i);
          match i.Ins.kind with
          | Ins.Phi incoming ->
            List.iter (fun (l, _) -> check_label w l) incoming;
            List.iter
              (fun (_, v) ->
                let vt = Ins.value_ty v in
                if not (Types.equal vt i.Ins.ty) && vt <> Types.Void then
                  report (err w "phi %%%s has arm of type %s, expected %s" i.Ins.id
                            (Types.to_string vt) (Types.to_string i.Ins.ty)))
              incoming
          | Ins.Call (Ins.Direct callee, args) -> (
            match Modul.find_func m callee with
            | Some g when g.Func.params <> [] || args = [] ->
              let np = List.length g.Func.params and na = List.length args in
              if np <> na then
                report (err w "call to @%s with %d args, expected %d" callee na np)
            | Some _ -> ()
            | None ->
              if not (Modul.mem m callee) then
                report (err w "call to undefined symbol @%s" callee))
          | Ins.Store _ ->
            if i.Ins.ty <> Types.Void then
              report (err w "store must have void result")
          | _ -> ())
        b.Func.insns;
      List.iter (check_value w) (Ins.term_operands b.Func.term);
      (match b.Func.term with
      | Ins.Br l -> check_label w l
      | Ins.Cbr (_, a, c) ->
        check_label w a;
        check_label w c
      | Ins.Switch (_, d, cases) ->
        check_label w d;
        List.iter (fun (_, l) -> check_label w l) cases
      | Ins.Ret (Some v) ->
        let vt = Ins.value_ty v in
        if not (Types.equal vt f.Func.ret) then
          report
            (err w "ret of type %s from function returning %s" (Types.to_string vt)
               (Types.to_string f.Func.ret))
      | Ins.Ret None ->
        if f.Func.ret <> Types.Void then
          report (err w "ret void from function returning %s" (Types.to_string f.Func.ret))
      | Ins.Unreachable -> ()))
    f.Func.blocks;
  List.rev !errors

let check_module (m : Modul.t) =
  let errors = ref [] in
  List.iter
    (fun gv ->
      match gv with
      | Modul.Fun f when not (Func.is_declaration f) ->
        errors := !errors @ check_func m f
      | Modul.Fun _ -> ()
      | Modul.Var v -> (
        match v.Modul.ginit with
        | Modul.Symbols ss ->
          List.iter
            (fun s ->
              if not (Modul.mem m s) then
                errors :=
                  !errors @ [ err v.Modul.gname "initializer references undefined @%s" s ])
            ss
        | _ -> ())
      | Modul.Alias a ->
        (match Modul.find m a.Modul.atarget with
        | None ->
          errors := !errors @ [ err a.Modul.aname "alias of undefined @%s" a.Modul.atarget ]
        | Some target ->
          (* Innate constraint: the aliasee must be a definition. *)
          if not (Modul.is_definition target) then
            errors :=
              !errors
              @ [ err a.Modul.aname "alias target @%s is only a declaration" a.Modul.atarget ]))
    (Modul.globals m);
  !errors

let errors_to_string errors =
  String.concat "\n"
    (List.map (fun e -> Printf.sprintf "%s: %s" e.where e.what) errors)

exception Invalid of string

(** Raise {!Invalid} if the module is malformed. *)
let run_exn m =
  match check_module m with
  | [] -> ()
  | errors -> raise (Invalid (errors_to_string errors))
