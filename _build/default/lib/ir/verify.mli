(** IR well-formedness verifier: SSA single definitions, defined operands
    and labels, type-consistent uses, call arity, return types, symbol
    resolution, and the alias-of-declaration innate constraint. Run after
    the frontend and on every fragment before code generation. *)

type error = { where : string; what : string }

val check_func : Modul.t -> Func.t -> error list
val check_module : Modul.t -> error list
val errors_to_string : error list -> string

exception Invalid of string

(** @raise Invalid when the module is malformed. *)
val run_exn : Modul.t -> unit
