(** First-class types of the IR: the LLVM scalar/pointer subset the
    paper's mechanisms need. *)

type ty = I1 | I8 | I16 | I32 | I64 | Ptr | Void

val equal : ty -> ty -> bool

(** Size in bytes as laid out in memory. *)
val size_of : ty -> int

(** Width in bits for arithmetic wrapping/sign purposes. *)
val bits : ty -> int

val to_string : ty -> string
val of_string : string -> ty option
val is_integer : ty -> bool

(** Truncate to the type's width, interpreted as signed two's complement —
    the canonical representation all constant folding operates in. *)
val normalize : ty -> int64 -> int64

(** Zero-extended interpretation at the type's width. *)
val zext_value : ty -> int64 -> int64
