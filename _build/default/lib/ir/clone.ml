(** Deep cloning of functions and modules.

    Odin's scheduler builds a *temporary IR* by duplicating the changed
    symbols out of the pristine whole-program IR (paper Section 3.3 and 4);
    the returned [map] lets patch logic translate pristine instructions to
    their clones ([Sched.map] in the paper's API). *)

type map = {
  ins_map : (Ins.ins, Ins.ins) Hashtbl.t;
      (** pristine instruction -> cloned instruction (physical identity) *)
  funcs : (string, Func.t) Hashtbl.t;  (** function name -> cloned function *)
}

let empty_map () = { ins_map = Hashtbl.create 256; funcs = Hashtbl.create 16 }

(** Find the clone of a pristine instruction. *)
let map_ins map ins = Hashtbl.find_opt map.ins_map ins

let clone_func ?map (f : Func.t) =
  let record_in = map in
  let clone_ins (i : Ins.ins) =
    let copy = { i with Ins.kind = i.Ins.kind } in
    (match record_in with
    | Some m -> Hashtbl.replace m.ins_map i copy
    | None -> ());
    copy
  in
  let clone_block (b : Func.block) =
    {
      Func.label = b.Func.label;
      insns = List.map clone_ins b.Func.insns;
      term = b.Func.term;
    }
  in
  let copy =
    {
      Func.name = f.Func.name;
      linkage = f.Func.linkage;
      params = f.Func.params;
      ret = f.Func.ret;
      blocks = List.map clone_block f.Func.blocks;
      comdat = f.Func.comdat;
      attrs = f.Func.attrs;
    }
  in
  (match record_in with
  | Some m -> Hashtbl.replace m.funcs f.Func.name copy
  | None -> ());
  copy

let clone_gvar (v : Modul.gvar) = { v with Modul.gname = v.Modul.gname }
let clone_alias (a : Modul.alias) = { a with Modul.aname = a.Modul.aname }

let clone_gvalue ?map = function
  | Modul.Fun f -> Modul.Fun (clone_func ?map f)
  | Modul.Var v -> Modul.Var (clone_gvar v)
  | Modul.Alias a -> Modul.Alias (clone_alias a)

(** Clone a whole module. *)
let clone_module ?map (m : Modul.t) =
  let copy = Modul.create ~name:m.Modul.mname () in
  List.iter (fun gv -> Modul.add copy (clone_gvalue ?map gv)) (Modul.globals m);
  copy

(** Clone the named symbols of [m] into a fresh module, together with
    declarations for everything they reference (so the result is
    well-formed). Returns the new module and the instruction map. *)
let extract (m : Modul.t) names =
  let map = empty_map () in
  let out = Modul.create ~name:(m.Modul.mname ^ ".tmp") () in
  let wanted = List.filter (Modul.mem m) names in
  List.iter (fun n -> Modul.add out (clone_gvalue ~map (Modul.find_exn m n))) wanted;
  (* Add declarations for referenced-but-absent symbols. *)
  let missing = ref [] in
  List.iter
    (fun gv ->
      Uses.SSet.iter
        (fun s -> if not (Modul.mem out s) then missing := s :: !missing)
        (Uses.of_gvalue gv))
    (Modul.globals out);
  List.iter
    (fun s ->
      if not (Modul.mem out s) then
        match Modul.find m s with
        | Some (Modul.Fun f) ->
          ignore
            (Modul.add_function out ~linkage:Func.External ~name:f.Func.name
               ~params:f.Func.params ~ret:f.Func.ret [])
        | Some (Modul.Var v) ->
          ignore
            (Modul.add_var out ~linkage:Func.External ~name:v.Modul.gname Modul.Extern)
        | Some (Modul.Alias a) ->
          (* Cannot declare an alias: import its resolved target instead. *)
          ignore
            (Modul.add_var out ~linkage:Func.External ~name:a.Modul.aname Modul.Extern)
        | None ->
          (* Runtime symbols (e.g. probe callbacks) are extern by fiat. *)
          ignore (Modul.add_var out ~linkage:Func.External ~name:s Modul.Extern))
    (List.rev !missing);
  (out, map)
