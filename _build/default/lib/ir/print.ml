(** Textual IR printer, LLVM-flavoured. The output round-trips through
    {!Parse}. *)

open Printf

let value_to_string = function
  | Ins.Const (ty, v) -> sprintf "%s %Ld" (Types.to_string ty) v
  | Ins.Reg (ty, n) -> sprintf "%s %%%s" (Types.to_string ty) n
  | Ins.Global g -> sprintf "ptr @%s" g
  | Ins.Blockaddr (f, l) -> sprintf "ptr blockaddress(@%s, %%%s)" f l
  | Ins.Undef ty -> sprintf "%s undef" (Types.to_string ty)

let short_value = function
  | Ins.Const (_, v) -> sprintf "%Ld" v
  | Ins.Reg (_, n) -> sprintf "%%%s" n
  | Ins.Global g -> sprintf "@%s" g
  | Ins.Blockaddr (f, l) -> sprintf "blockaddress(@%s, %%%s)" f l
  | Ins.Undef _ -> "undef"

let callee_to_string = function
  | Ins.Direct f -> "@" ^ f
  | Ins.Indirect v -> value_to_string v

let ins_to_string (i : Ins.ins) =
  let v = value_to_string in
  let lhs = if i.id = "" then "" else sprintf "%%%s = " i.id in
  let vol = if i.volatile then "volatile " else "" in
  let body =
    match i.kind with
    | Ins.Binop (op, a, b) ->
      sprintf "%s %s %s, %s" (Ins.binop_to_string op) (Types.to_string i.ty)
        (short_value a) (short_value b)
    | Ins.Icmp (p, a, b) ->
      sprintf "icmp %s %s %s, %s" (Ins.icmp_to_string p)
        (Types.to_string (Ins.value_ty a)) (short_value a) (short_value b)
    | Ins.Select (c, a, b) -> sprintf "select %s, %s, %s" (v c) (v a) (v b)
    | Ins.Cast (c, a) ->
      sprintf "%s %s to %s" (Ins.cast_to_string c) (v a) (Types.to_string i.ty)
    | Ins.Load p -> sprintf "load %s, %s" (Types.to_string i.ty) (v p)
    | Ins.Store (x, p) -> sprintf "store %s, %s" (v x) (v p)
    | Ins.Gep (base, idx, sz) ->
      sprintf "gep %s, %s, size %d" (v base) (v idx) sz
    | Ins.Call (c, args) ->
      sprintf "call %s %s(%s)" (Types.to_string i.ty) (callee_to_string c)
        (String.concat ", " (List.map v args))
    | Ins.Phi incoming ->
      let arm (l, x) = sprintf "[ %s, %%%s ]" (short_value x) l in
      sprintf "phi %s %s" (Types.to_string i.ty)
        (String.concat ", " (List.map arm incoming))
    | Ins.Alloca (ty, n) -> sprintf "alloca %s, %d" (Types.to_string ty) n
  in
  lhs ^ vol ^ body

let term_to_string = function
  | Ins.Ret None -> "ret void"
  | Ins.Ret (Some v) -> sprintf "ret %s" (value_to_string v)
  | Ins.Br l -> sprintf "br label %%%s" l
  | Ins.Cbr (c, a, b) ->
    sprintf "br %s, label %%%s, label %%%s" (value_to_string c) a b
  | Ins.Switch (v, d, cases) ->
    let case (k, l) = sprintf "%Ld: label %%%s" k l in
    sprintf "switch %s, label %%%s [%s]" (value_to_string v) d
      (String.concat ", " (List.map case cases))
  | Ins.Unreachable -> "unreachable"

let block_to_string (b : Func.block) =
  let lines =
    (b.label ^ ":")
    :: List.map (fun i -> "  " ^ ins_to_string i) b.insns
    @ [ "  " ^ term_to_string b.term ]
  in
  String.concat "\n" lines

let linkage_to_string = function
  | Func.External -> "external"
  | Func.Internal -> "internal"

let func_to_string (f : Func.t) =
  let params =
    List.map (fun (ty, p) -> sprintf "%s %%%s" (Types.to_string ty) p) f.params
    |> String.concat ", "
  in
  let comdat = match f.comdat with None -> "" | Some c -> sprintf " comdat(%s)" c in
  let head =
    sprintf "%s %s @%s(%s)%s"
      (if Func.is_declaration f then "declare" else "define")
      (linkage_to_string f.linkage)
      f.name params comdat
  in
  let head = sprintf "%s %s" head (Types.to_string f.ret) in
  if Func.is_declaration f then head
  else
    head ^ " {\n"
    ^ String.concat "\n" (List.map block_to_string f.blocks)
    ^ "\n}"

let escape_bytes s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then Buffer.add_char buf c
      else Buffer.add_string buf (sprintf "\\%02X" (Char.code c)))
    s;
  Buffer.contents buf

let init_to_string = function
  | Modul.Bytes s -> sprintf "c\"%s\"" (escape_bytes s)
  | Modul.Words (ty, ws) ->
    sprintf "[%s x %s]" (Types.to_string ty)
      (String.concat ", " (List.map Int64.to_string ws))
  | Modul.Symbols ss ->
    sprintf "[ptr x %s]" (String.concat ", " (List.map (fun s -> "@" ^ s) ss))
  | Modul.Zero n -> sprintf "zeroinitializer %d" n
  | Modul.Extern -> "extern"

let gvar_to_string (v : Modul.gvar) =
  sprintf "@%s = %s %s %s" v.gname
    (linkage_to_string v.glinkage)
    (if v.gconst then "constant" else "global")
    (init_to_string v.ginit)

let alias_to_string (a : Modul.alias) =
  sprintf "@%s = %s alias @%s" a.aname (linkage_to_string a.alinkage) a.atarget

let gvalue_to_string = function
  | Modul.Fun f -> func_to_string f
  | Modul.Var v -> gvar_to_string v
  | Modul.Alias a -> alias_to_string a

let module_to_string (m : Modul.t) =
  let parts = List.map gvalue_to_string (Modul.globals m) in
  sprintf "; module %s\n%s\n" m.mname (String.concat "\n\n" parts)
