(** The Figure 2 correctness experiment: does CmpLog still support
    input-to-state solving after the optimizer has had its way?

    The target program guards [n_range] range-check roadblocks
    ([buf[i] >= L && buf[i] <= U], the islower pattern) and [n_magic]
    byte-equality roadblocks. Two CmpLog strategies attack it with the
    same solver:

    - AFL++-style ({!Baselines.Cmplog_static}): comparisons logged
      *after* optimization. The range checks have been folded to
      [(x - L) ult N], so the logged operand is [x - L] — not a copy of
      any input byte, and the solver cannot patch it (Section 2.2:
      "the value collected by CmpLog will be 0 ... the solver algorithm
      cannot work anymore").
    - Odin CmpLog: instrument first; operands are the original bytes.

    Equality roadblocks survive optimization undistorted, so both
    strategies solve those — isolating the distortion as the variable. *)

type result = {
  strategy : string;
  passed_range : int;
  passed_magic : int;
  rounds_used : int;
}

type spec = {
  n_range : int;
  n_magic : int;
  ranges : (int * int) list;  (** (lo, width) per range roadblock *)
  magics : int list;
}

let make_spec ?(n_range = 4) ?(n_magic = 2) seed =
  let rng = Support.Rng.create seed in
  {
    n_range;
    n_magic;
    ranges =
      List.init n_range (fun _ ->
          (Support.Rng.range rng 40 90, Support.Rng.range rng 4 20));
    magics = List.init n_magic (fun _ -> Support.Rng.range rng 97 122);
  }

(** The roadblock program: each passed check sets one bit of the result. *)
let source spec =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "int target_main(char *buf, int len) {";
  line "  if (len < %d) return 0;" (spec.n_range + spec.n_magic);
  line "  int score = 0;";
  (* each byte is read once into a local (natural C; also what lets the
     optimizer see the two comparisons share an operand and fold them) *)
  List.iteri (fun i _ -> line "  char c%d = buf[%d];" i i) spec.ranges;
  List.iteri
    (fun i (lo, width) ->
      line "  if (c%d >= %d && c%d <= %d) score = score | %d;" i lo i (lo + width)
        (1 lsl i))
    spec.ranges;
  List.iteri
    (fun j m ->
      let idx = spec.n_range + j in
      line "  if (buf[%d] == %d) score = score | %d;" idx m
        (1 lsl (spec.n_range + j)))
    spec.magics;
  line "  return score;";
  line "}";
  Buffer.contents b

let bits_in_mask score mask =
  let rec go i acc =
    if i >= 30 then acc
    else
      go (i + 1)
        (acc + if score land (1 lsl i) <> 0 && mask land (1 lsl i) <> 0 then 1 else 0)
  in
  go 0 0

(* Greedy solving loop shared by both strategies: run, collect records,
   generate candidates, keep the best-scoring input; stop when a round
   brings no improvement. *)
let drive ~strategy ~(run : string -> int64) ~(drain : unit -> Odin.Cmplog.record list)
    ~spec ~rounds input0 =
  let range_mask = (1 lsl spec.n_range) - 1 in
  let magic_mask = ((1 lsl spec.n_magic) - 1) lsl spec.n_range in
  let best = ref input0 in
  let best_score = ref (Int64.to_int (run input0)) in
  let used = ref 0 in
  (try
     for _ = 1 to rounds do
       incr used;
       let records = drain () in
       let candidates =
         Solver.solve ~limit:128 ~min_magnitude:3L ~records !best
       in
       let improved = ref false in
       List.iter
         (fun c ->
           let s = Int64.to_int (run c) in
           ignore (drain ());
           if s > !best_score then begin
             best_score := s;
             best := c;
             improved := true
           end)
         candidates;
       (* refill the record log for the next round *)
       ignore (run !best);
       if not !improved then raise Exit
     done
   with Exit -> ());
  {
    strategy;
    passed_range = bits_in_mask !best_score range_mask;
    passed_magic = bits_in_mask !best_score magic_mask;
    rounds_used = !used;
  }

(** Odin CmpLog (instrument-first) on the roadblock program. *)
let run_odin ?(rounds = 8) spec =
  let m = Minic.Lower.compile ~name:"fig2" (source spec) in
  let session = Odin.Session.create ~keep:[ "target_main" ] m in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  let run input =
    let vm = Vm.create (Odin.Session.executable session) in
    Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
    let addr = Vm.write_buffer vm input in
    Vm.call vm "target_main" [ addr; Int64.of_int (String.length input) ]
  in
  let drain () = Odin.Cmplog.drain cmplog in
  let input0 = String.make (spec.n_range + spec.n_magic) '\x00' in
  ignore (run input0);
  drive ~strategy:"Odin CmpLog (instrument-first)" ~run ~drain ~spec ~rounds input0

(** AFL++-style CmpLog (instrument after optimization). *)
let run_static ?(rounds = 8) spec =
  let m = Minic.Lower.compile ~name:"fig2" (source spec) in
  let t = Baselines.Cmplog_static.build ~keep:[ "target_main" ] m in
  let run input =
    let vm = Vm.create t.Baselines.Cmplog_static.exe in
    Vm.register_host vm Baselines.Cmplog_static.runtime_fn
      (Baselines.Cmplog_static.host_hook t);
    let addr = Vm.write_buffer vm input in
    Vm.call vm "target_main" [ addr; Int64.of_int (String.length input) ]
  in
  let drain () = Baselines.Cmplog_static.drain t in
  let input0 = String.make (spec.n_range + spec.n_magic) '\x00' in
  ignore (run input0);
  drive ~strategy:"AFL++ CmpLog (instrument-last)" ~run ~drain ~spec ~rounds input0
