lib/fuzzer/corpus.mli: Support
