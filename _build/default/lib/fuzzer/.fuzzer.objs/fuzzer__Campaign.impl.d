lib/fuzzer/campaign.ml: Array Baselines Corpus Fuzz Int64 Ir List Minic Odin String Support Vm Workloads
