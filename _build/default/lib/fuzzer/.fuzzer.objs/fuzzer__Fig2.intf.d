lib/fuzzer/fig2.mli:
