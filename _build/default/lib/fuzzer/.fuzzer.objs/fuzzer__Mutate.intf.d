lib/fuzzer/mutate.mli: Support
