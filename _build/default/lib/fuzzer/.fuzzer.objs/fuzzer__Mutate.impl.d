lib/fuzzer/mutate.ml: Bytes Char String Support
