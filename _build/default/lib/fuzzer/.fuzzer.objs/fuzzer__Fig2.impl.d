lib/fuzzer/fig2.ml: Baselines Buffer Int64 List Minic Odin Printf Solver String Support Vm
