lib/fuzzer/corpus.ml: List String Support
