lib/fuzzer/fuzz.mli: Corpus Support
