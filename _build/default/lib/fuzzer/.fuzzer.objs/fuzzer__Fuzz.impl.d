lib/fuzzer/fuzz.ml: Corpus List Mutate
