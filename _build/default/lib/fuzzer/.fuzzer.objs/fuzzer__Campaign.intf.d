lib/fuzzer/campaign.mli: Baselines Fuzz Ir Link Odin Vm Workloads
