lib/fuzzer/solver.mli: Odin
