lib/fuzzer/solver.ml: Bytes Char Hashtbl Int64 List Odin String
