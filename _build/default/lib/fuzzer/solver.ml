(** Input-to-state solving (RedQueen-style), driven by Odin's CmpLog
    probes — the fuzzing stage the paper's Section 2.1 motivates.

    When an execution logs a comparison [lhs vs rhs] where one side is a
    value the input controls and the other is what the program expected,
    the solver searches the input for an encoding of the observed value
    and patches those bytes with the expected one. Because Odin's CmpLog
    instruments *before* optimization, the observed operand is a direct
    copy of input bytes (Figure 2's prerequisite), so the byte search
    usually succeeds. *)

(* Encodings tried when looking for [value] inside the input. *)
let encodings value =
  let le n =
    String.init n (fun i ->
        Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical value (8 * i)) 255L)))
  in
  let be n =
    String.init n (fun i ->
        Char.chr
          (Int64.to_int
             (Int64.logand (Int64.shift_right_logical value (8 * (n - 1 - i))) 255L)))
  in
  [ le 1; le 2; be 2; le 4; be 4; le 8; be 8 ]

(* All positions where [needle] occurs in [hay]. *)
let find_all hay needle =
  let n = String.length needle and h = String.length hay in
  if n = 0 || n > h then []
  else begin
    let out = ref [] in
    for i = h - n downto 0 do
      if String.sub hay i n = needle then out := i :: !out
    done;
    !out
  end

let patch input pos replacement =
  let b = Bytes.of_string input in
  Bytes.blit_string replacement 0 b pos (String.length replacement);
  Bytes.to_string b

(** Candidate inputs derived from one comparison record: wherever an
    encoding of the observed operand appears in [input], substitute the
    expected operand in the same width/endianness. *)
let candidates_for input (r : Odin.Cmplog.record) =
  let try_pair observed expected =
    List.concat_map
      (fun (enc_obs, enc_exp) ->
        if String.length enc_obs = String.length enc_exp then
          List.map (fun pos -> patch input pos enc_exp) (find_all input enc_obs)
        else [])
      (List.combine (encodings observed) (encodings expected))
  in
  (* either side may be the input copy; try both directions *)
  try_pair r.Odin.Cmplog.rec_lhs r.Odin.Cmplog.rec_rhs
  @ try_pair r.Odin.Cmplog.rec_rhs r.Odin.Cmplog.rec_lhs

(** One solving round: run [input], collect its comparison records, and
    return deduplicated patched candidates (bounded by [limit]).
    [min_magnitude] filters out records whose operands are all tiny —
    those solve themselves by chance and flood the candidate set (the
    default suits magic constants; byte-level roadblocks want ~3). *)
let solve ?(limit = 32) ?(min_magnitude = 256L) ~(records : Odin.Cmplog.record list)
    input =
  let interesting (r : Odin.Cmplog.record) =
    let big v = Int64.abs v >= min_magnitude in
    (big r.Odin.Cmplog.rec_lhs || big r.Odin.Cmplog.rec_rhs)
    && not (Int64.equal r.Odin.Cmplog.rec_lhs r.Odin.Cmplog.rec_rhs)
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun r ->
      if interesting r && !count < limit then
        List.iter
          (fun c ->
            if (not (Hashtbl.mem seen c)) && !count < limit && c <> input then begin
              Hashtbl.replace seen c ();
              out := c :: !out;
              incr count
            end)
          (candidates_for input r))
    records;
  List.rev !out
