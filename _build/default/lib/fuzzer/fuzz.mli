(** The coverage-guided fuzzing loop (AFL-style), generic over a target. *)

type exec = { ex_cycles : int; ex_new_blocks : int }

type target = { run : string -> exec }

type stats = {
  mutable executions : int;
  mutable total_cycles : int;
  mutable discoveries : int;  (** inputs that found new coverage *)
}

(** Run the seeds, then [execs] mutated executions; returns the corpus of
    coverage-increasing inputs and the loop statistics. *)
val collect_corpus :
  rng:Support.Rng.t -> seeds:string list -> execs:int -> target -> Corpus.t * stats
