(** Input mutators: the classic AFL repertoire (bit flips, byte
    replacement, arithmetic, block insertion/deletion, splicing), all
    deterministic via the caller's RNG. *)

let flip_bit rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Support.Rng.int rng (Bytes.length b) in
    let bit = Support.Rng.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let random_byte rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Support.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Support.Rng.int rng 256));
    Bytes.to_string b
  end

let arith rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Support.Rng.int rng (Bytes.length b) in
    let delta = Support.Rng.range rng (-16) 16 in
    Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 255));
    Bytes.to_string b
  end

let interesting_values = [ 0; 1; 255; 127; 128; 64; 77; 90 ]

let interesting rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Support.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Support.Rng.choose rng interesting_values));
    Bytes.to_string b
  end

let insert_block rng s =
  let i = Support.Rng.int rng (String.length s + 1) in
  let n = Support.Rng.range rng 1 8 in
  let filler = String.init n (fun _ -> Char.chr (Support.Rng.int rng 256)) in
  String.sub s 0 i ^ filler ^ String.sub s i (String.length s - i)

let delete_block rng s =
  if String.length s <= 8 then s
  else begin
    let n = Support.Rng.range rng 1 (min 8 (String.length s - 8)) in
    let i = Support.Rng.int rng (String.length s - n) in
    String.sub s 0 i ^ String.sub s (i + n) (String.length s - i - n)
  end

let splice rng s other =
  if String.length s = 0 || String.length other = 0 then s
  else begin
    let i = Support.Rng.int rng (String.length s) in
    let j = Support.Rng.int rng (String.length other) in
    String.sub s 0 i ^ String.sub other j (String.length other - j)
  end

(** One random mutation; [pool] supplies splice partners. *)
let mutate rng ~pool s =
  match Support.Rng.int rng 7 with
  | 0 -> flip_bit rng s
  | 1 -> random_byte rng s
  | 2 -> arith rng s
  | 3 -> interesting rng s
  | 4 -> insert_block rng s
  | 5 -> delete_block rng s
  | _ -> (
    match pool with
    | [] -> random_byte rng s
    | _ -> splice rng s (Support.Rng.choose rng pool))

(** A havoc stage: several stacked mutations. *)
let havoc rng ~pool s =
  let n = 1 + Support.Rng.int rng 4 in
  let rec go acc k = if k = 0 then acc else go (mutate rng ~pool acc) (k - 1) in
  go s n
