(** The Figure 2 correctness experiment: input-to-state solving over
    range-check and byte-equality roadblocks, comparing Odin's
    instrument-first CmpLog against AFL++-style instrument-after-
    optimization CmpLog with the same solver. The optimizer's range fold
    turns [x >= L && x <= U] into [(x-L) ult N], whose logged operand
    matches no input byte — so only the instrument-first strategy solves
    the range roadblocks. *)

type result = {
  strategy : string;
  passed_range : int;
  passed_magic : int;
  rounds_used : int;
}

type spec = {
  n_range : int;
  n_magic : int;
  ranges : (int * int) list;  (** (lo, width) per range roadblock *)
  magics : int list;
}

val make_spec : ?n_range:int -> ?n_magic:int -> int -> spec

(** The roadblock program (each passed check sets one result bit). *)
val source : spec -> string

(** Odin CmpLog (instrument-first) attacking the roadblocks. *)
val run_odin : ?rounds:int -> spec -> result

(** AFL++-style CmpLog (instrument after optimization). *)
val run_static : ?rounds:int -> spec -> result
