(** Input mutators: the classic AFL repertoire, deterministic via the
    caller's RNG. All mutators total: they return the input unchanged
    rather than fail on degenerate sizes. *)

val flip_bit : Support.Rng.t -> string -> string
val random_byte : Support.Rng.t -> string -> string
val arith : Support.Rng.t -> string -> string
val interesting_values : int list
val interesting : Support.Rng.t -> string -> string
val insert_block : Support.Rng.t -> string -> string
val delete_block : Support.Rng.t -> string -> string
val splice : Support.Rng.t -> string -> string -> string

(** One random mutation; [pool] supplies splice partners. *)
val mutate : Support.Rng.t -> pool:string list -> string -> string

(** Several stacked mutations. *)
val havoc : Support.Rng.t -> pool:string list -> string -> string
