(** Seed corpus with AFL-style favoring of small/fast/high-yield seeds. *)

type seed = { data : string; exec_cycles : int; new_blocks : int }

type t

val create : unit -> t
val add : t -> data:string -> exec_cycles:int -> new_blocks:int -> unit
val size : t -> int

(** Seeds in discovery order. *)
val seeds : t -> seed list

(** Seed inputs in discovery order. *)
val inputs : t -> string list

(** Weighted random pick biased toward small, cheap, high-yield seeds;
    [None] when empty. *)
val pick : t -> Support.Rng.t -> seed option
