(** Input-to-state solving (RedQueen-style), driven by Odin's CmpLog
    probes: search the input for an encoding of a comparison operand the
    program observed, and patch in the operand it expected. Works because
    Odin's instrument-first CmpLog logs direct copies of input bytes
    (paper Figure 2's prerequisite). *)

(** Byte encodings tried for a value: little/big-endian at 1/2/4/8 bytes. *)
val encodings : int64 -> string list

(** Candidate patched inputs derived from one comparison record. *)
val candidates_for : string -> Odin.Cmplog.record -> string list

(** All deduplicated candidates from an execution's comparison records,
    bounded by [limit]; records whose operands are all below
    [min_magnitude] in absolute value are skipped. *)
val solve :
  ?limit:int ->
  ?min_magnitude:int64 ->
  records:Odin.Cmplog.record list ->
  string ->
  string list
