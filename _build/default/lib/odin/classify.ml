(** Symbol classification (paper Section 3.2, step 1).

    Every defined symbol lands in one of three categories:
    - [Bond]: must be compiled together with specific partner symbols so
      interprocedural optimization can proceed (or so the object file is
      even well-formed — the innate constraints);
    - [Copy_on_use]: a clonable constant that local optimizations need to
      inspect; it is cloned into each referencing fragment;
    - [Fixed]: compiled as-is behind a stable ABI (the default).

    Innate constraints are derived from the IR itself (aliases, COMDAT
    groups, blockaddress). Optimization requirements come from a *trial
    optimization* of a throw-away clone of the program, with the pass
    pipeline running in requirement-logging mode. *)

module SSet = Set.Make (String)

type category = Bond | Copy_on_use | Fixed

type t = {
  category : (string, category) Hashtbl.t;
  bonds : (string * string) list;  (** symbol pairs that must co-locate *)
  copy_users : (string, SSet.t) Hashtbl.t;  (** copy-on-use sym -> users *)
}

let category_of t name =
  Option.value ~default:Fixed (Hashtbl.find_opt t.category name)

(* Innate constraints present in the IR regardless of optimization. *)
let innate_bonds (m : Ir.Modul.t) =
  let bonds = ref [] in
  (* aliases: relocation cannot target an alias, so the base must be
     defined in the same object *)
  List.iter
    (fun (a : Ir.Modul.alias) ->
      bonds := (a.Ir.Modul.aname, a.Ir.Modul.atarget) :: !bonds)
    (Ir.Modul.aliases m);
  (* COMDAT groups: all members must be emitted together *)
  let comdat_groups : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun gv ->
      let key =
        match gv with
        | Ir.Modul.Fun f -> f.Ir.Func.comdat
        | Ir.Modul.Var v -> v.Ir.Modul.gcomdat
        | Ir.Modul.Alias _ -> None
      in
      match key with
      | Some k ->
        let old = Option.value ~default:[] (Hashtbl.find_opt comdat_groups k) in
        Hashtbl.replace comdat_groups k (Ir.Modul.gvalue_name gv :: old)
      | None -> ())
    (Ir.Modul.globals m);
  Hashtbl.iter
    (fun _ members ->
      match members with
      | first :: rest -> List.iter (fun s -> bonds := (first, s) :: !bonds) rest
      | [] -> ())
    comdat_groups;
  (* blockaddress: the taker and the function whose label is taken must
     co-locate (the label is an address into that function's code) *)
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          let scan = function
            | Ir.Ins.Blockaddr (target, _) when not (String.equal target f.Ir.Func.name)
              ->
              bonds := (f.Ir.Func.name, target) :: !bonds
            | _ -> ()
          in
          List.iter
            (fun (i : Ir.Ins.ins) -> List.iter scan (Ir.Ins.operands i))
            b.Ir.Func.insns;
          List.iter scan (Ir.Ins.term_operands b.Ir.Func.term))
        f)
    (Ir.Modul.defined_functions m);
  !bonds

(* A symbol is clonable when it is an internal, immutable chunk of data:
   duplicating it per fragment cannot change program behaviour (its
   address identity is not observable through our C subset's semantics
   for string/table constants the optimizer folds). *)
let clonable (m : Ir.Modul.t) name =
  match Ir.Modul.find m name with
  | Some (Ir.Modul.Var v) ->
    v.Ir.Modul.gconst
    && v.Ir.Modul.glinkage = Ir.Func.Internal
    && v.Ir.Modul.ginit <> Ir.Modul.Extern
  | _ -> false

(** Classify the symbols of [m]. [keep] names entry points that must stay
    exported. The module is not modified: the trial optimization runs on
    a clone. *)
let classify ?(keep = [ "main" ]) (m : Ir.Modul.t) =
  let trial = Ir.Clone.clone_module m in
  let ctx = Opt.Pipeline.run ~trial:true ~keep trial in
  let reqs = ctx.Opt.Pass.reqs in
  let category = Hashtbl.create 64 in
  let copy_users = Hashtbl.create 16 in
  let bonds = ref (innate_bonds m) in
  let defined name =
    match Ir.Modul.find m name with
    | Some gv -> Ir.Modul.is_definition gv
    | None -> false
  in
  (* requirements from the trial run *)
  List.iter
    (function
      | Opt.Pass.Bond { a; b; _ } ->
        if defined a && defined b then bonds := (a, b) :: !bonds
      | Opt.Pass.Copy_on_use { user; sym; _ } ->
        if defined sym then
          if clonable m sym then begin
            Hashtbl.replace category sym Copy_on_use;
            let old =
              Option.value ~default:SSet.empty (Hashtbl.find_opt copy_users sym)
            in
            Hashtbl.replace copy_users sym (SSet.add user old)
          end
          else if defined user then
            (* non-clonable: bond it with its user instead *)
            bonds := (user, sym) :: !bonds)
    reqs;
  (* every symbol involved in a bond is categorized Bond (unless it is
     already Copy_on_use, which takes priority: cloning subsumes) *)
  List.iter
    (fun (a, b) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt category s with
          | Some Copy_on_use -> ()
          | _ -> if defined s then Hashtbl.replace category s Bond)
        [ a; b ])
    !bonds;
  (* everything else is Fixed *)
  List.iter
    (fun gv ->
      let name = Ir.Modul.gvalue_name gv in
      if Ir.Modul.is_definition gv && not (Hashtbl.mem category name) then
        Hashtbl.replace category name Fixed)
    (Ir.Modul.globals m);
  { category; bonds = !bonds; copy_users }
