(** Fragment creation (paper Section 3.2, Algorithm 1) and fragment
    materialization.

    A fragment is a set of symbol definitions that are always recompiled
    together. The partition plan also records, per fragment, which
    copy-on-use symbols get cloned in, and the final visibility of every
    symbol (step 4, internalization). *)

module SSet = Set.Make (String)
module SMap = Map.Make (String)

type mode =
  | One  (** whole program in a single fragment: best optimization *)
  | Auto  (** Odin's scheme: constraints + optimization bonds *)
  | Max  (** one definition per fragment (innate constraints only) *)

let mode_to_string = function One -> "one" | Auto -> "odin" | Max -> "max"

type fragment = {
  fid : int;
  members : SSet.t;  (** symbols defined by this fragment *)
  clones : SSet.t;  (** copy-on-use symbols cloned locally *)
}

type plan = {
  mode : mode;
  fragments : fragment array;
  frag_of : (string, int) Hashtbl.t;  (** defined symbol -> fragment id *)
  visibility : (string, Ir.Func.linkage) Hashtbl.t;  (** post step 4 *)
  classification : Classify.t;
  keep : string list;
}

let fragment_count plan = Array.length plan.fragments

let fragment_of plan sym = Hashtbl.find_opt plan.frag_of sym

(* Recursively collect the copy-on-use symbols reachable from [roots]
   through copy-on-use references (a cloned constant may reference
   further clonable constants). *)
let rec closure_of_clones (m : Ir.Modul.t) is_copy acc = function
  | [] -> acc
  | sym :: rest ->
    if SSet.mem sym acc then closure_of_clones m is_copy acc rest
    else begin
      let acc = SSet.add sym acc in
      let refs =
        match Ir.Modul.find m sym with
        | Some gv -> Ir.Uses.of_gvalue gv
        | None -> Ir.Uses.SSet.empty
      in
      let more =
        Ir.Uses.SSet.fold (fun r l -> if is_copy r then r :: l else l) refs []
      in
      closure_of_clones m is_copy acc (more @ rest)
    end

(** Build the partition plan (Algorithm 1 + steps 3 and 4).
    [copy_on_use:false] is an ablation: survey-classified clonable
    constants are treated as Fixed (own fragment, imported by reference),
    demonstrating the missed-local-optimization cost of Section 2.3. *)
let plan ?(mode = Auto) ?(copy_on_use = true) ?(keep = [ "main" ]) (m : Ir.Modul.t)
    (cls : Classify.t) =
  let definitions =
    List.filter Ir.Modul.is_definition (Ir.Modul.globals m)
    |> List.map Ir.Modul.gvalue_name
  in
  let is_defined s = List.mem s definitions in
  (* Copy-on-use knowledge comes from the survey; the blind Max variant
     has no survey, and One needs no cloning (everything is local). *)
  let is_copy s =
    copy_on_use && mode = Auto
    && Classify.category_of cls s = Classify.Copy_on_use
  in
  (* Step 2 / Algorithm 1: cluster symbols with a union-find. *)
  let uf = Support.Union_find.create () in
  List.iter (fun s -> if not (is_copy s) then Support.Union_find.add uf s) definitions;
  let apply_bonds bonds =
    List.iter
      (fun (a, b) ->
        if is_defined a && is_defined b && (not (is_copy a)) && not (is_copy b)
        then Support.Union_find.union uf a b)
      bonds
  in
  (match mode with
  | One ->
    (* no partitioning: one cluster with everything *)
    (match List.filter (fun s -> not (is_copy s)) definitions with
    | [] -> ()
    | first :: rest -> List.iter (fun s -> Support.Union_find.union uf first s) rest)
  | Auto -> apply_bonds cls.Classify.bonds
  | Max ->
    (* only the innate constraints: anything less miscompiles *)
    apply_bonds (Classify.innate_bonds m));
  let clusters = Support.Union_find.clusters uf in
  (* Step 3: per fragment, add the copy-on-use closure. *)
  let fragments =
    List.mapi
      (fun i members ->
        let members = SSet.of_list members in
        let direct =
          SSet.fold
            (fun s acc ->
              match Ir.Modul.find m s with
              | Some gv ->
                Ir.Uses.SSet.fold
                  (fun r l -> if is_copy r then r :: l else l)
                  (Ir.Uses.of_gvalue gv) acc
              | None -> acc)
            members []
        in
        let clones = closure_of_clones m is_copy SSet.empty direct in
        { fid = i; members; clones })
      clusters
  in
  let fragments = Array.of_list fragments in
  let frag_of = Hashtbl.create 64 in
  Array.iter
    (fun f -> SSet.iter (fun s -> Hashtbl.replace frag_of s f.fid) f.members)
    fragments;
  (* Step 4: internalize exported symbols with no cross-fragment refs.
     References from a fragment F to symbol s defined in fragment G with
     F <> G force s to stay exported. *)
  let cross_referenced = Hashtbl.create 64 in
  Array.iter
    (fun f ->
      SSet.iter
        (fun s ->
          match Ir.Modul.find m s with
          | Some gv ->
            Ir.Uses.SSet.iter
              (fun r ->
                match Hashtbl.find_opt frag_of r with
                | Some g when g <> f.fid -> Hashtbl.replace cross_referenced r ()
                | _ -> ())
              (Ir.Uses.of_gvalue gv)
          | None -> ())
        f.members)
    fragments;
  let visibility = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let vis =
        if List.mem s keep then Ir.Func.External
        else if is_copy s then Ir.Func.Internal
        else if Hashtbl.mem cross_referenced s then Ir.Func.External
        else Ir.Func.Internal
      in
      Hashtbl.replace visibility s vis)
    definitions;
  { mode; fragments; frag_of; visibility; classification = cls; keep }

(* ------------------------------------------------------------------ *)
(* Fragment materialization                                            *)
(* ------------------------------------------------------------------ *)

(* Unique name for a copy-on-use clone inside a fragment. *)
let clone_name fid sym = Printf.sprintf "%s$f%d" sym fid

(* Rewrite references to cloned copy-on-use symbols inside a gvalue. *)
let rewrite_refs fid clones gv =
  let fix_name s = if SSet.mem s clones then clone_name fid s else s in
  match gv with
  | Ir.Modul.Fun f ->
    if not (Ir.Func.is_declaration f) then
      Ir.Func.map_values
        (function
          | Ir.Ins.Global g when SSet.mem g clones ->
            Ir.Ins.Global (clone_name fid g)
          | v -> v)
        f;
    (* direct calls reference symbols outside of operands *)
    Ir.Func.iter_insns
      (fun (i : Ir.Ins.ins) ->
        match i.Ir.Ins.kind with
        | Ir.Ins.Call (Ir.Ins.Direct callee, args) when SSet.mem callee clones ->
          i.Ir.Ins.kind <- Ir.Ins.Call (Ir.Ins.Direct (fix_name callee), args)
        | _ -> ())
      f
  | Ir.Modul.Var v -> (
    match v.Ir.Modul.ginit with
    | Ir.Modul.Symbols ss -> v.Ir.Modul.ginit <- Ir.Modul.Symbols (List.map fix_name ss)
    | _ -> ())
  | Ir.Modul.Alias a -> a.Ir.Modul.atarget <- fix_name a.Ir.Modul.atarget

(** Materialize fragment [f] of [plan] as a standalone module, pulling
    symbol definitions from [source] (either the pristine base IR or the
    instrumented temporary IR — see Sched). Missing referenced symbols
    are imported as declarations; copy-on-use symbols are cloned in under
    fragment-unique internal names (so fragments can be linked together
    without collisions). *)
let materialize (plan : plan) (f : fragment) ~(source : string -> Ir.Modul.gvalue option)
    ~(base : Ir.Modul.t) =
  let name = Printf.sprintf "%s.frag%d" base.Ir.Modul.mname f.fid in
  let out = Ir.Modul.create ~name () in
  let lookup s =
    match source s with Some gv -> Some gv | None -> Ir.Modul.find base s
  in
  (* member definitions, with final visibility *)
  SSet.iter
    (fun s ->
      match lookup s with
      | Some gv ->
        let copy = Ir.Clone.clone_gvalue gv in
        (match Hashtbl.find_opt plan.visibility s with
        | Some vis -> Ir.Modul.set_linkage copy vis
        | None -> ());
        rewrite_refs f.fid f.clones copy;
        Ir.Modul.add out copy
      | None -> invalid_arg ("Partition.materialize: no definition for " ^ s))
    f.members;
  (* local clones of copy-on-use symbols *)
  SSet.iter
    (fun s ->
      match lookup s with
      | Some (Ir.Modul.Var v) ->
        let copy = Ir.Clone.clone_gvar v in
        let copy = { copy with Ir.Modul.gname = clone_name f.fid s } in
        copy.Ir.Modul.glinkage <- Ir.Func.Internal;
        rewrite_refs f.fid f.clones (Ir.Modul.Var copy);
        Ir.Modul.add out (Ir.Modul.Var copy)
      | _ -> invalid_arg ("Partition.materialize: copy-on-use " ^ s ^ " is not a var"))
    f.clones;
  (* import everything else that is referenced *)
  let missing = ref [] in
  List.iter
    (fun gv ->
      Ir.Uses.SSet.iter
        (fun s -> if not (Ir.Modul.mem out s) then missing := s :: !missing)
        (Ir.Uses.of_gvalue gv))
    (Ir.Modul.globals out);
  List.iter
    (fun s ->
      if not (Ir.Modul.mem out s) then
        match lookup s with
        | Some (Ir.Modul.Fun g) ->
          ignore
            (Ir.Modul.add_function out ~linkage:Ir.Func.External ~name:g.Ir.Func.name
               ~params:g.Ir.Func.params ~ret:g.Ir.Func.ret [])
        | Some (Ir.Modul.Var _) | Some (Ir.Modul.Alias _) | None ->
          (* runtime symbols and data land here: extern data declaration *)
          ignore (Ir.Modul.add_var out ~linkage:Ir.Func.External ~name:s Ir.Modul.Extern))
    (List.sort_uniq String.compare !missing);
  out
