lib/odin/partition.mli: Classify Hashtbl Ir Map Set
