lib/odin/checks.ml: Array Cmplog Instr Int64 Ir List Session Vm
