lib/odin/session.ml: Array Classify Hashtbl Instr Ir Link List Opt Partition Printf Set String Unix
