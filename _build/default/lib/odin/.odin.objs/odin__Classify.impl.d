lib/odin/classify.ml: Hashtbl Ir List Opt Option Set String
