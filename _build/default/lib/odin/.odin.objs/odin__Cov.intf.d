lib/odin/cov.mli: Instr Ir Session Vm
