lib/odin/checks.mli: Session Vm
