lib/odin/session.mli: Hashtbl Instr Ir Link Partition Set
