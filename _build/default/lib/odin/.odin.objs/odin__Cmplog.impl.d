lib/odin/cmplog.ml: Array Hashtbl Instr Int64 Ir List Option Printf Queue Session Vm
