lib/odin/cmplog.mli: Hashtbl Ir Queue Session Vm
