lib/odin/cov.ml: Instr Int64 Ir List Session Vm
