lib/odin/partition.ml: Array Classify Hashtbl Ir List Map Printf Set String Support
