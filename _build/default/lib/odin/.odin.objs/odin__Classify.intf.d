lib/odin/classify.mli: Hashtbl Ir Set
