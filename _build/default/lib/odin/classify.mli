(** Symbol classification (paper Section 3.2, step 1).

    Runs a *trial optimization* on a throw-away clone of the program with
    the pass pipeline in requirement-logging mode, merges in the innate
    constraints derivable from the IR itself (aliases, COMDAT groups,
    blockaddress), and assigns each defined symbol one of three
    categories. *)

module SSet : Set.S with type elt = string

type category =
  | Bond  (** must co-locate with specific partner symbols *)
  | Copy_on_use  (** clonable constant; cloned into referencing fragments *)
  | Fixed  (** compiled as-is behind a stable ABI (the default) *)

type t = {
  category : (string, category) Hashtbl.t;
  bonds : (string * string) list;  (** symbol pairs that must co-locate *)
  copy_users : (string, SSet.t) Hashtbl.t;  (** copy-on-use sym -> users *)
}

(** [Fixed] for symbols with no recorded category. *)
val category_of : t -> string -> category

(** The constraints the object format imposes regardless of optimization:
    alias/base pairs, COMDAT group members, blockaddress taker/takee. *)
val innate_bonds : Ir.Modul.t -> (string * string) list

(** Classify the symbols of a module. The module is not modified (the
    trial optimization runs on a clone). [keep] names entry points that
    stay exported during the trial. *)
val classify : ?keep:string list -> Ir.Modul.t -> t
