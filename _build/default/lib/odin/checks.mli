(** Sanitizer-style check probes (paper Section 7, future work): UBSan-like
    division guards and ASan-lite load guards as Odin probes, so hot
    checks (ASAP) or falsely-firing checks can be removed mid-campaign
    with a fragment recompile. *)

val div_fn : string
val load_fn : string

type violation = { v_pid : int; v_value : int64 }

type t = {
  session : Session.t;
  mutable violations : violation list;
  mutable trips : int;  (** total check executions (profiling) *)
}

val patch : Session.sched -> unit

(** One probe per division (and per load with [loads:true]); declares the
    runtime inspectors and installs the patch logic. *)
val setup : ?loads:bool -> Session.t -> t

(** Host functions to register with the VM (both inspectors). *)
val host_hooks : t -> (string * (Vm.t -> int64)) list

(** ASAP-style: remove checks tripped more than [threshold] times. *)
val prune_hot : ?threshold:int -> t -> int

(** UBSan-with-fuzzing: remove one specific (faulty) probe by id. *)
val remove_probe : t -> int -> bool
