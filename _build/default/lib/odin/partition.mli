(** Fragment creation (paper Section 3.2, Algorithm 1) and fragment
    materialization.

    A fragment is the unit of recompilation: a set of symbol definitions
    always compiled together into one object file. *)

module SSet : Set.S with type elt = string
module SMap : Map.S with type key = string

type mode =
  | One  (** whole program in a single fragment: best optimization *)
  | Auto  (** Odin's scheme: innate constraints + optimization bonds *)
  | Max  (** one definition per fragment (innate constraints only) *)

val mode_to_string : mode -> string

type fragment = {
  fid : int;
  members : SSet.t;  (** symbols defined by this fragment *)
  clones : SSet.t;  (** copy-on-use symbols cloned locally *)
}

type plan = {
  mode : mode;
  fragments : fragment array;
  frag_of : (string, int) Hashtbl.t;  (** defined symbol -> fragment id *)
  visibility : (string, Ir.Func.linkage) Hashtbl.t;  (** after step 4 *)
  classification : Classify.t;
  keep : string list;
}

val fragment_count : plan -> int
val fragment_of : plan -> string -> int option

(** Build the partition plan: cluster symbols (union-find over innate
    constraints and bonds per [mode]), attach copy-on-use closures, and
    internalize symbols with no cross-fragment references.
    [copy_on_use:false] is the ablation that imports clonable constants
    by reference instead. *)
val plan :
  ?mode:mode -> ?copy_on_use:bool -> ?keep:string list -> Ir.Modul.t -> Classify.t -> plan

(** The fragment-unique internal name given to a copy-on-use clone. *)
val clone_name : int -> string -> string

(** Materialize a fragment as a standalone, verifiable module: member
    definitions (with final visibility) pulled through [source] (falling
    back to [base]), fragment-local clones of copy-on-use symbols, and
    extern declarations for everything else referenced. *)
val materialize :
  plan ->
  fragment ->
  source:(string -> Ir.Modul.gvalue option) ->
  base:Ir.Modul.t ->
  Ir.Modul.t
