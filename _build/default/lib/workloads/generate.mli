(** Synthetic mini-C program generator: deterministically produces, from
    a profile, a whole program with entry point
    [int target_main(char *buf, int len)] — constant tables, arithmetic
    helpers with unrollable inner loops, tiny inline-fodder functions,
    switch-dispatch parsers, optionally a giant opcode interpreter,
    magic-byte roadblocks, and a rare printf reporting path. *)

(** Host functions every workload expects the VM to provide. *)
val host_functions : string list

(** The program source for a profile (deterministic). *)
val source : Profile.t -> string

(** Compile a profile to verified IR. *)
val compile : Profile.t -> Ir.Modul.t

(** Deterministic random seed inputs for the pre-fuzzing corpus. *)
val seed_inputs : ?count:int -> ?len:int -> Profile.t -> string list
