lib/workloads/profile.mli:
