lib/workloads/generate.ml: Buffer Char List Minic Printf Profile String Support
