lib/workloads/profile.ml: List String
