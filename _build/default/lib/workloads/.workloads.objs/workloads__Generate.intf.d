lib/workloads/generate.mli: Ir Profile
