(** Lowering from the mini-C AST to IR.

    Locals go through allocas (the classic Clang strategy); Opt.Mem2reg
    subsequently promotes them to SSA. Short-circuit booleans and the
    ternary operator lower to control flow with phis; switch lowers to
    the IR switch with fall-through between consecutive case bodies. *)

open Ast

exception Lower_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Lower_error s)) fmt

type fn_sig = { lret : cty; lparams : cty list }

type env = {
  m : Ir.Modul.t;
  sigs : (string, fn_sig) Hashtbl.t;
  global_tys : (string, cty) Hashtbl.t;
  strings : (string, string) Hashtbl.t;  (** literal -> symbol name *)
  mutable string_count : int;
  mutable scopes : (string * (Ir.Ins.value * cty)) list list;
  mutable breaks : string list;
  mutable continues : string list;
  mutable ret_ty : cty;
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env =
  match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let bind env name slot =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, slot) :: scope) :: rest
  | [] -> env.scopes <- [ [ (name, slot) ] ]

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with Some s -> Some s | None -> go rest)
  in
  go env.scopes

let intern_string env s =
  let data = s ^ "\x00" in
  match Hashtbl.find_opt env.strings data with
  | Some name -> name
  | None ->
    let name = Printf.sprintf ".str.%d" env.string_count in
    env.string_count <- env.string_count + 1;
    ignore
      (Ir.Modul.add_var env.m ~linkage:Ir.Func.Internal ~const:true ~name
         (Ir.Modul.Bytes data));
    Hashtbl.replace env.strings data name;
    name

(* C integer promotion: char/short promote to int; the common type of a
   binary operation is the wider operand. *)
let promote = function Char | Short -> Int | t -> t

let common_cty a b =
  let a = promote a and b = promote b in
  if cty_size a >= cty_size b then a else b

(* Convert [v] (of C type [from]) to C type [into]; emits casts as needed. *)
let convert b v ~from ~into =
  let fty = ir_ty from and ity = ir_ty into in
  if fty = ity then v
  else
    match (fty, ity) with
    | Ir.Types.Ptr, Ir.Types.Ptr -> v
    | Ir.Types.Ptr, _ -> Ir.Builder.cast b Ir.Ins.Ptrtoint ity v
    | _, Ir.Types.Ptr -> Ir.Builder.cast b Ir.Ins.Inttoptr ity v
    | f, i when Ir.Types.size_of f < Ir.Types.size_of i ->
      Ir.Builder.cast b Ir.Ins.Sext i v
    | f, i when Ir.Types.size_of f > Ir.Types.size_of i ->
      Ir.Builder.cast b Ir.Ins.Trunc i v
    | _ -> v

(* Turn a C value into an i1 condition. *)
let as_cond b (v, cty) =
  let ty = ir_ty cty in
  Ir.Builder.icmp b Ir.Ins.Ne v (Ir.Ins.Const (ty, 0L))

let zero_of cty = Ir.Ins.Const (ir_ty cty, 0L)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Lower to an rvalue: (ir value, c type). *)
let rec rvalue env b e : Ir.Ins.value * cty =
  match e with
  | Int_lit v -> (Ir.Ins.Const (Ir.Types.I32, Ir.Types.normalize Ir.Types.I32 v), Int)
  | Str_lit s -> (Ir.Ins.Global (intern_string env s), Ptr Char)
  | Ident name -> (
    match lookup_local env name with
    | Some (slot, (Array _ as aty)) -> (slot, aty)
    | Some (slot, cty) -> (Ir.Builder.load b (ir_ty cty) slot, cty)
    | None -> (
      match Hashtbl.find_opt env.global_tys name with
      | Some (Array _ as aty) -> (Ir.Ins.Global name, aty)
      | Some cty -> (Ir.Builder.load b (ir_ty cty) (Ir.Ins.Global name), cty)
      | None -> (
        match Hashtbl.find_opt env.sigs name with
        | Some fs -> (Ir.Ins.Global name, Ptr fs.lret)
        | None -> fail "lower: undeclared identifier %s" name)))
  | Unary (Neg, inner) ->
    let v, icty = rvalue env b inner in
    let cty = promote icty in
    let v = convert b v ~from:icty ~into:cty in
    (Ir.Builder.binop b Ir.Ins.Sub (ir_ty cty) (zero_of cty) v, cty)
  | Unary (Bnot, inner) ->
    let v, icty = rvalue env b inner in
    let cty = promote icty in
    let v = convert b v ~from:icty ~into:cty in
    (Ir.Builder.binop b Ir.Ins.Xor (ir_ty cty) v (Ir.Ins.Const (ir_ty cty, -1L)), cty)
  | Unary (Lnot, inner) ->
    let v, cty = rvalue env b inner in
    let is_zero = Ir.Builder.icmp b Ir.Ins.Eq v (zero_of cty) in
    (Ir.Builder.cast b Ir.Ins.Zext Ir.Types.I32 is_zero, Int)
  | Unary (Deref, inner) -> (
    let ptr, pcty = rvalue env b inner in
    match pcty with
    | Ptr t | Array (t, _) -> (Ir.Builder.load b (ir_ty t) ptr, t)
    | _ -> fail "lower: dereference of non-pointer")
  | Unary (Addr, inner) ->
    let ptr, cty = lvalue env b inner in
    (ptr, Ptr cty)
  | Binary (Land, lhs, rhs) -> lower_short_circuit env b ~is_and:true lhs rhs
  | Binary (Lor, lhs, rhs) -> lower_short_circuit env b ~is_and:false lhs rhs
  | Binary (op, lhs, rhs) -> lower_binary env b op lhs rhs
  | Assign (lhs, rhs) ->
    let ptr, lcty = lvalue env b lhs in
    let v, rcty = rvalue env b rhs in
    let v = convert b v ~from:rcty ~into:lcty in
    Ir.Builder.store b v ptr;
    (v, lcty)
  | Op_assign (op, lhs, rhs) ->
    let ptr, lcty = lvalue env b lhs in
    let old = Ir.Builder.load b (ir_ty lcty) ptr in
    let result, _ = apply_binop env b op (old, lcty) (rvalue env b rhs) in
    let result = convert b result ~from:(promote lcty) ~into:lcty in
    Ir.Builder.store b result ptr;
    (result, lcty)
  | Incdec (order, delta, lhs) ->
    let ptr, lcty = lvalue env b lhs in
    let old = Ir.Builder.load b (ir_ty lcty) ptr in
    let updated =
      match lcty with
      | Ptr t ->
        Ir.Builder.gep b old (Ir.Ins.Const (Ir.Types.I64, Int64.of_int delta))
          (max 1 (cty_size t))
      | _ ->
        Ir.Builder.binop b Ir.Ins.Add (ir_ty lcty) old
          (Ir.Ins.Const (ir_ty lcty, Int64.of_int delta))
    in
    Ir.Builder.store b updated ptr;
    ((match order with `Pre -> updated | `Post -> old), lcty)
  | Cond (c, thn, els) ->
    let cond = as_cond b (rvalue env b c) in
    let then_l = Ir.Builder.declare_block b "tern.then" in
    let else_l = Ir.Builder.declare_block b "tern.else" in
    let join_l = Ir.Builder.declare_block b "tern.join" in
    Ir.Builder.cbr b cond then_l else_l;
    let then_blk = Ir.Builder.enter b then_l in
    ignore then_blk;
    let tv, tcty = rvalue env b thn in
    let result_cty = tcty in
    let tv_end = (Ir.Builder.current b).Ir.Func.label in
    Ir.Builder.br b join_l;
    let _ = Ir.Builder.enter b else_l in
    let ev, ecty = rvalue env b els in
    let ev = convert b ev ~from:ecty ~into:result_cty in
    let ev_end = (Ir.Builder.current b).Ir.Func.label in
    Ir.Builder.br b join_l;
    let _ = Ir.Builder.enter b join_l in
    let phi =
      Ir.Builder.phi b (ir_ty result_cty) [ (tv_end, tv); (ev_end, ev) ]
    in
    (phi, result_cty)
  | Call (Ident fname, args) when Hashtbl.mem env.sigs fname ->
    let fs = Hashtbl.find env.sigs fname in
    if List.length fs.lparams <> List.length args then
      fail "lower: wrong arity calling %s" fname;
    let lowered =
      List.map2
        (fun pcty arg ->
          let v, acty = rvalue env b arg in
          convert b v ~from:acty ~into:pcty)
        fs.lparams args
    in
    let rv = Ir.Builder.call b (ir_ty fs.lret) (Ir.Ins.Direct fname) lowered in
    (rv, fs.lret)
  | Call (callee, args) ->
    (* indirect call through a pointer; convention: int(...) *)
    let fv, _ = rvalue env b callee in
    let lowered = List.map (fun a -> fst (rvalue env b a)) args in
    let rv = Ir.Builder.call b Ir.Types.I32 (Ir.Ins.Indirect fv) lowered in
    (rv, Int)
  | Index (base, idx) -> (
    let bv, bcty = rvalue env b base in
    match bcty with
    | Ptr t | Array (t, _) ->
      let iv, icty = rvalue env b idx in
      let iv = convert b iv ~from:icty ~into:Long in
      let addr = Ir.Builder.gep b bv iv (max 1 (cty_size t)) in
      (Ir.Builder.load b (ir_ty t) addr, t)
    | _ -> fail "lower: indexing non-pointer")
  | Cast (ty, inner) ->
    let v, icty = rvalue env b inner in
    (convert b v ~from:icty ~into:ty, ty)

and lower_short_circuit env b ~is_and lhs rhs =
  let rhs_l = Ir.Builder.declare_block b (if is_and then "and.rhs" else "or.rhs") in
  let join_l = Ir.Builder.declare_block b (if is_and then "and.join" else "or.join") in
  let lv = as_cond b (rvalue env b lhs) in
  let lhs_end = (Ir.Builder.current b).Ir.Func.label in
  if is_and then Ir.Builder.cbr b lv rhs_l join_l
  else Ir.Builder.cbr b lv join_l rhs_l;
  let _ = Ir.Builder.enter b rhs_l in
  let rv = as_cond b (rvalue env b rhs) in
  let rhs_end = (Ir.Builder.current b).Ir.Func.label in
  Ir.Builder.br b join_l;
  let _ = Ir.Builder.enter b join_l in
  let short_value = Ir.Builder.i1 (not is_and) in
  let phi =
    Ir.Builder.phi b Ir.Types.I1 [ (lhs_end, short_value); (rhs_end, rv) ]
  in
  (Ir.Builder.cast b Ir.Ins.Zext Ir.Types.I32 phi, Int)

and apply_binop _env b op (lv, lcty) (rv, rcty) =
  match op with
  | Add when is_pointerish lcty ->
    let elem = element_ty lcty in
    let rv = convert b rv ~from:rcty ~into:Long in
    (Ir.Builder.gep b lv rv (max 1 (cty_size elem)), (match lcty with Array (t, _) -> Ptr t | t -> t))
  | Add when is_pointerish rcty ->
    let elem = element_ty rcty in
    let lv = convert b lv ~from:lcty ~into:Long in
    (Ir.Builder.gep b rv lv (max 1 (cty_size elem)), (match rcty with Array (t, _) -> Ptr t | t -> t))
  | Sub when is_pointerish lcty && is_integer rcty ->
    let elem = element_ty lcty in
    let rv = convert b rv ~from:rcty ~into:Long in
    let neg = Ir.Builder.binop b Ir.Ins.Sub Ir.Types.I64 (Ir.Ins.Const (Ir.Types.I64, 0L)) rv in
    (Ir.Builder.gep b lv neg (max 1 (cty_size elem)), (match lcty with Array (t, _) -> Ptr t | t -> t))
  | Sub when is_pointerish lcty && is_pointerish rcty ->
    let elem_size = max 1 (cty_size (element_ty lcty)) in
    let li = Ir.Builder.cast b Ir.Ins.Ptrtoint Ir.Types.I64 lv in
    let ri = Ir.Builder.cast b Ir.Ins.Ptrtoint Ir.Types.I64 rv in
    let diff = Ir.Builder.binop b Ir.Ins.Sub Ir.Types.I64 li ri in
    ( Ir.Builder.binop b Ir.Ins.Sdiv Ir.Types.I64 diff
        (Ir.Ins.Const (Ir.Types.I64, Int64.of_int elem_size)),
      Long )
  | Lt | Le | Gt | Ge | Eq | Ne ->
    let cty = if is_pointerish lcty || is_pointerish rcty then Long else common_cty lcty rcty in
    let conv v from =
      if is_pointerish from then Ir.Builder.cast b Ir.Ins.Ptrtoint Ir.Types.I64 v
      else convert b v ~from ~into:cty
    in
    let lv = conv lv lcty and rv = conv rv rcty in
    let pred =
      match op with
      | Lt -> Ir.Ins.Slt
      | Le -> Ir.Ins.Sle
      | Gt -> Ir.Ins.Sgt
      | Ge -> Ir.Ins.Sge
      | Eq -> Ir.Ins.Eq
      | Ne -> Ir.Ins.Ne
      | _ -> assert false
    in
    let c = Ir.Builder.icmp b pred lv rv in
    (Ir.Builder.cast b Ir.Ins.Zext Ir.Types.I32 c, Int)
  | Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr ->
    let cty = common_cty lcty rcty in
    let lv = convert b lv ~from:lcty ~into:cty in
    let rv = convert b rv ~from:rcty ~into:cty in
    let irop =
      match op with
      | Add -> Ir.Ins.Add
      | Sub -> Ir.Ins.Sub
      | Mul -> Ir.Ins.Mul
      | Div -> Ir.Ins.Sdiv
      | Mod -> Ir.Ins.Srem
      | Band -> Ir.Ins.And
      | Bor -> Ir.Ins.Or
      | Bxor -> Ir.Ins.Xor
      | Shl -> Ir.Ins.Shl
      | Shr -> Ir.Ins.Ashr
      | _ -> assert false
    in
    (Ir.Builder.binop b irop (ir_ty cty) lv rv, cty)
  | Land | Lor -> fail "lower: short-circuit handled elsewhere"

and lower_binary env b op lhs rhs =
  let l = rvalue env b lhs in
  let r = rvalue env b rhs in
  apply_binop env b op l r

(* Lower to an lvalue: (pointer value, pointee c type). *)
and lvalue env b e : Ir.Ins.value * cty =
  match e with
  | Ident name -> (
    match lookup_local env name with
    | Some (slot, cty) -> (slot, cty)
    | None -> (
      match Hashtbl.find_opt env.global_tys name with
      | Some cty -> (Ir.Ins.Global name, cty)
      | None -> fail "lower: undeclared lvalue %s" name))
  | Unary (Deref, inner) -> (
    let ptr, pcty = rvalue env b inner in
    match pcty with
    | Ptr t | Array (t, _) -> (ptr, t)
    | _ -> fail "lower: dereference of non-pointer lvalue")
  | Index (base, idx) -> (
    let bv, bcty = rvalue env b base in
    match bcty with
    | Ptr t | Array (t, _) ->
      let iv, icty = rvalue env b idx in
      let iv = convert b iv ~from:icty ~into:Long in
      (Ir.Builder.gep b bv iv (max 1 (cty_size t)), t)
    | _ -> fail "lower: indexing non-pointer lvalue")
  | Cast (ty, inner) ->
    let ptr, _ = lvalue env b inner in
    (ptr, ty)
  | _ -> fail "lower: expression is not an lvalue"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Does the current block already have a real terminator? The builder
   leaves Unreachable until a terminator is set. *)
let block_open b =
  match (Ir.Builder.current b).Ir.Func.term with
  | Ir.Ins.Unreachable -> true
  | _ -> false

let rec lower_stmt env b s =
  if block_open b then
    match s with
    | Sexpr e -> ignore (rvalue env b e)
    | Sdecl (cty, name, init) -> (
      let count = match cty with Array (_, n) -> max n 1 | _ -> 1 in
      let elem_cty = match cty with Array (t, _) -> t | t -> t in
      let slot = Ir.Builder.alloca b (ir_ty elem_cty) count in
      bind env name (slot, cty);
      match init with
      | None -> ()
      | Some (Iexpr e) ->
        let v, ecty = rvalue env b e in
        let v = convert b v ~from:ecty ~into:cty in
        Ir.Builder.store b v slot
      | Some (Ilist es) ->
        List.iteri
          (fun i e ->
            let v, ecty = rvalue env b e in
            let v = convert b v ~from:ecty ~into:elem_cty in
            let addr =
              Ir.Builder.gep b slot
                (Ir.Ins.Const (Ir.Types.I64, Int64.of_int i))
                (max 1 (cty_size elem_cty))
            in
            Ir.Builder.store b v addr)
          es
      | Some (Istring s) ->
        String.iteri
          (fun i c ->
            let addr =
              Ir.Builder.gep b slot (Ir.Ins.Const (Ir.Types.I64, Int64.of_int i)) 1
            in
            Ir.Builder.store b (Ir.Ins.Const (Ir.Types.I8, Int64.of_int (Char.code c))) addr)
          (s ^ "\x00"))
    | Sif (c, thn, els) ->
      let cond = as_cond b (rvalue env b c) in
      let then_l = Ir.Builder.declare_block b "if.then" in
      let else_l = Ir.Builder.declare_block b "if.else" in
      let end_l = Ir.Builder.declare_block b "if.end" in
      let has_else = els <> [] in
      Ir.Builder.cbr b cond then_l (if has_else then else_l else end_l);
      let _ = Ir.Builder.enter b then_l in
      lower_body env b thn;
      if block_open b then Ir.Builder.br b end_l;
      if has_else then begin
        let _ = Ir.Builder.enter b else_l in
        lower_body env b els;
        if block_open b then Ir.Builder.br b end_l
      end;
      ignore (Ir.Builder.enter b end_l)
    | Swhile (c, body) ->
      let cond_l = Ir.Builder.declare_block b "while.cond" in
      let body_l = Ir.Builder.declare_block b "while.body" in
      let end_l = Ir.Builder.declare_block b "while.end" in
      Ir.Builder.br b cond_l;
      let _ = Ir.Builder.enter b cond_l in
      let cond = as_cond b (rvalue env b c) in
      Ir.Builder.cbr b cond body_l end_l;
      let _ = Ir.Builder.enter b body_l in
      env.breaks <- end_l :: env.breaks;
      env.continues <- cond_l :: env.continues;
      lower_body env b body;
      env.breaks <- List.tl env.breaks;
      env.continues <- List.tl env.continues;
      if block_open b then Ir.Builder.br b cond_l;
      ignore (Ir.Builder.enter b end_l)
    | Sdo (body, c) ->
      let body_l = Ir.Builder.declare_block b "do.body" in
      let cond_l = Ir.Builder.declare_block b "do.cond" in
      let end_l = Ir.Builder.declare_block b "do.end" in
      Ir.Builder.br b body_l;
      let _ = Ir.Builder.enter b body_l in
      env.breaks <- end_l :: env.breaks;
      env.continues <- cond_l :: env.continues;
      lower_body env b body;
      env.breaks <- List.tl env.breaks;
      env.continues <- List.tl env.continues;
      if block_open b then Ir.Builder.br b cond_l;
      let _ = Ir.Builder.enter b cond_l in
      let cond = as_cond b (rvalue env b c) in
      Ir.Builder.cbr b cond body_l end_l;
      ignore (Ir.Builder.enter b end_l)
    | Sfor (init, cond, step, body) ->
      push_scope env;
      Option.iter (lower_stmt env b) init;
      let cond_l = Ir.Builder.declare_block b "for.cond" in
      let body_l = Ir.Builder.declare_block b "for.body" in
      let step_l = Ir.Builder.declare_block b "for.step" in
      let end_l = Ir.Builder.declare_block b "for.end" in
      Ir.Builder.br b cond_l;
      let _ = Ir.Builder.enter b cond_l in
      (match cond with
      | Some c ->
        let cv = as_cond b (rvalue env b c) in
        Ir.Builder.cbr b cv body_l end_l
      | None -> Ir.Builder.br b body_l);
      let _ = Ir.Builder.enter b body_l in
      env.breaks <- end_l :: env.breaks;
      env.continues <- step_l :: env.continues;
      lower_body env b body;
      env.breaks <- List.tl env.breaks;
      env.continues <- List.tl env.continues;
      if block_open b then Ir.Builder.br b step_l;
      let _ = Ir.Builder.enter b step_l in
      Option.iter (fun e -> ignore (rvalue env b e)) step;
      Ir.Builder.br b cond_l;
      ignore (Ir.Builder.enter b end_l);
      pop_scope env
    | Sswitch (scrut, cases, default) ->
      let sv, scty = rvalue env b scrut in
      let sv = convert b sv ~from:scty ~into:(promote scty) in
      let sty = ir_ty (promote scty) in
      let end_l = Ir.Builder.declare_block b "switch.end" in
      let case_labels =
        List.mapi (fun i _ -> Ir.Builder.declare_block b (Printf.sprintf "case.%d" i)) cases
      in
      let default_l =
        match default with
        | Some _ -> Ir.Builder.declare_block b "switch.default"
        | None -> end_l
      in
      let table =
        List.concat
          (List.map2
             (fun c l ->
               List.map (fun v -> (Ir.Types.normalize sty v, l)) c.case_values)
             cases case_labels)
      in
      Ir.Builder.switch b sv default_l table;
      env.breaks <- end_l :: env.breaks;
      (* case bodies with C fall-through semantics *)
      let rec emit_cases cases labels =
        match (cases, labels) with
        | [], [] -> ()
        | c :: rest_cases, l :: rest_labels ->
          let _ = Ir.Builder.enter b l in
          lower_body env b c.case_body;
          if block_open b then begin
            (* fall through to the next case, default, or end *)
            let next =
              match rest_labels with
              | n :: _ -> n
              | [] -> ( match default with Some _ -> default_l | None -> end_l)
            in
            Ir.Builder.br b next
          end;
          emit_cases rest_cases rest_labels
        | _ -> assert false
      in
      emit_cases cases case_labels;
      (match default with
      | Some body ->
        let _ = Ir.Builder.enter b default_l in
        lower_body env b body;
        if block_open b then Ir.Builder.br b end_l
      | None -> ());
      env.breaks <- List.tl env.breaks;
      ignore (Ir.Builder.enter b end_l)
    | Sbreak -> (
      match env.breaks with
      | l :: _ -> Ir.Builder.br b l
      | [] -> fail "lower: break outside loop/switch")
    | Scontinue -> (
      match env.continues with
      | l :: _ -> Ir.Builder.br b l
      | [] -> fail "lower: continue outside loop")
    | Sreturn None -> Ir.Builder.ret b None
    | Sreturn (Some e) ->
      let v, ecty = rvalue env b e in
      let v = convert b v ~from:ecty ~into:env.ret_ty in
      Ir.Builder.ret b (Some v)
    | Sblock body -> lower_body env b body

and lower_body env b stmts =
  push_scope env;
  List.iter (lower_stmt env b) stmts;
  pop_scope env

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let const_int_of_expr = function
  | Int_lit v -> v
  | Unary (Neg, Int_lit v) -> Int64.neg v
  | _ -> fail "lower: global initializer element must be a constant"

let lower_global env (v : var_decl) =
  let linkage = if v.vstatic then Ir.Func.Internal else Ir.Func.External in
  let init =
    if v.vextern && v.vinit = None then Ir.Modul.Extern
    else
      match (v.vty, v.vinit) with
      | Array (Char, n), Some (Istring s) ->
        let data = s ^ "\x00" in
        let n = if n < 0 then String.length data else n in
        let padded =
          if String.length data >= n then String.sub data 0 n
          else data ^ String.make (n - String.length data) '\x00'
        in
        Ir.Modul.Bytes padded
      | Array (et, n), Some (Ilist es) when is_integer et ->
        let ws = List.map const_int_of_expr es in
        let n = if n < 0 then List.length ws else n in
        let padded =
          if List.length ws >= n then ws
          else ws @ List.init (n - List.length ws) (fun _ -> 0L)
        in
        Ir.Modul.Words (ir_ty et, List.map (Ir.Types.normalize (ir_ty et)) padded)
      | Array (Ptr _, n), Some (Ilist es) ->
        let syms =
          List.map
            (function
              | Ident f -> f
              | Unary (Addr, Ident g) -> g
              | Str_lit s -> intern_string env s
              | _ -> fail "lower: pointer table entries must name symbols")
            es
        in
        let n = if n < 0 then List.length syms else n in
        ignore n;
        Ir.Modul.Symbols syms
      | Ptr _, Some (Iexpr (Ident f)) -> Ir.Modul.Symbols [ f ]
      | Ptr _, Some (Iexpr (Unary (Addr, Ident g))) -> Ir.Modul.Symbols [ g ]
      | Ptr _, Some (Iexpr (Str_lit s)) -> Ir.Modul.Symbols [ intern_string env s ]
      | ty, Some (Iexpr e) when is_integer ty ->
        Ir.Modul.Words (ir_ty ty, [ Ir.Types.normalize (ir_ty ty) (const_int_of_expr e) ])
      | ty, None -> Ir.Modul.Zero (max 1 (cty_size ty))
      | _ -> fail "lower: unsupported global initializer for %s" v.vname
  in
  ignore (Ir.Modul.add_var env.m ~linkage ~const:v.vconst ~name:v.vname init)

let lower_function env (f : func_decl) =
  match f.fbody with
  | None ->
    ignore
      (Ir.Modul.declare_function env.m ~name:f.fname
         ~params:(List.map (fun (ct, p) -> (ir_ty ct, p)) f.fparams)
         ~ret:(ir_ty f.fret))
  | Some body ->
    let linkage = if f.fstatic then Ir.Func.Internal else Ir.Func.External in
    let fn =
      Ir.Modul.add_function env.m ~linkage ~name:f.fname
        ~params:(List.map (fun (ct, p) -> (ir_ty ct, p)) f.fparams)
        ~ret:(ir_ty f.fret) []
    in
    let b = Ir.Builder.create fn in
    let _ = Ir.Builder.new_block b "entry" in
    env.ret_ty <- f.fret;
    env.scopes <- [];
    push_scope env;
    (* spill parameters to allocas; mem2reg lifts them back *)
    List.iter
      (fun (cty, p) ->
        let slot = Ir.Builder.alloca b (ir_ty cty) 1 in
        Ir.Builder.store b (Ir.Ins.Reg (ir_ty cty, p)) slot;
        bind env p (slot, cty))
      f.fparams;
    lower_body env b body;
    if block_open b then
      if f.fret = Void then Ir.Builder.ret b None
      else Ir.Builder.ret b (Some (Ir.Ins.Const (ir_ty f.fret, 0L)))

(** Lower a checked program to a fresh IR module. *)
let lower_program ?(name = "program") (prog : program) =
  let m = Ir.Modul.create ~name () in
  let env =
    {
      m;
      sigs = Hashtbl.create 64;
      global_tys = Hashtbl.create 64;
      strings = Hashtbl.create 64;
      string_count = 0;
      scopes = [];
      breaks = [];
      continues = [];
      ret_ty = Void;
    }
  in
  List.iter
    (function
      | Tfunc f ->
        Hashtbl.replace env.sigs f.fname
          { lret = f.fret; lparams = List.map fst f.fparams }
      | Tvar v -> Hashtbl.replace env.global_tys v.vname v.vty)
    prog;
  (* globals first so functions can reference them *)
  List.iter (function Tvar v -> lower_global env v | Tfunc _ -> ()) prog;
  List.iter (function Tfunc f -> lower_function env f | Tvar _ -> ()) prog;
  m

(** Front-end driver: source text to verified IR module. *)
let compile ?(name = "program") src =
  let prog = Parser.parse_program src in
  (match Typecheck.check prog with
  | [] -> ()
  | errors -> fail "type errors:\n%s" (String.concat "\n" errors));
  let m = lower_program ~name prog in
  Ir.Verify.run_exn m;
  m
