(** Hand-rolled lexer for the mini-C subset. *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  | KW of string  (** keyword *)
  | PUNCT of string  (** operator or punctuation, longest-match *)
  | EOF

type loc = { line : int; col : int }

type lexed = { tok : token; loc : loc }

exception Lex_error of string

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "if"; "else"; "while"; "do";
    "for"; "switch"; "case"; "default"; "break"; "continue"; "return";
    "static"; "const"; "extern"; "unsigned"; "signed";
  ]

let two_char_ops =
  [
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--";
  ]

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok = out := { tok; loc = { line = !line; col = !col } } :: !out in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let error fmt =
    Printf.ksprintf
      (fun s -> raise (Lex_error (Printf.sprintf "line %d: %s" !line s)))
      fmt
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do advance 1 done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance 2;
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then error "unterminated comment"
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let d = src.[!i] in
        (d >= 'a' && d <= 'z') || (d >= 'A' && d <= 'Z') || (d >= '0' && d <= '9') || d = '_'
      do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      push (if List.mem word keywords then KW word else IDENT word)
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance 2;
        while
          !i < n
          &&
          let d = src.[!i] in
          (d >= '0' && d <= '9') || (d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F')
        do
          advance 1
        done
      end
      else
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do advance 1 done;
      let text = String.sub src start (!i - start) in
      (match Int64.of_string_opt text with
      | Some v -> push (INT v)
      | None -> error "bad integer literal %S" text)
    end
    else if c = '\'' then begin
      advance 1;
      let v =
        if !i < n && src.[!i] = '\\' then begin
          advance 1;
          let e = if !i < n then src.[!i] else ' ' in
          advance 1;
          match e with
          | 'n' -> 10
          | 't' -> 9
          | 'r' -> 13
          | '0' -> 0
          | '\\' -> 92
          | '\'' -> 39
          | '"' -> 34
          | other -> Char.code other
        end
        else begin
          let v = if !i < n then Char.code src.[!i] else 0 in
          advance 1;
          v
        end
      in
      if !i >= n || src.[!i] <> '\'' then error "unterminated char literal";
      advance 1;
      push (INT (Int64.of_int v))
    end
    else if c = '"' then begin
      advance 1;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '"' then begin
          advance 1;
          closed := true
        end
        else if src.[!i] = '\\' then begin
          advance 1;
          let e = if !i < n then src.[!i] else ' ' in
          advance 1;
          Buffer.add_char buf
            (match e with
            | 'n' -> '\n'
            | 't' -> '\t'
            | 'r' -> '\r'
            | '0' -> '\x00'
            | other -> other)
        end
        else begin
          Buffer.add_char buf src.[!i];
          advance 1
        end
      done;
      if not !closed then error "unterminated string literal";
      push (STRING (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some op when List.mem op two_char_ops ->
        push (PUNCT op);
        advance 2
      | _ ->
        let single = String.make 1 c in
        if String.contains "+-*/%<>=!&|^~?:;,(){}[]." c then begin
          push (PUNCT single);
          advance 1
        end
        else error "unexpected character %C" c
    end
  done;
  push EOF;
  List.rev !out
