(** Semantic checking for mini-C: identifier resolution, call arity,
    lvalue positions, break/continue placement, and loose type
    compatibility (integers convert freely among themselves; pointers
    only mix with pointers of any element type or integer 0).

    Runs before lowering; {!Lower} assumes a checked program. *)

open Ast

type fsig = { sret : cty; sparams : cty list }

type env = {
  funcs : (string, fsig) Hashtbl.t;
  globals : (string, cty) Hashtbl.t;
  mutable locals : (string * cty) list list;  (** scope stack *)
  mutable errors : string list;
  mutable loop_depth : int;
  mutable switch_depth : int;
  mutable current_ret : cty;
}

let error env fmt = Printf.ksprintf (fun s -> env.errors <- s :: env.errors) fmt

let push_scope env = env.locals <- [] :: env.locals

let pop_scope env =
  match env.locals with [] -> () | _ :: rest -> env.locals <- rest

let declare_local env name ty =
  match env.locals with
  | scope :: rest ->
    if List.mem_assoc name scope then error env "redeclaration of %s" name;
    env.locals <- ((name, ty) :: scope) :: rest
  | [] -> env.locals <- [ [ (name, ty) ] ]

let lookup env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some ty -> Some ty
      | None -> in_scopes rest)
  in
  match in_scopes env.locals with
  | Some ty -> Some ty
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some ty -> Some ty
    | None -> (
      match Hashtbl.find_opt env.funcs name with
      | Some fs -> Some (Ptr fs.sret) (* function designator, loosely *)
      | None -> None))

let rec is_lvalue = function
  | Ident _ -> true
  | Index _ -> true
  | Unary (Deref, _) -> true
  | Cast (_, e) -> is_lvalue e
  | _ -> false

let compatible a b =
  match (a, b) with
  | x, y when x = y -> true
  | (Char | Short | Int | Long), (Char | Short | Int | Long) -> true
  | (Ptr _ | Array _), (Ptr _ | Array _) -> true
  | (Ptr _ | Array _), (Char | Short | Int | Long) -> true (* ptr = 0, p + i *)
  | (Char | Short | Int | Long), (Ptr _ | Array _) -> true
  | _ -> false

let rec check_expr env e =
  match e with
  | Int_lit _ -> Int
  | Str_lit _ -> Ptr Char
  | Ident name -> (
    match lookup env name with
    | Some ty -> ty
    | None ->
      error env "use of undeclared identifier %s" name;
      Int)
  | Unary (op, inner) -> (
    let ity = check_expr env inner in
    match op with
    | Neg | Bnot | Lnot ->
      if not (is_integer ity) && not (is_pointerish ity) then
        error env "unary operator on non-scalar %s" (cty_to_string ity);
      if op = Lnot then Int else ity
    | Deref -> (
      match ity with
      | Ptr t | Array (t, _) -> t
      | _ ->
        error env "dereference of non-pointer %s" (cty_to_string ity);
        Int)
    | Addr ->
      if not (is_lvalue inner) then error env "address of non-lvalue";
      Ptr ity)
  | Binary (op, a, b) -> (
    let ta = check_expr env a in
    let tb = check_expr env b in
    if not (compatible ta tb) then
      error env "incompatible operands %s and %s" (cty_to_string ta) (cty_to_string tb);
    match op with
    | Lt | Le | Gt | Ge | Eq | Ne | Land | Lor -> Int
    | Add | Sub when is_pointerish ta -> ta
    | _ -> if cty_size ta >= cty_size tb then ta else tb)
  | Assign (lhs, rhs) ->
    if not (is_lvalue lhs) then error env "assignment to non-lvalue";
    let tl = check_expr env lhs in
    let tr = check_expr env rhs in
    if not (compatible tl tr) then
      error env "assigning %s to %s" (cty_to_string tr) (cty_to_string tl);
    tl
  | Op_assign (_, lhs, rhs) ->
    if not (is_lvalue lhs) then error env "assignment to non-lvalue";
    let tl = check_expr env lhs in
    ignore (check_expr env rhs);
    tl
  | Incdec (_, _, lhs) ->
    if not (is_lvalue lhs) then error env "++/-- on non-lvalue";
    check_expr env lhs
  | Cond (c, a, b) ->
    ignore (check_expr env c);
    let ta = check_expr env a in
    let tb = check_expr env b in
    if not (compatible ta tb) then error env "incompatible ternary arms";
    if cty_size ta >= cty_size tb then ta else tb
  | Call (Ident fname, args) -> (
    match Hashtbl.find_opt env.funcs fname with
    | Some fs ->
      if List.length fs.sparams <> List.length args then
        error env "call to %s with %d args, expected %d" fname (List.length args)
          (List.length fs.sparams);
      List.iteri
        (fun i arg ->
          let ta = check_expr env arg in
          match List.nth_opt fs.sparams i with
          | Some tp when not (compatible tp ta) ->
            error env "argument %d of %s: %s given, %s expected" (i + 1) fname
              (cty_to_string ta) (cty_to_string tp)
          | _ -> ())
        args;
      fs.sret
    | None -> (
      (* indirect call through a variable of pointer type *)
      match lookup env fname with
      | Some (Ptr _) ->
        List.iter (fun a -> ignore (check_expr env a)) args;
        Long
      | _ ->
        error env "call to undeclared function %s" fname;
        Int))
  | Call (f, args) ->
    ignore (check_expr env f);
    List.iter (fun a -> ignore (check_expr env a)) args;
    Long
  | Index (base, idx) -> (
    let tb = check_expr env base in
    let ti = check_expr env idx in
    if not (is_integer ti) then error env "array index must be an integer";
    match tb with
    | Ptr t | Array (t, _) -> t
    | _ ->
      error env "indexing non-pointer %s" (cty_to_string tb);
      Int)
  | Cast (ty, inner) ->
    ignore (check_expr env inner);
    ty

let rec check_stmt env s =
  match s with
  | Sexpr e -> ignore (check_expr env e)
  | Sdecl (ty, name, init) -> (
    declare_local env name ty;
    match init with
    | Some (Iexpr e) ->
      let te = check_expr env e in
      if not (compatible ty te) then
        error env "initializing %s with %s" (cty_to_string ty) (cty_to_string te)
    | Some (Ilist es) -> List.iter (fun e -> ignore (check_expr env e)) es
    | Some (Istring _) | None -> ())
  | Sif (c, t, e) ->
    ignore (check_expr env c);
    check_body env t;
    check_body env e
  | Swhile (c, body) ->
    ignore (check_expr env c);
    env.loop_depth <- env.loop_depth + 1;
    check_body env body;
    env.loop_depth <- env.loop_depth - 1
  | Sdo (body, c) ->
    env.loop_depth <- env.loop_depth + 1;
    check_body env body;
    env.loop_depth <- env.loop_depth - 1;
    ignore (check_expr env c)
  | Sfor (init, cond, step, body) ->
    push_scope env;
    Option.iter (check_stmt env) init;
    Option.iter (fun c -> ignore (check_expr env c)) cond;
    Option.iter (fun c -> ignore (check_expr env c)) step;
    env.loop_depth <- env.loop_depth + 1;
    check_body env body;
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env
  | Sswitch (scrut, cases, default) ->
    let ts = check_expr env scrut in
    if not (is_integer ts) then error env "switch on non-integer";
    let seen = Hashtbl.create 16 in
    env.switch_depth <- env.switch_depth + 1;
    List.iter
      (fun c ->
        List.iter
          (fun v ->
            if Hashtbl.mem seen v then error env "duplicate case %Ld" v;
            Hashtbl.replace seen v ())
          c.case_values;
        check_body env c.case_body)
      cases;
    Option.iter (check_body env) default;
    env.switch_depth <- env.switch_depth - 1
  | Sbreak ->
    if env.loop_depth = 0 && env.switch_depth = 0 then
      error env "break outside loop or switch"
  | Scontinue -> if env.loop_depth = 0 then error env "continue outside loop"
  | Sreturn None ->
    if env.current_ret <> Void then error env "return without value"
  | Sreturn (Some e) ->
    let te = check_expr env e in
    if env.current_ret = Void then error env "return with value in void function"
    else if not (compatible env.current_ret te) then
      error env "returning %s from function returning %s" (cty_to_string te)
        (cty_to_string env.current_ret)
  | Sblock body -> check_body env body

and check_body env body =
  push_scope env;
  List.iter (check_stmt env) body;
  pop_scope env

(** Check a whole program; returns the list of errors (empty = OK). *)
let check (prog : program) =
  let env =
    {
      funcs = Hashtbl.create 64;
      globals = Hashtbl.create 64;
      locals = [];
      errors = [];
      loop_depth = 0;
      switch_depth = 0;
      current_ret = Void;
    }
  in
  (* Collect signatures first: mini-C allows forward references among
     top-level definitions like real C with prototypes. *)
  List.iter
    (function
      | Tfunc f ->
        Hashtbl.replace env.funcs f.fname
          { sret = f.fret; sparams = List.map fst f.fparams }
      | Tvar v -> Hashtbl.replace env.globals v.vname v.vty)
    prog;
  List.iter
    (function
      | Tfunc { fbody = None; _ } -> ()
      | Tfunc f ->
        env.current_ret <- f.fret;
        push_scope env;
        List.iter (fun (ty, p) -> declare_local env p ty) f.fparams;
        check_body env (Option.get f.fbody);
        pop_scope env
      | Tvar v -> (
        match v.vinit with
        | Some (Iexpr (Int_lit _ | Str_lit _)) | Some (Ilist _) | Some (Istring _) | None
          ->
          ()
        | Some (Iexpr (Unary (Neg, Int_lit _))) -> ()
        | Some (Iexpr (Unary (Addr, Ident _))) -> ()
        | Some (Iexpr (Ident name)) ->
          (* allowed when it names a function (pointer table entry) *)
          if not (Hashtbl.mem env.funcs name) then
            error env "global initializer for %s must be constant" v.vname
        | Some (Iexpr _) ->
          error env "global initializer for %s must be constant" v.vname))
    prog;
  List.rev env.errors
