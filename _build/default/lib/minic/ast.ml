(** Abstract syntax for the mini-C frontend.

    The subset covers what the paper's workloads and case studies need:
    signed integer types, pointers, one-dimensional arrays, string
    literals, the full statement repertoire (if/while/do/for/switch),
    short-circuit booleans, and function definitions with internal
    (static) or external linkage. Structs, floats and varargs are out of
    scope — no experiment depends on them. *)

type cty =
  | Void
  | Char
  | Short
  | Int
  | Long
  | Ptr of cty
  | Array of cty * int

type unop =
  | Neg
  | Lnot  (** ! *)
  | Bnot  (** ~ *)
  | Deref
  | Addr

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** && — short-circuit *)
  | Lor  (** || — short-circuit *)

type expr =
  | Int_lit of int64
  | Str_lit of string
  | Ident of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of expr * expr
  | Op_assign of binop * expr * expr
  | Incdec of [ `Pre | `Post ] * int * expr  (** +1 / -1 *)
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | Index of expr * expr
  | Cast of cty * expr

type init = Iexpr of expr | Ilist of expr list | Istring of string

type stmt =
  | Sexpr of expr
  | Sdecl of cty * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sswitch of expr * switch_case list * stmt list option
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of stmt list

and switch_case = { case_values : int64 list; case_body : stmt list }

type func_decl = {
  fname : string;
  fstatic : bool;
  fret : cty;
  fparams : (cty * string) list;
  fbody : stmt list option;  (** None = prototype *)
}

type var_decl = {
  vname : string;
  vstatic : bool;
  vconst : bool;
  vextern : bool;
  vty : cty;
  vinit : init option;
}

type top = Tfunc of func_decl | Tvar of var_decl

type program = top list

let rec cty_to_string = function
  | Void -> "void"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Ptr t -> cty_to_string t ^ "*"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (cty_to_string t) n

(** Size in bytes of a value of this C type. *)
let rec cty_size = function
  | Void -> 0
  | Char -> 1
  | Short -> 2
  | Int -> 4
  | Long -> 8
  | Ptr _ -> 8
  | Array (t, n) -> cty_size t * n

(** The IR type a value of this C type occupies in a register. Arrays
    decay to pointers. *)
let ir_ty = function
  | Void -> Ir.Types.Void
  | Char -> Ir.Types.I8
  | Short -> Ir.Types.I16
  | Int -> Ir.Types.I32
  | Long -> Ir.Types.I64
  | Ptr _ -> Ir.Types.Ptr
  | Array _ -> Ir.Types.Ptr

let is_pointerish = function Ptr _ | Array _ -> true | _ -> false
let is_integer = function Char | Short | Int | Long -> true | _ -> false

(** Element type for pointer arithmetic and indexing. *)
let element_ty = function
  | Ptr t -> t
  | Array (t, _) -> t
  | t -> invalid_arg ("element_ty: " ^ cty_to_string t)
