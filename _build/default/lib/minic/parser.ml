(** Recursive-descent parser for the mini-C subset. *)

open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.lexed list }

let error st fmt =
  let loc =
    match st.toks with
    | { Lexer.loc; _ } :: _ -> Printf.sprintf "line %d" loc.Lexer.line
    | [] -> "eof"
  in
  Printf.ksprintf (fun s -> raise (Parse_error (loc ^ ": " ^ s))) fmt

let peek st =
  match st.toks with [] -> Lexer.EOF | { Lexer.tok; _ } :: _ -> tok

let peek2 st =
  match st.toks with
  | _ :: { Lexer.tok; _ } :: _ -> tok
  | _ -> Lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q ->
    advance st;
    true
  | _ -> false

let expect_punct st p =
  if not (eat_punct st p) then error st "expected %S" p

let eat_kw st k =
  match peek st with
  | Lexer.KW q when String.equal k q ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> error st "expected identifier"

(* adjacent string literals concatenate, as in C *)
let gather_adjacent_strings st =
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Lexer.STRING s ->
      advance st;
      Buffer.add_string buf s;
      go ()
    | _ -> ()
  in
  go ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let is_type_start st =
  match peek st with
  | Lexer.KW ("void" | "char" | "short" | "int" | "long" | "unsigned" | "signed"
             | "const" | "static" | "extern") ->
    true
  | _ -> false

(* Base type with optional sign keywords (sign is accepted and ignored:
   our integers are uniformly signed, which the workloads rely on). *)
let parse_base_type st =
  let _ = eat_kw st "unsigned" || eat_kw st "signed" in
  if eat_kw st "void" then Void
  else if eat_kw st "char" then Char
  else if eat_kw st "short" then Short
  else if eat_kw st "int" then Int
  else if eat_kw st "long" then begin
    let _ = eat_kw st "long" in
    let _ = eat_kw st "int" in
    Long
  end
  else if eat_kw st "unsigned" || eat_kw st "signed" then Int
  else (* bare unsigned/signed = int *) Int

let parse_pointers st ty =
  let ty = ref ty in
  while eat_punct st "*" do
    ty := Ptr !ty;
    ignore (eat_kw st "const")
  done;
  !ty

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

let binop_of_punct = function
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "&" -> Some (Band, 5)
  | "^" -> Some (Bxor, 4)
  | "|" -> Some (Bor, 3)
  | "&&" -> Some (Land, 2)
  | "||" -> Some (Lor, 1)
  | _ -> None

let op_assign_of_punct = function
  | "+=" -> Some Add
  | "-=" -> Some Sub
  | "*=" -> Some Mul
  | "/=" -> Some Div
  | "%=" -> Some Mod
  | "&=" -> Some Band
  | "|=" -> Some Bor
  | "^=" -> Some Bxor
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Lexer.PUNCT "=" ->
    advance st;
    Assign (lhs, parse_assign st)
  | Lexer.PUNCT p -> (
    match op_assign_of_punct p with
    | Some op ->
      advance st;
      Op_assign (op, lhs, parse_assign st)
    | None -> lhs)
  | _ -> lhs

and parse_ternary st =
  let cond = parse_binary st 1 in
  if eat_punct st "?" then begin
    let thn = parse_expr st in
    expect_punct st ":";
    let els = parse_ternary st in
    Cond (cond, thn, els)
  end
  else cond

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Binary (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    advance st;
    Unary (Neg, parse_unary st)
  | Lexer.PUNCT "!" ->
    advance st;
    Unary (Lnot, parse_unary st)
  | Lexer.PUNCT "~" ->
    advance st;
    Unary (Bnot, parse_unary st)
  | Lexer.PUNCT "*" ->
    advance st;
    Unary (Deref, parse_unary st)
  | Lexer.PUNCT "&" ->
    advance st;
    Unary (Addr, parse_unary st)
  | Lexer.PUNCT "++" ->
    advance st;
    Incdec (`Pre, 1, parse_unary st)
  | Lexer.PUNCT "--" ->
    advance st;
    Incdec (`Pre, -1, parse_unary st)
  | Lexer.PUNCT "(" when is_cast_ahead st ->
    advance st;
    let ty = parse_pointers st (parse_base_type st) in
    expect_punct st ")";
    Cast (ty, parse_unary st)
  | _ -> parse_postfix st

and is_cast_ahead st =
  (* "(" already peeked; a cast iff the next token is a type keyword *)
  match peek2 st with
  | Lexer.KW ("void" | "char" | "short" | "int" | "long" | "unsigned" | "signed") ->
    true
  | _ -> false

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if eat_punct st "(" then begin
      let args = ref [] in
      if not (eat_punct st ")") then begin
        let rec loop () =
          args := parse_expr st :: !args;
          if eat_punct st "," then loop () else expect_punct st ")"
        in
        loop ()
      end;
      e := Call (!e, List.rev !args)
    end
    else if eat_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      e := Index (!e, idx)
    end
    else if eat_punct st "++" then e := Incdec (`Post, 1, !e)
    else if eat_punct st "--" then e := Incdec (`Post, -1, !e)
    else continue_ := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT v ->
    advance st;
    Int_lit v
  | Lexer.STRING s ->
    advance st;
    (* adjacent string literal concatenation *)
    let buf = Buffer.create (String.length s) in
    Buffer.add_string buf s;
    let rec more () =
      match peek st with
      | Lexer.STRING s2 ->
        advance st;
        Buffer.add_string buf s2;
        more ()
      | _ -> ()
    in
    more ();
    Str_lit (Buffer.contents buf)
  | Lexer.IDENT name ->
    advance st;
    Ident name
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | _ -> error st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st =
  match peek st with
  | Lexer.PUNCT "{" -> Sblock (parse_block st)
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let thn = parse_stmt_as_list st in
    let els = if eat_kw st "else" then parse_stmt_as_list st else [] in
    Sif (cond, thn, els)
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    Swhile (cond, parse_stmt_as_list st)
  | Lexer.KW "do" ->
    advance st;
    let body = parse_stmt_as_list st in
    if not (eat_kw st "while") then error st "expected 'while' after do-body";
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    Sdo (body, cond)
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if eat_punct st ";" then None
      else begin
        let s =
          if is_type_start st then parse_local_decl st else Sexpr (parse_expr st)
        in
        (match s with Sdecl _ -> () | _ -> expect_punct st ";");
        Some s
      end
    in
    let cond = if eat_punct st ";" then None else begin
      let e = parse_expr st in
      expect_punct st ";";
      Some e
    end
    in
    let step = if eat_punct st ")" then None else begin
      let e = parse_expr st in
      expect_punct st ")";
      Some e
    end
    in
    Sfor (init, cond, step, parse_stmt_as_list st)
  | Lexer.KW "switch" ->
    advance st;
    expect_punct st "(";
    let scrut = parse_expr st in
    expect_punct st ")";
    expect_punct st "{";
    let cases = ref [] in
    let default = ref None in
    let rec parse_cases () =
      match peek st with
      | Lexer.PUNCT "}" -> advance st
      | Lexer.KW "case" ->
        let values = ref [] in
        let rec labels () =
          if eat_kw st "case" then begin
            (match parse_expr st with
            | Int_lit v -> values := v :: !values
            | Unary (Neg, Int_lit v) -> values := Int64.neg v :: !values
            | _ -> error st "case label must be an integer constant");
            expect_punct st ":";
            labels ()
          end
          else if eat_kw st "default" then begin
            expect_punct st ":";
            default := Some [];
            labels ()
          end
        in
        labels ();
        let body = parse_case_body st in
        (* if default was declared among these labels, share the body *)
        (match !default with Some [] -> default := Some body | _ -> ());
        cases := { case_values = List.rev !values; case_body = body } :: !cases;
        parse_cases ()
      | Lexer.KW "default" ->
        advance st;
        expect_punct st ":";
        default := Some (parse_case_body st);
        parse_cases ()
      | _ -> error st "expected case/default/}"
    and parse_case_body st' =
      let body = ref [] in
      let rec loop () =
        match peek st' with
        | Lexer.KW ("case" | "default") | Lexer.PUNCT "}" -> ()
        | _ ->
          body := parse_stmt st' :: !body;
          loop ()
      in
      loop ();
      List.rev !body
    in
    parse_cases ();
    Sswitch (scrut, List.rev !cases, !default)
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    Sbreak
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    Scontinue
  | Lexer.KW "return" ->
    advance st;
    if eat_punct st ";" then Sreturn None
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Sreturn (Some e)
    end
  | _ when is_type_start st -> parse_local_decl st
  | Lexer.PUNCT ";" ->
    advance st;
    Sblock []
  | _ ->
    let e = parse_expr st in
    expect_punct st ";";
    Sexpr e

and parse_stmt_as_list st =
  match parse_stmt st with Sblock ss -> ss | s -> [ s ]

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (eat_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_local_decl st =
  let _ = eat_kw st "static" in
  let _ = eat_kw st "const" in
  let base = parse_base_type st in
  let ty = parse_pointers st base in
  let name = expect_ident st in
  let ty =
    if eat_punct st "[" then begin
      match peek st with
      | Lexer.INT n ->
        advance st;
        expect_punct st "]";
        Array (ty, Int64.to_int n)
      | _ -> error st "expected array size"
    end
    else ty
  in
  let init =
    if eat_punct st "=" then
      Some
        (if eat_punct st "{" then begin
           let elems = ref [] in
           if not (eat_punct st "}") then begin
             let rec loop () =
               elems := parse_expr st :: !elems;
               if eat_punct st "," then begin
                 if not (eat_punct st "}") then loop ()
               end
               else expect_punct st "}"
             in
             loop ()
           end;
           Ilist (List.rev !elems)
         end
         else
           match peek st with
           | Lexer.STRING s when (match ty with Array (Char, _) -> true | _ -> false) ->
             advance st;
             Istring (s ^ gather_adjacent_strings st)
           | _ -> Iexpr (parse_expr st))
    else None
  in
  expect_punct st ";";
  Sdecl (ty, name, init)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_top st =
  let static = eat_kw st "static" in
  let const = eat_kw st "const" in
  let extern = eat_kw st "extern" in
  let const = const || eat_kw st "const" in
  let base = parse_base_type st in
  let ty = parse_pointers st base in
  let name = expect_ident st in
  if eat_punct st "(" then begin
    (* function *)
    let params = ref [] in
    if not (eat_punct st ")") then begin
      if eat_kw st "void" && peek st = Lexer.PUNCT ")" then ignore (eat_punct st ")")
      else begin
        let rec loop idx =
          let pbase = parse_base_type st in
          let pty = parse_pointers st pbase in
          let pname =
            match peek st with
            | Lexer.IDENT n ->
              advance st;
              n
            | _ -> Printf.sprintf "arg%d" idx
          in
          (* array parameters decay to pointers *)
          let pty =
            if eat_punct st "[" then begin
              (match peek st with Lexer.INT _ -> advance st | _ -> ());
              expect_punct st "]";
              Ptr pty
            end
            else pty
          in
          params := (pty, pname) :: !params;
          if eat_punct st "," then loop (idx + 1) else expect_punct st ")"
        in
        loop 0
      end
    end;
    let body =
      if eat_punct st ";" then None else Some (parse_block st)
    in
    Tfunc { fname = name; fstatic = static; fret = ty; fparams = List.rev !params; fbody = body }
  end
  else begin
    (* global variable *)
    let ty =
      if eat_punct st "[" then
        match peek st with
        | Lexer.INT n ->
          advance st;
          expect_punct st "]";
          Array (ty, Int64.to_int n)
        | Lexer.PUNCT "]" ->
          advance st;
          Array (ty, -1) (* size from initializer *)
        | _ -> error st "expected array size"
      else ty
    in
    let init =
      if eat_punct st "=" then
        Some
          (if eat_punct st "{" then begin
             let elems = ref [] in
             if not (eat_punct st "}") then begin
               let rec loop () =
                 elems := parse_expr st :: !elems;
                 if eat_punct st "," then begin
                   if not (eat_punct st "}") then loop ()
                 end
                 else expect_punct st "}"
               in
               loop ()
             end;
             Ilist (List.rev !elems)
           end
           else
             match peek st with
             | Lexer.STRING s ->
               advance st;
               Istring (s ^ gather_adjacent_strings st)
             | _ -> Iexpr (parse_expr st))
      else None
    in
    expect_punct st ";";
    Tvar { vname = name; vstatic = static; vconst = const; vextern = extern; vty = ty; vinit = init }
  end

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let tops = ref [] in
  while peek st <> Lexer.EOF do
    tops := parse_top st :: !tops
  done;
  List.rev !tops
