lib/minic/parser.ml: Ast Buffer Int64 Lexer List Printf String
