lib/minic/ast.ml: Ir Printf
