lib/minic/lexer.ml: Buffer Char Int64 List Printf String
