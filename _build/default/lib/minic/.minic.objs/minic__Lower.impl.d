lib/minic/lower.ml: Ast Char Hashtbl Int64 Ir List Option Parser Printf String Typecheck
