lib/minic/typecheck.ml: Ast Hashtbl List Option Printf
