(** The linker: combines object files into an executable image, with
    strong-symbol resolution, COMDAT folding (first definition wins),
    address assignment, absolute data relocations, alias resolution, and
    host-symbol binding for runtime-provided functions. *)

exception Link_error of string

type exe = {
  funcs : (string, Codegen.Mach.mfunc) Hashtbl.t;
  sym_addr : (string, int64) Hashtbl.t;
  fn_at_addr : (int64, string) Hashtbl.t;  (** code address -> function *)
  host_at_addr : (int64, string) Hashtbl.t;
  host_syms : (string, unit) Hashtbl.t;
  image : (int * Bytes.t) list;  (** (base address, initialized bytes) *)
  data_end : int;
  symbols_resolved : int;  (** linker work metric for the cost model *)
}

val code_base : int
val data_base : int

(** @raise Link_error for unknown symbols. *)
val addr_of : exe -> string -> int64

val find_func : exe -> string -> Codegen.Mach.mfunc option

(** Link objects into an executable; [host] names symbols satisfied by
    the runtime. @raise Link_error on duplicate or undefined symbols. *)
val link : ?host:string list -> Objfile.t list -> exe

(** Modelled linking work in cycles (symbols + relocations resolved). *)
val link_cost : exe -> int
