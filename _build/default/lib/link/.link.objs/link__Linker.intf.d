lib/link/linker.mli: Bytes Codegen Hashtbl Objfile
