lib/link/linker.ml: Bytes Codegen Hashtbl Int64 List Objfile Printf String
