lib/link/objfile.ml: Array Bytes Char Codegen Hashtbl Int64 Ir List Printf
