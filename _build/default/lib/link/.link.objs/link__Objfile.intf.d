lib/link/objfile.mli: Bytes Codegen Ir
