(** Probes: the unit of on-demand instrumentation (paper Section 4).

    Each probe targets one symbol and carries scheme-specific state that
    the fuzzer may freely annotate with profiling results — the paper's
    CmpProbe example stores the instrumented instruction and the last
    observed value; ours mirror that structure as a variant. *)

type cov_state = {
  cov_block : string;  (** IR block label within the target function *)
  mutable cov_hits : int;  (** profiling annotation: accumulated hit count *)
}

type cmp_state = {
  cmp_ins : Ir.Ins.ins;  (** the comparison in the pristine IR *)
  mutable cmp_solved : bool;  (** both outcomes seen; probe is useless *)
  mutable cmp_last : int64 * int64;  (** last observed operand values *)
}

type check_kind = Div_by_zero | Load_in_bounds

type check_state = {
  chk_ins : Ir.Ins.ins;
  chk_kind : check_kind;
  mutable chk_trips : int;  (** times the check fired (profiling) *)
}

type payload =
  | Cov of cov_state
  | Cmp of cmp_state
  | Check of check_state

type t = {
  pid : int;
  target : string;  (** the symbol this probe patches (getPatchTarget) *)
  mutable enabled : bool;
  payload : payload;
}

let describe p =
  let kind =
    match p.payload with
    | Cov c -> Printf.sprintf "cov(%%%s)" c.cov_block
    | Cmp _ -> "cmplog"
    | Check c -> (
      match c.chk_kind with
      | Div_by_zero -> "check(div)"
      | Load_in_bounds -> "check(load)")
  in
  Printf.sprintf "#%d %s@%s%s" p.pid kind p.target
    (if p.enabled then "" else " (disabled)")
