(** Probes: the unit of on-demand instrumentation (paper Section 4).

    A probe targets one symbol and carries scheme-specific, freely
    annotatable state — the paper's [CmpProbe] stores the instrumented
    instruction and dynamic profiling results; these payloads mirror that
    structure for the three schemes shipped with the framework. *)

type cov_state = {
  cov_block : string;  (** IR block label within the target function *)
  mutable cov_hits : int;  (** profiling annotation: accumulated hit count *)
}

type cmp_state = {
  cmp_ins : Ir.Ins.ins;  (** the comparison in the pristine IR *)
  mutable cmp_solved : bool;  (** both outcomes seen; probe is useless *)
  mutable cmp_last : int64 * int64;  (** last observed operand values *)
}

type check_kind = Div_by_zero | Load_in_bounds

type check_state = {
  chk_ins : Ir.Ins.ins;  (** the guarded instruction in the pristine IR *)
  chk_kind : check_kind;
  mutable chk_trips : int;  (** times the check executed (profiling) *)
}

type payload = Cov of cov_state | Cmp of cmp_state | Check of check_state

type t = {
  pid : int;  (** unique id, assigned by the manager *)
  target : string;  (** the symbol this probe patches (getPatchTarget) *)
  mutable enabled : bool;
  payload : payload;
}

(** One-line human-readable description (for logs and debugging). *)
val describe : t -> string
