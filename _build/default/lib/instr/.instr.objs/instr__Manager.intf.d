lib/instr/manager.mli: Probe
