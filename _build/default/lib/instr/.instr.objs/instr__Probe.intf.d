lib/instr/probe.mli: Ir
