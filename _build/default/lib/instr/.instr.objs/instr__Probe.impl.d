lib/instr/probe.ml: Ir Printf
