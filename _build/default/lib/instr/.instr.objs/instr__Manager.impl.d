lib/instr/manager.ml: Hashtbl List Printf Probe String
