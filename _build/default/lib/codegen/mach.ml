(** The virtual target machine.

    A 16-register, 64-bit RISC-ish machine with typed (width-aware) ALU
    operations and loads/stores. Machine code is what the linker lays out
    and the VM executes with cycle accounting; its instruction costs are
    the measurement substrate for every figure in the evaluation.

    Register convention:
    - r0        : first argument / return value (not allocatable)
    - r1..r5    : arguments 2..6; caller-saved, allocatable
    - r6, r7, r14 : reserved scratch for spill code (never allocated)
    - r8..r13   : callee-saved, allocatable
    - r15      : stack pointer

    Registers >= 16 are virtual; they exist only before register
    allocation. *)

let num_phys = 16
let reg_ret = 0
let arg_regs = [ 0; 1; 2; 3; 4; 5 ]
let max_reg_args = List.length arg_regs
let scratch0 = 6
let scratch1 = 14
let scratch2 = 7
let reg_sp = 15
let caller_saved_pool = [ 1; 2; 3; 4; 5 ]
let callee_saved_pool = [ 8; 9; 10; 11; 12; 13 ]

let is_virtual r = r >= num_phys

type operand =
  | Oreg of int
  | Oimm of int64
  | Osym of string * int  (** symbol address + addend; resolved at link *)

type addr =
  | Abase of int * int  (** [reg + offset] *)
  | Aslot of int  (** frame slot: [sp + offset], offset patched after RA *)
  | Asym of string * int  (** absolute symbol address + offset *)

(** Branch targets are block ids before layout, instruction indices after. *)
type minst =
  | Mmov of int * operand
  | Mbin of Ir.Ins.binop * Ir.Types.ty * int * int * operand
      (** dst <- src1 op src2, result normalized at ty *)
  | Mcmp of Ir.Ins.icmp * Ir.Types.ty * int * int * operand  (** dst <- 0/1 *)
  | Mcmov of int * int * int  (** dst <- (cond != 0) ? src : dst *)
  | Mld of Ir.Types.ty * int * addr  (** sign-extending load *)
  | Mst of Ir.Types.ty * int * addr
  | Mincmem of Ir.Types.ty * addr
      (** memory increment (x86 [inc byte ptr]); coverage counters fuse
          into this, so an 8-bit-counter probe costs ~3 cycles as on
          real hardware *)
  | Mlea of int * addr  (** dst <- effective address *)
  | Mjmp of int
  | Mjnz of int * int  (** if reg != 0 jump, else fall through *)
  | Mjtab of int * (int64 * int) array * int  (** jump table: reg, cases, default *)
  | Mcall of string
  | Mcallr of int
  | Mret
  | Mpush of int
  | Mpop of int
  | Mspadj of int  (** sp <- sp + n *)

(** Cycle cost of one instruction; the model is calibrated so that
    memory traffic is ~3x ALU and calls are expensive relative to
    straight-line code, as on a small out-of-order core. *)
let cost = function
  | Mmov _ -> 1
  | Mbin ((Ir.Ins.Mul | Ir.Ins.Sdiv | Ir.Ins.Udiv | Ir.Ins.Srem | Ir.Ins.Urem), _, _, _, _)
    ->
    8
  | Mbin _ -> 1
  | Mcmp _ -> 1
  | Mcmov _ -> 1
  | Mld _ -> 3
  | Mst _ -> 3
  | Mincmem _ -> 3
  | Mlea _ -> 1
  | Mjmp _ -> 1
  | Mjnz _ -> 2
  | Mjtab _ -> 5
  | Mcall _ -> 4
  | Mcallr _ -> 6
  | Mret -> 2
  | Mpush _ | Mpop _ -> 2
  | Mspadj _ -> 1

let operand_to_string = function
  | Oreg r -> Printf.sprintf "r%d" r
  | Oimm v -> Printf.sprintf "$%Ld" v
  | Osym (s, 0) -> Printf.sprintf "@%s" s
  | Osym (s, a) -> Printf.sprintf "@%s+%d" s a

let addr_to_string = function
  | Abase (r, 0) -> Printf.sprintf "[r%d]" r
  | Abase (r, o) -> Printf.sprintf "[r%d%+d]" r o
  | Aslot i -> Printf.sprintf "[slot%d]" i
  | Asym (s, 0) -> Printf.sprintf "[@%s]" s
  | Asym (s, o) -> Printf.sprintf "[@%s+%d]" s o

let to_string = function
  | Mmov (d, o) -> Printf.sprintf "mov r%d, %s" d (operand_to_string o)
  | Mbin (op, ty, d, s, o) ->
    Printf.sprintf "%s.%s r%d, r%d, %s" (Ir.Ins.binop_to_string op)
      (Ir.Types.to_string ty) d s (operand_to_string o)
  | Mcmp (p, ty, d, s, o) ->
    Printf.sprintf "set%s.%s r%d, r%d, %s" (Ir.Ins.icmp_to_string p)
      (Ir.Types.to_string ty) d s (operand_to_string o)
  | Mcmov (d, c, s) -> Printf.sprintf "cmov r%d, r%d, r%d" d c s
  | Mld (ty, d, a) ->
    Printf.sprintf "ld.%s r%d, %s" (Ir.Types.to_string ty) d (addr_to_string a)
  | Mst (ty, s, a) ->
    Printf.sprintf "st.%s %s, r%d" (Ir.Types.to_string ty) (addr_to_string a) s
  | Mincmem (ty, a) ->
    Printf.sprintf "inc.%s %s" (Ir.Types.to_string ty) (addr_to_string a)
  | Mlea (d, a) -> Printf.sprintf "lea r%d, %s" d (addr_to_string a)
  | Mjmp t -> Printf.sprintf "jmp %d" t
  | Mjnz (r, t) -> Printf.sprintf "jnz r%d, %d" r t
  | Mjtab (r, cases, d) ->
    Printf.sprintf "jtab r%d, [%d cases], default %d" r (Array.length cases) d
  | Mcall s -> Printf.sprintf "call @%s" s
  | Mcallr r -> Printf.sprintf "callr r%d" r
  | Mret -> "ret"
  | Mpush r -> Printf.sprintf "push r%d" r
  | Mpop r -> Printf.sprintf "pop r%d" r
  | Mspadj n -> Printf.sprintf "spadj %d" n

(** Compiled function: code plus the block table used by the DBI
    baselines (block id -> first instruction index) and frame size. *)
type mfunc = {
  mf_name : string;
  mf_code : minst array;
  mf_blocks : (int * string) array;  (** (start index, IR block label) *)
  mf_frame : int;  (** bytes of frame (spills + allocas) *)
}
