(** Instruction selection: IR function -> virtual-register machine code.

    Blocks keep symbolic ids until final layout; phi nodes become parallel
    copies at the end of each predecessor (phi destinations are unique
    vregs, so a copy on a not-taken edge only clobbers a dead register);
    calls marshal arguments into the physical argument registers. *)

open Ir

type vblock = {
  vb_id : int;
  vb_label : string;
  mutable vb_insts : Mach.minst list;  (** reversed during construction *)
}

type vcode = {
  vc_name : string;
  vc_blocks : vblock array;
  vc_nvreg : int;  (** first unused vreg id *)
  vc_slots : (int * int) list;  (** (slot id, size in bytes) for allocas *)
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  fn : Func.t;
  mutable next_vreg : int;
  vregs : (string, int) Hashtbl.t;  (** SSA name -> vreg *)
  block_ids : (string, int) Hashtbl.t;
  mutable slots : (int * int) list;
  mutable next_slot : int;
  alloca_slot : (string, int) Hashtbl.t;  (** alloca result name -> slot *)
  mutable cur : vblock;
}

let fresh ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let vreg_of ctx name =
  match Hashtbl.find_opt ctx.vregs name with
  | Some v -> v
  | None ->
    let v = fresh ctx in
    Hashtbl.replace ctx.vregs name v;
    v

let emit ctx i = ctx.cur.vb_insts <- i :: ctx.cur.vb_insts

let rec log2_exact n =
  if n <= 0 then None
  else if n = 1 then Some 0
  else if n mod 2 <> 0 then None
  else Option.map (fun k -> k + 1) (log2_exact (n / 2))

let block_id ctx label =
  match Hashtbl.find_opt ctx.block_ids label with
  | Some id -> id
  | None -> unsupported "branch to unknown block %%%s" label

(* Blockaddress constants lower to the function's symbol with a small,
   deterministic offset — an opaque token sufficient for the innate-
   constraint experiments (no machine-level indirect branch consumes it). *)
let blockaddr_sym f l = Mach.Osym (f, 1 + (Hashtbl.hash l mod 7))

let operand_of ctx = function
  | Ins.Const (ty, v) -> Mach.Oimm (Types.normalize ty v)
  | Ins.Reg (_, n) -> Mach.Oreg (vreg_of ctx n)
  | Ins.Global g -> Mach.Osym (g, 0)
  | Ins.Blockaddr (f, l) -> blockaddr_sym f l
  | Ins.Undef _ -> Mach.Oimm 0L

(* Force a value into a register. *)
let reg_of ctx v =
  match operand_of ctx v with
  | Mach.Oreg r -> r
  | op ->
    let r = fresh ctx in
    emit ctx (Mach.Mmov (r, op));
    r

let addr_of ctx = function
  | Ins.Global g -> Mach.Asym (g, 0)
  | v -> Mach.Abase (reg_of ctx v, 0)

let lower_ins ctx (i : Ins.ins) =
  match i.Ins.kind with
  | Ins.Phi _ -> () (* handled as copies in predecessors *)
  | Ins.Binop (op, a, b) ->
    let dst = vreg_of ctx i.Ins.id in
    let s1 = reg_of ctx a in
    let s2 = operand_of ctx b in
    emit ctx (Mach.Mbin (op, i.Ins.ty, dst, s1, s2))
  | Ins.Icmp (p, a, b) ->
    let dst = vreg_of ctx i.Ins.id in
    let ty = Ins.value_ty a in
    let s1 = reg_of ctx a in
    let s2 = operand_of ctx b in
    emit ctx (Mach.Mcmp (p, ty, dst, s1, s2))
  | Ins.Select (c, a, b) ->
    let dst = vreg_of ctx i.Ins.id in
    emit ctx (Mach.Mmov (dst, operand_of ctx b));
    let cr = reg_of ctx c in
    let ar = reg_of ctx a in
    emit ctx (Mach.Mcmov (dst, cr, ar))
  | Ins.Cast (c, a) -> (
    let dst = vreg_of ctx i.Ins.id in
    let from = Ins.value_ty a in
    match c with
    | Ins.Zext ->
      let src = reg_of ctx a in
      let mask =
        match Types.bits from with
        | 64 -> -1L
        | b -> Int64.sub (Int64.shift_left 1L b) 1L
      in
      emit ctx (Mach.Mbin (Ins.And, Types.I64, dst, src, Mach.Oimm mask))
    | Ins.Trunc ->
      let src = reg_of ctx a in
      (* re-normalize at the destination width *)
      emit ctx (Mach.Mbin (Ins.Add, i.Ins.ty, dst, src, Mach.Oimm 0L))
    | Ins.Sext | Ins.Bitcast | Ins.Ptrtoint | Ins.Inttoptr ->
      (* register values are kept sign-normalized at their width, so
         these are plain moves *)
      emit ctx (Mach.Mmov (dst, operand_of ctx a)))
  | Ins.Load ptr ->
    let dst = vreg_of ctx i.Ins.id in
    emit ctx (Mach.Mld (i.Ins.ty, dst, addr_of ctx ptr))
  | Ins.Store (v, ptr) ->
    let ty = Ins.value_ty v in
    let src = reg_of ctx v in
    emit ctx (Mach.Mst (ty, src, addr_of ctx ptr))
  | Ins.Gep (base, idx, size) -> (
    let dst = vreg_of ctx i.Ins.id in
    match (base, idx) with
    | Ins.Global g, Ins.Const (_, k) ->
      emit ctx (Mach.Mmov (dst, Mach.Osym (g, Int64.to_int k * size)))
    | _, Ins.Const (_, k) ->
      let b = reg_of ctx base in
      emit ctx (Mach.Mbin (Ins.Add, Types.I64, dst, b, Mach.Oimm (Int64.mul k (Int64.of_int size))))
    | _ ->
      let idx_reg = reg_of ctx idx in
      let scaled =
        if size = 1 then idx_reg
        else begin
          let t = fresh ctx in
          (match log2_exact size with
          | Some k ->
            emit ctx (Mach.Mbin (Ins.Shl, Types.I64, t, idx_reg, Mach.Oimm (Int64.of_int k)))
          | None ->
            emit ctx (Mach.Mbin (Ins.Mul, Types.I64, t, idx_reg, Mach.Oimm (Int64.of_int size))));
          t
        end
      in
      let b = reg_of ctx base in
      emit ctx (Mach.Mbin (Ins.Add, Types.I64, dst, b, Mach.Oreg scaled)))
  | Ins.Call (callee, args) ->
    if List.length args > Mach.max_reg_args then
      unsupported "call with more than %d arguments in @%s" Mach.max_reg_args
        ctx.fn.Func.name;
    (* evaluate the callee address before clobbering argument registers *)
    let callee_reg =
      match callee with
      | Ins.Direct _ -> None
      | Ins.Indirect v -> Some (reg_of ctx v)
    in
    List.iteri
      (fun k arg ->
        emit ctx (Mach.Mmov (List.nth Mach.arg_regs k, operand_of ctx arg)))
      args;
    (match (callee, callee_reg) with
    | Ins.Direct name, _ -> emit ctx (Mach.Mcall name)
    | Ins.Indirect _, Some r -> emit ctx (Mach.Mcallr r)
    | Ins.Indirect _, None -> assert false);
    if i.Ins.id <> "" then
      emit ctx (Mach.Mmov (vreg_of ctx i.Ins.id, Mach.Oreg Mach.reg_ret))
  | Ins.Alloca (ty, count) ->
    let slot =
      match Hashtbl.find_opt ctx.alloca_slot i.Ins.id with
      | Some s -> s
      | None ->
        let s = ctx.next_slot in
        ctx.next_slot <- s + 1;
        let size = (max 8 (Types.size_of ty * count) + 7) / 8 * 8 in
        ctx.slots <- (s, size) :: ctx.slots;
        Hashtbl.replace ctx.alloca_slot i.Ins.id s;
        s
    in
    emit ctx (Mach.Mlea (vreg_of ctx i.Ins.id, Mach.Aslot slot))

(* ------------------------------------------------------------------ *)
(* Counter-increment fusion                                             *)
(*                                                                      *)
(* Coverage instrumentation emits [%p = gep @counters, K; %v = load %p; *)
(* %v' = add %v, 1; store %v', %p]. Real ISAs execute this as a single  *)
(* read-modify-write ([inc byte ptr [...]]); recognizing the idiom here *)
(* keeps probe cost realistic (~3 cycles) instead of charging the full  *)
(* load/store pair.                                                     *)
(* ------------------------------------------------------------------ *)

let same_ptr a b =
  match (a, b) with
  | Ins.Reg (_, x), Ins.Reg (_, y) -> String.equal x y
  | Ins.Global x, Ins.Global y -> String.equal x y
  | _ -> false

(* [ld; add; st] over the same pointer where the loaded/added values have
   no other uses *)
let is_inc_triple uses (ld : Ins.ins) (add : Ins.ins) (st : Ins.ins) =
  match (ld.Ins.kind, add.Ins.kind, st.Ins.kind) with
  | ( Ins.Load p1,
      Ins.Binop (Ins.Add, Ins.Reg (_, old), Ins.Const (_, 1L)),
      Ins.Store (Ins.Reg (_, incd), p2) )
    when String.equal old ld.Ins.id
         && String.equal incd add.Ins.id
         && same_ptr p1 p2
         && uses ld.Ins.id = 1
         && uses add.Ins.id = 1 ->
    true
  | _ -> false

(* Lower a block's instructions with the fusion peephole. [uses] counts
   SSA uses; [defs] maps names to their defining instruction. *)
let lower_block_insns ctx uses defs insns =
  let rec walk = function
    | (gep : Ins.ins) :: ld :: add :: st :: rest
      when (match gep.Ins.kind with
           | Ins.Gep (Ins.Global _, Ins.Const _, _) -> true
           | _ -> false)
           && uses gep.Ins.id = 2
           && (match ld.Ins.kind with
              | Ins.Load (Ins.Reg (_, p)) -> String.equal p gep.Ins.id
              | _ -> false)
           && is_inc_triple uses ld add st -> (
      match gep.Ins.kind with
      | Ins.Gep (Ins.Global g, Ins.Const (_, k), sz) ->
        emit ctx (Mach.Mincmem (ld.Ins.ty, Mach.Asym (g, Int64.to_int k * sz)));
        walk rest
      | _ -> assert false)
    | ld :: add :: st :: rest when is_inc_triple uses ld add st -> (
      match ld.Ins.kind with
      | Ins.Load p ->
        emit ctx (Mach.Mincmem (ld.Ins.ty, addr_of ctx p));
        walk rest
      | _ -> assert false)
    | i :: rest ->
      lower_ins ctx i;
      walk rest
    | [] -> ()
  in
  ignore defs;
  walk insns

(* Parallel copies for the phis of [succ] along the edge from [pred_label].
   Classic sequentialization: emit copies whose destination is not a
   pending source; break cycles with a temporary. *)
let phi_copies ctx (succ : Func.block) pred_label =
  let pending =
    List.filter_map
      (fun (i : Ins.ins) ->
        match i.Ins.kind with
        | Ins.Phi incoming -> (
          match List.assoc_opt pred_label incoming with
          | Some v -> Some (vreg_of ctx i.Ins.id, operand_of ctx v)
          | None -> None)
        | _ -> None)
      succ.Func.insns
  in
  let pending = ref pending in
  let reads_reg r (_, src) = match src with Mach.Oreg s -> s = r | _ -> false in
  while !pending <> [] do
    match
      List.partition
        (fun (dst, _) -> not (List.exists (reads_reg dst) !pending))
        !pending
    with
    | [], (dst, src) :: rest ->
      (* cycle: save dst's old value in a temp, redirect its readers to
         the temp, then the copy into dst is safe to emit *)
      let t = fresh ctx in
      emit ctx (Mach.Mmov (t, Mach.Oreg dst));
      emit ctx (Mach.Mmov (dst, src));
      pending :=
        List.map
          (fun (d, s) -> if reads_reg dst (d, s) then (d, Mach.Oreg t) else (d, s))
          rest
    | ready, rest ->
      List.iter (fun (d, s) -> emit ctx (Mach.Mmov (d, s))) ready;
      pending := rest
  done

let lower_term ctx (b : Func.block) =
  (* phi copies first, for every successor *)
  List.iter
    (fun succ_label ->
      match Func.find_block ctx.fn succ_label with
      | Some succ -> phi_copies ctx succ b.Func.label
      | None -> ())
    (Ins.successors b.Func.term);
  match b.Func.term with
  | Ins.Ret v ->
    (match v with
    | Some v -> emit ctx (Mach.Mmov (Mach.reg_ret, operand_of ctx v))
    | None -> emit ctx (Mach.Mmov (Mach.reg_ret, Mach.Oimm 0L)));
    emit ctx Mach.Mret
  | Ins.Br l -> emit ctx (Mach.Mjmp (block_id ctx l))
  | Ins.Cbr (c, t, f) ->
    let cr = reg_of ctx c in
    emit ctx (Mach.Mjnz (cr, block_id ctx t));
    emit ctx (Mach.Mjmp (block_id ctx f))
  | Ins.Switch (v, d, cases) ->
    let r = reg_of ctx v in
    let table =
      Array.of_list (List.map (fun (k, l) -> (k, block_id ctx l)) cases)
    in
    emit ctx (Mach.Mjtab (r, table, block_id ctx d))
  | Ins.Unreachable ->
    (* executing this is a bug in the input program; return 0 *)
    emit ctx (Mach.Mmov (Mach.reg_ret, Mach.Oimm 0L));
    emit ctx Mach.Mret

(** Select instructions for one function. *)
let select (fn : Func.t) =
  if Func.is_declaration fn then invalid_arg ("Isel.select: declaration " ^ fn.Func.name);
  let blocks = Cfg.rpo fn in
  let ctx =
    {
      fn;
      next_vreg = Mach.num_phys;
      vregs = Hashtbl.create 64;
      block_ids = Hashtbl.create 16;
      slots = [];
      next_slot = 0;
      alloca_slot = Hashtbl.create 8;
      cur = { vb_id = 0; vb_label = ""; vb_insts = [] };
    }
  in
  List.iteri (fun i b -> Hashtbl.replace ctx.block_ids b.Func.label i) blocks;
  let use_counts = Func.use_counts fn in
  let uses n = Option.value ~default:0 (Hashtbl.find_opt use_counts n) in
  let defs = Func.def_map fn in
  let vblocks =
    List.mapi
      (fun i (b : Func.block) ->
        let vb = { vb_id = i; vb_label = b.Func.label; vb_insts = [] } in
        ctx.cur <- vb;
        (* entry block: receive parameters from the argument registers *)
        if i = 0 then
          List.iteri
            (fun k (_, p) ->
              if k >= Mach.max_reg_args then
                unsupported "function @%s has too many parameters" fn.Func.name;
              emit ctx (Mach.Mmov (vreg_of ctx p, Mach.Oreg (List.nth Mach.arg_regs k))))
            fn.Func.params;
        lower_block_insns ctx uses defs b.Func.insns;
        lower_term ctx b;
        vb.vb_insts <- List.rev vb.vb_insts;
        vb)
      blocks
  in
  {
    vc_name = fn.Func.name;
    vc_blocks = Array.of_list vblocks;
    vc_nvreg = ctx.next_vreg;
    vc_slots = List.rev ctx.slots;
  }
