(** Linear-scan register allocation over the linearized vcode.

    Liveness is computed per block (iterative dataflow), then each vreg
    gets one conservative interval over the linear layout. Intervals that
    cross a clobber point (a call, or the argument-marshalling moves that
    precede it) are restricted to callee-saved registers; everything else
    draws from the caller-saved pool first. Intervals that fit nowhere are
    spilled to frame slots; spill code uses the two reserved scratch
    registers, so allocation never iterates. *)

open Mach

module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

(* Registers read / written by an instruction (virtual or physical). *)
let reads = function
  | Mmov (_, Oreg s) -> [ s ]
  | Mmov (_, _) -> []
  | Mbin (_, _, _, s1, o) | Mcmp (_, _, _, s1, o) -> (
    s1 :: (match o with Oreg s2 -> [ s2 ] | _ -> []))
  | Mcmov (d, c, s) -> [ d; c; s ]
  | Mld (_, _, Abase (b, _)) -> [ b ]
  | Mld (_, _, (Aslot _ | Asym _)) -> []
  | Mst (_, s, Abase (b, _)) -> [ s; b ]
  | Mst (_, s, (Aslot _ | Asym _)) -> [ s ]
  | Mincmem (_, Abase (b, _)) -> [ b ]
  | Mincmem (_, (Aslot _ | Asym _)) -> []
  | Mlea (_, Abase (b, _)) -> [ b ]
  | Mlea (_, (Aslot _ | Asym _)) -> []
  | Mjnz (r, _) -> [ r ]
  | Mjtab (r, _, _) -> [ r ]
  | Mcallr r -> [ r ]
  | Mcall _ -> []
  | Mret -> [ reg_ret ]
  | Mpush r -> [ r ]
  | Mjmp _ | Mpop _ | Mspadj _ -> []

let writes = function
  | Mmov (d, _) | Mbin (_, _, d, _, _) | Mcmp (_, _, d, _, _) | Mld (_, d, _)
  | Mlea (d, _) | Mpop d ->
    [ d ]
  | Mcmov (d, _, _) -> [ d ]
  | Mcall _ | Mcallr _ -> [ reg_ret ]
  | Mst _ | Mincmem _ | Mjmp _ | Mjnz _ | Mjtab _ | Mret | Mpush _ | Mspadj _ -> []

let map_regs f inst =
  let g r = if is_virtual r then f r else r in
  let go = function
    | Oreg r -> Oreg (g r)
    | o -> o
  in
  let ga = function Abase (b, o) -> Abase (g b, o) | a -> a in
  match inst with
  | Mmov (d, o) -> Mmov (g d, go o)
  | Mbin (op, ty, d, s, o) -> Mbin (op, ty, g d, g s, go o)
  | Mcmp (p, ty, d, s, o) -> Mcmp (p, ty, g d, g s, go o)
  | Mcmov (d, c, s) -> Mcmov (g d, g c, g s)
  | Mld (ty, d, a) -> Mld (ty, g d, ga a)
  | Mst (ty, s, a) -> Mst (ty, g s, ga a)
  | Mincmem (ty, a) -> Mincmem (ty, ga a)
  | Mlea (d, a) -> Mlea (g d, ga a)
  | Mjnz (r, t) -> Mjnz (g r, t)
  | Mjtab (r, tbl, d) -> Mjtab (g r, tbl, d)
  | Mcallr r -> Mcallr (g r)
  | (Mjmp _ | Mcall _ | Mret | Mpush _ | Mpop _ | Mspadj _) as i -> i

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let block_successors (vb : Isel.vblock) =
  List.concat_map
    (function
      | Mjmp t -> [ t ]
      | Mjnz (_, t) -> [ t ]
      | Mjtab (_, tbl, d) -> d :: (Array.to_list tbl |> List.map snd)
      | _ -> [])
    vb.Isel.vb_insts
  |> List.sort_uniq compare

(* live-in/out of virtual registers per block *)
let liveness (vc : Isel.vcode) =
  let n = Array.length vc.Isel.vc_blocks in
  let use = Array.make n ISet.empty in
  let def = Array.make n ISet.empty in
  Array.iteri
    (fun i vb ->
      List.iter
        (fun inst ->
          List.iter
            (fun r ->
              if is_virtual r && not (ISet.mem r def.(i)) then
                use.(i) <- ISet.add r use.(i))
            (reads inst);
          List.iter
            (fun r -> if is_virtual r then def.(i) <- ISet.add r def.(i))
            (writes inst))
        vb.Isel.vb_insts)
    vc.Isel.vc_blocks;
  let succs = Array.map block_successors vc.Isel.vc_blocks in
  let live_in = Array.make n ISet.empty in
  let live_out = Array.make n ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> ISet.union acc live_in.(s))
          ISet.empty succs.(i)
      in
      let inn = ISet.union use.(i) (ISet.diff out def.(i)) in
      if not (ISet.equal out live_out.(i)) || not (ISet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

(* ------------------------------------------------------------------ *)
(* Intervals                                                           *)
(* ------------------------------------------------------------------ *)

type interval = { vreg : int; start : int; stop : int }

(* Intervals for virtual registers, plus *busy ranges* for physical
   registers: precolored lifetimes around entry-parameter reads, argument
   marshalling, call clobbers of the caller-saved set, and return-value
   hand-offs. A vreg may only be assigned a physical register whose busy
   ranges do not overlap the vreg's interval. *)
let intervals (vc : Isel.vcode) =
  let live_in, live_out = liveness vc in
  let starts = Hashtbl.create 64 and stops = Hashtbl.create 64 in
  let touch r pos =
    if is_virtual r then begin
      (match Hashtbl.find_opt starts r with
      | Some s when s <= pos -> ()
      | _ -> Hashtbl.replace starts r pos);
      match Hashtbl.find_opt stops r with
      | Some e when e >= pos -> ()
      | _ -> Hashtbl.replace stops r pos
    end
  in
  let pos = ref 0 in
  let block_start = Array.make (Array.length vc.Isel.vc_blocks) 0 in
  let block_end = Array.make (Array.length vc.Isel.vc_blocks) 0 in
  let busy : (int, (int * int) list) Hashtbl.t = Hashtbl.create 16 in
  let add_busy r s e =
    let old = Option.value ~default:[] (Hashtbl.find_opt busy r) in
    Hashtbl.replace busy r ((s, e) :: old)
  in
  (* a "barrier" (re)defines the physical argument/return registers:
     function entry, and every call *)
  let last_barrier = ref 0 in
  Array.iteri
    (fun i vb ->
      block_start.(i) <- !pos;
      List.iter
        (fun inst ->
          List.iter (fun r -> touch r !pos) (reads inst);
          List.iter (fun r -> touch r !pos) (writes inst);
          (match inst with
          | Mcall _ | Mcallr _ ->
            (* calls clobber every caller-saved register *)
            List.iter (fun r -> add_busy r !pos !pos) (reg_ret :: caller_saved_pool);
            last_barrier := !pos
          | Mmov (d, _) when not (is_virtual d) && d <> reg_sp ->
            (* marshalling into a phys reg: busy until the consuming
               call/ret executes; conservatively to the next barrier *)
            add_busy d !pos (!pos + 8)
          | Mmov (_, Oreg s) when not (is_virtual s) ->
            (* reading a phys reg (entry params, call results): the value
               has been live since the last barrier *)
            add_busy s !last_barrier !pos
          | _ -> ());
          incr pos)
        vb.Isel.vb_insts;
      block_end.(i) <- !pos - 1)
    vc.Isel.vc_blocks;
  (* extend intervals over blocks where the vreg is live-in/out *)
  Array.iteri
    (fun i _ ->
      ISet.iter (fun r -> touch r block_start.(i)) live_in.(i);
      ISet.iter (fun r -> touch r block_end.(i)) live_out.(i))
    vc.Isel.vc_blocks;
  let ivals =
    Hashtbl.fold
      (fun r s acc ->
        let e = Option.value ~default:s (Hashtbl.find_opt stops r) in
        { vreg = r; start = s; stop = e } :: acc)
      starts []
    |> List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg))
  in
  (ivals, busy)

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

type assignment = Phys of int | Spill of int  (** spill slot id *)

let allocate (vc : Isel.vcode) =
  let ivals, busy = intervals vc in
  let assignment : (int, assignment) Hashtbl.t = Hashtbl.create 64 in
  let active : (int * interval) list ref = ref [] (* (phys, interval) *) in
  let next_spill = ref (List.length vc.Isel.vc_slots) in
  let spill_slots = ref [] in
  let used_callee_saved = ref ISet.empty in
  let conflicts_busy r iv =
    match Hashtbl.find_opt busy r with
    | None -> false
    | Some ranges ->
      List.exists (fun (bs, be) -> bs <= iv.stop && iv.start <= be) ranges
  in
  List.iter
    (fun iv ->
      (* expire finished intervals *)
      active := List.filter (fun (_, a) -> a.stop >= iv.start) !active;
      let in_use = List.map fst !active in
      let pool = caller_saved_pool @ callee_saved_pool in
      let usable r = (not (List.mem r in_use)) && not (conflicts_busy r iv) in
      match List.find_opt usable pool with
      | Some r ->
        Hashtbl.replace assignment iv.vreg (Phys r);
        if List.mem r callee_saved_pool then
          used_callee_saved := ISet.add r !used_callee_saved;
        active := (r, iv) :: !active
      | None ->
        let slot = !next_spill in
        incr next_spill;
        spill_slots := (slot, 8) :: !spill_slots;
        Hashtbl.replace assignment iv.vreg (Spill slot))
    ivals;
  (assignment, List.rev !spill_slots, !used_callee_saved)

(* ------------------------------------------------------------------ *)
(* Rewrite: apply the assignment, inserting spill code                 *)
(* ------------------------------------------------------------------ *)

let rewrite (vc : Isel.vcode) assignment =
  let phys_of r =
    match Hashtbl.find_opt assignment r with
    | Some (Phys p) -> Some p
    | _ -> None
  in
  let slot_of r =
    match Hashtbl.find_opt assignment r with
    | Some (Spill s) -> Some s
    | _ -> None
  in
  Array.iter
    (fun vb ->
      let out = ref [] in
      List.iter
        (fun inst ->
          (* map register operands: allocated ones directly; spilled reads
             reload into scratch, spilled writes store from scratch *)
          let scratch_pool = ref [ scratch0; scratch1; scratch2 ] in
          let reload_map = Hashtbl.create 4 in
          let pre = ref [] in
          let post = ref [] in
          let read_reg r =
            if not (is_virtual r) then r
            else
              match phys_of r with
              | Some p -> p
              | None -> (
                match Hashtbl.find_opt reload_map r with
                | Some s -> s
                | None -> (
                  match (slot_of r, !scratch_pool) with
                  | Some slot, s :: rest ->
                    scratch_pool := rest;
                    Hashtbl.replace reload_map r s;
                    pre := Mld (Ir.Types.I64, s, Aslot slot) :: !pre;
                    s
                  | Some _, [] -> failwith "regalloc: out of scratch registers"
                  | None, _ ->
                    (* never defined: reading garbage is the program's
                       business; give it scratch0 *)
                    scratch0))
          in
          let write_reg r =
            if not (is_virtual r) then r
            else
              match phys_of r with
              | Some p -> p
              | None -> (
                match slot_of r with
                | Some slot ->
                  (* reuse the reload scratch when this instruction also
                     read r (e.g. cmov); otherwise take a free scratch *)
                  let s =
                    match Hashtbl.find_opt reload_map r with
                    | Some s -> s
                    | None -> (
                      match !scratch_pool with
                      | s :: rest ->
                        scratch_pool := rest;
                        s
                      | [] -> scratch0)
                  in
                  post := Mst (Ir.Types.I64, s, Aslot slot) :: !post;
                  s
                | None -> scratch0)
          in
          let mapped =
            match inst with
            | Mmov (d, Oreg s) ->
              let s' = read_reg s in
              Mmov (write_reg d, Oreg s')
            | Mmov (d, o) -> Mmov (write_reg d, o)
            | Mbin (op, ty, d, s, o) ->
              let s' = read_reg s in
              let o' = match o with Oreg r -> Oreg (read_reg r) | o -> o in
              Mbin (op, ty, write_reg d, s', o')
            | Mcmp (p, ty, d, s, o) ->
              let s' = read_reg s in
              let o' = match o with Oreg r -> Oreg (read_reg r) | o -> o in
              Mcmp (p, ty, write_reg d, s', o')
            | Mcmov (d, c, s) ->
              (* cmov reads and writes d *)
              let c' = read_reg c in
              let s' = read_reg s in
              let d_read = read_reg d in
              let d' = write_reg d in
              if d' <> d_read then begin
                (* spilled dst: bring current value into scratch first *)
                pre := Mmov (d', Oreg d_read) :: !pre
              end;
              Mcmov (d', c', s')
            | Mld (ty, d, a) ->
              let a' =
                match a with Abase (b, o) -> Abase (read_reg b, o) | a -> a
              in
              Mld (ty, write_reg d, a')
            | Mst (ty, s, a) ->
              let s' = read_reg s in
              let a' =
                match a with Abase (b, o) -> Abase (read_reg b, o) | a -> a
              in
              Mst (ty, s', a')
            | Mincmem (ty, a) ->
              let a' =
                match a with Abase (b, o) -> Abase (read_reg b, o) | a -> a
              in
              Mincmem (ty, a')
            | Mlea (d, a) ->
              let a' =
                match a with Abase (b, o) -> Abase (read_reg b, o) | a -> a
              in
              Mlea (write_reg d, a')
            | Mjnz (r, t) -> Mjnz (read_reg r, t)
            | Mjtab (r, tbl, d) -> Mjtab (read_reg r, tbl, d)
            | Mcallr r -> Mcallr (read_reg r)
            | (Mjmp _ | Mcall _ | Mret | Mpush _ | Mpop _ | Mspadj _) as i -> i
          in
          out := List.rev_append (List.rev !pre) !out;
          out := mapped :: !out;
          out := List.rev_append (List.rev !post) !out)
        vb.Isel.vb_insts;
      vb.Isel.vb_insts <- List.rev !out)
    vc.Isel.vc_blocks
