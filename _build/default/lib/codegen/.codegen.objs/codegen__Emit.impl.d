lib/codegen/emit.ml: Array Buffer Hashtbl Ir Isel List Mach Printf Regalloc
