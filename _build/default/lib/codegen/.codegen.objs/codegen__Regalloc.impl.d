lib/codegen/regalloc.ml: Array Hashtbl Int Ir Isel List Mach Map Option Set
