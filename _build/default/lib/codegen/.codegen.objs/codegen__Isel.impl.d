lib/codegen/isel.ml: Array Cfg Func Hashtbl Ins Int64 Ir List Mach Option Printf String Types
