lib/codegen/mach.ml: Array Ir List Printf
