(* Tests for the optimization passes, including the paper's two case
   studies: the islower range fold (Figure 2) and printf->puts plus dead
   argument elimination (Figure 4). Every transform is additionally
   validated semantically: the module must verify and compute the same
   results before and after. *)

let parse = Ir.Parse.module_of_string

let run_pass pass m =
  let ctx = Opt.Pass.make_ctx m in
  let changed = pass.Opt.Pass.run ctx in
  Ir.Verify.run_exn m;
  changed

let interp m fname args =
  let st = Ir.Interp.create m in
  Ir.Interp.run st fname args

(* Check a pass preserves a function's results over sample inputs. *)
let check_preserves pass src fname inputs =
  let m1 = parse src in
  let m2 = parse src in
  ignore (run_pass pass m2);
  List.iter
    (fun args ->
      Alcotest.(check int64)
        (Printf.sprintf "%s preserved" fname)
        (interp m1 fname args) (interp m2 fname args))
    inputs

(* ---------------- mem2reg ---------------- *)

let mem2reg_src =
  {|
define external @f(i32 %x) i32 {
entry:
  %a = alloca i32, 1
  store i32 %x, ptr %a
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %end
pos:
  %v = load i32, ptr %a
  %v2 = mul i32 %v, 2
  store i32 %v2, ptr %a
  br label %end
end:
  %r = load i32, ptr %a
  ret i32 %r
}
|}

let test_mem2reg_removes_allocas () =
  let m = parse mem2reg_src in
  ignore (run_pass Opt.Mem2reg.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  let has_alloca = ref false in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with Ir.Ins.Alloca _ -> has_alloca := true | _ -> ())
    f;
  Alcotest.(check bool) "no allocas" false !has_alloca

let test_mem2reg_preserves_semantics () =
  check_preserves Opt.Mem2reg.pass mem2reg_src "f" [ [ 5L ]; [ -5L ]; [ 0L ] ]

let test_mem2reg_keeps_escaping_alloca () =
  let src =
    {|
declare external @sink(ptr %p) void
define external @f() i32 {
entry:
  %a = alloca i32, 1
  store i32 1, ptr %a
  call void @sink(ptr %a)
  %r = load i32, ptr %a
  ret i32 %r
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Mem2reg.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  let has_alloca = ref false in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with Ir.Ins.Alloca _ -> has_alloca := true | _ -> ())
    f;
  Alcotest.(check bool) "escaping alloca kept" true !has_alloca

(* ---------------- constant folding ---------------- *)

let test_constfold_folds () =
  let src =
    {|
define external @f() i32 {
entry:
  %a = add i32 2, 3
  %b = mul i32 %a, 4
  ret i32 %b
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Constfold.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "all folded" 0 (Ir.Func.insn_count f);
  Alcotest.(check int64) "value" 20L (interp m "f" [])

let test_constfold_branch () =
  let src =
    {|
define external @f() i32 {
entry:
  %c = icmp slt i32 1, 2
  br i1 %c, label %a, label %b
a:
  ret i32 10
b:
  ret i32 20
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Constfold.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "dead branch removed" 2 (Ir.Func.block_count f);
  Alcotest.(check int64) "value" 10L (interp m "f" [])

let test_constfold_keeps_volatile () =
  let src =
    {|
define external @f() i32 {
entry:
  %a = volatile add i32 2, 3
  ret i32 %a
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Constfold.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "volatile kept" 1 (Ir.Func.insn_count f)

(* ---------------- instcombine: identities ---------------- *)

let test_instcombine_identities () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = or i32 %b, 0
  ret i32 %c
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Instcombine.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "identities removed" 0 (Ir.Func.insn_count f)

let test_instcombine_strength_reduction () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %a = mul i32 %x, 8
  ret i32 %a
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Instcombine.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  let is_shl = ref false in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Binop (Ir.Ins.Shl, _, _) -> is_shl := true
      | _ -> ())
    f;
  Alcotest.(check bool) "mul became shl" true !is_shl;
  Alcotest.(check int64) "semantics" 40L (interp m "f" [ 5L ])

(* ---------------- instcombine: Figure 2 range fold ---------------- *)

let islower_ir =
  {|
define external @islower(i8 %chr) i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ 0, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
|}

let test_range_fold_fires () =
  let m = parse islower_ir in
  ignore (run_pass Opt.Instcombine.pass m);
  ignore (run_pass Opt.Simplifycfg.pass m);
  let f = Option.get (Ir.Modul.find_func m "islower") in
  (* paper: "After optimization, there remains one basic block only" *)
  Alcotest.(check int) "single block" 1 (Ir.Func.block_count f);
  let has_ult = ref false and has_add = ref false in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Icmp (Ir.Ins.Ult, _, Ir.Ins.Const (_, 26L)) -> has_ult := true
      | Ir.Ins.Binop (Ir.Ins.Add, _, Ir.Ins.Const (_, -97L)) -> has_add := true
      | _ -> ())
    f;
  Alcotest.(check bool) "icmp ult 26 present" true !has_ult;
  Alcotest.(check bool) "add -97 present" true !has_add

let test_range_fold_preserves_semantics () =
  let inputs = List.init 256 (fun i -> [ Int64.of_int (i - 128) ]) in
  check_preserves Opt.Instcombine.pass islower_ir "islower" inputs

let test_range_fold_blocked_by_probe () =
  (* a volatile probe in the upper-bound block pins the CFG: coverage
     instrumentation applied *before* optimization survives (the paper's
     instrument-first correctness argument) *)
  let src =
    {|
@counters = external global zeroinitializer 8

define external @islower(i8 %chr) i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  br i1 %cmp1, label %test_ub, label %end
test_ub:
  %old = volatile load i8, ptr @counters
  %new = volatile add i8 %old, 1
  volatile store i8 %new, ptr @counters
  %cmp2 = icmp sle i8 %chr, 122
  br label %end
end:
  %r = phi i1 [ 0, %test_lb ], [ %cmp2, %test_ub ]
  ret i1 %r
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Instcombine.pass m);
  let f = Option.get (Ir.Modul.find_func m "islower") in
  Alcotest.(check int) "blocks kept" 3 (Ir.Func.block_count f)

(* ---------------- instcombine: printf -> puts (Figure 4) ------------- *)

let fig4_src =
  {|
@str = internal constant c"hello\0A\00"

declare external @printf(ptr %fmt) i32

define internal void @foo(i32 %unused) {
entry:
  %r = call i32 @printf(ptr @str)
  ret void
}

define external @main() i32 {
entry:
  call void @foo(i32 1)
  ret i32 0
}
|}

let test_printf_to_puts () =
  let m = parse fig4_src in
  let ctx = Opt.Pass.make_ctx ~trial:true m in
  ignore (Opt.Instcombine.pass.Opt.Pass.run ctx);
  Ir.Verify.run_exn m;
  let foo = Option.get (Ir.Modul.find_func m "foo") in
  let callee = ref "" in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Call (Ir.Ins.Direct n, _) -> callee := n
      | _ -> ())
    foo;
  Alcotest.(check string) "rewritten to puts" "puts" !callee;
  (* and the trial run logged the copy-on-use requirement *)
  let logged =
    List.exists
      (function
        | Opt.Pass.Copy_on_use { user = "foo"; sym = "str"; _ } -> true
        | _ -> false)
      ctx.Opt.Pass.reqs
  in
  Alcotest.(check bool) "copy-on-use logged" true logged

let test_dead_arg_elim_fig4 () =
  let m = parse fig4_src in
  let ctx = Opt.Pass.make_ctx ~trial:true m in
  ignore (Opt.Dead_arg_elim.pass.Opt.Pass.run ctx);
  Ir.Verify.run_exn m;
  let foo = Option.get (Ir.Modul.find_func m "foo") in
  Alcotest.(check int) "param removed" 0 (List.length foo.Ir.Func.params);
  let main = Option.get (Ir.Modul.find_func m "main") in
  let args = ref [ Ir.Ins.Undef Ir.Types.Void ] in
  Ir.Func.iter_insns
    (fun i ->
      match i.Ir.Ins.kind with
      | Ir.Ins.Call (Ir.Ins.Direct "foo", a) -> args := a
      | _ -> ())
    main;
  Alcotest.(check int) "call site updated" 0 (List.length !args);
  (* the bond between foo and its caller was logged *)
  let logged =
    List.exists
      (function
        | Opt.Pass.Bond { a = "foo"; b = "main"; _ }
        | Opt.Pass.Bond { a = "main"; b = "foo"; _ } ->
          true
        | _ -> false)
      ctx.Opt.Pass.reqs
  in
  Alcotest.(check bool) "bond logged" true logged

let test_dead_arg_elim_skips_external () =
  let src =
    {|
define external @f(i32 %unused) i32 {
entry:
  ret i32 0
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Dead_arg_elim.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "external signature kept" 1 (List.length f.Ir.Func.params)

(* ---------------- simplifycfg ---------------- *)

let test_simplifycfg_merges () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %a = add i32 %x, 1
  br label %next
next:
  %b = mul i32 %a, 2
  ret i32 %b
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Simplifycfg.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "merged" 1 (Ir.Func.block_count f);
  Alcotest.(check int64) "semantics" 8L (interp m "f" [ 3L ])

let test_simplifycfg_keeps_blockaddr_target () =
  let src =
    {|
@tbl = internal constant [ptr x @f]

define external @f(i32 %x) i32 {
entry:
  %p = gep ptr blockaddress(@f, %next), i64 0, size 1
  br label %next
next:
  ret i32 1
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Simplifycfg.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check bool) "address-taken block survives" true
    (Ir.Func.find_block f "next" <> None)

(* ---------------- dce ---------------- *)

let test_dce_removes_dead_code () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %dead = mul i32 %x, 100
  %live = add i32 %x, 1
  ret i32 %live
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Dce.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "dead removed" 1 (Ir.Func.insn_count f)

let test_dce_keeps_probes () =
  let src =
    {|
@c = external global zeroinitializer 8
define external @f(i32 %x) i32 {
entry:
  volatile store i8 1, ptr @c
  ret i32 %x
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Dce.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "probe kept" 1 (Ir.Func.insn_count f)

let test_global_dce () =
  let src =
    {|
@dead_str = internal constant c"unused\00"
define external @main() i32 {
entry:
  ret i32 0
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Dce.pass m);
  Alcotest.(check bool) "dead internal constant removed" false
    (Ir.Modul.mem m "dead_str")

(* ---------------- gvn ---------------- *)

let test_gvn_cse () =
  let src =
    {|
define external @f(i32 %x, i32 %y) i32 {
entry:
  %a = add i32 %x, %y
  %b = add i32 %x, %y
  %c = add i32 %a, %b
  ret i32 %c
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Gvn.pass m);
  ignore (run_pass Opt.Dce.pass m);
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check int) "one add eliminated" 2 (Ir.Func.insn_count f);
  Alcotest.(check int64) "semantics" 14L (interp m "f" [ 3L; 4L ])

let test_gvn_commutative () =
  let src =
    {|
define external @f(i32 %x, i32 %y) i32 {
entry:
  %a = add i32 %x, %y
  %b = add i32 %y, %x
  %c = sub i32 %a, %b
  ret i32 %c
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Gvn.pass m);
  ignore (run_pass Opt.Constfold.pass m);
  ignore (run_pass Opt.Dce.pass m);
  Alcotest.(check int64) "x+y == y+x" 0L (interp m "f" [ 3L; 4L ])

let test_gvn_load_invalidation () =
  let src =
    {|
@g = external global [i32 x 5]
define external @f() i32 {
entry:
  %a = load i32, ptr @g
  store i32 7, ptr @g
  %b = load i32, ptr @g
  %c = add i32 %a, %b
  ret i32 %c
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Gvn.pass m);
  Alcotest.(check int64) "store invalidates load CSE" 12L (interp m "f" [])

(* ---------------- inline ---------------- *)

let test_inline_small_function () =
  let src =
    {|
define internal @helper(i32 %x) i32 {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define external @main(i32 %x) i32 {
entry:
  %a = call i32 @helper(i32 %x)
  %b = call i32 @helper(i32 %a)
  ret i32 %b
}
|}
  in
  let m = parse src in
  let ctx = Opt.Pass.make_ctx ~trial:true m in
  ignore (Opt.Inline.pass.Opt.Pass.run ctx);
  Ir.Verify.run_exn m;
  let main = Option.get (Ir.Modul.find_func m "main") in
  let calls = ref 0 in
  Ir.Func.iter_insns
    (fun i -> match i.Ir.Ins.kind with Ir.Ins.Call _ -> incr calls | _ -> ())
    main;
  Alcotest.(check int) "no calls left" 0 !calls;
  Alcotest.(check int64) "semantics" 7L (interp m "main" [ 5L ]);
  let logged =
    List.exists
      (function
        | Opt.Pass.Bond { a = "main"; b = "helper"; _ }
        | Opt.Pass.Bond { a = "helper"; b = "main"; _ } ->
          true
        | _ -> false)
      ctx.Opt.Pass.reqs
  in
  Alcotest.(check bool) "inline bond logged" true logged

let test_inline_skips_recursive () =
  let src =
    {|
define internal @fib(i32 %n) i32 {
entry:
  %c = icmp sle i32 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i32 %n
rec:
  %n1 = sub i32 %n, 1
  %a = call i32 @fib(i32 %n1)
  %n2 = sub i32 %n, 2
  %b = call i32 @fib(i32 %n2)
  %r = add i32 %a, %b
  ret i32 %r
}
define external @main() i32 {
entry:
  %r = call i32 @fib(i32 10)
  ret i32 %r
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Inline.pass m);
  Alcotest.(check bool) "fib kept" true (Ir.Modul.mem m "fib");
  Alcotest.(check int64) "semantics" 55L (interp m "main" [])

(* ---------------- loop unroll ---------------- *)

let test_loop_unroll_constant_trip () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i32 [ %x, %entry ], [ %acc2, %loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, 4
  br i1 %c, label %loop, label %done
done:
  ret i32 %acc2
}
|}
  in
  let m1 = parse src in
  let m2 = parse src in
  let changed = run_pass Opt.Loop_unroll.pass m2 in
  Alcotest.(check bool) "unrolled" true changed;
  let f = Option.get (Ir.Modul.find_func m2 "f") in
  let has_backedge = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      if List.mem b.Ir.Func.label (Ir.Ins.successors b.Ir.Func.term) then
        has_backedge := true)
    f;
  Alcotest.(check bool) "no self loop left" false !has_backedge;
  List.iter
    (fun x ->
      Alcotest.(check int64) "semantics" (interp m1 "f" [ x ]) (interp m2 "f" [ x ]))
    [ 0L; 10L; -3L ]

let test_loop_unroll_skips_dynamic_trip () =
  let src =
    {|
define external @f(i32 %n) i32 {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %done
done:
  ret i32 %i2
}
|}
  in
  let m = parse src in
  let changed = run_pass Opt.Loop_unroll.pass m in
  Alcotest.(check bool) "not unrolled" false changed

(* ---------------- full pipeline ---------------- *)

let test_pipeline_end_to_end () =
  let src =
    {|
int compute(int x) {
  int acc = 0;
  for (int i = 0; i < 4; i++) acc += x * 8 + i;
  if (acc > 100) return acc - 100;
  return acc;
}
|}
  in
  let m1 = Minic.Lower.compile src in
  let m2 = Minic.Lower.compile src in
  ignore (Opt.Pipeline.run ~keep:[ "compute" ] m2);
  Ir.Verify.run_exn m2;
  List.iter
    (fun x ->
      Alcotest.(check int64)
        "optimized matches unoptimized" (interp m1 "compute" [ x ])
        (interp m2 "compute" [ x ]))
    [ 0L; 1L; 5L; -7L; 100L ]

let test_pipeline_shrinks_code () =
  let src =
    {|
static int helper(int x, int unused) { return x + 0 + 1 * x; }
int main(void) {
  return helper(21, 99);
}
|}
  in
  let m = Minic.Lower.compile src in
  let before = Ir.Func.insn_count (Option.get (Ir.Modul.find_func m "main")) in
  ignore (Opt.Pipeline.run m);
  let after = Ir.Func.insn_count (Option.get (Ir.Modul.find_func m "main")) in
  Alcotest.(check bool) "code shrank or equal" true (after <= before);
  Alcotest.(check int64) "semantics" 42L (interp m "main" [])

(* property: the whole pipeline preserves semantics of random arith fns *)
let prop_pipeline_preserves =
  QCheck2.Test.make ~name:"pipeline preserves straight-line arithmetic" ~count:30
    QCheck2.Gen.(
      pair (int_range (-100) 100) (list_size (int_range 1 8) (int_range 1 5)))
    (fun (x, ops) ->
      let body =
        List.mapi
          (fun i k ->
            Printf.sprintf "  acc = acc * %d + %d + (acc >> %d);" (k + 1) i (k mod 4))
          ops
        |> String.concat "\n"
      in
      let src =
        Printf.sprintf "int f(int x) {\n  int acc = x;\n%s\n  return acc;\n}" body
      in
      let m1 = Minic.Lower.compile src in
      let m2 = Minic.Lower.compile src in
      ignore (Opt.Pipeline.run ~keep:[ "f" ] m2);
      interp m1 "f" [ Int64.of_int x ] = interp m2 "f" [ Int64.of_int x ])

(* ---------------- jump threading ---------------- *)

let threading_src =
  {|
define external @f(i32 %x) i32 {
entry:
  %c = icmp sgt i32 %x, 10
  br i1 %c, label %a, label %b
a:
  br label %check
b:
  br label %check
check:
  %flag = phi i1 [ 1, %a ], [ 0, %b ]
  br i1 %flag, label %yes, label %no
yes:
  ret i32 100
no:
  ret i32 200
}
|}

let test_jump_threading_threads_constant_phi () =
  let m = parse threading_src in
  let changed = run_pass Opt.Jump_threading.pass m in
  Alcotest.(check bool) "threaded" true changed;
  (* semantics preserved *)
  Alcotest.(check int64) "big" 100L (interp m "f" [ 50L ]);
  Alcotest.(check int64) "small" 200L (interp m "f" [ 3L ])

let test_jump_threading_clones_block () =
  (* the threaded block contains real code: the clone duplicates it,
     which is exactly the probe-duplication hazard of Section 2.2 *)
  let src =
    {|
@g = external global zeroinitializer 8
define external @f(i32 %x) i32 {
entry:
  %c = icmp sgt i32 %x, 10
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %flag = phi i32 [ 7, %a ], [ 0, %entry ]
  %w = mul i32 %x, 3
  %t = icmp ne i32 %flag, 0
  br i1 %t, label %yes, label %no
yes:
  %wy = phi i32 [ %w, %join ]
  %r1 = add i32 %wy, 1
  ret i32 %r1
no:
  %wn = phi i32 [ %w, %join ]
  ret i32 %wn
}
|}
  in
  let m1 = parse src in
  let m2 = parse src in
  let changed = run_pass Opt.Jump_threading.pass m2 in
  Alcotest.(check bool) "threaded" true changed;
  List.iter
    (fun x ->
      Alcotest.(check int64) "same result" (interp m1 "f" [ x ]) (interp m2 "f" [ x ]))
    [ 0L; 11L; -5L; 100L ]

let test_jump_threading_respects_volatile_condition () =
  (* a volatile (probe) computation feeding the branch must not be
     speculated away *)
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %c = icmp sgt i32 %x, 10
  br i1 %c, label %a, label %b
a:
  br label %check
b:
  br label %check
check:
  %flag = phi i32 [ 1, %a ], [ 0, %b ]
  %probe = volatile add i32 %flag, 0
  %t = icmp ne i32 %probe, 0
  br i1 %t, label %yes, label %no
yes:
  ret i32 100
no:
  ret i32 200
}
|}
  in
  let m = parse src in
  ignore (run_pass Opt.Jump_threading.pass m);
  (* regardless of whether it threaded, semantics must hold *)
  Alcotest.(check int64) "big" 100L (interp m "f" [ 50L ]);
  Alcotest.(check int64) "small" 200L (interp m "f" [ 3L ])

(* property: jump threading preserves semantics on diamond chains *)
let prop_jump_threading_preserves =
  QCheck2.Test.make ~name:"jump threading preserves diamond semantics" ~count:25
    QCheck2.Gen.(pair (int_range (-100) 100) (int_range 1 40))
    (fun (x, k) ->
      let src =
        Printf.sprintf
          {|
int f(int x) {
  int flag = 0;
  if (x > %d) flag = 1;
  int acc = x * 3;
  if (flag) acc = acc + %d;
  else acc = acc - %d;
  return acc;
}
|}
          k k (k * 2)
      in
      let m1 = Minic.Lower.compile src in
      let m2 = Minic.Lower.compile src in
      ignore (Opt.Pipeline.run ~keep:[ "f" ] m2);
      Ir.Verify.run_exn m2;
      interp m1 "f" [ Int64.of_int x ] = interp m2 "f" [ Int64.of_int x ])

let () =
  Alcotest.run "opt"
    [
      ( "mem2reg",
        [
          Alcotest.test_case "removes allocas" `Quick test_mem2reg_removes_allocas;
          Alcotest.test_case "preserves semantics" `Quick test_mem2reg_preserves_semantics;
          Alcotest.test_case "keeps escaping alloca" `Quick test_mem2reg_keeps_escaping_alloca;
        ] );
      ( "constfold",
        [
          Alcotest.test_case "folds" `Quick test_constfold_folds;
          Alcotest.test_case "branch folding" `Quick test_constfold_branch;
          Alcotest.test_case "keeps volatile" `Quick test_constfold_keeps_volatile;
        ] );
      ( "instcombine",
        [
          Alcotest.test_case "identities" `Quick test_instcombine_identities;
          Alcotest.test_case "strength reduction" `Quick test_instcombine_strength_reduction;
          Alcotest.test_case "range fold fires (Fig. 2)" `Quick test_range_fold_fires;
          Alcotest.test_case "range fold preserves semantics" `Quick
            test_range_fold_preserves_semantics;
          Alcotest.test_case "range fold blocked by probe" `Quick
            test_range_fold_blocked_by_probe;
          Alcotest.test_case "printf->puts (Fig. 4)" `Quick test_printf_to_puts;
        ] );
      ( "dead-arg-elim",
        [
          Alcotest.test_case "removes dead arg (Fig. 4)" `Quick test_dead_arg_elim_fig4;
          Alcotest.test_case "skips external" `Quick test_dead_arg_elim_skips_external;
        ] );
      ( "simplifycfg",
        [
          Alcotest.test_case "merges blocks" `Quick test_simplifycfg_merges;
          Alcotest.test_case "keeps blockaddress target" `Quick
            test_simplifycfg_keeps_blockaddr_target;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes dead" `Quick test_dce_removes_dead_code;
          Alcotest.test_case "keeps probes" `Quick test_dce_keeps_probes;
          Alcotest.test_case "global dce" `Quick test_global_dce;
        ] );
      ( "gvn",
        [
          Alcotest.test_case "cse" `Quick test_gvn_cse;
          Alcotest.test_case "commutative" `Quick test_gvn_commutative;
          Alcotest.test_case "load invalidation" `Quick test_gvn_load_invalidation;
        ] );
      ( "inline",
        [
          Alcotest.test_case "inlines small" `Quick test_inline_small_function;
          Alcotest.test_case "skips recursive" `Quick test_inline_skips_recursive;
        ] );
      ( "loop-unroll",
        [
          Alcotest.test_case "constant trip count" `Quick test_loop_unroll_constant_trip;
          Alcotest.test_case "skips dynamic trip" `Quick test_loop_unroll_skips_dynamic_trip;
        ] );
      ( "jump-threading",
        [
          Alcotest.test_case "threads constant phi" `Quick
            test_jump_threading_threads_constant_phi;
          Alcotest.test_case "clones block code" `Quick test_jump_threading_clones_block;
          Alcotest.test_case "volatile-fed condition" `Quick
            test_jump_threading_respects_volatile_condition;
          QCheck_alcotest.to_alcotest prop_jump_threading_preserves;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
          Alcotest.test_case "shrinks code" `Quick test_pipeline_shrinks_code;
          QCheck_alcotest.to_alcotest prop_pipeline_preserves;
        ] );
    ]

