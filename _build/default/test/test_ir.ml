(* Tests for the IR library: construction, printing/parsing round-trips,
   verification, cloning, CFG utilities, dominators, and the reference
   interpreter. *)

let parse text = Ir.Parse.module_of_string text

let simple_add_src =
  {|
define external @add(i32 %a, i32 %b) i32 {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}
|}

let test_parse_simple () =
  let m = parse simple_add_src in
  let f = Option.get (Ir.Modul.find_func m "add") in
  Alcotest.(check int) "one block" 1 (Ir.Func.block_count f);
  Alcotest.(check int) "one insn" 1 (Ir.Func.insn_count f)

let test_roundtrip () =
  let src =
    {|
@str = internal constant c"hello\0A\00"
@tbl = external global [i32 x 1, 2, 3]
@ptrs = internal global [ptr x @add, @add]
@alias_add = external alias @add

define external @add(i32 %a, i32 %b) i32 {
entry:
  %s = add i32 %a, %b
  %c = icmp slt i32 %s, 10
  br i1 %c, label %small, label %big
small:
  ret i32 %s
big:
  %d = mul i32 %s, 2
  ret i32 %d
}
|}
  in
  let m1 = parse src in
  let text1 = Ir.Print.module_to_string m1 in
  let m2 = parse text1 in
  let text2 = Ir.Print.module_to_string m2 in
  Alcotest.(check string) "print/parse/print fixpoint" text1 text2

let test_verify_ok () =
  let m = parse simple_add_src in
  Alcotest.(check int) "no errors" 0 (List.length (Ir.Verify.check_module m))

let test_verify_undefined_symbol () =
  let m =
    parse
      {|
define external @f() i32 {
entry:
  %x = call i32 @missing()
  ret i32 %x
}
|}
  in
  Alcotest.(check bool) "detects error" true (Ir.Verify.check_module m <> [])

let test_verify_bad_label () =
  let m =
    parse {|
define external @f() i32 {
entry:
  br label %nowhere
}
|}
  in
  Alcotest.(check bool) "detects error" true (Ir.Verify.check_module m <> [])

let test_verify_alias_of_declaration () =
  let m =
    parse
      {|
@a = external alias @undef_fn
declare external @undef_fn() i32
|}
  in
  Alcotest.(check bool) "alias of declaration rejected" true
    (Ir.Verify.check_module m <> [])

let test_verify_double_def () =
  let m =
    parse
      {|
define external @f() i32 {
entry:
  %x = add i32 1, 2
  %x = add i32 3, 4
  ret i32 %x
}
|}
  in
  Alcotest.(check bool) "detects double def" true (Ir.Verify.check_module m <> [])

let test_clone_module_independent () =
  let m = parse simple_add_src in
  let copy = Ir.Clone.clone_module m in
  let f = Option.get (Ir.Modul.find_func copy "add") in
  f.Ir.Func.blocks <- [];
  let original = Option.get (Ir.Modul.find_func m "add") in
  Alcotest.(check bool) "original untouched" false
    (Ir.Func.is_declaration original)

let test_clone_ins_map () =
  let m = parse simple_add_src in
  let map = Ir.Clone.empty_map () in
  let f = Option.get (Ir.Modul.find_func m "add") in
  let _copy = Ir.Clone.clone_func ~map f in
  let orig_ins = List.hd (Ir.Func.entry f).Ir.Func.insns in
  match Ir.Clone.map_ins map orig_ins with
  | Some cloned ->
    Alcotest.(check string) "same id" orig_ins.Ir.Ins.id cloned.Ir.Ins.id;
    Alcotest.(check bool) "different identity" true (not (orig_ins == cloned))
  | None -> Alcotest.fail "instruction not in map"

let test_extract_adds_declarations () =
  let m =
    parse
      {|
@g = external global [i32 x 7]

define external @f() i32 {
entry:
  %v = load i32, ptr @g
  %r = call i32 @helper(i32 %v)
  ret i32 %r
}

define external @helper(i32 %x) i32 {
entry:
  ret i32 %x
}
|}
  in
  let out, _map = Ir.Clone.extract m [ "f" ] in
  Alcotest.(check bool) "has f" true (Ir.Modul.mem out "f");
  Alcotest.(check bool) "declares helper" true (Ir.Modul.mem out "helper");
  Alcotest.(check bool) "declares g" true (Ir.Modul.mem out "g");
  (match Ir.Modul.find_func out "helper" with
  | Some h -> Alcotest.(check bool) "helper is a declaration" true (Ir.Func.is_declaration h)
  | None -> Alcotest.fail "helper missing");
  Alcotest.(check int) "extracted module verifies" 0
    (List.length (Ir.Verify.check_module out))

let diamond_src =
  {|
define external @f(i32 %x) i32 {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  br label %join
neg:
  br label %join
join:
  %r = phi i32 [ 1, %pos ], [ -1, %neg ]
  ret i32 %r
}
|}

let test_cfg_preds () =
  let m = parse diamond_src in
  let f = Option.get (Ir.Modul.find_func m "f") in
  let preds = Ir.Cfg.predecessors f in
  let join_preds = Ir.Cfg.SMap.find "join" preds in
  Alcotest.(check (list string)) "join preds" [ "pos"; "neg" ]
    (List.sort compare join_preds |> List.rev)

let test_cfg_rpo_starts_at_entry () =
  let m = parse diamond_src in
  let f = Option.get (Ir.Modul.find_func m "f") in
  match Ir.Cfg.rpo f with
  | first :: _ -> Alcotest.(check string) "entry first" "entry" first.Ir.Func.label
  | [] -> Alcotest.fail "empty rpo"

let test_cfg_remove_unreachable () =
  let m =
    parse
      {|
define external @f() i32 {
entry:
  ret i32 0
dead:
  ret i32 1
}
|}
  in
  let f = Option.get (Ir.Modul.find_func m "f") in
  Alcotest.(check bool) "changed" true (Ir.Cfg.remove_unreachable f);
  Alcotest.(check int) "one block left" 1 (Ir.Func.block_count f)

let test_dom_diamond () =
  let m = parse diamond_src in
  let f = Option.get (Ir.Modul.find_func m "f") in
  let dom = Ir.Dom.compute f in
  Alcotest.(check bool) "entry dominates join" true
    (Ir.Dom.dominates dom ~by:"entry" ~target:"join");
  Alcotest.(check bool) "pos does not dominate join" false
    (Ir.Dom.dominates dom ~by:"pos" ~target:"join")

let test_dom_frontier () =
  let m = parse diamond_src in
  let f = Option.get (Ir.Modul.find_func m "f") in
  let dom = Ir.Dom.compute f in
  let df = Ir.Dom.frontiers f dom in
  let pos_df = Ir.Dom.SMap.find "pos" df in
  Alcotest.(check (list string)) "pos frontier is join" [ "join" ] pos_df

let test_uses_of_func () =
  let m =
    parse
      {|
@g = external global [i32 x 1]
define external @f() i32 {
entry:
  %v = load i32, ptr @g
  %r = call i32 @f()
  ret i32 %r
}
|}
  in
  let f = Option.get (Ir.Modul.find_func m "f") in
  let refs = Ir.Uses.of_func f in
  Alcotest.(check bool) "references g" true (Ir.Uses.SSet.mem "g" refs);
  Alcotest.(check bool) "references itself" true (Ir.Uses.SSet.mem "f" refs)

(* ---------------- interpreter ---------------- *)

let run_interp src fname args =
  let m = parse src in
  Ir.Verify.run_exn m;
  let st = Ir.Interp.create m in
  Ir.Interp.run st fname args

let test_interp_arith () =
  Alcotest.(check int64) "3+4" 7L (run_interp simple_add_src "add" [ 3L; 4L ])

let test_interp_branch () =
  Alcotest.(check int64) "pos" 1L (run_interp diamond_src "f" [ 5L ]);
  Alcotest.(check int64) "neg" (-1L) (run_interp diamond_src "f" [ -5L ])

let test_interp_loop () =
  let src =
    {|
define external @sum(i32 %n) i32 {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %loop ]
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %done
done:
  ret i32 %acc2
}
|}
  in
  Alcotest.(check int64) "sum 0..9" 45L (run_interp src "sum" [ 10L ])

let test_interp_memory () =
  let src =
    {|
@cell = external global zeroinitializer 8

define external @rw(i64 %v) i64 {
entry:
  store i64 %v, ptr @cell
  %r = load i64, ptr @cell
  ret i64 %r
}
|}
  in
  Alcotest.(check int64) "store/load" 1234L (run_interp src "rw" [ 1234L ])

let test_interp_signed_narrow () =
  (* storing 200 into an i8 and loading it back reads -56 (sign extension) *)
  let src =
    {|
@cell = external global zeroinitializer 1

define external @f() i32 {
entry:
  store i8 200, ptr @cell
  %v = load i8, ptr @cell
  %w = sext i8 %v to i32
  ret i32 %w
}
|}
  in
  Alcotest.(check int64) "sign extension" (-56L) (run_interp src "f" [])

let test_interp_string_constant () =
  let src =
    {|
@msg = internal constant c"AB\00"

define external @first() i32 {
entry:
  %c = load i8, ptr @msg
  %w = zext i8 %c to i32
  ret i32 %w
}
|}
  in
  Alcotest.(check int64) "reads 'A'" 65L (run_interp src "first" [])

let test_interp_switch () =
  let src =
    {|
define external @classify(i32 %x) i32 {
entry:
  switch i32 %x, label %other [1: label %one, 2: label %two]
one:
  ret i32 10
two:
  ret i32 20
other:
  ret i32 -1
}
|}
  in
  Alcotest.(check int64) "case 1" 10L (run_interp src "classify" [ 1L ]);
  Alcotest.(check int64) "case 2" 20L (run_interp src "classify" [ 2L ]);
  Alcotest.(check int64) "default" (-1L) (run_interp src "classify" [ 99L ])

let test_interp_indirect_call () =
  let src =
    {|
@table = internal constant [ptr x @inc, @dec]

define internal @inc(i32 %x) i32 {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define internal @dec(i32 %x) i32 {
entry:
  %r = sub i32 %x, 1
  ret i32 %r
}
define external @dispatch(i64 %idx, i32 %x) i32 {
entry:
  %slot = gep ptr @table, i64 %idx, size 8
  %fp = load ptr, ptr %slot
  %r = call i32 ptr %fp(i32 %x)
  ret i32 %r
}
|}
  in
  Alcotest.(check int64) "table[0] = inc" 8L (run_interp src "dispatch" [ 0L; 7L ]);
  Alcotest.(check int64) "table[1] = dec" 6L (run_interp src "dispatch" [ 1L; 7L ])

let test_interp_host_function () =
  let m =
    parse
      {|
declare external @host_add(i64 %a, i64 %b) i64
define external @f() i64 {
entry:
  %r = call i64 @host_add(i64 20, i64 22)
  ret i64 %r
}
|}
  in
  let st = Ir.Interp.create m in
  Ir.Interp.register_host st "host_add" (fun _ args ->
      match args with [ a; b ] -> Int64.add a b | _ -> 0L);
  Alcotest.(check int64) "host call" 42L (Ir.Interp.run st "f" [])

let test_interp_division_by_zero_traps () =
  let src =
    {|
define external @f(i32 %x) i32 {
entry:
  %r = sdiv i32 10, %x
  ret i32 %r
}
|}
  in
  Alcotest.check_raises "div by zero traps" (Ir.Interp.Trap "division by zero in @f")
    (fun () -> ignore (run_interp src "f" [ 0L ]))

(* property: Eval.binop agrees with 64-bit OCaml arithmetic for I64 add/sub/mul *)
let prop_eval_wraps =
  QCheck2.Test.make ~name:"Eval.binop i64 matches Int64 ops" ~count:300
    QCheck2.Gen.(pair (int_range (-1000000) 1000000) (int_range (-1000000) 1000000))
    (fun (a, b) ->
      let a = Int64.of_int a and b = Int64.of_int b in
      Ir.Eval.binop Ir.Types.I64 Ir.Ins.Add a b = Some (Int64.add a b)
      && Ir.Eval.binop Ir.Types.I64 Ir.Ins.Sub a b = Some (Int64.sub a b)
      && Ir.Eval.binop Ir.Types.I64 Ir.Ins.Mul a b = Some (Int64.mul a b))

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"Types.normalize is idempotent" ~count:300
    QCheck2.Gen.(pair (oneofl Ir.Types.[ I1; I8; I16; I32; I64 ]) int)
    (fun (ty, v) ->
      let v = Int64.of_int v in
      Ir.Types.normalize ty (Ir.Types.normalize ty v) = Ir.Types.normalize ty v)

let () =
  Alcotest.run "ir"
    [
      ( "parse/print",
        [
          Alcotest.test_case "parse simple" `Quick test_parse_simple;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "verify",
        [
          Alcotest.test_case "ok module" `Quick test_verify_ok;
          Alcotest.test_case "undefined symbol" `Quick test_verify_undefined_symbol;
          Alcotest.test_case "bad label" `Quick test_verify_bad_label;
          Alcotest.test_case "alias of declaration" `Quick test_verify_alias_of_declaration;
          Alcotest.test_case "double definition" `Quick test_verify_double_def;
        ] );
      ( "clone",
        [
          Alcotest.test_case "module clone independent" `Quick test_clone_module_independent;
          Alcotest.test_case "instruction map" `Quick test_clone_ins_map;
          Alcotest.test_case "extract adds declarations" `Quick test_extract_adds_declarations;
        ] );
      ( "cfg/dom",
        [
          Alcotest.test_case "predecessors" `Quick test_cfg_preds;
          Alcotest.test_case "rpo entry first" `Quick test_cfg_rpo_starts_at_entry;
          Alcotest.test_case "remove unreachable" `Quick test_cfg_remove_unreachable;
          Alcotest.test_case "dominators" `Quick test_dom_diamond;
          Alcotest.test_case "dominance frontier" `Quick test_dom_frontier;
          Alcotest.test_case "uses" `Quick test_uses_of_func;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arith" `Quick test_interp_arith;
          Alcotest.test_case "branch" `Quick test_interp_branch;
          Alcotest.test_case "loop" `Quick test_interp_loop;
          Alcotest.test_case "memory" `Quick test_interp_memory;
          Alcotest.test_case "signed narrow" `Quick test_interp_signed_narrow;
          Alcotest.test_case "string constant" `Quick test_interp_string_constant;
          Alcotest.test_case "switch" `Quick test_interp_switch;
          Alcotest.test_case "indirect call" `Quick test_interp_indirect_call;
          Alcotest.test_case "host function" `Quick test_interp_host_function;
          Alcotest.test_case "div by zero traps" `Quick test_interp_division_by_zero_traps;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_eval_wraps;
          QCheck_alcotest.to_alcotest prop_normalize_idempotent;
        ] );
    ]
