(* Tests for the mini-C frontend: lexer, parser, type checker, and
   end-to-end semantics via the reference interpreter. *)

let compile src = Minic.Lower.compile src

let run ?(host = []) src fname args =
  let m = compile src in
  let st = Ir.Interp.create m in
  List.iter (fun (n, f) -> Ir.Interp.register_host st n f) host;
  Ir.Interp.run st fname args

(* ---------------- lexer ---------------- *)

let toks src =
  List.map (fun l -> l.Minic.Lexer.tok) (Minic.Lexer.tokenize src)

let test_lex_basic () =
  match toks "int x = 42;" with
  | [ KW "int"; IDENT "x"; PUNCT "="; INT 42L; PUNCT ";"; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_operators () =
  match toks "a<<=" with
  | [ IDENT "a"; PUNCT "<<"; PUNCT "="; EOF ] -> ()
  | _ -> Alcotest.fail "longest match failed"

let test_lex_char_literals () =
  match toks "'a' '\\n' '\\0'" with
  | [ INT 97L; INT 10L; INT 0L; EOF ] -> ()
  | _ -> Alcotest.fail "char literals"

let test_lex_string_escape () =
  match toks {|"hi\n"|} with
  | [ STRING "hi\n"; EOF ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lex_comments () =
  match toks "x // comment\n /* block */ y" with
  | [ IDENT "x"; IDENT "y"; EOF ] -> ()
  | _ -> Alcotest.fail "comments"

let test_lex_hex () =
  match toks "0xFF" with
  | [ INT 255L; EOF ] -> ()
  | _ -> Alcotest.fail "hex literal"

(* ---------------- parser ---------------- *)

let test_parse_precedence () =
  (* 2+3*4 = 14, not 20 *)
  Alcotest.(check int64) "prec" 14L (run "int f(void) { return 2 + 3 * 4; }" "f" [])

let test_parse_assoc () =
  (* 10-3-2 = 5 (left assoc) *)
  Alcotest.(check int64) "assoc" 5L (run "int f(void) { return 10 - 3 - 2; }" "f" [])

let test_parse_error_reported () =
  Alcotest.check_raises "missing semicolon"
    (Minic.Parser.Parse_error "line 1: expected \";\"")
    (fun () -> ignore (Minic.Parser.parse_program "int f(void) { return 1 }"))

(* ---------------- typecheck ---------------- *)

let check_errors src = Minic.Typecheck.check (Minic.Parser.parse_program src)

let test_tc_ok () =
  Alcotest.(check int) "no errors" 0
    (List.length (check_errors "int f(int x) { return x + 1; }"))

let test_tc_undeclared () =
  Alcotest.(check bool) "undeclared caught" true
    (check_errors "int f(void) { return y; }" <> [])

let test_tc_arity () =
  Alcotest.(check bool) "arity caught" true
    (check_errors "int g(int a, int b) { return a; } int f(void) { return g(1); }" <> [])

let test_tc_break_outside_loop () =
  Alcotest.(check bool) "break caught" true
    (check_errors "int f(void) { break; return 0; }" <> [])

let test_tc_lvalue () =
  Alcotest.(check bool) "non-lvalue assignment caught" true
    (check_errors "int f(void) { 3 = 4; return 0; }" <> [])

let test_tc_duplicate_case () =
  Alcotest.(check bool) "duplicate case caught" true
    (check_errors
       "int f(int x) { switch (x) { case 1: return 1; case 1: return 2; } return 0; }"
     <> [])

(* ---------------- semantics ---------------- *)

let test_sem_factorial () =
  let src =
    {|
int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}
|}
  in
  Alcotest.(check int64) "5!" 120L (run src "fact" [ 5L ])

let test_sem_loops () =
  let src =
    {|
int sum_to(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) acc += i;
  return acc;
}
int count_down(int n) {
  int steps = 0;
  while (n > 0) { n--; steps++; }
  return steps;
}
int do_once(void) {
  int x = 0;
  do { x = x + 7; } while (0);
  return x;
}
|}
  in
  Alcotest.(check int64) "for" 45L (run src "sum_to" [ 10L ]);
  Alcotest.(check int64) "while" 5L (run src "count_down" [ 5L ]);
  Alcotest.(check int64) "do" 7L (run src "do_once" [])

let test_sem_break_continue () =
  let src =
    {|
int f(void) {
  int acc = 0;
  for (int i = 0; i < 10; i++) {
    if (i == 3) continue;
    if (i == 6) break;
    acc += i;
  }
  return acc;
}
|}
  in
  (* 0+1+2+4+5 = 12 *)
  Alcotest.(check int64) "break/continue" 12L (run src "f" [])

let test_sem_short_circuit () =
  let src =
    {|
int calls;
int bump(void) { calls = calls + 1; return 1; }
int andf(int x) { return x && bump(); }
int orf(int x) { return x || bump(); }
int get_calls(void) { return calls; }
|}
  in
  let m = compile src in
  let st = Ir.Interp.create m in
  Alcotest.(check int64) "0 && f() = 0" 0L (Ir.Interp.run st "andf" [ 0L ]);
  Alcotest.(check int64) "no call" 0L (Ir.Interp.run st "get_calls" []);
  Alcotest.(check int64) "1 || f() = 1" 1L (Ir.Interp.run st "orf" [ 1L ]);
  Alcotest.(check int64) "still no call" 0L (Ir.Interp.run st "get_calls" []);
  Alcotest.(check int64) "1 && f() = 1" 1L (Ir.Interp.run st "andf" [ 1L ]);
  Alcotest.(check int64) "one call" 1L (Ir.Interp.run st "get_calls" [])

let test_sem_switch_fallthrough () =
  let src =
    {|
int f(int x) {
  int r = 0;
  switch (x) {
    case 1: r += 1;
    case 2: r += 2; break;
    case 3: r += 4; break;
    default: r = 100;
  }
  return r;
}
|}
  in
  Alcotest.(check int64) "case 1 falls into 2" 3L (run src "f" [ 1L ]);
  Alcotest.(check int64) "case 2" 2L (run src "f" [ 2L ]);
  Alcotest.(check int64) "case 3" 4L (run src "f" [ 3L ]);
  Alcotest.(check int64) "default" 100L (run src "f" [ 9L ])

let test_sem_pointers () =
  let src =
    {|
int swap_and_sum(void) {
  int a = 3;
  int b = 4;
  int *pa = &a;
  int *pb = &b;
  int t = *pa;
  *pa = *pb;
  *pb = t;
  return a * 10 + b;
}
|}
  in
  Alcotest.(check int64) "swap" 43L (run src "swap_and_sum" [])

let test_sem_arrays () =
  let src =
    {|
int f(void) {
  int xs[5];
  for (int i = 0; i < 5; i++) xs[i] = i * i;
  int acc = 0;
  for (int i = 0; i < 5; i++) acc += xs[i];
  return acc;
}
|}
  in
  Alcotest.(check int64) "array sum of squares" 30L (run src "f" [])

let test_sem_global_state () =
  let src =
    {|
static int counter = 10;
int next(void) { counter = counter + 1; return counter; }
|}
  in
  let m = compile src in
  let st = Ir.Interp.create m in
  Alcotest.(check int64) "11" 11L (Ir.Interp.run st "next" []);
  Alcotest.(check int64) "12" 12L (Ir.Interp.run st "next" [])

let test_sem_global_table () =
  let src =
    {|
static const int primes[5] = {2, 3, 5, 7, 11};
int nth(int i) { return primes[i]; }
|}
  in
  Alcotest.(check int64) "primes[3]" 7L (run src "nth" [ 3L ])

let test_sem_string () =
  let src =
    {|
static const char msg[] = "abc";
int f(int i) { return msg[i]; }
|}
  in
  Alcotest.(check int64) "'b'" 98L (run src "f" [ 1L ]);
  Alcotest.(check int64) "NUL" 0L (run src "f" [ 3L ])

let test_sem_char_narrowing () =
  let src =
    {|
int f(void) {
  char c = 200;
  return c;
}
|}
  in
  (* char is signed: 200 wraps to -56 *)
  Alcotest.(check int64) "signed char" (-56L) (run src "f" [])

let test_sem_islower_paper_example () =
  (* Figure 2 of the paper *)
  let src = {|
int islower(char chr) {
  if (chr >= 'a') {
    if (chr <= 'z') return 1;
    return 0;
  }
  return 0;
}
|} in
  Alcotest.(check int64) "'m' is lower" 1L (run src "islower" [ Int64.of_int (Char.code 'm') ]);
  Alcotest.(check int64) "'A' is not" 0L (run src "islower" [ Int64.of_int (Char.code 'A') ]);
  Alcotest.(check int64) "'{' is not" 0L (run src "islower" [ Int64.of_int (Char.code '{') ])

let test_sem_ternary () =
  let src = "int mx(int a, int b) { return a > b ? a : b; }" in
  Alcotest.(check int64) "max" 9L (run src "mx" [ 4L; 9L ]);
  Alcotest.(check int64) "max'" 9L (run src "mx" [ 9L; 4L ])

let test_sem_function_pointers () =
  let src =
    {|
static int inc(int x) { return x + 1; }
static int dbl(int x) { return x * 2; }
static int *ops[2] = {inc, dbl};
int apply(int i, int x) {
  int *f = ops[i];
  return f(x);
}
|}
  in
  Alcotest.(check int64) "ops[0]" 8L (run src "apply" [ 0L; 7L ]);
  Alcotest.(check int64) "ops[1]" 14L (run src "apply" [ 1L; 7L ])

let test_sem_shift_and_mask () =
  let src =
    {|
long mix(long x) {
  long h = x;
  h = h ^ (h >> 4);
  h = (h << 3) | (h & 7);
  return h;
}
|}
  in
  let reference x =
    let open Int64 in
    let h = x in
    let h = logxor h (shift_right h 4) in
    logor (shift_left h 3) (logand h 7L)
  in
  List.iter
    (fun x -> Alcotest.(check int64) "mix" (reference x) (run src "mix" [ x ]))
    [ 0L; 1L; 255L; 123456789L ]

let test_sem_host_call () =
  let src =
    {|
extern int observe(int x);
int f(int x) { return observe(x * 2); }
|}
  in
  (* extern prototype: parses as a declaration *)
  let seen = ref 0L in
  let v =
    run
      ~host:[ ("observe", fun _ args -> (seen := List.hd args); 7L) ]
      src "f" [ 21L ]
  in
  Alcotest.(check int64) "host result" 7L v;
  Alcotest.(check int64) "host saw doubled arg" 42L !seen

(* property: frontend + interpreter compute the same arithmetic as OCaml *)
let prop_arith_matches =
  QCheck2.Test.make ~name:"mini-C arithmetic matches OCaml semantics" ~count:100
    QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range 1 1000))
    (fun (a, b) ->
      let src = "int f(int a, int b) { return (a + b) * 3 - a / b + (a % b); }" in
      let expected =
        let open Int64 in
        let a64 = of_int a and b64 = of_int b in
        Ir.Types.normalize Ir.Types.I32
          (add (sub (mul (add a64 b64) 3L) (div a64 b64)) (rem a64 b64))
      in
      run src "f" [ Int64.of_int a; Int64.of_int b ] = expected)

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "char literals" `Quick test_lex_char_literals;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escape;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "hex" `Quick test_lex_hex;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_assoc;
          Alcotest.test_case "error reporting" `Quick test_parse_error_reported;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "ok" `Quick test_tc_ok;
          Alcotest.test_case "undeclared" `Quick test_tc_undeclared;
          Alcotest.test_case "arity" `Quick test_tc_arity;
          Alcotest.test_case "break placement" `Quick test_tc_break_outside_loop;
          Alcotest.test_case "lvalue" `Quick test_tc_lvalue;
          Alcotest.test_case "duplicate case" `Quick test_tc_duplicate_case;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "factorial" `Quick test_sem_factorial;
          Alcotest.test_case "loops" `Quick test_sem_loops;
          Alcotest.test_case "break/continue" `Quick test_sem_break_continue;
          Alcotest.test_case "short circuit" `Quick test_sem_short_circuit;
          Alcotest.test_case "switch fallthrough" `Quick test_sem_switch_fallthrough;
          Alcotest.test_case "pointers" `Quick test_sem_pointers;
          Alcotest.test_case "arrays" `Quick test_sem_arrays;
          Alcotest.test_case "global state" `Quick test_sem_global_state;
          Alcotest.test_case "global table" `Quick test_sem_global_table;
          Alcotest.test_case "string" `Quick test_sem_string;
          Alcotest.test_case "char narrowing" `Quick test_sem_char_narrowing;
          Alcotest.test_case "islower (Fig. 2)" `Quick test_sem_islower_paper_example;
          Alcotest.test_case "ternary" `Quick test_sem_ternary;
          Alcotest.test_case "function pointers" `Quick test_sem_function_pointers;
          Alcotest.test_case "shift and mask" `Quick test_sem_shift_and_mask;
          Alcotest.test_case "host call" `Quick test_sem_host_call;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_arith_matches ]);
    ]
