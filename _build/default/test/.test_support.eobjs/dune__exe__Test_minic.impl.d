test/test_minic.ml: Alcotest Char Int64 Ir List Minic QCheck2 QCheck_alcotest
