test/test_odin.ml: Alcotest Array Hashtbl Int64 Ir Link List Minic Odin Opt Option Printf QCheck2 QCheck_alcotest Set String Vm
