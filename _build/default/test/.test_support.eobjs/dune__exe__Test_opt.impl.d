test/test_opt.ml: Alcotest Int64 Ir List Minic Opt Option Printf QCheck2 QCheck_alcotest String
