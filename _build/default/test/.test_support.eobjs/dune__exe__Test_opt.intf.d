test/test_opt.mli:
