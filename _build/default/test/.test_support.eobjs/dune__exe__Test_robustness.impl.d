test/test_robustness.ml: Alcotest Baselines Char Instr Int64 Ir Link List Minic Odin Opt Option Printf QCheck2 QCheck_alcotest String Support Vm Workloads
