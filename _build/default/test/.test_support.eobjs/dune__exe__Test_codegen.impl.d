test/test_codegen.ml: Alcotest Array Int64 Ir Link List Minic Opt Printf QCheck2 QCheck_alcotest String Vm
