test/test_odin.mli:
