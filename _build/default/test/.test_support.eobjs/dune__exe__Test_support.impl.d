test/test_support.ml: Alcotest Int64 List QCheck2 QCheck_alcotest String Support
