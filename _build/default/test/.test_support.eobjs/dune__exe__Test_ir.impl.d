test/test_ir.ml: Alcotest Int64 Ir List Option QCheck2 QCheck_alcotest
