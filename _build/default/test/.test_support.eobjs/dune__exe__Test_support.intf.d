test/test_support.mli:
