test/test_eval.ml: Alcotest Array Baselines Buildsim Char Fuzzer Hashtbl Int64 Ir Lazy List Minic Odin Opt Option String Support Vm Workloads
