(* Tests for the Odin core: symbol classification (Section 3.2 step 1),
   fragment creation (Algorithm 1), missing-symbol handling and
   internalization, the recompilation scheduler (Algorithm 2), the
   copy-instrument-split flow, probe pruning, and the correctness of the
   executables Odin produces across recompilations. *)

module SSet = Set.Make (String)

(* The Figure 6 example program (printf takes the literal directly so the
   instcombine rewrite sees the constant). *)
let fig6_src =
  {|
extern int printf(char *fmt);
static int n;
static int add(void) { n = n + 1; return n; }
static int neg(int x) { return -n; }
void show(void) { printf("hi\n"); }
int main(void) { show(); return neg(add()); }
|}

let compile = Minic.Lower.compile

(* ---------------- classification ---------------- *)

let test_classify_fig6 () =
  let m = compile fig6_src in
  let cls = Odin.Classify.classify ~keep:[ "main" ] m in
  (* the string literal is clonable and needed by instcombine *)
  Alcotest.(check bool) "string is copy-on-use" true
    (Odin.Classify.category_of cls ".str.0" = Odin.Classify.Copy_on_use);
  (* neg's dead argument bonds it to its caller *)
  let bonded a b =
    List.exists
      (fun (x, y) -> (x = a && y = b) || (x = b && y = a))
      cls.Odin.Classify.bonds
  in
  Alcotest.(check bool) "neg bonded to main" true (bonded "neg" "main");
  (* the mutable global n is not clonable *)
  Alcotest.(check bool) "n is not copy-on-use" true
    (Odin.Classify.category_of cls "n" <> Odin.Classify.Copy_on_use)

let test_classify_alias_innate () =
  let m =
    Ir.Parse.module_of_string
      {|
@second_name = external alias @base
define external @base() i32 {
entry:
  ret i32 1
}
|}
  in
  let bonds = Odin.Classify.innate_bonds m in
  Alcotest.(check bool) "alias bonded to base" true
    (List.exists (fun (a, b) -> a = "second_name" && b = "base") bonds)

let test_classify_comdat_innate () =
  let m =
    Ir.Parse.module_of_string
      {|
define external @f1() comdat(grp) i32 {
entry:
  ret i32 1
}
define external @f2() comdat(grp) i32 {
entry:
  ret i32 2
}
|}
  in
  let bonds = Odin.Classify.innate_bonds m in
  Alcotest.(check bool) "comdat members bonded" true
    (List.exists
       (fun (a, b) -> (a = "f1" && b = "f2") || (a = "f2" && b = "f1"))
       bonds)

(* ---------------- partitioning ---------------- *)

let definitions m =
  List.filter Ir.Modul.is_definition (Ir.Modul.globals m)
  |> List.map Ir.Modul.gvalue_name

let plan_of ?(mode = Odin.Partition.Auto) src =
  let m = compile src in
  let cls = Odin.Classify.classify ~keep:[ "main" ] m in
  (m, Odin.Partition.plan ~mode ~keep:[ "main" ] m cls)

(* a program with functions too big to inline, so Auto keeps them apart *)
let multi_src =
  {|
static int acc;
int work_a(int x) {
  int r = x;
  for (int i = 0; i < 10; i++) { r = r * 3 + i; r = r ^ (r >> 2); r = r + i * 7; }
  for (int i = 0; i < 10; i++) { r = r - i; r = r | 1; r = r * 5 + 11; }
  return r;
}
int work_b(int x) {
  int r = x + 1;
  for (int i = 0; i < 12; i++) { r = r * 7 + i; r = r ^ (r >> 3); r = r - i * 5; }
  for (int i = 0; i < 12; i++) { r = r + i; r = r & 0xFFFF; r = r * 3 + 13; }
  return r;
}
int main(int x) {
  acc = work_a(x);
  return work_b(acc);
}
|}

let test_partition_modes () =
  let m, plan_one = plan_of ~mode:Odin.Partition.One multi_src in
  Alcotest.(check int) "one fragment" 1 (Odin.Partition.fragment_count plan_one);
  let _, plan_max = plan_of ~mode:Odin.Partition.Max multi_src in
  Alcotest.(check int) "max fragments = defs" (List.length (definitions m))
    (Odin.Partition.fragment_count plan_max);
  let _, plan_auto = plan_of ~mode:Odin.Partition.Auto multi_src in
  Alcotest.(check bool) "auto in between" true
    (Odin.Partition.fragment_count plan_auto >= 1
    && Odin.Partition.fragment_count plan_auto
       <= Odin.Partition.fragment_count plan_max)

let test_partition_covers_definitions () =
  List.iter
    (fun mode ->
      let m, plan = plan_of ~mode multi_src in
      let defs = SSet.of_list (definitions m) in
      let in_fragments =
        Array.fold_left
          (fun acc (f : Odin.Partition.fragment) ->
            Odin.Partition.SSet.fold SSet.add f.Odin.Partition.members acc)
          SSet.empty plan.Odin.Partition.fragments
      in
      let copy_on_use =
        SSet.filter
          (fun s ->
            Odin.Classify.category_of plan.Odin.Partition.classification s
            = Odin.Classify.Copy_on_use
            && mode <> Odin.Partition.One)
          defs
      in
      (* fragments + copy-on-use = all definitions, disjointly *)
      Alcotest.(check bool)
        "every definition placed" true
        (SSet.equal (SSet.union in_fragments copy_on_use) defs);
      (* no symbol in two fragments *)
      let total =
        Array.fold_left
          (fun acc (f : Odin.Partition.fragment) ->
            acc + Odin.Partition.SSet.cardinal f.Odin.Partition.members)
          0 plan.Odin.Partition.fragments
      in
      Alcotest.(check int) "disjoint" (SSet.cardinal in_fragments) total)
    [ Odin.Partition.One; Odin.Partition.Auto; Odin.Partition.Max ]

let test_partition_internalizes () =
  let _, plan = plan_of ~mode:Odin.Partition.Auto multi_src in
  (* main is kept exported *)
  Alcotest.(check bool) "main exported" true
    (Hashtbl.find plan.Odin.Partition.visibility "main" = Ir.Func.External)

(* Materialize all fragments, link them, and compare against a plain
   whole-program build. *)
let link_fragments ?(host = []) (m : Ir.Modul.t) (plan : Odin.Partition.plan) =
  let source _ = None in
  let objs =
    Array.to_list plan.Odin.Partition.fragments
    |> List.map (fun f ->
           let fm = Odin.Partition.materialize plan f ~source ~base:m in
           Ir.Verify.run_exn fm;
           ignore (Opt.Pipeline.run_fragment fm);
           Link.Objfile.of_module fm)
  in
  Link.Linker.link ~host objs

let test_partition_links_and_runs () =
  List.iter
    (fun mode ->
      let m, plan = plan_of ~mode multi_src in
      let exe = link_fragments m plan in
      let vm = Vm.create exe in
      let got = Vm.call vm "main" [ 5L ] in
      (* reference: interpret the unoptimized whole program *)
      let st = Ir.Interp.create (compile multi_src) in
      let expected = Ir.Interp.run st "main" [ 5L ] in
      Alcotest.(check int64)
        (Printf.sprintf "mode %s agrees" (Odin.Partition.mode_to_string mode))
        expected got)
    [ Odin.Partition.One; Odin.Partition.Auto; Odin.Partition.Max ]

let test_partition_fig6_copy_on_use_cloned () =
  (* copy-on-use cloning is survey knowledge, so it applies in Auto mode
     (One keeps everything local; blind Max has no survey) *)
  let m, plan = plan_of ~mode:Odin.Partition.Auto fig6_src in
  (* find the fragment containing show; it must clone the string *)
  match Odin.Partition.fragment_of plan "show" with
  | None -> Alcotest.fail "show not in any fragment"
  | Some fid ->
    let f = plan.Odin.Partition.fragments.(fid) in
    Alcotest.(check bool) "string cloned into show's fragment" true
      (Odin.Partition.SSet.mem ".str.0" f.Odin.Partition.clones);
    let fm =
      Odin.Partition.materialize plan f ~source:(fun _ -> None) ~base:m
    in
    Ir.Verify.run_exn fm;
    (* the clone carries a fragment-unique internal name *)
    Alcotest.(check bool) "clone present" true
      (Ir.Modul.mem fm (Printf.sprintf ".str.0$f%d" fid))

(* ---------------- session + OdinCov end to end ---------------- *)

let target_src =
  {|
int classify(int x) {
  if (x < 10) return 1;
  if (x < 100) {
    int acc = 0;
    for (int i = 0; i < 4; i++) acc += x >> i;
    return acc;
  }
  return -1;
}
int main(int x) { return classify(x); }
|}

let make_cov_session ?(mode = Odin.Partition.Auto) src =
  let m = compile src in
  let session =
    Odin.Session.create ~mode ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      m
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  (session, cov)

let vm_of session =
  Vm.create (Odin.Session.executable session)

let test_session_builds_and_runs () =
  let session, _cov = make_cov_session target_src in
  let vm = vm_of session in
  Alcotest.(check int64) "main(5)" 1L (Vm.call vm "main" [ 5L ]);
  Alcotest.(check int64) "main(50)" (Int64.of_int (50 + 25 + 12 + 6))
    (Vm.call vm "main" [ 50L ]);
  Alcotest.(check int64) "main(5000)" (-1L) (Vm.call vm "main" [ 5000L ])

let test_session_counters_fire () =
  let session, cov = make_cov_session target_src in
  let vm = vm_of session in
  ignore (Vm.call vm "main" [ 5L ]);
  let fresh = Odin.Cov.harvest cov vm in
  Alcotest.(check bool) "some probes fired" true (List.length fresh > 0);
  Alcotest.(check bool) "not all probes fired" true
    (List.length fresh < cov.Odin.Cov.total_probes)

let test_session_prune_recompiles_and_speeds_up () =
  let session, cov = make_cov_session target_src in
  let vm = vm_of session in
  ignore (Vm.call vm "main" [ 50L ]);
  let instrumented_cycles = vm.Vm.cycles in
  ignore (Odin.Cov.harvest cov vm);
  let pruned = Odin.Cov.prune_fired cov in
  Alcotest.(check bool) "pruned something" true (pruned > 0);
  (match Odin.Session.refresh session with
  | Some event ->
    Alcotest.(check bool) "recompiled some fragments" true
      (event.Odin.Session.ev_fragments <> [])
  | None -> Alcotest.fail "expected a rebuild");
  let vm2 = vm_of session in
  let r = Vm.call vm2 "main" [ 50L ] in
  Alcotest.(check int64) "result unchanged after prune" 93L r;
  Alcotest.(check bool) "pruned run is cheaper" true
    (vm2.Vm.cycles < instrumented_cycles);
  (* counters on the executed path are gone *)
  Alcotest.(check int) "no fresh coverage" 0
    (List.length (Odin.Cov.harvest cov vm2))

let test_session_scope_is_limited () =
  (* with Max partitioning, pruning probes in one function must not
     recompile the others *)
  let session, cov = make_cov_session ~mode:Odin.Partition.Max multi_src in
  let nfrags = Odin.Partition.fragment_count session.Odin.Session.plan in
  let vm = vm_of session in
  ignore (Vm.call vm "work_a" [ 3L ]);
  ignore (Odin.Cov.harvest cov vm);
  ignore (Odin.Cov.prune_fired cov);
  match Odin.Session.refresh session with
  | Some event ->
    Alcotest.(check bool) "recompiled a strict subset of fragments" true
      (List.length event.Odin.Session.ev_fragments < nfrags);
    (* work_a's fragment is in the set *)
    let fid = Option.get (Odin.Partition.fragment_of session.Odin.Session.plan "work_a") in
    Alcotest.(check bool) "work_a's fragment recompiled" true
      (List.mem fid event.Odin.Session.ev_fragments)
  | None -> Alcotest.fail "expected a rebuild"

let test_session_unchanged_fragments_reuse_cache () =
  let session, cov = make_cov_session ~mode:Odin.Partition.Max multi_src in
  let before = Hashtbl.copy session.Odin.Session.cache in
  let vm = vm_of session in
  ignore (Vm.call vm "work_a" [ 3L ]);
  ignore (Odin.Cov.harvest cov vm);
  ignore (Odin.Cov.prune_fired cov);
  (match Odin.Session.refresh session with Some _ -> () | None -> Alcotest.fail "rebuild");
  let changed = ref 0 and unchanged = ref 0 in
  Hashtbl.iter
    (fun fid obj ->
      match Hashtbl.find_opt session.Odin.Session.cache fid with
      | Some obj2 when obj == obj2 -> incr unchanged
      | _ -> incr changed)
    before;
  Alcotest.(check bool) "cache objects reused" true (!unchanged > 0);
  Alcotest.(check bool) "some objects replaced" true (!changed > 0)

let test_session_back_propagation () =
  (* Algorithm 2 lines 13-17: when fragment F is recompiled because one
     probe changed, the *other* active probes in F must be re-applied —
     their counters keep working after the rebuild. *)
  let session, cov = make_cov_session ~mode:Odin.Partition.One target_src in
  let vm = vm_of session in
  ignore (Vm.call vm "main" [ 5L ]);
  ignore (Odin.Cov.harvest cov vm);
  ignore (Odin.Cov.prune_fired cov);
  ignore (Odin.Session.refresh session);
  (* a fresh path should still produce fresh coverage *)
  let vm2 = vm_of session in
  ignore (Vm.call vm2 "main" [ 50L ]);
  let fresh = Odin.Cov.harvest cov vm2 in
  Alcotest.(check bool) "remaining probes still live after rebuild" true
    (List.length fresh > 0)

let test_session_events_recorded () =
  let session, cov = make_cov_session target_src in
  let vm = vm_of session in
  ignore (Vm.call vm "main" [ 5L ]);
  ignore (Odin.Cov.harvest cov vm);
  ignore (Odin.Cov.prune_fired cov);
  ignore (Odin.Session.refresh session);
  let events = Odin.Session.events session in
  Alcotest.(check int) "two events (build + refresh)" 2 (List.length events);
  List.iter
    (fun (e : Odin.Session.recompile_event) ->
      Alcotest.(check bool) "compile time measured" true (e.Odin.Session.ev_compile_time >= 0.))
    events

(* ---------------- CmpLog ---------------- *)

let cmp_src =
  {|
int check_magic(int x) {
  if (x == 13371337) return 1;
  return 0;
}
int main(int x) { return check_magic(x + 1); }
|}

let test_cmplog_records_original_operands () =
  let m = compile cmp_src in
  let session = Odin.Session.create ~keep:[ "main" ] m in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  let vm = vm_of session in
  Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
  ignore (Vm.call vm "main" [ 41L ]);
  let records = Odin.Cmplog.drain cmplog in
  (* instrument-first: the logged operand is the *original* value x+1 = 42
     compared against the magic constant — exactly what input-to-state
     correspondence needs *)
  Alcotest.(check bool) "operands logged" true
    (List.exists
       (fun (r : Odin.Cmplog.record) ->
         (r.Odin.Cmplog.rec_lhs = 42L && r.Odin.Cmplog.rec_rhs = 13371337L)
         || (r.Odin.Cmplog.rec_lhs = 13371337L && r.Odin.Cmplog.rec_rhs = 42L))
       records)

let test_cmplog_prune_solved () =
  let m = compile cmp_src in
  let session = Odin.Session.create ~keep:[ "main" ] m in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  let vm = vm_of session in
  Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
  (* see both outcomes of the magic check *)
  ignore (Vm.call vm "main" [ 41L ]);
  ignore (Vm.call vm "main" [ 13371336L ]);
  ignore (Odin.Cmplog.drain cmplog);
  let pruned = Odin.Cmplog.prune_solved cmplog in
  Alcotest.(check bool) "solved comparison pruned" true (pruned > 0);
  (match Odin.Session.refresh session with
  | Some _ -> ()
  | None -> Alcotest.fail "expected rebuild");
  (* after the rebuild the pruned comparison logs nothing *)
  let vm2 = vm_of session in
  Vm.register_host vm2 Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
  ignore (Vm.call vm2 "main" [ 41L ]);
  let records = Odin.Cmplog.drain cmplog in
  Alcotest.(check bool) "no more logging for solved cmp" true
    (not
       (List.exists
          (fun (r : Odin.Cmplog.record) -> r.Odin.Cmplog.rec_rhs = 13371337L)
          records))

(* ---------------- checks (Section 7 future work) ---------------- *)

let checks_src =
  {|
int divide(int a, int b) { return a / b; }
int main(int a, int b) { return divide(a, b + 1); }
|}

let test_checks_detect_violation () =
  let m = compile checks_src in
  let session = Odin.Session.create ~keep:[ "main" ] m in
  let checks = Odin.Checks.setup session in
  ignore (Odin.Session.build session);
  let vm = vm_of session in
  List.iter (fun (n, h) -> Vm.register_host vm n h) (Odin.Checks.host_hooks checks);
  ignore (Vm.call vm "main" [ 10L; 1L ]);
  Alcotest.(check int) "no violation yet" 0 (List.length checks.Odin.Checks.violations);
  (try ignore (Vm.call vm "main" [ 10L; -1L ]) with Vm.Fault _ -> ());
  Alcotest.(check bool) "division-by-zero flagged" true
    (List.length checks.Odin.Checks.violations > 0)

let test_checks_hot_pruning () =
  let m = compile checks_src in
  let session = Odin.Session.create ~keep:[ "main" ] m in
  let checks = Odin.Checks.setup session in
  ignore (Odin.Session.build session);
  let vm = vm_of session in
  List.iter (fun (n, h) -> Vm.register_host vm n h) (Odin.Checks.host_hooks checks);
  for i = 1 to 150 do
    ignore (Vm.call vm "main" [ Int64.of_int i; 2L ])
  done;
  let pruned = Odin.Checks.prune_hot ~threshold:100 checks in
  Alcotest.(check bool) "hot check pruned" true (pruned > 0);
  (match Odin.Session.refresh session with Some _ -> () | None -> Alcotest.fail "rebuild");
  let vm2 = vm_of session in
  List.iter (fun (n, h) -> Vm.register_host vm2 n h) (Odin.Checks.host_hooks checks);
  let trips_before = checks.Odin.Checks.trips in
  ignore (Vm.call vm2 "main" [ 5L; 2L ]);
  Alcotest.(check int) "no more trips after pruning" trips_before
    checks.Odin.Checks.trips


let test_combined_cov_and_cmplog_session () =
  (* two schemes composed in one session: coverage counters and CmpLog
     probes both survive each other's rebuild cycles *)
  let m = compile cmp_src in
  let session =
    Odin.Session.create ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      m
  in
  let cov = Odin.Cov.setup session in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  let run x =
    let vm = Vm.create (Odin.Session.executable session) in
    Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
    let r = Vm.call vm "main" [ x ] in
    (r, vm)
  in
  let _, vm = run 41L in
  (* both feedback channels live *)
  Alcotest.(check bool) "coverage fired" true
    (List.length (Odin.Cov.harvest cov vm) > 0);
  Alcotest.(check bool) "cmplog fired" true (Odin.Cmplog.drain cmplog <> []);
  (* prune coverage; CmpLog probes must survive the rebuild *)
  ignore (Odin.Cov.prune_fired cov);
  (match Odin.Session.refresh session with
  | Some _ -> ()
  | None -> Alcotest.fail "rebuild expected");
  let r2, vm2 = run 41L in
  Alcotest.(check int64) "semantics stable" 0L r2;
  Alcotest.(check int) "coverage quiet after prune" 0
    (List.length (Odin.Cov.harvest cov vm2));
  Alcotest.(check bool) "cmplog still logging after coverage prune" true
    (Odin.Cmplog.drain cmplog <> [])

(* property: for random small programs, Odin's partitioned+instrumented
   build computes the same results as the reference interpreter, across
   a prune/rebuild cycle *)
let prop_session_correct_across_rebuilds =
  QCheck2.Test.make ~name:"Odin build = reference across prune/rebuild" ~count:15
    QCheck2.Gen.(pair (int_range 2 4) (int_range (-50) 50))
    (fun (nfuncs, x) ->
      let fns =
        List.init nfuncs (fun i ->
            Printf.sprintf
              "int fn%d(int x) { int r = x + %d; for (int i = 0; i < %d; i++) r = r * 3 + i; if (r > 100) r = r - %d; return r; }"
              i i (2 + i) (i * 17))
      in
      let calls =
        String.concat " + "
          (List.init nfuncs (fun i -> Printf.sprintf "fn%d(x)" i))
      in
      let src =
        String.concat "\n" fns
        ^ Printf.sprintf "\nint main(int x) { return %s; }" calls
      in
      let m = compile src in
      let session =
        Odin.Session.create ~keep:[ "main" ]
          ~runtime_globals:[ Odin.Cov.runtime_global m ]
          m
      in
      let cov = Odin.Cov.setup session in
      ignore (Odin.Session.build session);
      let st = Ir.Interp.create (compile src) in
      let expected = Ir.Interp.run st "main" [ Int64.of_int x ] in
      let vm = vm_of session in
      let first = Vm.call vm "main" [ Int64.of_int x ] in
      ignore (Odin.Cov.harvest cov vm);
      ignore (Odin.Cov.prune_fired cov);
      ignore (Odin.Session.refresh session);
      let vm2 = vm_of session in
      let second = Vm.call vm2 "main" [ Int64.of_int x ] in
      first = expected && second = expected)


(* ---------------- ablations (DESIGN.md section 5) ---------------- *)

let test_ablation_no_backprop_loses_probes () =
  (* Algorithm 2 lines 13-17 exist for a reason: without back-propagation,
     recompiling a fragment silently drops the unchanged probes that lived
     in it — coverage goes dark *)
  let run ~backprop =
    let m = compile target_src in
    let session =
      Odin.Session.create ~mode:Odin.Partition.One ~keep:[ "main" ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        m
    in
    let cov = Odin.Cov.setup session in
    ignore (Odin.Session.build session);
    (* cover the x<10 path, prune it, rebuild with/without backprop *)
    let vm = Vm.create (Odin.Session.executable session) in
    ignore (Vm.call vm "main" [ 5L ]);
    ignore (Odin.Cov.harvest cov vm);
    ignore (Odin.Cov.prune_fired cov);
    ignore (Odin.Session.refresh ~backprop session);
    (* now run the other path: do the remaining probes still report? *)
    let vm2 = Vm.create (Odin.Session.executable session) in
    ignore (Vm.call vm2 "main" [ 50L ]);
    List.length (Odin.Cov.harvest cov vm2)
  in
  let with_bp = run ~backprop:true in
  let without_bp = run ~backprop:false in
  Alcotest.(check bool) "backprop keeps coverage alive" true (with_bp > 0);
  Alcotest.(check int) "without backprop the probes are gone" 0 without_bp

let test_ablation_copy_on_use_disabled () =
  (* without copy-on-use cloning, the string constant is a fragment of its
     own and local optimization cannot inspect it (missed printf->puts) *)
  let m = compile fig6_src in
  let cls = Odin.Classify.classify ~keep:[ "main" ] m in
  let with_cou = Odin.Partition.plan ~copy_on_use:true ~keep:[ "main" ] m cls in
  let without_cou = Odin.Partition.plan ~copy_on_use:false ~keep:[ "main" ] m cls in
  let total_clones plan =
    Array.fold_left
      (fun acc (f : Odin.Partition.fragment) ->
        acc + Odin.Partition.SSet.cardinal f.Odin.Partition.clones)
      0 plan.Odin.Partition.fragments
  in
  Alcotest.(check bool) "clones exist with copy-on-use" true (total_clones with_cou > 0);
  Alcotest.(check int) "no clones without" 0 (total_clones without_cou);
  (* and the constant becomes an ordinary fragment member *)
  Alcotest.(check bool) "constant gets its own placement" true
    (Odin.Partition.fragment_of without_cou ".str.0" <> None);
  (* both plans still produce working executables *)
  List.iter
    (fun plan ->
      let exe = link_fragments ~host:[ "printf"; "puts" ] m plan in
      let vm = Vm.create exe in
      Vm.register_host vm "printf" (fun _ -> 0L);
      Vm.register_host vm "puts" (fun _ -> 0L);
      ignore (Vm.call vm "main" []))
    [ with_cou; without_cou ]

let () =
  Alcotest.run "odin"
    [
      ( "classify",
        [
          Alcotest.test_case "Fig. 6 program" `Quick test_classify_fig6;
          Alcotest.test_case "alias innate bond" `Quick test_classify_alias_innate;
          Alcotest.test_case "comdat innate bond" `Quick test_classify_comdat_innate;
        ] );
      ( "partition",
        [
          Alcotest.test_case "modes" `Quick test_partition_modes;
          Alcotest.test_case "covers definitions" `Quick test_partition_covers_definitions;
          Alcotest.test_case "internalizes" `Quick test_partition_internalizes;
          Alcotest.test_case "links and runs" `Quick test_partition_links_and_runs;
          Alcotest.test_case "copy-on-use cloned (Fig. 6)" `Quick
            test_partition_fig6_copy_on_use_cloned;
        ] );
      ( "session",
        [
          Alcotest.test_case "builds and runs" `Quick test_session_builds_and_runs;
          Alcotest.test_case "counters fire" `Quick test_session_counters_fire;
          Alcotest.test_case "prune -> recompile -> faster" `Quick
            test_session_prune_recompiles_and_speeds_up;
          Alcotest.test_case "recompile scope limited" `Quick test_session_scope_is_limited;
          Alcotest.test_case "cache reuse" `Quick test_session_unchanged_fragments_reuse_cache;
          Alcotest.test_case "back propagation" `Quick test_session_back_propagation;
          Alcotest.test_case "events recorded" `Quick test_session_events_recorded;
          Alcotest.test_case "combined cov+cmplog schemes" `Quick
            test_combined_cov_and_cmplog_session;
          QCheck_alcotest.to_alcotest prop_session_correct_across_rebuilds;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "no backprop loses probes" `Quick
            test_ablation_no_backprop_loses_probes;
          Alcotest.test_case "copy-on-use disabled" `Quick
            test_ablation_copy_on_use_disabled;
        ] );
      ( "cmplog",
        [
          Alcotest.test_case "original operands (Fig. 2 fix)" `Quick
            test_cmplog_records_original_operands;
          Alcotest.test_case "prune solved" `Quick test_cmplog_prune_solved;
        ] );
      ( "checks",
        [
          Alcotest.test_case "detect violation" `Quick test_checks_detect_violation;
          Alcotest.test_case "hot pruning" `Quick test_checks_hot_pruning;
        ] );
    ]
