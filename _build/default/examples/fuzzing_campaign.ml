(* A live coverage-guided fuzzing campaign with OdinCov in the loop —
   not just corpus replay: probes are pruned and fragments recompiled
   *while fuzzing*, the way a fuzzer would actually integrate Odin.

     dune exec examples/fuzzing_campaign.exe
*)

let entry = "target_main"
let execs = 600

let () =
  print_endline "== Fuzzing campaign with on-demand instrumentation ==\n";
  let profile = Workloads.Profile.find_exn "libpng" in
  let m = Workloads.Generate.compile profile in
  Printf.printf "target: synthetic %s (%d functions)\n" profile.Workloads.Profile.name
    (List.length (Ir.Modul.defined_functions m));

  let session =
    Odin.Session.create ~keep:[ entry ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ~host:Workloads.Generate.host_functions m
  in
  let cov = Odin.Cov.setup session in
  ignore (Odin.Session.build session);
  Printf.printf "probes: %d   fragments: %d\n\n" cov.Odin.Cov.total_probes
    (Odin.Partition.fragment_count session.Odin.Session.plan);

  let recompiles = ref 0 in
  let exec_cycles = ref 0 in
  let target =
    {
      Fuzzer.Fuzz.run =
        (fun input ->
          let vm = Vm.create (Odin.Session.executable session) in
          List.iter
            (fun n -> Vm.register_host vm n (fun _ -> 0L))
            Workloads.Generate.host_functions;
          let addr = Vm.write_buffer vm input in
          ignore (Vm.call vm entry [ addr; Int64.of_int (String.length input) ]);
          let fresh = Odin.Cov.harvest cov vm in
          exec_cycles := !exec_cycles + vm.Vm.cycles;
          (* on-demand: drop what has fired, recompile on the fly *)
          if Odin.Cov.prune_fired cov > 0 then
            (match Odin.Session.refresh session with
            | Some _ -> incr recompiles
            | None -> ());
          { Fuzzer.Fuzz.ex_cycles = vm.Vm.cycles; ex_new_blocks = List.length fresh });
    }
  in
  let rng = Support.Rng.create 2024 in
  let seeds = Workloads.Generate.seed_inputs profile in
  let t0 = Unix.gettimeofday () in
  let corpus, stats = Fuzzer.Fuzz.collect_corpus ~rng ~seeds ~execs target in
  let wall = Unix.gettimeofday () -. t0 in

  Printf.printf "campaign: %d executions in %.2f s (%d VM cycles total)\n"
    stats.Fuzzer.Fuzz.executions wall !exec_cycles;
  Printf.printf "corpus: %d coverage-increasing inputs (%d discoveries)\n"
    (Fuzzer.Corpus.size corpus) stats.Fuzzer.Fuzz.discoveries;
  Printf.printf "coverage: %d / %d blocks\n" (Odin.Cov.covered cov)
    cov.Odin.Cov.total_probes;
  Printf.printf "probes remaining: %d (pruned: %d)\n"
    (Instr.Manager.count session.Odin.Session.manager)
    cov.Odin.Cov.pruned_total;
  Printf.printf "on-the-fly recompilations: %d\n" !recompiles;
  let events = Odin.Session.events session in
  let recompile_times =
    match events with
    | _initial :: rest ->
      List.map
        (fun (e : Odin.Session.recompile_event) ->
          1000. *. (e.Odin.Session.ev_compile_time +. e.Odin.Session.ev_link_time))
        rest
    | [] -> []
  in
  if recompile_times <> [] then
    Printf.printf "recompilation latency: mean %.2f ms, worst %.2f ms\n"
      (Support.Stats.mean recompile_times)
      (Support.Stats.max_l recompile_times)
