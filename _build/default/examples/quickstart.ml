(* Quickstart: the Odin workflow end to end, on a small C program.

     dune exec examples/quickstart.exe

   1. compile C to whole-program IR (never optimized, never mutated);
   2. create an Odin session: survey + partition the program;
   3. register coverage probes and build the instrumented executable;
   4. run an input, harvest coverage;
   5. prune the fired probes, recompile only the affected fragments;
   6. run again: same result, fewer cycles, zero leftover probes firing. *)

let source =
  {|
static int weight(int x) {
  int acc = 0;
  for (int i = 0; i < 8; i++) acc += (x >> i) & 1;
  return acc;
}

static int classify(int x) {
  if (x < 0) return -1;
  if (weight(x) > 4) return 2;
  return 1;
}

int main(int x) { return classify(x * 3 + 1); }
|}

let () =
  print_endline "== Odin quickstart ==\n";
  (* 1. frontend *)
  let m = Minic.Lower.compile ~name:"quickstart" source in
  Printf.printf "compiled %d functions to IR\n"
    (List.length (Ir.Modul.defined_functions m));

  (* 2. session: survey (trial optimization) + partition *)
  let session =
    Odin.Session.create ~keep:[ "main" ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      m
  in
  let plan = session.Odin.Session.plan in
  Printf.printf "partitioned into %d fragments:\n"
    (Odin.Partition.fragment_count plan);
  Array.iter
    (fun (f : Odin.Partition.fragment) ->
      Printf.printf "  fragment %d: {%s}\n" f.Odin.Partition.fid
        (String.concat ", " (Odin.Partition.SSet.elements f.Odin.Partition.members)))
    plan.Odin.Partition.fragments;

  (* 3. coverage probes + initial build *)
  let cov = Odin.Cov.setup session in
  let ev = Odin.Session.build session in
  Printf.printf "\nregistered %d coverage probes; initial build: %d fragments, %.2f ms\n"
    cov.Odin.Cov.total_probes
    (List.length ev.Odin.Session.ev_fragments)
    (1000. *. ev.Odin.Session.ev_compile_time);

  (* 4. run *)
  let run () =
    let vm = Vm.create (Odin.Session.executable session) in
    let r = Vm.call vm "main" [ 14L ] in
    (r, vm.Vm.cycles, vm)
  in
  let r1, cycles1, vm1 = run () in
  let fired = Odin.Cov.harvest cov vm1 in
  Printf.printf "\nrun 1: main(14) = %Ld in %d cycles; %d probes fired\n" r1 cycles1
    (List.length fired);

  (* 5. prune + on-the-fly recompile *)
  let pruned = Odin.Cov.prune_fired cov in
  (match Odin.Session.refresh session with
  | Some ev ->
    Printf.printf
      "pruned %d probes -> recompiled fragments [%s] in %.2f ms (+ %.2f ms link)\n"
      pruned
      (String.concat "; " (List.map string_of_int ev.Odin.Session.ev_fragments))
      (1000. *. ev.Odin.Session.ev_compile_time)
      (1000. *. ev.Odin.Session.ev_link_time)
  | None -> print_endline "nothing to rebuild");

  (* 6. run again *)
  let r2, cycles2, vm2 = run () in
  let fired2 = Odin.Cov.harvest cov vm2 in
  Printf.printf "run 2: main(14) = %Ld in %d cycles; %d probes fired\n" r2 cycles2
    (List.length fired2);
  Printf.printf "\nsame result: %b; cycles saved by pruning: %d (%.1f%%)\n"
    (Int64.equal r1 r2) (cycles1 - cycles2)
    (100. *. float_of_int (cycles1 - cycles2) /. float_of_int cycles1)
