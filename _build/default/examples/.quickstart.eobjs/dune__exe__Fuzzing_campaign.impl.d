examples/fuzzing_campaign.ml: Fuzzer Instr Int64 Ir List Odin Printf String Support Unix Vm Workloads
