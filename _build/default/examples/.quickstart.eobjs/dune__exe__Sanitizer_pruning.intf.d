examples/sanitizer_pruning.mli:
