examples/quickstart.mli:
