examples/cmplog_roadblock.ml: Bytes Char Instr Int64 List Minic Odin Printf String Vm
