examples/fuzzing_campaign.mli:
