examples/cmplog_roadblock.mli:
