examples/quickstart.ml: Array Int64 Ir List Minic Odin Printf String Vm
