examples/sanitizer_pruning.ml: Instr Int64 List Minic Odin Printf Vm
