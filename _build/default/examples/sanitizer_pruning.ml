(* Sanitizer checks as Odin probes (paper Section 7, future work):

   - ASAP-style: profile the check trip counts, remove the *hot* checks
     (they almost never catch bugs but dominate overhead), keep the cold
     ones — except with Odin the removal happens mid-campaign with a
     fragment recompile instead of a full rebuild;
   - UBSan-with-fuzzing: a check that fires on well-formed inputs (a
     false positive) would abort every execution — remove exactly that
     probe on the fly and keep fuzzing with all other checks armed.

     dune exec examples/sanitizer_pruning.exe
*)

let source =
  {|
static int hot_path(int x, int d) {
  int acc = 0;
  for (int i = 0; i < 16; i++) {
    acc += x / (d + i + 1);   /* hot division check */
  }
  return acc;
}

static int cold_path(int x, int d) {
  return x / d;               /* cold division check: a real bug hides here */
}

int target_main(int x, int selector) {
  if (selector == 77) return cold_path(x, selector - 77);  /* div by zero! */
  return hot_path(x, selector & 7);
}
|}

let entry = "target_main"

let run session checks x selector =
  let vm = Vm.create (Odin.Session.executable session) in
  List.iter (fun (n, h) -> Vm.register_host vm n h) (Odin.Checks.host_hooks checks);
  try Some (Vm.call vm entry [ x; selector ]) with Vm.Fault _ -> None

let () =
  print_endline "== Sanitizer-check probes: ASAP-style hot pruning + UBSan removal ==\n";
  let m = Minic.Lower.compile ~name:"sanitized" source in
  let session = Odin.Session.create ~keep:[ entry ] m in
  let checks = Odin.Checks.setup session in
  ignore (Odin.Session.build session);
  Printf.printf "check probes installed: %d\n\n"
    (Instr.Manager.count session.Odin.Session.manager);

  (* profile with benign executions: the loop check gets hot *)
  for i = 1 to 40 do
    ignore (run session checks (Int64.of_int (i * 3)) (Int64.of_int (i land 7)))
  done;
  Printf.printf "after 40 benign executions: %d check trips recorded\n"
    checks.Odin.Checks.trips;
  Instr.Manager.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Check c ->
        Printf.printf "  probe #%d on @%s: %d trips\n" p.Instr.Probe.pid
          p.Instr.Probe.target c.Instr.Probe.chk_trips
      | _ -> ())
    session.Odin.Session.manager;

  (* ASAP: drop hot checks, keep cold ones *)
  let pruned = Odin.Checks.prune_hot ~threshold:100 checks in
  (match Odin.Session.refresh session with
  | Some ev ->
    Printf.printf
      "\nASAP pruning: removed %d hot check(s), recompiled in %.2f ms\n" pruned
      (1000. *. ev.Odin.Session.ev_compile_time)
  | None -> ());
  Printf.printf "remaining checks: %d (the cold one still guards the rare path)\n"
    (Instr.Manager.count session.Odin.Session.manager);

  (* the cold check still catches the division by zero *)
  let before = List.length checks.Odin.Checks.violations in
  ignore (run session checks 5L 77L);
  let caught = List.length checks.Odin.Checks.violations > before in
  Printf.printf "\ntrigger the rare bug (selector=77): violation caught = %b\n" caught;

  (* UBSan-with-fuzzing: suppose that cold check were a false positive —
     remove exactly that probe and continue *)
  (match checks.Odin.Checks.violations with
  | { Odin.Checks.v_pid; _ } :: _ ->
    ignore (Odin.Checks.remove_probe checks v_pid);
    (match Odin.Session.refresh session with
    | Some _ ->
      Printf.printf
        "UBSan mode: probe #%d removed on the fly; campaign continues with %d checks\n"
        v_pid
        (Instr.Manager.count session.Odin.Session.manager)
    | None -> ())
  | [] -> ())
