(* CmpLog + input-to-state correspondence (the paper's Section 2.1 AFL++
   story, with Odin doing it right): the target checks a 4-byte magic
   that random mutation will essentially never guess. CmpLog probes log
   the comparison operands; because Odin instruments *before*
   optimization, the logged value is a direct copy of the input, so the
   fuzzer can patch the input bytes with the expected value and pass the
   roadblock — then the solved comparison's probe is pruned.

     dune exec examples/cmplog_roadblock.exe
*)

let source =
  {|
int target_main(char *buf, int len) {
  if (len < 8) return 0;
  int magic = ((buf[0] & 255) << 24) | ((buf[1] & 255) << 16)
            | ((buf[2] & 255) << 8) | (buf[3] & 255);
  if (magic == 0x4F44494E) {   /* "ODIN" */
    int sum = 0;
    for (int i = 4; i < len; i++) sum += buf[i] & 255;
    return 1000 + sum;
  }
  return 1;
}
|}

let entry = "target_main"

let run session cmplog input =
  let vm = Vm.create (Odin.Session.executable session) in
  Vm.register_host vm Odin.Cmplog.runtime_fn (Odin.Cmplog.host_hook cmplog);
  let addr = Vm.write_buffer vm input in
  Vm.call vm entry [ addr; Int64.of_int (String.length input) ]

let () =
  print_endline "== CmpLog: solving a magic-byte roadblock ==\n";
  let m = Minic.Lower.compile ~name:"roadblock" source in
  let session = Odin.Session.create ~keep:[ entry ] m in
  let cmplog = Odin.Cmplog.setup session in
  ignore (Odin.Session.build session);
  Printf.printf "comparison probes: %d\n\n"
    (Instr.Manager.count session.Odin.Session.manager);

  (* random input: the roadblock comparison fails *)
  let input = "xxxxABCD" in
  let r1 = run session cmplog input in
  Printf.printf "random input      -> result %Ld (roadblock not passed)\n" r1;

  (* input-to-state: find the comparison whose lhs matches bytes of our
     input's prefix interpretation, take the rhs the program wanted *)
  let records = Odin.Cmplog.drain cmplog in
  let solved =
    List.find_opt
      (fun (r : Odin.Cmplog.record) ->
        (* the operand pair where one side is a large constant and the
           other derives from our input *)
        Int64.abs r.Odin.Cmplog.rec_rhs > 65536L
        || Int64.abs r.Odin.Cmplog.rec_lhs > 65536L)
      records
  in
  (match solved with
  | None -> print_endline "no roadblock comparison observed?!"
  | Some r ->
    let want =
      if Int64.abs r.Odin.Cmplog.rec_rhs > 65536L then r.Odin.Cmplog.rec_rhs
      else r.Odin.Cmplog.rec_lhs
    in
    Printf.printf "CmpLog observed   -> %Ld vs %Ld; expected constant 0x%LX\n"
      r.Odin.Cmplog.rec_lhs r.Odin.Cmplog.rec_rhs want;
    (* patch the input bytes with the expected value (big-endian, as the
       target assembles it) *)
    let w = Int64.to_int want in
    let patched = Bytes.of_string input in
    Bytes.set patched 0 (Char.chr ((w lsr 24) land 255));
    Bytes.set patched 1 (Char.chr ((w lsr 16) land 255));
    Bytes.set patched 2 (Char.chr ((w lsr 8) land 255));
    Bytes.set patched 3 (Char.chr (w land 255));
    let patched = Bytes.to_string patched in
    let r2 = run session cmplog patched in
    Printf.printf "patched input     -> result %Ld (roadblock passed: %b)\n" r2
      (r2 > 1000L);
    (* both outcomes seen: the comparison is solved; prune and recompile *)
    ignore (Odin.Cmplog.drain cmplog);
    let pruned = Odin.Cmplog.prune_solved cmplog in
    (match Odin.Session.refresh session with
    | Some ev ->
      Printf.printf
        "\nsolved: pruned %d probes, recompiled %d fragment(s) in %.2f ms\n" pruned
        (List.length ev.Odin.Session.ev_fragments)
        (1000. *. ev.Odin.Session.ev_compile_time)
    | None -> ());
    (* the pruned probe logs nothing anymore *)
    let r3 = run session cmplog patched in
    let after = Odin.Cmplog.drain cmplog in
    Printf.printf "after pruning     -> result %Ld, %d cmp records (solved cmp is silent)\n"
      r3
      (List.length after))
