(** Fuzzing farm: N concurrent campaign workers over one target, each
    with its own deterministic RNG stream, corpus shard and Odin
    session, sharing one content-addressed object cache. Workers
    rendezvous at sync barriers: deduplicating corpus exchange
    ({!Csync}), global coverage merge, and globally-voted probe pruning
    ({!Instr.Votes}). Deterministic for a fixed (seed, sync-interval)
    pair; the logical results (coverage, pruned set, corpus) are
    worker-count invariant by construction — and substrate invariant:
    this domains driver and the process-isolated driver ({!Proc})
    share one orchestration core ({!Orch}) and produce bit-identical
    campaigns. *)

(** The corpus-sync protocol, re-exported: [farm.ml] is the library's
    interface module, so this is the public path to {!Csync}. *)
module Csync = Csync

(** The shared orchestration core (slot execution, barrier merge,
    weighted votes, adaptive intervals, checkpoints). *)
module Orch = Orch

(** The supervisor/worker wire protocol and the checkpoint file
    format. *)
module Wire = Wire

(** The process-isolated driver: supervisor, preemptive watchdog,
    kill/restart, checkpoint/resume. *)
module Proc = Proc

type config = Orch.config = {
  fc_workers : int;
  fc_execs : int;  (** mutated-execution budget, farm-wide (seeds excluded) *)
  fc_sync_interval : int;  (** executions per sync round, farm-wide *)
  fc_seed : int;
  fc_prune_quorum : int;
      (** fired-execution votes required to prune a probe globally;
          <= 0 disables pruning. 1 = Untracer policy, globally. *)
  fc_cache_limit : int option;  (** store GC size bound (bytes), per barrier *)
  fc_cache_age : float option;  (** store GC age bound (seconds), per barrier *)
  fc_mode : Odin.Partition.mode;
  fc_vote_decay : float;
      (** vote-weight multiplier per kill/restart ({!Proc}); 1.0
          (default) keeps exact integer quorums *)
  fc_adaptive_sync : bool;
      (** scale the sync interval up on quiet barriers, reset on new
          coverage (off by default) *)
  fc_promote_share : float;
      (** > 0: tiered workers + barrier tier promotions at this merged
          cycle-share threshold; 0.0 (default) = untiered ({!Orch}) *)
}

(** 1 worker, 400 execs, sync every 100, seed 42, quorum 1, no GC,
    vote decay 1.0, fixed interval. *)
val default_config : config

type worker = {
  wk_id : int;
  wk_session : Odin.Session.t;
  wk_cov : Odin.Cov.t;
  wk_probes : (int, Instr.Probe.t) Hashtbl.t;
  wk_corpus : Fuzzer.Corpus.t;
  wk_recorder : Telemetry.Recorder.t;
  mutable wk_execs : int;
  mutable wk_cycles : int;
  mutable wk_skipped : int;
  mutable wk_crashes : int;
  mutable wk_recompiles : int;
  mutable wk_dead : string option;
}

(** Cumulative cost attribution for one probe site across the campaign:
    instrumentation toggles (enable/disable flips + removal), merged
    executions run while the probe was globally armed, and the VM's
    per-site increment hits/cycles (merged in slot order — worker-count
    invariant like every other farm result). *)
type probe_cost = Orch.probe_cost = {
  pc_pid : int;
  pc_toggles : int;
  pc_execs_armed : int;
  pc_hits : int;
  pc_cycles : int;
}

type stats = Orch.stats = {
  fs_workers : int;
  fs_execs : int;  (** executions merged at barriers (seeds included) *)
  fs_total_cycles : int;
  fs_sync_rounds : int;
  fs_offered : int;
  fs_exchanged : int;  (** accepted and broadcast to every shard *)
  fs_duplicates : int;
  fs_stale : int;
  fs_coverage : int list;  (** globally covered probe ids, ascending *)
  fs_total_probes : int;
  fs_pruned : int list;  (** globally pruned probe ids, ascending *)
  fs_corpus : string list;  (** global corpus inputs, acceptance order *)
  fs_cross_hits : int;  (** object-cache hits on another worker's entry *)
  fs_recompiles : int;
  fs_skipped : int;
  fs_crashes : int;
  fs_dead : (int * string) list;
  fs_gc_evicted : int;
  fs_store : Support.Objstore.stats option;
  fs_probe_cost : probe_cost list;  (** every probe id, ascending *)
}

(** duplicates / offered, percent. *)
val dedup_rate : stats -> float

(** Run a farm over [base]: build one session per worker (shared object
    cache, optional shared persistent store via [cache_dir]), replay
    the [seeds], then spend [fc_execs] mutated executions in
    sync-interval rounds. [entry] is the target entry point; [host]
    names host functions registered as no-ops in each guest VM
    (defaults to the workloads' host set). Per-worker telemetry is
    recorded on forked recorders and merged into [telemetry] (or a
    private recorder) at the end. [incremental_link] and
    [incremental_sched] forward to each worker's session
    ({!Odin.Session.create}); farm results are bit-identical whichever
    way they are set.

    [journal]/[journal_path] attach a campaign flight recorder: sync
    and counter-snapshot events are recorded at every barrier, per-probe
    cost events plus a final summary at the end, and when a path is
    given the bounded window is atomically republished at each barrier
    (crash-safe: a killed farm leaves the last barrier's journal). A
    path without a journal creates a private one.

    [checkpoint_path] publishes an {!Orch.ckpt} atomically at every
    barrier ({!Wire.write_checkpoint}); [resume] continues a campaign
    from a loaded checkpoint (same target module and seed required),
    reaching the same final state as an uninterrupted run. *)
val run :
  ?telemetry:Telemetry.Recorder.t ->
  ?pool:Support.Pool.t ->
  ?cache_dir:string ->
  ?incremental_link:bool ->
  ?incremental_sched:bool ->
  ?journal:Telemetry.Journal.t ->
  ?journal_path:string ->
  ?host:string list ->
  ?checkpoint_path:string ->
  ?resume:Orch.ckpt ->
  entry:string ->
  seeds:string list ->
  config ->
  Ir.Modul.t ->
  stats
