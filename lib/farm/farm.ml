(** Fuzzing farm: a multi-worker campaign orchestrator.

    N campaign workers fuzz one target concurrently on the OCaml 5
    domain pool. Each worker owns a deterministic RNG stream, a corpus
    shard and its own Odin session; all sessions share one
    content-addressed {!Odin.Session.object_cache}, so a fragment
    compiled by any worker is a (cross-)hit for every other. Workers
    rendezvous at sync barriers every [fc_sync_interval] executions:
    coverage-increasing inputs are exchanged through the deduplicating
    {!Csync} protocol, global coverage is merged into one bitmap, and
    probe pruning is decided {e globally} ({!Instr.Votes}) so the farm
    converges to the same pruned instrumentation a long single campaign
    would.

    Everything that decides results — slot execution, the barrier
    merge, weighted votes, adaptive intervals, checkpoints — lives in
    {!Orch}, shared verbatim with the process-isolated driver
    ({!Proc.run}, [--farm-mode procs]): the two substrates cannot
    drift apart.

    {2 Determinism}

    The farm is deterministic for a fixed [(seed, sync-interval)] pair
    — and, by construction, its {e logical} results do not depend on
    the worker count at all. The schedule is expressed in
    worker-independent {e execution slots}: slot [i] draws from an RNG
    derived from [(seed, i)] and mutates against the round-start corpus
    snapshot, which is a replica of the global corpus on every shard
    (broadcast at the previous barrier). Probe state only changes at
    barriers, applied identically to every session, so within a round
    all workers run byte-identical executables; which worker executes
    slot [i] therefore cannot change the result, only who computes it.
    All cross-worker state — corpus broadcast, bitmap merge, prune
    votes — mutates only at the barrier, in slot order. [test_farm.ml]
    asserts bit-identical coverage and pruned-probe sets across
    [--workers 1/2/4]; [test_proc.ml] extends the matrix across
    [--farm-mode domains|procs] and kill/restart schedules.

    {2 Fault tolerance}

    Two farm-specific fault sites ({!Support.Fault}): ["vm.step"] fires
    per basic-block entry inside guest executions — an injected fault
    kills the worker mid-round, a transient one skips that execution —
    and ["farm.sync"] fires at each worker's barrier check-in. A dead
    worker's in-flight round is discarded (it is excluded from the
    barrier), its slots are redistributed to survivors from the next
    round on, and because slot results are worker-independent the
    surviving lanes are unaffected — the farm degrades gracefully and
    keeps its determinism. (The process driver goes further: it
    {e restarts} the dead worker and re-runs its share — see
    {!Proc}.)

    {2 Checkpoint/resume}

    With [checkpoint_path] the farm publishes an {!Orch.ckpt} at every
    barrier (atomic, [.prev] rotation — {!Wire.write_checkpoint});
    [resume] continues a campaign from one, replaying the global corpus
    and pruned set into fresh workers and carrying on with the next
    round to the same final state as an uninterrupted run. *)

module Csync = Csync
module Orch = Orch
module Wire = Wire
module Proc = Proc
module Recorder = Telemetry.Recorder

type config = Orch.config = {
  fc_workers : int;
  fc_execs : int;  (** mutated-execution budget, farm-wide (seeds excluded) *)
  fc_sync_interval : int;  (** executions per sync round, farm-wide *)
  fc_seed : int;
  fc_prune_quorum : int;
      (** fired-execution votes required to prune a probe globally;
          <= 0 disables pruning. 1 = Untracer policy, globally. *)
  fc_cache_limit : int option;  (** store GC size bound (bytes), per barrier *)
  fc_cache_age : float option;  (** store GC age bound (seconds), per barrier *)
  fc_mode : Odin.Partition.mode;
  fc_vote_decay : float;
      (** vote-weight multiplier per kill/restart ({!Proc}); 1.0 keeps
          exact integer quorums *)
  fc_adaptive_sync : bool;
      (** scale the sync interval up on quiet barriers, reset on new
          coverage *)
  fc_promote_share : float;
      (** > 0: tiered workers + barrier tier promotions at this merged
          cycle-share threshold; 0.0 (default) = untiered ({!Orch}) *)
}

let default_config = Orch.default_config

type probe_cost = Orch.probe_cost = {
  pc_pid : int;
  pc_toggles : int;  (** enable/disable flips + removal ({!Instr.Manager}) *)
  pc_execs_armed : int;  (** merged executions while globally armed *)
  pc_hits : int;  (** counter increments executed *)
  pc_cycles : int;  (** VM cycles spent in the increment sequence *)
}

type stats = Orch.stats = {
  fs_workers : int;
  fs_execs : int;  (** executions merged at barriers (seeds included) *)
  fs_total_cycles : int;
  fs_sync_rounds : int;
  fs_offered : int;  (** inputs offered at barriers *)
  fs_exchanged : int;  (** accepted and broadcast to every shard *)
  fs_duplicates : int;
  fs_stale : int;
  fs_coverage : int list;  (** globally covered probe ids, ascending *)
  fs_total_probes : int;
  fs_pruned : int list;  (** globally pruned probe ids, ascending *)
  fs_corpus : string list;  (** global corpus inputs, acceptance order *)
  fs_cross_hits : int;  (** object-cache hits on another worker's entry *)
  fs_recompiles : int;  (** barrier refreshes across all workers *)
  fs_skipped : int;
  fs_crashes : int;
  fs_dead : (int * string) list;  (** dead workers (id, reason), id order *)
  fs_gc_evicted : int;  (** store entries evicted at barriers *)
  fs_store : Support.Objstore.stats option;
  fs_probe_cost : probe_cost list;  (** every probe id, ascending *)
}

let dedup_rate = Orch.dedup_rate

type worker = {
  wk_id : int;
  wk_session : Odin.Session.t;
  wk_cov : Odin.Cov.t;
  wk_probes : (int, Instr.Probe.t) Hashtbl.t;  (** pid -> probe, at setup *)
  wk_corpus : Fuzzer.Corpus.t;  (** shard; replica of the global corpus *)
  wk_recorder : Recorder.t;  (** forked; merged into the farm's at the end *)
  mutable wk_execs : int;
  mutable wk_cycles : int;
  mutable wk_skipped : int;  (** transient-faulted executions *)
  mutable wk_crashes : int;  (** guest traps ([Vm.Fault]) *)
  mutable wk_recompiles : int;
  mutable wk_dead : string option;  (** why the worker left the farm *)
}

(* result of one worker's share of a round *)
type round_result =
  | Finished of Csync.item list
  | Died of string * Csync.item list  (** items completed before death *)

let live workers = List.filter (fun w -> w.wk_dead = None) workers

(** Run a farm over [base]. [entry] is the target entry point
    ([Campaign.entry] for the shipped workloads), [seeds] the initial
    inputs, [host] the host-function names registered as no-ops in each
    guest VM. [pool] executes both the workers within a round and (from
    the orchestrator, between rounds) the sessions' fragment compiles;
    results are independent of its size. [cache_dir] puts the shared
    persistent object store behind every worker's session.
    [incremental_link] and [incremental_sched] forward to every
    worker's session (default: the session's own env-driven defaults).
    [checkpoint_path] publishes a campaign checkpoint at every barrier;
    [resume] continues from one. *)
let run ?telemetry ?pool ?cache_dir ?incremental_link ?incremental_sched
    ?journal ?journal_path ?(host = Workloads.Generate.host_functions)
    ?checkpoint_path ?resume ~entry ~seeds (cfg : config) (base : Ir.Modul.t) =
  let nw = max 1 cfg.fc_workers in
  let r = match telemetry with Some r -> r | None -> Recorder.create () in
  let pool = match pool with Some p -> p | None -> Support.Pool.default () in
  (* flight recorder: events are recorded throughout and the bounded
     window is atomically republished at every barrier *)
  let jr =
    match (journal, journal_path) with
    | Some j, _ -> Some j
    | None, Some _ -> Some (Telemetry.Journal.create ~clock:r.Recorder.clock ())
    | None, None -> None
  in
  let jflush () =
    match (jr, journal_path) with
    | Some j, Some p -> Telemetry.Journal.flush j p
    | _ -> ()
  in
  let digest = Orch.module_digest base in
  (match resume with
  | Some ck ->
    if ck.Orch.ck_digest <> digest then
      invalid_arg "Farm.run: checkpoint is for a different target module";
    if ck.Orch.ck_seed <> cfg.fc_seed then
      invalid_arg "Farm.run: checkpoint seed differs from the configured seed"
  | None -> ());
  let farm_sp =
    Telemetry.Span.enter r.Recorder.spans ~cat:"farm"
      ~args:
        [
          ("workers", string_of_int nw);
          ("execs", string_of_int cfg.fc_execs);
          ("sync_interval", string_of_int cfg.fc_sync_interval);
          ("seed", string_of_int cfg.fc_seed);
          ("mode", "domains");
        ]
      "farm"
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit r.Recorder.spans farm_sp)
  @@ fun () ->
  let shared = Odin.Session.object_cache ~size:1024 () in
  let jclock = Telemetry.Clock.synchronized r.Recorder.clock in
  (* Workers are created serially in id order: worker 0's initial build
     populates the shared cache, every later worker's build is all
     cross hits. *)
  let mk_worker i =
    let wr = Recorder.fork ~clock:jclock r in
    let m = Ir.Clone.clone_module base in
    let session =
      (* tiering pinned to the config, not ODIN_TIER: farm results must
         not depend on the environment the campaign happens to run in *)
      Odin.Session.create ~mode:cfg.fc_mode ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host ~pool ~objects:shared ~owner:i ?cache_dir ?incremental_link
        ?incremental_sched ~tiered:(cfg.fc_promote_share > 0.) ~telemetry:wr m
    in
    let cov = Odin.Cov.setup session in
    let dead =
      match Odin.Session.try_build session with
      | Odin.Session.Ok | Odin.Session.Degraded _ -> None
      | Odin.Session.Rolled_back err ->
        Some ("initial build rolled back: " ^ err.Odin.Session.err_msg)
    in
    let probes = Hashtbl.create 97 in
    List.iter
      (fun (p : Instr.Probe.t) -> Hashtbl.replace probes p.Instr.Probe.pid p)
      (Instr.Manager.to_list session.Odin.Session.manager);
    {
      wk_id = i;
      wk_session = session;
      wk_cov = cov;
      wk_probes = probes;
      wk_corpus = Fuzzer.Corpus.create ();
      wk_recorder = wr;
      wk_execs = 0;
      wk_cycles = 0;
      wk_skipped = 0;
      wk_crashes = 0;
      wk_recompiles = 0;
      wk_dead = dead;
    }
  in
  let workers =
    Telemetry.Span.with_span r.Recorder.spans ~cat:"farm" "spawn" (fun () ->
        List.init nw mk_worker)
  in
  let n_probes =
    match workers with w :: _ -> w.wk_cov.Odin.Cov.total_probes | [] -> 0
  in
  let orch =
    match resume with
    | Some ck ->
      if ck.Orch.ck_n_probes <> n_probes && workers <> [] then
        invalid_arg "Farm.run: checkpoint probe count differs from the target";
      Orch.restore cfg ck
    | None -> Orch.create ~n_probes cfg
  in
  let interval_gauge =
    Telemetry.Metrics.counter r.Recorder.metrics "farm.sync_interval_current"
  in
  let n_seeds = List.length seeds in
  let default_input = match seeds with s :: _ -> s | [] -> "\x00" in

  (* apply checkpointed barrier effects to a fresh worker: replay the
     global corpus into its shard and remove the pruned probes, exactly
     as the broadcasts/prunes it missed would have *)
  let apply_ckpt_state w =
    Orch.replay_corpus w.wk_corpus (Orch.corpus_entries orch);
    let prunes = Orch.pruned_list orch in
    List.iter
      (fun pid ->
        match Hashtbl.find_opt w.wk_probes pid with
        | Some p -> Instr.Manager.remove w.wk_session.Odin.Session.manager p
        | None -> ())
      prunes;
    (* tier promotions catch up from the checkpointed merged profile:
       promote_hot is idempotent, so the fresh session re-derives the
       cumulative promotion set the campaign had reached *)
    let promoted =
      if cfg.fc_promote_share > 0. then
        Odin.Session.promote_hot ~threshold:cfg.fc_promote_share w.wk_session
          (Orch.fn_profile orch)
      else []
    in
    if
      prunes <> [] || promoted <> []
      || Odin.Session.degraded_fragments w.wk_session <> []
    then
      match Odin.Session.try_refresh w.wk_session with
      | Some (Odin.Session.Ok | Odin.Session.Degraded _) ->
        w.wk_recompiles <- w.wk_recompiles + 1
      | Some (Odin.Session.Rolled_back _) | None -> ()
  in
  if resume <> None then List.iter apply_ckpt_state (live workers);

  (* ---------------- one worker's share of a round ------------------ *)
  (* slot execution itself lives in Orch.exec_slot, shared with the
     process driver; this wrapper only adds the per-worker accounting *)
  let run_slot w idx =
    let item =
      Orch.exec_slot ~seed:cfg.fc_seed ~entry ~host ~seeds ~default_input
        ~session:w.wk_session ~total_probes:w.wk_cov.Odin.Cov.total_probes
        ~corpus:w.wk_corpus idx
    in
    w.wk_execs <- w.wk_execs + 1;
    w.wk_cycles <- w.wk_cycles + item.Csync.it_cycles;
    Recorder.count (Some w.wk_recorder) "campaign.execs";
    Recorder.observe (Some w.wk_recorder) "campaign.exec_cycles"
      (float_of_int item.Csync.it_cycles);
    item
  in
  (* never raises *)
  let run_share w idxs =
    let acc = ref [] in
    try
      List.iter
        (fun idx ->
          match run_slot w idx with
          | item -> acc := item :: !acc
          | exception Support.Fault.Transient_fault _ ->
            w.wk_skipped <- w.wk_skipped + 1
          | exception Vm.Fault _ -> w.wk_crashes <- w.wk_crashes + 1)
        idxs;
      Finished (List.rev !acc)
    with
    | Support.Fault.Injected site ->
      Died (Printf.sprintf "injected fault at %s" site, List.rev !acc)
    | Support.Fault.Timed_out site ->
      Died (Printf.sprintf "timed out at %s" site, List.rev !acc)
    | e -> Died (Printexc.to_string e, List.rev !acc)
  in

  (* ---------------- the sync barrier ------------------------------ *)
  let barrier ~round ~next (results : (worker * round_result) list) =
    Telemetry.Recorder.with_span r ~cat:"farm"
      ~args:[ ("round", string_of_int round) ]
      "sync"
    @@ fun () ->
    (* a worker that died mid-round loses its whole round: its slots are
       not merged, so survivors see exactly what they would have seen
       had the dead worker never been assigned those slots *)
    List.iter
      (fun (w, res) ->
        match res with
        | Died (reason, _) ->
          w.wk_dead <- Some reason;
          Recorder.count (Some r) "farm.worker_deaths"
        | Finished _ -> ())
      results;
    (* rendezvous: every surviving worker checks in — including workers
       that drew no slots this round; an injected fault here kills it at
       the barrier door, same exclusion *)
    List.iter
      (fun w ->
        if w.wk_dead = None then
          try Support.Fault.hit "farm.sync"
          with
          | Support.Fault.Injected site
          | Support.Fault.Transient_fault site
          | Support.Fault.Timed_out site
          ->
            w.wk_dead <- Some (Printf.sprintf "fault at %s" site);
            Recorder.count (Some r) "farm.worker_deaths")
      workers;
    let items =
      List.concat_map
        (fun (w, res) ->
          match (w.wk_dead, res) with
          | None, Finished items -> items
          | _ -> [])
        results
      |> List.sort (fun a b -> compare a.Csync.it_index b.Csync.it_index)
    in
    let broadcast, prunes = Orch.merge_round orch items in
    (* every live worker takes the barrier's effects, whether or not it
       drew a slot this round — shards must stay global replicas *)
    let survivors = live workers in
    List.iter
      (fun ce ->
        List.iter
          (fun w ->
            Fuzzer.Corpus.add w.wk_corpus ~energy:ce.Orch.ce_energy
              ~data:ce.Orch.ce_input ~exec_cycles:ce.Orch.ce_cycles
              ~new_blocks:ce.Orch.ce_fresh ())
          survivors)
      broadcast;
    Recorder.count (Some r) ~by:(List.length broadcast) "farm.inputs_exchanged";
    if prunes <> [] then
      Recorder.count (Some r) ~by:(List.length prunes) "farm.probes_pruned";
    (* the global tier-promotion decision: a pure function of the
       barrier-merged profile, evaluated per survivor — every session
       derives the same set, so within a round all workers still run
       byte-identical executables *)
    let profile =
      if cfg.fc_promote_share > 0. then Orch.fn_profile orch else []
    in
    let promoted_any = ref [] in
    (* the global prune + promotion decisions, applied identically to
       every survivor *)
    List.iter
      (fun w ->
        List.iter
          (fun pid ->
            match Hashtbl.find_opt w.wk_probes pid with
            | Some p -> Instr.Manager.remove w.wk_session.Odin.Session.manager p
            | None -> ())
          prunes;
        let promoted =
          if profile <> [] then
            Odin.Session.promote_hot ~threshold:cfg.fc_promote_share
              w.wk_session profile
          else []
        in
        if !promoted_any = [] then promoted_any := promoted;
        (* serial, in worker order: the first survivor compiles the
           post-prune (and newly promoted) fragments, the rest hit the
           shared cache *)
        if
          prunes <> [] || promoted <> []
          || Odin.Session.degraded_fragments w.wk_session <> []
        then
          match Odin.Session.try_refresh w.wk_session with
          | Some (Odin.Session.Ok | Odin.Session.Degraded _) ->
            w.wk_recompiles <- w.wk_recompiles + 1
          | Some (Odin.Session.Rolled_back _) | None -> ())
      survivors;
    if !promoted_any <> [] then
      Recorder.count (Some r) ~by:(List.length !promoted_any)
        "farm.tier_promotions";
    (* store GC: bound the shared persistent tier while everyone is
       parked at the barrier *)
    (match (survivors, cfg.fc_cache_limit, cfg.fc_cache_age) with
    | _, None, None | [], _, _ -> ()
    | w :: _, _, _ -> (
      match w.wk_session.Odin.Session.store with
      | None -> ()
      | Some st ->
        let g =
          Support.Objstore.gc ?max_bytes:cfg.fc_cache_limit
            ?max_age:cfg.fc_cache_age st
        in
        orch.Orch.o_gc_evicted <- orch.Orch.o_gc_evicted + g.Support.Objstore.gc_evicted;
        if g.Support.Objstore.gc_evicted > 0 then
          Recorder.count (Some r) ~by:g.Support.Objstore.gc_evicted
            "farm.store_gc_evicted"));
    Recorder.count (Some r) "farm.sync_rounds";
    Telemetry.Metrics.set interval_gauge orch.Orch.o_interval;
    (* flight recorder: one sync event plus a campaign-counter snapshot
       (farm.* live on the farm recorder, session.*/link.* on the parked
       workers' forks), republished atomically while everyone is at the
       barrier *)
    (match jr with
    | None -> ()
    | Some j ->
      Orch.record_sync_event j orch ~round ~merged:(List.length items)
        ~accepted:(List.length broadcast) ~pruned:(List.length prunes);
      let store =
        match workers with
        | w :: _ -> w.wk_session.Odin.Session.store
        | [] -> None
      in
      Orch.record_counters_event j ~round
        ~quarantined:(Option.map Support.Objstore.quarantine_length store)
        (r :: List.map (fun w -> w.wk_recorder) workers));
    (* atomic checkpoint publish at every barrier *)
    (match checkpoint_path with
    | None -> ()
    | Some path ->
      let sum f = List.fold_left (fun a w -> a + f w) 0 workers in
      let ck =
        Orch.snapshot orch ~digest ~workers:nw ~round ~next
          ~skipped:(orch.Orch.o_skipped + sum (fun w -> w.wk_skipped))
          ~crashes:(orch.Orch.o_crashes + sum (fun w -> w.wk_crashes))
          ~recompiles:(orch.Orch.o_recompiles + sum (fun w -> w.wk_recompiles))
          ~restarts:orch.Orch.o_restarts ~weights:[]
      in
      if Wire.write_checkpoint path ck then
        Recorder.count (Some r) "farm.checkpoints");
    jflush ()
  in

  (* ---------------- round scheduler ------------------------------- *)
  (* slots are dealt round-robin over the live workers; the deal only
     decides who computes what *)
  let run_round ~round ~next idxs =
    let ws = live workers in
    match ws with
    | [] -> ()
    | _ ->
      let n = List.length ws in
      let shares = Array.make n [] in
      List.iteri (fun k idx -> shares.(k mod n) <- idx :: shares.(k mod n)) idxs;
      let jobs =
        List.mapi (fun k w -> (w, List.rev shares.(k))) ws
        |> List.filter (fun (_, idxs) -> idxs <> [])
      in
      let results =
        Support.Pool.map pool
          (fun (w, idxs) ->
            Telemetry.Recorder.with_span w.wk_recorder ~cat:"farm"
              ~args:[ ("round", string_of_int round) ]
              "worker-round"
              (fun () -> (w, run_share w idxs)))
          jobs
      in
      barrier ~round ~next results
  in
  (* round 0: the seed inputs themselves, then the mutation budget in
     sync-interval chunks (current interval: adaptive when enabled) *)
  let budget = max 0 cfg.fc_execs in
  let next = ref 0 in
  let round = ref 1 in
  (match resume with
  | Some ck ->
    next := ck.Orch.ck_next;
    round := ck.Orch.ck_round + 1
  | None ->
    if n_seeds > 0 && live workers <> [] then
      run_round ~round:0 ~next:0 (List.init n_seeds (fun i -> i)));
  while !next < budget && live workers <> [] do
    let n = min orch.Orch.o_interval (budget - !next) in
    let slots = List.init n (fun k -> n_seeds + !next + k) in
    next := !next + n;
    run_round ~round:!round ~next:!next slots;
    incr round
  done;

  (* ---------------- join ------------------------------------------ *)
  let cross = Odin.Session.cross_hits shared in
  Recorder.count (Some r) ~by:cross "farm.cache_cross_hits";
  List.iter (fun w -> Recorder.merge ~into:r ~parent:farm_sp w.wk_recorder) workers;
  (* per-probe cost roll-up. Toggle counts come from a live worker's
     manager (sessions apply barrier effects identically, so any
     survivor agrees); a fully dead farm falls back to worker 0. *)
  let mgr =
    match live workers with
    | w :: _ -> Some w.wk_session.Odin.Session.manager
    | [] -> (
      match workers with
      | w :: _ -> Some w.wk_session.Odin.Session.manager
      | [] -> None)
  in
  let toggles pid =
    match mgr with Some m -> Instr.Manager.toggle_count m pid | None -> 0
  in
  let probe_cost = Orch.probe_costs orch ~toggles in
  let sum f = List.fold_left (fun a w -> a + f w) 0 workers in
  let crashes = orch.Orch.o_crashes + sum (fun w -> w.wk_crashes) in
  (match jr with
  | None -> ()
  | Some j ->
    Orch.record_probe_cost_events j probe_cost;
    Orch.record_done_event j orch ~workers:nw ~cross_hits:cross ~crashes;
    jflush ());
  Orch.mk_stats orch ~workers:nw ~cross_hits:cross
    ~skipped:(orch.Orch.o_skipped + sum (fun w -> w.wk_skipped))
    ~crashes
    ~recompiles:(orch.Orch.o_recompiles + sum (fun w -> w.wk_recompiles))
    ~dead:
      (List.filter_map
         (fun w ->
           match w.wk_dead with Some why -> Some (w.wk_id, why) | None -> None)
         workers)
    ~store:
      (match workers with
      | w :: _ -> Odin.Session.store_stats w.wk_session
      | [] -> None)
    ~probe_cost
