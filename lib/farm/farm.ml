(** Fuzzing farm: a multi-worker campaign orchestrator.

    N campaign workers fuzz one target concurrently on the OCaml 5
    domain pool. Each worker owns a deterministic RNG stream, a corpus
    shard and its own Odin session; all sessions share one
    content-addressed {!Odin.Session.object_cache}, so a fragment
    compiled by any worker is a (cross-)hit for every other. Workers
    rendezvous at sync barriers every [fc_sync_interval] executions:
    coverage-increasing inputs are exchanged through the deduplicating
    {!Csync} protocol, global coverage is merged into one bitmap, and
    probe pruning is decided {e globally} ({!Instr.Votes}) so the farm
    converges to the same pruned instrumentation a long single campaign
    would.

    {2 Determinism}

    The farm is deterministic for a fixed [(seed, workers,
    sync-interval)] triple — and, by construction, its {e logical}
    results do not depend on the worker count at all. The schedule is
    expressed in worker-independent {e execution slots}: slot [i] draws
    from an RNG derived from [(seed, i)] and mutates against the
    round-start corpus snapshot, which is a replica of the global
    corpus on every shard (broadcast at the previous barrier). Probe
    state only changes at barriers, applied identically to every
    session, so within a round all workers run byte-identical
    executables; which worker executes slot [i] therefore cannot change
    the result, only who computes it. All cross-worker state — corpus
    broadcast, bitmap merge, prune votes — mutates only at the barrier,
    in slot order. [test_farm.ml] asserts bit-identical coverage and
    pruned-probe sets across [--workers 1/2/4].

    {2 Fault tolerance}

    Two farm-specific fault sites ({!Support.Fault}): ["vm.step"] fires
    per basic-block entry inside guest executions — an injected fault
    kills the worker mid-round, a transient one skips that execution —
    and ["farm.sync"] fires at each worker's barrier check-in. A dead
    worker's in-flight round is discarded (it is excluded from the
    barrier), its slots are redistributed to survivors from the next
    round on, and because slot results are worker-independent the
    surviving lanes are unaffected — the farm degrades gracefully and
    keeps its determinism. *)

module Csync = Csync
module Recorder = Telemetry.Recorder
module Json = Telemetry.Json

type config = {
  fc_workers : int;
  fc_execs : int;  (** mutated-execution budget, farm-wide (seeds excluded) *)
  fc_sync_interval : int;  (** executions per sync round, farm-wide *)
  fc_seed : int;
  fc_prune_quorum : int;
      (** fired-execution votes required to prune a probe globally;
          <= 0 disables pruning. 1 = Untracer policy, globally. *)
  fc_cache_limit : int option;  (** store GC size bound (bytes), per barrier *)
  fc_cache_age : float option;  (** store GC age bound (seconds), per barrier *)
  fc_mode : Odin.Partition.mode;
}

let default_config =
  {
    fc_workers = 1;
    fc_execs = 400;
    fc_sync_interval = 100;
    fc_seed = 42;
    fc_prune_quorum = 1;
    fc_cache_limit = None;
    fc_cache_age = None;
    fc_mode = Odin.Partition.Auto;
  }

type worker = {
  wk_id : int;
  wk_session : Odin.Session.t;
  wk_cov : Odin.Cov.t;
  wk_probes : (int, Instr.Probe.t) Hashtbl.t;  (** pid -> probe, at setup *)
  wk_corpus : Fuzzer.Corpus.t;  (** shard; replica of the global corpus *)
  wk_recorder : Recorder.t;  (** forked; merged into the farm's at the end *)
  mutable wk_execs : int;
  mutable wk_cycles : int;
  mutable wk_skipped : int;  (** transient-faulted executions *)
  mutable wk_crashes : int;  (** guest traps ([Vm.Fault]) *)
  mutable wk_recompiles : int;
  mutable wk_dead : string option;  (** why the worker left the farm *)
}

(** Cumulative cost attribution for one probe site across the whole
    campaign. [pc_execs_armed] counts merged executions that ran while
    the probe was still globally armed (probe state only changes at
    barriers, so the armed set is round-constant and the count is
    worker-count invariant); [pc_hits]/[pc_cycles] come from the VM's
    per-site increment attribution, merged in slot order. *)
type probe_cost = {
  pc_pid : int;
  pc_toggles : int;  (** enable/disable flips + removal ({!Instr.Manager}) *)
  pc_execs_armed : int;
  pc_hits : int;  (** counter increments executed *)
  pc_cycles : int;  (** VM cycles spent in the increment sequence *)
}

type stats = {
  fs_workers : int;
  fs_execs : int;  (** executions merged at barriers (seeds included) *)
  fs_total_cycles : int;
  fs_sync_rounds : int;
  fs_offered : int;  (** inputs offered at barriers *)
  fs_exchanged : int;  (** accepted and broadcast to every shard *)
  fs_duplicates : int;
  fs_stale : int;
  fs_coverage : int list;  (** globally covered probe ids, ascending *)
  fs_total_probes : int;
  fs_pruned : int list;  (** globally pruned probe ids, ascending *)
  fs_corpus : string list;  (** global corpus inputs, acceptance order *)
  fs_cross_hits : int;  (** object-cache hits on another worker's entry *)
  fs_recompiles : int;  (** barrier refreshes across all workers *)
  fs_skipped : int;
  fs_crashes : int;
  fs_dead : (int * string) list;  (** dead workers (id, reason), id order *)
  fs_gc_evicted : int;  (** store entries evicted at barriers *)
  fs_store : Support.Objstore.stats option;
  fs_probe_cost : probe_cost list;  (** every probe id, ascending *)
}

let dedup_rate st =
  if st.fs_offered = 0 then 0.
  else 100. *. float_of_int st.fs_duplicates /. float_of_int st.fs_offered

(* result of one worker's share of a round *)
type round_result =
  | Finished of Csync.item list
  | Died of string * Csync.item list  (** items completed before death *)

let live workers = List.filter (fun w -> w.wk_dead = None) workers

(** Run a farm over [base]. [entry] is the target entry point
    ([Campaign.entry] for the shipped workloads), [seeds] the initial
    inputs, [host] the host-function names registered as no-ops in each
    guest VM. [pool] executes both the workers within a round and (from
    the orchestrator, between rounds) the sessions' fragment compiles;
    results are independent of its size. [cache_dir] puts the shared
    persistent object store behind every worker's session.
    [incremental_link] and [incremental_sched] forward to every
    worker's session (default: the session's own env-driven
    defaults). *)
let run ?telemetry ?pool ?cache_dir ?incremental_link ?incremental_sched
    ?journal ?journal_path ?(host = Workloads.Generate.host_functions) ~entry
    ~seeds (cfg : config) (base : Ir.Modul.t) =
  let nw = max 1 cfg.fc_workers in
  let r = match telemetry with Some r -> r | None -> Recorder.create () in
  let pool = match pool with Some p -> p | None -> Support.Pool.default () in
  (* flight recorder: events are recorded throughout and the bounded
     window is atomically republished at every barrier *)
  let jr =
    match (journal, journal_path) with
    | Some j, _ -> Some j
    | None, Some _ -> Some (Telemetry.Journal.create ~clock:r.Recorder.clock ())
    | None, None -> None
  in
  let jflush () =
    match (jr, journal_path) with
    | Some j, Some p -> Telemetry.Journal.flush j p
    | _ -> ()
  in
  let farm_sp =
    Telemetry.Span.enter r.Recorder.spans ~cat:"farm"
      ~args:
        [
          ("workers", string_of_int nw);
          ("execs", string_of_int cfg.fc_execs);
          ("sync_interval", string_of_int cfg.fc_sync_interval);
          ("seed", string_of_int cfg.fc_seed);
        ]
      "farm"
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit r.Recorder.spans farm_sp)
  @@ fun () ->
  let shared = Odin.Session.object_cache ~size:1024 () in
  let jclock = Telemetry.Clock.synchronized r.Recorder.clock in
  (* Workers are created serially in id order: worker 0's initial build
     populates the shared cache, every later worker's build is all
     cross hits. *)
  let mk_worker i =
    let wr = Recorder.fork ~clock:jclock r in
    let m = Ir.Clone.clone_module base in
    let session =
      Odin.Session.create ~mode:cfg.fc_mode ~keep:[ entry ]
        ~runtime_globals:[ Odin.Cov.runtime_global m ]
        ~host ~pool ~objects:shared ~owner:i ?cache_dir ?incremental_link
        ?incremental_sched ~telemetry:wr m
    in
    let cov = Odin.Cov.setup session in
    let dead =
      match Odin.Session.try_build session with
      | Odin.Session.Ok | Odin.Session.Degraded _ -> None
      | Odin.Session.Rolled_back err ->
        Some ("initial build rolled back: " ^ err.Odin.Session.err_msg)
    in
    let probes = Hashtbl.create 97 in
    List.iter
      (fun (p : Instr.Probe.t) -> Hashtbl.replace probes p.Instr.Probe.pid p)
      (Instr.Manager.to_list session.Odin.Session.manager);
    {
      wk_id = i;
      wk_session = session;
      wk_cov = cov;
      wk_probes = probes;
      wk_corpus = Fuzzer.Corpus.create ();
      wk_recorder = wr;
      wk_execs = 0;
      wk_cycles = 0;
      wk_skipped = 0;
      wk_crashes = 0;
      wk_recompiles = 0;
      wk_dead = dead;
    }
  in
  let workers =
    Telemetry.Span.with_span r.Recorder.spans ~cat:"farm" "spawn" (fun () ->
        List.init nw mk_worker)
  in
  let n_probes =
    match workers with w :: _ -> w.wk_cov.Odin.Cov.total_probes | [] -> 0
  in
  let sync = Csync.create ~n_probes in
  let votes = Instr.Votes.create () in
  let pruned_global : (int, unit) Hashtbl.t = Hashtbl.create 97 in
  let corpus_global = ref [] (* accepted inputs, newest first *) in
  let total_execs = ref 0 and total_cycles = ref 0 in
  let sync_rounds = ref 0 in
  let gc_evicted = ref 0 in
  let probe_hits_cycles : (int, int ref * int ref) Hashtbl.t =
    Hashtbl.create 97
  in
  let execs_armed : (int, int) Hashtbl.t = Hashtbl.create 97 in
  let n_seeds = List.length seeds in
  let default_input = match seeds with s :: _ -> s | [] -> "\x00" in

  (* ---------------- one execution slot ---------------------------- *)
  (* Deterministic in the slot index alone (given the round-start shard
     state, which is a global replica): which worker runs it is
     irrelevant to the result. *)
  let run_slot w idx =
    let rng = Support.Rng.create ((cfg.fc_seed * 1_000_003) + idx) in
    let input =
      if idx < n_seeds then List.nth seeds idx
      else
        let base_in =
          match Fuzzer.Corpus.pick w.wk_corpus rng with
          | Some s -> s.Fuzzer.Corpus.data
          | None -> default_input
        in
        Fuzzer.Mutate.havoc rng ~pool:(Fuzzer.Corpus.inputs w.wk_corpus) base_in
    in
    let vm = Vm.create (Odin.Session.executable w.wk_session) in
    ignore (Vm.enable_profile vm);
    List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) host;
    let addr = Vm.write_buffer vm input in
    ignore (Vm.call vm entry [ addr; Int64.of_int (String.length input) ]);
    w.wk_execs <- w.wk_execs + 1;
    w.wk_cycles <- w.wk_cycles + vm.Vm.cycles;
    Recorder.count (Some w.wk_recorder) "campaign.execs";
    Recorder.observe (Some w.wk_recorder) "campaign.exec_cycles"
      (float_of_int vm.Vm.cycles);
    let fired =
      List.filter_map
        (fun (p : Instr.Probe.t) ->
          match p.Instr.Probe.payload with
          | Instr.Probe.Cov _ when Odin.Cov.read_counter vm p.Instr.Probe.pid > 0 ->
            Some p.Instr.Probe.pid
          | _ -> None)
        (Instr.Manager.to_list w.wk_session.Odin.Session.manager)
      |> List.sort compare
    in
    let prof =
      match Vm.profile vm with Some p -> Vm.profile_top p | None -> []
    in
    {
      Csync.it_index = idx;
      it_input = input;
      it_cycles = vm.Vm.cycles;
      it_fired = fired;
      it_fns = prof;
      it_probe_cost =
        Odin.Cov.probe_costs ~total:w.wk_cov.Odin.Cov.total_probes vm;
    }
  in

  (* one worker's share of a round; never raises *)
  let run_share w idxs =
    let acc = ref [] in
    try
      List.iter
        (fun idx ->
          match run_slot w idx with
          | item -> acc := item :: !acc
          | exception Support.Fault.Transient_fault _ ->
            w.wk_skipped <- w.wk_skipped + 1
          | exception Vm.Fault _ -> w.wk_crashes <- w.wk_crashes + 1)
        idxs;
      Finished (List.rev !acc)
    with
    | Support.Fault.Injected site ->
      Died (Printf.sprintf "injected fault at %s" site, List.rev !acc)
    | Support.Fault.Timed_out site ->
      Died (Printf.sprintf "timed out at %s" site, List.rev !acc)
    | e -> Died (Printexc.to_string e, List.rev !acc)
  in

  (* ---------------- the sync barrier ------------------------------ *)
  let barrier ~round (results : (worker * round_result) list) =
    incr sync_rounds;
    Telemetry.Recorder.with_span r ~cat:"farm"
      ~args:[ ("round", string_of_int round) ]
      "sync"
    @@ fun () ->
    (* a worker that died mid-round loses its whole round: its slots are
       not merged, so survivors see exactly what they would have seen
       had the dead worker never been assigned those slots *)
    List.iter
      (fun (w, res) ->
        match res with
        | Died (reason, _) ->
          w.wk_dead <- Some reason;
          Recorder.count (Some r) "farm.worker_deaths"
        | Finished _ -> ())
      results;
    (* rendezvous: every surviving worker checks in — including workers
       that drew no slots this round; an injected fault here kills it at
       the barrier door, same exclusion *)
    List.iter
      (fun w ->
        if w.wk_dead = None then
          try Support.Fault.hit "farm.sync"
          with
          | Support.Fault.Injected site
          | Support.Fault.Transient_fault site
          | Support.Fault.Timed_out site
          ->
            w.wk_dead <- Some (Printf.sprintf "fault at %s" site);
            Recorder.count (Some r) "farm.worker_deaths")
      workers;
    let items =
      List.concat_map
        (fun (w, res) ->
          match (w.wk_dead, res) with
          | None, Finished items -> items
          | _ -> [])
        results
      |> List.sort (fun a b -> compare a.Csync.it_index b.Csync.it_index)
    in
    (* energy is computed against the farm-wide average exec cost from
       all previous rounds — worker-count invariant by construction *)
    let avg_cycles = if !total_execs = 0 then 0 else !total_cycles / !total_execs in
    let accepted = Csync.merge sync items in
    (* per-probe attribution, merged in slot order. All merged executions
       of a round ran against the same armed set (probe state only
       changes at barriers), so every probe not yet globally pruned at
       round start is charged the round's merged-execution count. *)
    let n_items = List.length items in
    if n_items > 0 then
      for pid = 0 to n_probes - 1 do
        if not (Hashtbl.mem pruned_global pid) then
          Hashtbl.replace execs_armed pid
            (n_items + Option.value ~default:0 (Hashtbl.find_opt execs_armed pid))
      done;
    List.iter
      (fun it ->
        List.iter
          (fun (pid, h, c) ->
            let hits, cyc =
              match Hashtbl.find_opt probe_hits_cycles pid with
              | Some p -> p
              | None ->
                let p = (ref 0, ref 0) in
                Hashtbl.replace probe_hits_cycles pid p;
                p
            in
            hits := !hits + h;
            cyc := !cyc + c)
          it.Csync.it_probe_cost)
      items;
    List.iter
      (fun it ->
        incr total_execs;
        total_cycles := !total_cycles + it.Csync.it_cycles;
        (* one vote per (probe, execution) toward global saturation *)
        List.iter (fun pid -> Instr.Votes.record votes ~pid) it.Csync.it_fired)
      items;
    (* every live worker takes the barrier's effects, whether or not it
       drew a slot this round — shards must stay global replicas *)
    let survivors = live workers in
    (* broadcast: every accepted input lands in every shard, so all
       shards replicate the global corpus at round start *)
    List.iter
      (fun (it, fresh) ->
        let energy =
          Fuzzer.Campaign.seed_energy ~avg_cycles ~cycles:it.Csync.it_cycles
            ~fn_cycles:it.Csync.it_fns
        in
        corpus_global := it.Csync.it_input :: !corpus_global;
        List.iter
          (fun w ->
            Fuzzer.Corpus.add w.wk_corpus ~energy ~data:it.Csync.it_input
              ~exec_cycles:it.Csync.it_cycles ~new_blocks:fresh ())
          survivors)
      accepted;
    Recorder.count (Some r) ~by:(List.length accepted) "farm.inputs_exchanged";
    (* global prune decision, applied identically to every survivor *)
    let prunes =
      Instr.Votes.saturated votes ~quorum:cfg.fc_prune_quorum
        ~already:(Hashtbl.mem pruned_global)
    in
    List.iter (fun pid -> Hashtbl.replace pruned_global pid ()) prunes;
    if prunes <> [] then
      Recorder.count (Some r) ~by:(List.length prunes) "farm.probes_pruned";
    List.iter
      (fun w ->
        List.iter
          (fun pid ->
            match Hashtbl.find_opt w.wk_probes pid with
            | Some p -> Instr.Manager.remove w.wk_session.Odin.Session.manager p
            | None -> ())
          prunes;
        (* serial, in worker order: the first survivor compiles the
           post-prune fragments, the rest hit the shared cache *)
        if prunes <> [] || Odin.Session.degraded_fragments w.wk_session <> []
        then
          match Odin.Session.try_refresh w.wk_session with
          | Some (Odin.Session.Ok | Odin.Session.Degraded _) ->
            w.wk_recompiles <- w.wk_recompiles + 1
          | Some (Odin.Session.Rolled_back _) | None -> ())
      survivors;
    (* store GC: bound the shared persistent tier while everyone is
       parked at the barrier *)
    (match (survivors, cfg.fc_cache_limit, cfg.fc_cache_age) with
    | _, None, None | [], _, _ -> ()
    | w :: _, _, _ -> (
      match w.wk_session.Odin.Session.store with
      | None -> ()
      | Some st ->
        let g =
          Support.Objstore.gc ?max_bytes:cfg.fc_cache_limit
            ?max_age:cfg.fc_cache_age st
        in
        gc_evicted := !gc_evicted + g.Support.Objstore.gc_evicted;
        if g.Support.Objstore.gc_evicted > 0 then
          Recorder.count (Some r) ~by:g.Support.Objstore.gc_evicted
            "farm.store_gc_evicted"));
    Recorder.count (Some r) "farm.sync_rounds";
    (* flight recorder: one sync event plus a campaign-counter snapshot
       (farm.* live on the farm recorder, session.*/link.* on the parked
       workers' forks), republished atomically while everyone is at the
       barrier *)
    match jr with
    | None -> ()
    | Some j ->
      Telemetry.Journal.record j ~kind:"farm.sync"
        [
          ("round", Json.Int round);
          ("merged", Json.Int n_items);
          ("accepted", Json.Int (List.length accepted));
          ("pruned", Json.Int (List.length prunes));
          ("coverage", Json.Int (Csync.covered_count sync));
          ("execs", Json.Int !total_execs);
          ("cycles", Json.Int !total_cycles);
        ];
      let agg : (string, int) Hashtbl.t = Hashtbl.create 32 in
      let scan (rc : Recorder.t) =
        List.iter
          (fun c ->
            let n = Telemetry.Metrics.counter_name c in
            if
              String.starts_with ~prefix:"farm." n
              || String.starts_with ~prefix:"session." n
              || String.starts_with ~prefix:"link." n
            then
              Hashtbl.replace agg n
                (Telemetry.Metrics.value c
                + Option.value ~default:0 (Hashtbl.find_opt agg n)))
          (Telemetry.Metrics.counters rc.Recorder.metrics)
      in
      scan r;
      List.iter (fun w -> scan w.wk_recorder) workers;
      let fields =
        Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) agg []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      if fields <> [] then
        Telemetry.Journal.record j ~kind:"counters"
          (("round", Json.Int round) :: fields);
      jflush ()
  in

  (* ---------------- round scheduler ------------------------------- *)
  (* slots are dealt round-robin over the live workers; the deal only
     decides who computes what *)
  let run_round ~round idxs =
    let ws = live workers in
    match ws with
    | [] -> ()
    | _ ->
      let n = List.length ws in
      let shares = Array.make n [] in
      List.iteri (fun k idx -> shares.(k mod n) <- idx :: shares.(k mod n)) idxs;
      let jobs =
        List.mapi (fun k w -> (w, List.rev shares.(k))) ws
        |> List.filter (fun (_, idxs) -> idxs <> [])
      in
      let results =
        Support.Pool.map pool
          (fun (w, idxs) ->
            Telemetry.Recorder.with_span w.wk_recorder ~cat:"farm"
              ~args:[ ("round", string_of_int round) ]
              "worker-round"
              (fun () -> (w, run_share w idxs)))
          jobs
      in
      barrier ~round results
  in
  (* round 0: the seed inputs themselves, then the mutation budget in
     sync-interval chunks *)
  if n_seeds > 0 && live workers <> [] then
    run_round ~round:0 (List.init n_seeds (fun i -> i));
  let interval = max 1 cfg.fc_sync_interval in
  let budget = max 0 cfg.fc_execs in
  let next = ref 0 in
  let round = ref 1 in
  while !next < budget && live workers <> [] do
    let n = min interval (budget - !next) in
    run_round ~round:!round (List.init n (fun k -> n_seeds + !next + k));
    next := !next + n;
    incr round
  done;

  (* ---------------- join --------------------------------------------- *)
  let cross = Odin.Session.cross_hits shared in
  Recorder.count (Some r) ~by:cross "farm.cache_cross_hits";
  List.iter (fun w -> Recorder.merge ~into:r ~parent:farm_sp w.wk_recorder) workers;
  (* per-probe cost roll-up. Toggle counts come from a live worker's
     manager (sessions apply barrier effects identically, so any
     survivor agrees); a fully dead farm falls back to worker 0. *)
  let probe_costs =
    let mgr =
      match live workers with
      | w :: _ -> Some w.wk_session.Odin.Session.manager
      | [] -> (
        match workers with
        | w :: _ -> Some w.wk_session.Odin.Session.manager
        | [] -> None)
    in
    let toggles pid =
      match mgr with Some m -> Instr.Manager.toggle_count m pid | None -> 0
    in
    List.init n_probes (fun pid ->
        let hits, cycles =
          match Hashtbl.find_opt probe_hits_cycles pid with
          | Some (h, c) -> (!h, !c)
          | None -> (0, 0)
        in
        {
          pc_pid = pid;
          pc_toggles = toggles pid;
          pc_execs_armed =
            Option.value ~default:0 (Hashtbl.find_opt execs_armed pid);
          pc_hits = hits;
          pc_cycles = cycles;
        })
  in
  (match jr with
  | None -> ()
  | Some j ->
    List.iter
      (fun pc ->
        Telemetry.Journal.record j ~kind:"probe.cost"
          [
            ("pid", Json.Int pc.pc_pid);
            ("toggles", Json.Int pc.pc_toggles);
            ("execs_armed", Json.Int pc.pc_execs_armed);
            ("hits", Json.Int pc.pc_hits);
            ("cycles", Json.Int pc.pc_cycles);
          ])
      probe_costs;
    Telemetry.Journal.record j ~kind:"farm.done"
      [
        ("workers", Json.Int nw);
        ("execs", Json.Int !total_execs);
        ("cycles", Json.Int !total_cycles);
        ("coverage", Json.Int (Csync.covered_count sync));
        ("total_probes", Json.Int n_probes);
        ("pruned", Json.Int (Hashtbl.length pruned_global));
        ("exchanged", Json.Int sync.Csync.accepted);
        ("cross_hits", Json.Int cross);
        ("crashes",
         Json.Int (List.fold_left (fun a w -> a + w.wk_crashes) 0 workers));
      ];
    jflush ());
  {
    fs_workers = nw;
    fs_execs = !total_execs;
    fs_total_cycles = !total_cycles;
    fs_sync_rounds = !sync_rounds;
    fs_offered = sync.Csync.offered;
    fs_exchanged = sync.Csync.accepted;
    fs_duplicates = sync.Csync.duplicates;
    fs_stale = sync.Csync.stale;
    fs_coverage = Csync.covered_list sync;
    fs_total_probes = n_probes;
    fs_pruned = Hashtbl.fold (fun pid () acc -> pid :: acc) pruned_global [] |> List.sort compare;
    fs_corpus = List.rev !corpus_global;
    fs_cross_hits = cross;
    fs_recompiles = List.fold_left (fun a w -> a + w.wk_recompiles) 0 workers;
    fs_skipped = List.fold_left (fun a w -> a + w.wk_skipped) 0 workers;
    fs_crashes = List.fold_left (fun a w -> a + w.wk_crashes) 0 workers;
    fs_dead =
      List.filter_map
        (fun w ->
          match w.wk_dead with Some why -> Some (w.wk_id, why) | None -> None)
        workers;
    fs_gc_evicted = !gc_evicted;
    fs_store =
      (match workers with
      | w :: _ -> Odin.Session.store_stats w.wk_session
      | [] -> None);
    fs_probe_cost = probe_costs;
  }
