(** Process-isolated fuzzing farm: a supervisor and N worker processes
    exchanging {!Wire} frames over pipes.

    The domains driver ({!Farm.run}) shares one OCaml heap: a wedged or
    segfaulting worker — exactly what a fuzzer is built to provoke —
    takes the campaign with it, and the cooperative [with_deadline]
    watchdog cannot preempt a worker stuck in a non-yielding loop. Here
    each worker is a separate process ([odinc fuzz-worker]) running one
    round's slot schedule at a time; the supervisor owns all campaign
    state ({!Orch.t}) and can always [SIGKILL] a stuck worker.

    {2 Stateless workers, deterministic restarts}

    Every [Assign] frame carries the worker's complete round context:
    the full global-corpus replica (with energies), the full pruned
    set, and the slot list. A worker rebuilds its shard from scratch
    each round, so a killed worker is restarted by re-sending the very
    same frame — the partial results of the killed attempt are
    discarded and the re-run reproduces them bit-identically (slots are
    pure functions of [(seed, slot, round-start replica)]). Coverage,
    corpus and cycles are therefore invariant across worker counts,
    across [--farm-mode domains|procs], and across any kill/restart
    schedule — the property the kill matrix in [test_proc.ml] pins
    down.

    {2 Supervision}

    Workers send a [Heartbeat] frame after applying round state and
    after every completed slot. The supervisor's watchdog is
    preemptive: no heartbeat for [worker_timeout] seconds ⇒ [SIGKILL],
    restart, re-assign (same frame). A worker that dies more than
    [max_restarts] times is retired and its outstanding assignment
    moves to the lowest-id live worker — slot results do not depend on
    who computes them. Each restart multiplies the worker's vote
    weight by [fc_vote_decay] (weighted quorums: evidence from a crash
    looping worker counts for less; 1.0 keeps exact integer quorums).
    Fault sites: ["farm.heartbeat"] fires per heartbeat processed — an
    injected fault is treated as a missed deadline (preemptive kill);
    ["wire.send"] (in either process) and ["farm.checkpoint"] are
    documented in {!Wire}.

    {2 Checkpoint/resume}

    After every barrier the supervisor publishes an {!Orch.ckpt}
    through {!Wire.write_checkpoint} (atomic, [.prev] rotation).
    [run ~resume] continues from it: workers are stateless, so resume
    is nothing more than restoring the orchestrator and carrying on
    with the next round — reaching the same final coverage bitmap and
    journal tail as the uninterrupted run.

    Unlike the domains driver — which discards a dead worker's
    in-flight round and retires the lane — this driver re-runs the
    dead worker's share: with faults in play the two modes intentionally
    differ (that is the crash-proofing), while fault-free campaigns are
    bit-identical across modes. *)

module Recorder = Telemetry.Recorder

(* ================================================================== *)
(* Worker side                                                         *)
(* ================================================================== *)

(** Body of [odinc fuzz-worker] (and of the test/bench re-exec
    shims): serve one worker's slot schedules over stdin/stdout until
    [Shutdown]. Never returns; exits 0 on a clean shutdown, nonzero on
    faults (the supervisor only cares about frames and pipe EOF, not
    exit codes). Installs the [ODIN_FAULTS] plan from the environment,
    so fault schedules can target workers without touching the
    supervisor. *)
let worker_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  ignore (Support.Fault.init_from_env ());
  let rd = Wire.reader Unix.stdin in
  let send m = Wire.send Unix.stdout m in
  let die reason code =
    (try send (Wire.Died reason) with _ -> ());
    exit code
  in
  let init =
    match Wire.recv rd with
    | Wire.Init i -> i
    | _ -> die "protocol violation: expected Init" 64
    | exception Wire.Wire_error _ -> exit 65
  in
  let m = Ir.Parse.module_of_string ~name:init.Wire.in_mod_name init.Wire.in_mod_text in
  let session =
    Odin.Session.create ~mode:init.Wire.in_mode ~keep:[ init.Wire.in_entry ]
      ~runtime_globals:[ Odin.Cov.runtime_global m ]
      ~host:init.Wire.in_host ~pool:Support.Pool.serial
      ?cache_dir:init.Wire.in_cache_dir
      ?incremental_link:init.Wire.in_incr_link
      ?incremental_sched:init.Wire.in_incr_sched
      ~tiered:(init.Wire.in_promote_share > 0.) m
  in
  let cov = Odin.Cov.setup session in
  (match Odin.Session.try_build session with
  | Odin.Session.Ok | Odin.Session.Degraded _ -> ()
  | Odin.Session.Rolled_back err ->
    die ("initial build rolled back: " ^ err.Odin.Session.err_msg) 3);
  let probes : (int, Instr.Probe.t) Hashtbl.t = Hashtbl.create 97 in
  List.iter
    (fun (p : Instr.Probe.t) -> Hashtbl.replace probes p.Instr.Probe.pid p)
    (Instr.Manager.to_list session.Odin.Session.manager);
  (try
     send (Wire.Ready { rd_id = init.Wire.in_id; rd_n_probes = cov.Odin.Cov.total_probes })
   with Wire.Wire_error _ -> exit 70);
  let applied : (int, unit) Hashtbl.t = Hashtbl.create 97 in
  let default_input = match init.Wire.in_seeds with s :: _ -> s | [] -> "\x00" in
  let rec serve () =
    (match Wire.recv rd with
    | Wire.Shutdown -> exit 0
    | Wire.Assign a -> (
      (* stateless round context: rebuild the shard replica, apply any
         prunes this process has not seen yet, refresh if needed *)
      let corpus = Fuzzer.Corpus.create () in
      Orch.replay_corpus corpus a.Wire.as_corpus;
      let fresh_prunes =
        List.filter (fun pid -> not (Hashtbl.mem applied pid)) a.Wire.as_pruned
      in
      List.iter
        (fun pid ->
          Hashtbl.replace applied pid ();
          match Hashtbl.find_opt probes pid with
          | Some p -> Instr.Manager.remove session.Odin.Session.manager p
          | None -> ())
        fresh_prunes;
      (* tier promotions: re-derive the cumulative promotion set from
         the merged profile the supervisor sent. promote_hot is
         idempotent, so a long-lived process queues only what is new —
         and a freshly restarted one catches up on everything at once *)
      let fresh_promos =
        if init.Wire.in_promote_share > 0. then
          Odin.Session.promote_hot ~threshold:init.Wire.in_promote_share
            session a.Wire.as_fn_cycles
        else []
      in
      let recompiles = ref 0 in
      if
        fresh_prunes <> [] || fresh_promos <> []
        || Odin.Session.degraded_fragments session <> []
      then (
        match Odin.Session.try_refresh session with
        | Some (Odin.Session.Ok | Odin.Session.Degraded _) -> incr recompiles
        | Some (Odin.Session.Rolled_back _) | None -> ());
      let items = ref [] and done_slots = ref 0 in
      let skipped = ref 0 and crashes = ref 0 in
      try
        send (Wire.Heartbeat { hb_round = a.Wire.as_round; hb_done = 0 });
        List.iter
          (fun idx ->
            (match
               Orch.exec_slot ~seed:init.Wire.in_seed ~entry:init.Wire.in_entry
                 ~host:init.Wire.in_host ~seeds:init.Wire.in_seeds
                 ~default_input ~session
                 ~total_probes:cov.Odin.Cov.total_probes ~corpus idx
             with
            | item -> items := item :: !items
            | exception Support.Fault.Transient_fault _ -> incr skipped
            | exception Vm.Fault _ -> incr crashes);
            incr done_slots;
            send (Wire.Heartbeat { hb_round = a.Wire.as_round; hb_done = !done_slots }))
          a.Wire.as_slots;
        send
          (Wire.Items
             {
               im_round = a.Wire.as_round;
               im_items = List.rev !items;
               im_skipped = !skipped;
               im_crashes = !crashes;
               im_recompiles = !recompiles;
             })
      with
      | Wire.Wire_error _ ->
        (* a torn/failed send means this process can no longer speak the
           protocol; die and let the supervisor restart cleanly *)
        exit 70
      | Support.Fault.Injected site ->
        die (Printf.sprintf "injected fault at %s" site) 2
      | Support.Fault.Timed_out site ->
        die (Printf.sprintf "timed out at %s" site) 2
      | Vm.Fault _ as e | e -> die (Printexc.to_string e) 2)
    | Wire.Init _ | Wire.Ready _ | Wire.Heartbeat _ | Wire.Items _
    | Wire.Died _ | Wire.Checkpoint _ | Wire.Blob _ ->
      die "protocol violation: unexpected frame" 64
    | exception Wire.Wire_error _ ->
      (* supervisor went away (EOF / torn pipe): nothing to report to *)
      exit 66);
    serve ()
  in
  serve ()

(* ================================================================== *)
(* Supervisor side                                                     *)
(* ================================================================== *)

type pworker = {
  pw_id : int;
  mutable pw_pid : int;
  mutable pw_in : Unix.file_descr;  (** supervisor → worker stdin *)
  mutable pw_out : Wire.reader;  (** worker stdout → supervisor *)
  mutable pw_weight : float;  (** current vote weight (decays on restart) *)
  mutable pw_restarts : int;
  mutable pw_retired : string option;
  mutable pw_last_seen : float;
  mutable pw_queue : Wire.assign list;  (** outstanding assignments, FIFO *)
  mutable pw_skipped : int;
  mutable pw_crashes : int;
  mutable pw_recompiles : int;
}

exception All_workers_retired

let spawn_process argv env =
  (* cloexec pipes: create_process's dup2 onto the std fds clears the
     flag for the child's own copies, and other children don't inherit
     this worker's pipe ends *)
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let pid = Unix.create_process_env argv.(0) argv env in_r out_w Unix.stderr in
  Unix.close in_r;
  Unix.close out_w;
  (pid, in_w, out_r)

(** Run a process farm over [base]: same contract and result shape as
    the domains driver ({!Farm.run}), plus supervision and
    checkpointing. [worker_argv] is the command line re-executed for
    each worker (default [[| Sys.executable_name; "fuzz-worker" |]],
    which is right for [odinc]; tests and benches pass their own
    re-exec marker); [worker_env] the workers' environment (default:
    inherited — note [ODIN_FAULTS] in it installs the plan {e in the
    workers}). [checkpoint_path] publishes a checkpoint at every
    barrier; [resume] continues a campaign from a loaded checkpoint
    (the target digest must match). [worker_timeout] is the preemptive
    watchdog's heartbeat deadline in seconds; [max_restarts] the
    kill/restart budget per worker before it is retired. *)
let run ?telemetry ?cache_dir ?incremental_link ?incremental_sched ?journal
    ?journal_path ?(host = Workloads.Generate.host_functions) ?checkpoint_path
    ?resume ?(worker_timeout = 30.) ?(max_restarts = 3) ?worker_argv
    ?worker_env ~entry ~seeds (cfg : Orch.config) (base : Ir.Modul.t) =
  let nw = max 1 cfg.Orch.fc_workers in
  let r = match telemetry with Some r -> r | None -> Recorder.create () in
  let jr =
    match (journal, journal_path) with
    | Some j, _ -> Some j
    | None, Some _ -> Some (Telemetry.Journal.create ~clock:r.Recorder.clock ())
    | None, None -> None
  in
  let jflush () =
    match (jr, journal_path) with
    | Some j, Some p -> Telemetry.Journal.flush j p
    | _ -> ()
  in
  let argv =
    match worker_argv with
    | Some a -> a
    | None -> [| Sys.executable_name; "fuzz-worker" |]
  in
  let env = match worker_env with Some e -> e | None -> Unix.environment () in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let digest = Orch.module_digest base in
  let mod_text = Ir.Print.module_to_string base in
  let farm_sp =
    Telemetry.Span.enter r.Recorder.spans ~cat:"farm"
      ~args:
        [
          ("workers", string_of_int nw);
          ("execs", string_of_int cfg.Orch.fc_execs);
          ("sync_interval", string_of_int cfg.Orch.fc_sync_interval);
          ("seed", string_of_int cfg.Orch.fc_seed);
          ("mode", "procs");
        ]
      "farm"
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit r.Recorder.spans farm_sp)
  @@ fun () ->
  (match resume with
  | Some ck ->
    if ck.Orch.ck_digest <> digest then
      invalid_arg "Proc.run: checkpoint is for a different target module";
    if ck.Orch.ck_seed <> cfg.Orch.fc_seed then
      invalid_arg "Proc.run: checkpoint seed differs from the configured seed"
  | None -> ());
  let init_for id =
    {
      Wire.in_id = id;
      in_seed = cfg.Orch.fc_seed;
      in_mode = cfg.Orch.fc_mode;
      in_entry = entry;
      in_host = host;
      in_seeds = seeds;
      in_mod_name = base.Ir.Modul.mname;
      in_mod_text = mod_text;
      in_cache_dir = cache_dir;
      in_incr_link = incremental_link;
      in_incr_sched = incremental_sched;
      in_promote_share = cfg.Orch.fc_promote_share;
    }
  in
  let retired_log = ref [] in
  let total_restarts = ref 0 in
  (* ---- worker lifecycle ------------------------------------------- *)
  let reap w reason =
    (try Unix.kill w.pw_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pw_pid) with Unix.Unix_error _ -> ());
    (try Unix.close w.pw_in with Unix.Unix_error _ -> ());
    (try Unix.close w.pw_out.Wire.rd_fd with Unix.Unix_error _ -> ());
    Recorder.count (Some r) "farm.worker_deaths";
    ignore reason
  in
  (* spawn + Init, then wait for Ready (bounded). *)
  let start w =
    let pid, fin, fout = spawn_process argv env in
    w.pw_pid <- pid;
    w.pw_in <- fin;
    w.pw_out <- Wire.reader fout;
    w.pw_last_seen <- Unix.gettimeofday ();
    match
      Wire.send w.pw_in (Wire.Init (init_for w.pw_id));
      let deadline = Unix.gettimeofday () +. max worker_timeout 5. in
      let rec await () =
        match Wire.next w.pw_out with
        | Some (Wire.Ready { rd_n_probes; _ }) -> Ok rd_n_probes
        | Some (Wire.Died reason) -> Error reason
        | Some _ -> Error "protocol violation in handshake"
        | None ->
          if Unix.gettimeofday () > deadline then Error "handshake timeout"
          else (
            match Unix.select [ w.pw_out.Wire.rd_fd ] [] [] 0.1 with
            | [], _, _ -> await ()
            | _ -> (
              match Wire.feed w.pw_out with
              | `Eof -> Error "worker exited during handshake"
              | `Read _ -> await ()))
      in
      await ()
    with
    | result -> result
    | exception Wire.Wire_error m -> Error m
  in
  let mk_worker id =
    {
      pw_id = id;
      pw_pid = -1;
      pw_in = Unix.stdin;
      pw_out = Wire.reader Unix.stdin;
      pw_weight = 1.0;
      pw_restarts = 0;
      pw_retired = None;
      pw_last_seen = 0.;
      pw_queue = [];
      pw_skipped = 0;
      pw_crashes = 0;
      pw_recompiles = 0;
    }
  in
  let ws = Array.init nw mk_worker in
  let alive () =
    Array.to_list ws |> List.filter (fun w -> w.pw_retired = None)
  in
  (* restart-or-retire; re-dispatches the dead worker's outstanding
     assignments (to itself after a restart, to the lowest-id live
     worker after retirement). *)
  let rec on_death w reason =
    if w.pw_retired = None then begin
      reap w reason;
      if w.pw_restarts < max_restarts then begin
        w.pw_restarts <- w.pw_restarts + 1;
        incr total_restarts;
        Recorder.count (Some r) "farm.worker_restarts";
        w.pw_weight <- w.pw_weight *. cfg.Orch.fc_vote_decay;
        match start w with
        | Ok _ -> (
          try List.iter (fun a -> Wire.send w.pw_in (Wire.Assign a)) w.pw_queue
          with Wire.Wire_error m -> on_death w ("resend failed: " ^ m))
        | Error m -> on_death w ("restart failed: " ^ m)
      end
      else begin
        w.pw_retired <- Some reason;
        retired_log := (w.pw_id, reason) :: !retired_log;
        let orphans = w.pw_queue in
        w.pw_queue <- [];
        match alive () with
        | [] -> raise All_workers_retired
        | h :: _ ->
          if orphans <> [] then begin
            h.pw_queue <- h.pw_queue @ orphans;
            try List.iter (fun a -> Wire.send h.pw_in (Wire.Assign a)) orphans
            with Wire.Wire_error m -> on_death h ("orphan reassign failed: " ^ m)
          end
      end
    end
  in
  (* ---- initial fleet ---------------------------------------------- *)
  let n_probes = ref (-1) in
  Telemetry.Span.with_span r.Recorder.spans ~cat:"farm" "spawn" (fun () ->
      Array.iter
        (fun w ->
          let rec boot attempts =
            match start w with
            | Ok np ->
              if !n_probes < 0 then n_probes := np
              else if np <> !n_probes then (
                reap w "probe-count mismatch";
                w.pw_retired <- Some "probe-count mismatch";
                retired_log := (w.pw_id, "probe-count mismatch") :: !retired_log)
            | Error m ->
              reap w m;
              if attempts < max_restarts then begin
                w.pw_restarts <- w.pw_restarts + 1;
                incr total_restarts;
                Recorder.count (Some r) "farm.worker_restarts";
                w.pw_weight <- w.pw_weight *. cfg.Orch.fc_vote_decay;
                boot (attempts + 1)
              end
              else begin
                w.pw_retired <- Some m;
                retired_log := (w.pw_id, m) :: !retired_log
              end
          in
          boot 0)
        ws);
  let n_probes = max 0 !n_probes in
  let orch =
    match resume with
    | Some ck ->
      if ck.Orch.ck_n_probes <> n_probes && alive () <> [] then
        invalid_arg "Proc.run: checkpoint probe count differs from the target";
      let t = Orch.restore cfg ck in
      List.iter
        (fun (id, wt) -> if id >= 0 && id < nw then ws.(id).pw_weight <- wt)
        ck.Orch.ck_weights;
      t
    | None -> Orch.create ~n_probes cfg
  in
  let sup_store =
    Option.map
      (Support.Objstore.open_store ~version:Odin.Session.store_format_version)
      cache_dir
  in
  let interval_gauge =
    Telemetry.Metrics.counter r.Recorder.metrics "farm.sync_interval_current"
  in
  (* ---- one round: dispatch, supervise, collect -------------------- *)
  let collect_round ~round shares =
    (* shares : (pworker * Wire.assign) list; queue + send *)
    let results = ref [] in
    List.iter
      (fun (w, a) ->
        w.pw_queue <- w.pw_queue @ [ a ];
        try Wire.send w.pw_in (Wire.Assign a)
        with Wire.Wire_error m -> on_death w ("assign failed: " ^ m))
      shares;
    let outstanding () =
      Array.to_list ws
      |> List.filter (fun w -> w.pw_retired = None && w.pw_queue <> [])
    in
    let exception Dead of string in
    while outstanding () <> [] do
      let now = Unix.gettimeofday () in
      (* preemptive watchdog: a worker owing results that has not
         heartbeat within the deadline is killed and restarted *)
      List.iter
        (fun w ->
          if now -. w.pw_last_seen > worker_timeout then
            on_death w "missed heartbeat deadline (preemptive kill)")
        (outstanding ());
      let waiting = outstanding () in
      if waiting <> [] then begin
        let fds = List.map (fun w -> w.pw_out.Wire.rd_fd) waiting in
        let readable, _, _ =
          try Unix.select fds [] [] 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match
              List.find_opt (fun w -> w.pw_out.Wire.rd_fd == fd) waiting
            with
            | None -> ()
            | Some w -> (
              try
                (match Wire.feed w.pw_out with
                | `Eof ->
                  if Wire.pending w.pw_out > 0 then
                    raise (Dead "torn frame: worker died mid-send")
                  else raise (Dead "worker closed pipe")
                | `Read n -> if n > 0 then w.pw_last_seen <- Unix.gettimeofday ());
                let rec drain () =
                  match Wire.next w.pw_out with
                  | None -> ()
                  | Some (Wire.Heartbeat _) ->
                    w.pw_last_seen <- Unix.gettimeofday ();
                    (try Support.Fault.hit "farm.heartbeat"
                     with
                     | Support.Fault.Injected _ | Support.Fault.Transient_fault _
                     | Support.Fault.Timed_out _
                     ->
                       raise (Dead "heartbeat fault (preemptive kill)"));
                    drain ()
                  | Some (Wire.Items im) ->
                    w.pw_last_seen <- Unix.gettimeofday ();
                    (match w.pw_queue with
                    | [] -> raise (Dead "unsolicited Items frame")
                    | a :: rest ->
                      if a.Wire.as_round <> im.Wire.im_round then
                        raise (Dead "Items for the wrong round");
                      w.pw_queue <- rest;
                      w.pw_skipped <- w.pw_skipped + im.Wire.im_skipped;
                      w.pw_crashes <- w.pw_crashes + im.Wire.im_crashes;
                      w.pw_recompiles <- w.pw_recompiles + im.Wire.im_recompiles;
                      results := (w.pw_weight, im.Wire.im_items) :: !results);
                    drain ()
                  | Some (Wire.Died reason) ->
                    raise (Dead ("worker fault: " ^ reason))
                  | Some _ -> raise (Dead "protocol violation")
                in
                drain ()
              with
              | Dead reason -> on_death w reason
              | Wire.Wire_error m -> on_death w m))
          readable
      end
    done;
    ignore round;
    !results
  in
  (* ---- the barrier ------------------------------------------------ *)
  let barrier ~round ~next results =
    Telemetry.Recorder.with_span r ~cat:"farm"
      ~args:[ ("round", string_of_int round) ]
      "sync"
    @@ fun () ->
    let weight_of_slot : (int, float) Hashtbl.t = Hashtbl.create 97 in
    List.iter
      (fun (wt, items) ->
        List.iter
          (fun it -> Hashtbl.replace weight_of_slot it.Csync.it_index wt)
          items)
      results;
    let items =
      List.concat_map (fun (_, items) -> items) results
      |> List.sort (fun a b -> compare a.Csync.it_index b.Csync.it_index)
    in
    let weight it =
      Option.value ~default:1.0 (Hashtbl.find_opt weight_of_slot it.Csync.it_index)
    in
    let broadcast, prunes = Orch.merge_round ~weight orch items in
    Recorder.count (Some r) ~by:(List.length broadcast) "farm.inputs_exchanged";
    if prunes <> [] then
      Recorder.count (Some r) ~by:(List.length prunes) "farm.probes_pruned";
    Recorder.count (Some r) "farm.sync_rounds";
    Telemetry.Metrics.set interval_gauge orch.Orch.o_interval;
    (* store GC while every worker is parked at the barrier *)
    (match (sup_store, cfg.Orch.fc_cache_limit, cfg.Orch.fc_cache_age) with
    | None, _, _ | _, None, None -> ()
    | Some st, _, _ ->
      let g =
        Support.Objstore.gc ?max_bytes:cfg.Orch.fc_cache_limit
          ?max_age:cfg.Orch.fc_cache_age st
      in
      orch.Orch.o_gc_evicted <- orch.Orch.o_gc_evicted + g.Support.Objstore.gc_evicted;
      if g.Support.Objstore.gc_evicted > 0 then
        Recorder.count (Some r) ~by:g.Support.Objstore.gc_evicted
          "farm.store_gc_evicted");
    (match jr with
    | None -> ()
    | Some j ->
      Orch.record_sync_event j orch ~round ~merged:(List.length items)
        ~accepted:(List.length broadcast) ~pruned:(List.length prunes);
      Orch.record_counters_event j ~round
        ~quarantined:(Option.map Support.Objstore.quarantine_length sup_store)
        [ r ]);
    (* atomic checkpoint publish at every barrier *)
    (match checkpoint_path with
    | None -> ()
    | Some path ->
      let live_sk = Array.fold_left (fun a w -> a + w.pw_skipped) 0 ws in
      let live_cr = Array.fold_left (fun a w -> a + w.pw_crashes) 0 ws in
      let live_rc = Array.fold_left (fun a w -> a + w.pw_recompiles) 0 ws in
      let ck =
        Orch.snapshot orch ~digest ~workers:nw ~round ~next
          ~skipped:(orch.Orch.o_skipped + live_sk)
          ~crashes:(orch.Orch.o_crashes + live_cr)
          ~recompiles:(orch.Orch.o_recompiles + live_rc)
          ~restarts:(orch.Orch.o_restarts + !total_restarts)
          ~weights:
            (Array.to_list ws |> List.map (fun w -> (w.pw_id, w.pw_weight)))
      in
      if Wire.write_checkpoint path ck then
        Recorder.count (Some r) "farm.checkpoints");
    jflush ()
  in
  (* ---- round scheduler -------------------------------------------- *)
  let run_round ~round ~next idxs =
    match alive () with
    | [] -> ()
    | live ->
      let n = List.length live in
      let shares = Array.make n [] in
      List.iteri (fun k idx -> shares.(k mod n) <- idx :: shares.(k mod n)) idxs;
      let corpus = Orch.corpus_entries orch in
      let pruned = Orch.pruned_list orch in
      let fn_cycles =
        if cfg.Orch.fc_promote_share > 0. then Orch.fn_profile orch else []
      in
      let jobs =
        List.mapi
          (fun k w ->
            ( w,
              {
                Wire.as_round = round;
                as_slots = List.rev shares.(k);
                as_corpus = corpus;
                as_pruned = pruned;
                as_fn_cycles = fn_cycles;
              } ))
          live
        |> List.filter (fun (_, a) -> a.Wire.as_slots <> [])
      in
      let results = collect_round ~round jobs in
      barrier ~round ~next results
  in
  let n_seeds = List.length seeds in
  let budget = max 0 cfg.Orch.fc_execs in
  let next = ref 0 in
  let round = ref 1 in
  (match resume with
  | Some ck ->
    next := ck.Orch.ck_next;
    round := ck.Orch.ck_round + 1
  | None -> ());
  (try
     if resume = None && n_seeds > 0 && alive () <> [] then
       run_round ~round:0 ~next:0 (List.init n_seeds (fun i -> i));
     while !next < budget && alive () <> [] do
       let n = min orch.Orch.o_interval (budget - !next) in
       let slots = List.init n (fun k -> n_seeds + !next + k) in
       next := !next + n;
       run_round ~round:!round ~next:!next slots;
       incr round
     done
   with All_workers_retired -> ());
  (* ---- join ------------------------------------------------------- *)
  Array.iter
    (fun w ->
      if w.pw_retired = None then begin
        (try Wire.send w.pw_in Wire.Shutdown
         with Wire.Wire_error _ ->
           (try Unix.kill w.pw_pid Sys.sigkill with Unix.Unix_error _ -> ()));
        (try ignore (Unix.waitpid [] w.pw_pid) with Unix.Unix_error _ -> ());
        (try Unix.close w.pw_in with Unix.Unix_error _ -> ());
        (try Unix.close w.pw_out.Wire.rd_fd with Unix.Unix_error _ -> ())
      end)
    ws;
  (* toggle counts: in a farm campaign the only instrumentation toggles
     are prune removals — one per pruned probe, applied identically in
     every worker (and by the domains driver's managers) *)
  let toggles pid = if Orch.pruned orch pid then 1 else 0 in
  let probe_cost = Orch.probe_costs orch ~toggles in
  let skipped =
    orch.Orch.o_skipped + Array.fold_left (fun a w -> a + w.pw_skipped) 0 ws
  in
  let crashes =
    orch.Orch.o_crashes + Array.fold_left (fun a w -> a + w.pw_crashes) 0 ws
  in
  let recompiles =
    orch.Orch.o_recompiles
    + Array.fold_left (fun a w -> a + w.pw_recompiles) 0 ws
  in
  (match jr with
  | None -> ()
  | Some j ->
    Orch.record_probe_cost_events j probe_cost;
    Orch.record_done_event j orch ~workers:nw ~cross_hits:0 ~crashes;
    jflush ());
  Orch.mk_stats orch ~workers:nw ~cross_hits:0 ~skipped ~crashes ~recompiles
    ~dead:(List.sort compare !retired_log)
    ~store:(Option.map Support.Objstore.stats sup_store)
    ~probe_cost
