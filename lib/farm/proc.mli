(** Process-isolated fuzzing farm: a supervisor and N worker processes
    exchanging {!Wire} frames over pipes.

    Workers are stateless between rounds — every [Assign] frame carries
    the full round context — so a worker killed at any point (including
    by the supervisor's preemptive heartbeat watchdog) is restarted and
    re-sent the same assignment, reproducing its results
    bit-identically. Coverage, corpus and cycles are invariant across
    worker counts, across [--farm-mode domains|procs], and across any
    kill/restart schedule. A worker that dies more than [max_restarts]
    times is retired and its outstanding work moves to the lowest-id
    live worker; each restart multiplies the worker's prune-vote weight
    by [fc_vote_decay].

    At every sync barrier the supervisor publishes an {!Orch.ckpt}
    through {!Wire.write_checkpoint}; [run ~resume] continues a
    campaign from one, reaching the same final coverage bitmap and
    journal tail as the uninterrupted run. *)

(** Body of the hidden [odinc fuzz-worker] subcommand (and of the
    test/bench re-exec shims): serve one worker's slot schedules over
    stdin/stdout until [Shutdown]. Installs the [ODIN_FAULTS] plan from
    the environment and never returns. *)
val worker_main : unit -> unit

(** Run a process farm over the base module: same contract and result
    shape as the domains driver ({!Farm.run}), plus supervision and
    checkpointing. [worker_argv] is the command line re-executed for
    each worker (default [[| Sys.executable_name; "fuzz-worker" |]]);
    [worker_env] the workers' environment (default: inherited — an
    [ODIN_FAULTS] entry installs the plan {e in the workers}).
    [checkpoint_path] publishes a checkpoint at every barrier; [resume]
    continues from a loaded checkpoint (the target digest must match).
    [worker_timeout] is the preemptive watchdog's heartbeat deadline in
    seconds (default 30); [max_restarts] the kill/restart budget per
    worker before it is retired (default 3). *)
val run :
  ?telemetry:Telemetry.Recorder.t ->
  ?cache_dir:string ->
  ?incremental_link:bool ->
  ?incremental_sched:bool ->
  ?journal:Telemetry.Journal.t ->
  ?journal_path:string ->
  ?host:string list ->
  ?checkpoint_path:string ->
  ?resume:Orch.ckpt ->
  ?worker_timeout:float ->
  ?max_restarts:int ->
  ?worker_argv:string array ->
  ?worker_env:string array ->
  entry:string ->
  seeds:string list ->
  Orch.config ->
  Ir.Modul.t ->
  Orch.stats
