(** The farm's wire protocol: length-prefixed, versioned, checksummed
    binary frames over pipes between the supervisor and its worker
    processes, plus the campaign checkpoint file (which reuses the
    frame format, so a checkpoint torn by a crash mid-write is detected
    exactly like a frame torn by a crashed peer).

    {2 Frame layout}

    {v
    offset  size  field
    0       4     magic  "ODNW"
    4       1     protocol version (1)
    5       1     message tag
    6       4     payload length, u32 LE
    10      4     checksum: first 4 bytes of the payload's MD5
    14      len   payload
    v}

    Any violation — bad magic, unknown version or tag, length running
    past the available bytes (a torn frame: the peer died mid-write),
    checksum mismatch, malformed payload — raises {!Wire_error} with a
    description; it never crashes the reader or yields a half-decoded
    message. The protocol version is bumped on any layout change, so a
    supervisor and worker from different builds refuse each other
    cleanly instead of misparsing.

    Scalars are little-endian; ints travel as 64-bit (OCaml ints are
    63-bit, so this is lossless), floats as their IEEE bits, strings
    and lists length-prefixed.

    Fault site ["wire.send"]: an injected fault raises before any byte
    is written; the torn kind writes only the first half of the frame
    and then raises, so the peer observes exactly what a worker killed
    mid-send would produce. *)

exception Wire_error of string

let magic = "ODNW"

(* v2: the Blob envelope frame (tag 9) joined the protocol, carrying
   satellite protocols — the mutation campaign — without Wire depending
   on their libraries.
   v3: tiered compilation — Init carries the promotion threshold
   (workers derive their tiering from it), Assign carries the
   barrier-merged per-function cycle profile promotions are decided
   from, and the checkpoint payload moved to ckpt v2. *)
let version = 3
let header_len = 14

let fail fmt = Printf.ksprintf (fun m -> raise (Wire_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Scalar codecs                                                       *)
(* ------------------------------------------------------------------ *)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let w_u32 b n =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let w_i64 b n =
  let n = Int64.of_int n in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))
  done

(* floats travel as their raw IEEE bits (Int64.to_int would truncate
   the top bit, so they get their own 8-byte writer) *)
let w_f64 b x =
  let n = Int64.bits_of_float x in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))
  done

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_opt b f = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    f b v

let w_list b f l =
  w_u32 b (List.length l);
  List.iter (f b) l

type cursor = { data : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.data then fail "truncated payload"

let r_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code c.data.[c.pos + i]
  done;
  c.pos <- c.pos + 4;
  !v

let r_i64raw c =
  need c 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let r_i64 c = Int64.to_int (r_i64raw c)
let r_f64 c = Int64.float_of_bits (r_i64raw c)

let r_str c =
  let n = r_u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_bool c = r_u8 c <> 0

let r_opt c f = match r_u8 c with 0 -> None | 1 -> Some (f c) | n -> fail "bad option tag %d" n

let r_list c f =
  let n = r_u32 c in
  List.init n (fun _ -> f c)

(* ------------------------------------------------------------------ *)
(* Domain codecs                                                       *)
(* ------------------------------------------------------------------ *)

let w_mode b (m : Odin.Partition.mode) =
  w_u8 b (match m with Odin.Partition.One -> 0 | Odin.Partition.Auto -> 1 | Odin.Partition.Max -> 2)

let r_mode c =
  match r_u8 c with
  | 0 -> Odin.Partition.One
  | 1 -> Odin.Partition.Auto
  | 2 -> Odin.Partition.Max
  | n -> fail "bad partition mode %d" n

let w_item b (it : Csync.item) =
  w_i64 b it.Csync.it_index;
  w_str b it.Csync.it_input;
  w_i64 b it.Csync.it_cycles;
  w_list b w_i64 it.Csync.it_fired;
  w_list b
    (fun b (s, n) ->
      w_str b s;
      w_i64 b n)
    it.Csync.it_fns;
  w_list b
    (fun b (pid, h, cy) ->
      w_i64 b pid;
      w_i64 b h;
      w_i64 b cy)
    it.Csync.it_probe_cost

let r_item c =
  let it_index = r_i64 c in
  let it_input = r_str c in
  let it_cycles = r_i64 c in
  let it_fired = r_list c r_i64 in
  let it_fns =
    r_list c (fun c ->
        let s = r_str c in
        let n = r_i64 c in
        (s, n))
  in
  let it_probe_cost =
    r_list c (fun c ->
        let pid = r_i64 c in
        let h = r_i64 c in
        let cy = r_i64 c in
        (pid, h, cy))
  in
  { Csync.it_index; it_input; it_cycles; it_fired; it_fns; it_probe_cost }

let w_centry b (ce : Orch.centry) =
  w_str b ce.Orch.ce_input;
  w_i64 b ce.Orch.ce_energy;
  w_i64 b ce.Orch.ce_cycles;
  w_i64 b ce.Orch.ce_fresh

let r_centry c =
  let ce_input = r_str c in
  let ce_energy = r_i64 c in
  let ce_cycles = r_i64 c in
  let ce_fresh = r_i64 c in
  { Orch.ce_input; ce_energy; ce_cycles; ce_fresh }

let w_ckpt b (ck : Orch.ckpt) =
  w_i64 b ck.Orch.ck_version;
  w_str b ck.ck_digest;
  w_i64 b ck.ck_seed;
  w_i64 b ck.ck_workers;
  w_i64 b ck.ck_interval_base;
  w_i64 b ck.ck_n_probes;
  w_i64 b ck.ck_round;
  w_i64 b ck.ck_next;
  w_str b ck.ck_bitmap;
  w_list b w_str ck.ck_seen;
  w_i64 b ck.ck_offered;
  w_i64 b ck.ck_accepted;
  w_i64 b ck.ck_duplicates;
  w_i64 b ck.ck_stale;
  w_list b
    (fun b (pid, w) ->
      w_i64 b pid;
      w_f64 b w)
    ck.ck_votes;
  w_list b w_i64 ck.ck_pruned;
  w_list b w_centry ck.ck_corpus;
  w_i64 b ck.ck_execs;
  w_i64 b ck.ck_cycles;
  w_i64 b ck.ck_rounds;
  w_list b
    (fun b (pid, n) ->
      w_i64 b pid;
      w_i64 b n)
    ck.ck_execs_armed;
  w_list b
    (fun b (pid, h, cy) ->
      w_i64 b pid;
      w_i64 b h;
      w_i64 b cy)
    ck.ck_probe_cost;
  w_list b
    (fun b (fn, cy) ->
      w_str b fn;
      w_i64 b cy)
    ck.ck_fn_cycles;
  w_i64 b ck.ck_interval;
  w_i64 b ck.ck_quiet;
  w_i64 b ck.ck_skipped;
  w_i64 b ck.ck_crashes;
  w_i64 b ck.ck_recompiles;
  w_i64 b ck.ck_restarts;
  w_i64 b ck.ck_gc_evicted;
  w_list b
    (fun b (id, w) ->
      w_i64 b id;
      w_f64 b w)
    ck.ck_weights

let r_ckpt c =
  let ck_version = r_i64 c in
  if ck_version <> Orch.ckpt_version then
    fail "checkpoint version %d, expected %d" ck_version Orch.ckpt_version;
  let ck_digest = r_str c in
  let ck_seed = r_i64 c in
  let ck_workers = r_i64 c in
  let ck_interval_base = r_i64 c in
  let ck_n_probes = r_i64 c in
  let ck_round = r_i64 c in
  let ck_next = r_i64 c in
  let ck_bitmap = r_str c in
  let ck_seen = r_list c r_str in
  let ck_offered = r_i64 c in
  let ck_accepted = r_i64 c in
  let ck_duplicates = r_i64 c in
  let ck_stale = r_i64 c in
  let ck_votes =
    r_list c (fun c ->
        let pid = r_i64 c in
        let w = r_f64 c in
        (pid, w))
  in
  let ck_pruned = r_list c r_i64 in
  let ck_corpus = r_list c r_centry in
  let ck_execs = r_i64 c in
  let ck_cycles = r_i64 c in
  let ck_rounds = r_i64 c in
  let ck_execs_armed =
    r_list c (fun c ->
        let pid = r_i64 c in
        let n = r_i64 c in
        (pid, n))
  in
  let ck_probe_cost =
    r_list c (fun c ->
        let pid = r_i64 c in
        let h = r_i64 c in
        let cy = r_i64 c in
        (pid, h, cy))
  in
  let ck_fn_cycles =
    r_list c (fun c ->
        let fn = r_str c in
        let cy = r_i64 c in
        (fn, cy))
  in
  let ck_interval = r_i64 c in
  let ck_quiet = r_i64 c in
  let ck_skipped = r_i64 c in
  let ck_crashes = r_i64 c in
  let ck_recompiles = r_i64 c in
  let ck_restarts = r_i64 c in
  let ck_gc_evicted = r_i64 c in
  let ck_weights =
    r_list c (fun c ->
        let id = r_i64 c in
        let w = r_f64 c in
        (id, w))
  in
  {
    Orch.ck_version;
    ck_digest;
    ck_seed;
    ck_workers;
    ck_interval_base;
    ck_n_probes;
    ck_round;
    ck_next;
    ck_bitmap;
    ck_seen;
    ck_offered;
    ck_accepted;
    ck_duplicates;
    ck_stale;
    ck_votes;
    ck_pruned;
    ck_corpus;
    ck_execs;
    ck_cycles;
    ck_rounds;
    ck_execs_armed;
    ck_probe_cost;
    ck_fn_cycles;
    ck_interval;
    ck_quiet;
    ck_skipped;
    ck_crashes;
    ck_recompiles;
    ck_restarts;
    ck_gc_evicted;
    ck_weights;
  }

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

(** The supervisor's bootstrap frame: everything a worker process needs
    to build its session — the target module travels as printed IR
    (print→parse round-trips structurally). *)
type init = {
  in_id : int;
  in_seed : int;
  in_mode : Odin.Partition.mode;
  in_entry : string;
  in_host : string list;
  in_seeds : string list;
  in_mod_name : string;
  in_mod_text : string;
  in_cache_dir : string option;
  in_incr_link : bool option;
  in_incr_sched : bool option;
  in_promote_share : float;
      (** > 0: run the worker's session tiered; the threshold it feeds
          to [Odin.Session.promote_hot] each round. 0.0: untiered. *)
}

(** One round's work order. Carries the {e full} global corpus replica
    and pruned set — workers are stateless between rounds, which is
    what makes kill-and-restart trivially deterministic: re-sending
    the same assignment reproduces the same items. *)
type assign = {
  as_round : int;
  as_slots : int list;
  as_corpus : Orch.centry list;  (** acceptance order *)
  as_pruned : int list;  (** ascending *)
  as_fn_cycles : (string * int) list;
      (** barrier-merged global cycle profile, heaviest first; a tiered
          worker re-derives the cumulative promotion set from it
          ([promote_hot] is idempotent), so a freshly restarted worker
          catches up on every promotion it missed *)
}

(** One round's results: the items for the assigned slots (slot order)
    plus the worker's substrate counters for this assignment. *)
type items = {
  im_round : int;
  im_items : Csync.item list;
  im_skipped : int;
  im_crashes : int;
  im_recompiles : int;
}

type msg =
  | Init of init
  | Ready of { rd_id : int; rd_n_probes : int }
  | Assign of assign
  | Heartbeat of { hb_round : int; hb_done : int }
  | Items of items
  | Died of string  (** worker-side graceful fault report *)
  | Shutdown
  | Checkpoint of Orch.ckpt
  | Blob of { bl_kind : string; bl_data : string }
      (** envelope for satellite protocols (the mutation campaign):
          [bl_kind] names the sub-protocol message, [bl_data] is its
          payload encoded with the {!Codec} primitives by a layer above
          Wire — framing, versioning and checksumming stay shared
          without Wire depending on that layer *)

let tag_of = function
  | Init _ -> 1
  | Ready _ -> 2
  | Assign _ -> 3
  | Heartbeat _ -> 4
  | Items _ -> 5
  | Died _ -> 6
  | Shutdown -> 7
  | Checkpoint _ -> 8
  | Blob _ -> 9

let encode_payload b = function
  | Init i ->
    w_i64 b i.in_id;
    w_i64 b i.in_seed;
    w_mode b i.in_mode;
    w_str b i.in_entry;
    w_list b w_str i.in_host;
    w_list b w_str i.in_seeds;
    w_str b i.in_mod_name;
    w_str b i.in_mod_text;
    w_opt b w_str i.in_cache_dir;
    w_opt b w_bool i.in_incr_link;
    w_opt b w_bool i.in_incr_sched;
    w_f64 b i.in_promote_share
  | Ready { rd_id; rd_n_probes } ->
    w_i64 b rd_id;
    w_i64 b rd_n_probes
  | Assign a ->
    w_i64 b a.as_round;
    w_list b w_i64 a.as_slots;
    w_list b w_centry a.as_corpus;
    w_list b w_i64 a.as_pruned;
    w_list b
      (fun b (fn, cy) ->
        w_str b fn;
        w_i64 b cy)
      a.as_fn_cycles
  | Heartbeat { hb_round; hb_done } ->
    w_i64 b hb_round;
    w_i64 b hb_done
  | Items im ->
    w_i64 b im.im_round;
    w_list b w_item im.im_items;
    w_i64 b im.im_skipped;
    w_i64 b im.im_crashes;
    w_i64 b im.im_recompiles
  | Died reason -> w_str b reason
  | Shutdown -> ()
  | Checkpoint ck -> w_ckpt b ck
  | Blob { bl_kind; bl_data } ->
    w_str b bl_kind;
    w_str b bl_data

let decode_payload tag c =
  match tag with
  | 1 ->
    let in_id = r_i64 c in
    let in_seed = r_i64 c in
    let in_mode = r_mode c in
    let in_entry = r_str c in
    let in_host = r_list c r_str in
    let in_seeds = r_list c r_str in
    let in_mod_name = r_str c in
    let in_mod_text = r_str c in
    let in_cache_dir = r_opt c r_str in
    let in_incr_link = r_opt c r_bool in
    let in_incr_sched = r_opt c r_bool in
    let in_promote_share = r_f64 c in
    Init
      {
        in_id;
        in_seed;
        in_mode;
        in_entry;
        in_host;
        in_seeds;
        in_mod_name;
        in_mod_text;
        in_cache_dir;
        in_incr_link;
        in_incr_sched;
        in_promote_share;
      }
  | 2 ->
    let rd_id = r_i64 c in
    let rd_n_probes = r_i64 c in
    Ready { rd_id; rd_n_probes }
  | 3 ->
    let as_round = r_i64 c in
    let as_slots = r_list c r_i64 in
    let as_corpus = r_list c r_centry in
    let as_pruned = r_list c r_i64 in
    let as_fn_cycles =
      r_list c (fun c ->
          let fn = r_str c in
          let cy = r_i64 c in
          (fn, cy))
    in
    Assign { as_round; as_slots; as_corpus; as_pruned; as_fn_cycles }
  | 4 ->
    let hb_round = r_i64 c in
    let hb_done = r_i64 c in
    Heartbeat { hb_round; hb_done }
  | 5 ->
    let im_round = r_i64 c in
    let im_items = r_list c r_item in
    let im_skipped = r_i64 c in
    let im_crashes = r_i64 c in
    let im_recompiles = r_i64 c in
    Items { im_round; im_items; im_skipped; im_crashes; im_recompiles }
  | 6 -> Died (r_str c)
  | 7 -> Shutdown
  | 8 -> Checkpoint (r_ckpt c)
  | 9 ->
    let bl_kind = r_str c in
    let bl_data = r_str c in
    Blob { bl_kind; bl_data }
  | n -> fail "unknown message tag %d" n

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let checksum payload =
  let d = Digest.string payload in
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v

(** Serialize [msg] into one complete frame. *)
let encode_frame msg =
  let pb = Buffer.create 256 in
  encode_payload pb msg;
  let payload = Buffer.contents pb in
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_string b magic;
  w_u8 b version;
  w_u8 b (tag_of msg);
  w_u32 b (String.length payload);
  w_u32 b (checksum payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Parse one frame from [s] at [off]. Returns [None] when the bytes so
   far are a valid prefix of a frame (read more), raises on corruption,
   and returns the message plus the next offset otherwise. *)
let decode_at s off =
  let avail = String.length s - off in
  if avail < header_len then None
  else begin
    if String.sub s off 4 <> magic then fail "bad frame magic";
    let v = Char.code s.[off + 4] in
    if v <> version then fail "wire protocol version %d, expected %d" v version;
    let tag = Char.code s.[off + 5] in
    let plen = ref 0 in
    for i = 3 downto 0 do
      plen := (!plen lsl 8) lor Char.code s.[off + 6 + i]
    done;
    let csum = ref 0 in
    for i = 3 downto 0 do
      csum := (!csum lsl 8) lor Char.code s.[off + 10 + i]
    done;
    if avail < header_len + !plen then None
    else begin
      let payload = String.sub s (off + header_len) !plen in
      if checksum payload <> !csum then fail "frame checksum mismatch";
      let c = { data = payload; pos = 0 } in
      let m = decode_payload tag c in
      if c.pos <> String.length payload then
        fail "trailing garbage in frame payload (tag %d)" tag;
      Some (m, off + header_len + !plen)
    end
  end

(** Decode a string holding exactly one frame (the checkpoint file). *)
let decode_frame s =
  match decode_at s 0 with
  | Some (m, next) when next = String.length s -> m
  | Some _ -> fail "trailing bytes after frame"
  | None -> fail "torn frame: %d bytes" (String.length s)

(* ------------------------------------------------------------------ *)
(* Pipe IO                                                             *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      fail "send: %s" (Unix.error_message e)
  done

(** Send one frame. Fault site ["wire.send"]: an injected fault raises
    before any byte is written; the torn kind writes half the frame and
    raises {!Wire_error} — the peer sees a mid-send crash. *)
let send fd msg =
  Support.Fault.hit "wire.send";
  let frame = encode_frame msg in
  if Support.Fault.torn "wire.send" then begin
    write_all fd (String.sub frame 0 (String.length frame / 2));
    fail "torn frame (injected at wire.send)"
  end
  else write_all fd frame

(** Incremental frame reader over an fd: buffers partial reads, yields
    complete frames. *)
type reader = { rd_fd : Unix.file_descr; mutable rd_pending : string }

let reader fd = { rd_fd = fd; rd_pending = "" }

(** Bytes buffered but not yet consumed (a nonempty value at EOF is a
    torn frame). *)
let pending rd = String.length rd.rd_pending

(** Pull the next complete frame out of the buffer, without reading the
    fd. Raises {!Wire_error} on corruption. *)
let next rd =
  match decode_at rd.rd_pending 0 with
  | None -> None
  | Some (m, off) ->
    rd.rd_pending <-
      String.sub rd.rd_pending off (String.length rd.rd_pending - off);
    Some m

(** One [read] into the buffer. [`Eof] means the peer closed its end;
    if bytes of an incomplete frame are pending, that is a torn frame
    and the caller should treat the peer as crashed. *)
let feed rd =
  let b = Bytes.create 65536 in
  match Unix.read rd.rd_fd b 0 65536 with
  | 0 -> `Eof
  | n ->
    rd.rd_pending <- rd.rd_pending ^ Bytes.sub_string b 0 n;
    `Read n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Read 0
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    `Read 0
  | exception Unix.Unix_error (e, _, _) -> fail "recv: %s" (Unix.error_message e)

(** Blocking receive of one frame ([Wire_error] on EOF or corruption) —
    the worker side's main loop. *)
let recv rd =
  let rec go () =
    match next rd with
    | Some m -> m
    | None -> (
      match feed rd with
      | `Eof ->
        if pending rd > 0 then fail "torn frame: EOF mid-frame (%d bytes)" (pending rd)
        else fail "EOF"
      | `Read _ -> go ())
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Checkpoint file                                                     *)
(* ------------------------------------------------------------------ *)

(** Atomically publish [ck] at [path] (tmp + rename via
    {!Support.Fsio}), first rotating any existing checkpoint to
    [path.prev] — so at every instant at least one of the two holds a
    complete checkpoint. Fault site ["farm.checkpoint"]: an injected
    fault skips the write (returns [false]); the torn kind leaves a
    truncated frame at the final path, which {!load_checkpoint}
    detects and falls back from. *)
let write_checkpoint path ck =
  match Support.Fault.hit "farm.checkpoint" with
  | () ->
    if Sys.file_exists path then
      (try Sys.rename path (path ^ ".prev") with Sys_error _ -> ());
    let data = encode_frame (Checkpoint ck) in
    if Support.Fault.torn "farm.checkpoint" then begin
      (* simulated kill mid-publish on a non-atomic filesystem *)
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data / 2));
      close_out oc;
      true
    end
    else begin
      Support.Fsio.write_atomic path data;
      true
    end
  | exception (Support.Fault.Injected _ | Support.Fault.Transient_fault _) ->
    false

(** Read and validate the checkpoint at exactly [path]. Raises
    {!Wire_error} on a torn/corrupt/mismatched file, [Sys_error] if
    unreadable. *)
let read_checkpoint path =
  match decode_frame (Support.Fsio.read_file path) with
  | Checkpoint ck -> ck
  | _ -> fail "not a checkpoint frame: %s" path

(** Load [path], falling back to [path.prev] when the primary is
    missing or torn. Returns the checkpoint and whether the fallback
    was used. *)
let load_checkpoint path =
  match read_checkpoint path with
  | ck -> Ok (ck, false)
  | exception (Wire_error _ | Sys_error _) -> (
    match read_checkpoint (path ^ ".prev") with
    | ck -> Ok (ck, true)
    | exception (Wire_error _ | Sys_error _) ->
      Error (Printf.sprintf "no valid checkpoint at %s or %s.prev" path path))

(* ------------------------------------------------------------------ *)
(* Generic frame files (satellite checkpoints)                         *)
(* ------------------------------------------------------------------ *)

(** Atomically publish any frame (in practice a {!Blob}) at [path] with
    the same [.prev] rotation and torn-write discipline as
    {!write_checkpoint}; the mutation campaign's checkpoint file.
    Shares the ["farm.checkpoint"] fault site. *)
let write_frame_file path msg =
  match Support.Fault.hit "farm.checkpoint" with
  | () ->
    if Sys.file_exists path then
      (try Sys.rename path (path ^ ".prev") with Sys_error _ -> ());
    let data = encode_frame msg in
    if Support.Fault.torn "farm.checkpoint" then begin
      let oc = open_out_bin path in
      output_string oc (String.sub data 0 (String.length data / 2));
      close_out oc;
      true
    end
    else begin
      Support.Fsio.write_atomic path data;
      true
    end
  | exception (Support.Fault.Injected _ | Support.Fault.Transient_fault _) ->
    false

(** Load the frame at [path], falling back to [path.prev] when the
    primary is missing or torn; [(msg, fallback_used)]. *)
let load_frame_file path =
  let read p = decode_frame (Support.Fsio.read_file p) in
  match read path with
  | m -> Ok (m, false)
  | exception (Wire_error _ | Sys_error _) -> (
    match read (path ^ ".prev") with
    | m -> Ok (m, true)
    | exception (Wire_error _ | Sys_error _) ->
      Error (Printf.sprintf "no valid frame at %s or %s.prev" path path))

(* ------------------------------------------------------------------ *)
(* Exported codec primitives                                           *)
(* ------------------------------------------------------------------ *)

(** The scalar codec primitives, exported so satellite protocols riding
    the {!Blob} envelope (the mutation campaign) encode their payloads
    with the same length-prefixed little-endian discipline instead of
    reinventing (or [Marshal]-ing) their own. *)
module Codec = struct
  type nonrec cursor = cursor

  let cursor data = { data; pos = 0 }
  let at_end c = c.pos = String.length c.data
  let w_u8 = w_u8
  let w_i64 = w_i64
  let w_f64 = w_f64
  let w_str = w_str
  let w_bool = w_bool
  let w_opt = w_opt
  let w_list = w_list
  let r_u8 = r_u8
  let r_i64 = r_i64
  let r_f64 = r_f64
  let r_str = r_str
  let r_bool = r_bool
  let r_opt = r_opt
  let r_list = r_list
  let fail = fail
end
