(** The farm's wire protocol: length-prefixed, versioned, checksummed
    binary frames over pipes between the supervisor and its worker
    processes, plus the campaign checkpoint file (same frame format, so
    a checkpoint torn by a crash mid-write is detected exactly like a
    frame torn by a crashed peer).

    Frame layout: ["ODNW"] magic (4) · protocol version (1) · message
    tag (1) · payload length u32 LE (4) · checksum = first 4 bytes of
    the payload's MD5 (4) · payload. Any violation — bad magic,
    unknown version or tag, truncation, checksum mismatch, malformed
    payload — raises {!Wire_error}; it never yields a half-decoded
    message. The version is bumped on any layout change so mismatched
    builds refuse each other cleanly instead of misparsing. *)

exception Wire_error of string

val magic : string
val version : int

(** Bytes before the payload: magic + version + tag + length + checksum. *)
val header_len : int

(** The supervisor's bootstrap frame: everything a worker process needs
    to build its session — the target module travels as printed IR. *)
type init = {
  in_id : int;
  in_seed : int;
  in_mode : Odin.Partition.mode;
  in_entry : string;
  in_host : string list;
  in_seeds : string list;
  in_mod_name : string;
  in_mod_text : string;
  in_cache_dir : string option;
  in_incr_link : bool option;
  in_incr_sched : bool option;
  in_promote_share : float;
      (** > 0: run the worker's session tiered; the threshold it feeds
          to [Odin.Session.promote_hot] each round. 0.0: untiered. *)
}

(** One round's work order. Carries the {e full} global corpus replica
    and pruned set — workers are stateless between rounds, which is
    what makes kill-and-restart trivially deterministic: re-sending
    the same assignment reproduces the same items. *)
type assign = {
  as_round : int;
  as_slots : int list;
  as_corpus : Orch.centry list;  (** acceptance order *)
  as_pruned : int list;  (** ascending *)
  as_fn_cycles : (string * int) list;
      (** barrier-merged global cycle profile, heaviest first; a tiered
          worker re-derives the cumulative promotion set from it
          ([promote_hot] is idempotent), so a freshly restarted worker
          catches up on every promotion it missed *)
}

(** One round's results: items for the assigned slots (slot order) plus
    the worker's substrate counters for this assignment. *)
type items = {
  im_round : int;
  im_items : Csync.item list;
  im_skipped : int;
  im_crashes : int;
  im_recompiles : int;
}

type msg =
  | Init of init
  | Ready of { rd_id : int; rd_n_probes : int }
  | Assign of assign
  | Heartbeat of { hb_round : int; hb_done : int }
  | Items of items
  | Died of string  (** worker-side graceful fault report *)
  | Shutdown
  | Checkpoint of Orch.ckpt
  | Blob of { bl_kind : string; bl_data : string }
      (** envelope for satellite protocols (the mutation campaign):
          [bl_kind] names the sub-protocol message, [bl_data] its payload
          encoded with {!Codec} by a layer above Wire — framing,
          versioning and checksumming stay shared without Wire depending
          on that layer *)

(** Serialize [msg] into one complete frame. *)
val encode_frame : msg -> string

(** Parse one frame starting at an offset. [None] when the bytes so far
    are a valid prefix of a frame (read more); raises {!Wire_error} on
    corruption; otherwise the message plus the next offset. *)
val decode_at : string -> int -> (msg * int) option

(** Decode a string holding exactly one frame (the checkpoint file). *)
val decode_frame : string -> msg

(** Send one frame. Fault site ["wire.send"]: an injected fault raises
    before any byte is written; the torn kind writes half the frame and
    raises {!Wire_error} — the peer sees a mid-send crash. *)
val send : Unix.file_descr -> msg -> unit

(** Incremental frame reader over an fd: buffers partial reads, yields
    complete frames. *)
type reader = { rd_fd : Unix.file_descr; mutable rd_pending : string }

val reader : Unix.file_descr -> reader

(** Bytes buffered but not yet consumed (a nonzero value at EOF is a
    torn frame). *)
val pending : reader -> int

(** Pull the next complete frame out of the buffer, without reading the
    fd. Raises {!Wire_error} on corruption. *)
val next : reader -> msg option

(** One [read] into the buffer. [`Eof] means the peer closed its end;
    if bytes of an incomplete frame are pending, that is a torn frame
    and the caller should treat the peer as crashed. *)
val feed : reader -> [ `Eof | `Read of int ]

(** Blocking receive of one frame ([Wire_error] on EOF or corruption) —
    the worker side's main loop. *)
val recv : reader -> msg

(** Atomically publish a checkpoint (tmp + rename), first rotating any
    existing file to [path.prev] — at every instant at least one of the
    two holds a complete checkpoint. Returns [false] when the
    ["farm.checkpoint"] fault site suppressed the write. *)
val write_checkpoint : string -> Orch.ckpt -> bool

(** Read and validate the checkpoint at exactly [path]. Raises
    {!Wire_error} on a torn/corrupt/mismatched file, [Sys_error] if
    unreadable. *)
val read_checkpoint : string -> Orch.ckpt

(** Load [path], falling back to [path.prev] when the primary is
    missing or torn. Returns the checkpoint and whether the fallback
    was used. *)
val load_checkpoint : string -> (Orch.ckpt * bool, string) result

(** Atomically publish any frame (in practice a {!Blob}) at [path] with
    the same [.prev] rotation and torn-write discipline as
    {!write_checkpoint} — the mutation campaign's checkpoint file.
    Shares the ["farm.checkpoint"] fault site; [false] when a fault
    suppressed the write. *)
val write_frame_file : string -> msg -> bool

(** Load the frame at [path], falling back to [path.prev] when the
    primary is missing or torn; [(msg, fallback_used)]. *)
val load_frame_file : string -> (msg * bool, string) result

(** The scalar codec primitives, exported so satellite protocols riding
    the {!Blob} envelope encode their payloads with the same
    length-prefixed little-endian discipline as the core frames. *)
module Codec : sig
  type cursor

  val cursor : string -> cursor

  (** All payload bytes consumed? Sub-protocols should check this after
      decoding, mirroring the frame decoder's trailing-garbage check. *)
  val at_end : cursor -> bool

  val w_u8 : Buffer.t -> int -> unit
  val w_i64 : Buffer.t -> int -> unit
  val w_f64 : Buffer.t -> float -> unit
  val w_str : Buffer.t -> string -> unit
  val w_bool : Buffer.t -> bool -> unit
  val w_opt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
  val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
  val r_u8 : cursor -> int
  val r_i64 : cursor -> int
  val r_f64 : cursor -> float
  val r_str : cursor -> string
  val r_bool : cursor -> bool
  val r_opt : cursor -> (cursor -> 'a) -> 'a option
  val r_list : cursor -> (cursor -> 'a) -> 'a list

  (** Raise {!Wire_error} with a formatted message (malformed payload). *)
  val fail : ('a, unit, string, 'b) format4 -> 'a
end
