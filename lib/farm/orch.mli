(** Shared orchestration core for the farm's two drivers (domains and
    processes): everything that decides campaign {e results} — slot
    execution, barrier merges, weighted prune votes, corpus broadcast,
    adaptive sync intervals, checkpoints — so bit-identity across
    [--farm-mode domains|procs] is structural rather than tested-for. *)

type config = {
  fc_workers : int;
  fc_execs : int;  (** mutated-execution budget, farm-wide (seeds excluded) *)
  fc_sync_interval : int;  (** executions per sync round, farm-wide *)
  fc_seed : int;
  fc_prune_quorum : int;
      (** fired-execution votes required to prune a probe globally;
          <= 0 disables pruning. 1 = Untracer policy, globally. *)
  fc_cache_limit : int option;  (** store GC size bound (bytes), per barrier *)
  fc_cache_age : float option;  (** store GC age bound (seconds), per barrier *)
  fc_mode : Odin.Partition.mode;
  fc_vote_decay : float;
      (** multiplier applied to a worker's vote weight each time its
          process is killed and restarted mid-round; 1.0 (default)
          keeps the historical exact-integer quorums *)
  fc_adaptive_sync : bool;
      (** scale the sync interval up on quiet barriers, reset on new
          coverage (off by default: a fixed interval is what the
          worker-count-invariance tests pin down) *)
  fc_promote_share : float;
      (** tiered compilation: when > 0, worker sessions compile fresh
          fragments through the tier-0 baseline backend and, at each
          barrier, fragments whose share of the {e barrier-merged}
          per-function cycles reaches this threshold are promoted to
          the optimizing tier — a pure function of merged state, so
          promotion decisions are bit-identical across worker counts
          and [--farm-mode domains|procs]. 0.0 (default) keeps every
          worker untiered, bit-identical to the pre-tier farm. *)
}

val default_config : config

(** Cumulative cost attribution for one probe site across the whole
    campaign. *)
type probe_cost = {
  pc_pid : int;
  pc_toggles : int;  (** enable/disable flips + removal ({!Instr.Manager}) *)
  pc_execs_armed : int;  (** merged executions while globally armed *)
  pc_hits : int;  (** counter increments executed *)
  pc_cycles : int;  (** VM cycles spent in the increment sequence *)
}

type stats = {
  fs_workers : int;
  fs_execs : int;  (** executions merged at barriers (seeds included) *)
  fs_total_cycles : int;
  fs_sync_rounds : int;
  fs_offered : int;  (** inputs offered at barriers *)
  fs_exchanged : int;  (** accepted and broadcast to every shard *)
  fs_duplicates : int;
  fs_stale : int;
  fs_coverage : int list;  (** globally covered probe ids, ascending *)
  fs_total_probes : int;
  fs_pruned : int list;  (** globally pruned probe ids, ascending *)
  fs_corpus : string list;  (** global corpus inputs, acceptance order *)
  fs_cross_hits : int;  (** object-cache hits on another worker's entry *)
  fs_recompiles : int;  (** barrier refreshes across all workers *)
  fs_skipped : int;
  fs_crashes : int;
  fs_dead : (int * string) list;  (** dead workers (id, reason), id order *)
  fs_gc_evicted : int;  (** store entries evicted at barriers *)
  fs_store : Support.Objstore.stats option;
  fs_probe_cost : probe_cost list;  (** every probe id, ascending *)
}

val dedup_rate : stats -> float

(** One global-corpus entry, as broadcast to every shard. *)
type centry = {
  ce_input : string;
  ce_energy : int;
  ce_cycles : int;
  ce_fresh : int;  (** probes freshly covered when accepted *)
}

(** Quiet barriers (no accepted inputs) before the adaptive interval
    doubles, and the cap on the scale factor. *)
val adaptive_quiet_rounds : int

val adaptive_max_scale : int

type t = {
  o_seed : int;
  o_quorum : int;
  o_adaptive : bool;
  o_interval_base : int;
  o_n_probes : int;
  o_sync : Csync.t;
  o_votes : Instr.Votes.t;
  o_pruned : (int, unit) Hashtbl.t;
  o_hits_cycles : (int, int ref * int ref) Hashtbl.t;
  o_execs_armed : (int, int) Hashtbl.t;
  o_fn_cycles : (string, int ref) Hashtbl.t;
      (** barrier-merged per-function cycle attribution: the global
          profile tier promotions are decided from *)
  mutable o_corpus : centry list;  (** accepted entries, newest first *)
  mutable o_execs : int;
  mutable o_cycles : int;
  mutable o_rounds : int;  (** barriers merged (this run + checkpoint) *)
  mutable o_interval : int;  (** current sync interval (adaptive) *)
  mutable o_quiet : int;  (** consecutive accept-free barriers *)
  mutable o_gc_evicted : int;
  mutable o_skipped : int;  (** cumulative bases restored from a checkpoint; *)
  mutable o_crashes : int;  (** drivers add their live counts on top *)
  mutable o_recompiles : int;
  mutable o_restarts : int;
}

val create : n_probes:int -> config -> t
val pruned : t -> int -> bool
val pruned_list : t -> int list

(** The barrier-merged global per-function cycle profile, heaviest
    first (ties by name) — the deterministic input every worker feeds
    to [Odin.Session.promote_hot], so promotion decisions cannot
    depend on worker count or driver substrate. *)
val fn_profile : t -> (string * int) list

(** Accepted corpus entries, acceptance order. *)
val corpus_entries : t -> centry list

(** Rebuild a shard as an exact replica of the global corpus. *)
val replay_corpus : Fuzzer.Corpus.t -> centry list -> unit

(** Run one execution slot against a session's current executable.
    Deterministic in the slot index alone (given the round-start shard
    state): which worker — domain or process — runs it is irrelevant
    to the result. Slots below the seed count replay the seeds. *)
val exec_slot :
  seed:int ->
  entry:string ->
  host:string list ->
  seeds:string list ->
  default_input:string ->
  session:Odin.Session.t ->
  total_probes:int ->
  corpus:Fuzzer.Corpus.t ->
  int ->
  Csync.item

(** Merge one barrier's worth of items (sorted by slot index, dead
    lanes excluded). [weight] maps an item to the producing worker's
    vote weight (default 1.0). Returns the accepted entries (broadcast
    order) and the probes newly saturated to the prune quorum; advances
    the adaptive interval when enabled. *)
val merge_round :
  ?weight:(Csync.item -> float) -> t -> Csync.item list -> centry list * int list

(** Per-probe cost roll-up over every probe id, ascending; [toggles]
    supplies the instrumentation-toggle count per probe. *)
val probe_costs : t -> toggles:(int -> int) -> probe_cost list

(** Bumped whenever the checkpoint payload changes shape; {!Wire}
    rejects mismatches cleanly. *)
val ckpt_version : int

(** A complete, self-contained snapshot of a campaign at a sync
    barrier. [ck_next] is the mutation-budget cursor (slot RNGs are
    pure functions of [(seed, slot)], so no generator state is
    stored); [ck_round] the last completed round. *)
type ckpt = {
  ck_version : int;
  ck_digest : string;  (** target module digest — resume refuses a mismatch *)
  ck_seed : int;
  ck_workers : int;
  ck_interval_base : int;
  ck_n_probes : int;
  ck_round : int;
  ck_next : int;
  ck_bitmap : string;
  ck_seen : string list;
  ck_offered : int;
  ck_accepted : int;
  ck_duplicates : int;
  ck_stale : int;
  ck_votes : (int * float) list;
  ck_pruned : int list;
  ck_corpus : centry list;  (** acceptance order *)
  ck_execs : int;
  ck_cycles : int;
  ck_rounds : int;
  ck_execs_armed : (int * int) list;
  ck_probe_cost : (int * int * int) list;  (** (pid, hits, cycles) *)
  ck_fn_cycles : (string * int) list;  (** merged profile, heaviest first *)
  ck_interval : int;
  ck_quiet : int;
  ck_skipped : int;
  ck_crashes : int;
  ck_recompiles : int;
  ck_restarts : int;
  ck_gc_evicted : int;
  ck_weights : (int * float) list;  (** per-worker vote weights *)
}

(** Snapshot the orchestrator with campaign-cumulative driver counts. *)
val snapshot :
  t ->
  digest:string ->
  workers:int ->
  round:int ->
  next:int ->
  skipped:int ->
  crashes:int ->
  recompiles:int ->
  restarts:int ->
  weights:(int * float) list ->
  ckpt

(** Rebuild an orchestrator from a checkpoint; [cfg] supplies the knobs
    a checkpoint does not pin (quorum, adaptivity, GC bounds). *)
val restore : config -> ckpt -> t

(** Digest pinning a module's identity for checkpoints and the wire
    Init frame: the printed IR's MD5. *)
val module_digest : Ir.Modul.t -> string

val record_sync_event :
  Telemetry.Journal.t -> t -> round:int -> merged:int -> accepted:int -> pruned:int -> unit

(** One campaign-counter snapshot: farm./session./link. counters
    aggregated across the recorders, plus a [store.quarantined] row
    when a quarantine count is supplied. *)
val record_counters_event :
  Telemetry.Journal.t ->
  round:int ->
  quarantined:int option ->
  Telemetry.Recorder.t list ->
  unit

val record_probe_cost_events : Telemetry.Journal.t -> probe_cost list -> unit

val record_done_event :
  Telemetry.Journal.t -> t -> workers:int -> cross_hits:int -> crashes:int -> unit

(** Assemble the public stats record from the orchestrator's merge
    state plus the driver's substrate-specific counts. *)
val mk_stats :
  t ->
  workers:int ->
  cross_hits:int ->
  skipped:int ->
  crashes:int ->
  recompiles:int ->
  dead:(int * string) list ->
  store:Support.Objstore.stats option ->
  probe_cost:probe_cost list ->
  stats
