(** Corpus-sync protocol and global coverage bitmap.

    At every farm barrier the workers' execution results are merged
    here, in global execution order (AFL++'s [-M/-S] sync, compressed
    into one process). The exchange deduplicates: an input already seen
    — byte-identical to one offered in any earlier round or earlier in
    this batch — is dropped, and a novel input is {e accepted} (and
    broadcast to every worker's corpus shard) only when it fires at
    least one probe the global bitmap has not recorded yet. Everything
    else is {e stale}: executed coverage, no news.

    The bitmap is the farm's single source of truth for "covered": one
    bit per probe id, merged from every worker regardless of which
    worker's session still carries the probe. Purely sequential — the
    orchestrator calls {!merge} from the barrier, never from pool
    domains — so the counters need no locking and the outcome is
    deterministic for a fixed item order. *)

type item = {
  it_index : int;  (** global execution slot; merges happen in slot order *)
  it_input : string;
  it_cycles : int;  (** VM cycles of the execution *)
  it_fired : int list;  (** probe ids whose counter fired, ascending *)
  it_fns : (string * int) list;  (** per-function cycle attribution *)
  it_probe_cost : (int * int * int) list;
      (** per-probe (pid, hits, cycles) VM attribution, ascending by pid *)
}

type t = {
  bitmap : Bytes.t;  (** global coverage, 1 bit per probe id *)
  n_probes : int;
  seen : (string, unit) Hashtbl.t;  (** digests of every input ever offered *)
  mutable offered : int;
  mutable accepted : int;
  mutable duplicates : int;
  mutable stale : int;
}

let create ~n_probes =
  {
    bitmap = Bytes.make ((max 0 n_probes + 7) / 8) '\x00';
    n_probes;
    seen = Hashtbl.create 256;
    offered = 0;
    accepted = 0;
    duplicates = 0;
    stale = 0;
  }

let covered t pid =
  pid >= 0 && pid < t.n_probes
  && Char.code (Bytes.get t.bitmap (pid / 8)) land (1 lsl (pid mod 8)) <> 0

let set_covered t pid =
  if pid >= 0 && pid < t.n_probes then
    Bytes.set t.bitmap (pid / 8)
      (Char.chr (Char.code (Bytes.get t.bitmap (pid / 8)) lor (1 lsl (pid mod 8))))

let covered_count t =
  let n = ref 0 in
  for pid = 0 to t.n_probes - 1 do
    if covered t pid then incr n
  done;
  !n

(** Covered probe ids, ascending. *)
let covered_list t =
  let acc = ref [] in
  for pid = t.n_probes - 1 downto 0 do
    if covered t pid then acc := pid :: !acc
  done;
  !acc

(** Merge one barrier's worth of items (callers pass them sorted by
    [it_index]). Returns the accepted items paired with the number of
    probes each one freshly covered, in slot order. Every non-duplicate
    item's coverage lands in the bitmap whether or not it is accepted. *)
let merge t items =
  List.filter_map
    (fun it ->
      t.offered <- t.offered + 1;
      let dig = Digest.string it.it_input in
      if Hashtbl.mem t.seen dig then begin
        t.duplicates <- t.duplicates + 1;
        None
      end
      else begin
        Hashtbl.replace t.seen dig ();
        let fresh = List.filter (fun pid -> not (covered t pid)) it.it_fired in
        List.iter (set_covered t) it.it_fired;
        match fresh with
        | [] ->
          t.stale <- t.stale + 1;
          None
        | _ ->
          t.accepted <- t.accepted + 1;
          Some (it, List.length fresh)
      end)
    items

(** duplicates / offered, in percent (0 when nothing offered). *)
let dedup_rate t = if t.offered = 0 then 0. else 100. *. float_of_int t.duplicates /. float_of_int t.offered

(** Every input digest ever offered, sorted — checkpoint export. *)
let seen_list t = Hashtbl.fold (fun d () acc -> d :: acc) t.seen [] |> List.sort compare

(** Raw bitmap bytes — checkpoint export. *)
let bitmap_bytes t = Bytes.to_string t.bitmap

(** Rebuild barrier state from a checkpoint: [bitmap] must be the
    {!bitmap_bytes} of a [t] created with the same [n_probes]. *)
let restore ~n_probes ~bitmap ~seen ~offered ~accepted ~duplicates ~stale =
  let t = create ~n_probes in
  if String.length bitmap <> Bytes.length t.bitmap then
    invalid_arg "Csync.restore: bitmap length mismatch";
  Bytes.blit_string bitmap 0 t.bitmap 0 (String.length bitmap);
  List.iter (fun d -> Hashtbl.replace t.seen d ()) seen;
  t.offered <- offered;
  t.accepted <- accepted;
  t.duplicates <- duplicates;
  t.stale <- stale;
  t
