(** Shared orchestration core for the farm's two drivers.

    The fuzzing farm has one logical algorithm — deterministic
    execution slots, barrier merges through {!Csync}, globally-voted
    probe pruning, corpus broadcast — and two execution substrates:
    OCaml domains in one process ({!Farm.run}) and supervised worker
    processes over the wire protocol ({!Proc.run}). Everything that
    decides {e results} lives here, so the two drivers cannot drift:
    bit-identical coverage/corpus/cycles across [--farm-mode
    domains|procs] is a structural property, not a testing accident.

    This module also owns the campaign checkpoint: a {!ckpt} value is a
    complete snapshot of the merge state (coverage bitmap, seen-input
    digests, weighted votes, pruned set, corpus with energies, RNG
    cursor = the next slot index, adaptive-interval state), and
    {!restore} rebuilds an equivalent orchestrator so a resumed
    campaign replays to the same final state as an uninterrupted one.
    Slot RNGs are derived statelessly from [(seed, slot index)], so the
    only "RNG cursor" a checkpoint needs is the slot counter itself. *)

module Json = Telemetry.Json

type config = {
  fc_workers : int;
  fc_execs : int;  (** mutated-execution budget, farm-wide (seeds excluded) *)
  fc_sync_interval : int;  (** executions per sync round, farm-wide *)
  fc_seed : int;
  fc_prune_quorum : int;
      (** fired-execution votes required to prune a probe globally;
          <= 0 disables pruning. 1 = Untracer policy, globally. *)
  fc_cache_limit : int option;  (** store GC size bound (bytes), per barrier *)
  fc_cache_age : float option;  (** store GC age bound (seconds), per barrier *)
  fc_mode : Odin.Partition.mode;
  fc_vote_decay : float;
      (** multiplier applied to a worker's vote weight each time its
          process is killed and restarted mid-round; 1.0 (default)
          keeps the historical exact-integer quorums *)
  fc_adaptive_sync : bool;
      (** scale the sync interval up on quiet barriers, reset on new
          coverage (off by default: a fixed interval is what the
          worker-count-invariance tests pin down) *)
  fc_promote_share : float;
      (** tiered compilation: when > 0, worker sessions compile fresh
          fragments through the tier-0 baseline backend and, at each
          barrier, fragments whose share of the {e barrier-merged}
          per-function cycles reaches this threshold are promoted to
          the optimizing tier — a pure function of merged state, so
          promotion decisions are bit-identical across worker counts
          and [--farm-mode domains|procs]. 0.0 (default) keeps every
          worker untiered, bit-identical to the pre-tier farm. *)
}

let default_config =
  {
    fc_workers = 1;
    fc_execs = 400;
    fc_sync_interval = 100;
    fc_seed = 42;
    fc_prune_quorum = 1;
    fc_cache_limit = None;
    fc_cache_age = None;
    fc_mode = Odin.Partition.Auto;
    fc_vote_decay = 1.0;
    fc_adaptive_sync = false;
    fc_promote_share = 0.0;
  }

(** Cumulative cost attribution for one probe site across the whole
    campaign. [pc_execs_armed] counts merged executions that ran while
    the probe was still globally armed (probe state only changes at
    barriers, so the armed set is round-constant and the count is
    worker-count invariant); [pc_hits]/[pc_cycles] come from the VM's
    per-site increment attribution, merged in slot order. *)
type probe_cost = {
  pc_pid : int;
  pc_toggles : int;  (** enable/disable flips + removal ({!Instr.Manager}) *)
  pc_execs_armed : int;
  pc_hits : int;  (** counter increments executed *)
  pc_cycles : int;  (** VM cycles spent in the increment sequence *)
}

type stats = {
  fs_workers : int;
  fs_execs : int;  (** executions merged at barriers (seeds included) *)
  fs_total_cycles : int;
  fs_sync_rounds : int;
  fs_offered : int;  (** inputs offered at barriers *)
  fs_exchanged : int;  (** accepted and broadcast to every shard *)
  fs_duplicates : int;
  fs_stale : int;
  fs_coverage : int list;  (** globally covered probe ids, ascending *)
  fs_total_probes : int;
  fs_pruned : int list;  (** globally pruned probe ids, ascending *)
  fs_corpus : string list;  (** global corpus inputs, acceptance order *)
  fs_cross_hits : int;  (** object-cache hits on another worker's entry *)
  fs_recompiles : int;  (** barrier refreshes across all workers *)
  fs_skipped : int;
  fs_crashes : int;
  fs_dead : (int * string) list;  (** dead workers (id, reason), id order *)
  fs_gc_evicted : int;  (** store entries evicted at barriers *)
  fs_store : Support.Objstore.stats option;
  fs_probe_cost : probe_cost list;  (** every probe id, ascending *)
}

let dedup_rate st =
  if st.fs_offered = 0 then 0.
  else 100. *. float_of_int st.fs_duplicates /. float_of_int st.fs_offered

(** One global-corpus entry, as broadcast to every shard: the input
    plus the (deterministic) energy/cost metadata a shard needs to
    rebuild an identical replica from scratch. *)
type centry = {
  ce_input : string;
  ce_energy : int;
  ce_cycles : int;
  ce_fresh : int;  (** probes freshly covered when accepted *)
}

(* ------------------------------------------------------------------ *)
(* Orchestrator state                                                  *)
(* ------------------------------------------------------------------ *)

(** Quiet barriers (no accepted inputs) before the adaptive interval
    doubles, and the cap on the scale factor. *)
let adaptive_quiet_rounds = 3

let adaptive_max_scale = 8

type t = {
  o_seed : int;
  o_quorum : int;
  o_adaptive : bool;
  o_interval_base : int;
  o_n_probes : int;
  o_sync : Csync.t;
  o_votes : Instr.Votes.t;
  o_pruned : (int, unit) Hashtbl.t;
  o_hits_cycles : (int, int ref * int ref) Hashtbl.t;
  o_execs_armed : (int, int) Hashtbl.t;
  o_fn_cycles : (string, int ref) Hashtbl.t;
      (** barrier-merged per-function cycle attribution: the global
          profile tier promotions are decided from *)
  mutable o_corpus : centry list;  (** accepted entries, newest first *)
  mutable o_execs : int;
  mutable o_cycles : int;
  mutable o_rounds : int;  (** barriers merged (this run + checkpoint) *)
  mutable o_interval : int;  (** current sync interval (adaptive) *)
  mutable o_quiet : int;  (** consecutive accept-free barriers *)
  mutable o_gc_evicted : int;
  (* cumulative bases restored from a checkpoint; drivers add their
     live counts on top when assembling stats *)
  mutable o_skipped : int;
  mutable o_crashes : int;
  mutable o_recompiles : int;
  mutable o_restarts : int;
}

let create ~n_probes (cfg : config) =
  {
    o_seed = cfg.fc_seed;
    o_quorum = cfg.fc_prune_quorum;
    o_adaptive = cfg.fc_adaptive_sync;
    o_interval_base = max 1 cfg.fc_sync_interval;
    o_n_probes = n_probes;
    o_sync = Csync.create ~n_probes;
    o_votes = Instr.Votes.create ();
    o_pruned = Hashtbl.create 97;
    o_hits_cycles = Hashtbl.create 97;
    o_execs_armed = Hashtbl.create 97;
    o_fn_cycles = Hashtbl.create 97;
    o_corpus = [];
    o_execs = 0;
    o_cycles = 0;
    o_rounds = 0;
    o_interval = max 1 cfg.fc_sync_interval;
    o_quiet = 0;
    o_gc_evicted = 0;
    o_skipped = 0;
    o_crashes = 0;
    o_recompiles = 0;
    o_restarts = 0;
  }

let pruned t pid = Hashtbl.mem t.o_pruned pid

(** The barrier-merged global per-function cycle profile, heaviest
    first (ties by name) — the same shape as {!Vm.profile_top}, and the
    deterministic input every worker feeds to
    [Odin.Session.promote_hot] so promotion decisions cannot depend on
    worker count or driver substrate. *)
let fn_profile t =
  Hashtbl.fold (fun fn c acc -> (fn, !c) :: acc) t.o_fn_cycles []
  |> List.sort (fun (n1, c1) (n2, c2) ->
         match compare c2 c1 with 0 -> compare n1 n2 | c -> c)

let pruned_list t =
  Hashtbl.fold (fun pid () acc -> pid :: acc) t.o_pruned [] |> List.sort compare

(** Accepted corpus entries, acceptance order. *)
let corpus_entries t = List.rev t.o_corpus

(** Rebuild a shard as an exact replica of the global corpus: entries
    in acceptance order, original energies — byte-for-byte the shard a
    worker that lived through every broadcast would hold. *)
let replay_corpus corpus entries =
  List.iter
    (fun ce ->
      Fuzzer.Corpus.add corpus ~energy:ce.ce_energy ~data:ce.ce_input
        ~exec_cycles:ce.ce_cycles ~new_blocks:ce.ce_fresh ())
    entries

(* ------------------------------------------------------------------ *)
(* One execution slot                                                  *)
(* ------------------------------------------------------------------ *)

(** Run execution slot [idx] against [session]'s current executable and
    the shard [corpus]. Deterministic in the slot index alone (given
    the round-start shard state, which is a global replica): which
    worker — domain or process — runs it is irrelevant to the result.
    Slots below the seed count replay the seed inputs themselves. *)
let exec_slot ~seed ~entry ~host ~seeds ~default_input ~session ~total_probes
    ~corpus idx =
  let n_seeds = List.length seeds in
  let rng = Support.Rng.create ((seed * 1_000_003) + idx) in
  let input =
    if idx < n_seeds then List.nth seeds idx
    else
      let base_in =
        match Fuzzer.Corpus.pick corpus rng with
        | Some s -> s.Fuzzer.Corpus.data
        | None -> default_input
      in
      Fuzzer.Mutate.havoc rng ~pool:(Fuzzer.Corpus.inputs corpus) base_in
  in
  let vm = Vm.create (Odin.Session.executable session) in
  ignore (Vm.enable_profile vm);
  List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) host;
  let addr = Vm.write_buffer vm input in
  ignore (Vm.call vm entry [ addr; Int64.of_int (String.length input) ]);
  let fired =
    List.filter_map
      (fun (p : Instr.Probe.t) ->
        match p.Instr.Probe.payload with
        | Instr.Probe.Cov _ when Odin.Cov.read_counter vm p.Instr.Probe.pid > 0
          ->
          Some p.Instr.Probe.pid
        | _ -> None)
      (Instr.Manager.to_list session.Odin.Session.manager)
    |> List.sort compare
  in
  let prof = match Vm.profile vm with Some p -> Vm.profile_top p | None -> [] in
  {
    Csync.it_index = idx;
    it_input = input;
    it_cycles = vm.Vm.cycles;
    it_fired = fired;
    it_fns = prof;
    it_probe_cost = Odin.Cov.probe_costs ~total:total_probes vm;
  }

(* ------------------------------------------------------------------ *)
(* The barrier merge                                                   *)
(* ------------------------------------------------------------------ *)

(** Merge one barrier's worth of [items] (callers pass them sorted by
    slot index, dead lanes already excluded). [weight] maps an item to
    the vote weight of the worker that produced it (default 1.0; the
    process supervisor discounts items from killed-and-restarted
    workers). Returns the accepted entries (broadcast order, energies
    computed against the pre-round farm-wide average exec cost) and
    the probes newly saturated to the prune quorum. Also advances the
    adaptive sync interval when enabled: [adaptive_quiet_rounds]
    consecutive accept-free barriers double it (capped at
    [adaptive_max_scale]×base), any accepted input resets it. *)
let merge_round ?(weight = fun (_ : Csync.item) -> 1.0) t items =
  t.o_rounds <- t.o_rounds + 1;
  (* energy is computed against the farm-wide average exec cost from
     all previous rounds — worker-count invariant by construction *)
  let avg_cycles = if t.o_execs = 0 then 0 else t.o_cycles / t.o_execs in
  let accepted = Csync.merge t.o_sync items in
  (* per-probe attribution, merged in slot order. All merged executions
     of a round ran against the same armed set (probe state only
     changes at barriers), so every probe not yet globally pruned at
     round start is charged the round's merged-execution count. *)
  let n_items = List.length items in
  if n_items > 0 then
    for pid = 0 to t.o_n_probes - 1 do
      if not (Hashtbl.mem t.o_pruned pid) then
        Hashtbl.replace t.o_execs_armed pid
          (n_items + Option.value ~default:0 (Hashtbl.find_opt t.o_execs_armed pid))
    done;
  List.iter
    (fun it ->
      List.iter
        (fun (pid, h, c) ->
          let hits, cyc =
            match Hashtbl.find_opt t.o_hits_cycles pid with
            | Some p -> p
            | None ->
              let p = (ref 0, ref 0) in
              Hashtbl.replace t.o_hits_cycles pid p;
              p
          in
          hits := !hits + h;
          cyc := !cyc + c)
        it.Csync.it_probe_cost)
    items;
  List.iter
    (fun it ->
      t.o_execs <- t.o_execs + 1;
      t.o_cycles <- t.o_cycles + it.Csync.it_cycles;
      (* merge the execution's per-function cycles into the global
         profile promotions are decided from *)
      List.iter
        (fun (fn, cy) ->
          match Hashtbl.find_opt t.o_fn_cycles fn with
          | Some c -> c := !c + cy
          | None -> Hashtbl.replace t.o_fn_cycles fn (ref cy))
        it.Csync.it_fns;
      (* one (weighted) vote per (probe, execution) toward saturation *)
      let w = weight it in
      List.iter
        (fun pid -> Instr.Votes.record ~weight:w t.o_votes ~pid)
        it.Csync.it_fired)
    items;
  let broadcast =
    List.map
      (fun (it, fresh) ->
        let energy =
          Fuzzer.Campaign.seed_energy ~avg_cycles ~cycles:it.Csync.it_cycles
            ~fn_cycles:it.Csync.it_fns
        in
        let ce =
          {
            ce_input = it.Csync.it_input;
            ce_energy = energy;
            ce_cycles = it.Csync.it_cycles;
            ce_fresh = fresh;
          }
        in
        t.o_corpus <- ce :: t.o_corpus;
        ce)
      accepted
  in
  (* global prune decision; the drivers apply it identically to every
     surviving lane *)
  let prunes =
    Instr.Votes.saturated t.o_votes ~quorum:t.o_quorum
      ~already:(Hashtbl.mem t.o_pruned)
  in
  List.iter (fun pid -> Hashtbl.replace t.o_pruned pid ()) prunes;
  if t.o_adaptive then
    if broadcast <> [] then begin
      t.o_quiet <- 0;
      t.o_interval <- t.o_interval_base
    end
    else begin
      t.o_quiet <- t.o_quiet + 1;
      if t.o_quiet >= adaptive_quiet_rounds then begin
        t.o_interval <-
          min (t.o_interval * 2) (t.o_interval_base * adaptive_max_scale);
        t.o_quiet <- 0
      end
    end;
  (broadcast, prunes)

(** Per-probe cost roll-up over every probe id, ascending. [toggles]
    supplies the instrumentation-toggle count per probe (a live
    manager in domains mode; derived from the pruned set — the only
    toggle source in a farm campaign — by the process supervisor). *)
let probe_costs t ~toggles =
  List.init t.o_n_probes (fun pid ->
      let hits, cycles =
        match Hashtbl.find_opt t.o_hits_cycles pid with
        | Some (h, c) -> (!h, !c)
        | None -> (0, 0)
      in
      {
        pc_pid = pid;
        pc_toggles = toggles pid;
        pc_execs_armed =
          Option.value ~default:0 (Hashtbl.find_opt t.o_execs_armed pid);
        pc_hits = hits;
        pc_cycles = cycles;
      })

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

(** Bumped whenever the checkpoint payload changes shape; {!Wire}
    rejects mismatches cleanly. v2: the barrier-merged per-function
    cycle profile joined the payload (tier promotions resume from it). *)
let ckpt_version = 2

(** A complete, self-contained snapshot of a campaign at a sync
    barrier. [ck_next] is the mutation-budget cursor (slot RNGs are
    pure functions of [(seed, slot)], so no generator state is
    stored); [ck_round] the last completed round. *)
type ckpt = {
  ck_version : int;
  ck_digest : string;  (** target module digest — resume refuses a mismatch *)
  ck_seed : int;
  ck_workers : int;
  ck_interval_base : int;
  ck_n_probes : int;
  ck_round : int;
  ck_next : int;
  ck_bitmap : string;
  ck_seen : string list;
  ck_offered : int;
  ck_accepted : int;
  ck_duplicates : int;
  ck_stale : int;
  ck_votes : (int * float) list;
  ck_pruned : int list;
  ck_corpus : centry list;  (** acceptance order *)
  ck_execs : int;
  ck_cycles : int;
  ck_rounds : int;
  ck_execs_armed : (int * int) list;
  ck_probe_cost : (int * int * int) list;  (** (pid, hits, cycles) *)
  ck_fn_cycles : (string * int) list;  (** merged profile, heaviest first *)
  ck_interval : int;
  ck_quiet : int;
  ck_skipped : int;
  ck_crashes : int;
  ck_recompiles : int;
  ck_restarts : int;
  ck_gc_evicted : int;
  ck_weights : (int * float) list;  (** per-worker vote weights *)
}

(** Snapshot the orchestrator. [skipped]/[crashes]/[recompiles] are the
    campaign-cumulative totals (base + the driver's live counts);
    [weights] the per-worker vote weights (procs mode; empty for
    domains). *)
let snapshot t ~digest ~workers ~round ~next ~skipped ~crashes ~recompiles
    ~restarts ~weights =
  {
    ck_version = ckpt_version;
    ck_digest = digest;
    ck_seed = t.o_seed;
    ck_workers = workers;
    ck_interval_base = t.o_interval_base;
    ck_n_probes = t.o_n_probes;
    ck_round = round;
    ck_next = next;
    ck_bitmap = Csync.bitmap_bytes t.o_sync;
    ck_seen = Csync.seen_list t.o_sync;
    ck_offered = t.o_sync.Csync.offered;
    ck_accepted = t.o_sync.Csync.accepted;
    ck_duplicates = t.o_sync.Csync.duplicates;
    ck_stale = t.o_sync.Csync.stale;
    ck_votes = Instr.Votes.entries t.o_votes;
    ck_pruned = pruned_list t;
    ck_corpus = corpus_entries t;
    ck_execs = t.o_execs;
    ck_cycles = t.o_cycles;
    ck_rounds = t.o_rounds;
    ck_execs_armed =
      Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) t.o_execs_armed []
      |> List.sort compare;
    ck_probe_cost =
      Hashtbl.fold
        (fun pid (h, c) acc -> (pid, !h, !c) :: acc)
        t.o_hits_cycles []
      |> List.sort compare;
    ck_fn_cycles = fn_profile t;
    ck_interval = t.o_interval;
    ck_quiet = t.o_quiet;
    ck_skipped = skipped;
    ck_crashes = crashes;
    ck_recompiles = recompiles;
    ck_restarts = restarts;
    ck_gc_evicted = t.o_gc_evicted;
    ck_weights = weights;
  }

(** Rebuild an orchestrator from a checkpoint. The caller's [cfg]
    supplies the knobs a checkpoint does not pin (quorum, adaptivity,
    GC bounds); seed and interval base come from the checkpoint so the
    slot stream continues bit-identically. *)
let restore (cfg : config) ck =
  let t =
    create ~n_probes:ck.ck_n_probes
      { cfg with fc_seed = ck.ck_seed; fc_sync_interval = ck.ck_interval_base }
  in
  let sync =
    Csync.restore ~n_probes:ck.ck_n_probes ~bitmap:ck.ck_bitmap
      ~seen:ck.ck_seen ~offered:ck.ck_offered ~accepted:ck.ck_accepted
      ~duplicates:ck.ck_duplicates ~stale:ck.ck_stale
  in
  let t = { t with o_sync = sync; o_votes = Instr.Votes.restore ck.ck_votes } in
  List.iter (fun pid -> Hashtbl.replace t.o_pruned pid ()) ck.ck_pruned;
  List.iter
    (fun (pid, n) -> Hashtbl.replace t.o_execs_armed pid n)
    ck.ck_execs_armed;
  List.iter
    (fun (pid, h, c) -> Hashtbl.replace t.o_hits_cycles pid (ref h, ref c))
    ck.ck_probe_cost;
  List.iter
    (fun (fn, cy) -> Hashtbl.replace t.o_fn_cycles fn (ref cy))
    ck.ck_fn_cycles;
  t.o_corpus <- List.rev ck.ck_corpus;
  t.o_execs <- ck.ck_execs;
  t.o_cycles <- ck.ck_cycles;
  t.o_rounds <- ck.ck_rounds;
  t.o_interval <- ck.ck_interval;
  t.o_quiet <- ck.ck_quiet;
  t.o_skipped <- ck.ck_skipped;
  t.o_crashes <- ck.ck_crashes;
  t.o_recompiles <- ck.ck_recompiles;
  t.o_restarts <- ck.ck_restarts;
  t.o_gc_evicted <- ck.ck_gc_evicted;
  t

(** Digest pinning a module's identity for checkpoints and the wire
    Init frame: the printed IR's MD5 (print→parse round-trips
    structurally, so this is stable across the wire). *)
let module_digest m = Digest.to_hex (Digest.string (Ir.Print.module_to_string m))

(* ------------------------------------------------------------------ *)
(* Journal events (shared so the two drivers' journals cannot drift)   *)
(* ------------------------------------------------------------------ *)

let record_sync_event j t ~round ~merged ~accepted ~pruned =
  Telemetry.Journal.record j ~kind:"farm.sync"
    [
      ("round", Json.Int round);
      ("merged", Json.Int merged);
      ("accepted", Json.Int accepted);
      ("pruned", Json.Int pruned);
      ("coverage", Json.Int (Csync.covered_count t.o_sync));
      ("execs", Json.Int t.o_execs);
      ("cycles", Json.Int t.o_cycles);
      ("interval", Json.Int t.o_interval);
    ]

(** One campaign-counter snapshot: farm./session./link. counters
    aggregated across [recorders], plus the store's quarantine count
    when a store is attached (satellite of ISSUE 8: quarantines were
    counted but never surfaced). *)
let record_counters_event j ~round ~quarantined recorders =
  let agg : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let scan (rc : Telemetry.Recorder.t) =
    List.iter
      (fun c ->
        let n = Telemetry.Metrics.counter_name c in
        if
          String.starts_with ~prefix:"farm." n
          || String.starts_with ~prefix:"session." n
          || String.starts_with ~prefix:"link." n
        then
          Hashtbl.replace agg n
            (Telemetry.Metrics.value c
            + Option.value ~default:0 (Hashtbl.find_opt agg n)))
      (Telemetry.Metrics.counters rc.Telemetry.Recorder.metrics)
  in
  List.iter scan recorders;
  let fields =
    Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) agg []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let fields =
    match quarantined with
    | None -> fields
    | Some q -> fields @ [ ("store.quarantined", Json.Int q) ]
  in
  if fields <> [] then
    Telemetry.Journal.record j ~kind:"counters" (("round", Json.Int round) :: fields)

let record_probe_cost_events j probe_costs =
  List.iter
    (fun pc ->
      Telemetry.Journal.record j ~kind:"probe.cost"
        [
          ("pid", Json.Int pc.pc_pid);
          ("toggles", Json.Int pc.pc_toggles);
          ("execs_armed", Json.Int pc.pc_execs_armed);
          ("hits", Json.Int pc.pc_hits);
          ("cycles", Json.Int pc.pc_cycles);
        ])
    probe_costs

let record_done_event j t ~workers ~cross_hits ~crashes =
  Telemetry.Journal.record j ~kind:"farm.done"
    [
      ("workers", Json.Int workers);
      ("execs", Json.Int t.o_execs);
      ("cycles", Json.Int t.o_cycles);
      ("coverage", Json.Int (Csync.covered_count t.o_sync));
      ("total_probes", Json.Int t.o_n_probes);
      ("pruned", Json.Int (Hashtbl.length t.o_pruned));
      ("exchanged", Json.Int t.o_sync.Csync.accepted);
      ("cross_hits", Json.Int cross_hits);
      ("crashes", Json.Int crashes);
    ]

(** Assemble the public stats record from the orchestrator's merge
    state plus the driver's substrate-specific counts. *)
let mk_stats t ~workers ~cross_hits ~skipped ~crashes ~recompiles ~dead ~store
    ~probe_cost =
  {
    fs_workers = workers;
    fs_execs = t.o_execs;
    fs_total_cycles = t.o_cycles;
    fs_sync_rounds = t.o_rounds;
    fs_offered = t.o_sync.Csync.offered;
    fs_exchanged = t.o_sync.Csync.accepted;
    fs_duplicates = t.o_sync.Csync.duplicates;
    fs_stale = t.o_sync.Csync.stale;
    fs_coverage = Csync.covered_list t.o_sync;
    fs_total_probes = t.o_n_probes;
    fs_pruned = pruned_list t;
    fs_corpus = List.map (fun ce -> ce.ce_input) (corpus_entries t);
    fs_cross_hits = cross_hits;
    fs_recompiles = recompiles;
    fs_skipped = skipped;
    fs_crashes = crashes;
    fs_dead = dead;
    fs_gc_evicted = t.o_gc_evicted;
    fs_store = store;
    fs_probe_cost = probe_cost;
  }
