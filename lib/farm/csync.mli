(** Corpus-sync protocol and global coverage bitmap: the merge step of
    the farm's barrier. Deduplicates byte-identical inputs across
    workers and rounds, accepts only inputs contributing new global
    coverage, and folds every execution's fired probes into one bitmap.
    Sequential by design — called only from the orchestrator's barrier,
    in global execution order. *)

type item = {
  it_index : int;  (** global execution slot; merges happen in slot order *)
  it_input : string;
  it_cycles : int;  (** VM cycles of the execution *)
  it_fired : int list;  (** probe ids whose counter fired, ascending *)
  it_fns : (string * int) list;  (** per-function cycle attribution *)
  it_probe_cost : (int * int * int) list;
      (** per-probe (pid, hits, cycles) VM attribution, ascending by pid *)
}

type t = {
  bitmap : Bytes.t;  (** global coverage, 1 bit per probe id *)
  n_probes : int;
  seen : (string, unit) Hashtbl.t;
  mutable offered : int;
  mutable accepted : int;
  mutable duplicates : int;  (** byte-identical to an earlier offer *)
  mutable stale : int;  (** novel bytes, no new global coverage *)
}

val create : n_probes:int -> t
val covered : t -> int -> bool
val covered_count : t -> int

(** Covered probe ids, ascending. *)
val covered_list : t -> int list

(** Merge one barrier's items (pass them sorted by [it_index]); returns
    accepted items with their fresh-coverage counts, in slot order.
    Every non-duplicate item's coverage lands in the bitmap. *)
val merge : t -> item list -> (item * int) list

(** duplicates / offered, percent. *)
val dedup_rate : t -> float

(** Every input digest ever offered, sorted — checkpoint export. *)
val seen_list : t -> string list

(** Raw bitmap bytes — checkpoint export. *)
val bitmap_bytes : t -> string

(** Rebuild barrier state from a checkpoint ({!bitmap_bytes} of a [t]
    with the same [n_probes], {!seen_list}, and the four counters). *)
val restore :
  n_probes:int ->
  bitmap:string ->
  seen:string list ->
  offered:int ->
  accepted:int ->
  duplicates:int ->
  stale:int ->
  t
