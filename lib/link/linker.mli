(** The linker: combines object files into an executable image, with
    strong-symbol resolution, COMDAT folding (first definition wins),
    address assignment, absolute data relocations, alias resolution, and
    host-symbol binding for runtime-provided functions. *)

exception Link_error of string

(** Two symbols resolve to the same name outside a shared COMDAT group.
    [in_object] is the object bringing the second definition; [prior]
    the one that defined it first. *)
exception
  Duplicate_symbol of { symbol : string; in_object : string; prior : string }

(** A reference could not be satisfied by any object, the host-symbol
    list, or an alias. [referenced_from] names the referencing object
    (or the alias / data relocation that needs the symbol). *)
exception Undefined_symbol of { symbol : string; referenced_from : string }

(** Render any of the three linker exceptions as a one-line diagnostic;
    [None] for other exceptions. *)
val link_error_message : exn -> string option

type exe = {
  funcs : (string, Codegen.Mach.mfunc) Hashtbl.t;
  sym_addr : (string, int64) Hashtbl.t;
  fn_at_addr : (int64, string) Hashtbl.t;  (** code address -> function *)
  host_at_addr : (int64, string) Hashtbl.t;
  host_syms : (string, unit) Hashtbl.t;
  image : (int * Bytes.t) list;  (** (base address, initialized bytes) *)
  data_end : int;
  symbols_resolved : int;  (** linker work metric for the cost model *)
}

val code_base : int
val data_base : int

(** @raise Link_error for unknown symbols. *)
val addr_of : exe -> string -> int64

val find_func : exe -> string -> Codegen.Mach.mfunc option

(** Link objects into an executable; [host] names symbols satisfied by
    the runtime. Declares the ["link"] fault site.
    @raise Duplicate_symbol on a strong-symbol collision
    @raise Undefined_symbol on an unsatisfiable reference *)
val link : ?host:string list -> Objfile.t list -> exe

(** Modelled linking work in cycles (symbols + relocations resolved). *)
val link_cost : exe -> int
