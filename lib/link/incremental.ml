(** Incremental relinking (see the interface for the design).

    Invariants the patch path preserves, so a patched [exe] is
    indistinguishable from one produced by the full slab link:

    - layout is a pure function of the object list and each object's
      symbol shape: objects claim slabs in link order, symbols claim
      slots in [o_syms] order, so re-placing an object whose shape still
      fits its slab reproduces exactly the addresses a from-scratch slab
      link would assign;
    - a failed patch is observably a no-op: the symbol tables are
      patched in place (O(changed) bindings, not O(program) copies)
      under an undo journal that restores every touched binding before
      any exception escapes; byte images stay copy-on-write, so an exe
      captured before a successful patch keeps its image, and commit is
      a single field assignment after verification;
    - every address the VM can observe flows through [sym_addr] /
      [funcs] / [fn_at_addr] / patched data slots, all of which are
      rebuilt or patched here; code is position-independent (calls and
      [Osym] resolve by name at run time), so only data slots hold raw
      addresses and only those need the reverse index. *)

module L = Linker

let align8 n = (n + 7) / 8 * 8

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

(* Growth padding: room to roughly double before a slab overflows, with
   a floor so tiny fragments survive a few added clones/tables. *)
let code_capacity n = if n = 0 then 0 else max 4 (next_pow2 n)
let data_capacity n = if n = 0 then 0 else max 64 (next_pow2 n)

(** Shape of one defined symbol, for fallback detection. *)
type sig_item = {
  g_name : string;
  g_code : bool;
  g_global : bool;
  g_comdat : string option;
}

(** One data blob placed in the image. [e_bytes] is the patched copy
    (shared with [exe.image]); it is replaced, never mutated. *)
type entry = {
  e_sym : string;
  e_base : int;
  e_bytes : Bytes.t;
  e_relocs : (int * string) list;
}

type slab = {
  sl_sig : sig_item list;
  sl_aliases : (string * string * bool) list;
  sl_code_base : int;
  sl_code_cap : int;  (* 16-byte slots *)
  sl_data_base : int;
  sl_data_cap : int;  (* bytes *)
  sl_placed : (string * bool * int64) list;
      (* name, is_code, addr — placement order; for stale removal *)
  sl_entries : entry list;
}

type state = {
  s_host : string list;
  s_host_next : int;
      (* host-symbol slab cursor: next free thunk address (16-byte
         steps, below code_base). Persisting it lets a later patch hand
         a fresh host reference an address without relinking *)
  s_names : string list;  (* object names in link order *)
  s_slabs : (string, slab) Hashtbl.t;
  s_rev : (string, (string * string * int) list) Hashtbl.t;
      (* reverse relocation index: target symbol ->
         (referencing object, data symbol, byte offset) sites *)
  s_comdat : (string, string) Hashtbl.t;  (* COMDAT key -> winning object *)
  s_exe : L.exe;
  s_data_end : int;
}

type link_stats = {
  ls_incremental : bool;
  ls_symbols_patched : int;
  ls_relocs_patched : int;
  ls_resolved : int;
  ls_cost : int;
}

type stats = {
  mutable st_full : int;
  mutable st_incremental : int;
  mutable st_fallbacks : int;
  mutable st_symbols_patched : int;
  mutable st_relocs_patched : int;
  mutable st_overflows : int;
  mutable st_compactions : int;
}

type slab_info = {
  si_obj : string;
  si_code_base : int;
  si_code_cap : int;
  si_data_base : int;
  si_data_cap : int;
}

type t = {
  mutable state : state option;
  stats : stats;
  mutable last : link_stats;
  mutable last_slots : (int * int64) list;
      (* absolute (address, value) of every 8-byte data slot the most
         recent *successful incremental* patch rewrote; [] after a full
         link. This is the byte-level delta between the previous image
         and the new one (changed objects aside), and exactly what an
         OSR migration must replay into a live VM's memory — see
         [Vm.request_osr] *)
  hw : (string, int * int) Hashtbl.t;
      (* overflow high-water marks: object name -> (code slots, data
         bytes) the slab must fit on the next full link. Inflating the
         fallback's capacities this way makes repeat overflows of a
         growing object patch instead of falling back forever *)
  mutable ov_since_compact : int;
}

let no_link =
  {
    ls_incremental = false;
    ls_symbols_patched = 0;
    ls_relocs_patched = 0;
    ls_resolved = 0;
    ls_cost = 0;
  }

let create () =
  {
    state = None;
    stats =
      {
        st_full = 0;
        st_incremental = 0;
        st_fallbacks = 0;
        st_symbols_patched = 0;
        st_relocs_patched = 0;
        st_overflows = 0;
        st_compactions = 0;
      };
    last = no_link;
    last_slots = [];
    hw = Hashtbl.create 8;
    ov_since_compact = 0;
  }

let stats t = t.stats
let last t = t.last

(** Absolute (address, value) pairs the most recent successful
    incremental patch wrote into data slots; [[]] when the last link
    was full (no delta is known — an OSR migration must be refused and
    the execution restarted on the new image). *)
let last_slots t = t.last_slots
let reset t = t.state <- None

(* Overflows tolerated before the inflated high-water capacities are
   judged pathological and dropped (slab compaction). *)
let compact_threshold = 8

(** Drop the high-water capacity inflation: the next full link lays
    slabs out tight again (a compaction). Also drops the link state —
    inflated slab geometry cannot be patched back down in place. *)
let compact t =
  Hashtbl.reset t.hw;
  t.ov_since_compact <- 0;
  t.stats.st_compactions <- t.stats.st_compactions + 1;
  t.state <- None

let slabs t =
  match t.state with
  | None -> []
  | Some st ->
    List.map
      (fun name ->
        let sl = Hashtbl.find st.s_slabs name in
        {
          si_obj = name;
          si_code_base = sl.sl_code_base;
          si_code_cap = sl.sl_code_cap;
          si_data_base = sl.sl_data_base;
          si_data_cap = sl.sl_data_cap;
        })
      st.s_names

let is_code (s : Objfile.sym) =
  match s.Objfile.s_def with Objfile.Code _ -> true | Objfile.Data _ -> false

let sig_of (obj : Objfile.t) =
  List.map
    (fun (s : Objfile.sym) ->
      {
        g_name = s.Objfile.s_name;
        g_code = is_code s;
        g_global = s.Objfile.s_global;
        g_comdat = s.Objfile.s_comdat;
      })
    obj.Objfile.o_syms

(* ------------------------------------------------------------------ *)
(* Full link: Linker.link semantics, but slab-at-a-time addresses.     *)
(* ------------------------------------------------------------------ *)

(* [hw] holds per-object overflow high-water marks; a listed object's
   slab is sized for max(current shape, high water) so it can absorb
   the growth that made the patch path overflow. *)
let full_link ?(hw : (string, int * int) Hashtbl.t = Hashtbl.create 0) ~host
    (objs : Objfile.t list) =
  (* symbol choice: strong resolution + COMDAT first-definition-wins,
     with Linker's exact duplicate diagnostics *)
  let chosen : (string, Objfile.sym) Hashtbl.t = Hashtbl.create 128 in
  let defined_in : (string, string) Hashtbl.t = Hashtbl.create 128 in
  let comdat = Hashtbl.create 16 in
  let choose (obj : Objfile.t) (s : Objfile.sym) =
    if Hashtbl.mem chosen s.Objfile.s_name then
      raise
        (L.Duplicate_symbol
           {
             symbol = s.Objfile.s_name;
             in_object = obj.Objfile.o_name;
             prior =
               Option.value ~default:"?"
                 (Hashtbl.find_opt defined_in s.Objfile.s_name);
           });
    Hashtbl.replace chosen s.Objfile.s_name s;
    Hashtbl.replace defined_in s.Objfile.s_name obj.Objfile.o_name
  in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (s : Objfile.sym) ->
          match s.Objfile.s_comdat with
          | Some key ->
            if not (Hashtbl.mem comdat key) then begin
              Hashtbl.replace comdat key obj.Objfile.o_name;
              choose obj s
            end
          | None -> choose obj s)
        obj.Objfile.o_syms)
    objs;
  let exe =
    {
      L.funcs = Hashtbl.create 64;
      sym_addr = Hashtbl.create 128;
      fn_at_addr = Hashtbl.create 64;
      host_at_addr = Hashtbl.create 8;
      host_syms = Hashtbl.create 8;
      image = [];
      data_end = L.data_base;
      symbols_resolved = 0;
    }
  in
  (* slab assignment and symbol placement, object by object *)
  let next_code = ref L.code_base in
  let next_data = ref L.data_base in
  let slabs = Hashtbl.create 16 in
  List.iter
    (fun (obj : Objfile.t) ->
      let mine =
        List.filter
          (fun (s : Objfile.sym) ->
            match Hashtbl.find_opt chosen s.Objfile.s_name with
            | Some s' -> s' == s
            | None -> false)
          obj.Objfile.o_syms
      in
      let ncode = List.length (List.filter is_code mine) in
      let dtotal =
        List.fold_left
          (fun acc (s : Objfile.sym) ->
            match s.Objfile.s_def with
            | Objfile.Data d -> acc + align8 (Bytes.length d.Objfile.d_bytes)
            | Objfile.Code _ -> acc)
          0 mine
      in
      let hw_code, hw_data =
        Option.value ~default:(0, 0) (Hashtbl.find_opt hw obj.Objfile.o_name)
      in
      let code_cap = code_capacity (max ncode hw_code) in
      let data_cap = data_capacity (max dtotal hw_data) in
      let cb = !next_code and db = !next_data in
      next_code := cb + (code_cap * 16);
      next_data := db + data_cap;
      let pc = ref cb and pd = ref db in
      let placed = ref [] and entries = ref [] in
      List.iter
        (fun (s : Objfile.sym) ->
          match s.Objfile.s_def with
          | Objfile.Code mf ->
            let addr = Int64.of_int !pc in
            Hashtbl.replace exe.L.sym_addr s.Objfile.s_name addr;
            Hashtbl.replace exe.L.fn_at_addr addr s.Objfile.s_name;
            Hashtbl.replace exe.L.funcs s.Objfile.s_name mf;
            placed := (s.Objfile.s_name, true, addr) :: !placed;
            pc := !pc + 16
          | Objfile.Data d ->
            let base = align8 !pd in
            Hashtbl.replace exe.L.sym_addr s.Objfile.s_name (Int64.of_int base);
            placed := (s.Objfile.s_name, false, Int64.of_int base) :: !placed;
            entries :=
              {
                e_sym = s.Objfile.s_name;
                e_base = base;
                e_bytes = d.Objfile.d_bytes;
                (* patched copy below *)
                e_relocs = d.Objfile.d_relocs;
              }
              :: !entries;
            pd := base + Bytes.length d.Objfile.d_bytes)
        mine;
      Hashtbl.replace slabs obj.Objfile.o_name
        {
          sl_sig = sig_of obj;
          sl_aliases = obj.Objfile.o_aliases;
          sl_code_base = cb;
          sl_code_cap = code_cap;
          sl_data_base = db;
          sl_data_cap = data_cap;
          sl_placed = List.rev !placed;
          sl_entries = List.rev !entries;
        })
    objs;
  (* host symbols and undefined references — Linker.link verbatim *)
  List.iter (fun h -> Hashtbl.replace exe.L.host_syms h ()) host;
  let next_host = ref (L.code_base - 0x10000) in
  let resolved = ref 0 in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun u ->
          incr resolved;
          if not (Hashtbl.mem exe.L.sym_addr u) then begin
            if Hashtbl.mem exe.L.host_syms u then begin
              let addr = Int64.of_int !next_host in
              Hashtbl.replace exe.L.sym_addr u addr;
              Hashtbl.replace exe.L.host_at_addr addr u;
              next_host := !next_host + 16
            end
            else begin
              let is_alias =
                List.exists
                  (fun (o : Objfile.t) ->
                    List.exists
                      (fun (a, _, _) -> String.equal a u)
                      o.Objfile.o_aliases)
                  objs
              in
              if not is_alias then
                raise
                  (L.Undefined_symbol
                     { symbol = u; referenced_from = obj.Objfile.o_name })
            end
          end)
        obj.Objfile.o_undefined)
    objs;
  (* aliases *)
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (alias, target, _) ->
          match Hashtbl.find_opt exe.L.sym_addr target with
          | Some addr ->
            Hashtbl.replace exe.L.sym_addr alias addr;
            (match Hashtbl.find_opt exe.L.funcs target with
            | Some mf -> Hashtbl.replace exe.L.funcs alias mf
            | None -> ())
          | None ->
            raise
              (L.Undefined_symbol
                 { symbol = target; referenced_from = "alias @" ^ alias }))
        obj.Objfile.o_aliases)
    objs;
  (* patch data relocations on fresh copies; build the reverse index *)
  let rev = Hashtbl.create 64 in
  List.iter
    (fun (obj : Objfile.t) ->
      let sl = Hashtbl.find slabs obj.Objfile.o_name in
      let entries =
        List.map
          (fun e ->
            let bytes = Bytes.copy e.e_bytes in
            List.iter
              (fun (off, target) ->
                incr resolved;
                (match Hashtbl.find_opt exe.L.sym_addr target with
                | Some addr -> Bytes.set_int64_le bytes off addr
                | None ->
                  raise
                    (L.Undefined_symbol
                       { symbol = target; referenced_from = "data relocation" }));
                Hashtbl.replace rev target
                  ((obj.Objfile.o_name, e.e_sym, off)
                  :: Option.value ~default:[] (Hashtbl.find_opt rev target)))
              e.e_relocs;
            { e with e_bytes = bytes })
          sl.sl_entries
      in
      Hashtbl.replace slabs obj.Objfile.o_name { sl with sl_entries = entries })
    objs;
  let names = List.map (fun (o : Objfile.t) -> o.Objfile.o_name) objs in
  let image =
    List.concat_map
      (fun name ->
        List.map
          (fun e -> (e.e_base, e.e_bytes))
          (Hashtbl.find slabs name).sl_entries)
      names
  in
  let exe =
    { exe with L.image; data_end = !next_data; symbols_resolved = !resolved }
  in
  ( {
      s_host = host;
      s_host_next = !next_host;
      s_names = names;
      s_slabs = slabs;
      s_rev = rev;
      s_comdat = comdat;
      s_exe = exe;
      s_data_end = !next_data;
    },
    !resolved )

(* ------------------------------------------------------------------ *)
(* Patch path                                                          *)
(* ------------------------------------------------------------------ *)

exception Fallback

(* A changed object outgrew its slab: (object, code slots needed, data
   bytes needed). Distinct from [Fallback] so the driver can record the
   high-water shape before taking the full-link path. *)
exception Overflow of string * int * int

module HostSet = Set.Make (String)

let sorted_exports items =
  List.sort compare
    (List.filter_map
       (fun i -> if i.g_global then Some (i.g_name, i.g_code) else None)
       items)

let sorted_comdats items =
  List.sort compare (List.filter_map (fun i -> i.g_comdat) items)

(* Symbols this object contributes under the committed COMDAT-winner
   map (first sym per key within the object, mirroring [choose]). *)
let winners st (obj : Objfile.t) =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun (s : Objfile.sym) ->
      match s.Objfile.s_comdat with
      | None -> true
      | Some k ->
        (match Hashtbl.find_opt st.s_comdat k with
        | Some winner when winner = obj.Objfile.o_name ->
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.replace seen k ();
            true
          end
        | Some _ -> false
        | None -> raise Fallback))
    obj.Objfile.o_syms

(* Journaled in-place table updates. The patch path mutates the
   committed tables directly — touching O(changed) bindings instead of
   copying O(program) tables — and records the inverse of every write;
   on any exception the journal replays LIFO and restores each binding,
   so a failed patch is observably a no-op. *)
let journal_set undo tbl k v =
  let prev = Hashtbl.find_opt tbl k in
  undo :=
    (fun () ->
      match prev with
      | Some p -> Hashtbl.replace tbl k p
      | None -> Hashtbl.remove tbl k)
    :: !undo;
  Hashtbl.replace tbl k v

let journal_remove undo tbl k =
  match Hashtbl.find_opt tbl k with
  | None -> ()
  | Some p ->
    undo := (fun () -> Hashtbl.replace tbl k p) :: !undo;
    Hashtbl.remove tbl k

(* Returns [(state', exe, symbols_patched, relocs_patched, slots)] where
   [slots] is the absolute (address, value) list of rewritten data
   slots; raises [Fallback] when the cheap path cannot be proven safe. *)
let incremental_link state ~host ~changed (objs : Objfile.t list) =
  (* host compared as a *set*: an added symbol gets a thunk address off
     the persistent host-slab cursor below; a removed one would leave a
     stale resolvable name behind, so only removal forces the full
     link *)
  let old_host = HostSet.of_list state.s_host in
  let new_host = HostSet.of_list host in
  if not (HostSet.subset old_host new_host) then raise Fallback;
  let added_host = HostSet.diff new_host old_host in
  let names = List.map (fun (o : Objfile.t) -> o.Objfile.o_name) objs in
  if names <> state.s_names then raise Fallback;
  let changed_set = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace changed_set n ()) changed;
  let changed_objs =
    List.filter
      (fun (o : Objfile.t) -> Hashtbl.mem changed_set o.Objfile.o_name)
      objs
  in
  if changed_objs = [] && HostSet.is_empty added_host then
    (state, state.s_exe, 0, 0, [])
  else begin
    Support.Fault.hit "link.patch";
    let old = state.s_exe in
    (* in place with an undo journal: the committed tables are patched
       directly (image bytes stay copy-on-write, so any exe captured
       earlier keeps its byte image); the journal restores every
       binding if anything below raises *)
    let undo = ref [] in
    let sym_addr = old.L.sym_addr in
    let funcs = old.L.funcs in
    let fn_at_addr = old.L.fn_at_addr in
    let slabs = state.s_slabs in
    let rev = state.s_rev in
    let syms_patched = ref 0 and relocs_patched = ref 0 in
    let moved = Hashtbl.create 16 in (* exported name whose address changed *)
    let prev_addr = Hashtbl.create 16 in (* pre-patch address of removed syms *)
    let placed_log = ref [] in (* (name, expected addr) for verification *)
    let slot_log = ref [] in (* (bytes, off, target) for verification *)
    let osr_log = ref [] in (* absolute (addr, value) of rewritten slots *)
    let old_entries = ref [] in (* pre-patch (obj, entries), for the rev index *)
    let host_cursor = ref state.s_host_next in
    try
    (* phase 0: host slab — register added host symbols (journaled like
       every other table write, so a failed patch forgets them too) *)
    HostSet.iter
      (fun h ->
        if not (Hashtbl.mem old.L.host_syms h) then
          journal_set undo old.L.host_syms h ())
      added_host;
    (* phase 1: validate each changed object against its slab, then
       re-place its symbols at the addresses a full slab link would pick *)
    List.iter
      (fun (obj : Objfile.t) ->
        let sl =
          match Hashtbl.find_opt slabs obj.Objfile.o_name with
          | Some sl -> sl
          | None -> raise Fallback
        in
        let nsig = sig_of obj in
        if obj.Objfile.o_aliases <> sl.sl_aliases then raise Fallback;
        if sorted_exports nsig <> sorted_exports sl.sl_sig then raise Fallback;
        if sorted_comdats nsig <> sorted_comdats sl.sl_sig then raise Fallback;
        let mine = winners state obj in
        let ncode = List.length (List.filter is_code mine) in
        let dtotal =
          List.fold_left
            (fun acc (s : Objfile.sym) ->
              match s.Objfile.s_def with
              | Objfile.Data d -> acc + align8 (Bytes.length d.Objfile.d_bytes)
              | Objfile.Code _ -> acc)
            0 mine
        in
        if ncode > sl.sl_code_cap || dtotal > sl.sl_data_cap then
          raise (Overflow (obj.Objfile.o_name, ncode, dtotal));
        (* remove the stale placement, remembering each pre-patch
           address (the in-place table can no longer answer that) *)
        let old_names = Hashtbl.create 16 in
        let stash name =
          match Hashtbl.find_opt sym_addr name with
          | Some a -> Hashtbl.replace prev_addr name a
          | None -> ()
        in
        List.iter
          (fun (name, code, addr) ->
            Hashtbl.replace old_names name ();
            stash name;
            journal_remove undo sym_addr name;
            if code then begin
              journal_remove undo fn_at_addr addr;
              journal_remove undo funcs name
            end)
          sl.sl_placed;
        List.iter
          (fun (a, _, _) ->
            Hashtbl.replace old_names a ();
            stash a;
            journal_remove undo sym_addr a;
            journal_remove undo funcs a)
          sl.sl_aliases;
        (* re-place *)
        let pc = ref sl.sl_code_base and pd = ref sl.sl_data_base in
        let placed = ref [] and entries = ref [] in
        List.iter
          (fun (s : Objfile.sym) ->
            let name = s.Objfile.s_name in
            (* a name owned by another object: let the full link raise
               its Duplicate_symbol diagnostic *)
            if (not (Hashtbl.mem old_names name)) && Hashtbl.mem sym_addr name
            then raise Fallback;
            incr syms_patched;
            match s.Objfile.s_def with
            | Objfile.Code mf ->
              let addr = Int64.of_int !pc in
              journal_set undo sym_addr name addr;
              journal_set undo fn_at_addr addr name;
              journal_set undo funcs name mf;
              placed := (name, true, addr) :: !placed;
              placed_log := (name, addr) :: !placed_log;
              if s.Objfile.s_global && Hashtbl.find_opt prev_addr name <> Some addr
              then Hashtbl.replace moved name ();
              pc := !pc + 16
            | Objfile.Data d ->
              let base = align8 !pd in
              let addr = Int64.of_int base in
              journal_set undo sym_addr name addr;
              placed := (name, false, addr) :: !placed;
              placed_log := (name, addr) :: !placed_log;
              if s.Objfile.s_global && Hashtbl.find_opt prev_addr name <> Some addr
              then Hashtbl.replace moved name ();
              entries :=
                {
                  e_sym = name;
                  e_base = base;
                  e_bytes = d.Objfile.d_bytes;
                  e_relocs = d.Objfile.d_relocs;
                }
                :: !entries;
              pd := base + Bytes.length d.Objfile.d_bytes)
          mine;
        old_entries := (obj.Objfile.o_name, sl.sl_entries) :: !old_entries;
        journal_set undo slabs obj.Objfile.o_name
          {
            sl with
            sl_sig = nsig;
            sl_placed = List.rev !placed;
            sl_entries = List.rev !entries;
          })
      changed_objs;
    (* phase 1b: re-register the changed objects' aliases *)
    List.iter
      (fun (obj : Objfile.t) ->
        List.iter
          (fun (alias, target, global) ->
            match Hashtbl.find_opt sym_addr target with
            | Some addr ->
              journal_set undo sym_addr alias addr;
              incr syms_patched;
              placed_log := (alias, addr) :: !placed_log;
              if global && Hashtbl.find_opt prev_addr alias <> Some addr
              then Hashtbl.replace moved alias ();
              (match Hashtbl.find_opt funcs target with
              | Some mf -> journal_set undo funcs alias mf
              | None -> journal_remove undo funcs alias)
            | None -> raise Fallback)
          obj.Objfile.o_aliases)
      changed_objs;
    (* phase 2: every reference of a changed object must resolve. A new
       reference to a host symbol gets a thunk address off the
       persistent host-slab cursor (addresses live only in the symbol
       tables — host calls resolve by name at run time, so placement
       order is unobservable); anything else truly undefined falls back
       so the full link diagnoses it *)
    List.iter
      (fun (obj : Objfile.t) ->
        List.iter
          (fun u ->
            if not (Hashtbl.mem sym_addr u) then
              if Hashtbl.mem old.L.host_syms u then begin
                let addr = Int64.of_int !host_cursor in
                journal_set undo sym_addr u addr;
                journal_set undo old.L.host_at_addr addr u;
                host_cursor := !host_cursor + 16;
                incr syms_patched;
                placed_log := (u, addr) :: !placed_log
              end
              else raise Fallback)
          obj.Objfile.o_undefined)
      changed_objs;
    (* phase 3: patch the changed objects' own relocations on fresh
       copies *)
    List.iter
      (fun (obj : Objfile.t) ->
        let sl = Hashtbl.find slabs obj.Objfile.o_name in
        let entries =
          List.map
            (fun e ->
              let bytes = Bytes.copy e.e_bytes in
              List.iter
                (fun (off, target) ->
                  match Hashtbl.find_opt sym_addr target with
                  | Some addr ->
                    Bytes.set_int64_le bytes off addr;
                    incr relocs_patched;
                    slot_log := (bytes, off, target) :: !slot_log;
                    osr_log := (e.e_base + off, addr) :: !osr_log
                  | None -> raise Fallback)
                e.e_relocs;
              { e with e_bytes = bytes })
            sl.sl_entries
        in
        journal_set undo slabs obj.Objfile.o_name { sl with sl_entries = entries })
      changed_objs;
    (* phase 4: inbound fix-up — the reverse index names every slot in
       an *unchanged* object that stores a moved symbol's address;
       copy-on-write only the entries that actually hold such a slot *)
    let inbound = Hashtbl.create 8 in (* src object -> (sym, off, target) *)
    Hashtbl.iter
      (fun target () ->
        List.iter
          (fun (src, sym, off) ->
            if not (Hashtbl.mem changed_set src) then
              Hashtbl.replace inbound src
                ((sym, off, target)
                :: Option.value ~default:[] (Hashtbl.find_opt inbound src)))
          (Option.value ~default:[] (Hashtbl.find_opt rev target)))
      moved;
    Hashtbl.iter
      (fun src sites ->
        let sl = Hashtbl.find slabs src in
        let by_sym = Hashtbl.create 4 in
        List.iter
          (fun (sym, off, target) ->
            Hashtbl.replace by_sym sym
              ((off, target)
              :: Option.value ~default:[] (Hashtbl.find_opt by_sym sym)))
          sites;
        let entries =
          List.map
            (fun e ->
              match Hashtbl.find_opt by_sym e.e_sym with
              | None -> e
              | Some slots ->
                let bytes = Bytes.copy e.e_bytes in
                List.iter
                  (fun (off, target) ->
                    let addr = Hashtbl.find sym_addr target in
                    Bytes.set_int64_le bytes off addr;
                    incr relocs_patched;
                    slot_log := (bytes, off, target) :: !slot_log;
                    osr_log := (e.e_base + off, addr) :: !osr_log)
                  slots;
                { e with e_bytes = bytes })
            sl.sl_entries
        in
        journal_set undo slabs src { sl with sl_entries = entries })
      inbound;
    (* refresh the reverse index in place: the changed objects' *old*
       relocation lists name exactly the edges to drop, their new
       entries the edges to add — O(changed relocs), not O(all edges) *)
    List.iter
      (fun (name, entries) ->
        List.iter
          (fun e ->
            List.iter
              (fun (_, target) ->
                match Hashtbl.find_opt rev target with
                | None -> ()
                | Some sites -> (
                  match List.filter (fun (src, _, _) -> src <> name) sites with
                  | [] -> journal_remove undo rev target
                  | kept -> journal_set undo rev target kept))
              e.e_relocs)
          entries)
      !old_entries;
    List.iter
      (fun (obj : Objfile.t) ->
        let sl = Hashtbl.find slabs obj.Objfile.o_name in
        List.iter
          (fun e ->
            List.iter
              (fun (off, target) ->
                journal_set undo rev target
                  ((obj.Objfile.o_name, e.e_sym, off)
                  :: Option.value ~default:[] (Hashtbl.find_opt rev target)))
              e.e_relocs)
          sl.sl_entries)
      changed_objs;
    (* torn-patch injection: corrupt one of our own writes *)
    if Support.Fault.torn "link.patch" then begin
      match (!slot_log, !placed_log) with
      | (bytes, off, _) :: _, _ ->
        Bytes.set_int64_le bytes off
          (Int64.add (Bytes.get_int64_le bytes off) 0xF1L)
      | [], (name, addr) :: _ ->
        journal_set undo sym_addr name (Int64.add addr 8L)
      | [], [] -> ()
    end;
    (* verify-after-patch: every re-placed symbol and every rewritten
       slot must read back consistent; this is what turns a torn write
       into a clean link failure instead of a corrupt image *)
    List.iter
      (fun (name, addr) ->
        if Hashtbl.find_opt sym_addr name <> Some addr then
          raise
            (L.Link_error
               (Printf.sprintf "torn patch detected: symbol @%s" name)))
      !placed_log;
    List.iter
      (fun (bytes, off, target) ->
        let expect =
          match Hashtbl.find_opt sym_addr target with
          | Some a -> a
          | None -> Int64.minus_one
        in
        if Bytes.get_int64_le bytes off <> expect then
          raise
            (L.Link_error
               (Printf.sprintf "torn patch detected: relocation to @%s" target)))
      !slot_log;
    let image =
      List.concat_map
        (fun name ->
          List.map
            (fun e -> (e.e_base, e.e_bytes))
            (Hashtbl.find slabs name).sl_entries)
        state.s_names
    in
    let exe =
      {
        old with
        L.funcs;
        sym_addr;
        fn_at_addr;
        image;
        symbols_resolved = !syms_patched + !relocs_patched;
      }
    in
    ( {
        state with
        s_slabs = slabs;
        s_rev = rev;
        s_exe = exe;
        s_host = host;
        s_host_next = !host_cursor;
      },
      exe,
      !syms_patched,
      !relocs_patched,
      List.rev !osr_log )
    with e ->
      (* replay the journal LIFO: every binding the patch touched is
         restored before the exception (Fallback, a diagnostic, a
         detected torn write, an injected fault) escapes *)
      List.iter (fun f -> f ()) !undo;
      raise e
  end

let relink ?(incremental = true) ?(host = []) t ~changed
    (objs : Objfile.t list) =
  Support.Fault.hit "link";
  let patched =
    if not incremental then None
    else
      match t.state with
      | None -> None
      | Some state -> (
        try Some (incremental_link state ~host ~changed objs)
        with
        | Fallback ->
          t.stats.st_fallbacks <- t.stats.st_fallbacks + 1;
          None
        | Overflow (name, ncode, dtotal) ->
          (* record the shape that burst the slab so the fallback full
             link below over-allocates it; when overflows keep coming
             despite the inflation, the layout is judged pathological
             and compacted (high waters dropped, tight relayout) *)
          t.stats.st_fallbacks <- t.stats.st_fallbacks + 1;
          t.stats.st_overflows <- t.stats.st_overflows + 1;
          let pc, pd =
            Option.value ~default:(0, 0) (Hashtbl.find_opt t.hw name)
          in
          Hashtbl.replace t.hw name (max pc ncode, max pd dtotal);
          t.ov_since_compact <- t.ov_since_compact + 1;
          if t.ov_since_compact >= compact_threshold then compact t;
          None)
  in
  match patched with
  | Some (state, exe, sp, rp, slots) ->
    t.state <- Some state;
    t.stats.st_incremental <- t.stats.st_incremental + 1;
    t.stats.st_symbols_patched <- t.stats.st_symbols_patched + sp;
    t.stats.st_relocs_patched <- t.stats.st_relocs_patched + rp;
    t.last <-
      {
        ls_incremental = true;
        ls_symbols_patched = sp;
        ls_relocs_patched = rp;
        ls_resolved = 0;
        ls_cost = 200 + (40 * (sp + rp));
      };
    t.last_slots <- slots;
    exe
  | None ->
    let state, resolved = full_link ~hw:t.hw ~host objs in
    t.state <- Some state;
    t.stats.st_full <- t.stats.st_full + 1;
    t.last <-
      {
        ls_incremental = false;
        ls_symbols_patched = 0;
        ls_relocs_patched = 0;
        ls_resolved = resolved;
        ls_cost = 2000 + (40 * resolved);
      };
    t.last_slots <- [];
    state.s_exe
