(** The linker: combines object files into an executable image.

    - strong-symbol resolution with COMDAT folding (first definition of a
      COMDAT group wins, duplicates are discarded — the C++ template
      model);
    - address assignment (code addresses are opaque 16-byte-aligned
      tokens; data is laid out in a flat little-endian image);
    - absolute relocations patched in data;
    - aliases resolve to their base symbol's address;
    - unresolved symbols must be satisfied by the runtime (host
      functions), otherwise linking fails. *)

exception Link_error of string

(** Two symbols resolve to the same name outside a shared COMDAT group.
    [in_object] is the object bringing the second definition; [prior]
    the one that defined it first. *)
exception
  Duplicate_symbol of { symbol : string; in_object : string; prior : string }

(** A reference could not be satisfied by any object, the host-symbol
    list, or an alias. [referenced_from] names the referencing object
    (or the alias / data relocation that needs the symbol). *)
exception Undefined_symbol of { symbol : string; referenced_from : string }

let error fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let link_error_message = function
  | Link_error msg -> Some msg
  | Duplicate_symbol { symbol; in_object; prior } ->
    Some
      (Printf.sprintf "duplicate symbol @%s: defined in %s and again in %s"
         symbol prior in_object)
  | Undefined_symbol { symbol; referenced_from } ->
    Some
      (Printf.sprintf "undefined symbol @%s (referenced from %s)" symbol
         referenced_from)
  | _ -> None

type exe = {
  funcs : (string, Codegen.Mach.mfunc) Hashtbl.t;
  sym_addr : (string, int64) Hashtbl.t;
  fn_at_addr : (int64, string) Hashtbl.t;  (** code address -> function *)
  host_at_addr : (int64, string) Hashtbl.t;  (** host-symbol address -> name *)
  host_syms : (string, unit) Hashtbl.t;  (** resolved to the runtime *)
  image : (int * Bytes.t) list;  (** (base address, initialized bytes) *)
  data_end : int;
  symbols_resolved : int;  (** linker work metric, used by the cost model *)
}

let code_base = 0x400000
let data_base = 0x40000

let addr_of exe name =
  match Hashtbl.find_opt exe.sym_addr name with
  | Some a -> a
  | None -> error "no such symbol @%s" name

let find_func exe name = Hashtbl.find_opt exe.funcs name

(** Link objects; [host] names symbols provided by the runtime.
    Declares the ["link"] fault site.
    @raise Duplicate_symbol on a strong-symbol collision
    @raise Undefined_symbol on an unsatisfiable reference *)
let link ?(host = []) (objs : Objfile.t list) =
  Support.Fault.hit "link";
  let chosen : (string, Objfile.sym) Hashtbl.t = Hashtbl.create 128 in
  let defined_in : (string, string) Hashtbl.t = Hashtbl.create 128 in
  let order = ref [] in
  let comdat_seen = Hashtbl.create 16 in
  let choose (obj : Objfile.t) (s : Objfile.sym) =
    if Hashtbl.mem chosen s.Objfile.s_name then
      raise
        (Duplicate_symbol
           {
             symbol = s.Objfile.s_name;
             in_object = obj.Objfile.o_name;
             prior =
               Option.value ~default:"?"
                 (Hashtbl.find_opt defined_in s.Objfile.s_name);
           });
    Hashtbl.replace chosen s.Objfile.s_name s;
    Hashtbl.replace defined_in s.Objfile.s_name obj.Objfile.o_name;
    order := s.Objfile.s_name :: !order
  in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (s : Objfile.sym) ->
          match s.Objfile.s_comdat with
          | Some key ->
            if not (Hashtbl.mem comdat_seen key) then begin
              Hashtbl.replace comdat_seen key ();
              choose obj s
            end
          | None -> choose obj s)
        obj.Objfile.o_syms)
    objs;
  let order = List.rev !order in
  let exe =
    {
      funcs = Hashtbl.create 64;
      sym_addr = Hashtbl.create 128;
      fn_at_addr = Hashtbl.create 64;
      host_at_addr = Hashtbl.create 8;
      host_syms = Hashtbl.create 8;
      image = [];
      data_end = data_base;
      symbols_resolved = 0;
    }
  in
  (* address assignment *)
  let next_code = ref code_base in
  let next_data = ref data_base in
  let datas = ref [] in
  List.iter
    (fun name ->
      let s = Hashtbl.find chosen name in
      match s.Objfile.s_def with
      | Objfile.Code mf ->
        let addr = Int64.of_int !next_code in
        Hashtbl.replace exe.sym_addr name addr;
        Hashtbl.replace exe.fn_at_addr addr name;
        Hashtbl.replace exe.funcs name mf;
        next_code := !next_code + 16
      | Objfile.Data d ->
        let size = Bytes.length d.Objfile.d_bytes in
        let base = (!next_data + 7) / 8 * 8 in
        Hashtbl.replace exe.sym_addr name (Int64.of_int base);
        datas := (base, d) :: !datas;
        next_data := base + size)
    order;
  (* host symbols: anything still undefined *)
  List.iter (fun h -> Hashtbl.replace exe.host_syms h ()) host;
  let next_host = ref (code_base - 0x10000) in
  let resolved = ref 0 in
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun u ->
          incr resolved;
          if not (Hashtbl.mem exe.sym_addr u) then begin
            if Hashtbl.mem exe.host_syms u then begin
              let addr = Int64.of_int !next_host in
              Hashtbl.replace exe.sym_addr u addr;
              Hashtbl.replace exe.host_at_addr addr u;
              next_host := !next_host + 16
            end
            else begin
              (* alias defined in another object? resolved below; else fail *)
              let is_alias =
                List.exists
                  (fun (o : Objfile.t) ->
                    List.exists (fun (a, _, _) -> String.equal a u) o.Objfile.o_aliases)
                  objs
              in
              if not is_alias then
                raise
                  (Undefined_symbol
                     { symbol = u; referenced_from = obj.Objfile.o_name })
            end
          end)
        obj.Objfile.o_undefined)
    objs;
  (* aliases *)
  List.iter
    (fun (obj : Objfile.t) ->
      List.iter
        (fun (alias, target, _) ->
          match Hashtbl.find_opt exe.sym_addr target with
          | Some addr ->
            Hashtbl.replace exe.sym_addr alias addr;
            (* an alias to a function is callable *)
            (match Hashtbl.find_opt exe.funcs target with
            | Some mf -> Hashtbl.replace exe.funcs alias mf
            | None -> ())
          | None ->
            raise
              (Undefined_symbol
                 { symbol = target; referenced_from = "alias @" ^ alias }))
        obj.Objfile.o_aliases)
    objs;
  (* patch data relocations *)
  let image =
    List.rev_map
      (fun (base, (d : Objfile.data)) ->
        let bytes = Bytes.copy d.Objfile.d_bytes in
        List.iter
          (fun (off, target) ->
            incr resolved;
            match Hashtbl.find_opt exe.sym_addr target with
            | Some addr -> Bytes.set_int64_le bytes off addr
            | None ->
              raise
                (Undefined_symbol
                   {
                     symbol = target;
                     referenced_from = "data relocation";
                   }))
          d.Objfile.d_relocs;
        (base, bytes))
      !datas
  in
  { exe with image; data_end = !next_data; symbols_resolved = !resolved }

(** Linker cost model (cycles of work, converted to time by the bench
    harness): proportional to symbols + relocations resolved, matching
    the paper's observation that linking is cheap (~49 ms on average)
    because internalized fragments export few symbols. *)
let link_cost exe = 2000 + (exe.symbols_resolved * 40)
