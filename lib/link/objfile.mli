(** Object-file format: the output of compiling one module (one fragment).
    A symbol is machine code or initialized data with 8-byte absolute
    relocations; aliases must have their base *defined* in the same
    object (the innate constraint of paper Section 2.3, enforced at
    emission). *)

type data = {
  d_bytes : Bytes.t;
  d_relocs : (int * string) list;  (** (byte offset, target symbol) *)
  d_const : bool;
}

type def = Code of Codegen.Mach.mfunc | Data of data

type sym = {
  s_name : string;
  s_global : bool;  (** exported (External linkage) *)
  s_def : def;
  s_comdat : string option;
}

type t = {
  o_name : string;
  o_syms : sym list;
  o_aliases : (string * string * bool) list;  (** (alias, target, global) *)
  o_undefined : string list;  (** referenced but not defined here *)
}

exception Emit_error of string

(** Lower a global initializer to bytes + relocations.
    @raise Emit_error for extern declarations. *)
val data_of_init : Ir.Modul.init -> const:bool -> data

(** Compile a (verified) module to an object file. [tier] selects the
    backend: [0] is the single-pass baseline ({!Codegen.Baseline}),
    anything else (default [1]) the optimizing backend. [cost]
    accumulates the modelled backend work.
    @raise Emit_error on an alias whose base is not defined here. *)
val of_module : ?tier:int -> ?cost:int ref -> Ir.Modul.t -> t

(** Total code size in instructions. *)
val code_size : t -> int
