(** Object-file format: the output of compiling one module (one fragment).

    A symbol is either machine code or initialized data with relocations
    (8-byte absolute slots naming other symbols). An alias is a second
    name for a definition in the *same* object — the innate constraint
    from paper Section 2.3 is enforced here: emitting an alias whose base
    is not defined in this object is an error. *)

type data = {
  d_bytes : Bytes.t;
  d_relocs : (int * string) list;  (** (byte offset, target symbol) *)
  d_const : bool;
}

type def = Code of Codegen.Mach.mfunc | Data of data

type sym = {
  s_name : string;
  s_global : bool;  (** exported (External linkage) *)
  s_def : def;
  s_comdat : string option;
}

type t = {
  o_name : string;
  o_syms : sym list;
  o_aliases : (string * string * bool) list;  (** (alias, target, global) *)
  o_undefined : string list;  (** referenced but not defined here *)
}

exception Emit_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Emit_error s)) fmt

let data_of_init (init : Ir.Modul.init) ~const =
  match init with
  | Ir.Modul.Bytes s ->
    { d_bytes = Bytes.of_string s; d_relocs = []; d_const = const }
  | Ir.Modul.Words (ty, ws) ->
    let w = Ir.Types.size_of ty in
    let b = Bytes.make (max 1 (w * List.length ws)) '\x00' in
    List.iteri
      (fun i v ->
        match w with
        | 1 -> Bytes.set b i (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
        | 2 -> Bytes.set_uint16_le b (i * 2) (Int64.to_int (Int64.logand v 0xFFFFL))
        | 4 -> Bytes.set_int32_le b (i * 4) (Int64.to_int32 v)
        | 8 -> Bytes.set_int64_le b (i * 8) v
        | _ -> error "bad word size %d" w)
      ws;
    { d_bytes = b; d_relocs = []; d_const = const }
  | Ir.Modul.Symbols ss ->
    let b = Bytes.make (max 1 (8 * List.length ss)) '\x00' in
    { d_bytes = b; d_relocs = List.mapi (fun i s -> (i * 8, s)) ss; d_const = const }
  | Ir.Modul.Zero n -> { d_bytes = Bytes.make (max 1 n) '\x00'; d_relocs = []; d_const = const }
  | Ir.Modul.Extern -> error "cannot emit extern declaration as data"

(** Compile a module to an object file. The module must verify.

    [tier] selects the backend: [0] routes every function through the
    single-pass baseline emitter ({!Codegen.Baseline}), anything else
    (default [1]) through the optimizing backend. [cost] accumulates
    the modelled backend work (see {!Codegen.Emit.compile_func}). *)
let of_module ?(tier = 1) ?cost (m : Ir.Modul.t) =
  let compile =
    if tier = 0 then Codegen.Baseline.compile_func ?cost
    else Codegen.Emit.compile_func ?cost
  in
  let syms = ref [] in
  let aliases = ref [] in
  let defined = Hashtbl.create 32 in
  List.iter
    (fun gv ->
      match gv with
      | Ir.Modul.Fun f when not (Ir.Func.is_declaration f) ->
        let mf = compile f in
        Hashtbl.replace defined f.Ir.Func.name ();
        syms :=
          {
            s_name = f.Ir.Func.name;
            s_global = f.Ir.Func.linkage = Ir.Func.External;
            s_def = Code mf;
            s_comdat = f.Ir.Func.comdat;
          }
          :: !syms
      | Ir.Modul.Fun _ -> ()
      | Ir.Modul.Var v when v.Ir.Modul.ginit <> Ir.Modul.Extern ->
        Hashtbl.replace defined v.Ir.Modul.gname ();
        syms :=
          {
            s_name = v.Ir.Modul.gname;
            s_global = v.Ir.Modul.glinkage = Ir.Func.External;
            s_def = Data (data_of_init v.Ir.Modul.ginit ~const:v.Ir.Modul.gconst);
            s_comdat = v.Ir.Modul.gcomdat;
          }
          :: !syms
      | Ir.Modul.Var _ -> ()
      | Ir.Modul.Alias a ->
        aliases :=
          (a.Ir.Modul.aname, a.Ir.Modul.atarget, a.Ir.Modul.alinkage = Ir.Func.External)
          :: !aliases)
    (Ir.Modul.globals m);
  (* innate constraint: alias bases must be defined in this object *)
  List.iter
    (fun (alias, target, _) ->
      if not (Hashtbl.mem defined target) then
        error "alias @%s: base symbol @%s is not defined in module %s" alias target
          m.Ir.Modul.mname)
    !aliases;
  (* undefined references *)
  let undef = ref [] in
  List.iter
    (fun gv ->
      Ir.Uses.SSet.iter
        (fun s ->
          if (not (Hashtbl.mem defined s)) && not (List.mem s !undef) then
            undef := s :: !undef)
        (Ir.Uses.of_gvalue gv))
    (Ir.Modul.globals m);
  {
    o_name = m.Ir.Modul.mname;
    o_syms = List.rev !syms;
    o_aliases = List.rev !aliases;
    o_undefined = List.rev !undef;
  }

(** Total code size in instructions (for statistics). *)
let code_size obj =
  List.fold_left
    (fun acc s ->
      match s.s_def with
      | Code mf -> acc + Array.length mf.Codegen.Mach.mf_code
      | Data _ -> acc)
    0 obj.o_syms
