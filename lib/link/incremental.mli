(** Incremental relinking: a persistent link state that lets a refresh
    pay only for the fragments that actually changed.

    A full link through this module places every object into a private
    {e address slab} — a contiguous code range (16-byte call slots) and
    a contiguous data range, both padded to a power of two so the
    object can grow in place. Because an unchanged object keeps its
    slab, its symbols keep their addresses across refreshes, and a
    subsequent {!relink} with a small [changed] set only

    - re-places the changed objects' symbols inside their slabs,
    - re-patches the changed objects' own data relocations, and
    - uses a {e reverse relocation index} (symbol -> inbound reference
      sites) to fix up the few slots in {e other} objects that point at
      a symbol which moved,

    instead of re-resolving the whole program. A failed patch is
    observably a no-op: the symbol tables are patched in place —
    touching O(changed) bindings rather than copying O(program) tables —
    under an undo journal that restores every touched binding before any
    exception escapes, and data bytes are copy-on-write, so a mid-patch
    failure — including an injected ["link.patch"] fault — leaves the
    previous executable serving, exactly like a failed full link. (The
    sharing cuts the other way too: after a {e successful} patch, an exe
    value captured before it keeps its byte image but reads the updated
    symbol tables.)

    The patch path {e falls back to a full link} (same diagnostics,
    fresh slabs) whenever it cannot prove the cheap path safe: first
    link, object list changed, a host symbol {e removed}, a changed
    object's exported symbol set / alias list / COMDAT keys changed, a
    slab outgrown, a reference it cannot resolve against the existing
    tables, or a symbol collision (so [Duplicate_symbol] /
    [Undefined_symbol] are always raised by the full path with their
    usual diagnostics).

    {e Host-symbol slabs}: host symbols live in their own slab (16-byte
    thunk addresses below the code base) with a cursor persisted in the
    link state, so {e adding} a host symbol — or a changed object
    referencing one for the first time — patches incrementally: the new
    name gets the next thunk address off the cursor. Host calls resolve
    by name at run time, so cursor-order placement is observably
    identical to the full link's.

    {e Slab compaction}: when a changed object outgrows its slab the
    patch falls back, and the full link re-lays that slab with capacity
    for the recorded {e high-water} shape so the growth is absorbed
    next time. Repeated overflows (address space ballooning, stats
    visible as [st_overflows]) trigger a compaction: the inflation is
    dropped and the next full link lays slabs out tight again
    ([st_compactions]).

    Torn patches are detected: every re-placed symbol and every patched
    relocation slot is verified after patching; a mismatch (e.g. the
    ["link.patch"] torn fault corrupting its own output) raises
    {!Linker.Link_error}, which callers treat like any link failure.

    Cost model: a full link costs [2000 + 40 * symbols_resolved] cycles
    (unchanged from {!Linker.link_cost}); an incremental patch costs
    [200 + 40 * (symbols_patched + relocs_patched)] — the work actually
    done. *)

type t

(** Work and outcome of the most recent {!relink}. *)
type link_stats = {
  ls_incremental : bool;  (** served by the patch path *)
  ls_symbols_patched : int;  (** symbols (and aliases) re-placed *)
  ls_relocs_patched : int;  (** 8-byte slots rewritten (own + inbound) *)
  ls_resolved : int;  (** full-link resolution work; 0 on a patch *)
  ls_cost : int;  (** modelled cycles, see the cost model above *)
}

(** Cumulative counters since {!create}. *)
type stats = {
  mutable st_full : int;  (** full (re)links, including fallbacks *)
  mutable st_incremental : int;  (** patch-path relinks *)
  mutable st_fallbacks : int;  (** patch attempts that fell back *)
  mutable st_symbols_patched : int;
  mutable st_relocs_patched : int;
  mutable st_overflows : int;  (** fallbacks caused by a slab outgrown *)
  mutable st_compactions : int;  (** high-water inflation drops *)
}

(** Slab geometry, exposed for tests and diagnostics. *)
type slab_info = {
  si_obj : string;
  si_code_base : int;
  si_code_cap : int;  (** capacity in 16-byte code slots *)
  si_data_base : int;
  si_data_cap : int;  (** capacity in bytes *)
}

(** Fresh, empty link state: the first {!relink} is always full. *)
val create : unit -> t

(** Growth-padding policy (exposed for tests): capacity reserved for
    [n] code symbols (slots) / [n] bytes of data. *)
val code_capacity : int -> int

val data_capacity : int -> int

(** [relink t ~changed objs] links [objs] (same meaning as
    {!Linker.link}), reusing the previous link when possible. [changed]
    names the objects (by [o_name]) whose contents differ from the
    previous call; every other object must be byte-identical to what it
    was. [incremental:false] forces a full link (fresh slabs).

    Declares the ["link"] fault site (every call) and the
    ["link.patch"] site (patch path only; supports raise / transient /
    torn kinds).
    @raise Linker.Duplicate_symbol and
    @raise Linker.Undefined_symbol with the same diagnostics as a full
    {!Linker.link} (the patch path falls back rather than diagnose)
    @raise Linker.Link_error when a torn patch is detected *)
val relink :
  ?incremental:bool ->
  ?host:string list ->
  t ->
  changed:string list ->
  Objfile.t list ->
  Linker.exe

(** Most recent link's work; meaningful after the first {!relink}. *)
val last : t -> link_stats

(** Absolute (address, value) pairs of every 8-byte data slot the most
    recent {e successful incremental} patch rewrote — the byte-level
    delta an OSR migration replays into a live VM's memory (see
    [Vm.request_osr]). [[]] when the last link was full: no delta is
    known, so a migration must be refused and the execution restarted
    on the new image. *)
val last_slots : t -> (int * int64) list

val stats : t -> stats

(** Slab geometry of the committed link, in link order; [[]] before the
    first link. *)
val slabs : t -> slab_info list

(** Drop all state: the next {!relink} is full. *)
val reset : t -> unit

(** Overflows tolerated before the automatic compaction (exposed for
    tests). *)
val compact_threshold : int

(** Force a compaction: drop the overflow high-water capacity inflation
    {e and} the link state, so the next {!relink} is a full link with
    tight slabs. Counted in [st_compactions]. *)
val compact : t -> unit
