(** Structural digesting of modules — the content address of a fragment.

    [Odin.Session] keys its object cache by the complete compiler input:
    the instrumented fragment IR plus the optimization bound. Digesting
    via the printer materializes a large formatted string for every
    scheduled fragment on every rebuild; this module instead folds the
    module into a digest with one visitor pass over instructions and a
    compact binary encoding — no [Printf], no intermediate lines.

    The encoding is unambiguous: every constructor is tagged, strings
    are length-prefixed and lists are count-prefixed, so decoding (if we
    ever wrote one) would be unique. Consequently two modules produce
    equal digests exactly when they are structurally equal — the same
    equivalence the printer induces. The cache tests assert that the
    printed and structural keys collide/differ identically. *)

let add_int b n =
  (* fits all counts/sizes we emit; 32 bits keeps the buffer compact *)
  Buffer.add_int32_le b (Int32.of_int n)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let add_list add b l =
  add_int b (List.length l);
  List.iter (add b) l

let add_opt add b = function
  | None -> Buffer.add_char b '\x00'
  | Some v ->
    Buffer.add_char b '\x01';
    add b v

let add_bool b v = Buffer.add_char b (if v then '\x01' else '\x00')

let add_ty b (ty : Types.ty) =
  Buffer.add_char b
    (match ty with
    | I1 -> 'a'
    | I8 -> 'b'
    | I16 -> 'c'
    | I32 -> 'd'
    | I64 -> 'e'
    | Ptr -> 'p'
    | Void -> 'v')

let add_value b (v : Ins.value) =
  match v with
  | Const (ty, n) ->
    Buffer.add_char b 'C';
    add_ty b ty;
    Buffer.add_int64_le b n
  | Reg (ty, name) ->
    Buffer.add_char b 'R';
    add_ty b ty;
    add_str b name
  | Global name ->
    Buffer.add_char b 'G';
    add_str b name
  | Blockaddr (fn, label) ->
    Buffer.add_char b 'B';
    add_str b fn;
    add_str b label
  | Undef ty ->
    Buffer.add_char b 'U';
    add_ty b ty

let binop_tag : Ins.binop -> char = function
  | Add -> 'a'
  | Sub -> 's'
  | Mul -> 'm'
  | Sdiv -> 'd'
  | Udiv -> 'D'
  | Srem -> 'r'
  | Urem -> 'R'
  | And -> '&'
  | Or -> '|'
  | Xor -> '^'
  | Shl -> '<'
  | Lshr -> '>'
  | Ashr -> 'A'

let icmp_tag : Ins.icmp -> char = function
  | Eq -> 'e'
  | Ne -> 'n'
  | Slt -> 'l'
  | Sle -> 'L'
  | Sgt -> 'g'
  | Sge -> 'G'
  | Ult -> 'u'
  | Ule -> 'U'
  | Ugt -> 't'
  | Uge -> 'T'

let cast_tag : Ins.cast -> char = function
  | Zext -> 'z'
  | Sext -> 's'
  | Trunc -> 't'
  | Bitcast -> 'b'
  | Ptrtoint -> 'p'
  | Inttoptr -> 'i'

let add_kind b (k : Ins.kind) =
  match k with
  | Binop (op, x, y) ->
    Buffer.add_char b 'B';
    Buffer.add_char b (binop_tag op);
    add_value b x;
    add_value b y
  | Icmp (p, x, y) ->
    Buffer.add_char b 'I';
    Buffer.add_char b (icmp_tag p);
    add_value b x;
    add_value b y
  | Select (c, x, y) ->
    Buffer.add_char b 'S';
    add_value b c;
    add_value b x;
    add_value b y
  | Cast (c, x) ->
    Buffer.add_char b 'C';
    Buffer.add_char b (cast_tag c);
    add_value b x
  | Load p ->
    Buffer.add_char b 'L';
    add_value b p
  | Store (v, p) ->
    Buffer.add_char b 's';
    add_value b v;
    add_value b p
  | Gep (base, idx, sz) ->
    Buffer.add_char b 'G';
    add_value b base;
    add_value b idx;
    add_int b sz
  | Call (Direct name, args) ->
    Buffer.add_char b 'c';
    add_str b name;
    add_list add_value b args
  | Call (Indirect fn, args) ->
    Buffer.add_char b 'i';
    add_value b fn;
    add_list add_value b args
  | Phi incoming ->
    Buffer.add_char b 'P';
    add_list
      (fun b (label, v) ->
        add_str b label;
        add_value b v)
      b incoming
  | Alloca (ty, count) ->
    Buffer.add_char b 'A';
    add_ty b ty;
    add_int b count

let add_ins b (i : Ins.ins) =
  add_str b i.id;
  add_ty b i.ty;
  add_bool b i.volatile;
  add_kind b i.kind

let add_term b (t : Ins.term) =
  match t with
  | Ret v ->
    Buffer.add_char b 'R';
    add_opt add_value b v
  | Br l ->
    Buffer.add_char b 'b';
    add_str b l
  | Cbr (c, t_, f_) ->
    Buffer.add_char b 'c';
    add_value b c;
    add_str b t_;
    add_str b f_
  | Switch (v, d, cases) ->
    Buffer.add_char b 'S';
    add_value b v;
    add_str b d;
    add_list
      (fun b (n, l) ->
        Buffer.add_int64_le b n;
        add_str b l)
      b cases
  | Unreachable -> Buffer.add_char b 'U'

let add_block b (blk : Func.block) =
  add_str b blk.label;
  add_list add_ins b blk.insns;
  add_term b blk.term

let add_linkage b (l : Func.linkage) =
  Buffer.add_char b (match l with External -> 'E' | Internal -> 'I')

let add_func b (f : Func.t) =
  Buffer.add_char b 'F';
  add_str b f.name;
  add_linkage b f.linkage;
  add_list
    (fun b (ty, name) ->
      add_ty b ty;
      add_str b name)
    b f.params;
  add_ty b f.ret;
  add_opt add_str b f.comdat;
  add_list add_str b f.attrs;
  add_list add_block b f.blocks

let add_init b (i : Modul.init) =
  match i with
  | Bytes s ->
    Buffer.add_char b 'B';
    add_str b s
  | Words (ty, ws) ->
    Buffer.add_char b 'W';
    add_ty b ty;
    add_list (fun b w -> Buffer.add_int64_le b w) b ws
  | Symbols syms ->
    Buffer.add_char b 'S';
    add_list add_str b syms
  | Zero n ->
    Buffer.add_char b 'Z';
    add_int b n
  | Extern -> Buffer.add_char b 'E'

let add_gvar b (g : Modul.gvar) =
  Buffer.add_char b 'V';
  add_str b g.gname;
  add_linkage b g.glinkage;
  add_bool b g.gconst;
  add_opt add_str b g.gcomdat;
  add_init b g.ginit

let add_alias b (a : Modul.alias) =
  Buffer.add_char b 'A';
  add_str b a.aname;
  add_linkage b a.alinkage;
  add_str b a.atarget

let add_gvalue b (g : Modul.gvalue) =
  match g with
  | Fun f -> add_func b f
  | Var v -> add_gvar b v
  | Alias a -> add_alias b a

let add_module b (m : Modul.t) =
  add_str b m.mname;
  add_list add_gvalue b (Modul.globals m)

(** Digest of the structural encoding of [m]. Equal iff the modules are
    structurally equal (same equivalence as comparing printed IR). *)
let module_digest (m : Modul.t) : Digest.t =
  let b = Buffer.create 4096 in
  add_module b m;
  Digest.bytes (Buffer.to_bytes b)
