(** Parser for the textual IR emitted by {!Print}. Round-tripping modules
    through text is used heavily by the test suite to state inputs
    readably (e.g. the paper's Figure 2 and Figure 4 case studies). *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Line tokenizer                                                      *)
(* ------------------------------------------------------------------ *)

type token =
  | Tword of string
  | Tint of int64
  | Treg of string  (** %name *)
  | Tsym of string  (** @name *)
  | Tstr of string  (** c"..." decoded bytes *)
  | Tpunct of char  (** , ( ) [ ] : ; = *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$'

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = ';' then i := n (* comment to end of line *)
    else if c = '%' || c = '@' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_word_char line.[!j] do incr j done;
      let name = String.sub line start (!j - start) in
      push (if c = '%' then Treg name else Tsym name);
      i := !j
    end
    else if c = 'c' && !i + 1 < n && line.[!i + 1] = '"' then begin
      (* c"..." byte string with \XX escapes *)
      let buf = Buffer.create 16 in
      let j = ref (!i + 2) in
      while !j < n && line.[!j] <> '"' do
        if line.[!j] = '\\' && !j + 2 < n then begin
          let hex = String.sub line (!j + 1) 2 in
          Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex)));
          j := !j + 3
        end
        else begin
          Buffer.add_char buf line.[!j];
          incr j
        end
      done;
      if !j >= n then fail "unterminated string in %S" line;
      push (Tstr (Buffer.contents buf));
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      incr i;
      while !i < n && ((line.[!i] >= '0' && line.[!i] <= '9') || line.[!i] = 'x') do
        incr i
      done;
      let text = String.sub line start (!i - start) in
      (match Int64.of_string_opt text with
      | Some v -> push (Tint v)
      | None -> fail "bad integer %S" text)
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char line.[!i] do incr i done;
      push (Tword (String.sub line start (!i - start)))
    end
    else begin
      push (Tpunct c);
      incr i
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t
let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect_punct s c =
  match peek s with
  | Some (Tpunct p) when p = c -> advance s
  | t -> fail "expected '%c', got %s" c (match t with None -> "eol" | Some _ -> "other")

let eat_punct s c =
  match peek s with
  | Some (Tpunct p) when p = c ->
    advance s;
    true
  | _ -> false

let expect_word s w =
  match peek s with
  | Some (Tword x) when String.equal x w -> advance s
  | _ -> fail "expected %S" w

let word s =
  match peek s with
  | Some (Tword w) ->
    advance s;
    w
  | _ -> fail "expected word"

let ty s =
  let w = word s in
  match Types.of_string w with Some t -> t | None -> fail "unknown type %S" w

(* atom: %r | int | @g | undef | blockaddress(@f, %l); type from context *)
let atom s context_ty =
  match peek s with
  | Some (Treg r) ->
    advance s;
    Ins.Reg (context_ty, r)
  | Some (Tint v) ->
    advance s;
    Ins.Const (context_ty, Types.normalize context_ty v)
  | Some (Tsym g) ->
    advance s;
    Ins.Global g
  | Some (Tword "undef") ->
    advance s;
    Ins.Undef context_ty
  | Some (Tword "blockaddress") ->
    advance s;
    expect_punct s '(';
    let f = match peek s with Some (Tsym g) -> advance s; g | _ -> fail "blockaddress fn" in
    expect_punct s ',';
    let l = match peek s with Some (Treg r) -> advance s; r | _ -> fail "blockaddress label" in
    expect_punct s ')';
    Ins.Blockaddr (f, l)
  | _ -> fail "expected value atom"

(* full value: <ty> <atom> *)
let full_value s =
  let t = ty s in
  atom s t

(* ------------------------------------------------------------------ *)
(* Instruction / terminator parsing                                    *)
(* ------------------------------------------------------------------ *)

let parse_term s =
  match word s with
  | "ret" -> (
    match peek s with
    | Some (Tword "void") ->
      advance s;
      Ins.Ret None
    | _ -> Ins.Ret (Some (full_value s)))
  | "br" -> (
    match peek s with
    | Some (Tword "label") ->
      advance s;
      (match peek s with
      | Some (Treg l) ->
        advance s;
        Ins.Br l
      | _ -> fail "br label")
    | _ ->
      let c = full_value s in
      expect_punct s ',';
      expect_word s "label";
      let a = match peek s with Some (Treg l) -> advance s; l | _ -> fail "cbr" in
      expect_punct s ',';
      expect_word s "label";
      let b = match peek s with Some (Treg l) -> advance s; l | _ -> fail "cbr" in
      Ins.Cbr (c, a, b))
  | "switch" ->
    let v = full_value s in
    expect_punct s ',';
    expect_word s "label";
    let d = match peek s with Some (Treg l) -> advance s; l | _ -> fail "switch" in
    expect_punct s '[';
    let cases = ref [] in
    let rec loop () =
      match peek s with
      | Some (Tpunct ']') -> advance s
      | Some (Tint k) ->
        advance s;
        expect_punct s ':';
        expect_word s "label";
        (match peek s with
        | Some (Treg l) ->
          advance s;
          cases := (k, l) :: !cases
        | _ -> fail "switch case label");
        ignore (eat_punct s ',');
        loop ()
      | _ -> fail "switch case"
    in
    loop ();
    Ins.Switch (v, d, List.rev !cases)
  | "unreachable" -> Ins.Unreachable
  | w -> fail "unknown terminator %S" w

let is_term_line toks =
  match toks with
  | Tword ("ret" | "br" | "switch" | "unreachable") :: _ -> true
  | _ -> false

let parse_ins s =
  let id, has_result =
    match peek s with
    | Some (Treg r) ->
      advance s;
      expect_punct s '=';
      (r, true)
    | _ -> ("", false)
  in
  let volatile =
    match peek s with
    | Some (Tword "volatile") ->
      advance s;
      true
    | _ -> false
  in
  let op = word s in
  let mk ty kind = Ins.mk ~volatile ~id ~ty kind in
  match (Ins.binop_of_string op, op) with
  | Some bop, _ ->
    let t = ty s in
    let a = atom s t in
    expect_punct s ',';
    let b = atom s t in
    mk t (Ins.Binop (bop, a, b))
  | None, "icmp" ->
    let pred =
      match Ins.icmp_of_string (word s) with
      | Some p -> p
      | None -> fail "bad icmp predicate"
    in
    let t = ty s in
    let a = atom s t in
    expect_punct s ',';
    let b = atom s t in
    mk Types.I1 (Ins.Icmp (pred, a, b))
  | None, "select" ->
    let c = full_value s in
    expect_punct s ',';
    let a = full_value s in
    expect_punct s ',';
    let b = full_value s in
    mk (Ins.value_ty a) (Ins.Select (c, a, b))
  | None, ("zext" | "sext" | "trunc" | "bitcast" | "ptrtoint" | "inttoptr") ->
    let c = Option.get (Ins.cast_of_string op) in
    let v = full_value s in
    expect_word s "to";
    let t = ty s in
    mk t (Ins.Cast (c, v))
  | None, "load" ->
    let t = ty s in
    expect_punct s ',';
    let p = full_value s in
    mk t (Ins.Load p)
  | None, "store" ->
    let v = full_value s in
    expect_punct s ',';
    let p = full_value s in
    mk Types.Void (Ins.Store (v, p))
  | None, "gep" ->
    let base = full_value s in
    expect_punct s ',';
    let idx = full_value s in
    expect_punct s ',';
    expect_word s "size";
    let sz = match peek s with Some (Tint v) -> advance s; Int64.to_int v | _ -> fail "gep size" in
    mk Types.Ptr (Ins.Gep (base, idx, sz))
  | None, "call" ->
    let rt = ty s in
    let callee =
      match peek s with
      | Some (Tsym g) ->
        advance s;
        Ins.Direct g
      | _ -> Ins.Indirect (full_value s)
    in
    expect_punct s '(';
    let args = ref [] in
    let rec loop () =
      match peek s with
      | Some (Tpunct ')') -> advance s
      | _ ->
        args := full_value s :: !args;
        if eat_punct s ',' then loop () else (expect_punct s ')')
    in
    loop ();
    if has_result && rt = Types.Void then fail "void call with result";
    mk rt (Ins.Call (callee, List.rev !args))
  | None, "phi" ->
    let t = ty s in
    let incoming = ref [] in
    let rec loop () =
      if eat_punct s '[' then begin
        let v = atom s t in
        expect_punct s ',';
        (match peek s with
        | Some (Treg l) ->
          advance s;
          incoming := (l, v) :: !incoming
        | _ -> fail "phi label");
        expect_punct s ']';
        if eat_punct s ',' then loop ()
      end
    in
    loop ();
    mk t (Ins.Phi (List.rev !incoming))
  | None, "alloca" ->
    let t = ty s in
    expect_punct s ',';
    let n = match peek s with Some (Tint v) -> advance s; Int64.to_int v | _ -> fail "alloca count" in
    mk Types.Ptr (Ins.Alloca (t, n))
  | None, other -> fail "unknown instruction %S" other

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_linkage s =
  match peek s with
  | Some (Tword "internal") ->
    advance s;
    Func.Internal
  | Some (Tword "external") ->
    advance s;
    Func.External
  | _ -> Func.External

let parse_init s =
  match peek s with
  | Some (Tstr bytes) ->
    advance s;
    Modul.Bytes bytes
  | Some (Tword "zeroinitializer") ->
    advance s;
    (match peek s with
    | Some (Tint n) ->
      advance s;
      Modul.Zero (Int64.to_int n)
    | _ -> fail "zeroinitializer size")
  | Some (Tword "extern") ->
    advance s;
    Modul.Extern
  | Some (Tpunct '[') -> (
    advance s;
    match peek s with
    | Some (Tword "ptr") ->
      advance s;
      expect_word s "x";
      let syms = ref [] in
      let rec loop () =
        match peek s with
        | Some (Tsym g) ->
          advance s;
          syms := g :: !syms;
          if eat_punct s ',' then loop ()
        | _ -> ()
      in
      loop ();
      expect_punct s ']';
      Modul.Symbols (List.rev !syms)
    | _ ->
      let t = ty s in
      expect_word s "x";
      let ws = ref [] in
      let rec loop () =
        match peek s with
        | Some (Tint v) ->
          advance s;
          ws := v :: !ws;
          if eat_punct s ',' then loop ()
        | _ -> ()
      in
      loop ();
      expect_punct s ']';
      Modul.Words (t, List.rev !ws))
  | _ -> fail "bad global initializer"

(** Parse a module from its textual form. *)
let module_of_string ?(name = "parsed") text =
  let m = Modul.create ~name () in
  let lines = String.split_on_char '\n' text in
  let cur_fn : Func.t option ref = ref None in
  let cur_blocks : Func.block list ref = ref [] in
  let cur_block : Func.block option ref = ref None in
  let finish_block () =
    match !cur_block with
    | None -> ()
    | Some b ->
      cur_blocks := !cur_blocks @ [ b ];
      cur_block := None
  in
  let finish_fn () =
    finish_block ();
    (match !cur_fn with
    | None -> ()
    | Some f ->
      f.Func.blocks <- !cur_blocks;
      Modul.add m (Modul.Fun f));
    cur_fn := None;
    cur_blocks := []
  in
  let parse_fn_header s ~is_define =
    let linkage = parse_linkage s in
    (* Accept both forms: "define <linkage> @f(...) <ret>" (canonical) and
       the LLVM-style "define <linkage> <ret> @f(...)". *)
    let pre_ret =
      match peek s with
      | Some (Tword w) -> (
        match Types.of_string w with
        | Some t ->
          advance s;
          Some t
        | None -> None)
      | _ -> None
    in
    let name =
      match peek s with Some (Tsym g) -> advance s; g | _ -> fail "function name"
    in
    expect_punct s '(';
    let params = ref [] in
    let rec loop () =
      match peek s with
      | Some (Tpunct ')') -> advance s
      | _ ->
        let t = ty s in
        (match peek s with
        | Some (Treg p) ->
          advance s;
          params := (t, p) :: !params
        | _ -> fail "param name");
        if eat_punct s ',' then loop () else expect_punct s ')'
    in
    loop ();
    let comdat =
      match peek s with
      | Some (Tword "comdat") ->
        advance s;
        expect_punct s '(';
        let key = word s in
        expect_punct s ')';
        Some key
      | _ -> None
    in
    let ret =
      match pre_ret with
      | Some t -> t
      | None -> ty s
    in
    let f = Func.mk ~linkage ?comdat ~name ~params:(List.rev !params) ~ret [] in
    if is_define then begin
      cur_fn := Some f;
      cur_blocks := []
    end
    else Modul.add m (Modul.Fun f)
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = ';' then ()
      else if line = "}" then finish_fn ()
      else begin
        let toks = tokenize line in
        match toks with
        | [] -> ()
        | Tword "define" :: _ ->
          finish_fn ();
          let s = { toks = List.tl toks } in
          parse_fn_header s ~is_define:true;
          ignore (eat_punct s '{')
        | Tword "declare" :: _ ->
          finish_fn ();
          let s = { toks = List.tl toks } in
          parse_fn_header s ~is_define:false
        | Tsym gname :: Tpunct '=' :: rest -> (
          let s = { toks = rest } in
          let linkage = parse_linkage s in
          match peek s with
          | Some (Tword "alias") ->
            advance s;
            (match peek s with
            | Some (Tsym target) ->
              advance s;
              ignore (Modul.add_alias m ~linkage ~name:gname ~target ())
            | _ -> fail "alias target")
          | Some (Tword (("constant" | "global") as kw)) ->
            advance s;
            let init = parse_init s in
            ignore
              (Modul.add_var m ~linkage ~const:(String.equal kw "constant") ~name:gname
                 init)
          | _ -> fail "bad global %S" line)
        | _ when !cur_fn <> None -> (
          (* inside a function: label, instruction, or terminator *)
          match toks with
          | [ Tword label; Tpunct ':' ] | [ Treg label; Tpunct ':' ] ->
            finish_block ();
            cur_block := Some { Func.label; insns = []; term = Ins.Unreachable }
          | _ when is_term_line toks -> (
            match !cur_block with
            | None -> fail "terminator outside block: %S" line
            | Some b ->
              let s = { toks } in
              b.Func.term <- parse_term s)
          | _ -> (
            match !cur_block with
            | None -> fail "instruction outside block: %S" line
            | Some b ->
              let s = { toks } in
              let i = parse_ins s in
              b.Func.insns <- b.Func.insns @ [ i ]))
        | _ -> fail "unexpected top-level line %S" line
      end)
    lines;
  finish_fn ();
  m
