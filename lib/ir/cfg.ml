(** Control-flow graph utilities over a function's blocks. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

let successors (b : Func.block) = Ins.successors b.term

(** Map from block label to its predecessors' labels. *)
let predecessors (fn : Func.t) =
  let add map label pred =
    let old = Option.value ~default:[] (SMap.find_opt label map) in
    SMap.add label (old @ [ pred ]) map
  in
  List.fold_left
    (fun map b ->
      let map = if SMap.mem b.Func.label map then map else SMap.add b.Func.label [] map in
      List.fold_left (fun map succ -> add map succ b.Func.label) map (successors b))
    SMap.empty fn.Func.blocks

(** Labels reachable from the entry block. *)
let reachable (fn : Func.t) =
  match fn.Func.blocks with
  | [] -> SSet.empty
  | entry :: _ ->
    let index =
      List.fold_left (fun m b -> SMap.add b.Func.label b m) SMap.empty fn.Func.blocks
    in
    let rec walk seen label =
      if SSet.mem label seen then seen
      else begin
        let seen = SSet.add label seen in
        match SMap.find_opt label index with
        | None -> seen
        | Some b -> List.fold_left walk seen (successors b)
      end
    in
    walk SSet.empty entry.Func.label

(** Blocks in reverse post-order from the entry. Unreachable blocks are
    appended at the end in source order (so passes still see them). *)
let rpo (fn : Func.t) =
  match fn.Func.blocks with
  | [] -> []
  | entry :: _ ->
    let index =
      List.fold_left (fun m b -> SMap.add b.Func.label b m) SMap.empty fn.Func.blocks
    in
    let seen = Hashtbl.create 32 in
    let post = ref [] in
    let rec dfs label =
      if not (Hashtbl.mem seen label) then begin
        Hashtbl.replace seen label ();
        (match SMap.find_opt label index with
        | None -> ()
        | Some b ->
          List.iter dfs (successors b);
          post := b :: !post)
      end
    in
    dfs entry.Func.label;
    let ordered = !post in
    let rest =
      List.filter (fun b -> not (Hashtbl.mem seen b.Func.label)) fn.Func.blocks
    in
    ordered @ rest

(** Remove blocks unreachable from entry, fixing up phi nodes whose
    incoming edges disappear. Returns true if anything changed. *)
let remove_unreachable (fn : Func.t) =
  if fn.Func.blocks = [] then false
  else begin
    let live = reachable fn in
    let dead, kept =
      List.partition (fun b -> not (SSet.mem b.Func.label live)) fn.Func.blocks
    in
    if dead = [] then false
    else begin
      fn.Func.blocks <- kept;
      let dead_labels =
        List.fold_left (fun s b -> SSet.add b.Func.label s) SSet.empty dead
      in
      let fix_ins (i : Ins.ins) =
        match i.kind with
        | Ins.Phi incoming ->
          i.kind <-
            Ins.Phi (List.filter (fun (l, _) -> not (SSet.mem l dead_labels)) incoming)
        | _ -> ()
      in
      List.iter (fun b -> List.iter fix_ins b.Func.insns) kept;
      true
    end
  end

(** Every [Blockaddr] in the module, grouped by target function: maps a
    function name to the labels of its blocks whose address is taken
    anywhere; such blocks must not be removed or merged away. One module
    scan answers the question for all functions — per-function passes
    must not rescan the module per function (that is quadratic). *)
let address_taken_map (m : Modul.t) =
  let map : (string, SSet.t) Hashtbl.t = Hashtbl.create 16 in
  let scan_value = function
    | Ins.Blockaddr (f, l) ->
      Hashtbl.replace map f
        (SSet.add l (Option.value ~default:SSet.empty (Hashtbl.find_opt map f)))
    | _ -> ()
  in
  let scan_func (g : Func.t) =
    Func.iter_blocks
      (fun b ->
        List.iter (fun i -> List.iter scan_value (Ins.operands i)) b.Func.insns;
        List.iter scan_value (Ins.term_operands b.Func.term))
      g
  in
  List.iter
    (function
      | Modul.Fun g when not (Func.is_declaration g) -> scan_func g
      | _ -> ())
    (Modul.globals m);
  map

(** Labels of [fn]'s blocks whose address is taken via [Blockaddr]
    anywhere in the module. Scans the whole module — when asking for
    many functions, build {!address_taken_map} once instead. *)
let address_taken_labels (fn : Func.t) (m : Modul.t) =
  Option.value ~default:SSet.empty
    (Hashtbl.find_opt (address_taken_map m) fn.Func.name)
