(** Structural digesting of modules — the content address of a fragment.

    A single visitor pass folds a module into an unambiguous binary
    encoding (tagged constructors, length-prefixed strings) and digests
    it, replacing the printed-IR digest on the session's object-cache
    hot path. Two modules get equal digests exactly when they are
    structurally equal — the same equivalence the printer induces. *)

(** Append the structural encoding of a module to a buffer. Exposed so
    callers can prefix additional key material (fragment id,
    optimization bound) before digesting. *)
val add_module : Buffer.t -> Modul.t -> unit

(** Digest of the structural encoding of [m]. *)
val module_digest : Modul.t -> Digest.t
