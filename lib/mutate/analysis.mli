(** Kill-matrix mutation campaigns over a probe-toggling session farm.

    The amortization argument (the whole point of serving mutation
    testing from Odin): the target is compiled {e once} per worker, and
    every one of the campaign's mutants after that costs one batched
    probe toggle — disarm the previous mutant, arm the next — served by
    one O(changed) schedule pass and one incremental relink. A
    thousand-mutant campaign does a thousand relinks, not a thousand
    compiles.

    Two distribution modes, same contract as the fuzzing farm
    ({!Farm.run} / {!Proc.run}): [Domains] shares one process and one
    content-addressed object cache; [Procs] supervises stateless child
    processes with restart/retire and preemptive watchdog. Per-mutant
    verdicts are pure functions of (mutant, suite), so the merged
    matrix is bit-identical for any worker count and either mode. *)

(** Per-(mutant, test) outcome: one kill-matrix cell. *)
type outcome =
  | Pass  (** same return value as the pristine run *)
  | Kill  (** different return value *)
  | Crash  (** VM trap the pristine run did not raise *)
  | Hang  (** step budget or wall-clock deadline exhausted *)

(** Per-mutant verdict, folded over its row of the matrix. *)
type verdict =
  | Killed  (** some test killed or crashed it *)
  | Timeout  (** no kill, but some test hung — detected by bound *)
  | Survived  (** indistinguishable from pristine under this suite *)

val outcome_char : outcome -> char
val verdict_to_string : verdict -> string

(** One kill-matrix row. Pure function of (mutant, suite): contains no
    scheduling artifacts, so rows compare structurally across worker
    counts and farm modes. *)
type row = {
  r_id : int;  (** mutant index in generation order, 0-based *)
  r_desc : string;  (** e.g. ["aor add->sub"] *)
  r_family : Gen.family;
  r_target : string;  (** function holding the mutated site *)
  r_outcomes : outcome list;  (** suite order *)
  r_verdict : verdict;
  r_cycles : int;  (** VM cycles summed over the row's runs *)
}

(** The merged kill matrix; rows ascending by mutant id. *)
type matrix = {
  m_rows : row list;
  m_tests : int;
  m_generated : int;
  m_killed : int;
  m_survived : int;
  m_timeout : int;
  m_score : float;  (** percent: detected (killed + timeout) / generated *)
}

(** Campaign cost accounting, kept out of {!matrix} because link
    traffic depends on worker count and assignment order. *)
type stats = {
  s_initial_links : int;  (** full compiles: one per session built *)
  s_full_links : int;  (** total full relinks, initial builds included *)
  s_incr_links : int;  (** mutant refreshes served by the patch path *)
  s_symbols_patched : int;  (** symbols re-placed across all refreshes *)
  s_restarts : int;  (** [Procs] worker restarts *)
  s_retired : (int * string) list;  (** [Procs] workers given up on *)
  s_resumed_rows : int;  (** rows loaded from a checkpoint, not re-run *)
}

type mode = Domains | Procs

type config = {
  mc_workers : int;
  mc_mode : mode;
  mc_families : Gen.family list;
  mc_limit : int option;  (** keep only the first N mutants *)
  mc_max_steps : int;  (** per-test VM step budget (the [Hang] bound) *)
  mc_deadline : float option;  (** per-test wall-clock backstop, seconds *)
  mc_chunk : int;  (** mutants dealt per worker per round *)
  mc_checkpoint : string option;  (** publish a checkpoint every round *)
  mc_resume : bool;  (** continue from [mc_checkpoint] if loadable *)
  mc_stop_after : int option;
      (** stop once this many mutants are done (testing hook: simulate
          a mid-campaign crash between rounds) *)
  mc_worker_argv : string array option;
      (** [Procs] re-exec command line (default
          [[| Sys.executable_name; "mutate-worker" |]]) *)
  mc_worker_timeout : float;  (** [Procs] heartbeat deadline, seconds *)
  mc_max_restarts : int;  (** [Procs] restart budget per worker *)
}

val default_config : config

(** Run a campaign over [base]. The suite is a list of inputs for
    [entry]; a pristine baseline run of the whole suite anchors the
    kill comparison.
    @raise Failure when the pristine baseline itself traps or hangs
    @raise Invalid_argument when a resume checkpoint targets a
      different module, operator set or suite *)
val run :
  ?telemetry:Telemetry.Recorder.t ->
  ?journal:Telemetry.Journal.t ->
  ?journal_path:string ->
  ?host:string list ->
  entry:string ->
  suite:string list ->
  config ->
  Ir.Modul.t ->
  matrix * stats

(** Render the kill matrix: one row per mutant ([K]/[.]/[!]/[T] cells
    per test), verdict column, then the per-operator breakdown and the
    mutation score. *)
val render : matrix -> string

(** Child-process entry point for [Procs] campaigns (the [mutate-worker]
    re-exec marker): speaks the [mutate.*] {!Wire.Blob} sub-protocol on
    stdin/stdout and never returns. *)
val worker_main : unit -> 'a
