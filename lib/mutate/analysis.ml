(** Kill-matrix campaign driver. See the interface for the amortization
    argument; the implementation notes that matter:

    - a mutant transition is ONE batched toggle
      ([Session.refresh_toggles [(prev, false); (next, true)]]): one
      dirty-set drain, one O(changed) schedule pass, one incremental
      relink, regardless of where the two mutants live;
    - per-mutant work is a pure function of (mutant, suite) — workers
      never exchange anything mid-round — so merging rows in mutant-id
      order yields a structurally identical matrix for any worker count
      and either farm mode;
    - the [Procs] supervisor is the fuzzing farm's shape
      ({!Proc.run}): stateless children, restart = re-send the same
      assignments, retire after [mc_max_restarts], preemptive heartbeat
      watchdog, orphaned assignments re-dealt to the lowest-id live
      worker. *)

module Recorder = Telemetry.Recorder
module Journal = Telemetry.Journal
module Json = Telemetry.Json
module Codec = Farm.Wire.Codec

type outcome = Pass | Kill | Crash | Hang
type verdict = Killed | Timeout | Survived

let outcome_char = function
  | Pass -> '.'
  | Kill -> 'K'
  | Crash -> '!'
  | Hang -> 'T'

let verdict_to_string = function
  | Killed -> "killed"
  | Timeout -> "timeout"
  | Survived -> "survived"

type row = {
  r_id : int;
  r_desc : string;
  r_family : Gen.family;
  r_target : string;
  r_outcomes : outcome list;
  r_verdict : verdict;
  r_cycles : int;
}

type matrix = {
  m_rows : row list;
  m_tests : int;
  m_generated : int;
  m_killed : int;
  m_survived : int;
  m_timeout : int;
  m_score : float;
}

type stats = {
  s_initial_links : int;
  s_full_links : int;
  s_incr_links : int;
  s_symbols_patched : int;
  s_restarts : int;
  s_retired : (int * string) list;
  s_resumed_rows : int;
}

type mode = Domains | Procs

type config = {
  mc_workers : int;
  mc_mode : mode;
  mc_families : Gen.family list;
  mc_limit : int option;
  mc_max_steps : int;
  mc_deadline : float option;
  mc_chunk : int;
  mc_checkpoint : string option;
  mc_resume : bool;
  mc_stop_after : int option;
  mc_worker_argv : string array option;
  mc_worker_timeout : float;
  mc_max_restarts : int;
}

let default_config =
  {
    mc_workers = 1;
    mc_mode = Domains;
    mc_families = Gen.all_families;
    mc_limit = None;
    mc_max_steps = 2_000_000;
    mc_deadline = None;
    mc_chunk = 16;
    mc_checkpoint = None;
    mc_resume = false;
    mc_stop_after = None;
    mc_worker_argv = None;
    mc_worker_timeout = 30.;
    mc_max_restarts = 3;
  }

let families_spec families =
  String.concat "," (List.map Gen.family_to_string families)

(* ------------------------------------------------------------------ *)
(* Blob sub-protocol ("mutate.*") and checkpoint codec                 *)
(* ------------------------------------------------------------------ *)

let family_tag = function
  | Gen.Aor -> 0
  | Gen.Ror -> 1
  | Gen.Const -> 2
  | Gen.Sdl -> 3
  | Gen.Brs -> 4

let family_of_tag = function
  | 0 -> Gen.Aor
  | 1 -> Gen.Ror
  | 2 -> Gen.Const
  | 3 -> Gen.Sdl
  | 4 -> Gen.Brs
  | n -> Codec.fail "mutate: bad family tag %d" n

let outcome_tag = function Pass -> 0 | Kill -> 1 | Crash -> 2 | Hang -> 3

let outcome_of_tag = function
  | 0 -> Pass
  | 1 -> Kill
  | 2 -> Crash
  | 3 -> Hang
  | n -> Codec.fail "mutate: bad outcome tag %d" n

let verdict_tag = function Killed -> 0 | Timeout -> 1 | Survived -> 2

let verdict_of_tag = function
  | 0 -> Killed
  | 1 -> Timeout
  | 2 -> Survived
  | n -> Codec.fail "mutate: bad verdict tag %d" n

let w_row b row =
  Codec.w_i64 b row.r_id;
  Codec.w_str b row.r_desc;
  Codec.w_u8 b (family_tag row.r_family);
  Codec.w_str b row.r_target;
  Codec.w_list b (fun b o -> Codec.w_u8 b (outcome_tag o)) row.r_outcomes;
  Codec.w_u8 b (verdict_tag row.r_verdict);
  Codec.w_i64 b row.r_cycles

let r_row c =
  let r_id = Codec.r_i64 c in
  let r_desc = Codec.r_str c in
  let r_family = family_of_tag (Codec.r_u8 c) in
  let r_target = Codec.r_str c in
  let r_outcomes = Codec.r_list c (fun c -> outcome_of_tag (Codec.r_u8 c)) in
  let r_verdict = verdict_of_tag (Codec.r_u8 c) in
  let r_cycles = Codec.r_i64 c in
  { r_id; r_desc; r_family; r_target; r_outcomes; r_verdict; r_cycles }

let blob kind pack =
  let b = Buffer.create 256 in
  pack b;
  Farm.Wire.Blob { bl_kind = kind; bl_data = Buffer.contents b }

let open_blob ~kind data =
  let c = Codec.cursor data in
  ignore kind;
  c

let close_blob ~kind c =
  if not (Codec.at_end c) then Codec.fail "mutate: trailing bytes in %s" kind

(* mutate.init: everything a stateless child needs to rebuild the exact
   session and mutant universe (module text round-trips like the fuzz
   farm's Wire.Init). *)
type winit = {
  wi_id : int;
  wi_entry : string;
  wi_host : string list;
  wi_suite : string list;
  wi_spec : string;  (** comma-joined operator families *)
  wi_limit : int option;
  wi_max_steps : int;
  wi_deadline : float option;
  wi_mod_name : string;
  wi_mod_text : string;
}

let init_blob i =
  blob "mutate.init" (fun b ->
      Codec.w_i64 b i.wi_id;
      Codec.w_str b i.wi_entry;
      Codec.w_list b Codec.w_str i.wi_host;
      Codec.w_list b Codec.w_str i.wi_suite;
      Codec.w_str b i.wi_spec;
      Codec.w_opt b Codec.w_i64 i.wi_limit;
      Codec.w_i64 b i.wi_max_steps;
      Codec.w_opt b Codec.w_f64 i.wi_deadline;
      Codec.w_str b i.wi_mod_name;
      Codec.w_str b i.wi_mod_text)

let init_of_blob data =
  let c = open_blob ~kind:"mutate.init" data in
  let wi_id = Codec.r_i64 c in
  let wi_entry = Codec.r_str c in
  let wi_host = Codec.r_list c Codec.r_str in
  let wi_suite = Codec.r_list c Codec.r_str in
  let wi_spec = Codec.r_str c in
  let wi_limit = Codec.r_opt c Codec.r_i64 in
  let wi_max_steps = Codec.r_i64 c in
  let wi_deadline = Codec.r_opt c Codec.r_f64 in
  let wi_mod_name = Codec.r_str c in
  let wi_mod_text = Codec.r_str c in
  close_blob ~kind:"mutate.init" c;
  {
    wi_id;
    wi_entry;
    wi_host;
    wi_suite;
    wi_spec;
    wi_limit;
    wi_max_steps;
    wi_deadline;
    wi_mod_name;
    wi_mod_text;
  }

let ready_blob ~id ~n_mutants =
  blob "mutate.ready" (fun b ->
      Codec.w_i64 b id;
      Codec.w_i64 b n_mutants)

let ready_of_blob data =
  let c = open_blob ~kind:"mutate.ready" data in
  let id = Codec.r_i64 c in
  let n = Codec.r_i64 c in
  close_blob ~kind:"mutate.ready" c;
  (id, n)

let assign_blob ~round ids =
  blob "mutate.assign" (fun b ->
      Codec.w_i64 b round;
      Codec.w_list b Codec.w_i64 ids)

let assign_of_blob data =
  let c = open_blob ~kind:"mutate.assign" data in
  let round = Codec.r_i64 c in
  let ids = Codec.r_list c Codec.r_i64 in
  close_blob ~kind:"mutate.assign" c;
  (round, ids)

(* worker -> supervisor: rows plus this batch's link accounting *)
let rows_blob ~round ~incr ~full ~patched rows =
  blob "mutate.rows" (fun b ->
      Codec.w_i64 b round;
      Codec.w_i64 b incr;
      Codec.w_i64 b full;
      Codec.w_i64 b patched;
      Codec.w_list b w_row rows)

let rows_of_blob data =
  let c = open_blob ~kind:"mutate.rows" data in
  let round = Codec.r_i64 c in
  let incr = Codec.r_i64 c in
  let full = Codec.r_i64 c in
  let patched = Codec.r_i64 c in
  let rows = Codec.r_list c r_row in
  close_blob ~kind:"mutate.rows" c;
  (round, incr, full, patched, rows)

let ckpt_version = 1

type ckpt = {
  ck_digest : string;  (** target module digest ({!Orch.module_digest}) *)
  ck_spec : string;
  ck_limit : int option;
  ck_tests : int;
  ck_suite_digest : string;
  ck_rows : row list;  (** completed rows, mutant id ascending *)
}

let suite_digest suite =
  Digest.to_hex (Digest.string (String.concat "\x00" suite))

let ckpt_blob ck =
  blob "mutate.ckpt" (fun b ->
      Codec.w_u8 b ckpt_version;
      Codec.w_str b ck.ck_digest;
      Codec.w_str b ck.ck_spec;
      Codec.w_opt b Codec.w_i64 ck.ck_limit;
      Codec.w_i64 b ck.ck_tests;
      Codec.w_str b ck.ck_suite_digest;
      Codec.w_list b w_row ck.ck_rows)

let ckpt_of_blob data =
  let c = open_blob ~kind:"mutate.ckpt" data in
  let v = Codec.r_u8 c in
  if v <> ckpt_version then Codec.fail "mutate: checkpoint version %d" v;
  let ck_digest = Codec.r_str c in
  let ck_spec = Codec.r_str c in
  let ck_limit = Codec.r_opt c Codec.r_i64 in
  let ck_tests = Codec.r_i64 c in
  let ck_suite_digest = Codec.r_str c in
  let ck_rows = Codec.r_list c r_row in
  close_blob ~kind:"mutate.ckpt" c;
  { ck_digest; ck_spec; ck_limit; ck_tests; ck_suite_digest; ck_rows }

(* ------------------------------------------------------------------ *)
(* Single-worker evaluation (both modes, supervisor and child)         *)
(* ------------------------------------------------------------------ *)

type wstate = {
  ws_session : Odin.Session.t;
  ws_mutants : Instr.Probe.t array;  (** generation order = mutant id *)
  ws_entry : string;
  ws_host : string list;
  ws_suite : string list;
  ws_baseline : int64 array;
  ws_max_steps : int;
  ws_deadline : float option;
  mutable ws_armed : Instr.Probe.t option;
  (* link accounting since the last drain *)
  mutable ws_incr : int;
  mutable ws_full : int;
  mutable ws_patched : int;
}

let run_test ~max_steps ~deadline ~entry ~host exe input =
  let vm = Vm.create ~max_steps exe in
  List.iter (fun n -> Vm.register_host vm n (fun _ -> 0L)) host;
  let addr = Vm.write_buffer vm input in
  let result =
    match
      Support.Fault.with_deadline deadline (fun () ->
          Vm.call vm entry [ addr; Int64.of_int (String.length input) ])
    with
    | ret -> Ok ret
    | exception Vm.Fault _ when Vm.budget_exhausted vm -> Error Hang
    | exception Support.Fault.Timed_out _ -> Error Hang
    | exception Vm.Fault _ -> Error Crash
  in
  (result, vm.Vm.cycles)

let baseline_returns ~max_steps ~deadline ~entry ~host session suite =
  Array.of_list
    (List.map
       (fun input ->
         match
           run_test ~max_steps ~deadline ~entry ~host
             (Odin.Session.executable session)
             input
         with
         | Ok ret, _ -> ret
         | Error o, _ ->
           failwith
             (Printf.sprintf
                "mutate: pristine baseline %s on input of %d bytes — raise \
                 max_steps/deadline or fix the suite"
                (match o with
                | Hang -> "exhausted its budget"
                | _ -> "trapped")
                (String.length input)))
       suite)

(** One mutant: batched toggle [(prev, off); (this, on)] → refresh →
    run the whole suite → row. *)
let eval_mutant st id =
  let p = st.ws_mutants.(id) in
  let toggles =
    (match st.ws_armed with
    | Some prev when prev != p -> [ (prev, false) ]
    | _ -> [])
    @ [ (p, true) ]
  in
  st.ws_armed <- Some p;
  (match Odin.Session.refresh_toggles st.ws_session toggles with
  | Some (_, Some ev) ->
    if ev.Odin.Session.ev_link_incremental then
      st.ws_incr <- st.ws_incr + 1
    else st.ws_full <- st.ws_full + 1;
    st.ws_patched <- st.ws_patched + ev.Odin.Session.ev_symbols_patched
  | Some (_, None) (* rolled back: the mutant never reached the image *)
  | None -> ());
  let m =
    match p.Instr.Probe.payload with
    | Instr.Probe.Mutant m -> m
    | _ -> assert false
  in
  let cycles = ref 0 in
  let outcomes =
    List.mapi
      (fun i input ->
        let result, c =
          run_test ~max_steps:st.ws_max_steps ~deadline:st.ws_deadline
            ~entry:st.ws_entry ~host:st.ws_host
            (Odin.Session.executable st.ws_session)
            input
        in
        cycles := !cycles + c;
        match result with
        | Ok ret -> if Int64.equal ret st.ws_baseline.(i) then Pass else Kill
        | Error o -> o)
      st.ws_suite
  in
  let verdict =
    if List.exists (fun o -> o = Kill || o = Crash) outcomes then Killed
    else if List.mem Hang outcomes then Timeout
    else Survived
  in
  {
    r_id = id;
    r_desc = m.Instr.Probe.mut_desc;
    r_family =
      (match Gen.family_of_probe p with Some f -> f | None -> assert false);
    r_target = p.Instr.Probe.target;
    r_outcomes = outcomes;
    r_verdict = verdict;
    r_cycles = !cycles;
  }

(** Disarm whatever is armed: the session's image returns bit-pristine
    (same structural digests → cached objects → no-op patches). *)
let quiesce st =
  match st.ws_armed with
  | None -> ()
  | Some p ->
    st.ws_armed <- None;
    (match Odin.Session.refresh_toggles st.ws_session [ (p, false) ] with
    | Some (_, Some ev) ->
      if ev.Odin.Session.ev_link_incremental then st.ws_incr <- st.ws_incr + 1
      else st.ws_full <- st.ws_full + 1;
      st.ws_patched <- st.ws_patched + ev.Odin.Session.ev_symbols_patched
    | _ -> ())

let drain_links st =
  let r = (st.ws_incr, st.ws_full, st.ws_patched) in
  st.ws_incr <- 0;
  st.ws_full <- 0;
  st.ws_patched <- 0;
  r

let mk_wstate ?objects ?owner ?pool ?telemetry ~families ~limit ~entry ~host
    ~suite ~max_steps ~deadline m =
  let session =
    Odin.Session.create ~keep:[ entry ] ~host
      ?pool ?objects ?owner ?telemetry m
  in
  let mutants = Gen.setup ~families ?limit session in
  (match Odin.Session.try_build session with
  | Odin.Session.Ok | Odin.Session.Degraded _ -> ()
  | Odin.Session.Rolled_back err ->
    failwith ("mutate: initial build rolled back: " ^ err.Odin.Session.err_msg));
  let baseline =
    baseline_returns ~max_steps ~deadline ~entry ~host session suite
  in
  {
    ws_session = session;
    ws_mutants = Array.of_list mutants;
    ws_entry = entry;
    ws_host = host;
    ws_suite = suite;
    ws_baseline = baseline;
    ws_max_steps = max_steps;
    ws_deadline = deadline;
    ws_armed = None;
    ws_incr = 0;
    ws_full = 0;
    ws_patched = 0;
  }

(* ------------------------------------------------------------------ *)
(* Merge + accounting                                                  *)
(* ------------------------------------------------------------------ *)

let merge_rows ~tests rows =
  let rows = List.sort (fun a b -> compare a.r_id b.r_id) rows in
  let count v = List.length (List.filter (fun r -> r.r_verdict = v) rows) in
  let killed = count Killed and timeout = count Timeout in
  let survived = count Survived in
  let generated = List.length rows in
  let score =
    if generated = 0 then 0.
    else 100. *. float_of_int (killed + timeout) /. float_of_int generated
  in
  {
    m_rows = rows;
    m_tests = tests;
    m_generated = generated;
    m_killed = killed;
    m_survived = survived;
    m_timeout = timeout;
    m_score = score;
  }

let record_counters r rows =
  List.iter
    (fun row ->
      let labels = [ ("op", Gen.family_to_string row.r_family) ] in
      Recorder.count r ~labels "mutate.generated";
      Recorder.count r ~labels ("mutate." ^ verdict_to_string row.r_verdict))
    rows

let record_rows_events jr rows =
  match jr with
  | None -> ()
  | Some j ->
    List.iter
      (fun row ->
        Journal.record j ~kind:"mutant"
          [
            ("id", Json.Int row.r_id);
            ("desc", Json.String row.r_desc);
            ("op", Json.String (Gen.family_to_string row.r_family));
            ("target", Json.String row.r_target);
            ("verdict", Json.String (verdict_to_string row.r_verdict));
            ("cycles", Json.Int row.r_cycles);
          ])
      rows

(* ------------------------------------------------------------------ *)
(* Checkpoint plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let publish_ckpt path ck = ignore (Farm.Wire.write_frame_file path (ckpt_blob ck))

let load_ckpt ~digest ~spec ~limit ~tests ~sdigest path =
  match Farm.Wire.load_frame_file path with
  | Error _ -> None
  | Ok (Farm.Wire.Blob { bl_kind = "mutate.ckpt"; bl_data }, _) -> (
    match ckpt_of_blob bl_data with
    | ck ->
      if ck.ck_digest <> digest then
        invalid_arg "mutate: checkpoint is for a different target module";
      if ck.ck_spec <> spec || ck.ck_limit <> limit then
        invalid_arg "mutate: checkpoint operator set differs";
      if ck.ck_tests <> tests || ck.ck_suite_digest <> sdigest then
        invalid_arg "mutate: checkpoint suite differs";
      Some ck
    | exception Farm.Wire.Wire_error _ -> None)
  | Ok _ -> None

(* ------------------------------------------------------------------ *)
(* Round scheduler (shared by both modes)                              *)
(* ------------------------------------------------------------------ *)

(** Deal the next [chunk * n_live] pending mutant ids round-robin over
    the live workers; the deal only decides who computes what. *)
let deal ~chunk pending live =
  let n = List.length live in
  let take = min (chunk * n) (List.length pending) in
  let rec split i acc = function
    | rest when i = take -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (i + 1) (x :: acc) rest
  in
  let batch, rest = split 0 [] pending in
  let shares = Array.make n [] in
  List.iteri (fun k id -> shares.(k mod n) <- id :: shares.(k mod n)) batch;
  let jobs =
    List.mapi (fun k w -> (w, List.rev shares.(k))) live
    |> List.filter (fun (_, ids) -> ids <> [])
  in
  (jobs, rest)

(* ------------------------------------------------------------------ *)
(* Domains mode                                                        *)
(* ------------------------------------------------------------------ *)

let run_domains ~r ~jr ~host ~entry ~suite cfg base ~done_rows ~resumed =
  let nw = max 1 cfg.mc_workers in
  let pool = Support.Pool.default () in
  let shared = Odin.Session.object_cache ~size:1024 () in
  let jclock = Telemetry.Clock.synchronized r.Recorder.clock in
  (* serial creation in id order: worker 0's build fills the shared
     cache, later builds are cross hits *)
  let workers =
    List.init nw (fun i ->
        let wr = Recorder.fork ~clock:jclock r in
        let st =
          mk_wstate ~objects:shared ~owner:i ~pool ~telemetry:wr
            ~families:cfg.mc_families ~limit:cfg.mc_limit ~entry ~host ~suite
            ~max_steps:cfg.mc_max_steps ~deadline:cfg.mc_deadline
            (Ir.Clone.clone_module base)
        in
        (st, wr))
  in
  let n_mutants =
    match workers with
    | (st, _) :: _ -> Array.length st.ws_mutants
    | [] -> 0
  in
  let rows = Hashtbl.create 997 in
  List.iter (fun row -> Hashtbl.replace rows row.r_id row) done_rows;
  let incr_links = ref 0 and full_links = ref 0 and patched = ref 0 in
  let pending =
    List.init n_mutants Fun.id
    |> List.filter (fun id -> not (Hashtbl.mem rows id))
  in
  let publish () =
    match cfg.mc_checkpoint with
    | None -> ()
    | Some path ->
      let all =
        Hashtbl.fold (fun _ row acc -> row :: acc) rows []
        |> List.sort (fun a b -> compare a.r_id b.r_id)
      in
      publish_ckpt path
        {
          ck_digest = Farm.Orch.module_digest base;
          ck_spec = families_spec cfg.mc_families;
          ck_limit = cfg.mc_limit;
          ck_tests = List.length suite;
          ck_suite_digest = suite_digest suite;
          ck_rows = all;
        }
  in
  let stopped () =
    match cfg.mc_stop_after with
    | None -> false
    | Some n -> Hashtbl.length rows >= n
  in
  let rec rounds round pending =
    if pending = [] || stopped () then ()
    else begin
      let jobs, rest = deal ~chunk:cfg.mc_chunk pending workers in
      let results =
        Support.Pool.map pool
          (fun ((st, wr), ids) ->
            Recorder.with_span wr ~cat:"mutate"
              ~args:[ ("round", string_of_int round) ]
              "worker-round"
              (fun () -> List.map (eval_mutant st) ids))
          jobs
      in
      let fresh = List.concat results in
      List.iter (fun row -> Hashtbl.replace rows row.r_id row) fresh;
      List.iter
        (fun ((st, _), _) ->
          let i, f, p = drain_links st in
          incr_links := !incr_links + i;
          full_links := !full_links + f;
          patched := !patched + p)
        jobs;
      record_counters (Some r) fresh;
      record_rows_events jr fresh;
      Recorder.count (Some r) "mutate.rounds";
      publish ();
      rounds (round + 1) rest
    end
  in
  rounds 1 pending;
  (* leave every session bit-pristine (and count the closing relinks) *)
  List.iter
    (fun (st, _) ->
      quiesce st;
      let i, f, p = drain_links st in
      incr_links := !incr_links + i;
      full_links := !full_links + f;
      patched := !patched + p)
    workers;
  List.iter (fun (_, wr) -> Recorder.merge ~into:r wr) workers;
  let all =
    Hashtbl.fold (fun _ row acc -> row :: acc) rows []
    |> List.sort (fun a b -> compare a.r_id b.r_id)
  in
  let matrix = merge_rows ~tests:(List.length suite) all in
  let stats =
    {
      s_initial_links = nw;
      s_full_links = nw + !full_links;
      s_incr_links = !incr_links;
      s_symbols_patched = !patched;
      s_restarts = 0;
      s_retired = [];
      s_resumed_rows = (if resumed then List.length done_rows else 0);
    }
  in
  (matrix, stats)

(* ------------------------------------------------------------------ *)
(* Procs mode: supervisor                                              *)
(* ------------------------------------------------------------------ *)

type pworker = {
  pw_id : int;
  mutable pw_pid : int;
  mutable pw_in : Unix.file_descr;
  mutable pw_out : Farm.Wire.reader;
  mutable pw_restarts : int;
  mutable pw_retired : string option;
  mutable pw_last_seen : float;
  mutable pw_queue : (int * int list) list;  (** outstanding (round, ids) *)
}

exception All_workers_retired

let run_procs ~r ~jr ~host ~entry ~suite cfg base ~done_rows ~resumed =
  let nw = max 1 cfg.mc_workers in
  let argv =
    match cfg.mc_worker_argv with
    | Some a -> a
    | None -> [| Sys.executable_name; "mutate-worker" |]
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let env = Unix.environment () in
  let init_for id =
    init_blob
      {
        wi_id = id;
        wi_entry = entry;
        wi_host = host;
        wi_suite = suite;
        wi_spec = families_spec cfg.mc_families;
        wi_limit = cfg.mc_limit;
        wi_max_steps = cfg.mc_max_steps;
        wi_deadline = cfg.mc_deadline;
        wi_mod_name = base.Ir.Modul.mname;
        wi_mod_text = Ir.Print.module_to_string base;
      }
  in
  let total_restarts = ref 0 in
  let retired_log = ref [] in
  let reap w =
    (try Unix.kill w.pw_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pw_pid) with Unix.Unix_error _ -> ());
    (try Unix.close w.pw_in with Unix.Unix_error _ -> ());
    (try Unix.close w.pw_out.Farm.Wire.rd_fd with Unix.Unix_error _ -> ());
    Recorder.count (Some r) "mutate.worker_deaths"
  in
  let start w =
    let out_r, out_w = Unix.pipe ~cloexec:true () in
    let in_r, in_w = Unix.pipe ~cloexec:true () in
    let pid = Unix.create_process_env argv.(0) argv env in_r out_w Unix.stderr in
    Unix.close in_r;
    Unix.close out_w;
    w.pw_pid <- pid;
    w.pw_in <- in_w;
    w.pw_out <- Farm.Wire.reader out_r;
    w.pw_last_seen <- Unix.gettimeofday ();
    match
      Farm.Wire.send w.pw_in (init_for w.pw_id);
      let deadline = Unix.gettimeofday () +. max cfg.mc_worker_timeout 5. in
      let rec await () =
        match Farm.Wire.next w.pw_out with
        | Some (Farm.Wire.Blob { bl_kind = "mutate.ready"; bl_data }) ->
          let _, n = ready_of_blob bl_data in
          Ok n
        | Some (Farm.Wire.Died reason) -> Error reason
        | Some _ -> Error "protocol violation in handshake"
        | None ->
          if Unix.gettimeofday () > deadline then Error "handshake timeout"
          else (
            match Unix.select [ w.pw_out.Farm.Wire.rd_fd ] [] [] 0.1 with
            | [], _, _ -> await ()
            | _ -> (
              match Farm.Wire.feed w.pw_out with
              | `Eof -> Error "worker exited during handshake"
              | `Read _ -> await ()))
      in
      await ()
    with
    | result -> result
    | exception Farm.Wire.Wire_error m -> Error m
  in
  let ws =
    Array.init nw (fun id ->
        {
          pw_id = id;
          pw_pid = -1;
          pw_in = Unix.stdin;
          pw_out = Farm.Wire.reader Unix.stdin;
          pw_restarts = 0;
          pw_retired = None;
          pw_last_seen = 0.;
          pw_queue = [];
        })
  in
  let alive () =
    Array.to_list ws |> List.filter (fun w -> w.pw_retired = None)
  in
  let send_assign w (round, ids) =
    Farm.Wire.send w.pw_in (assign_blob ~round ids)
  in
  let rec on_death w reason =
    if w.pw_retired = None then begin
      reap w;
      if w.pw_restarts < cfg.mc_max_restarts then begin
        w.pw_restarts <- w.pw_restarts + 1;
        incr total_restarts;
        Recorder.count (Some r) "mutate.worker_restarts";
        match start w with
        | Ok _ -> (
          try List.iter (send_assign w) w.pw_queue
          with Farm.Wire.Wire_error m -> on_death w ("resend failed: " ^ m))
        | Error m -> on_death w ("restart failed: " ^ m)
      end
      else begin
        w.pw_retired <- Some reason;
        retired_log := (w.pw_id, reason) :: !retired_log;
        let orphans = w.pw_queue in
        w.pw_queue <- [];
        match alive () with
        | [] -> raise All_workers_retired
        | h :: _ ->
          if orphans <> [] then begin
            h.pw_queue <- h.pw_queue @ orphans;
            try List.iter (send_assign h) orphans
            with Farm.Wire.Wire_error m ->
              on_death h ("orphan reassign failed: " ^ m)
          end
      end
    end
  in
  (* initial fleet *)
  let n_mutants = ref (-1) in
  Array.iter
    (fun w ->
      let rec boot attempts =
        match start w with
        | Ok n ->
          if !n_mutants < 0 then n_mutants := n
          else if n <> !n_mutants then begin
            reap w;
            w.pw_retired <- Some "mutant-count mismatch";
            retired_log := (w.pw_id, "mutant-count mismatch") :: !retired_log
          end
        | Error m ->
          reap w;
          if attempts < cfg.mc_max_restarts then begin
            w.pw_restarts <- w.pw_restarts + 1;
            incr total_restarts;
            boot (attempts + 1)
          end
          else begin
            w.pw_retired <- Some m;
            retired_log := (w.pw_id, m) :: !retired_log
          end
      in
      boot 0)
    ws;
  if alive () = [] then raise All_workers_retired;
  let n_mutants = max 0 !n_mutants in
  let rows = Hashtbl.create 997 in
  List.iter (fun row -> Hashtbl.replace rows row.r_id row) done_rows;
  let incr_links = ref 0 and full_links = ref 0 and patched = ref 0 in
  let collect_round shares =
    List.iter
      (fun (w, a) ->
        w.pw_queue <- w.pw_queue @ [ a ];
        try send_assign w a
        with Farm.Wire.Wire_error m -> on_death w ("assign failed: " ^ m))
      shares;
    let outstanding () =
      Array.to_list ws
      |> List.filter (fun w -> w.pw_retired = None && w.pw_queue <> [])
    in
    let exception Dead of string in
    while outstanding () <> [] do
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          if now -. w.pw_last_seen > cfg.mc_worker_timeout then
            on_death w "missed heartbeat deadline (preemptive kill)")
        (outstanding ());
      let waiting = outstanding () in
      if waiting <> [] then begin
        let fds = List.map (fun w -> w.pw_out.Farm.Wire.rd_fd) waiting in
        let readable, _, _ =
          try Unix.select fds [] [] 0.05
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match
              List.find_opt
                (fun w -> w.pw_out.Farm.Wire.rd_fd == fd)
                waiting
            with
            | None -> ()
            | Some w -> (
              try
                (match Farm.Wire.feed w.pw_out with
                | `Eof ->
                  if Farm.Wire.pending w.pw_out > 0 then
                    raise (Dead "torn frame: worker died mid-send")
                  else raise (Dead "worker closed pipe")
                | `Read n ->
                  if n > 0 then w.pw_last_seen <- Unix.gettimeofday ());
                let rec drain () =
                  match Farm.Wire.next w.pw_out with
                  | None -> ()
                  | Some (Farm.Wire.Heartbeat _) ->
                    w.pw_last_seen <- Unix.gettimeofday ();
                    drain ()
                  | Some (Farm.Wire.Blob { bl_kind = "mutate.rows"; bl_data })
                    ->
                    w.pw_last_seen <- Unix.gettimeofday ();
                    let round, incr, full, pat, batch =
                      rows_of_blob bl_data
                    in
                    (match w.pw_queue with
                    | [] -> raise (Dead "unsolicited rows frame")
                    | (qround, _) :: rest ->
                      if qround <> round then
                        raise (Dead "rows for the wrong round");
                      w.pw_queue <- rest;
                      incr_links := !incr_links + incr;
                      full_links := !full_links + full;
                      patched := !patched + pat;
                      List.iter
                        (fun row -> Hashtbl.replace rows row.r_id row)
                        batch;
                      record_counters (Some r) batch;
                      record_rows_events jr batch);
                    drain ()
                  | Some (Farm.Wire.Died reason) ->
                    raise (Dead ("worker fault: " ^ reason))
                  | Some _ -> raise (Dead "protocol violation")
                in
                drain ()
              with
              | Dead reason -> on_death w reason
              | Farm.Wire.Wire_error m -> on_death w m))
          readable
      end
    done
  in
  let publish () =
    match cfg.mc_checkpoint with
    | None -> ()
    | Some path ->
      let all =
        Hashtbl.fold (fun _ row acc -> row :: acc) rows []
        |> List.sort (fun a b -> compare a.r_id b.r_id)
      in
      publish_ckpt path
        {
          ck_digest = Farm.Orch.module_digest base;
          ck_spec = families_spec cfg.mc_families;
          ck_limit = cfg.mc_limit;
          ck_tests = List.length suite;
          ck_suite_digest = suite_digest suite;
          ck_rows = all;
        }
  in
  let stopped () =
    match cfg.mc_stop_after with
    | None -> false
    | Some n -> Hashtbl.length rows >= n
  in
  let pending =
    List.init n_mutants Fun.id
    |> List.filter (fun id -> not (Hashtbl.mem rows id))
  in
  let rec rounds round pending =
    if pending = [] || stopped () then ()
    else begin
      let jobs, rest = deal ~chunk:cfg.mc_chunk pending (alive ()) in
      collect_round (List.map (fun (w, ids) -> (w, (round, ids))) jobs);
      Recorder.count (Some r) "mutate.rounds";
      publish ();
      rounds (round + 1) rest
    end
  in
  Fun.protect ~finally:(fun () ->
      Array.iter
        (fun w ->
          if w.pw_retired = None then begin
            (try Farm.Wire.send w.pw_in Farm.Wire.Shutdown
             with Farm.Wire.Wire_error _ -> ());
            (try ignore (Unix.waitpid [] w.pw_pid)
             with Unix.Unix_error _ -> ());
            (try Unix.close w.pw_in with Unix.Unix_error _ -> ());
            try Unix.close w.pw_out.Farm.Wire.rd_fd
            with Unix.Unix_error _ -> ()
          end)
        ws)
  @@ fun () ->
  rounds 1 pending;
  let all =
    Hashtbl.fold (fun _ row acc -> row :: acc) rows []
    |> List.sort (fun a b -> compare a.r_id b.r_id)
  in
  let matrix = merge_rows ~tests:(List.length suite) all in
  (* children quiesce on Shutdown; each (re)boot was a full compile *)
  let stats =
    {
      s_initial_links = nw + !total_restarts;
      s_full_links = nw + !total_restarts + !full_links;
      s_incr_links = !incr_links;
      s_symbols_patched = !patched;
      s_restarts = !total_restarts;
      s_retired = List.rev !retired_log;
      s_resumed_rows = (if resumed then List.length done_rows else 0);
    }
  in
  (matrix, stats)

(* ------------------------------------------------------------------ *)
(* Procs mode: child                                                   *)
(* ------------------------------------------------------------------ *)

let worker_main () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  ignore (Support.Fault.init_from_env ());
  let rd = Farm.Wire.reader Unix.stdin in
  let send m = Farm.Wire.send Unix.stdout m in
  let die reason code =
    (try send (Farm.Wire.Died reason) with _ -> ());
    exit code
  in
  let init =
    match Farm.Wire.recv rd with
    | Farm.Wire.Blob { bl_kind = "mutate.init"; bl_data } ->
      init_of_blob bl_data
    | _ -> die "protocol violation: expected mutate.init" 64
    | exception Farm.Wire.Wire_error _ -> exit 65
  in
  let m =
    Ir.Parse.module_of_string ~name:init.wi_mod_name init.wi_mod_text
  in
  let st =
    try
      mk_wstate ~pool:Support.Pool.serial
        ~families:(Gen.families_of_spec init.wi_spec)
        ~limit:init.wi_limit ~entry:init.wi_entry ~host:init.wi_host
        ~suite:init.wi_suite ~max_steps:init.wi_max_steps
        ~deadline:init.wi_deadline m
    with Failure msg -> die msg 3
  in
  (try
     send (ready_blob ~id:init.wi_id ~n_mutants:(Array.length st.ws_mutants))
   with Farm.Wire.Wire_error _ -> exit 70);
  let rec serve () =
    (match Farm.Wire.recv rd with
    | Farm.Wire.Shutdown ->
      quiesce st;
      exit 0
    | Farm.Wire.Blob { bl_kind = "mutate.assign"; bl_data } -> (
      let round, ids = assign_of_blob bl_data in
      try
        send (Farm.Wire.Heartbeat { hb_round = round; hb_done = 0 });
        let done_count = ref 0 in
        let batch =
          List.map
            (fun id ->
              let row = eval_mutant st id in
              incr done_count;
              send
                (Farm.Wire.Heartbeat { hb_round = round; hb_done = !done_count });
              row)
            ids
        in
        let incr, full, patched = drain_links st in
        send (rows_blob ~round ~incr ~full ~patched batch)
      with
      | Farm.Wire.Wire_error _ ->
        (* torn send: this process can no longer speak the protocol *)
        exit 70
      | Support.Fault.Injected site ->
        die (Printf.sprintf "injected fault at %s" site) 2
      | e -> die (Printexc.to_string e) 2)
    | _ -> die "protocol violation: expected mutate.assign or Shutdown" 64
    | exception Farm.Wire.Wire_error _ -> exit 65);
    serve ()
  in
  serve ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let run ?telemetry ?journal ?journal_path
    ?(host = Workloads.Generate.host_functions) ~entry ~suite cfg base =
  let r = match telemetry with Some r -> r | None -> Recorder.create () in
  let jr =
    match (journal, journal_path) with
    | Some j, _ -> Some j
    | None, Some _ -> Some (Journal.create ~clock:r.Recorder.clock ())
    | None, None -> None
  in
  let jflush () =
    match (jr, journal_path) with
    | Some j, Some p -> Journal.flush j p
    | _ -> ()
  in
  let done_rows, resumed =
    match (cfg.mc_checkpoint, cfg.mc_resume) with
    | Some path, true -> (
      match
        load_ckpt
          ~digest:(Farm.Orch.module_digest base)
          ~spec:(families_spec cfg.mc_families)
          ~limit:cfg.mc_limit ~tests:(List.length suite)
          ~sdigest:(suite_digest suite) path
      with
      | Some ck -> (ck.ck_rows, true)
      | None -> ([], false))
    | _ -> ([], false)
  in
  let sp =
    Telemetry.Span.enter r.Recorder.spans ~cat:"mutate"
      ~args:
        [
          ("workers", string_of_int (max 1 cfg.mc_workers));
          ("mode", match cfg.mc_mode with Domains -> "domains" | Procs -> "procs");
          ("ops", families_spec cfg.mc_families);
          ("tests", string_of_int (List.length suite));
        ]
      "campaign"
  in
  Fun.protect ~finally:(fun () ->
      Telemetry.Span.exit r.Recorder.spans sp;
      jflush ())
  @@ fun () ->
  let matrix, stats =
    match cfg.mc_mode with
    | Domains -> run_domains ~r ~jr ~host ~entry ~suite cfg base ~done_rows ~resumed
    | Procs -> run_procs ~r ~jr ~host ~entry ~suite cfg base ~done_rows ~resumed
  in
  (match jr with
  | None -> ()
  | Some j ->
    Journal.record j ~kind:"mutate.done"
      [
        ("generated", Json.Int matrix.m_generated);
        ("killed", Json.Int matrix.m_killed);
        ("survived", Json.Int matrix.m_survived);
        ("timeout", Json.Int matrix.m_timeout);
        ("score", Json.Float matrix.m_score);
        ("full_links", Json.Int stats.s_full_links);
        ("incr_links", Json.Int stats.s_incr_links);
        ("restarts", Json.Int stats.s_restarts);
      ]);
  (matrix, stats)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render m =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "kill matrix: %d mutants x %d tests\n" m.m_generated
       m.m_tests);
  List.iter
    (fun row ->
      let cells = String.init m.m_tests (fun i ->
          match List.nth_opt row.r_outcomes i with
          | Some o -> outcome_char o
          | None -> '?')
      in
      Buffer.add_string b
        (Printf.sprintf "  %4d  %-22s %-24s [%s] %s\n" row.r_id row.r_desc
           row.r_target cells
           (verdict_to_string row.r_verdict)))
    m.m_rows;
  Buffer.add_string b "  per-operator:\n";
  List.iter
    (fun fam ->
      let rows = List.filter (fun r -> r.r_family = fam) m.m_rows in
      if rows <> [] then begin
        let count v =
          List.length (List.filter (fun r -> r.r_verdict = v) rows)
        in
        Buffer.add_string b
          (Printf.sprintf
             "    %-6s generated %4d  killed %4d  timeout %4d  survived %4d\n"
             (Gen.family_to_string fam) (List.length rows) (count Killed)
             (count Timeout) (count Survived))
      end)
    Gen.all_families;
  Buffer.add_string b
    (Printf.sprintf
       "  score: %.1f%% (%d killed + %d timeout of %d; %d survived)\n"
       m.m_score m.m_killed m.m_timeout m.m_generated m.m_survived);
  Buffer.contents b
