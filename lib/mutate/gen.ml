(** The mutation pass: plant mutants as disarmed probe sites over the
    pristine IR (Mull's compile-all-mutants-once trick on Odin's
    probe/refresh machinery).

    Design constraints that shaped the operator set:
    - a {e disarmed} mutant contributes nothing to the patched IR, so the
      image with all mutants disarmed is bit-for-bit the pristine build
      (the differential test in [test_mutate.ml] pins this down);
    - an {e armed} mutant edits only its cloned site in the temporary IR,
      before optimization — any later constant folding or DCE of the
      mutated code preserves the {e mutated} semantics, exactly like
      instrument-then-optimize preserves probe semantics (paper
      Section 3.1);
    - every edit is verifier-safe by construction: operator swaps keep
      the SSA shape, constant perturbation keeps types, statement
      deletion is restricted to stores (no SSA result to orphan), and
      branch swaps keep the successor set (phi predecessors intact). *)

type family = Aor | Ror | Const | Sdl | Brs

let all_families = [ Aor; Ror; Const; Sdl; Brs ]

let family_to_string = function
  | Aor -> "aor"
  | Ror -> "ror"
  | Const -> "const"
  | Sdl -> "sdl"
  | Brs -> "brs"

let family_of_string = function
  | "aor" -> Some Aor
  | "ror" -> Some Ror
  | "const" -> Some Const
  | "sdl" -> Some Sdl
  | "brs" -> Some Brs
  | _ -> None

let families_of_spec spec =
  match String.trim spec with
  | "" | "all" -> all_families
  | s ->
    String.split_on_char ',' s
    |> List.map (fun name ->
           match family_of_string (String.trim name) with
           | Some f -> f
           | None ->
             invalid_arg
               (Printf.sprintf "unknown mutation operator %S (expected %s)"
                  name
                  (String.concat "," (List.map family_to_string all_families))))

let family_of_op = function
  | Instr.Probe.Mut_binop _ -> Aor
  | Instr.Probe.Mut_icmp _ -> Ror
  | Instr.Probe.Mut_const _ -> Const
  | Instr.Probe.Mut_del -> Sdl
  | Instr.Probe.Mut_brswap -> Brs

let family_of_probe (p : Instr.Probe.t) =
  match p.Instr.Probe.payload with
  | Instr.Probe.Mutant m -> Some (family_of_op m.Instr.Probe.mut_op)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Operator tables                                                     *)
(* ------------------------------------------------------------------ *)

(* One deterministic replacement per operator (Mull's AOR/ROR pairs):
   the swap must change semantics on generic operands without breaking
   the verifier, and must not introduce a trap the pristine operator
   could not also raise (divisions map away from division, never into
   it — a div-by-zero kill should come from perturbed operands, not
   from the swap fabricating a divide). *)
let binop_swap : Ir.Ins.binop -> Ir.Ins.binop = function
  | Ir.Ins.Add -> Ir.Ins.Sub
  | Ir.Ins.Sub -> Ir.Ins.Add
  | Ir.Ins.Mul -> Ir.Ins.Add
  | Ir.Ins.Sdiv -> Ir.Ins.Mul
  | Ir.Ins.Udiv -> Ir.Ins.Mul
  | Ir.Ins.Srem -> Ir.Ins.Mul
  | Ir.Ins.Urem -> Ir.Ins.Mul
  | Ir.Ins.And -> Ir.Ins.Or
  | Ir.Ins.Or -> Ir.Ins.And
  | Ir.Ins.Xor -> Ir.Ins.Or
  | Ir.Ins.Shl -> Ir.Ins.Lshr
  | Ir.Ins.Lshr -> Ir.Ins.Shl
  | Ir.Ins.Ashr -> Ir.Ins.Lshr

(* Boundary swaps (eq<->ne, strict<->non-strict): the classic ROR set —
   off-by-one boundaries are exactly what surviving test suites miss. *)
let icmp_swap : Ir.Ins.icmp -> Ir.Ins.icmp = function
  | Ir.Ins.Eq -> Ir.Ins.Ne
  | Ir.Ins.Ne -> Ir.Ins.Eq
  | Ir.Ins.Slt -> Ir.Ins.Sle
  | Ir.Ins.Sle -> Ir.Ins.Slt
  | Ir.Ins.Sgt -> Ir.Ins.Sge
  | Ir.Ins.Sge -> Ir.Ins.Sgt
  | Ir.Ins.Ult -> Ir.Ins.Ule
  | Ir.Ins.Ule -> Ir.Ins.Ult
  | Ir.Ins.Ugt -> Ir.Ins.Uge
  | Ir.Ins.Uge -> Ir.Ins.Ugt

(* ------------------------------------------------------------------ *)
(* Site discovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Constant perturbation targets: value-carrying operand positions of
   arithmetic/comparison/select/store instructions. Address arithmetic
   (Gep), callees and phis are excluded — perturbing those mutates
   control plumbing, not the computation under test. *)
let const_site (ins : Ir.Ins.ins) =
  match ins.Ir.Ins.kind with
  | Ir.Ins.Binop _ | Ir.Ins.Icmp _ | Ir.Ins.Select _ | Ir.Ins.Store _ ->
    let found = ref None in
    List.iteri
      (fun i v ->
        if !found = None then
          match v with
          | Ir.Ins.Const (ty, _) when Ir.Types.is_integer ty -> found := Some i
          | _ -> ())
      (Ir.Ins.operands ins);
    !found
  | _ -> None

(* Mutants of one instruction, family order fixed (Aor, Ror, Const,
   Sdl); [want] filters by the campaign's operator selection. *)
let ins_mutants want blk_label (ins : Ir.Ins.ins) =
  if ins.Ir.Ins.volatile then [] (* never mutate instrumentation *)
  else begin
    let sites = ref [] in
    let add op desc = sites := (op, desc) :: !sites in
    (match ins.Ir.Ins.kind with
    | Ir.Ins.Binop (op, _, _) when want Aor ->
      let op' = binop_swap op in
      add (Instr.Probe.Mut_binop op')
        (Printf.sprintf "aor %s->%s" (Ir.Ins.binop_to_string op)
           (Ir.Ins.binop_to_string op'))
    | _ -> ());
    (match ins.Ir.Ins.kind with
    | Ir.Ins.Icmp (p, _, _) when want Ror ->
      let p' = icmp_swap p in
      add (Instr.Probe.Mut_icmp p')
        (Printf.sprintf "ror %s->%s" (Ir.Ins.icmp_to_string p)
           (Ir.Ins.icmp_to_string p'))
    | _ -> ());
    (if want Const then
       match const_site ins with
       | Some idx ->
         add
           (Instr.Probe.Mut_const (idx, 1L))
           (Printf.sprintf "const +1@%d" idx)
       | None -> ());
    (match ins.Ir.Ins.kind with
    | Ir.Ins.Store _ when want Sdl -> add Instr.Probe.Mut_del "sdl store"
    | _ -> ());
    List.rev_map
      (fun (op, desc) ->
        {
          Instr.Probe.mut_op = op;
          mut_ins = Some ins;
          mut_block = blk_label;
          mut_desc = desc;
        })
      !sites
  end

(* ------------------------------------------------------------------ *)
(* Patch logic                                                         *)
(* ------------------------------------------------------------------ *)

let apply_to_clone (m : Instr.Probe.mut_state) (clone : Ir.Ins.ins) =
  match m.Instr.Probe.mut_op with
  | Instr.Probe.Mut_binop op' -> (
    match clone.Ir.Ins.kind with
    | Ir.Ins.Binop (_, a, b) -> clone.Ir.Ins.kind <- Ir.Ins.Binop (op', a, b)
    | _ -> ())
  | Instr.Probe.Mut_icmp p' -> (
    match clone.Ir.Ins.kind with
    | Ir.Ins.Icmp (_, a, b) -> clone.Ir.Ins.kind <- Ir.Ins.Icmp (p', a, b)
    | _ -> ())
  | Instr.Probe.Mut_const (idx, delta) ->
    (* positional rewrite: [Ins.map_operands] gives no visit-order
       guarantee (constructor arguments evaluate right-to-left), so
       index the operand list explicitly *)
    let bump i v =
      if i <> idx then v
      else
        match v with
        | Ir.Ins.Const (ty, c) ->
          Ir.Ins.Const (ty, Ir.Types.normalize ty (Int64.add c delta))
        | v -> v
    in
    (match clone.Ir.Ins.kind with
    | Ir.Ins.Binop (op, a, b) ->
      clone.Ir.Ins.kind <- Ir.Ins.Binop (op, bump 0 a, bump 1 b)
    | Ir.Ins.Icmp (p, a, b) ->
      clone.Ir.Ins.kind <- Ir.Ins.Icmp (p, bump 0 a, bump 1 b)
    | Ir.Ins.Select (c, a, b) ->
      clone.Ir.Ins.kind <- Ir.Ins.Select (bump 0 c, bump 1 a, bump 2 b)
    | Ir.Ins.Store (a, b) ->
      clone.Ir.Ins.kind <- Ir.Ins.Store (bump 0 a, bump 1 b)
    | _ -> ())
  | Instr.Probe.Mut_del | Instr.Probe.Mut_brswap ->
    () (* structural edits need the function; handled in [apply_mutant] *)

let apply_mutant (sched : Odin.Session.sched) target
    (m : Instr.Probe.mut_state) =
  match m.Instr.Probe.mut_op with
  | Instr.Probe.Mut_brswap -> (
    match Odin.Session.map_func sched target with
    | Some fn -> (
      match Ir.Func.find_block fn m.Instr.Probe.mut_block with
      | Some blk -> (
        match blk.Ir.Func.term with
        | Ir.Ins.Cbr (c, a, b) -> blk.Ir.Func.term <- Ir.Ins.Cbr (c, b, a)
        | _ -> ())
      | None -> ())
    | None -> ())
  | Instr.Probe.Mut_del -> (
    match m.Instr.Probe.mut_ins with
    | None -> ()
    | Some pristine -> (
      match
        (Odin.Session.map_ins sched pristine, Odin.Session.map_func sched target)
      with
      | Some clone, Some fn ->
        (* stores have no SSA result, so physically dropping the clone
           orphans nothing *)
        Ir.Func.iter_blocks
          (fun blk ->
            blk.Ir.Func.insns <-
              List.filter (fun i -> i != clone) blk.Ir.Func.insns)
          fn
      | _ -> ()))
  | Instr.Probe.Mut_binop _ | Instr.Probe.Mut_icmp _ | Instr.Probe.Mut_const _
    -> (
    match m.Instr.Probe.mut_ins with
    | None -> ()
    | Some pristine -> (
      match Odin.Session.map_ins sched pristine with
      | Some clone -> apply_to_clone m clone
      | None -> () (* site not in this schedule's clones: stale probe *)))

(** The registered patch logic: apply every {e armed} mutant scheduled
    into this rebuild. Disarmed mutants are not in [sched.active], so a
    fragment with all its mutants disarmed is patched into exactly the
    pristine IR — same structural digest, same cached object. *)
let patch (sched : Odin.Session.sched) =
  List.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Mutant m -> apply_mutant sched p.Instr.Probe.target m
      | _ -> ())
    sched.Odin.Session.active

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let setup ?(families = all_families) ?limit (session : Odin.Session.t) =
  let want f = List.mem f families in
  let planted = ref [] in
  let count = ref 0 in
  let room () = match limit with None -> true | Some n -> !count < n in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun (blk : Ir.Func.block) ->
          List.iter
            (fun ins ->
              List.iter
                (fun m ->
                  if room () then begin
                    planted :=
                      Instr.Manager.add session.Odin.Session.manager
                        ~enabled:false ~target:f.Ir.Func.name
                        (Instr.Probe.Mutant m)
                      :: !planted;
                    incr count
                  end)
                (ins_mutants want blk.Ir.Func.label ins))
            blk.Ir.Func.insns;
          (* block terminator: branch swap *)
          (match blk.Ir.Func.term with
          | Ir.Ins.Cbr (_, a, b) when want Brs && a <> b && room () ->
            planted :=
              Instr.Manager.add session.Odin.Session.manager ~enabled:false
                ~target:f.Ir.Func.name
                (Instr.Probe.Mutant
                   {
                     Instr.Probe.mut_op = Instr.Probe.Mut_brswap;
                     mut_ins = None;
                     mut_block = blk.Ir.Func.label;
                     mut_desc = "brs cbr-swap";
                   })
              :: !planted;
            incr count
          | _ -> ()))
        f)
    (Ir.Modul.defined_functions session.Odin.Session.base);
  Odin.Session.add_patcher session patch;
  List.rev !planted
