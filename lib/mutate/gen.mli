(** The mutation pass: walk the pristine IR and plant mutants as guarded
    probe sites (Mull's trick on Odin's machinery — compile the program
    once, switch mutants by probe toggling + incremental relink instead
    of one compile per mutant).

    Every mutant is an {!Instr.Probe.t} with a [Mutant] payload,
    registered {e disarmed} against the function holding its site: the
    initial build produces the bit-pristine image, and arming mutant M
    is an ordinary probe toggle — one dirty symbol, one O(changed)
    schedule pass, one fragment recompile, one incremental relink.
    Disarming M removes its only difference from pristine, so the
    fragment's structural digest returns to the cached pristine object
    and the relink is a no-op patch. *)

(** Operator families, selectable per campaign ([odinc mutate --ops]). *)
type family =
  | Aor  (** arithmetic-operator swap: [add<->sub], [mul->add], ... *)
  | Ror  (** relational-operator swap: [eq<->ne], [slt<->sle], ... *)
  | Const  (** constant perturbation: first literal operand + 1 *)
  | Sdl  (** statement deletion: drop a non-volatile store *)
  | Brs  (** branch swap: exchange a [Cbr]'s then/else targets *)

val all_families : family list

(** ["aor" | "ror" | "const" | "sdl" | "brs"]. *)
val family_to_string : family -> string

val family_of_string : string -> family option

(** Parse a comma-separated operator list (["aor,ror"]; ["all"] or [""]
    selects every family). @raise Invalid_argument on unknown names. *)
val families_of_spec : string -> family list

(** The family a planted mutant belongs to. *)
val family_of_probe : Instr.Probe.t -> family option

(** Walk [session]'s pristine IR in deterministic order (module
    function order, block order, instruction order; families in
    {!all_families} order at each site) and register one disarmed
    [Mutant] probe per opportunity; registers the patch logic once via
    {!Odin.Session.add_patcher}. [limit] keeps only the first N
    mutants. Call before {!Odin.Session.build}. Returns the planted
    probes, probe ids ascending. *)
val setup : ?families:family list -> ?limit:int -> Odin.Session.t -> Instr.Probe.t list

(** The patch logic alone (already registered by {!setup}): applies every
    armed mutant in [sched.active] to the temporary IR. *)
val patch : Odin.Session.sched -> unit
