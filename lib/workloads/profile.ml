(** Workload profiles: one per benchmark target (the FuzzBench ∩
    fuzzer-test-suite programs of paper Section 5). Real traces and
    sources are not available in this environment, so each profile
    parameterizes a synthetic mini-C generator to match the *shape* that
    drives the figures: function size distribution, interprocedural
    coupling, comparison density, table-driven data flow, and — for
    sqlite — the one enormous interpreter function
    (sqlite3VdbeExec: thousands of blocks, a giant opcode switch). *)

type t = {
  name : string;
  seed : int;
  n_helpers : int;  (** mid-size arithmetic helper functions *)
  helper_stmts : int;  (** straight-line statements per helper *)
  n_tiny : int;  (** tiny inline-friendly functions (templates in json) *)
  n_parsers : int;  (** byte-consuming parser functions *)
  parser_cases : int;  (** switch arms per parser *)
  opcode_switch : int option;  (** giant interpreter: number of opcodes *)
  coupling : int;  (** 0 = independent functions .. 3 = dense call graph *)
  const_tables : int;  (** number of constant lookup tables *)
  magic_checks : int;  (** comparison roadblocks in the header check *)
  hot_skew : int;
      (** skewed hot/cold cycle distribution: every 16th helper's mixing
          loop runs [hot_skew]x as many trips, concentrating execution
          cycles in a small hot set (realistic promotion targets for the
          tiered pipeline). 0 = uniform — byte-identical source to the
          pre-knob generator, with identical RNG draws. *)
}

(* Parameters are scaled to keep whole-suite bench runtimes sane while
   preserving the relative sizes the paper discusses (sqlite/ freetype2
   large; json tiny functions; libjpeg decoupled; harfbuzz coupled). *)
let all : t list =
  [
    { name = "freetype2"; seed = 101; n_helpers = 26; helper_stmts = 10; n_tiny = 8;
      n_parsers = 7; parser_cases = 6; opcode_switch = None; coupling = 2;
      const_tables = 6; magic_checks = 3; hot_skew = 0 };
    { name = "libjpeg"; seed = 102; n_helpers = 20; helper_stmts = 12; n_tiny = 4;
      n_parsers = 5; parser_cases = 5; opcode_switch = None; coupling = 0;
      const_tables = 5; magic_checks = 2; hot_skew = 0 };
    { name = "proj4"; seed = 103; n_helpers = 14; helper_stmts = 14; n_tiny = 3;
      n_parsers = 3; parser_cases = 4; opcode_switch = None; coupling = 1;
      const_tables = 3; magic_checks = 1; hot_skew = 0 };
    { name = "libpng"; seed = 104; n_helpers = 16; helper_stmts = 10; n_tiny = 5;
      n_parsers = 6; parser_cases = 5; opcode_switch = None; coupling = 1;
      const_tables = 4; magic_checks = 3; hot_skew = 0 };
    { name = "re2"; seed = 105; n_helpers = 12; helper_stmts = 8; n_tiny = 10;
      n_parsers = 4; parser_cases = 8; opcode_switch = Some 24; coupling = 2;
      const_tables = 3; magic_checks = 1; hot_skew = 0 };
    { name = "harfbuzz"; seed = 106; n_helpers = 22; helper_stmts = 9; n_tiny = 8;
      n_parsers = 6; parser_cases = 6; opcode_switch = None; coupling = 3;
      const_tables = 5; magic_checks = 2; hot_skew = 0 };
    { name = "sqlite"; seed = 107; n_helpers = 18; helper_stmts = 10; n_tiny = 6;
      n_parsers = 4; parser_cases = 5; opcode_switch = Some 96; coupling = 2;
      const_tables = 6; magic_checks = 2; hot_skew = 0 };
    { name = "json"; seed = 108; n_helpers = 4; helper_stmts = 6; n_tiny = 48;
      n_parsers = 4; parser_cases = 6; opcode_switch = None; coupling = 2;
      const_tables = 2; magic_checks = 1; hot_skew = 0 };
    { name = "libxml2"; seed = 109; n_helpers = 20; helper_stmts = 10; n_tiny = 8;
      n_parsers = 8; parser_cases = 7; opcode_switch = None; coupling = 2;
      const_tables = 5; magic_checks = 3; hot_skew = 0 };
    { name = "vorbis"; seed = 110; n_helpers = 18; helper_stmts = 14; n_tiny = 4;
      n_parsers = 4; parser_cases = 4; opcode_switch = None; coupling = 1;
      const_tables = 5; magic_checks = 2; hot_skew = 0 };
    { name = "lcms"; seed = 111; n_helpers = 13; helper_stmts = 12; n_tiny = 4;
      n_parsers = 3; parser_cases = 4; opcode_switch = None; coupling = 1;
      const_tables = 6; magic_checks = 1; hot_skew = 0 };
    { name = "woff2"; seed = 112; n_helpers = 10; helper_stmts = 10; n_tiny = 4;
      n_parsers = 4; parser_cases = 5; opcode_switch = None; coupling = 1;
      const_tables = 3; magic_checks = 2; hot_skew = 0 };
    { name = "x509"; seed = 113; n_helpers = 11; helper_stmts = 9; n_tiny = 5;
      n_parsers = 6; parser_cases = 5; opcode_switch = None; coupling = 2;
      const_tables = 3; magic_checks = 2; hot_skew = 0 };
  ]

(** ~10k-function stress shape for the O(changed)-refresh benchmarks:
    sqlite's profile scaled two orders of magnitude up (under the Max
    partition mode every function is its own fragment, so this is a
    ~10k-fragment program). Statement counts are kept small so a full
    build stays benchable; it is the *fragment count* that matters to
    the scheduler under test. Deliberately not part of {!all} — suite
    drivers that iterate every profile would take minutes on it. *)
let sqlite_xxl =
  { name = "sqlite-xxl"; seed = 114; n_helpers = 7800; helper_stmts = 3;
    n_tiny = 2000; n_parsers = 200; parser_cases = 3; opcode_switch = Some 24;
    coupling = 0; const_tables = 4; magic_checks = 2; hot_skew = 0 }

(** A smaller profile for unit tests and the quickstart example. *)
let tiny =
  { name = "tinytarget"; seed = 999; n_helpers = 4; helper_stmts = 6; n_tiny = 3;
    n_parsers = 2; parser_cases = 3; opcode_switch = None; coupling = 1;
    const_tables = 2; magic_checks = 1; hot_skew = 0 }

let find name =
  List.find_opt (fun p -> String.equal p.name name) (all @ [ sqlite_xxl; tiny ])

let find_exn name =
  match find name with
  | Some p -> p
  | None -> invalid_arg ("Profile.find_exn: unknown workload " ^ name)
