(** Synthetic mini-C program generator.

    Produces, deterministically from a profile, a whole program with the
    entry point [int target_main(char *buf, int len)]:

    - constant lookup tables (copy-on-use material for the partitioner),
    - mid-size arithmetic helpers with straight-line bodies (realistic
      decode/transform kernels: heavy basic blocks),
    - tiny inline-friendly functions (json's template soup),
    - byte-consuming parser functions with switch dispatch (coverage
      growth during fuzzing),
    - optionally one giant opcode interpreter (sqlite3VdbeExec),
    - a header check with magic-byte comparisons (CmpLog roadblocks),
    - a rarely-taken reporting path through printf (exercising the
      printf->puts rewrite and its copy-on-use constant). *)

open Printf

(** Host functions every workload expects the fuzzer/VM to provide. *)
let host_functions = [ "printf"; "puts" ]

let buf_byte pos = sprintf "(buf[%s] & 255)" pos

type gen = { b : Buffer.t; rng : Support.Rng.t; p : Profile.t }

let line g fmt = ksprintf (fun s -> Buffer.add_string g.b (s ^ "\n")) fmt

let odd_const g lo hi =
  let c = Support.Rng.range g.rng lo hi in
  if c mod 2 = 0 then c + 1 else c

(* ------------------------------------------------------------------ *)
(* Constant tables and globals                                         *)
(* ------------------------------------------------------------------ *)

let gen_tables g =
  for k = 0 to g.p.Profile.const_tables - 1 do
    let values =
      List.init 16 (fun _ -> string_of_int (Support.Rng.range g.rng 1 997))
    in
    line g "static const int tbl_%d[16] = {%s};" k (String.concat ", " values)
  done;
  (* mutable state shared by coupled helpers *)
  for k = 0 to (g.p.Profile.coupling * 2) - 1 do
    line g "static int g_state_%d;" k
  done;
  line g ""

let table_ref g expr =
  let t = Support.Rng.int g.rng g.p.Profile.const_tables in
  sprintf "tbl_%d[(%s) & 15]" t expr

(* ------------------------------------------------------------------ *)
(* Tiny functions (inline fodder)                                      *)
(* ------------------------------------------------------------------ *)

let gen_tiny g =
  for k = 0 to g.p.Profile.n_tiny - 1 do
    let c1 = odd_const g 3 63 in
    let c2 = Support.Rng.range g.rng 1 255 in
    let s = Support.Rng.range g.rng 1 7 in
    if k > 0 && Support.Rng.chance g.rng 2 5 then
      line g "static int tiny_%d(int x) { return tiny_%d(x ^ %d) + ((x * %d) >> %d); }"
        k (Support.Rng.int g.rng k) c2 c1 s
    else
      line g "static int tiny_%d(int x) { return ((x * %d) ^ (x >> %d)) + %d; }" k c1
        s c2
  done;
  line g ""

(* ------------------------------------------------------------------ *)
(* Helpers: straight-line arithmetic kernels                           *)
(* ------------------------------------------------------------------ *)

let gen_helper g k =
  line g "static int helper_%d(int x, int y) {" k;
  line g "  int a = x;";
  line g "  int b = y;";
  (* a constant-trip mixing loop: fully unrollable when the body is
     clean; probes inflate the body past the unroll budget, which is one
     of the instrument-first costs the paper discusses (Section 2.2) *)
  let trip = Support.Rng.range g.rng 3 4 in
  (* skewed hot/cold distribution: every 16th helper runs its loop
     hot_skew times as long. The multiplier rides on the same RNG draw,
     so hot_skew = 0 generates byte-identical source with identical
     draws — the knob cannot perturb existing profiles *)
  let trip =
    if g.p.Profile.hot_skew > 0 && k mod 16 = 0 then
      trip * g.p.Profile.hot_skew
    else trip
  in
  let loop_stmts = max 2 (g.p.Profile.helper_stmts / 2) in
  line g "  int r = 0;";
  line g "  do {";
  (* a tiny-function call on the hot loop path: inlined by whole-program
     or bonded-fragment builds, a real call under blind Max partitioning
     (the Figure 10 effect) *)
  if g.p.Profile.coupling >= 1 && g.p.Profile.n_tiny > 0 then
    line g "    b = b + tiny_%d(a & 255);" (Support.Rng.int g.rng g.p.Profile.n_tiny);
  for _ = 1 to loop_stmts do
    match Support.Rng.int g.rng 4 with
    | 0 -> line g "    a = a * %d + %s;" (odd_const g 3 31) (table_ref g "b >> 2")
    | 1 -> line g "    b = (b ^ (a >> %d)) + %d;" (Support.Rng.range g.rng 1 7)
             (Support.Rng.range g.rng 1 127)
    | 2 -> line g "    a = a + b * %d;" (odd_const g 3 15)
    | _ -> line g "    b = b + (a & %d);" (Support.Rng.range g.rng 7 255)
  done;
  line g "    r++;";
  line g "  } while (r < %d);" trip;
  for _ = 1 to g.p.Profile.helper_stmts - loop_stmts do
    match Support.Rng.int g.rng 6 with
    | 0 -> line g "  a = a * %d + %s;" (odd_const g 3 31) (table_ref g "b >> 2")
    | 1 -> line g "  b = (b ^ (a >> %d)) + %d;" (Support.Rng.range g.rng 1 7)
             (Support.Rng.range g.rng 1 127)
    | 2 -> line g "  a = a + b * %d;" (odd_const g 3 15)
    | 3 -> line g "  b = b + %s;" (table_ref g "a")
    | 4 -> line g "  a = (a << %d) | (b & %d);" (Support.Rng.range g.rng 1 4)
             (Support.Rng.range g.rng 3 63)
    | _ -> line g "  b = b - (a & %d) + %d;" (Support.Rng.range g.rng 7 255)
             (Support.Rng.range g.rng 1 31)
  done;
  (* interprocedural coupling: a call to an earlier helper and, in denser
     profiles, tiny functions and shared mutable state *)
  if g.p.Profile.coupling >= 1 && k > 0 && Support.Rng.chance g.rng g.p.Profile.coupling 4
  then
    line g "  a = a ^ helper_%d(b, a & 1023);" (Support.Rng.int g.rng k);
  if g.p.Profile.coupling >= 2 && g.p.Profile.n_tiny > 0 then
    line g "  b = b + tiny_%d(a);" (Support.Rng.int g.rng g.p.Profile.n_tiny);
  if g.p.Profile.coupling >= 2 then begin
    let s = Support.Rng.int g.rng (g.p.Profile.coupling * 2) in
    line g "  g_state_%d = g_state_%d + (a & 15);" s s;
    line g "  b = b + g_state_%d;" s
  end;
  line g "  return a ^ b;";
  line g "}";
  line g ""

let gen_helpers g =
  for k = 0 to g.p.Profile.n_helpers - 1 do
    gen_helper g k
  done

(* ------------------------------------------------------------------ *)
(* Parsers: byte-consuming switch dispatch                             *)
(* ------------------------------------------------------------------ *)

let call_some_fn g args =
  if g.p.Profile.n_tiny > 0 && Support.Rng.bool g.rng then
    sprintf "tiny_%d(%s)" (Support.Rng.int g.rng g.p.Profile.n_tiny)
      (List.hd args)
  else if g.p.Profile.n_helpers > 0 then
    sprintf "helper_%d(%s)"
      (Support.Rng.int g.rng g.p.Profile.n_helpers)
      (String.concat ", " args)
  else sprintf "(%s)" (List.hd args)

let gen_parser g k =
  line g "static int parse_%d(char *buf, int len, int pos) {" k;
  line g "  int acc = %d;" (Support.Rng.range g.rng 1 99);
  line g "  int guard = 0;";
  line g "  while (pos + 2 < len && guard < 48) {";
  line g "    int tag = %s %% %d;" (buf_byte "pos") g.p.Profile.parser_cases;
  line g "    guard++;";
  line g "    switch (tag) {";
  for c = 0 to g.p.Profile.parser_cases - 1 do
    let arg1 = buf_byte "pos + 1" in
    let arg2 = "acc" in
    (match Support.Rng.int g.rng 4 with
    | 0 ->
      line g "      case %d: acc += %s + %s; pos += 2; break;" c
        (call_some_fn g [ arg1; arg2 ])
        (if g.p.Profile.n_tiny > 0 then
           sprintf "tiny_%d(acc)" (Support.Rng.int g.rng g.p.Profile.n_tiny)
         else "1")
    | 1 ->
      line g "      case %d: acc ^= %s + %d; pos += 1; break;" c
        (table_ref g arg1) (Support.Rng.range g.rng 1 255)
    | 2 ->
      line g
        "      case %d: if (%s > %d) { acc += %s; } else { acc -= %d; } pos += 2; break;"
        c arg1
        (Support.Rng.range g.rng 32 192)
        (call_some_fn g [ arg2; arg1 ])
        (Support.Rng.range g.rng 1 63)
    | _ ->
      line g "      case %d: acc = acc * 31 + %s; pos += 3; break;" c arg1)
  done;
  line g "      default: return acc;";
  line g "    }";
  line g "  }";
  line g "  return acc;";
  line g "}";
  line g ""

let gen_parsers g =
  for k = 0 to g.p.Profile.n_parsers - 1 do
    gen_parser g k
  done

(* ------------------------------------------------------------------ *)
(* The giant interpreter (sqlite3VdbeExec)                             *)
(* ------------------------------------------------------------------ *)

let gen_interpreter g n_ops =
  line g "static int vdbe_exec(char *buf, int len) {";
  line g "  int pc = 0;";
  line g "  int r0 = 1;";
  line g "  int r1 = %d;" (Support.Rng.range g.rng 1 99);
  line g "  int r2 = 0;";
  line g "  int steps = 0;";
  line g "  while (pc + 1 < len && steps < 160) {";
  line g "    int op = %s %% %d;" (buf_byte "pc") n_ops;
  line g "    steps++;";
  line g "    switch (op) {";
  for op = 0 to n_ops - 1 do
    let body =
      match Support.Rng.int g.rng 6 with
      | 0 -> sprintf "r0 = r0 + r1 * %d; pc += 1;" (odd_const g 3 15)
      | 1 -> sprintf "r1 = %s + r2; pc += 2;" (table_ref g "r0")
      | 2 -> sprintf "r2 = (r2 ^ (r0 >> %d)) + %d; pc += 1;"
               (Support.Rng.range g.rng 1 6) (Support.Rng.range g.rng 1 63)
      | 3 ->
        sprintf "r0 = %s; pc += 2;"
          (call_some_fn g [ sprintf "r1 + %s" (buf_byte "pc + 1"); "r2" ])
      | 4 -> sprintf "if (r0 > r1) { r2 += %d; } r1 = r1 + 1; pc += 1;"
               (Support.Rng.range g.rng 1 31)
      | _ -> sprintf "r1 = r1 * %d + %s; pc += 3;" (odd_const g 3 9) (buf_byte "pc + 1")
    in
    line g "      case %d: %s break;" op body
  done;
  line g "      default: pc += 1; break;";
  line g "    }";
  line g "  }";
  line g "  return (r0 ^ r1) + r2;";
  line g "}";
  line g ""

(* ------------------------------------------------------------------ *)
(* Reporting path: printf -> puts material                             *)
(* ------------------------------------------------------------------ *)

let gen_report g =
  line g "extern int printf(char *fmt);";
  line g "static void report_event(void) { printf(\"%s event\\n\"); }"
    g.p.Profile.name;
  line g ""

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Helper-mixing chunk size: the final keep-everything-reachable round
   dispatches through chunk functions of at most this many helpers, so
   no generated function grows with the profile (a 10k-helper profile
   must not produce a 2.5k-branch target_main — real programs keep
   function sizes bounded as the program grows, and several compile
   passes are superlinear in function size). Profiles small enough to
   fit one chunk keep the historical single-loop shape. *)
let mix_chunk = 64

let gen_mix_chunk g j lo hi =
  line g "static int mix_%d(char *buf, int acc) {" j;
  for k = lo to hi - 1 do
    if k mod 4 = 0 then
      line g "  if (%s > %d) acc += helper_%d(acc, %s);"
        (buf_byte (string_of_int (3 + (k mod 5))))
        (64 + (17 * k mod 128))
        k
        (buf_byte (string_of_int (k mod 8)))
  done;
  line g "  return acc;";
  line g "}";
  line g ""

let gen_mix_chunks g =
  if g.p.Profile.n_helpers > mix_chunk then
    for j = 0 to ((g.p.Profile.n_helpers - 1) / mix_chunk) do
      gen_mix_chunk g j (j * mix_chunk)
        (min g.p.Profile.n_helpers ((j + 1) * mix_chunk))
    done

let gen_main g =
  line g "int target_main(char *buf, int len) {";
  line g "  if (len < 8) return -1;";
  line g "  int acc = 0;";
  (* magic-byte roadblocks, nested so CmpLog has work to do *)
  let magics =
    List.init g.p.Profile.magic_checks (fun _ -> Support.Rng.range g.rng 33 126)
  in
  let rec emit_magics depth = function
    | [] ->
      line g "%s  acc += 7777;" (String.make (depth * 2) ' ');
      line g "%s  report_event();" (String.make (depth * 2) ' ')
    | m :: rest ->
      line g "%s  if (buf[%d] == %d) {" (String.make (depth * 2) ' ') depth m;
      emit_magics (depth + 1) rest;
      line g "%s  }" (String.make (depth * 2) ' ')
  in
  emit_magics 0 magics;
  (* dispatch into the parsers based on input bytes *)
  for k = 0 to g.p.Profile.n_parsers - 1 do
    if k = 0 then line g "  acc += parse_0(buf, len, 1);"
    else
      line g "  if (%s %% %d == %d) acc ^= parse_%d(buf, len, %d);"
        (buf_byte (string_of_int (k mod 7)))
        (k + 2) (k mod (k + 2)) k (1 + (k mod 4))
  done;
  (match g.p.Profile.opcode_switch with
  | Some _ -> line g "  acc += vdbe_exec(buf, len);"
  | None -> ());
  (* a final mixing round through the helpers keeps them all reachable;
     large profiles dispatch through the bounded-size mix chunks *)
  if g.p.Profile.n_helpers > mix_chunk then
    for j = 0 to (g.p.Profile.n_helpers - 1) / mix_chunk do
      line g "  acc = mix_%d(buf, acc);" j
    done
  else
    for k = 0 to g.p.Profile.n_helpers - 1 do
      if k mod 4 = 0 then
        line g "  if (%s > %d) acc += helper_%d(acc, %s);"
          (buf_byte (string_of_int (3 + (k mod 5))))
          (64 + (17 * k mod 128))
          k
          (buf_byte (string_of_int (k mod 8)))
    done;
  line g "  return acc;";
  line g "}"

(** Generate the program source for a profile. *)
let source (p : Profile.t) =
  let g = { b = Buffer.create 8192; rng = Support.Rng.create p.Profile.seed; p } in
  line g "/* synthetic workload: %s (seed %d) */" p.Profile.name p.Profile.seed;
  gen_tables g;
  gen_report g;
  gen_tiny g;
  gen_helpers g;
  gen_parsers g;
  (match p.Profile.opcode_switch with
  | Some n -> gen_interpreter g n
  | None -> ());
  gen_mix_chunks g;
  gen_main g;
  Buffer.contents g.b

(** Compile a profile to IR. *)
let compile (p : Profile.t) =
  Minic.Lower.compile ~name:p.Profile.name (source p)

(** Deterministic seed inputs for a profile (pre-fuzzing corpus). *)
let seed_inputs ?(count = 4) ?(len = 48) (p : Profile.t) =
  let rng = Support.Rng.create (p.Profile.seed * 7919) in
  List.init count (fun _ ->
      String.init len (fun _ -> Char.chr (Support.Rng.int rng 256)))
