(** Workload profiles: one synthetic stand-in per benchmark target (the
    FuzzBench ∩ fuzzer-test-suite programs of paper Section 5), each
    parameterizing the generator to match the shape that drives the
    figures — function size distribution, interprocedural coupling,
    comparison density, and (for sqlite) the one enormous interpreter
    function. *)

type t = {
  name : string;
  seed : int;
  n_helpers : int;  (** mid-size arithmetic helper functions *)
  helper_stmts : int;
  n_tiny : int;  (** tiny inline-friendly functions *)
  n_parsers : int;  (** byte-consuming parser functions *)
  parser_cases : int;
  opcode_switch : int option;  (** giant interpreter: number of opcodes *)
  coupling : int;  (** 0 = independent functions .. 3 = dense call graph *)
  const_tables : int;
  magic_checks : int;  (** comparison roadblocks in the header check *)
  hot_skew : int;
      (** skewed hot/cold cycle distribution: every 16th helper's mixing
          loop runs [hot_skew]x as many trips, concentrating cycles in a
          small hot set. 0 = uniform (byte-identical source and RNG
          draws to the pre-knob generator). *)
}

(** The 13 benchmark profiles, in the paper's order. *)
val all : t list

(** ~10k-function (and, under Max partitioning, ~10k-fragment) stress
    shape for the O(changed)-refresh benchmarks. Not part of {!all}:
    whole-suite drivers would take minutes on it; {!find} resolves
    ["sqlite-xxl"] anyway. *)
val sqlite_xxl : t

(** Resolves any profile by name: {!all}, {!sqlite_xxl} and {!tiny}. *)
val find : string -> t option

(** @raise Invalid_argument for unknown names. *)
val find_exn : string -> t

(** A smaller profile for unit tests and the quickstart example. *)
val tiny : t
