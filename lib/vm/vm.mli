(** Execution engine: runs linked machine code with per-instruction cycle
    accounting. Every "execution duration" in the reproduced figures is a
    cycle count from this VM, so results are deterministic and
    hardware-independent while preserving relative costs.

    The block-entry hook is how the dynamic-binary-instrumentation
    baselines (DrCov, libInst) charge translation/dispatch/trampoline
    costs without modifying the code. *)

exception Fault of string

(** One inline-counter site's attribution: executed increments at one
    data address and their cycle cost (see {!profile_inc_sites}). *)
type inc_site = {
  mutable is_hits : int;
  mutable is_cycles : int;
}

(** Optional execution profile: per-function cycle attribution plus
    block/probe/call hit counts. Pure observation — enabling it never
    changes [cycles], [steps] or results. *)
type profile = {
  mutable pr_block_hits : int;  (** basic-block entries *)
  mutable pr_probe_hits : int;  (** inline counter increments executed *)
  mutable pr_calls : int;  (** guest-to-guest calls dispatched *)
  mutable pr_host_calls : int;  (** host function calls *)
  pr_fn_cycles : (string, int ref) Hashtbl.t;
  pr_fn_blocks : (string, int ref) Hashtbl.t;
  pr_inc_sites : (int, inc_site) Hashtbl.t;
      (** per-counter-address attribution (address -> hits, cycles) *)
}

(** Stack map captured at an OSR point: the live execution state the
    migration carried across images. Registers and the stack transfer
    verbatim (both tiers share the machine's calling convention and the
    guest's memory layout); frames below the OSR point keep draining on
    their retained old code. *)
type stack_map = {
  sm_fn : string;  (** function dispatched first on the new image *)
  sm_depth : int;  (** live frames retained on the old code *)
  sm_sp : int64;  (** stack pointer, transferred verbatim *)
  sm_regs : int64 array;  (** register file at the OSR point *)
}

type t = {
  mutable exe : Link.Linker.exe;
      (** swapped in place by an OSR migration; frames already on the
          stack keep direct references to their old code *)
  mem : Bytes.t;
  regs : int64 array;  (** 16 registers; r0 = return value *)
  mutable cycles : int;
  mutable steps : int;
  max_steps : int;
  mutable budget_hit : bool;
      (** the last {!Fault} was step-budget exhaustion (see
          {!budget_exhausted}) *)
  host : (string, t -> int64) Hashtbl.t;
  mutable host_cost : int;  (** cycles charged per host call *)
  mutable block_hook : (t -> string -> int -> unit) option;
  mutable stack_base : int;
  mutable prof : profile option;
  mutable pending_osr : (Link.Linker.exe * (int * int64) list) option;
      (** queued image swap: (new exe, patched-slot delta); applied at
          the next OSR point (fragment boundary = call dispatch) *)
  mutable osr_migrations : int;
  mutable last_stack_map : stack_map option;
}

val mem_size : int

(** Fresh VM with the executable's data image loaded.
    @raise Fault if the image does not fit. *)
val create : ?max_steps:int -> Link.Linker.exe -> t

(** Host functions read their arguments from [regs.(0..5)] and return the
    value placed in r0. *)
val register_host : t -> string -> (t -> int64) -> unit

(** Called on every basic-block entry with (function name, block index). *)
val set_block_hook : t -> (t -> string -> int -> unit) -> unit

(** Queue an on-stack-replacement image swap, applied at the next OSR
    point (the next call dispatch — a fragment boundary). [slots] is the
    byte-level data delta of the relink that produced [exe]
    ({!Link.Incremental.last_slots}), replayed into live memory so the
    data image matches a fresh load of [exe]. Code addresses are stable
    across an incremental relink, so patching the delta and switching
    the symbol tables is the whole migration: the about-to-dispatch
    callee resolves against the new image while in-flight frames drain
    on their retained old code. *)
val request_osr : t -> exe:Link.Linker.exe -> slots:(int * int64) list -> unit

(** Is a swap queued but not yet applied (no OSR point reached)? *)
val osr_pending : t -> bool

(** Migrations applied so far on this VM. *)
val osr_migrations : t -> int

(** Stack map captured by the most recent migration, if any. *)
val last_stack_map : t -> stack_map option

(** Charge extra cycles (instrumentation-engine overhead models). *)
val add_cycles : t -> int -> unit

(** Attach (or return the already-attached) execution profile. *)
val enable_profile : t -> profile

val profile : t -> profile option

(** Per-function cycle attribution, heaviest first (ties by name). *)
val profile_top : profile -> (string * int) list

(** Per-function block-entry counts, busiest first (ties by name). *)
val profile_blocks : profile -> (string * int) list

(** Per-site inline-counter attribution as (address, hits, cycles),
    ascending by address. The instrumentation layer maps addresses back
    to probe ids ({!Odin.Cov.probe_costs}). *)
val profile_inc_sites : profile -> (int * int * int) list

(** @raise Link.Linker.Link_error for unknown symbols. *)
val addr_of : t -> string -> int64

(** Typed little-endian memory access (loads sign-extend to the type's
    width). @raise Fault on out-of-bounds access. *)
val load_mem : t -> Ir.Types.ty -> int64 -> int64

val store_mem : t -> Ir.Types.ty -> int64 -> int64 -> unit

(** Copy an input buffer into fresh memory below the stack; returns its
    address. *)
val write_buffer : t -> string -> int64

(** Call a function with up to 6 integer arguments; returns r0.
    @raise Fault on traps (undefined symbols, division by zero, memory
    faults, stack overflow, step-budget exhaustion). *)
val call : t -> string -> int64 list -> int64

(** Reset cycle/step counters (memory and globals keep their state). *)
val reset_counters : t -> unit

(** Did the last {!Fault} come from step-budget exhaustion? Lets callers
    classify "ran too long" (deterministic timeout — e.g. a mutation
    campaign's timeout verdict) apart from a genuine trap, without
    parsing the fault message. *)
val budget_exhausted : t -> bool
