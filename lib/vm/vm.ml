(** Execution engine: runs linked machine code with per-instruction cycle
    accounting. Every "execution duration" in the reproduced figures is a
    cycle count from this VM, so results are deterministic and
    hardware-independent while preserving relative costs.

    The engine exposes a block-entry hook, which is how the dynamic-
    binary-instrumentation baselines (DrCov, libInst) charge their
    translation/dispatch/trampoline costs without touching the code. *)

open Codegen.Mach

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

(** One inline-counter site's attribution: how many times the counter
    increment at a given data address executed, and the VM cycles it
    cost. The address identifies the site (the instrumentation layer
    maps it back to a probe id — e.g. {!Odin.Cov} counters live at
    [__odin_counters + pid]). *)
type inc_site = {
  mutable is_hits : int;
  mutable is_cycles : int;
}

(** Optional execution profile: cycle attribution per function plus
    block/probe/call hit counts. Pure observation — enabling a profile
    never changes [cycles], [steps] or execution results; the same
    cycle increments are simply mirrored into the per-function table. *)
type profile = {
  mutable pr_block_hits : int;  (** basic-block entries *)
  mutable pr_probe_hits : int;  (** inline counter increments executed *)
  mutable pr_calls : int;  (** guest-to-guest calls dispatched *)
  mutable pr_host_calls : int;  (** host function calls *)
  pr_fn_cycles : (string, int ref) Hashtbl.t;  (** cycles per function *)
  pr_fn_blocks : (string, int ref) Hashtbl.t;  (** block entries per function *)
  pr_inc_sites : (int, inc_site) Hashtbl.t;
      (** per-counter-address attribution, keyed by the increment's
          target data address *)
}

(** Stack map captured at an OSR point: the live execution state the
    migration carried across images. Registers and the stack transfer
    verbatim (both tiers share the machine's calling convention and the
    guest's memory layout); frames below the OSR point keep draining on
    their retained old code. *)
type stack_map = {
  sm_fn : string;  (** function dispatched first on the new image *)
  sm_depth : int;  (** live frames retained on the old code *)
  sm_sp : int64;  (** stack pointer, transferred verbatim *)
  sm_regs : int64 array;  (** register file at the OSR point *)
}

type t = {
  mutable exe : Link.Linker.exe;
      (** swapped in place by an OSR migration; frames already on the
          stack keep direct references to their old code *)
  mem : Bytes.t;
  regs : int64 array;
  mutable cycles : int;
  mutable steps : int;
  max_steps : int;
  mutable budget_hit : bool;
      (** the last {!Fault} was step-budget exhaustion, not a genuine
          trap — lets callers classify "ran too long" (a timeout
          verdict) apart from "crashed" without parsing the message *)
  host : (string, t -> int64) Hashtbl.t;
      (** host functions read args from regs r0..r5, return the result *)
  mutable host_cost : int;  (** default cycles charged per host call *)
  mutable block_hook : (t -> string -> int -> unit) option;
      (** called on block entry with (function name, block index) *)
  mutable stack_base : int;
  mutable prof : profile option;
  mutable pending_osr : (Link.Linker.exe * (int * int64) list) option;
      (** queued image swap: (new exe, patched-slot delta); applied at
          the next OSR point (fragment boundary = call dispatch) *)
  mutable osr_migrations : int;
  mutable last_stack_map : stack_map option;
}

let mem_size = 1 lsl 20 (* 1 MiB; data starts at 256 KiB, stack at the top *)

let create ?(max_steps = 200_000_000) exe =
  let vm =
    {
      exe;
      mem = Bytes.make mem_size '\x00';
      regs = Array.make num_phys 0L;
      cycles = 0;
      steps = 0;
      max_steps;
      budget_hit = false;
      host = Hashtbl.create 8;
      host_cost = 10;
      block_hook = None;
      stack_base = mem_size - 16;
      prof = None;
      pending_osr = None;
      osr_migrations = 0;
      last_stack_map = None;
    }
  in
  (* load the data image *)
  List.iter
    (fun (base, bytes) ->
      if base + Bytes.length bytes > mem_size then fault "data image too large";
      Bytes.blit bytes 0 vm.mem base (Bytes.length bytes))
    exe.Link.Linker.image;
  vm

let register_host vm name fn = Hashtbl.replace vm.host name fn

(* ------------------------------------------------------------------ *)
(* On-stack replacement                                                *)
(* ------------------------------------------------------------------ *)

(** Queue an image swap to happen at the next OSR point (the next call
    dispatch — a fragment boundary). [slots] is the byte-level delta of
    the relink that produced [exe] (see [Link.Incremental.last_slots]):
    the absolute (address, value) pairs replayed into the live memory so
    the data image matches what a fresh load of [exe] would contain.
    Code addresses are stable across an incremental relink (slab
    placement), so patching the data delta and switching the symbol
    tables is the whole migration. *)
let request_osr vm ~exe ~slots = vm.pending_osr <- Some (exe, slots)

let osr_pending vm = vm.pending_osr <> None
let osr_migrations vm = vm.osr_migrations
let last_stack_map vm = vm.last_stack_map

(* Apply a queued swap, if any. Called at OSR points only: the about-to-
   dispatch callee then resolves against the new image, while frames
   already on the stack drain on their retained old code. [fn] and
   [depth] describe the execution state for the captured stack map. *)
let osr_apply vm fn depth =
  match vm.pending_osr with
  | None -> ()
  | Some (exe, slots) ->
    vm.exe <- exe;
    List.iter
      (fun (addr, v) ->
        if addr < 0 || addr + 8 > mem_size then
          fault "OSR slot out of range at 0x%x" addr;
        Bytes.set_int64_le vm.mem addr v)
      slots;
    vm.last_stack_map <-
      Some
        {
          sm_fn = fn;
          sm_depth = depth;
          sm_sp = vm.regs.(reg_sp);
          sm_regs = Array.copy vm.regs;
        };
    vm.osr_migrations <- vm.osr_migrations + 1;
    vm.pending_osr <- None
let set_block_hook vm hook = vm.block_hook <- Some hook
let add_cycles vm n = vm.cycles <- vm.cycles + n

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

let enable_profile vm =
  match vm.prof with
  | Some p -> p
  | None ->
    let p =
      {
        pr_block_hits = 0;
        pr_probe_hits = 0;
        pr_calls = 0;
        pr_host_calls = 0;
        pr_fn_cycles = Hashtbl.create 32;
        pr_fn_blocks = Hashtbl.create 32;
        pr_inc_sites = Hashtbl.create 64;
      }
    in
    vm.prof <- Some p;
    p

let profile vm = vm.prof

let bump table key n =
  match Hashtbl.find_opt table key with
  | Some cell -> cell := !cell + n
  | None -> Hashtbl.replace table key (ref n)

(** Per-function cycle attribution, heaviest first (ties by name). *)
let profile_top p =
  Hashtbl.fold (fun fn c acc -> (fn, !c) :: acc) p.pr_fn_cycles []
  |> List.sort (fun (n1, c1) (n2, c2) ->
         match compare c2 c1 with 0 -> compare n1 n2 | c -> c)

(** Per-function block-entry counts, busiest first (ties by name). *)
let profile_blocks p =
  Hashtbl.fold (fun fn c acc -> (fn, !c) :: acc) p.pr_fn_blocks []
  |> List.sort (fun (n1, c1) (n2, c2) ->
         match compare c2 c1 with 0 -> compare n1 n2 | c -> c)

(** Per-site inline-counter attribution as (address, hits, cycles),
    ascending by address — deterministic for a deterministic run. *)
let profile_inc_sites p =
  Hashtbl.fold (fun addr s acc -> (addr, s.is_hits, s.is_cycles) :: acc)
    p.pr_inc_sites []
  |> List.sort compare

let addr_of vm name = Link.Linker.addr_of vm.exe name

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let check _vm addr width =
  let a = Int64.to_int addr in
  if a < 0 || a + width > mem_size then fault "memory fault at 0x%Lx" addr;
  a

let load_mem vm ty addr =
  let width = Ir.Types.size_of ty in
  let a = check vm addr width in
  let raw =
    match width with
    | 1 -> Int64.of_int (Char.code (Bytes.get vm.mem a))
    | 2 -> Int64.of_int (Bytes.get_uint16_le vm.mem a)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le vm.mem a)
    | 8 -> Bytes.get_int64_le vm.mem a
    | _ -> fault "load width %d" width
  in
  Ir.Types.normalize ty raw

let store_mem vm ty addr v =
  let width = Ir.Types.size_of ty in
  let a = check vm addr width in
  match width with
  | 1 -> Bytes.set vm.mem a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le vm.mem a (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le vm.mem a (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le vm.mem a v
  | _ -> fault "store width %d" width

(** Reserve a region below the stack and copy [bytes] into it; returns its
    address. Used to hand fuzzing inputs to the program. *)
let write_buffer vm bytes =
  let size = (max 1 (String.length bytes) + 15) / 16 * 16 in
  vm.stack_base <- vm.stack_base - size;
  Bytes.blit_string bytes 0 vm.mem vm.stack_base (String.length bytes);
  Int64.of_int vm.stack_base

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let operand vm = function
  | Oreg r -> vm.regs.(r)
  | Oimm v -> v
  | Osym (s, add) -> Int64.add (addr_of vm s) (Int64.of_int add)

let eaddr vm = function
  | Abase (r, off) -> Int64.add vm.regs.(r) (Int64.of_int off)
  | Asym (s, off) -> Int64.add (addr_of vm s) (Int64.of_int off)
  | Aslot _ -> fault "unresolved frame slot at execution"

(* block-index lookup: is [pc] the start of a block in [mf]? *)
let block_at (mf : mfunc) pc =
  let rec go i =
    if i >= Array.length mf.mf_blocks then None
    else begin
      let start, _ = mf.mf_blocks.(i) in
      if start = pc then Some i else if start > pc then None else go (i + 1)
    end
  in
  go 0

let enter_block vm (mf : mfunc) pc =
  (* fault site for killing a guest execution mid-flight (farm
     robustness tests); free when no plan targets it *)
  Support.Fault.hit "vm.step";
  (match vm.prof with
  | Some p when block_at mf pc <> None ->
    p.pr_block_hits <- p.pr_block_hits + 1;
    bump p.pr_fn_blocks mf.mf_name 1
  | _ -> ());
  match vm.block_hook with
  | None -> ()
  | Some hook -> (
    match block_at mf pc with
    | Some idx -> hook vm mf.mf_name idx
    | None -> ())

type frame = { fr_fn : mfunc; fr_pc : int }

(** Call [fname] with up to 6 integer arguments; returns r0. *)
let call vm fname args =
  let entry =
    match Link.Linker.find_func vm.exe fname with
    | Some mf -> mf
    | None -> fault "call to unknown function @%s" fname
  in
  if List.length args > max_reg_args then fault "too many arguments";
  List.iteri (fun i v -> vm.regs.(i) <- v) args;
  vm.regs.(reg_sp) <- Int64.of_int vm.stack_base;
  let stack : frame list ref = ref [] in
  let cur = ref entry in
  let pc = ref 0 in
  let running = ref true in
  enter_block vm entry 0;
  let dispatch_call name ret_pc =
    (* OSR point: a queued tier swap lands here, before the callee is
       resolved, so the callee runs on the new image *)
    osr_apply vm name (List.length !stack);
    match Link.Linker.find_func vm.exe name with
    | Some mf ->
      stack := { fr_fn = !cur; fr_pc = ret_pc } :: !stack;
      if List.length !stack > 4096 then fault "call stack overflow";
      (match vm.prof with Some p -> p.pr_calls <- p.pr_calls + 1 | None -> ());
      cur := mf;
      pc := 0;
      enter_block vm mf 0
    | None -> (
      match Hashtbl.find_opt vm.host name with
      | Some h ->
        vm.cycles <- vm.cycles + vm.host_cost;
        (match vm.prof with
        | Some p ->
          p.pr_host_calls <- p.pr_host_calls + 1;
          (* the host call's cycles are charged to the calling function *)
          bump p.pr_fn_cycles (!cur).mf_name vm.host_cost
        | None -> ());
        vm.regs.(reg_ret) <- h vm;
        pc := ret_pc
      | None -> fault "call to undefined symbol @%s" name)
  in
  while !running do
    let mf = !cur in
    let code = mf.mf_code in
    if !pc < 0 || !pc >= Array.length code then
      fault "pc out of range in @%s" mf.mf_name;
    let inst = code.(!pc) in
    vm.steps <- vm.steps + 1;
    if vm.steps > vm.max_steps then begin
      vm.budget_hit <- true;
      fault "cycle budget exhausted"
    end;
    vm.cycles <- vm.cycles + cost inst;
    (match vm.prof with
    | Some p ->
      bump p.pr_fn_cycles mf.mf_name (cost inst);
      (* inline counter increments are the compiled form of probes *)
      (match inst with
      | Mincmem _ -> p.pr_probe_hits <- p.pr_probe_hits + 1
      | _ -> ())
    | None -> ());
    (match inst with
    | Mmov (d, o) ->
      vm.regs.(d) <- operand vm o;
      incr pc
    | Mbin (op, ty, d, s, o) ->
      (match Ir.Eval.binop ty op vm.regs.(s) (operand vm o) with
      | Some r -> vm.regs.(d) <- r
      | None -> fault "division by zero in @%s" mf.mf_name);
      incr pc
    | Mcmp (p, ty, d, s, o) ->
      vm.regs.(d) <- Ir.Eval.icmp ty p vm.regs.(s) (operand vm o);
      incr pc
    | Mcmov (d, c, s) ->
      if vm.regs.(c) <> 0L then vm.regs.(d) <- vm.regs.(s);
      incr pc
    | Mld (ty, d, a) ->
      vm.regs.(d) <- load_mem vm ty (eaddr vm a);
      incr pc
    | Mst (ty, s, a) ->
      store_mem vm ty (eaddr vm a) vm.regs.(s);
      incr pc
    | Mincmem (ty, a) ->
      let addr = eaddr vm a in
      (match vm.prof with
      | Some p ->
        (* per-site attribution: charge this increment's cycles to its
           counter address, so instrumentation cost can be broken down
           per probe *)
        let site =
          match Hashtbl.find_opt p.pr_inc_sites (Int64.to_int addr) with
          | Some s -> s
          | None ->
            let s = { is_hits = 0; is_cycles = 0 } in
            Hashtbl.replace p.pr_inc_sites (Int64.to_int addr) s;
            s
        in
        site.is_hits <- site.is_hits + 1;
        site.is_cycles <- site.is_cycles + cost inst
      | None -> ());
      store_mem vm ty addr (Int64.add (load_mem vm ty addr) 1L);
      incr pc
    | Mlea (d, a) ->
      vm.regs.(d) <- eaddr vm a;
      incr pc
    | Mjmp t ->
      pc := t;
      enter_block vm mf t
    | Mjnz (r, t) ->
      if vm.regs.(r) <> 0L then begin
        pc := t;
        enter_block vm mf t
      end
      else begin
        incr pc;
        enter_block vm mf !pc
      end
    | Mjtab (r, cases, d) ->
      let key = vm.regs.(r) in
      let target = ref d in
      (try
         Array.iter
           (fun (k, t) ->
             if Int64.equal k key then begin
               target := t;
               raise Exit
             end)
           cases
       with Exit -> ());
      pc := !target;
      enter_block vm mf !target
    | Mcall name -> dispatch_call name (!pc + 1)
    | Mcallr r -> (
      let addr = vm.regs.(r) in
      match Hashtbl.find_opt vm.exe.Link.Linker.fn_at_addr addr with
      | Some name -> dispatch_call name (!pc + 1)
      | None -> (
        match Hashtbl.find_opt vm.exe.Link.Linker.host_at_addr addr with
        | Some name -> dispatch_call name (!pc + 1)
        | None -> fault "indirect call to 0x%Lx (not a function)" addr))
    | Mret -> (
      match !stack with
      | [] -> running := false
      | fr :: rest ->
        stack := rest;
        cur := fr.fr_fn;
        pc := fr.fr_pc)
    | Mpush r ->
      vm.regs.(reg_sp) <- Int64.sub vm.regs.(reg_sp) 8L;
      store_mem vm Ir.Types.I64 vm.regs.(reg_sp) vm.regs.(r);
      incr pc
    | Mpop r ->
      vm.regs.(r) <- load_mem vm Ir.Types.I64 vm.regs.(reg_sp);
      vm.regs.(reg_sp) <- Int64.add vm.regs.(reg_sp) 8L;
      incr pc
    | Mspadj n ->
      vm.regs.(reg_sp) <- Int64.add vm.regs.(reg_sp) (Int64.of_int n);
      incr pc)
  done;
  vm.regs.(reg_ret)

(** Reset the per-run counters (memory and globals keep their state). *)
let reset_counters vm =
  vm.cycles <- 0;
  vm.steps <- 0;
  vm.budget_hit <- false

(** Did the last {!Fault} come from step-budget exhaustion? Distinguishes
    a mutant (or program) that ran too long — a deterministic timeout
    verdict — from one that genuinely trapped. *)
let budget_exhausted vm = vm.budget_hit
