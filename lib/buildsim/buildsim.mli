(** Build-time cost model for the Figure 3 motivation experiment:
    stage-by-stage cost of a from-scratch target build, calibrated so
    the synthetic libxml2 workload reproduces the paper's measured
    breakdown, and the fraction of it that bitcode caching eliminates. *)

(** Program statistics that drive the model. *)
type stats = {
  source_bytes : int;
  source_lines : int;
  functions : int;  (** defined functions *)
  blocks : int;
  instructions : int;
  globals : int;  (** all global values, including data *)
}

val stats_of_module : string -> Ir.Modul.t -> stats

(** Per-unit stage rates (seconds per driving unit). *)
type rates = {
  r_autogen : float;
  r_configure : float;
  r_frontend : float;
  r_optimize : float;
  r_codegen : float;
  r_link : float;
}

(** Modelled build-time breakdown, in seconds (Figure 3 columns). *)
type t = {
  autogen : float;
  configure : float;
  frontend : float;
  optimize : float;
  codegen : float;
  link : float;
}

val model : rates -> stats -> t
val total : t -> float

(** Fraction of {!total} eliminated by caching the pristine bitcode
    (build system + frontend never rerun) — the paper's "up to 45%". *)
val savings_from_caching : t -> float

(** Fit the rates against the libxml2 workload and the paper's measured
    Figure 3 numbers. *)
val calibrate : unit -> rates
