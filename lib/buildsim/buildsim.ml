(** Build-time cost model for the paper's Figure 3 motivation: where does
    the time go when a fuzzing target is rebuilt from scratch, and how
    much of it does bitcode caching (Odin's instrument-first pipeline)
    eliminate?

    The paper measures libxml2: autogen 10.83 s, configure 4.56 s,
    frontend 6.22 s, optimization + instrumentation 15.28 s, codegen
    2.75 s, link 0.06 s — and observes that caching the pristine bitcode
    removes the build system and frontend stages, "up to 45% of the
    total build time".

    We cannot run autotools here, so the model is *calibrated*: stage
    rates are fitted so that the synthetic libxml2 workload reproduces
    the paper's absolute numbers exactly, and every other workload is
    priced with the same per-unit rates. Each stage scales with the
    program statistic that dominates it in a real build:

    - autogen    ~ source lines (generated headers/tables scale with code)
    - configure  ~ function count (feature probes per compilation unit)
    - frontend   ~ source bytes (lexing/parsing/type checking)
    - optimize   ~ IR instructions (the middle end is per-instruction)
    - codegen    ~ IR instructions (isel/regalloc/emit likewise)
    - link       ~ global symbols (symbol resolution) *)

type stats = {
  source_bytes : int;
  source_lines : int;
  functions : int;  (** defined functions *)
  blocks : int;
  instructions : int;
  globals : int;  (** all global values, including data *)
}

(** Measure the statistics that drive the model from a workload's source
    text and its (pristine, unoptimized) IR module. *)
let stats_of_module source (m : Ir.Modul.t) =
  let fns = Ir.Modul.defined_functions m in
  {
    source_bytes = String.length source;
    source_lines =
      String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 source;
    functions = List.length fns;
    blocks = List.fold_left (fun acc f -> acc + Ir.Func.block_count f) 0 fns;
    instructions = List.fold_left (fun acc f -> acc + Ir.Func.insn_count f) 0 fns;
    globals = List.length (Ir.Modul.globals m);
  }

(** Per-unit stage rates (seconds per driving unit). *)
type rates = {
  r_autogen : float;  (** s / source line *)
  r_configure : float;  (** s / function *)
  r_frontend : float;  (** s / source byte *)
  r_optimize : float;  (** s / instruction *)
  r_codegen : float;  (** s / instruction *)
  r_link : float;  (** s / global symbol *)
}

(** Modelled build-time breakdown of one program, in seconds (the
    columns of Figure 3). *)
type t = {
  autogen : float;
  configure : float;
  frontend : float;
  optimize : float;
  codegen : float;
  link : float;
}

(* The paper's libxml2 measurements (Figure 3), in seconds. *)
let paper_libxml2 =
  {
    autogen = 10.83;
    configure = 4.56;
    frontend = 6.22;
    optimize = 15.28;
    codegen = 2.75;
    link = 0.06;
  }

let model rates (s : stats) =
  {
    autogen = rates.r_autogen *. float_of_int s.source_lines;
    configure = rates.r_configure *. float_of_int s.functions;
    frontend = rates.r_frontend *. float_of_int s.source_bytes;
    optimize = rates.r_optimize *. float_of_int s.instructions;
    codegen = rates.r_codegen *. float_of_int s.instructions;
    link = rates.r_link *. float_of_int s.globals;
  }

let total b = b.autogen +. b.configure +. b.frontend +. b.optimize +. b.codegen +. b.link

(** Fraction of the total build eliminated by caching the pristine
    bitcode: the build system (autogen + configure) and the frontend
    never rerun — instrumentation restarts from the cached IR. *)
let savings_from_caching b = (b.autogen +. b.configure +. b.frontend) /. total b

(** Fit the per-unit rates so the synthetic libxml2 workload reproduces
    the paper's Figure 3 breakdown exactly; all other programs are then
    priced with the same rates. *)
let calibrate () =
  let p = Workloads.Profile.find_exn "libxml2" in
  let source = Workloads.Generate.source p in
  let m = Minic.Lower.compile source in
  let s = stats_of_module source m in
  let per paper units = paper /. float_of_int (max 1 units) in
  {
    r_autogen = per paper_libxml2.autogen s.source_lines;
    r_configure = per paper_libxml2.configure s.functions;
    r_frontend = per paper_libxml2.frontend s.source_bytes;
    r_optimize = per paper_libxml2.optimize s.instructions;
    r_codegen = per paper_libxml2.codegen s.instructions;
    r_link = per paper_libxml2.link s.globals;
  }
