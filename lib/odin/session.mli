(** The Odin engine (paper Sections 3.1, 3.3 and 4).

    A session owns the pristine whole-program IR, the partition plan, the
    probe manager, the per-fragment machine-code cache and the linked
    executable. The lifecycle is:

    {[
      let session = Session.create ~keep:["main"] m in
      (* register probes on session.manager; set the patcher *)
      ignore (Session.build session);           (* initial full build *)
      ... run Session.executable, change probe state ...
      ignore (Session.refresh session)          (* on-the-fly recompile *)
    ]}

    [refresh] runs Algorithm 2: changed probes are propagated to their
    fragments, the fragments' *other* active probes are back-propagated in
    (so they survive the recompile), a temporary IR is extracted by
    cloning exactly the affected symbols, the user patch logic instruments
    it, and each affected fragment is re-optimized, re-compiled and
    relinked from the cache.

    Rebuilds are {e transactional}: mutable session state is snapshotted
    before each build/refresh. A fragment whose compile keeps failing
    after bounded retries degrades to its last-good (or pristine) object
    and re-heals on a later refresh; a patch- or link-stage failure rolls
    the whole session back to the snapshot. {!try_build} / {!try_refresh}
    report this as a {!rebuild_outcome}; {!build} / {!refresh} are the
    raising compatibility wrappers. *)

module SSet : Set.S with type elt = string

(** One (re)compilation: which fragments, how many probes applied, and
    measured wall-clock durations. A thin view over the telemetry span
    tree recorded during {!rebuild}. *)
type recompile_event = {
  ev_fragments : int list;  (** fragment ids scheduled *)
  ev_cache_hits : int;  (** of those, served from the object cache/store *)
  ev_probes_applied : int;
  ev_compile_time : float;  (** seconds, middle end + back end *)
  ev_link_time : float;  (** seconds *)
  ev_per_fragment : (int * float) list;  (** (fragment id, seconds) *)
  ev_link_incremental : bool;  (** served by patching instead of a full relink *)
  ev_symbols_patched : int;  (** symbols re-placed by the incremental linker *)
}

(** Pipeline stage a build error originated in. *)
type build_phase =
  | Schedule
  | Patch
  | Materialize
  | Verify
  | Optimize
  | Codegen
  | Cache
  | Store
  | Link
  | Lifecycle  (** API misuse, e.g. [executable] before [build] *)

(** Structured build failure: the stage, the fragment being compiled (if
    any), the active probe ids in that fragment, and the underlying
    exception when one exists. *)
type build_error = {
  err_phase : build_phase;
  err_fragment : int option;
  err_probes : int list;
  err_exn : exn option;
  err_msg : string;
}

exception Build_error of build_error

val phase_to_string : build_phase -> string

(** Readable multi-line diagnostic (what [odinc] prints). *)
val build_error_to_string : build_error -> string

(** Result of a transactional rebuild: [Ok] — every scheduled fragment
    compiled and linked; [Degraded fids] — the listed fragments serve
    their last-good (or pristine) object after bounded retries failed and
    re-heal on the next refresh; [Rolled_back err] — a patch- or
    link-stage failure restored the pre-rebuild snapshot (previous
    executable, fragment cache and probe epoch intact). *)
type rebuild_outcome = Ok | Degraded of int list | Rolled_back of build_error

(** Content-addressed object cache: structural digest ({!Ir.Shash}) of
    the instrumented fragment IR (plus opt config) -> finished object.
    Shareable between sessions over the same base module (the fuzzing
    farm's workers): a fragment compiled by one session is a hit for
    every other, and a hit on an entry some {e other} session produced
    is counted as a {e cross hit}. *)
type cache_shard = {
  cs_lru : Link.Objfile.t Support.Lru.t;
  cs_lock : Mutex.t;
  cs_owners : (string, int) Hashtbl.t;  (** key -> [~owner] that produced it *)
}

(** The cache is lock-striped: a key maps deterministically (first
    digest byte) to one of [shards] independent LRU shards, each behind
    its own mutex, so parallel compiles rarely contend. *)
type object_cache = {
  oc_shards : cache_shard array;
  oc_cross_hits : int Atomic.t;
  oc_waits : int Atomic.t;
}

(** A fresh shareable cache. [size] = total LRU entry bound (default
    256), split evenly across [shards] stripes (default 8, clamped to
    [size] so a 1-entry cache still evicts like one). *)
val object_cache : ?size:int -> ?shards:int -> unit -> object_cache

(** Hits served to a session other than the one that produced the
    entry; 0 unless the cache is shared. *)
val cross_hits : object_cache -> int

(** Lock acquisitions that found their shard's mutex already held
    (i.e. would have blocked); the contention signal behind the
    [session.cache_shard_waits] counter. *)
val shard_waits : object_cache -> int

val cache_shards : object_cache -> int

(** Total LRU evictions across all shards. *)
val cache_evictions : object_cache -> int

type t = {
  base : Ir.Modul.t;  (** pristine IR; instrumentation never touches it *)
  plan : Partition.plan;
  manager : Instr.Manager.t;
  cache : (int, Link.Objfile.t) Hashtbl.t;  (** fragment id -> object *)
  objects : object_cache;
      (** content-addressed object cache; private by default, shared
          when the session was created with [?objects] *)
  owner : int;  (** this session's identity for cross-hit accounting *)
  store : Support.Objstore.t option;
      (** persistent on-disk tier behind [objects] ([cache_dir]) *)
  pool : Support.Pool.t;  (** executor for per-fragment compiles *)
  runtime : Link.Objfile.t;
  linker : Link.Incremental.t;
      (** persistent link state (address slabs + reverse relocation
          index); lets a refresh patch only what changed *)
  mutable incr_link : bool;
      (** serve rebuilds through the incremental patch path when safe;
          semantics are identical either way (see {!Link.Incremental}) *)
  mutable incr_sched : bool;
      (** O(changed) refresh path: schedule from the dirty-set through
          the persistent symbol->fragment indexes and short-circuit
          unchanged fragments through the Shash memo; schedules and
          images are identical either way *)
  clone_index : (string, int list) Hashtbl.t;
      (** copy-on-use symbol -> fragments holding a clone of it
          (fragment ids ascending); built once at create, immutable —
          the plan's clone sets never change after partitioning *)
  memo : (string, Link.Objfile.t) Hashtbl.t;
      (** per-session optimization memo: Shash digest of the
          instrumented fragment -> finished object. Lets an unchanged
          fragment skip verify, cache locks and {!Opt.Pipeline}
          entirely. Reset by {!set_opt_rounds} (the digest also embeds
          the bound — belt and braces); written only from the serial
          join loop, read concurrently by pool jobs *)
  mutable tiered : bool;
      (** two-tier compilation: freshly changed fragments compile
          through the single-pass tier-0 baseline backend and hot
          fragments are promoted to the optimizing tier in the
          background. Off by default; an untiered session behaves
          exactly as before (everything tier 1) *)
  tier_of : (int, int) Hashtbl.t;
      (** fragment id -> tier its current object was compiled at *)
  promote_pending : (int, unit) Hashtbl.t;
      (** fragments queued for promotion; force-scheduled like
          [degraded] until their tier-1 object lands *)
  mutable tier0_compiles : int;
  mutable tier0_cost : int;
  mutable tier1_compiles : int;
  mutable tier1_cost : int;
  mutable promotion_count : int;
  mutable osr_migrations : int;
  mutable host : string list;
  mutable exe : Link.Linker.exe option;
  mutable patchers : (sched -> unit) list;
  mutable events : recompile_event list;
  mutable opt_rounds : int;
  degraded : (int, unit) Hashtbl.t;
      (** fragments serving a stale/pristine object; force-scheduled
          (re-healed) on every refresh until they compile cleanly *)
  mutable max_retries : int;
  mutable job_timeout : float option;
  mutable rollback_count : int;
  mutable degrade_count : int;
  mutable last_outcome : rebuild_outcome;
  telemetry : Telemetry.Recorder.t;
      (** every build/refresh records schedule → patch → per-fragment
          materialize/verify/optimize/codegen → link spans here; export
          with [Telemetry.Report] / [Telemetry.Trace]. Observation only:
          build results are identical whether or not it is ever read. *)
}

(** Scheduler handle passed to patch logic (the paper's [Scheduler]):
    the probes to apply and the pristine-to-temporary instruction map. *)
and sched = {
  session : t;
  active : Instr.Probe.t list;  (** probes to (re-)apply *)
  temp : Ir.Modul.t;  (** temporary IR: clones of all changed symbols *)
  map : Ir.Clone.map;
  changed_symbols : SSet.t;
  changed_fragments : int list;
}

(** [map_ins sched ins] is the clone of pristine instruction [ins] in the
    temporary IR ([Sched.map] in the paper's API). *)
val map_ins : sched -> Ir.Ins.ins -> Ir.Ins.ins option

(** Find a function by name in the temporary IR. *)
val map_func : sched -> string -> Ir.Func.t option

(** Create a session: verifies [base], runs the classification survey and
    builds the partition plan.
    @param mode partition scheme (default {!Partition.Auto})
    @param copy_on_use ablation switch for copy-on-use cloning
    @param keep entry points that stay exported
    @param runtime_globals data symbols owned by the instrumentation
      runtime (e.g. counter arrays), linked as a separate object
    @param host functions resolved to the fuzzer/VM at run time
    @param opt_rounds fixpoint bound for fragment re-optimization
    @param pool executor for per-fragment compiles (default: the
      process-wide [Support.Pool.default ()], sized by [ODIN_JOBS]).
      Build output is bit-identical for any pool size, including 1.
    @param cache_size LRU bound (entries) of the content-addressed
      object cache (default 256; ignored when [objects] is given)
    @param objects share an existing {!object_cache} with other
      sessions instead of creating a private one
    @param owner this session's identity for cross-hit accounting in a
      shared cache (default 0)
    @param cache_dir directory for the persistent object store; a
      restarted process with the same dir starts warm (corrupt entries
      are detected, quarantined and silently recompiled)
    @param max_retries bounded retry count for transient fragment-compile
      faults (default 2)
    @param job_timeout cooperative per-fragment compile watchdog
      (seconds); an overrunning job degrades instead of stalling the join
    @param incremental_link serve rebuilds through the incremental
      linker's patch path when provably safe (default: on, unless
      [ODIN_INCR_LINK=0]); purely a performance switch — executables
      are semantically identical either way
    @param incremental_sched schedule refreshes from the probe dirty-set
      through persistent symbol->fragment indexes and memoize
      optimization by fragment Shash (default: on, unless
      [ODIN_INCR_SCHED=0]); purely a performance switch — schedules,
      images and outcomes are identical either way
    @param tiered two-tier compilation (default: off, unless
      [ODIN_TIER=1]): freshly changed fragments compile through the
      single-pass tier-0 baseline backend ({!Codegen.Baseline}, no
      {!Opt.Pipeline}), and fragments queued by {!promote} /
      {!promote_hot} land optimized tier-1 objects as ordinary
      incremental relinks. A fully-promoted tiered session serves the
      same objects (same cache keys) as an untiered one
    @param telemetry recorder for build spans/counters (fresh monotonic
      recorder by default; tests inject a virtual-clock recorder) *)
val create :
  ?mode:Partition.mode ->
  ?copy_on_use:bool ->
  ?keep:string list ->
  ?runtime_globals:(string * int) list ->
  ?host:string list ->
  ?opt_rounds:int ->
  ?pool:Support.Pool.t ->
  ?cache_size:int ->
  ?objects:object_cache ->
  ?owner:int ->
  ?cache_dir:string ->
  ?max_retries:int ->
  ?job_timeout:float ->
  ?incremental_link:bool ->
  ?incremental_sched:bool ->
  ?tiered:bool ->
  ?telemetry:Telemetry.Recorder.t ->
  Ir.Modul.t ->
  t

(** Change the fragment re-optimization bound for subsequent rebuilds.
    The bound is part of the object-cache key, so cached objects from
    the old setting are never reused; the per-session optimization memo
    is reset outright. *)
val set_opt_rounds : t -> int -> unit

(** Change the bounded-retry count for transient fragment faults. *)
val set_max_retries : t -> int -> unit

(** Arm/disarm the cooperative per-fragment compile watchdog (seconds). *)
val set_job_timeout : t -> float option -> unit

(** Enable/disable the incremental link path for subsequent rebuilds. *)
val set_incremental_link : t -> bool -> unit

val incremental_link : t -> bool

(** Enable/disable the incremental scheduler + opt memo for subsequent
    rebuilds. *)
val set_incremental_sched : t -> bool -> unit

val incremental_sched : t -> bool

(** Entries in the per-session optimization memo (digest -> object). *)
val memo_size : t -> int

(** Whether this session compiles freshly changed fragments through the
    tier-0 baseline backend. *)
val tiered : t -> bool

(** The tier of a fragment's current object: 1 for untiered sessions;
    for tiered sessions the tier it last compiled at (0 before any
    build — tiered sessions always start at the baseline). *)
val fragment_tier : t -> int -> int

(** Fragment ids currently queued for promotion, ascending. *)
val pending_promotions : t -> int list

(** Queue fragments for promotion to the optimizing tier; they are
    force-scheduled on the next refresh (like degraded fragments) and
    their tier-1 objects land as an ordinary incremental relink. No-op
    on untiered sessions and for fragments already at tier 1. *)
val promote : t -> int list -> unit

(** Promotion policy: accumulate per-function cycle attribution (e.g.
    [Vm.profile_top]) into per-fragment heat through the plan's
    symbol->fragment index and queue every tier-0 fragment whose share
    of total cycles is at least [threshold] (default 0.05). Returns the
    newly queued fragment ids, ascending. Pure in its input: every farm
    worker derives the same promotion set from the same merged profile. *)
val promote_hot : ?threshold:float -> t -> (string * int) list -> int list

(** Record a live tier-0 -> tier-1 execution migration (see
    [Vm.request_osr]); bumps the [session.osr_migrations] counter. *)
val note_osr_migration : t -> unit

(** Migrate a live execution onto the session's current executable:
    queue an OSR swap ({!Vm.request_osr}) carrying the last relink's
    byte-level data delta; the VM applies it at its next fragment
    boundary. Returns [false] — queuing nothing — when no delta is
    known (last link was full, or no executable yet): the caller must
    restart on the new image instead. *)
val osr_into : t -> Vm.t -> bool

(** Cumulative tier accounting: fresh compiles and modelled compile
    cost per tier (the [?cost] accounting threaded through
    {!Opt.Pipeline} and {!Link.Objfile.of_module}), promotions landed,
    and OSR migrations recorded. *)
type tier_stats = {
  ts_tier0_compiles : int;
  ts_tier0_cost : int;
  ts_tier1_compiles : int;
  ts_tier1_cost : int;
  ts_promotions : int;
  ts_osr_migrations : int;
}

val tier_stats : t -> tier_stats

(** Replace all patch logic (applies active probes to [sched.temp]). *)
val set_patcher : t -> (sched -> unit) -> unit

(** Register an additional scheme's patch logic; registered patchers
    compose and all run on every rebuild. *)
val add_patcher : t -> (sched -> unit) -> unit

(** Declare a runtime function provided by the host at run time. *)
val add_host_symbol : t -> string -> unit

(** Compute the schedule for the current probe changes (Algorithm 2).
    [initial] schedules every fragment; [backprop:false] disables lines
    13-17 (ablation: unchanged probes in recompiled fragments vanish).
    Degraded fragments are always force-scheduled (re-heal) — the
    degraded set feeds the same dirty-set as toggled probes. With the
    incremental scheduler on, a non-initial schedule is O(changed):
    only the index-resolved dirty fragments are visited (the
    [session.schedule_visited] counter records the walk's extent). *)
val schedule : ?initial:bool -> ?backprop:bool -> t -> sched

(** Patch, split, optimize, codegen and relink the scheduled fragments,
    transactionally. Never raises on build failure: per-fragment failures
    degrade, patch/link failures roll back — see {!rebuild_outcome}. *)
val rebuild : sched -> rebuild_outcome

(** Initial build, transactional: schedule every fragment and build the
    executable, reporting the outcome instead of raising. *)
val try_build : t -> rebuild_outcome

(** Initial build: schedule every fragment and produce the executable.
    @raise Build_error when the build rolled back. *)
val build : t -> recompile_event

(** Incremental transactional rebuild after probe changes (or pending
    degraded fragments to re-heal); [None] when nothing to do. *)
val try_refresh : ?backprop:bool -> t -> rebuild_outcome option

(** Incremental rebuild after probe changes; [None] when nothing changed.
    @raise Build_error when the rebuild rolled back. *)
val refresh : ?backprop:bool -> t -> recompile_event option

(** Batched multi-toggle refresh: flip a whole probe set as ONE dirty-set
    update and ONE schedule pass (O(changed) with the incremental
    scheduler: K toggles visit the O(K) fragments those probes live in).
    [None] when the toggles were all no-ops and nothing else was pending;
    otherwise the transactional outcome plus the recompile event (absent
    on rollback). Never raises on build failure. *)
val refresh_toggles :
  ?backprop:bool ->
  t ->
  (Instr.Probe.t * bool) list ->
  (rebuild_outcome * recompile_event option) option

(** @raise Build_error before the first {!build}. *)
val executable : t -> Link.Linker.exe

(** All recompile events, oldest first. *)
val events : t -> recompile_event list

val total_compile_time : t -> float

(** (fragment id, number of member symbols) for every fragment. *)
val fragment_sizes : t -> (int * int) list

(** Fragments currently serving a stale/pristine object, sorted. *)
val degraded_fragments : t -> int list

(** Rebuilds rolled back to their snapshot so far. *)
val rollbacks : t -> int

(** Total fragment degradations over the session's lifetime. *)
val degrade_total : t -> int

(** Outcome of the most recent build/refresh ([Ok] before the first). *)
val last_outcome : t -> rebuild_outcome

(** Persistent-store statistics, when [cache_dir] was given. *)
val store_stats : t -> Support.Objstore.stats option

(** Format version of the persistent store's entries (cache-key scheme
    + object layout). Bumped whenever either changes; a mismatched
    on-disk store is wiped on open. v2: structural IR digests
    ({!Ir.Shash}) replaced printed-IR digests in the cache key. v3: the
    compilation tier joined the key. *)
val store_format_version : int