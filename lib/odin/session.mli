(** The Odin engine (paper Sections 3.1, 3.3 and 4).

    A session owns the pristine whole-program IR, the partition plan, the
    probe manager, the per-fragment machine-code cache and the linked
    executable. The lifecycle is:

    {[
      let session = Session.create ~keep:["main"] m in
      (* register probes on session.manager; set the patcher *)
      ignore (Session.build session);           (* initial full build *)
      ... run Session.executable, change probe state ...
      ignore (Session.refresh session)          (* on-the-fly recompile *)
    ]}

    [refresh] runs Algorithm 2: changed probes are propagated to their
    fragments, the fragments' *other* active probes are back-propagated in
    (so they survive the recompile), a temporary IR is extracted by
    cloning exactly the affected symbols, the user patch logic instruments
    it, and each affected fragment is re-optimized, re-compiled and
    relinked from the cache. *)

module SSet : Set.S with type elt = string

(** One (re)compilation: which fragments, how many probes applied, and
    measured wall-clock durations. A thin view over the telemetry span
    tree recorded during {!rebuild}. *)
type recompile_event = {
  ev_fragments : int list;  (** fragment ids scheduled *)
  ev_cache_hits : int;  (** of those, served from the object cache *)
  ev_probes_applied : int;
  ev_compile_time : float;  (** seconds, middle end + back end *)
  ev_link_time : float;  (** seconds *)
  ev_per_fragment : (int * float) list;  (** (fragment id, seconds) *)
}

type t = {
  base : Ir.Modul.t;  (** pristine IR; instrumentation never touches it *)
  plan : Partition.plan;
  manager : Instr.Manager.t;
  cache : (int, Link.Objfile.t) Hashtbl.t;  (** fragment id -> object *)
  obj_cache : Link.Objfile.t Support.Lru.t;
      (** content-addressed object cache: digest of the printed
          instrumented fragment IR (plus opt config) -> finished object *)
  obj_lock : Mutex.t;
  pool : Support.Pool.t;  (** executor for per-fragment compiles *)
  runtime : Link.Objfile.t;
  mutable host : string list;
  mutable exe : Link.Linker.exe option;
  mutable patchers : (sched -> unit) list;
  mutable events : recompile_event list;
  mutable opt_rounds : int;
  telemetry : Telemetry.Recorder.t;
      (** every build/refresh records schedule → patch → per-fragment
          materialize/verify/optimize/codegen → link spans here; export
          with [Telemetry.Report] / [Telemetry.Trace]. Observation only:
          build results are identical whether or not it is ever read. *)
}

(** Scheduler handle passed to patch logic (the paper's [Scheduler]):
    the probes to apply and the pristine-to-temporary instruction map. *)
and sched = {
  session : t;
  active : Instr.Probe.t list;  (** probes to (re-)apply *)
  temp : Ir.Modul.t;  (** temporary IR: clones of all changed symbols *)
  map : Ir.Clone.map;
  changed_symbols : SSet.t;
  changed_fragments : int list;
}

(** [map_ins sched ins] is the clone of pristine instruction [ins] in the
    temporary IR ([Sched.map] in the paper's API). *)
val map_ins : sched -> Ir.Ins.ins -> Ir.Ins.ins option

(** Find a function by name in the temporary IR. *)
val map_func : sched -> string -> Ir.Func.t option

(** Create a session: verifies [base], runs the classification survey and
    builds the partition plan.
    @param mode partition scheme (default {!Partition.Auto})
    @param copy_on_use ablation switch for copy-on-use cloning
    @param keep entry points that stay exported
    @param runtime_globals data symbols owned by the instrumentation
      runtime (e.g. counter arrays), linked as a separate object
    @param host functions resolved to the fuzzer/VM at run time
    @param opt_rounds fixpoint bound for fragment re-optimization
    @param pool executor for per-fragment compiles (default: the
      process-wide [Support.Pool.default ()], sized by [ODIN_JOBS]).
      Build output is bit-identical for any pool size, including 1.
    @param cache_size LRU bound (entries) of the content-addressed
      object cache (default 256)
    @param telemetry recorder for build spans/counters (fresh monotonic
      recorder by default; tests inject a virtual-clock recorder) *)
val create :
  ?mode:Partition.mode ->
  ?copy_on_use:bool ->
  ?keep:string list ->
  ?runtime_globals:(string * int) list ->
  ?host:string list ->
  ?opt_rounds:int ->
  ?pool:Support.Pool.t ->
  ?cache_size:int ->
  ?telemetry:Telemetry.Recorder.t ->
  Ir.Modul.t ->
  t

(** Change the fragment re-optimization bound for subsequent rebuilds.
    The bound is part of the object-cache key, so cached objects from
    the old setting are never reused. *)
val set_opt_rounds : t -> int -> unit

(** Replace all patch logic (applies active probes to [sched.temp]). *)
val set_patcher : t -> (sched -> unit) -> unit

(** Register an additional scheme's patch logic; registered patchers
    compose and all run on every rebuild. *)
val add_patcher : t -> (sched -> unit) -> unit

(** Declare a runtime function provided by the host at run time. *)
val add_host_symbol : t -> string -> unit

(** Compute the schedule for the current probe changes (Algorithm 2).
    [initial] schedules every fragment; [backprop:false] disables lines
    13-17 (ablation: unchanged probes in recompiled fragments vanish). *)
val schedule : ?initial:bool -> ?backprop:bool -> t -> sched

exception Build_error of string

(** Patch, split, optimize, codegen and relink the scheduled fragments.
    @raise Build_error if a materialized fragment does not verify. *)
val rebuild : sched -> recompile_event

(** Initial build: schedule every fragment and produce the executable. *)
val build : t -> recompile_event

(** Incremental rebuild after probe changes; [None] when nothing changed. *)
val refresh : ?backprop:bool -> t -> recompile_event option

(** @raise Build_error before the first {!build}. *)
val executable : t -> Link.Linker.exe

(** All recompile events, oldest first. *)
val events : t -> recompile_event list

val total_compile_time : t -> float

(** (fragment id, number of member symbols) for every fragment. *)
val fragment_sizes : t -> (int * int) list
