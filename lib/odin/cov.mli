(** OdinCov: basic-block coverage on the Odin probe framework (the
    demonstration tool of paper Section 5). One probe per basic block; an
    enabled probe compiles to an inline 8-bit counter increment; pruning
    follows Untracer: a probe that has fired is removed and the affected
    fragments are recompiled without it. *)

(** Name of the runtime counter array symbol. *)
val counters_sym : string

type t = {
  session : Session.t;
  mutable total_probes : int;
  mutable pruned_total : int;
}

(** The patch logic (installed by {!setup}; exposed for custom drivers). *)
val patch : Session.sched -> unit

(** Counter slots a program needs: one per basic block. *)
val count_blocks : Ir.Modul.t -> int

(** The runtime-global spec to pass to {!Session.create}. *)
val runtime_global : Ir.Modul.t -> string * int

(** Register one probe per basic block of every defined function and
    install the patch logic. *)
val setup : Session.t -> t

(** Read probe [pid]'s 8-bit counter out of VM memory (zero-extended). *)
val read_counter : Vm.t -> int -> int

val clear_counters : Vm.t -> int -> unit

(** Accumulate counters into the probes' profiling state; returns the
    probes that fired for the first time. *)
val harvest : t -> Vm.t -> Instr.Probe.t list

(** Remove every probe that has fired (Untracer policy); returns how many
    were removed (a {!Session.refresh} is pending when > 0). *)
val prune_fired : t -> int

(** Per-probe cost attribution from a profiled VM run: maps the VM's
    inline-counter sites back to probe ids (counter address minus the
    [__odin_counters] base). Returns [(pid, hits, cycles)] ascending by
    pid; [total] bounds the counter region. Requires the VM to have run
    with {!Vm.enable_profile}; returns [[]] otherwise. *)
val probe_costs : total:int -> Vm.t -> (int * int * int) list

(** Blocks ever covered (pruned probes included). *)
val covered : t -> int
