(** The Odin engine: owns the pristine whole-program IR, the partition
    plan, the probe manager, the machine-code cache, and the linked
    executable. Implements the recompilation scheduler (paper Section
    3.3, Algorithm 2) and the copy-instrument-split flow of Figure 7.

    Timing: every rebuild is recorded as a tree of telemetry spans
    (schedule → patch → per-fragment materialize/verify/optimize/codegen
    → link) on the session's recorder; [recompile_event] is a thin view
    over that span tree, and the benchmark harness reproduces Figures
    11/12 and the 82 ms average from these records. The recorder only
    observes — build results are bit-identical whether or not anyone
    ever exports a report or trace from it.

    Concurrency: scheduled fragments compile in parallel on a
    [Support.Pool] (the link step stays a serial barrier), and a
    content-addressed LRU object cache in front of codegen turns probe
    toggle round-trips into relink-only refreshes. Both are invisible
    to correctness: output is bit-identical for any pool size.

    Fault tolerance: [build]/[refresh] are transactional. The mutable
    session state (fragment cache, executable, degradation set) is
    snapshotted before a rebuild. Fragment-compile failures are
    isolated: a transient fault is retried (bounded, virtual-clock
    backoff), a persistent one *degrades* the fragment to its last-good
    — or pristine — object instead of killing the rebuild, and the
    fragment is re-healed on the next refresh. Only a patch- or
    link-stage failure rolls the whole session back to the snapshot;
    the executable is therefore always a consistent version of every
    fragment. The {!rebuild_outcome} reports which of the three cases
    happened; exceptions never escape pool jobs. *)

module SSet = Set.Make (String)

type recompile_event = {
  ev_fragments : int list;  (** fragment ids scheduled *)
  ev_cache_hits : int;  (** of those, served from the object cache/store *)
  ev_probes_applied : int;
  ev_compile_time : float;  (** seconds, middle end + back end *)
  ev_link_time : float;  (** seconds *)
  ev_per_fragment : (int * float) list;  (** (fragment id, seconds) *)
  ev_link_incremental : bool;  (** served by patching instead of a full relink *)
  ev_symbols_patched : int;  (** symbols re-placed by the incremental linker *)
}

(* ------------------------------------------------------------------ *)
(* Structured build errors and rebuild outcomes                        *)
(* ------------------------------------------------------------------ *)

type build_phase =
  | Schedule
  | Patch
  | Materialize
  | Verify
  | Optimize
  | Codegen
  | Cache
  | Store
  | Link
  | Lifecycle  (** API misuse, e.g. [executable] before [build] *)

type build_error = {
  err_phase : build_phase;
  err_fragment : int option;  (** fragment being compiled, if any *)
  err_probes : int list;  (** active probe ids in that fragment *)
  err_exn : exn option;  (** underlying exception, when one exists *)
  err_msg : string;
}

exception Build_error of build_error

let phase_to_string = function
  | Schedule -> "schedule"
  | Patch -> "patch"
  | Materialize -> "materialize"
  | Verify -> "verify"
  | Optimize -> "optimize"
  | Codegen -> "codegen"
  | Cache -> "cache"
  | Store -> "store"
  | Link -> "link"
  | Lifecycle -> "lifecycle"

(** Render a build error as a readable multi-line diagnostic (what
    [odinc] prints instead of a raw backtrace). *)
let build_error_to_string e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "build failed in phase `%s'" (phase_to_string e.err_phase));
  (match e.err_fragment with
  | Some fid -> Buffer.add_string b (Printf.sprintf ", fragment #%d" fid)
  | None -> ());
  (match e.err_probes with
  | [] -> ()
  | ps ->
    Buffer.add_string b
      (Printf.sprintf " (probes %s)"
         (String.concat " " (List.map (Printf.sprintf "#%d") ps))));
  Buffer.add_string b (": " ^ e.err_msg);
  (match e.err_exn with
  | Some exn ->
    Buffer.add_string b ("\n  caused by: " ^ Printexc.to_string exn)
  | None -> ());
  Buffer.contents b

let mk_error ?fragment ?(probes = []) ?exn_ phase msg =
  {
    err_phase = phase;
    err_fragment = fragment;
    err_probes = probes;
    err_exn = exn_;
    err_msg = msg;
  }

(** Result of a transactional rebuild: [Ok] — every scheduled fragment
    compiled and linked; [Degraded fids] — the listed fragments are
    serving their last-good (or pristine) object after bounded retries
    failed, everything else is fresh, and the fragments re-heal on the
    next refresh; [Rolled_back err] — a patch- or link-stage failure
    restored the pre-rebuild snapshot (previous executable, cache and
    probe epoch intact). *)
type rebuild_outcome = Ok | Degraded of int list | Rolled_back of build_error

(** Content-addressed object cache: structural digest of the
    instrumented fragment IR (plus opt config) -> finished object. A
    hit skips optimize+codegen — probe sets toggled off and on again
    relink the cached object instead of recompiling.

    The cache is shareable: several sessions over the same base module
    (the fuzzing farm's workers) can be created with one
    {!object_cache}, so a fragment compiled by one worker is a hit for
    every other. [oc_owners] remembers which session ([~owner]) first
    produced each key; a hit by a different session is a {e cross hit},
    the farm's measure of sharing. *)
type cache_shard = {
  cs_lru : Link.Objfile.t Support.Lru.t;
  cs_lock : Mutex.t;  (** guards [cs_lru] and [cs_owners] *)
  cs_owners : (string, int) Hashtbl.t;  (** key -> owner that produced it *)
}

type object_cache = {
  oc_shards : cache_shard array;
      (** lock striping: a key lives in exactly one shard, selected by
          its digest's first byte, so parallel compiles of different
          fragments almost never contend on the same mutex *)
  oc_cross_hits : int Atomic.t;
  oc_waits : int Atomic.t;  (** times a lock acquisition had to block *)
}

let object_cache ?(size = 256) ?(shards = 8) () =
  (* never more shards than entries: [~size:1] must behave as a single
     1-entry LRU (eviction tests rely on it) *)
  let n = max 1 (min shards size) in
  let per = max 1 ((size + n - 1) / n) in
  {
    oc_shards =
      Array.init n (fun _ ->
          {
            cs_lru = Support.Lru.create per;
            cs_lock = Mutex.create ();
            cs_owners = Hashtbl.create 16;
          });
    oc_cross_hits = Atomic.make 0;
    oc_waits = Atomic.make 0;
  }

(* Digest keys are raw MD5 bytes: the first byte is uniform, and the
   mapping is a pure function of the key, so shard placement is
   deterministic across runs and pool sizes. *)
let shard_for oc key =
  let b = if String.length key = 0 then 0 else Char.code key.[0] in
  oc.oc_shards.(b mod Array.length oc.oc_shards)

let with_shard oc key f =
  let cs = shard_for oc key in
  if not (Mutex.try_lock cs.cs_lock) then begin
    Atomic.incr oc.oc_waits;
    Mutex.lock cs.cs_lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock cs.cs_lock) (fun () -> f cs)

(** Hits served to a session other than the one that produced the
    entry; 0 unless the cache is shared. *)
let cross_hits oc = Atomic.get oc.oc_cross_hits

(** Lock acquisitions that found their shard's mutex held. *)
let shard_waits oc = Atomic.get oc.oc_waits

let cache_shards oc = Array.length oc.oc_shards

let cache_evictions oc =
  Array.fold_left
    (fun acc cs -> acc + Support.Lru.evictions cs.cs_lru)
    0 oc.oc_shards

type t = {
  base : Ir.Modul.t;  (** pristine IR; instrumentation never touches it *)
  plan : Partition.plan;
  manager : Instr.Manager.t;
  cache : (int, Link.Objfile.t) Hashtbl.t;
  objects : object_cache;  (** content-addressed tier; possibly shared *)
  owner : int;  (** this session's identity in [objects.oc_owners] *)
  store : Support.Objstore.t option;
      (** persistent tier behind [objects]: on-disk content-addressed
          store ([--cache-dir]) so a process restart starts warm *)
  pool : Support.Pool.t;  (** fragment compile executor *)
  runtime : Link.Objfile.t;  (** runtime globals (counter arrays, ...) *)
  linker : Link.Incremental.t;
      (** persistent link state: slabs + reverse relocation index, so a
          refresh relinks only what changed (when [incr_link]) *)
  mutable incr_link : bool;  (** patch instead of full relink when safe *)
  mutable incr_sched : bool;
      (** O(changed) refreshes: schedule through the symbol->fragment
          indexes instead of walking every fragment, and short-circuit
          unchanged fragments through the Shash memo before the pass
          pipeline *)
  clone_index : (string, int list) Hashtbl.t;
      (** copy-on-use symbol -> fragments that cloned it (fid ascending);
          built once from the plan — with [plan.frag_of] it answers the
          symbols->fragments step of Algorithm 2 without the full walk *)
  memo : (string, Link.Objfile.t) Hashtbl.t;
      (** optimization memo: Ir.Shash digest of the instrumented fragment
          IR -> finished object. A hit returns before verify, the shard
          locks and Opt.Pipeline; reset by {!set_opt_rounds}. Written
          only from the serial join loop, read concurrently by jobs *)
  mutable tiered : bool;
      (** two-tier compilation: freshly changed fragments compile through
          the single-pass tier-0 baseline backend (no [Opt.Pipeline], no
          liveness), and fragments the profile marks hot are *promoted*
          to the optimizing tier-1 backend by an ordinary incremental
          relink. Off by default — an untiered session compiles
          everything at tier 1, exactly as before *)
  tier_of : (int, int) Hashtbl.t;
      (** fragment id -> tier its current object was compiled at; absent
          means "not compiled yet" (tiered) / tier 1 (untiered) *)
  promote_pending : (int, unit) Hashtbl.t;
      (** fragments queued for background promotion to tier 1; they are
          force-scheduled on the next refresh like [degraded] and leave
          the queue when their tier-1 object lands *)
  mutable tier0_compiles : int;  (** fragments compiled by the baseline *)
  mutable tier0_cost : int;  (** modelled backend work at tier 0 *)
  mutable tier1_compiles : int;  (** fragments compiled by the optimizer *)
  mutable tier1_cost : int;  (** modelled opt+backend work at tier 1 *)
  mutable promotion_count : int;  (** tier-0 -> tier-1 promotions landed *)
  mutable osr_migrations : int;  (** live executions migrated (see Vm) *)
  mutable host : string list;
  mutable exe : Link.Linker.exe option;
  mutable patchers : (sched -> unit) list;
      (** user patch logic: applies active probes to the temporary IR;
          schemes compose (coverage + CmpLog + checks in one session) *)
  mutable events : recompile_event list;  (** newest first *)
  mutable opt_rounds : int;
  degraded : (int, unit) Hashtbl.t;
      (** fragments currently serving a stale/pristine object; they are
          force-scheduled (re-healed) on every refresh until clean *)
  mutable max_retries : int;  (** bounded retries for transient faults *)
  mutable job_timeout : float option;
      (** cooperative per-fragment watchdog (seconds); an overrunning
          compile job is marked degraded instead of stalling the join *)
  mutable rollback_count : int;
  mutable degrade_count : int;  (** total fragment degradations ever *)
  mutable last_outcome : rebuild_outcome;
  telemetry : Telemetry.Recorder.t;
      (** spans/counters for every build; the timing source of [events] *)
}

(** Scheduler handle passed to patch logic (paper Section 4): exposes the
    probes to apply and the pristine-to-temporary instruction map. *)
and sched = {
  session : t;
  active : Instr.Probe.t list;  (** probes to (re-)apply *)
  temp : Ir.Modul.t;  (** temporary IR: clone of all changed symbols *)
  map : Ir.Clone.map;
  changed_symbols : SSet.t;
  changed_fragments : int list;
}

(** Translate a pristine instruction to its clone in the temporary IR
    ([Sched.map] in the paper's API). *)
let map_ins sched ins = Ir.Clone.map_ins sched.map ins

let map_func sched name = Ir.Modul.find_func sched.temp name

(* Bump when the marshalled Objfile payload or the key derivation
   changes shape: a version mismatch makes an existing on-disk store
   invalidate cleanly. 2 = structural (Ir.Shash) cache keys; 3 = the
   compilation tier joined the key (a tier-0 object must never satisfy
   a tier-1 lookup, or vice versa). *)
let store_format_version = 3

(* ------------------------------------------------------------------ *)
(* Session construction                                                *)
(* ------------------------------------------------------------------ *)

(* ODIN_INCR_LINK=0 (or false/off/no) disables the incremental linker
   process-wide; the [?incremental_link] create param overrides. *)
let env_incremental_link () =
  match Sys.getenv_opt "ODIN_INCR_LINK" with
  | Some ("0" | "false" | "off" | "no") -> false
  | _ -> true

(* ODIN_INCR_SCHED=0 (or false/off/no) disables the incremental probe
   scheduler and the Shash optimization memo process-wide — the escape
   hatch back to the O(program) full-walk refresh path; the
   [?incremental_sched] create param overrides. *)
let env_incremental_sched () =
  match Sys.getenv_opt "ODIN_INCR_SCHED" with
  | Some ("0" | "false" | "off" | "no") -> false
  | _ -> true

(* ODIN_TIER=1 (or true/on/yes) enables tiered compilation process-wide;
   ODIN_TIER=0 (or unset) keeps the classic always-optimized pipeline.
   The [?tiered] create param overrides. *)
let env_tiered () =
  match Sys.getenv_opt "ODIN_TIER" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | _ -> false

(** Create a session for [base].
    [runtime_globals] are data symbols owned by the instrumentation
    runtime (e.g. coverage counter arrays), linked as a separate object;
    [host] names functions provided by the host/fuzzer at run time;
    [cache_dir] enables the persistent object store (campaign restarts
    start warm); [max_retries] bounds per-fragment retry attempts on
    transient faults; [job_timeout] arms the cooperative per-fragment
    compile watchdog; [objects] shares one content-addressed object
    cache between several sessions (see {!object_cache}), with [owner]
    identifying this session for cross-hit accounting. *)
let create ?(mode = Partition.Auto) ?(copy_on_use = true) ?(keep = [ "main" ])
    ?(runtime_globals = []) ?(host = []) ?(opt_rounds = 2) ?pool
    ?(cache_size = 256) ?objects ?(owner = 0) ?cache_dir ?(max_retries = 2)
    ?job_timeout ?incremental_link ?incremental_sched ?tiered
    ?(telemetry = Telemetry.Recorder.create ()) (base : Ir.Modul.t) =
  Ir.Verify.run_exn base;
  (* session setup is not a rebuild: the classification survey runs the
     trial O2 pipeline, which shares the opt.pipeline fault site with
     fragment recompiles — suppress injection here so fault plans only
     exercise the transactional build/refresh paths *)
  let cls =
    Telemetry.Recorder.with_span telemetry ~cat:"session" "classify" (fun () ->
        Support.Fault.with_suppressed (fun () -> Classify.classify ~keep base))
  in
  let plan =
    Telemetry.Recorder.with_span telemetry ~cat:"session" "partition" (fun () ->
        Partition.plan ~mode ~copy_on_use ~keep base cls)
  in
  (* runtime object: plain data symbols, always linked *)
  let runtime_module = Ir.Modul.create ~name:"odin.runtime" () in
  List.iter
    (fun (name, size) ->
      ignore
        (Ir.Modul.add_var runtime_module ~linkage:Ir.Func.External ~name
           (Ir.Modul.Zero size)))
    runtime_globals;
  let runtime = Link.Objfile.of_module runtime_module in
  (* persistent symbol->fragment index for copy-on-use clones: a change
     to a cloned symbol dirties every fragment that cloned it.
     [plan.frag_of] covers members; this covers clones. Built once —
     the plan is immutable, so the index never goes stale. *)
  let clone_index = Hashtbl.create 64 in
  Array.iter
    (fun (f : Partition.fragment) ->
      Partition.SSet.iter
        (fun s ->
          Hashtbl.replace clone_index s
            (f.Partition.fid
            :: Option.value ~default:[] (Hashtbl.find_opt clone_index s)))
        f.Partition.clones)
    plan.Partition.fragments;
  (* fragments were walked in fid order and prepended: reverse each
     bucket so lookups come back fid-ascending *)
  Hashtbl.iter
    (fun s fids -> Hashtbl.replace clone_index s (List.rev fids))
    (Hashtbl.copy clone_index);
  (* the base module must see runtime globals as declarations so that
     patch logic can reference them *)
  List.iter
    (fun (name, _) ->
      if not (Ir.Modul.mem base name) then
        ignore (Ir.Modul.add_var base ~linkage:Ir.Func.External ~name Ir.Modul.Extern))
    runtime_globals;
  {
    base;
    plan;
    manager = Instr.Manager.create ();
    cache = Hashtbl.create 32;
    objects = (match objects with Some oc -> oc | None -> object_cache ~size:cache_size ());
    owner;
    store =
      Option.map
        (fun dir -> Support.Objstore.open_store ~version:store_format_version dir)
        cache_dir;
    pool = (match pool with Some p -> p | None -> Support.Pool.default ());
    runtime;
    linker = Link.Incremental.create ();
    incr_link =
      (match incremental_link with
      | Some b -> b
      | None -> env_incremental_link ());
    incr_sched =
      (match incremental_sched with
      | Some b -> b
      | None -> env_incremental_sched ());
    clone_index;
    memo = Hashtbl.create 64;
    tiered = (match tiered with Some b -> b | None -> env_tiered ());
    tier_of = Hashtbl.create 32;
    promote_pending = Hashtbl.create 8;
    tier0_compiles = 0;
    tier0_cost = 0;
    tier1_compiles = 0;
    tier1_cost = 0;
    promotion_count = 0;
    osr_migrations = 0;
    host;
    exe = None;
    patchers = [];
    events = [];
    opt_rounds;
    degraded = Hashtbl.create 8;
    max_retries = max 0 max_retries;
    job_timeout;
    rollback_count = 0;
    degrade_count = 0;
    last_outcome = Ok;
    telemetry;
  }

(** Change the fragment re-optimization bound. Takes effect on the next
    rebuild; cached objects compiled under the old setting are not
    reused (the bound is part of the cache key), and the optimization
    memo is dropped outright. *)
let set_opt_rounds t rounds =
  t.opt_rounds <- max 0 rounds;
  Hashtbl.reset t.memo

(** Change the bounded-retry count for transient fragment faults. *)
let set_max_retries t n = t.max_retries <- max 0 n

(** Arm/disarm the cooperative per-fragment compile watchdog. *)
let set_job_timeout t timeout = t.job_timeout <- timeout

(** Enable/disable the incremental link path for subsequent rebuilds.
    Purely a performance switch: the resulting executable is
    semantically identical either way. *)
let set_incremental_link t b = t.incr_link <- b

let incremental_link t = t.incr_link

(** Enable/disable the incremental scheduler + optimization memo for
    subsequent rebuilds. Purely a performance switch: schedules, images
    and VM behavior are identical either way. *)
let set_incremental_sched t b = t.incr_sched <- b

let incremental_sched t = t.incr_sched

(** Entries currently held by the optimization memo. *)
let memo_size t = Hashtbl.length t.memo

(* ------------------------------------------------------------------ *)
(* Tiered compilation                                                  *)
(* ------------------------------------------------------------------ *)

(** Whether this session compiles freshly changed fragments through the
    tier-0 baseline backend. *)
let tiered t = t.tiered

(* The tier a scheduled fragment compiles at on this rebuild: untiered
   sessions always optimize (tier 1, same cache keys as a fully-promoted
   tiered session); tiered sessions compile at tier 1 only when the
   fragment's promotion is pending, and at tier 0 otherwise — a probe
   toggle on a promoted fragment deliberately re-demotes it, because the
   edit path must stay single-pass; heat re-promotes it later. *)
let tier_for t fid =
  if not t.tiered then 1 else if Hashtbl.mem t.promote_pending fid then 1 else 0

(** The tier of [fid]'s current object: 1 for untiered sessions, and for
    tiered sessions the tier it last compiled at (0 before any build). *)
let fragment_tier t fid =
  match Hashtbl.find_opt t.tier_of fid with
  | Some tier -> tier
  | None -> if t.tiered then 0 else 1

(** Fragment ids currently queued for promotion, ascending. *)
let pending_promotions t =
  List.sort compare
    (Hashtbl.fold (fun fid () acc -> fid :: acc) t.promote_pending [])

(** Queue fragments for promotion to the optimizing tier; they are
    force-scheduled on the next refresh (like degraded fragments) and
    land as an ordinary incremental relink. No-op on untiered sessions
    and for fragments already serving a tier-1 object. *)
let promote t fids =
  if t.tiered then
    List.iter
      (fun fid ->
        if
          fid >= 0
          && fid < Array.length t.plan.Partition.fragments
          && fragment_tier t fid <> 1
        then Hashtbl.replace t.promote_pending fid ())
      fids

(** Promotion policy: given per-function cycle attribution (e.g.
    [Vm.profile_top]), accumulate heat per fragment through the plan's
    symbol->fragment index and queue every tier-0 fragment whose share
    of the total cycles is at least [threshold]. Returns the fragment
    ids newly queued, ascending — a pure function of its input, so
    every farm worker reaches the same promotion set from the merged
    profile. *)
let promote_hot ?(threshold = 0.05) t fn_cycles =
  if not t.tiered then []
  else begin
    let total =
      List.fold_left (fun acc (_, c) -> acc + max 0 c) 0 fn_cycles
    in
    if total = 0 then []
    else begin
      let heat = Hashtbl.create 16 in
      List.iter
        (fun (sym, cycles) ->
          match Hashtbl.find_opt t.plan.Partition.frag_of sym with
          | Some fid ->
            Hashtbl.replace heat fid
              (max 0 cycles
              + Option.value ~default:0 (Hashtbl.find_opt heat fid))
          | None -> ())
        fn_cycles;
      let hot =
        Hashtbl.fold
          (fun fid cycles acc ->
            if
              float_of_int cycles >= threshold *. float_of_int total
              && fragment_tier t fid <> 1
              && not (Hashtbl.mem t.promote_pending fid)
            then fid :: acc
            else acc)
          heat []
        |> List.sort compare
      in
      List.iter (fun fid -> Hashtbl.replace t.promote_pending fid ()) hot;
      hot
    end
  end

(** Record that a live execution migrated tier-0 -> tier-1 through an
    OSR point (see [Vm.request_osr]); surfaces as the
    [session.osr_migrations] counter. *)
let note_osr_migration t =
  t.osr_migrations <- t.osr_migrations + 1;
  Telemetry.Recorder.count (Some t.telemetry) "session.osr_migrations"

(** Migrate a live execution onto the session's current executable
    through the VM's OSR mechanism: queue the swap plus the last
    relink's byte-level data delta ({!Link.Incremental.last_slots});
    the VM applies both at its next fragment boundary. Returns [false]
    — and queues nothing — when no delta is known (the last link was
    full, or the session has no executable yet): the caller must
    restart the execution on the new image instead. Counted as a
    [session.osr_migrations] the moment the swap is queued, since the
    VM deterministically applies it at its next call dispatch. *)
let osr_into t vm =
  match t.exe with
  | None -> false
  | Some exe ->
    let ls = Link.Incremental.last t.linker in
    if not ls.Link.Incremental.ls_incremental then false
    else begin
      Vm.request_osr vm ~exe ~slots:(Link.Incremental.last_slots t.linker);
      note_osr_migration t;
      true
    end

type tier_stats = {
  ts_tier0_compiles : int;
  ts_tier0_cost : int;  (** modelled backend work summed at tier 0 *)
  ts_tier1_compiles : int;
  ts_tier1_cost : int;  (** modelled opt+backend work summed at tier 1 *)
  ts_promotions : int;
  ts_osr_migrations : int;
}

let tier_stats t =
  {
    ts_tier0_compiles = t.tier0_compiles;
    ts_tier0_cost = t.tier0_cost;
    ts_tier1_compiles = t.tier1_compiles;
    ts_tier1_cost = t.tier1_cost;
    ts_promotions = t.promotion_count;
    ts_osr_migrations = t.osr_migrations;
  }

(** Replace all patch logic with [patcher]. *)
let set_patcher t patcher = t.patchers <- [ patcher ]

(** Register an additional instrumentation scheme's patch logic; all
    registered patchers run (in registration order) on every rebuild. *)
let add_patcher t patcher = t.patchers <- t.patchers @ [ patcher ]

(** Declare a runtime function provided by the host (fuzzer) at run time;
    instrumentation schemes call this for their hooks. *)
let add_host_symbol t name =
  if not (List.mem name t.host) then t.host <- name :: t.host

(* ------------------------------------------------------------------ *)
(* Algorithm 2: scheduling fragments and probes                        *)
(* ------------------------------------------------------------------ *)

(* Which fragments must be recompiled given the changed symbols. *)
let propagate t changed_syms =
  let frag_ids = ref [] in
  Array.iter
    (fun (f : Partition.fragment) ->
      let touched =
        SSet.exists (fun s -> Partition.SSet.mem s f.Partition.members) changed_syms
        (* a change to a copy-on-use symbol dirties every fragment that
           cloned it *)
        || SSet.exists (fun s -> Partition.SSet.mem s f.Partition.clones) changed_syms
      in
      if touched then frag_ids := f.Partition.fid :: !frag_ids)
    t.plan.Partition.fragments;
  List.rev !frag_ids

(* Full symbol set of a fragment id list (the recompilation unit is the
   fragment, so scheduling a fragment schedules all its symbols). *)
let symbols_of_fragments t frag_ids =
  List.fold_left
    (fun acc fid ->
      let f = t.plan.Partition.fragments.(fid) in
      Partition.SSet.fold SSet.add f.Partition.members acc)
    SSet.empty frag_ids

(* Incremental symbols->fragments: answer the propagate question from
   the persistent indexes ([plan.frag_of] for members, [clone_index] for
   copy-on-use clones) instead of testing every fragment. Returns fid
   ascending — the exact list [propagate] would build. *)
let propagate_indexed t changed_targets =
  let set = Hashtbl.create 16 in
  List.iter
    (fun s ->
      (match Hashtbl.find_opt t.plan.Partition.frag_of s with
      | Some fid -> Hashtbl.replace set fid ()
      | None -> ());
      List.iter
        (fun fid -> Hashtbl.replace set fid ())
        (Option.value ~default:[] (Hashtbl.find_opt t.clone_index s)))
    changed_targets;
  List.sort compare (Hashtbl.fold (fun fid () acc -> fid :: acc) set [])

(** Compute the schedule for the current probe-state changes: detect the
    changed probes, propagate to fragments, back-propagate to the full
    set of active probes in those fragments, and extract the temporary
    IR (lines 1-18 of Algorithm 2). On the very first build, every
    fragment is scheduled. Fragments degraded by a previous rebuild are
    force-scheduled (the re-heal path) even when no probe changed.

    With the incremental scheduler on (the default), a non-initial
    schedule is O(changed): the dirty targets go through the persistent
    symbol->fragment indexes and the by-target probe index instead of
    walking every fragment and filtering every probe. The resulting
    [sched] is identical either way — the [session.schedule_visited]
    counter records how many fragments the walk actually examined. *)
let schedule ?(initial = false) ?(backprop = true) t =
  let n_fragments = Array.length t.plan.Partition.fragments in
  (* lines 2-6: changed probes -> symbols *)
  let changed_targets =
    if initial then [] else Instr.Manager.changed_targets t.manager
  in
  (* lines 7-11: symbols -> fragments (and back to the fragments' full
     symbol sets, since the recompilation unit is the fragment) *)
  let frag_ids =
    if initial then
      Array.to_list (Array.map (fun (f : Partition.fragment) -> f.Partition.fid)
        t.plan.Partition.fragments)
    else if t.incr_sched then propagate_indexed t changed_targets
    else
      propagate t
        (List.fold_left (fun acc s -> SSet.add s acc) SSet.empty changed_targets)
  in
  (* re-heal: degraded fragments rejoin every schedule until they
     compile cleanly again; queued promotions are force-scheduled the
     same way so a tier-1 object can land with no probe change *)
  let frag_ids =
    if Hashtbl.length t.degraded = 0 && Hashtbl.length t.promote_pending = 0
    then frag_ids
    else
      List.sort_uniq compare
        (Hashtbl.fold
           (fun fid () acc -> fid :: acc)
           t.degraded
           (Hashtbl.fold (fun fid () acc -> fid :: acc) t.promote_pending frag_ids))
  in
  (* visited = fragments the scheduler examined: the whole program on
     the full walk (and on the initial build), only the index-resolved
     dirty set on the incremental path *)
  let visited =
    if initial || not t.incr_sched then n_fragments else List.length frag_ids
  in
  Telemetry.Recorder.count (Some t.telemetry) ~by:visited
    "session.schedule_visited";
  let all_syms = symbols_of_fragments t frag_ids in
  (* lines 13-17: back-propagate to probes — every *activated* probe
     whose target lives in a scheduled fragment must be re-applied.
     [backprop:false] is the ablation DESIGN.md calls out: without this
     step, unchanged probes inside a recompiled fragment silently vanish
     from the new code. *)
  let active =
    if backprop then
      if t.incr_sched && not initial then
        (* collect through the by-target index: each scheduled fragment's
           member symbols name their probes directly. A probe's target
           lives in exactly one fragment's member set, so sorting by pid
           reproduces the full filter's registration order (pids are
           allocated monotonically; sort_uniq guards the invariant) *)
        List.concat_map
          (fun fid ->
            let f = t.plan.Partition.fragments.(fid) in
            Partition.SSet.fold
              (fun s acc ->
                List.rev_append (Instr.Manager.probes_on t.manager s) acc)
              f.Partition.members [])
          frag_ids
        |> List.filter (fun (p : Instr.Probe.t) -> p.Instr.Probe.enabled)
        |> List.sort_uniq (fun (a : Instr.Probe.t) (b : Instr.Probe.t) ->
               compare a.Instr.Probe.pid b.Instr.Probe.pid)
      else
        List.filter
          (fun (p : Instr.Probe.t) ->
            p.Instr.Probe.enabled && SSet.mem p.Instr.Probe.target all_syms)
          (Instr.Manager.to_list t.manager)
    else begin
      let changed = Instr.Manager.changed_probes t.manager in
      List.filter
        (fun (p : Instr.Probe.t) ->
          p.Instr.Probe.enabled
          && (initial || List.memq p changed)
          && SSet.mem p.Instr.Probe.target all_syms)
        (Instr.Manager.to_list t.manager)
    end
  in
  (* line 18: extract the temporary IR by cloning the changed symbols *)
  let temp, map = Ir.Clone.extract t.base (SSet.elements all_syms) in
  {
    session = t;
    active;
    temp;
    map;
    changed_symbols = all_syms;
    changed_fragments = frag_ids;
  }

(* ------------------------------------------------------------------ *)
(* Split, optimize, generate code, link (Figure 7, right half)         *)
(* ------------------------------------------------------------------ *)

(* Classify an exception raised during a fragment compile into a build
   error with the right phase. *)
let classify_fragment_exn ~fid ~probes exn_ =
  match exn_ with
  | Build_error e -> { e with err_fragment = Some fid; err_probes = probes }
  | Support.Fault.Injected site | Support.Fault.Transient_fault site ->
    let phase =
      match site with
      | "opt.pipeline" -> Optimize
      | "codegen.emit" -> Codegen
      | "cache.get" -> Cache
      | "store.read" | "store.write" -> Store
      | _ -> Materialize
    in
    mk_error ~fragment:fid ~probes ~exn_ phase
      (Printf.sprintf "injected fault at site %s" site)
  | Support.Fault.Timed_out site ->
    mk_error ~fragment:fid ~probes ~exn_ Codegen
      (Printf.sprintf "compile watchdog expired at site %s" site)
  | e ->
    mk_error ~fragment:fid ~probes ~exn_:e Codegen
      (Printf.sprintf "fragment compile raised %s" (Printexc.to_string e))

(* Virtual-clock exponential backoff between transient-fault retries:
   never blocks a domain, counts toward the job watchdog budget. *)
let backoff_delay attempt = 0.001 *. (2. ** float_of_int attempt)

(* Every stage of the copy-instrument-split flow runs inside a telemetry
   span; the recompile_event returned to callers is a view over the span
   durations (one source of timing truth — reports derived from the span
   tree always agree with the events).

   Transactionality: [rebuild] snapshots the fragment cache, executable
   and degradation set up front. Fragment jobs never raise — each
   returns either an object (fresh, cached, or degraded last-good /
   pristine) or a fatal error; patch- or link-stage failure (or a fatal
   fragment) restores the snapshot and reports [Rolled_back]. *)
let rebuild (sched : sched) =
  let t = sched.session in
  let r = t.telemetry in
  let spans = r.Telemetry.Recorder.spans in
  let some_r = Some r in
  (* ---- snapshot: everything a rollback must restore. The join loop
     below only writes the *scheduled* fragments' cache and degradation
     entries, so the snapshot records exactly those bindings instead of
     copying the whole cache — O(scheduled), not O(fragments) ---- *)
  let snap_cache =
    List.map
      (fun fid -> (fid, Hashtbl.find_opt t.cache fid))
      sched.changed_fragments
  in
  let snap_exe = t.exe in
  let snap_degraded =
    List.map
      (fun fid -> (fid, Hashtbl.mem t.degraded fid))
      sched.changed_fragments
  in
  let snap_tier =
    List.map
      (fun fid ->
        (fid, Hashtbl.find_opt t.tier_of fid, Hashtbl.mem t.promote_pending fid))
      sched.changed_fragments
  in
  let rollback err =
    List.iter
      (fun (fid, prev) ->
        match prev with
        | Some obj -> Hashtbl.replace t.cache fid obj
        | None -> Hashtbl.remove t.cache fid)
      snap_cache;
    t.exe <- snap_exe;
    List.iter
      (fun (fid, was) ->
        if was then Hashtbl.replace t.degraded fid ()
        else Hashtbl.remove t.degraded fid)
      snap_degraded;
    List.iter
      (fun (fid, tier, pending) ->
        (match tier with
        | Some tr -> Hashtbl.replace t.tier_of fid tr
        | None -> Hashtbl.remove t.tier_of fid);
        if pending then Hashtbl.replace t.promote_pending fid ()
        else Hashtbl.remove t.promote_pending fid)
      snap_tier;
    t.rollback_count <- t.rollback_count + 1;
    Telemetry.Recorder.count some_r "session.rebuild_rollbacks";
    (* probe changes are NOT cleared: the next refresh retries them *)
    t.last_outcome <- Rolled_back err;
    Rolled_back err
  in
  let rebuild_sp =
    Telemetry.Span.enter spans ~cat:"session"
      ~args:
        [
          ("fragments", string_of_int (List.length sched.changed_fragments));
          ("probes", string_of_int (List.length sched.active));
        ]
      "rebuild"
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit spans rebuild_sp)
  @@ fun () ->
  let faults_before = Support.Fault.total_fired () in
  (* the user's patch logic instruments the temporary IR *)
  let patch_result =
    try
      Telemetry.Span.with_span spans ~cat:"session" "patch" (fun () ->
          List.iter (fun patch -> patch sched) t.patchers);
      None
    with
    | Build_error e -> Some e
    | e ->
      Some
        (mk_error
           ~probes:(List.map (fun p -> p.Instr.Probe.pid) sched.active)
           ~exn_:e Patch
           (Printf.sprintf "patch logic raised %s" (Printexc.to_string e)))
  in
  match patch_result with
  | Some err -> rollback err
  | None ->
  let source s =
    if SSet.mem s sched.changed_symbols then Ir.Modul.find sched.temp s else None
  in
  (* Fragment compiles are independent: the patch phase above was the
     last write to the shared temporary IR, and materialize only clones
     out of it. Each job runs materialize → verify → digest →
     (cache | store | optimize → codegen) on a pool domain with a forked
     recorder; results join below in fragment order, so spans, metrics,
     the fid cache and the recompile event are deterministic for any
     pool size. Jobs never raise — failures retry (bounded, virtual
     backoff), then degrade to the last-good or pristine object. *)
  let jclock = Telemetry.Clock.synchronized r.Telemetry.Recorder.clock in
  let compile_sp = Telemetry.Span.enter spans ~cat:"session" "compile" in
  let evictions_before = cache_evictions t.objects in
  let waits_before = shard_waits t.objects in
  let compile_fragment fid =
    let jr = Telemetry.Recorder.fork ~clock:jclock r in
    let jspans = jr.Telemetry.Recorder.spans in
    let fsp =
      Telemetry.Span.enter jspans ~cat:"session"
        ~args:[ ("fid", string_of_int fid) ]
        "fragment"
    in
    Fun.protect ~finally:(fun () -> Telemetry.Span.exit jspans fsp)
    @@ fun () ->
    let f = t.plan.Partition.fragments.(fid) in
    let probes =
      List.filter_map
        (fun (p : Instr.Probe.t) ->
          if Partition.SSet.mem p.Instr.Probe.target f.Partition.members then
            Some p.Instr.Probe.pid
          else None)
        sched.active
    in
    (* The tier this fragment compiles at on this rebuild. Reading
       [promote_pending] from a pool job is safe: the queue is only
       written by the user API and the serial join loop, never while
       jobs are in flight. *)
    let tier = tier_for t fid in
    (* One full attempt at producing this fragment's object from
       [produce_source]; raises on failure. Returns (object, served
       from cache/store/memo?, content key to memoize, modelled
       compile cost — 0 when served). The key is [None] on a memo hit
       (already memoized) — the join loop is the only writer of
       [t.memo]. *)
    let produce produce_source =
      let frag_module =
        Telemetry.Span.with_span jspans ~cat:"session" "materialize" (fun () ->
            Support.Fault.hit "session.materialize";
            Partition.materialize t.plan f ~source:produce_source ~base:t.base)
      in
      (* content address: the instrumented IR is the complete compiler
         input, and the opt bound is the only config that alters the
         output for equal input. Digested structurally (one visitor
         pass, Ir.Shash) — same equivalence as printing, without
         materializing the printed module. Digest runs before verify so
         the session memo can short-circuit the whole remaining walk:
         an equal digest means a structurally identical module, which
         already verified when the memo entry was made *)
      let key =
        Telemetry.Span.with_span jspans ~cat:"session" "digest" (fun () ->
            let b = Buffer.create 4096 in
            (* the tier is part of the content address: a baseline
               object can never satisfy an optimized lookup (or vice
               versa) in the memo, the shared cache or the store *)
            Buffer.add_string b
              (Printf.sprintf "fid=%d;rounds=%d;tier=%d;" fid t.opt_rounds tier);
            Ir.Shash.add_module b frag_module;
            Digest.bytes (Buffer.to_bytes b))
      in
      let memoized =
        if t.incr_sched then Hashtbl.find_opt t.memo key else None
      in
      match memoized with
      | Some obj ->
        (* unchanged fragment: skip verify, the shard locks, the store
           round-trip and Opt.Pipeline entirely. Reads race only with
           other readers — the memo is written solely from the serial
           join loop between pool batches *)
        Telemetry.Span.add_arg fsp "cache" "memo";
        Telemetry.Recorder.count (Some jr) "session.opt_memo_hits";
        (obj, true, None, 0)
      | None ->
      Telemetry.Span.with_span jspans ~cat:"session" "verify" (fun () ->
          match Ir.Verify.check_module frag_module with
          | [] -> ()
          | errors ->
            raise
              (Build_error
                 (mk_error ~fragment:fid ~probes Verify
                    (Printf.sprintf "fragment %d does not verify:\n%s" fid
                       (Ir.Verify.errors_to_string errors)))));
      let oc = t.objects in
      let cached =
        try
          Support.Fault.hit "cache.get";
          with_shard oc key (fun cs ->
              let v = Support.Lru.find cs.cs_lru key in
              (match v with
              | Some _
                when Hashtbl.find_opt cs.cs_owners key <> Some t.owner
                     && Hashtbl.mem cs.cs_owners key ->
                (* served an object another session produced *)
                Atomic.incr oc.oc_cross_hits;
                Telemetry.Recorder.count (Some jr) "session.cache_cross_hits"
              | _ -> ());
              v)
        with
        | Support.Fault.Injected _ | Support.Fault.Transient_fault _ ->
          (* a poisoned or faulting cache lookup degrades to a miss *)
          Telemetry.Recorder.count (Some jr) "session.cache_faults";
          None
      in
      match cached with
      | Some obj ->
        Telemetry.Span.add_arg fsp "cache" "hit";
        (obj, true, Some key, 0)
      | None -> (
        (* persistent tier: a store hit skips optimize+codegen too *)
        let from_store =
          match t.store with
          | None -> None
          | Some st -> (
            match Support.Objstore.get st key with
            | None -> None
            | Some data -> (
              try Some (Marshal.from_string data 0 : Link.Objfile.t)
              with _ -> None))
        in
        match from_store with
        | Some obj ->
          Telemetry.Span.add_arg fsp "cache" "store-hit";
          Telemetry.Recorder.count (Some jr) "session.store_hits";
          with_shard oc key (fun cs ->
              Support.Lru.add cs.cs_lru key obj;
              if not (Hashtbl.mem cs.cs_owners key) then
                Hashtbl.replace cs.cs_owners key t.owner);
          (obj, true, Some key, 0)
        | None ->
          (* tier 0 is the whole point of the baseline path: skip the
             pass pipeline entirely and run the single-pass backend.
             [cost] accumulates the modelled work either way, so the
             tier bench can compare per-fragment compile cost. *)
          let cost = ref 0 in
          if tier <> 0 then
            ignore
              (Opt.Pipeline.run_fragment ~recorder:jr ~cost
                 ~max_rounds:t.opt_rounds frag_module);
          let obj =
            Telemetry.Span.with_span jspans ~cat:"session" "codegen" (fun () ->
                Link.Objfile.of_module ~tier ~cost frag_module)
          in
          with_shard oc key (fun cs ->
              Support.Lru.add cs.cs_lru key obj;
              if not (Hashtbl.mem cs.cs_owners key) then
                Hashtbl.replace cs.cs_owners key t.owner);
          (match t.store with
          | None -> ()
          | Some st -> Support.Objstore.put st key (Marshal.to_string obj []));
          (obj, false, Some key, !cost))
    in
    (* Bounded retries with virtual-clock backoff for transient faults;
       the cooperative watchdog (armed below) can cut any attempt short. *)
    let rec attempt n =
      try Stdlib.Ok (produce source) with
      | Support.Fault.Transient_fault _ as e when n < t.max_retries ->
        Telemetry.Recorder.count (Some jr) "session.fragment_retries";
        Support.Fault.virtual_sleep (backoff_delay n);
        Telemetry.Span.add_arg fsp "retries" (string_of_int (n + 1));
        ignore e;
        attempt (n + 1)
      | e -> Stdlib.Error (classify_fragment_exn ~fid ~probes e)
    in
    let result =
      Support.Fault.with_deadline t.job_timeout (fun () -> attempt 0)
    in
    match result with
    | Stdlib.Ok (obj, hit, mkey, cost) ->
      (fid, Stdlib.Ok (obj, hit, false, mkey, Some tier, cost), jr, fsp)
    | Stdlib.Error err -> (
      Telemetry.Span.add_arg fsp "degraded" "true";
      Telemetry.Recorder.count (Some jr) "session.fragment_faults";
      (* Degrade: last-good object if one exists (the fid cache is not
         touched until the join), else the pristine un-instrumented
         fragment — compiled with injection suppressed: the recovery
         path must not be sabotaged by the fault it recovers from. The
         last-good object keeps whatever tier it was compiled at
         ([None] = leave [tier_of] alone). *)
      match Hashtbl.find_opt t.cache fid with
      | Some last_good ->
        (fid, Stdlib.Ok (last_good, false, true, None, None, 0), jr, fsp)
      | None -> (
        match
          Support.Fault.with_suppressed (fun () ->
              try Stdlib.Ok (produce (fun _ -> None)) with e -> Stdlib.Error e)
        with
        | Stdlib.Ok (obj, hit, mkey, cost) ->
          (fid, Stdlib.Ok (obj, hit, true, mkey, Some tier, cost), jr, fsp)
        | Stdlib.Error _ ->
          (* no last-good and even the pristine object will not build:
             nothing consistent to serve — fatal, forces a rollback *)
          (fid, Stdlib.Error err, jr, fsp)))
  in
  let results = Support.Pool.map t.pool compile_fragment sched.changed_fragments in
  let fatal =
    List.find_map
      (fun (_, res, _, _) ->
        match res with Stdlib.Error e -> Some e | Stdlib.Ok _ -> None)
      results
  in
  let cache_hits = ref 0 in
  let degraded_now = ref [] in
  let tier0_now = ref 0 in
  let promoted_now = ref 0 in
  let tier0_cost_before = t.tier0_cost in
  let tier1_cost_before = t.tier1_cost in
  (* objects that differ from the previous link's input, by name —
     physical identity is exact here: an unchanged fragment is never
     scheduled, and a scheduled one either round-trips to the very same
     cached object (content hit / degraded last-good) or is new *)
  let changed_objs = ref [] in
  List.iter
    (fun (fid, res, jr, fsp) ->
      (match res with
      | Stdlib.Ok (obj, hit, degr, mkey, tier, cost) ->
        (match Hashtbl.find_opt t.cache fid with
        | Some prev when prev == obj -> ()
        | _ -> changed_objs := obj.Link.Objfile.o_name :: !changed_objs);
        Hashtbl.replace t.cache fid obj;
        (* the join loop is the memo's only writer: pool jobs read it
           concurrently, so writes must never overlap a batch *)
        (match mkey with
        | Some k when t.incr_sched -> Hashtbl.replace t.memo k obj
        | _ -> ());
        (* tier bookkeeping: record the tier the object now serving this
           fragment was compiled at, count fresh compiles per tier, and
           retire the promotion once its tier-1 object is in *)
        (match tier with
        | Some tr ->
          (if t.tiered && tr = 1 && Hashtbl.mem t.promote_pending fid then begin
             Hashtbl.remove t.promote_pending fid;
             incr promoted_now;
             t.promotion_count <- t.promotion_count + 1
           end);
          Hashtbl.replace t.tier_of fid tr;
          if not hit then begin
            if tr = 0 then begin
              incr tier0_now;
              t.tier0_compiles <- t.tier0_compiles + 1;
              t.tier0_cost <- t.tier0_cost + cost
            end
            else begin
              t.tier1_compiles <- t.tier1_compiles + 1;
              t.tier1_cost <- t.tier1_cost + cost
            end
          end
        | None -> ());
        if hit then incr cache_hits;
        if degr then begin
          degraded_now := fid :: !degraded_now;
          if not (Hashtbl.mem t.degraded fid) then t.degrade_count <- t.degrade_count + 1;
          Hashtbl.replace t.degraded fid ()
        end
        else if Hashtbl.mem t.degraded fid then begin
          Hashtbl.remove t.degraded fid;
          Telemetry.Recorder.count some_r "session.fragments_healed"
        end
      | Stdlib.Error _ -> ());
      Telemetry.Recorder.merge ~into:r ~parent:compile_sp jr;
      Telemetry.Recorder.observe (Some r) "session.fragment_ms"
        (1000. *. Telemetry.Span.duration fsp))
    results;
  let degraded_now = List.rev !degraded_now in
  Telemetry.Span.exit spans compile_sp;
  match fatal with
  | Some err -> rollback err
  | None -> (
  (* link all cached fragments + the runtime; transient faults retry
     with the same bounded backoff, anything persistent rolls back *)
  let link_sp = Telemetry.Span.enter spans ~cat:"session" "link" in
  let compactions_before =
    (Link.Incremental.stats t.linker).Link.Incremental.st_compactions
  in
  let objs =
    t.runtime
    :: (Array.to_list t.plan.Partition.fragments
       |> List.filter_map (fun (f : Partition.fragment) ->
              Hashtbl.find_opt t.cache f.Partition.fid))
  in
  let rec link_attempt n =
    try
      Stdlib.Ok
        (Link.Incremental.relink ~incremental:t.incr_link ~host:t.host t.linker
           ~changed:!changed_objs objs)
    with
    | Support.Fault.Transient_fault _ when n < t.max_retries ->
      Telemetry.Recorder.count some_r "session.link_retries";
      Support.Fault.virtual_sleep (backoff_delay n);
      link_attempt (n + 1)
    | Build_error e -> Stdlib.Error { e with err_phase = Link }
    | e ->
      let msg =
        match Link.Linker.link_error_message e with
        | Some m -> m
        | None -> Printf.sprintf "link raised %s" (Printexc.to_string e)
      in
      Stdlib.Error
        (mk_error
           ~probes:(List.map (fun p -> p.Instr.Probe.pid) sched.active)
           ~exn_:e Link msg)
  in
  let link_result = link_attempt 0 in
  Telemetry.Span.exit spans link_sp;
  match link_result with
  | Stdlib.Error err -> rollback err
  | Stdlib.Ok exe ->
    t.exe <- Some exe;
    Instr.Manager.clear_changes t.manager;
    Telemetry.Recorder.count some_r "session.rebuilds";
    Telemetry.Recorder.count some_r
      ~by:(List.length sched.changed_fragments)
      "session.fragments_scheduled";
    Telemetry.Recorder.count some_r
      ~by:(List.length sched.changed_fragments - !cache_hits)
      "session.fragments_recompiled";
    Telemetry.Recorder.count some_r ~by:!cache_hits "session.fragment_cache_hits";
    (* memo hits are counted into the per-job recorders as they happen;
       touch the counter here so it is present (possibly 0) in every
       report, like the other rebuild counters *)
    Telemetry.Recorder.count some_r ~by:0 "session.opt_memo_hits";
    Telemetry.Recorder.count some_r
      ~by:(cache_evictions t.objects - evictions_before)
      "session.fragment_cache_evictions";
    Telemetry.Recorder.count some_r
      ~by:(shard_waits t.objects - waits_before)
      "session.cache_shard_waits";
    (let ls = Link.Incremental.last t.linker in
     Telemetry.Recorder.count some_r
       (if ls.Link.Incremental.ls_incremental then "link.relinks_incremental"
        else "link.relinks_full");
     Telemetry.Recorder.count some_r
       ~by:ls.Link.Incremental.ls_symbols_patched "link.symbols_patched";
     Telemetry.Recorder.count some_r
       ~by:ls.Link.Incremental.ls_relocs_patched "link.relocs_patched");
    Telemetry.Recorder.count some_r
      ~by:
        ((Link.Incremental.stats t.linker).Link.Incremental.st_compactions
        - compactions_before)
      "link.slab_compactions";
    Telemetry.Recorder.count some_r ~by:!tier0_now "session.tier0_compiles";
    Telemetry.Recorder.count some_r ~by:!promoted_now "session.tier_promotions";
    (* touched so the counter is present (possibly 0) in every report;
       [note_osr_migration] does the real bumping *)
    Telemetry.Recorder.count some_r ~by:0 "session.osr_migrations";
    Telemetry.Recorder.count some_r
      ~by:(t.tier0_cost - tier0_cost_before)
      "session.tier0_cost";
    Telemetry.Recorder.count some_r
      ~by:(t.tier1_cost - tier1_cost_before)
      "session.tier1_cost";
    Telemetry.Recorder.count some_r
      ~by:(List.length sched.active)
      "session.probes_applied";
    Telemetry.Recorder.count some_r
      ~by:(List.length degraded_now)
      "session.fragments_degraded";
    Telemetry.Recorder.count some_r
      ~by:(Support.Fault.total_fired () - faults_before)
      "session.faults_injected";
    let ls = Link.Incremental.last t.linker in
    let event =
      {
        ev_fragments = sched.changed_fragments;
        ev_cache_hits = !cache_hits;
        ev_probes_applied = List.length sched.active;
        ev_compile_time = Telemetry.Span.duration compile_sp;
        ev_link_time = Telemetry.Span.duration link_sp;
        ev_per_fragment =
          List.map
            (fun (fid, _, _, fsp) -> (fid, Telemetry.Span.duration fsp))
            results;
        ev_link_incremental = ls.Link.Incremental.ls_incremental;
        ev_symbols_patched = ls.Link.Incremental.ls_symbols_patched;
      }
    in
    t.events <- event :: t.events;
    let outcome =
      match degraded_now with [] -> Ok | fids -> Degraded fids
    in
    t.last_outcome <- outcome;
    outcome)

(** Initial build, transactional: schedule every fragment and build the
    executable, reporting the outcome instead of raising. *)
let try_build t =
  Telemetry.Recorder.with_span t.telemetry ~cat:"session" "build" (fun () ->
      let sched =
        Telemetry.Recorder.with_span t.telemetry ~cat:"session" "schedule"
          (fun () -> schedule ~initial:true t)
      in
      rebuild sched)

(** Initial build: schedule every fragment and build the executable.
    @raise Build_error when the build rolled back. *)
let build t =
  match try_build t with
  | Ok | Degraded _ -> List.hd t.events
  | Rolled_back err -> raise (Build_error err)

(** Incremental transactional rebuild after probe changes (or pending
    degraded fragments to re-heal); [None] when nothing to do. *)
let try_refresh ?(backprop = true) t =
  if
    Instr.Manager.has_changes t.manager
    || Hashtbl.length t.degraded > 0
    || Hashtbl.length t.promote_pending > 0
  then
    Telemetry.Recorder.with_span t.telemetry ~cat:"session" "refresh" (fun () ->
        let sched =
          Telemetry.Recorder.with_span t.telemetry ~cat:"session" "schedule"
            (fun () -> schedule ~backprop t)
        in
        Some (rebuild sched))
  else None

(** Incremental rebuild after probe changes; no-op when nothing changed.
    @raise Build_error when the rebuild rolled back. *)
let refresh ?(backprop = true) t =
  match try_refresh ~backprop t with
  | None -> None
  | Some (Ok | Degraded _) -> Some (List.hd t.events)
  | Some (Rolled_back err) -> raise (Build_error err)

(** Batched multi-toggle refresh: flip a whole probe set (the mutation
    campaign's "disarm previous mutant, arm next one" — or arm a K-mutant
    set at once) as ONE dirty-set update and ONE schedule pass. With the
    incremental scheduler this is O(changed): K toggles visit the
    fragments those K probes live in (the [session.schedule_visited]
    counter records the walk's extent), never K separate refreshes and
    never an O(program) scan. Returns the transactional outcome plus the
    recompile event when a rebuild happened and was not rolled back. *)
let refresh_toggles ?(backprop = true) t toggles =
  Instr.Manager.toggle_many t.manager toggles;
  match try_refresh ~backprop t with
  | None -> None
  | Some outcome ->
    let ev =
      match outcome with
      | Ok | Degraded _ -> Some (List.hd t.events)
      | Rolled_back _ -> None
    in
    Some (outcome, ev)

let executable t =
  match t.exe with
  | Some exe -> exe
  | None ->
    raise
      (Build_error
         (mk_error Lifecycle "Odin session not built yet — call Session.build"))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let events t = List.rev t.events

let total_compile_time t =
  List.fold_left (fun acc e -> acc +. e.ev_compile_time) 0. t.events

let fragment_sizes t =
  Array.to_list t.plan.Partition.fragments
  |> List.map (fun (f : Partition.fragment) ->
         (f.Partition.fid, Partition.SSet.cardinal f.Partition.members))

(** Fragments currently serving a stale/pristine object, sorted. *)
let degraded_fragments t =
  List.sort compare (Hashtbl.fold (fun fid () acc -> fid :: acc) t.degraded [])

(** Rebuilds rolled back to their snapshot so far. *)
let rollbacks t = t.rollback_count

(** Total fragment degradations over the session's lifetime. *)
let degrade_total t = t.degrade_count

(** Outcome of the most recent build/refresh ([Ok] before the first). *)
let last_outcome t = t.last_outcome

(** Persistent-store statistics, when [cache_dir] was given. *)
let store_stats t = Option.map Support.Objstore.stats t.store