(** The Odin engine: owns the pristine whole-program IR, the partition
    plan, the probe manager, the machine-code cache, and the linked
    executable. Implements the recompilation scheduler (paper Section
    3.3, Algorithm 2) and the copy-instrument-split flow of Figure 7.

    Timing: every rebuild is recorded as a tree of telemetry spans
    (schedule → patch → per-fragment materialize/verify/optimize/codegen
    → link) on the session's recorder; [recompile_event] is a thin view
    over that span tree, and the benchmark harness reproduces Figures
    11/12 and the 82 ms average from these records. The recorder only
    observes — build results are bit-identical whether or not anyone
    ever exports a report or trace from it.

    Concurrency: scheduled fragments compile in parallel on a
    [Support.Pool] (the link step stays a serial barrier), and a
    content-addressed LRU object cache in front of codegen turns probe
    toggle round-trips into relink-only refreshes. Both are invisible
    to correctness: output is bit-identical for any pool size. *)

module SSet = Set.Make (String)

type recompile_event = {
  ev_fragments : int list;  (** fragment ids scheduled *)
  ev_cache_hits : int;  (** of those, served from the object cache *)
  ev_probes_applied : int;
  ev_compile_time : float;  (** seconds, middle end + back end *)
  ev_link_time : float;  (** seconds *)
  ev_per_fragment : (int * float) list;  (** (fragment id, seconds) *)
}

type t = {
  base : Ir.Modul.t;  (** pristine IR; instrumentation never touches it *)
  plan : Partition.plan;
  manager : Instr.Manager.t;
  cache : (int, Link.Objfile.t) Hashtbl.t;
  obj_cache : Link.Objfile.t Support.Lru.t;
      (** content-addressed: digest of printed instrumented fragment IR
          (plus opt config) -> finished object. A hit skips
          optimize+codegen — probe sets toggled off and on again relink
          the cached object instead of recompiling. *)
  obj_lock : Mutex.t;  (** guards [obj_cache] during parallel compiles *)
  pool : Support.Pool.t;  (** fragment compile executor *)
  runtime : Link.Objfile.t;  (** runtime globals (counter arrays, ...) *)
  mutable host : string list;
  mutable exe : Link.Linker.exe option;
  mutable patchers : (sched -> unit) list;
      (** user patch logic: applies active probes to the temporary IR;
          schemes compose (coverage + CmpLog + checks in one session) *)
  mutable events : recompile_event list;  (** newest first *)
  mutable opt_rounds : int;
  telemetry : Telemetry.Recorder.t;
      (** spans/counters for every build; the timing source of [events] *)
}

(** Scheduler handle passed to patch logic (paper Section 4): exposes the
    probes to apply and the pristine-to-temporary instruction map. *)
and sched = {
  session : t;
  active : Instr.Probe.t list;  (** probes to (re-)apply *)
  temp : Ir.Modul.t;  (** temporary IR: clone of all changed symbols *)
  map : Ir.Clone.map;
  changed_symbols : SSet.t;
  changed_fragments : int list;
}

(** Translate a pristine instruction to its clone in the temporary IR
    ([Sched.map] in the paper's API). *)
let map_ins sched ins = Ir.Clone.map_ins sched.map ins

let map_func sched name = Ir.Modul.find_func sched.temp name

(* ------------------------------------------------------------------ *)
(* Session construction                                                *)
(* ------------------------------------------------------------------ *)

(** Create a session for [base].
    [runtime_globals] are data symbols owned by the instrumentation
    runtime (e.g. coverage counter arrays), linked as a separate object;
    [host] names functions provided by the host/fuzzer at run time. *)
let create ?(mode = Partition.Auto) ?(copy_on_use = true) ?(keep = [ "main" ])
    ?(runtime_globals = []) ?(host = []) ?(opt_rounds = 2) ?pool
    ?(cache_size = 256) ?(telemetry = Telemetry.Recorder.create ())
    (base : Ir.Modul.t) =
  Ir.Verify.run_exn base;
  let cls =
    Telemetry.Recorder.with_span telemetry ~cat:"session" "classify" (fun () ->
        Classify.classify ~keep base)
  in
  let plan =
    Telemetry.Recorder.with_span telemetry ~cat:"session" "partition" (fun () ->
        Partition.plan ~mode ~copy_on_use ~keep base cls)
  in
  (* runtime object: plain data symbols, always linked *)
  let runtime_module = Ir.Modul.create ~name:"odin.runtime" () in
  List.iter
    (fun (name, size) ->
      ignore
        (Ir.Modul.add_var runtime_module ~linkage:Ir.Func.External ~name
           (Ir.Modul.Zero size)))
    runtime_globals;
  let runtime = Link.Objfile.of_module runtime_module in
  (* the base module must see runtime globals as declarations so that
     patch logic can reference them *)
  List.iter
    (fun (name, _) ->
      if not (Ir.Modul.mem base name) then
        ignore (Ir.Modul.add_var base ~linkage:Ir.Func.External ~name Ir.Modul.Extern))
    runtime_globals;
  {
    base;
    plan;
    manager = Instr.Manager.create ();
    cache = Hashtbl.create 32;
    obj_cache = Support.Lru.create cache_size;
    obj_lock = Mutex.create ();
    pool = (match pool with Some p -> p | None -> Support.Pool.default ());
    runtime;
    host;
    exe = None;
    patchers = [];
    events = [];
    opt_rounds;
    telemetry;
  }

(** Change the fragment re-optimization bound. Takes effect on the next
    rebuild; cached objects compiled under the old setting are not
    reused (the bound is part of the cache key). *)
let set_opt_rounds t rounds = t.opt_rounds <- max 0 rounds

(** Replace all patch logic with [patcher]. *)
let set_patcher t patcher = t.patchers <- [ patcher ]

(** Register an additional instrumentation scheme's patch logic; all
    registered patchers run (in registration order) on every rebuild. *)
let add_patcher t patcher = t.patchers <- t.patchers @ [ patcher ]

(** Declare a runtime function provided by the host (fuzzer) at run time;
    instrumentation schemes call this for their hooks. *)
let add_host_symbol t name =
  if not (List.mem name t.host) then t.host <- name :: t.host

(* ------------------------------------------------------------------ *)
(* Algorithm 2: scheduling fragments and probes                        *)
(* ------------------------------------------------------------------ *)

(* Which fragments must be recompiled given the changed symbols, and the
   full set of symbols those fragments contain. *)
let propagate t changed_syms =
  let frag_ids = ref [] in
  Array.iter
    (fun (f : Partition.fragment) ->
      let touched =
        SSet.exists (fun s -> Partition.SSet.mem s f.Partition.members) changed_syms
        (* a change to a copy-on-use symbol dirties every fragment that
           cloned it *)
        || SSet.exists (fun s -> Partition.SSet.mem s f.Partition.clones) changed_syms
      in
      if touched then frag_ids := f.Partition.fid :: !frag_ids)
    t.plan.Partition.fragments;
  let frag_ids = List.rev !frag_ids in
  let all_syms =
    List.fold_left
      (fun acc fid ->
        let f = t.plan.Partition.fragments.(fid) in
        Partition.SSet.fold SSet.add f.Partition.members acc)
      SSet.empty frag_ids
  in
  (frag_ids, all_syms)

(** Compute the schedule for the current probe-state changes: detect the
    changed probes, propagate to fragments, back-propagate to the full
    set of active probes in those fragments, and extract the temporary
    IR (lines 1-18 of Algorithm 2). On the very first build, every
    fragment is scheduled. *)
let schedule ?(initial = false) ?(backprop = true) t =
  (* lines 2-6: changed probes -> symbols *)
  let changed_syms =
    if initial then
      Array.fold_left
        (fun acc (f : Partition.fragment) ->
          Partition.SSet.fold SSet.add f.Partition.members acc)
        SSet.empty t.plan.Partition.fragments
    else
      List.fold_left
        (fun acc s -> SSet.add s acc)
        SSet.empty
        (Instr.Manager.changed_targets t.manager)
  in
  (* lines 7-11: symbols -> fragments (and back to the fragments' full
     symbol sets, since the recompilation unit is the fragment) *)
  let frag_ids, all_syms = propagate t changed_syms in
  (* lines 13-17: back-propagate to probes — every *activated* probe
     whose target lives in a scheduled fragment must be re-applied.
     [backprop:false] is the ablation DESIGN.md calls out: without this
     step, unchanged probes inside a recompiled fragment silently vanish
     from the new code. *)
  let active =
    let all = Instr.Manager.to_list t.manager in
    if backprop then
      List.filter
        (fun (p : Instr.Probe.t) ->
          p.Instr.Probe.enabled && SSet.mem p.Instr.Probe.target all_syms)
        all
    else begin
      let changed = Instr.Manager.changed_probes t.manager in
      List.filter
        (fun (p : Instr.Probe.t) ->
          p.Instr.Probe.enabled
          && (initial || List.memq p changed)
          && SSet.mem p.Instr.Probe.target all_syms)
        all
    end
  in
  (* line 18: extract the temporary IR by cloning the changed symbols *)
  let temp, map = Ir.Clone.extract t.base (SSet.elements all_syms) in
  {
    session = t;
    active;
    temp;
    map;
    changed_symbols = all_syms;
    changed_fragments = frag_ids;
  }

(* ------------------------------------------------------------------ *)
(* Split, optimize, generate code, link (Figure 7, right half)         *)
(* ------------------------------------------------------------------ *)

exception Build_error of string

(* Every stage of the copy-instrument-split flow runs inside a telemetry
   span; the recompile_event returned to callers is a view over the span
   durations (one source of timing truth — reports derived from the span
   tree always agree with the events). *)
let rebuild (sched : sched) =
  let t = sched.session in
  let r = t.telemetry in
  let spans = r.Telemetry.Recorder.spans in
  let rebuild_sp =
    Telemetry.Span.enter spans ~cat:"session"
      ~args:
        [
          ("fragments", string_of_int (List.length sched.changed_fragments));
          ("probes", string_of_int (List.length sched.active));
        ]
      "rebuild"
  in
  Fun.protect ~finally:(fun () -> Telemetry.Span.exit spans rebuild_sp)
  @@ fun () ->
  (* the user's patch logic instruments the temporary IR *)
  Telemetry.Span.with_span spans ~cat:"session" "patch" (fun () ->
      List.iter (fun patch -> patch sched) t.patchers);
  let source s =
    if SSet.mem s sched.changed_symbols then Ir.Modul.find sched.temp s else None
  in
  (* Fragment compiles are independent: the patch phase above was the
     last write to the shared temporary IR, and materialize only clones
     out of it. Each job runs materialize → verify → digest →
     (optimize → codegen | cache hit) on a pool domain with a forked
     recorder; results join below in fragment order, so spans, metrics,
     the fid cache and the recompile event are deterministic for any
     pool size. *)
  let jclock = Telemetry.Clock.synchronized r.Telemetry.Recorder.clock in
  let compile_sp = Telemetry.Span.enter spans ~cat:"session" "compile" in
  let evictions_before = Support.Lru.evictions t.obj_cache in
  let compile_fragment fid =
    let jr = Telemetry.Recorder.fork ~clock:jclock r in
    let jspans = jr.Telemetry.Recorder.spans in
    let fsp =
      Telemetry.Span.enter jspans ~cat:"session"
        ~args:[ ("fid", string_of_int fid) ]
        "fragment"
    in
    Fun.protect ~finally:(fun () -> Telemetry.Span.exit jspans fsp)
    @@ fun () ->
    let f = t.plan.Partition.fragments.(fid) in
    let frag_module =
      Telemetry.Span.with_span jspans ~cat:"session" "materialize" (fun () ->
          Partition.materialize t.plan f ~source ~base:t.base)
    in
    Telemetry.Span.with_span jspans ~cat:"session" "verify" (fun () ->
        match Ir.Verify.check_module frag_module with
        | [] -> ()
        | errors ->
          raise
            (Build_error
               (Printf.sprintf "fragment %d does not verify:\n%s" fid
                  (Ir.Verify.errors_to_string errors))));
    (* content address: the printed instrumented IR is the complete
       compiler input, and the opt bound is the only config that alters
       the output for equal input *)
    let key =
      Telemetry.Span.with_span jspans ~cat:"session" "digest" (fun () ->
          Digest.string
            (Printf.sprintf "fid=%d;rounds=%d;%s" fid t.opt_rounds
               (Ir.Print.module_to_string frag_module)))
    in
    let cached =
      Mutex.lock t.obj_lock;
      let v = Support.Lru.find t.obj_cache key in
      Mutex.unlock t.obj_lock;
      v
    in
    match cached with
    | Some obj ->
      Telemetry.Span.add_arg fsp "cache" "hit";
      (fid, obj, true, jr, fsp)
    | None ->
      ignore
        (Opt.Pipeline.run_fragment ~recorder:jr ~max_rounds:t.opt_rounds
           frag_module);
      let obj =
        Telemetry.Span.with_span jspans ~cat:"session" "codegen" (fun () ->
            Link.Objfile.of_module frag_module)
      in
      Mutex.lock t.obj_lock;
      Support.Lru.add t.obj_cache key obj;
      Mutex.unlock t.obj_lock;
      (fid, obj, false, jr, fsp)
  in
  let results = Support.Pool.map t.pool compile_fragment sched.changed_fragments in
  let cache_hits = ref 0 in
  List.iter
    (fun (fid, obj, hit, jr, fsp) ->
      Hashtbl.replace t.cache fid obj;
      if hit then incr cache_hits;
      Telemetry.Recorder.merge ~into:r ~parent:compile_sp jr;
      Telemetry.Recorder.observe (Some r) "session.fragment_ms"
        (1000. *. Telemetry.Span.duration fsp))
    results;
  Telemetry.Span.exit spans compile_sp;
  (* link all cached fragments + the runtime *)
  let link_sp = Telemetry.Span.enter spans ~cat:"session" "link" in
  let objs =
    t.runtime
    :: (Array.to_list t.plan.Partition.fragments
       |> List.filter_map (fun (f : Partition.fragment) ->
              Hashtbl.find_opt t.cache f.Partition.fid))
  in
  let exe = Link.Linker.link ~host:t.host objs in
  Telemetry.Span.exit spans link_sp;
  t.exe <- Some exe;
  Instr.Manager.clear_changes t.manager;
  let some_r = Some r in
  Telemetry.Recorder.count some_r "session.rebuilds";
  Telemetry.Recorder.count some_r
    ~by:(List.length sched.changed_fragments)
    "session.fragments_scheduled";
  Telemetry.Recorder.count some_r
    ~by:(List.length sched.changed_fragments - !cache_hits)
    "session.fragments_recompiled";
  Telemetry.Recorder.count some_r ~by:!cache_hits "session.fragment_cache_hits";
  Telemetry.Recorder.count some_r
    ~by:(Support.Lru.evictions t.obj_cache - evictions_before)
    "session.fragment_cache_evictions";
  Telemetry.Recorder.count some_r
    ~by:(List.length sched.active)
    "session.probes_applied";
  let event =
    {
      ev_fragments = sched.changed_fragments;
      ev_cache_hits = !cache_hits;
      ev_probes_applied = List.length sched.active;
      ev_compile_time = Telemetry.Span.duration compile_sp;
      ev_link_time = Telemetry.Span.duration link_sp;
      ev_per_fragment =
        List.map
          (fun (fid, _, _, _, fsp) -> (fid, Telemetry.Span.duration fsp))
          results;
    }
  in
  t.events <- event :: t.events;
  event

(** Initial build: schedule every fragment and build the executable. *)
let build t =
  Telemetry.Recorder.with_span t.telemetry ~cat:"session" "build" (fun () ->
      let sched =
        Telemetry.Recorder.with_span t.telemetry ~cat:"session" "schedule"
          (fun () -> schedule ~initial:true t)
      in
      rebuild sched)

(** Incremental rebuild after probe changes; no-op when nothing changed. *)
let refresh ?(backprop = true) t =
  if Instr.Manager.has_changes t.manager then
    Telemetry.Recorder.with_span t.telemetry ~cat:"session" "refresh" (fun () ->
        let sched =
          Telemetry.Recorder.with_span t.telemetry ~cat:"session" "schedule"
            (fun () -> schedule ~backprop t)
        in
        Some (rebuild sched))
  else None

let executable t =
  match t.exe with
  | Some exe -> exe
  | None -> raise (Build_error "Odin session not built yet — call Session.build")

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let events t = List.rev t.events

let total_compile_time t =
  List.fold_left (fun acc e -> acc +. e.ev_compile_time) 0. t.events

let fragment_sizes t =
  Array.to_list t.plan.Partition.fragments
  |> List.map (fun (f : Partition.fragment) ->
         (f.Partition.fid, Partition.SSet.cardinal f.Partition.members))
