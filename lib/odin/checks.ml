(** Sanitizer-style check probes (the paper's future-work Section 7):
    UBSan-like division checks and ASan-lite load checks, expressed as
    Odin probes so that hot checks (ASAP) or falsely-firing checks
    (UBSan-with-fuzzing) can be removed mid-campaign with a recompile.

    A check compiles to a call to the runtime inspector before the
    guarded instruction; the runtime counts trips and flags violations.
    (A production sanitizer would branch inline; the call form exercises
    the same probe lifecycle with a comparable per-check cost.) *)

let div_fn = "__odin_check_div"
let load_fn = "__odin_check_load"

type violation = { v_pid : int; v_value : int64 }

type t = {
  session : Session.t;
  mutable violations : violation list;
  mutable trips : int;
}

let insert_check (fn : Ir.Func.t) (cloned : Ir.Ins.ins) pid =
  let guarded =
    match cloned.Ir.Ins.kind with
    | Ir.Ins.Binop ((Ir.Ins.Sdiv | Ir.Ins.Udiv | Ir.Ins.Srem | Ir.Ins.Urem), _, divisor)
      ->
      Some (div_fn, divisor)
    | Ir.Ins.Load ptr -> Some (load_fn, ptr)
    | _ -> None
  in
  match guarded with
  | None -> ()
  | Some (callee, watched) -> (
    let host =
      List.find_opt
        (fun (b : Ir.Func.block) -> List.memq cloned b.Ir.Func.insns)
        fn.Ir.Func.blocks
    in
    match host with
    | None -> ()
    | Some blk ->
      let watched64, pre =
        match Ir.Ins.value_ty watched with
        | Ir.Types.I64 | Ir.Types.Ptr -> (watched, [])
        | _ ->
          let name = Cmplog.gensym fn ~pid "chkarg" in
          ( Ir.Ins.Reg (Ir.Types.I64, name),
            [
              Ir.Ins.mk ~volatile:true ~id:name ~ty:Ir.Types.I64
                (Ir.Ins.Cast (Ir.Ins.Sext, watched));
            ] )
      in
      let call =
        Ir.Ins.mk ~volatile:true ~id:"" ~ty:Ir.Types.Void
          (Ir.Ins.Call (Ir.Ins.Direct callee, [ Ir.Builder.i64 pid; watched64 ]))
      in
      let rec insert_before = function
        | [] -> pre @ [ call ]
        | i :: rest when i == cloned -> pre @ (call :: i :: rest)
        | i :: rest -> i :: insert_before rest
      in
      blk.Ir.Func.insns <- insert_before blk.Ir.Func.insns)

let patch (sched : Session.sched) =
  List.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Check c -> (
        match
          ( Session.map_func sched p.Instr.Probe.target,
            Session.map_ins sched c.Instr.Probe.chk_ins )
        with
        | Some fn, Some cloned -> insert_check fn cloned p.Instr.Probe.pid
        | _ -> ())
      | _ -> ())
    sched.Session.active

(** One probe per division (always) and, with [loads:true], per load. *)
let setup ?(loads = false) (session : Session.t) =
  let t = { session; violations = []; trips = 0 } in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_insns
        (fun (i : Ir.Ins.ins) ->
          let kind =
            match i.Ir.Ins.kind with
            | Ir.Ins.Binop ((Ir.Ins.Sdiv | Ir.Ins.Udiv | Ir.Ins.Srem | Ir.Ins.Urem), _, _)
              ->
              Some Instr.Probe.Div_by_zero
            | Ir.Ins.Load _ when loads -> Some Instr.Probe.Load_in_bounds
            | _ -> None
          in
          match kind with
          | Some chk_kind when not i.Ir.Ins.volatile ->
            ignore
              (Instr.Manager.add session.Session.manager ~target:f.Ir.Func.name
                 (Instr.Probe.Check { chk_ins = i; chk_kind; chk_trips = 0 }))
          | _ -> ())
        f)
    (Ir.Modul.defined_functions session.Session.base);
  let declare name =
    ignore
      (Ir.Modul.declare_function session.Session.base ~name
         ~params:[ (Ir.Types.I64, "pid"); (Ir.Types.I64, "value") ]
         ~ret:Ir.Types.Void)
  in
  declare div_fn;
  declare load_fn;
  Session.add_host_symbol session div_fn;
  Session.add_host_symbol session load_fn;
  Session.add_patcher session patch;
  t

(** Host hooks to register with the VM (both runtime functions). *)
let host_hooks t =
  let record is_div vm =
    let pid = Int64.to_int Vm.(vm.regs.(0)) in
    let value = Vm.(vm.regs.(1)) in
    t.trips <- t.trips + 1;
    (match Instr.Manager.get t.session.Session.manager pid with
    | Some { Instr.Probe.payload = Instr.Probe.Check c; _ } ->
      c.Instr.Probe.chk_trips <- c.Instr.Probe.chk_trips + 1
    | _ -> ());
    if is_div && Int64.equal value 0L then
      t.violations <- { v_pid = pid; v_value = value } :: t.violations;
    0L
  in
  [ (div_fn, record true); (load_fn, record false) ]

(** ASAP-style hot-check removal: drop checks whose trip count exceeds
    [threshold] (hot checks rarely catch bugs; their cost dominates).
    Returns the number removed. *)
let prune_hot ?(threshold = 100) t =
  let hot =
    List.filter
      (fun (p : Instr.Probe.t) ->
        match p.Instr.Probe.payload with
        | Instr.Probe.Check c -> c.Instr.Probe.chk_trips > threshold
        | _ -> false)
      (Instr.Manager.to_list t.session.Session.manager)
  in
  List.iter (Instr.Manager.remove t.session.Session.manager) hot;
  List.length hot

(** UBSan-with-fuzzing: remove a specific faulty probe immediately. *)
let remove_probe t pid =
  match Instr.Manager.get t.session.Session.manager pid with
  | Some p ->
    Instr.Manager.remove t.session.Session.manager p;
    true
  | None -> false
