(** CmpLog: comparison-operand logging (the paper's running example, used
    with RedQueen-style input-to-state correspondence).

    One probe per comparison instruction. An enabled probe compiles to a
    call to the runtime function [__odin_on_cmp(pid, lhs, rhs)] inserted
    *before* the comparison — and because Odin instruments before
    optimization, the logged operands are the program's original values,
    not post-optimization residues (the Figure 2 problem). Once the
    fuzzer has seen both outcomes of a comparison it is no longer a
    roadblock and the probe is removed. *)

let runtime_fn = "__odin_on_cmp"

type record = { rec_pid : int; rec_lhs : int64; rec_rhs : int64 }

(* Fresh names must be unique even before the new instructions are
   spliced into the function, so [Ir.Func.fresh_name] alone is not
   enough — it cannot see names that are not inserted yet. Deriving the
   name from the probe id (callers use distinct hints per operand)
   keeps it unique AND a pure function of the probe, never of campaign
   history: the printed fragment IR is the object-cache key and must be
   identical whenever the same probe set is applied, and fragment
   compiles run concurrently, so a shared counter is off the table. *)
let gensym fn ~pid hint = Ir.Func.fresh_name fn (Printf.sprintf "%s.p%d" hint pid)

type t = {
  session : Session.t;
  log : record Queue.t;  (** filled by the runtime hook during execution *)
  outcomes : (int, bool * bool) Hashtbl.t;  (** pid -> (seen true, seen false) *)
}

(* Insert the logging call before the (cloned) comparison. Operands are
   widened to i64 for the runtime call. *)
let insert_log (fn : Ir.Func.t) (cloned : Ir.Ins.ins) pid =
  match cloned.Ir.Ins.kind with
  | Ir.Ins.Icmp (_, lhs, rhs) ->
    let host =
      List.find_opt
        (fun (b : Ir.Func.block) -> List.memq cloned b.Ir.Func.insns)
        fn.Ir.Func.blocks
    in
    (match host with
    | None -> ()
    | Some blk ->
      let widen hint v tail =
        match Ir.Ins.value_ty v with
        | Ir.Types.I64 | Ir.Types.Ptr -> (v, tail)
        | _ ->
          let name = gensym fn ~pid hint in
          let cast =
            Ir.Ins.mk ~volatile:true ~id:name ~ty:Ir.Types.I64 (Ir.Ins.Cast (Ir.Ins.Sext, v))
          in
          (Ir.Ins.Reg (Ir.Types.I64, name), cast :: tail)
      in
      let lhs64, pre = widen "cmpargl" lhs [] in
      let rhs64, pre = widen "cmpargr" rhs pre in
      let call =
        Ir.Ins.mk ~volatile:true ~id:"" ~ty:Ir.Types.Void
          (Ir.Ins.Call
             (Ir.Ins.Direct runtime_fn, [ Ir.Builder.i64 pid; lhs64; rhs64 ]))
      in
      let rec insert_before = function
        | [] -> List.rev pre @ [ call ]
        | i :: rest when i == cloned -> List.rev pre @ (call :: i :: rest)
        | i :: rest -> i :: insert_before rest
      in
      blk.Ir.Func.insns <- insert_before blk.Ir.Func.insns)
  | _ -> ()

let patch (sched : Session.sched) =
  List.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Cmp c -> (
        match
          ( Session.map_func sched p.Instr.Probe.target,
            Session.map_ins sched c.Instr.Probe.cmp_ins )
        with
        | Some fn, Some cloned -> insert_log fn cloned p.Instr.Probe.pid
        | _ -> ())
      | _ -> ())
    sched.Session.active

(** One probe per comparison instruction in every defined function. *)
let setup (session : Session.t) =
  let t = { session; log = Queue.create (); outcomes = Hashtbl.create 64 } in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_insns
        (fun (i : Ir.Ins.ins) ->
          match i.Ir.Ins.kind with
          | Ir.Ins.Icmp _ when not i.Ir.Ins.volatile ->
            ignore
              (Instr.Manager.add session.Session.manager ~target:f.Ir.Func.name
                 (Instr.Probe.Cmp
                    { cmp_ins = i; cmp_solved = false; cmp_last = (0L, 0L) }))
          | _ -> ())
        f)
    (Ir.Modul.defined_functions session.Session.base);
  (* declare the runtime function in the base IR so fragments can call it *)
  ignore
    (Ir.Modul.declare_function session.Session.base ~name:runtime_fn
       ~params:[ (Ir.Types.I64, "pid"); (Ir.Types.I64, "lhs"); (Ir.Types.I64, "rhs") ]
       ~ret:Ir.Types.Void);
  Session.add_host_symbol session runtime_fn;
  Session.add_patcher session patch;
  t

(** The host function to register with the VM. *)
let host_hook t vm =
  let pid = Int64.to_int Vm.(vm.regs.(0)) in
  let lhs = Vm.(vm.regs.(1)) in
  let rhs = Vm.(vm.regs.(2)) in
  Queue.add { rec_pid = pid; rec_lhs = lhs; rec_rhs = rhs } t.log;
  (match Instr.Manager.get t.session.Session.manager pid with
  | Some { Instr.Probe.payload = Instr.Probe.Cmp c; _ } ->
    c.Instr.Probe.cmp_last <- (lhs, rhs)
  | _ -> ());
  let seen_t, seen_f =
    Option.value ~default:(false, false) (Hashtbl.find_opt t.outcomes pid)
  in
  (* we do not know the predicate here; approximate outcome by equality,
     the dominant roadblock class for input-to-state solving *)
  let outcome = Int64.equal lhs rhs in
  Hashtbl.replace t.outcomes pid
    ((seen_t || outcome), (seen_f || not outcome));
  0L

(** Drain the operand log collected during the last execution(s). *)
let drain t =
  let out = ref [] in
  Queue.iter (fun r -> out := r :: !out) t.log;
  Queue.clear t.log;
  List.rev !out

(** Remove probes whose comparison has been solved (both outcomes seen) —
    the AFL++ policy the paper describes in Section 2.1. Returns the
    number removed. *)
let prune_solved t =
  let solved =
    List.filter
      (fun (p : Instr.Probe.t) ->
        match p.Instr.Probe.payload with
        | Instr.Probe.Cmp _ -> (
          match Hashtbl.find_opt t.outcomes p.Instr.Probe.pid with
          | Some (true, true) -> true
          | _ -> false)
        | _ -> false)
      (Instr.Manager.to_list t.session.Session.manager)
  in
  List.iter
    (fun (p : Instr.Probe.t) ->
      (match p.Instr.Probe.payload with
      | Instr.Probe.Cmp c -> c.Instr.Probe.cmp_solved <- true
      | _ -> ());
      Instr.Manager.remove t.session.Session.manager p)
    solved;
  List.length solved
