(** OdinCov: basic-block coverage instrumentation on top of the Odin
    probe framework (paper Section 5's demonstration tool).

    Each basic block of the target program gets one probe; an enabled
    probe compiles to an inline 8-bit counter increment (the same scheme
    SanitizerCoverage uses). Pruning follows Untracer: once a counter has
    fired, the probe has nothing left to say and is removed; Odin
    recompiles the affected fragments without it. The whole scheme — the
    paper points out its OdinCov equivalent is 33 lines — is the code in
    [patch] below. *)

let counters_sym = "__odin_counters"

type t = {
  session : Session.t;
  mutable total_probes : int;
  mutable pruned_total : int;
}

(* Register names already used by [fn], as a mutable set: one O(|fn|)
   walk serves every probe on the function ([Ir.Func.fresh_name] walks
   the whole function per call, which is quadratic when a function
   carries many probes). *)
let used_names (fn : Ir.Func.t) =
  let used = Hashtbl.create 64 in
  List.iter (fun (_, p) -> Hashtbl.replace used p ()) fn.Ir.Func.params;
  Ir.Func.iter_insns
    (fun (i : Ir.Ins.ins) ->
      if i.Ir.Ins.id <> "" then Hashtbl.replace used i.Ir.Ins.id ())
    fn;
  used

let fresh used hint =
  let name =
    if not (Hashtbl.mem used hint) then hint
    else begin
      let rec try_n n =
        let candidate = Printf.sprintf "%s.%d" hint n in
        if Hashtbl.mem used candidate then try_n (n + 1) else candidate
      in
      try_n 1
    end
  in
  Hashtbl.replace used name ();
  name

(* Insert the counter-increment sequence at the head of [blk] (after any
   phis), as volatile instructions so no pass can elide or merge them. *)
let insert_counter used (blk : Ir.Func.block) pid =
  let ptr = fresh used "covp" in
  let old = fresh used "covv" in
  let incremented = fresh used "covi" in
  let seq =
    [
      Ir.Ins.mk ~volatile:true ~id:ptr ~ty:Ir.Types.Ptr
        (Ir.Ins.Gep (Ir.Ins.Global counters_sym, Ir.Builder.i64 pid, 1));
      Ir.Ins.mk ~volatile:true ~id:old ~ty:Ir.Types.I8
        (Ir.Ins.Load (Ir.Ins.Reg (Ir.Types.Ptr, ptr)));
      Ir.Ins.mk ~volatile:true ~id:incremented ~ty:Ir.Types.I8
        (Ir.Ins.Binop (Ir.Ins.Add, Ir.Ins.Reg (Ir.Types.I8, old), Ir.Builder.i8 1));
      Ir.Ins.mk ~volatile:true ~id:"" ~ty:Ir.Types.Void
        (Ir.Ins.Store (Ir.Ins.Reg (Ir.Types.I8, incremented), Ir.Ins.Reg (Ir.Types.Ptr, ptr)));
    ]
  in
  let phis, rest =
    List.partition
      (fun (i : Ir.Ins.ins) ->
        match i.Ir.Ins.kind with Ir.Ins.Phi _ -> true | _ -> false)
      blk.Ir.Func.insns
  in
  blk.Ir.Func.insns <- phis @ seq @ rest

(* The patch logic: map each active coverage probe to the temporary IR
   and insert its counter. The used-name set is computed once per target
   function and shared by all its probes (a block-per-probe scheme can
   put hundreds of probes on one function). *)
let patch (sched : Session.sched) =
  let names = Hashtbl.create 16 in
  List.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Cov c -> (
        match Session.map_func sched p.Instr.Probe.target with
        | Some fn when not (Ir.Func.is_declaration fn) -> (
          match Ir.Func.find_block fn c.Instr.Probe.cov_block with
          | Some blk ->
            let used =
              match Hashtbl.find_opt names p.Instr.Probe.target with
              | Some u -> u
              | None ->
                let u = used_names fn in
                Hashtbl.replace names p.Instr.Probe.target u;
                u
            in
            insert_counter used blk p.Instr.Probe.pid
          | None -> () (* block label vanished: stale probe, nothing to do *))
        | _ -> ())
      | _ -> ())
    sched.Session.active

(** Number of counter slots needed for a program: one per basic block. *)
let count_blocks (m : Ir.Modul.t) =
  List.fold_left
    (fun acc f -> acc + Ir.Func.block_count f)
    0
    (Ir.Modul.defined_functions m)

(** The runtime-global declaration to pass to {!Session.create}. *)
let runtime_global m = (counters_sym, max 1 (count_blocks m))

(** Register one probe per basic block of every defined function. *)
let setup (session : Session.t) =
  let t = { session; total_probes = 0; pruned_total = 0 } in
  List.iter
    (fun (f : Ir.Func.t) ->
      Ir.Func.iter_blocks
        (fun b ->
          ignore
            (Instr.Manager.add session.Session.manager ~target:f.Ir.Func.name
               (Instr.Probe.Cov { cov_block = b.Ir.Func.label; cov_hits = 0 }));
          t.total_probes <- t.total_probes + 1)
        f)
    (Ir.Modul.defined_functions session.Session.base);
  Session.add_patcher session patch;
  t

(* ------------------------------------------------------------------ *)
(* Runtime side: reading counters, collecting coverage, pruning        *)
(* ------------------------------------------------------------------ *)

(** Read probe [pid]'s 8-bit counter out of VM memory. *)
let read_counter vm pid =
  let base = Vm.addr_of vm counters_sym in
  Int64.to_int
    (Ir.Types.zext_value Ir.Types.I8
       (Vm.load_mem vm Ir.Types.I8 (Int64.add base (Int64.of_int pid))))

let clear_counters vm n =
  let base = Vm.addr_of vm counters_sym in
  for i = 0 to n - 1 do
    Vm.store_mem vm Ir.Types.I8 (Int64.add base (Int64.of_int i)) 0L
  done

(** Scan counters after an execution: accumulate hits into the probes'
    profiling state, return the probes that fired for the first time. *)
let harvest t vm =
  let fresh = ref [] in
  Instr.Manager.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Cov c ->
        let v = read_counter vm p.Instr.Probe.pid in
        if v > 0 then begin
          if c.Instr.Probe.cov_hits = 0 then fresh := p :: !fresh;
          c.Instr.Probe.cov_hits <- c.Instr.Probe.cov_hits + v
        end
      | _ -> ())
    t.session.Session.manager;
  List.rev !fresh

(** Untracer-style pruning: remove every probe that has fired. Returns
    the number of probes removed (a recompile is pending when > 0). *)
let prune_fired t =
  let fired =
    List.filter
      (fun (p : Instr.Probe.t) ->
        match p.Instr.Probe.payload with
        | Instr.Probe.Cov c -> c.Instr.Probe.cov_hits > 0
        | _ -> false)
      (Instr.Manager.to_list t.session.Session.manager)
  in
  List.iter (Instr.Manager.remove t.session.Session.manager) fired;
  t.pruned_total <- t.pruned_total + List.length fired;
  List.length fired

(** Map a VM execution profile's inline-counter sites back to probe ids:
    a coverage counter lives at [__odin_counters + pid], so the probe id
    is the site address' offset from the array base. Sites outside the
    counter region (other instrumentation) are dropped. *)
let probe_costs ~total vm =
  match Vm.profile vm with
  | None -> []
  | Some p ->
    let base = Int64.to_int (Vm.addr_of vm counters_sym) in
    List.filter_map
      (fun (addr, hits, cycles) ->
        let pid = addr - base in
        if pid >= 0 && pid < total then Some (pid, hits, cycles) else None)
      (Vm.profile_inc_sites p)

(** Coverage summary: how many blocks have ever fired (pruned probes
    were covered by definition). *)
let covered t =
  let n = ref t.pruned_total in
  Instr.Manager.iter
    (fun (p : Instr.Probe.t) ->
      match p.Instr.Probe.payload with
      | Instr.Probe.Cov c when c.Instr.Probe.cov_hits > 0 -> incr n
      | _ -> ())
    t.session.Session.manager;
  !n
