(** CmpLog: comparison-operand logging for input-to-state correspondence
    (RedQueen), the paper's running example. One probe per comparison; an
    enabled probe calls [__odin_on_cmp(pid, lhs, rhs)] *before* the
    comparison, so — because Odin instruments before optimization — the
    logged operands are direct copies of the program's original values
    (the Figure 2 correctness property). *)

val runtime_fn : string

type record = { rec_pid : int; rec_lhs : int64; rec_rhs : int64 }

(** Fresh SSA names that are unique even before splicing (shared with the
    checks scheme). Derived from the probe id — deterministic across
    rebuilds, never from mutable campaign state, so printed fragment IR
    is stable enough to content-address. *)
val gensym : Ir.Func.t -> pid:int -> string -> string

type t = {
  session : Session.t;
  log : record Queue.t;
  outcomes : (int, bool * bool) Hashtbl.t;  (** pid -> (seen =, seen <>) *)
}

val patch : Session.sched -> unit

(** One probe per comparison in every defined function; declares the
    runtime function and installs the patch logic. *)
val setup : Session.t -> t

(** The host function to register with the VM under {!runtime_fn}. *)
val host_hook : t -> Vm.t -> int64

(** Drain the operand log collected since the last call. *)
val drain : t -> record list

(** Remove probes whose comparison has seen both outcomes (the AFL++
    roadblock policy of Section 2.1); returns how many were removed. *)
val prune_solved : t -> int
